//! Active adversaries (§3.2(b) of the paper).
//!
//! Three escalating capabilities, all implemented:
//!
//! 1. **Commercial-programmer replay** (§9, §10.3(a)): the adversary
//!    records a real programmer's transmission, demodulates it to bits —
//!    "to remove the channel noise" — and re-modulates a clean copy to
//!    play back at FCC-compliant power.
//! 2. **Custom hardware** (§10.3(b)): same waveforms at up to 100× (i.e.
//!    +20 dB) the legal power, having reverse-engineered the protocol
//!    (which in our model means forging frames directly).
//! 3. **Evasion**: frequency hopping / multi-channel transmission to try
//!    to slip past the shield's monitor (§7(c)), and transmitting
//!    *concurrently with the shield's own message* to alter it via capture
//!    (§3.2, §7).

use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_channel::txsched::TxScheduler;
use hb_dsp::complex::C64;
use hb_dsp::units::ratio_from_db;
use hb_imd::commands::Command;
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::packet::{Frame, FrameType, Serial};

/// Active attacker configuration.
#[derive(Debug, Clone)]
pub struct AttackerConfig {
    /// Transmit power, dBm. FCC limit for the commercial-hardware
    /// attacker; +20 dB for the "100×" custom-hardware attacker.
    pub tx_power_dbm: f64,
    /// FSK parameters (reverse-engineered from the IMD's air interface).
    pub fsk: FskParams,
}

impl AttackerConfig {
    /// Commercial IMD programmer profile: FCC-compliant power.
    pub fn commercial_programmer() -> Self {
        AttackerConfig {
            tx_power_dbm: hb_mics::fcc_eirp_limit_dbm(),
            fsk: FskParams::mics_default(),
        }
    }

    /// Custom hardware at 100× the shield's power (+20 dB over FCC).
    pub fn high_power_custom() -> Self {
        AttackerConfig {
            tx_power_dbm: hb_mics::fcc_eirp_limit_dbm() + 20.0,
            fsk: FskParams::mics_default(),
        }
    }
}

/// The active attacker device.
pub struct ActiveAttacker {
    cfg: AttackerConfig,
    antenna: AntennaId,
    modem: FskModem,
    tx: TxScheduler,
    seq: u8,
    /// Attack transmissions attempted.
    pub attempts: u64,
    /// Ground-truth log of (start_tick, end_tick, channel) per attempt.
    pub tx_log: Vec<(Tick, Tick, usize)>,
}

impl ActiveAttacker {
    /// Creates an attacker at `antenna`.
    pub fn new(cfg: AttackerConfig, antenna: AntennaId) -> Self {
        let modem = FskModem::new(cfg.fsk);
        ActiveAttacker {
            cfg,
            antenna,
            modem,
            tx: TxScheduler::new(),
            seq: 0x80,
            attempts: 0,
            tx_log: Vec::new(),
        }
    }

    /// The attacker's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }

    /// The configuration.
    pub fn config(&self) -> &AttackerConfig {
        &self.cfg
    }

    fn scaled(&self, mut wave: Vec<C64>) -> Vec<C64> {
        let amp = ratio_from_db(self.cfg.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amp);
        }
        wave
    }

    /// Forges a command frame to `serial` and schedules it at `start_tick`
    /// on `channel` (the reverse-engineered-protocol attacker).
    pub fn send_forged_command(
        &mut self,
        start_tick: Tick,
        channel: usize,
        serial: Serial,
        cmd: Command,
    ) {
        self.seq = self.seq.wrapping_add(1);
        let frame = Frame::new(serial, FrameType::Command, self.seq, cmd.to_payload());
        let wave = self.scaled(self.modem.modulate(&frame.to_bits()));
        let end = start_tick + wave.len() as Tick;
        self.tx.schedule(start_tick, channel, wave);
        self.tx_log.push((start_tick, end, channel));
        self.attempts += 1;
    }

    /// The record→demodulate→re-modulate replay pipeline of §9: takes a
    /// capture of a programmer transmission, recovers the clean bits
    /// (returns `None` if the capture doesn't decode), and schedules a
    /// noise-free replica. "Analog replaying of these captured signals
    /// doubles their noise … so the adversary demodulates the programmer's
    /// FSK signal into the transmitted bits to remove the channel noise."
    pub fn replay_capture(
        &mut self,
        capture: &[C64],
        start_tick: Tick,
        channel: usize,
    ) -> Option<Frame> {
        let frame = self.modem.receive_frame(capture).ok()?;
        let wave = self.scaled(self.modem.modulate(&frame.to_bits()));
        let end = start_tick + wave.len() as Tick;
        self.tx.schedule(start_tick, channel, wave);
        self.tx_log.push((start_tick, end, channel));
        self.attempts += 1;
        Some(frame)
    }

    /// Frequency-hopping attack (§7(c)): sends the same forged command on
    /// several channels back to back, `gap_ticks` apart.
    pub fn send_hopping(
        &mut self,
        start_tick: Tick,
        channels: &[usize],
        gap_ticks: Tick,
        serial: Serial,
        cmd: Command,
    ) {
        let mut t = start_tick;
        for &ch in channels {
            self.send_forged_command(t, ch, serial, cmd);
            let (_, end, _) = *self.tx_log.last().unwrap();
            t = end + gap_ticks;
        }
    }

    /// Raw waveform injection (capture-effect/alteration attacks overlay
    /// arbitrary energy on top of someone else's transmission).
    pub fn inject_waveform(&mut self, start_tick: Tick, channel: usize, wave: Vec<C64>) {
        let scaled = self.scaled(wave);
        let end = start_tick + scaled.len() as Tick;
        self.tx.schedule(start_tick, channel, scaled);
        self.tx_log.push((start_tick, end, channel));
        self.attempts += 1;
    }

    /// End tick of the latest scheduled attack.
    pub fn last_tx_end(&self) -> Option<Tick> {
        self.tx_log.last().map(|&(_, end, _)| end)
    }

    /// True if a transmission is still pending or in flight.
    pub fn transmitting(&self) -> bool {
        !self.tx.is_idle()
    }
}

impl Node for ActiveAttacker {
    fn label(&self) -> &str {
        "attacker"
    }

    fn produce(&mut self, medium: &mut Medium) {
        self.tx.produce(self.antenna, medium);
    }

    fn consume(&mut self, _medium: &mut Medium) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_dsp::units::db_from_ratio;
    use hb_imd::commands::Command;
    use hb_phy::stream::{DetectorEvent, StreamingDetector};

    fn medium() -> Medium {
        Medium::new(
            MediumConfig {
                noise_floor_dbm: -120.0,
                ..Default::default()
            },
            9,
        )
    }

    fn run_and_record(
        medium: &mut Medium,
        atk: &mut ActiveAttacker,
        rx_ant: AntennaId,
        channel: usize,
        blocks: u64,
    ) -> Vec<C64> {
        let mut rx = Vec::new();
        for _ in 0..blocks {
            atk.produce(medium);
            rx.extend(medium.receive(rx_ant, channel));
            medium.end_block();
        }
        rx
    }

    #[test]
    fn forged_command_decodes_at_victim() {
        let mut m = medium();
        let atk_ant = m.add_antenna(Placement::los("atk", 1.0, 0.0));
        let victim = m.add_antenna(Placement::los("victim", 0.0, 0.0));
        m.set_gain(atk_ant, victim, C64::new(0.1, 0.0));
        let mut atk = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
        let serial = Serial::from_str_padded("VIRTUOSO01");
        atk.send_forged_command(0, 3, serial, Command::Interrogate);

        let rx = run_and_record(&mut m, &mut atk, victim, 3, 800);
        let mut det = StreamingDetector::new(FskParams::mics_default(), 4);
        let mut got = None;
        for b in rx.chunks(16) {
            for e in det.push_block(b) {
                if let DetectorEvent::FrameDone { result: Ok(f), .. } = e {
                    got = Some(f);
                }
            }
        }
        let f = got.expect("victim decodes the forged frame");
        assert_eq!(f.serial, serial);
        assert_eq!(f.frame_type, FrameType::Command);
        assert_eq!(atk.attempts, 1);
    }

    #[test]
    fn replay_pipeline_produces_clean_copy() {
        let mut m = medium();
        let atk_ant = m.add_antenna(Placement::los("atk", 1.0, 0.0));
        let mut atk = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);

        // A "captured" programmer transmission with noise on it.
        let modem = FskModem::new(FskParams::mics_default());
        let serial = Serial::from_str_padded("CONCERTO02");
        let frame = Frame::new(
            serial,
            FrameType::Command,
            7,
            Command::ReadTherapy.to_payload(),
        );
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(2);
        let capture: Vec<C64> = modem
            .modulate(&frame.to_bits())
            .into_iter()
            .map(|s| s.scale(0.01) + hb_dsp::noise::white_noise(&mut rng, 1, 1e-6)[0])
            .collect();

        let replayed = atk.replay_capture(&capture, 0, 0).expect("capture decodes");
        assert_eq!(replayed, frame);
        assert!(atk.transmitting());
    }

    #[test]
    fn replay_of_garbage_fails_gracefully() {
        let mut m = medium();
        let atk_ant = m.add_antenna(Placement::los("atk", 1.0, 0.0));
        let mut atk = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(3);
        let noise = hb_dsp::noise::white_noise(&mut rng, 5000, 1.0);
        assert!(atk.replay_capture(&noise, 0, 0).is_none());
        assert_eq!(atk.attempts, 0);
    }

    #[test]
    fn high_power_profile_is_20db_hotter() {
        let lo = AttackerConfig::commercial_programmer();
        let hi = AttackerConfig::high_power_custom();
        assert!((hi.tx_power_dbm - lo.tx_power_dbm - 20.0).abs() < 1e-9);
        assert_eq!(
            hb_mics::check_tx_power(hi.tx_power_dbm, false),
            hb_mics::Compliance::OverPower
        );
    }

    #[test]
    fn transmit_power_on_air_matches_config() {
        let mut m = medium();
        let atk_ant = m.add_antenna(Placement::los("atk", 1.0, 0.0));
        let victim = m.add_antenna(Placement::los("victim", 0.0, 0.0));
        m.set_gain(atk_ant, victim, C64::ONE);
        let mut atk = ActiveAttacker::new(AttackerConfig::high_power_custom(), atk_ant);
        atk.send_forged_command(0, 0, Serial([1; 10]), Command::Interrogate);
        let rx = run_and_record(&mut m, &mut atk, victim, 0, 400);
        let body = &rx[100..4000];
        let p = db_from_ratio(hb_dsp::complex::mean_power(body));
        assert!((p - atk.cfg.tx_power_dbm).abs() < 0.5, "on-air {p} dBm");
    }

    #[test]
    fn hopping_covers_all_channels_in_order() {
        let mut m = medium();
        let atk_ant = m.add_antenna(Placement::los("atk", 1.0, 0.0));
        let mut atk = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
        atk.send_hopping(0, &[2, 5, 7], 100, Serial([2; 10]), Command::Interrogate);
        assert_eq!(atk.attempts, 3);
        assert_eq!(atk.tx_log.len(), 3);
        let chans: Vec<usize> = atk.tx_log.iter().map(|&(_, _, c)| c).collect();
        assert_eq!(chans, vec![2, 5, 7]);
        // Non-overlapping, gap-separated.
        for w in atk.tx_log.windows(2) {
            assert!(w[1].0 >= w[0].1 + 100);
        }
    }
}
