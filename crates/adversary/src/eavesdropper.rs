//! The passive eavesdropper (§3.2(a) of the paper).
//!
//! Records everything on a channel and decodes IMD transmissions with the
//! "optimal FSK decoder" \[38\] — noncoherent matched filtering. We grant
//! the adversary *perfect symbol timing* (the experiment harness tells it
//! exactly when each IMD frame started, from the ground-truth transmit
//! log): a strictly stronger adversary than one that must also recover
//! sync through jamming, so the measured BER is conservative from the
//! defender's standpoint.
//!
//! On decoding strategy choices (§3.2 discusses several):
//! * *Treat jamming as noise* — that is exactly what matched-filter
//!   detection does, and per-symbol tone correlation is also the "two
//!   band-pass filters centered on f0 and f1" attack in its optimal form:
//!   the matched filter is the narrowest possible filter around each tone.
//!   This is why the shield must shape its jamming (Fig. 5) — energy
//!   outside the tone bands is rejected by this decoder for free.
//! * *Interference cancellation / joint decoding* — impossible by the
//!   information-theoretic argument of §3.2: the jamming signal is random
//!   and uncoded, so the sum rate exceeds any capacity region; there is no
//!   structure to cancel. (We model the adversary's best attempt at
//!   structure-free cancellation: subtracting its best estimate of the
//!   jamming signal, which is the received signal itself minus the tone
//!   content — a no-op in expectation. See the ablation bench.)

use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_dsp::complex::C64;
use hb_phy::bits::bit_error_rate;
use hb_phy::fsk::{FskModem, FskParams};

/// A passive eavesdropper that records a channel.
pub struct Eavesdropper {
    antenna: AntennaId,
    channel: usize,
    modem: FskModem,
    /// Absolute tick of `recording[0]`.
    record_start: Tick,
    recording: Vec<C64>,
    recording_enabled: bool,
}

impl Eavesdropper {
    /// Creates an eavesdropper listening on `channel` via `antenna`.
    pub fn new(params: FskParams, antenna: AntennaId, channel: usize) -> Self {
        Eavesdropper {
            antenna,
            channel,
            modem: FskModem::new(params),
            record_start: 0,
            recording: Vec::new(),
            recording_enabled: true,
        }
    }

    /// The eavesdropper's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }

    /// Pauses/resumes recording (long experiments drain between bursts).
    pub fn set_recording(&mut self, on: bool) {
        self.recording_enabled = on;
    }

    /// Clears the recording buffer (the next block recorded becomes the
    /// new buffer start).
    pub fn clear(&mut self) {
        self.recording.clear();
        self.record_start = 0;
    }

    /// Number of samples currently buffered.
    pub fn buffered(&self) -> usize {
        self.recording.len()
    }

    /// Decodes `n_bits` starting at absolute sample `start_tick` with the
    /// optimal noncoherent FSK decoder, using perfect timing knowledge.
    /// Returns `None` if the requested range is not fully buffered.
    pub fn decode_aligned(&self, start_tick: Tick, n_bits: usize) -> Option<Vec<u8>> {
        let sps = self.modem.params().samples_per_symbol();
        let from = start_tick.checked_sub(self.record_start)? as usize;
        let to = from + n_bits * sps;
        if to > self.recording.len() {
            return None;
        }
        Some(self.modem.demodulate(&self.recording[from..to]))
    }

    /// Attempts full frame recovery from a perfectly-aligned decode of a
    /// known transmission: demodulates `n_bits` starting at `start_tick`
    /// and parses them as a frame (CRC checked). `None` when the samples
    /// are unbuffered or the bits no longer form a valid frame — the
    /// leak-or-not ground truth behind the defense matrix's
    /// confidentiality metric, which asks whether the adversary walks
    /// away with the payload *bytes*, not merely a favourable BER.
    pub fn recover_frame(&self, start_tick: Tick, n_bits: usize) -> Option<hb_phy::packet::Frame> {
        let bits = self.decode_aligned(start_tick, n_bits)?;
        hb_phy::packet::Frame::from_bits(&bits).ok()
    }

    /// BER of the eavesdropper's decode of a transmission against the
    /// ground-truth bits. Returns 0.5 (guessing) if the samples are not
    /// available.
    pub fn ber_against(&self, start_tick: Tick, truth: &[u8]) -> f64 {
        match self.decode_aligned(start_tick, truth.len()) {
            Some(decoded) => bit_error_rate(truth, &decoded),
            None => 0.5,
        }
    }

    /// Mean received power (dBm) over a tick range, if buffered.
    pub fn rssi_dbm(&self, start_tick: Tick, n_samples: usize) -> Option<f64> {
        let from = start_tick.checked_sub(self.record_start)? as usize;
        let to = from + n_samples;
        if to > self.recording.len() {
            return None;
        }
        Some(hb_phy::rssi::rssi_dbm(&self.recording[from..to]))
    }
}

impl Node for Eavesdropper {
    fn label(&self) -> &str {
        "eavesdropper"
    }

    fn produce(&mut self, _medium: &mut Medium) {}

    fn consume(&mut self, medium: &mut Medium) {
        if !self.recording_enabled {
            return;
        }
        if self.recording.is_empty() {
            self.record_start = medium.tick();
        }
        self.recording
            .extend_from_slice(medium.receive_view(self.antenna, self.channel));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_channel::txsched::TxScheduler;
    use hb_phy::bits::Prbs;

    fn setup() -> (Medium, Eavesdropper, AntennaId) {
        let mut medium = Medium::new(
            MediumConfig {
                noise_floor_dbm: -120.0,
                ..Default::default()
            },
            5,
        );
        let tx = medium.add_antenna(Placement::los("tx", 0.0, 0.0));
        let eve_ant = medium.add_antenna(Placement::los("eve", 0.2, 0.0));
        medium.set_gain(tx, eve_ant, C64::new(0.5, 0.0));
        let eve = Eavesdropper::new(FskParams::mics_default(), eve_ant, 0);
        (medium, eve, tx)
    }

    #[test]
    fn decodes_clean_transmission_perfectly() {
        let (mut medium, mut eve, tx) = setup();
        let modem = FskModem::new(FskParams::mics_default());
        let mut prbs = Prbs::new(0x71);
        let bits = prbs.bits(200);
        let start: Tick = 160; // block-aligned
        let mut sched = TxScheduler::new();
        sched.schedule(start, 0, modem.modulate(&bits));

        for _ in 0..400 {
            sched.produce(tx, &mut medium);
            eve.consume(&mut medium);
            medium.end_block();
        }
        let ber = eve.ber_against(start, &bits);
        assert_eq!(ber, 0.0, "clean channel should decode exactly");
    }

    #[test]
    fn heavy_jamming_defeats_even_perfect_timing() {
        let (mut medium, mut eve, tx) = setup();
        // Second antenna jams.
        let jammer = medium.add_antenna(Placement::los("jam", 0.1, 0.0));
        medium.set_gain(jammer, eve.antenna(), C64::new(0.5, 0.0));

        let modem = FskModem::new(FskParams::mics_default());
        let mut prbs = Prbs::new(0x13);
        let bits = prbs.bits(300);
        let start: Tick = 0;
        let mut sched = TxScheduler::new();
        sched.schedule(start, 0, modem.modulate(&bits));

        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..600 {
            sched.produce(tx, &mut medium);
            // Jam at +23 dB relative to the signal at the eavesdropper.
            let jam = hb_dsp::noise::white_noise(&mut rng, 16, 200.0);
            medium.transmit(jammer, 0, &jam);
            eve.consume(&mut medium);
            medium.end_block();
        }
        let ber = eve.ber_against(start, &bits);
        assert!((ber - 0.5).abs() < 0.07, "jammed BER {ber}");
    }

    #[test]
    fn missing_samples_count_as_guessing() {
        let (_, eve, _) = setup();
        assert_eq!(eve.ber_against(1000, &[0, 1, 0, 1]), 0.5);
    }

    #[test]
    fn clear_and_pause() {
        let (mut medium, mut eve, _tx) = setup();
        for _ in 0..10 {
            eve.consume(&mut medium);
            medium.end_block();
        }
        assert_eq!(eve.buffered(), 160);
        eve.clear();
        assert_eq!(eve.buffered(), 0);
        eve.set_recording(false);
        eve.consume(&mut medium);
        assert_eq!(eve.buffered(), 0);
    }

    #[test]
    fn rssi_measures_signal_level() {
        let (mut medium, mut eve, tx) = setup();
        let mut sched = TxScheduler::new();
        sched.schedule(0, 0, vec![C64::ONE; 800]);
        for _ in 0..60 {
            sched.produce(tx, &mut medium);
            eve.consume(&mut medium);
            medium.end_block();
        }
        // |0.5|^2 link: 0 dBm tx -> -6 dBm.
        let rssi = eve.rssi_dbm(0, 800).unwrap();
        assert!((rssi - (-6.0)).abs() < 0.5, "rssi {rssi}");
    }
}
