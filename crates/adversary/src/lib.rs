//! # hb-adversary — the threat models of §3.2
//!
//! * [`eavesdropper`] — a passive adversary with perfect timing knowledge
//!   and the optimal noncoherent FSK decoder, recording everything on a
//!   channel (the confidentiality threat).
//! * [`active`] — active attackers: commercial-programmer replay
//!   (record → demodulate → re-modulate clean), forged commands from
//!   reverse-engineered protocol knowledge, 100×-power custom hardware,
//!   frequency hopping, and concurrent-transmission alteration.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod active;
pub mod eavesdropper;

pub use active::{ActiveAttacker, AttackerConfig};
pub use eavesdropper::Eavesdropper;
