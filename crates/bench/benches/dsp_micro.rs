//! DSP microbenchmarks: the primitives on the simulator's hot path.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hb_dsp::complex::C64;
use hb_dsp::fft::FftPlan;
use hb_dsp::fir::{design_lowpass, StreamingFir};
use hb_dsp::noise::{white_noise, ShapedNoise};
use hb_dsp::spectrum::welch_psd;
use hb_dsp::window::Window;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_fft(c: &mut Criterion) {
    let plan = FftPlan::new(256);
    let mut rng = StdRng::seed_from_u64(1);
    let data = white_noise(&mut rng, 256, 1.0);
    c.bench_function("fft_256", |b| {
        b.iter(|| {
            let mut buf = data.clone();
            plan.forward(&mut buf);
            black_box(buf)
        })
    });
}

fn bench_shaped_noise(c: &mut Criterion) {
    let mut profile = vec![0.0; 256];
    for p in profile.iter_mut().take(64).skip(32) {
        *p = 1.0;
    }
    let gen = ShapedNoise::new(&profile);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("shaped_noise_block_256", |b| {
        b.iter(|| black_box(gen.block(&mut rng)))
    });
}

fn bench_welch(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(3);
    let sig = white_noise(&mut rng, 16_384, 1.0);
    c.bench_function("welch_psd_16k", |b| {
        b.iter(|| black_box(welch_psd(&sig, 256, Window::Hann, 300e3)))
    });
}

fn bench_fir(c: &mut Criterion) {
    let taps = design_lowpass(50e3, 300e3, 63, Window::Hamming);
    let mut rng = StdRng::seed_from_u64(4);
    let sig = white_noise(&mut rng, 4096, 1.0);
    c.bench_function("streaming_fir_63tap_4k", |b| {
        b.iter(|| {
            let mut f = StreamingFir::from_real(&taps);
            black_box(f.process(&sig))
        })
    });
}

fn bench_complex_ops(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(5);
    let a = white_noise(&mut rng, 4096, 1.0);
    let b2 = white_noise(&mut rng, 4096, 1.0);
    c.bench_function("inner_product_4k", |b| {
        b.iter(|| black_box(hb_dsp::complex::inner_product(&a, &b2)))
    });
    let g = C64::new(0.6, -0.3);
    c.bench_function("scale_mix_4k", |b| {
        b.iter(|| {
            let mut acc = vec![C64::ZERO; 4096];
            for (o, (&x, &y)) in acc.iter_mut().zip(a.iter().zip(b2.iter())) {
                *o = x * g + y;
            }
            black_box(acc)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fft, bench_shaped_noise, bench_welch, bench_fir, bench_complex_ops
);
criterion_main!(benches);
