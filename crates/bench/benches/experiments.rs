//! One benchmark per table/figure of the paper (§10–§11).
//!
//! Each target runs a reduced-effort version of the corresponding
//! experiment from `hb-testbed::experiments` — so `cargo bench --bench
//! experiments` literally regenerates the paper's evaluation, with wall
//! times attached. For paper-scale sample counts run
//! `cargo run --release --example full_evaluation -- --full` instead.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hb_testbed::experiments::{self, Effort};

const SEED: u64 = 20110815;

fn effort() -> Effort {
    Effort::tiny()
}

fn fig3_timing(c: &mut Criterion) {
    c.bench_function("fig3_timing", |b| {
        b.iter(|| black_box(experiments::fig3::run(effort(), SEED)))
    });
}

fn fig4_fsk_profile(c: &mut Criterion) {
    c.bench_function("fig4_fsk_profile", |b| {
        b.iter(|| black_box(experiments::fig4::run(effort(), SEED)))
    });
}

fn fig5_jam_profile(c: &mut Criterion) {
    c.bench_function("fig5_jam_profile", |b| {
        b.iter(|| black_box(experiments::fig5::run(effort(), SEED)))
    });
}

fn fig7_cancellation(c: &mut Criterion) {
    c.bench_function("fig7_cancellation", |b| {
        b.iter(|| black_box(experiments::fig7::run(effort(), SEED)))
    });
}

fn fig8_tradeoff(c: &mut Criterion) {
    // One representative margin point per iteration (the full sweep is the
    // experiment itself).
    c.bench_function("fig8_tradeoff_point", |b| {
        b.iter(|| black_box(experiments::fig8::run_margin_point(20.0, 3, SEED)))
    });
}

fn fig9_eavesdropper_ber(c: &mut Criterion) {
    c.bench_function("fig9_eavesdropper_ber_loc1", |b| {
        b.iter(|| black_box(experiments::fig9::ber_at_location(1, 3, SEED)))
    });
}

fn fig10_shield_loss(c: &mut Criterion) {
    c.bench_function("fig10_shield_loss_run", |b| {
        b.iter(|| black_box(experiments::fig10::one_run(3, SEED)))
    });
}

fn fig11_battery_attack(c: &mut Criterion) {
    use experiments::fig11::{attack_once, AttackGoal};
    use hb_adversary::active::AttackerConfig;
    let cfg = AttackerConfig::commercial_programmer();
    c.bench_function("fig11_battery_attack_pair", |b| {
        b.iter(|| {
            let off = attack_once(1, false, &cfg, AttackGoal::ElicitReply, SEED);
            let on = attack_once(1, true, &cfg, AttackGoal::ElicitReply, SEED);
            black_box((off.success, on.success))
        })
    });
}

fn fig12_therapy_attack(c: &mut Criterion) {
    use experiments::fig11::{attack_once, AttackGoal};
    use hb_adversary::active::AttackerConfig;
    let cfg = AttackerConfig::commercial_programmer();
    c.bench_function("fig12_therapy_attack_pair", |b| {
        b.iter(|| {
            let off = attack_once(2, false, &cfg, AttackGoal::ChangeTherapy, SEED);
            let on = attack_once(2, true, &cfg, AttackGoal::ChangeTherapy, SEED);
            black_box((off.success, on.success))
        })
    });
}

fn fig13_high_power(c: &mut Criterion) {
    use experiments::fig11::{attack_once, AttackGoal};
    use hb_adversary::active::AttackerConfig;
    let cfg = AttackerConfig::high_power_custom();
    c.bench_function("fig13_high_power_pair", |b| {
        b.iter(|| {
            let off = attack_once(13, false, &cfg, AttackGoal::ChangeTherapy, SEED);
            let on = attack_once(1, true, &cfg, AttackGoal::ChangeTherapy, SEED);
            black_box((off.success, on.success, on.alarm))
        })
    });
}

fn table1_pthresh(c: &mut Criterion) {
    c.bench_function("table1_pthresh_attempt", |b| {
        b.iter(|| black_box(experiments::table1::attempt(6.0, SEED)))
    });
}

fn table2_coexistence(c: &mut Criterion) {
    c.bench_function("table2_coexistence", |b| {
        b.iter(|| black_box(experiments::table2::run(Effort::tiny(), SEED)))
    });
}

fn ablations(c: &mut Criterion) {
    c.bench_function("ablation_jam_shape", |b| {
        b.iter(|| black_box(experiments::ablation::jam_shape(Effort::tiny(), SEED)))
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig3_timing,
        fig4_fsk_profile,
        fig5_jam_profile,
        fig7_cancellation,
        fig8_tradeoff,
        fig9_eavesdropper_ber,
        fig10_shield_loss,
        fig11_battery_attack,
        fig12_therapy_attack,
        fig13_high_power,
        table1_pthresh,
        table2_coexistence,
        ablations
);
criterion_main!(benches);
