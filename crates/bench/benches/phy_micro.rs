//! PHY microbenchmarks: the modem and detector paths every simulated
//! device runs per block.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hb_phy::bits::Prbs;
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::matcher::SidMatcher;
use hb_phy::packet::{identifying_sequence, Frame, FrameType, Serial};
use hb_phy::stream::{SidMonitor, StreamingDetector};

fn bench_fsk_modulate(c: &mut Criterion) {
    let m = FskModem::new(FskParams::mics_default());
    let mut prbs = Prbs::new(0x11);
    let bits = prbs.bits(256);
    c.bench_function("fsk_modulate_256b", |b| {
        b.iter(|| black_box(m.modulate(&bits)))
    });
}

fn bench_fsk_demodulate(c: &mut Criterion) {
    let m = FskModem::new(FskParams::mics_default());
    let mut prbs = Prbs::new(0x22);
    let sig = m.modulate(&prbs.bits(256));
    c.bench_function("fsk_demodulate_256b", |b| {
        b.iter(|| black_box(m.demodulate(&sig)))
    });
}

fn bench_streaming_detector(c: &mut Criterion) {
    let m = FskModem::new(FskParams::mics_default());
    let frame = Frame::new(
        Serial::from_str_padded("VIRTUOSO01"),
        FrameType::Command,
        1,
        vec![1, 2, 3],
    );
    let mut sig = vec![hb_dsp::C64::ZERO; 128];
    sig.extend(m.modulate(&frame.to_bits()));
    sig.extend(vec![hb_dsp::C64::ZERO; 128]);
    c.bench_function("streaming_detector_one_frame", |b| {
        b.iter(|| {
            let mut det = StreamingDetector::new(FskParams::mics_default(), 4);
            let mut events = 0;
            for block in sig.chunks(16) {
                events += det.push_block(block).len();
            }
            black_box(events)
        })
    });
}

fn bench_sid_monitor(c: &mut Criterion) {
    let m = FskModem::new(FskParams::mics_default());
    let frame = Frame::new(
        Serial::from_str_padded("VIRTUOSO01"),
        FrameType::Command,
        1,
        vec![7; 8],
    );
    let sig = m.modulate(&frame.to_bits());
    let sid = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
    c.bench_function("sid_monitor_one_frame", |b| {
        b.iter(|| {
            let mut mon = SidMonitor::new(FskParams::mics_default(), sid.clone(), 4);
            let mut hits = 0;
            for block in sig.chunks(16) {
                if mon.push_block(block).is_some() {
                    hits += 1;
                }
            }
            black_box(hits)
        })
    });
}

fn bench_sid_matcher(c: &mut Criterion) {
    let sid = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
    let mut prbs = Prbs::new(0x3C);
    let stream = prbs.bits(10_000);
    c.bench_function("sid_matcher_10k_bits", |b| {
        b.iter(|| {
            let mut m = SidMatcher::new(sid.clone(), 4);
            black_box(m.push_all(&stream))
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_fsk_modulate,
        bench_fsk_demodulate,
        bench_streaming_detector,
        bench_sid_monitor,
        bench_sid_matcher
);
criterion_main!(benches);
