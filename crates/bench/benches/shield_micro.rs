//! Shield microbenchmarks: the full-duplex and relay hot paths.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use hb_imd::commands::Command;
use hb_phy::fsk::FskParams;
use hb_shield::fullduplex::{CouplingConfig, FullDuplex};
use hb_shield::jamsignal::JamSignal;
use hb_testbed::experiments::relay_one_exchange;
use hb_testbed::scenario::{ScenarioBuilder, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_antidote(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(1);
    let (hs, hjr) = CouplingConfig::usrp2_prototype().draw_gains(&mut rng);
    let mut fd = FullDuplex::new(hs, hjr);
    fd.estimate(32.0, &mut rng);
    let j: Vec<hb_dsp::C64> = (0..4096)
        .map(|k| hb_dsp::C64::cis(k as f64 * 0.3))
        .collect();
    c.bench_function("antidote_4k", |b| b.iter(|| black_box(fd.antidote(&j))));
}

fn bench_jam_generation(c: &mut Criterion) {
    let mut jam = JamSignal::shaped_for_fsk(FskParams::mics_default(), 256);
    jam.set_power_dbm(-35.0);
    let mut rng = StdRng::seed_from_u64(2);
    c.bench_function("jam_next_4k_samples", |b| {
        b.iter(|| black_box(jam.next_samples(&mut rng, 4096)))
    });
}

fn bench_jammer_construction(c: &mut Criterion) {
    c.bench_function("jam_shaped_for_fsk_construct", |b| {
        b.iter(|| black_box(JamSignal::shaped_for_fsk(FskParams::mics_default(), 256)))
    });
}

fn bench_relay_exchange(c: &mut Criterion) {
    // One full 60 ms relayed interrogation: command + jammed reply +
    // decode, the unit of every protection experiment.
    c.bench_function("relay_exchange_60ms_sim", |b| {
        b.iter(|| {
            let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(9)).build();
            relay_one_exchange(&mut scenario, &mut [], Command::Interrogate);
            black_box(scenario.shield.as_ref().unwrap().stats.imd_frames_ok)
        })
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_antidote, bench_jam_generation, bench_jammer_construction, bench_relay_exchange
);
criterion_main!(benches);
