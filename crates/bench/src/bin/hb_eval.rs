//! `hb_eval` — the experiment-registry CLI.
//!
//! Lists and runs the reproduction's experiments through the
//! `hb_testbed::experiments::registry` engine and writes machine-readable
//! artifacts under `results/`.
//!
//! ```text
//! hb_eval --list [--format text|csv|json|md]
//! hb_eval run <name>... [--effort quick|full|tiny] [--seed N]
//!                       [--threads N] [--format text|csv|json]
//!                       [--out-dir DIR]
//! hb_eval --all [same flags]
//! ```
//!
//! * `--list` prints the registry (name + what each experiment
//!   reproduces); `--format md` emits the README's experiment table.
//! * `run`/`--all` execute experiments in registry order. Every run
//!   writes `DIR/<stem>.json` (the canonical machine-readable artifact);
//!   `--format csv` additionally writes `DIR/<stem>.csv`. Stdout carries
//!   the artifacts in the chosen format and stays machine-readable for
//!   any number of experiments: CSV gets one `experiment,series,x,y`
//!   header, JSON emits a single object for one experiment and an array
//!   for several. Progress/timing goes to stderr, so stdout is
//!   bit-identical across runs and thread counts for a fixed
//!   `(effort, seed)`.
//! * `--effort` defaults to each experiment's `default_effort()`.
//! * `--threads N` pins the sweep runner's worker count (same as the
//!   `HB_THREADS` environment variable); results do not depend on it.
//! * `--ci` widens CSV output with `ci_lo,ci_hi,n` columns carrying the
//!   adaptive Monte-Carlo confidence intervals (blank for purely
//!   deterministic series); JSON and text always include the intervals.
//! * `--checkpoint-dir DIR` journals every adaptive Monte-Carlo round
//!   under `DIR/<experiment>/`; `--resume` restarts an interrupted run
//!   from those journals and produces the byte-identical artifact an
//!   uninterrupted run would have. `--deadline-secs N` stops cleanly at a
//!   round boundary once the budget expires, writing partial artifacts
//!   marked `truncated` (exit code 3).
//! * All artifact files are written atomically (`.tmp` + fsync + rename).
//!   A failed write no longer aborts the run: remaining experiments still
//!   execute, and the exit code is non-zero with the affected experiments
//!   named on stderr.
//! * Contradictory selections (`--list` with `run`/`--all`, `--all` with
//!   explicit names) are rejected up front.

use hb_testbed::checkpoint::{self, RunCtl};
use hb_testbed::experiments::registry::{self, EvalCtx, Experiment};
use hb_testbed::experiments::Effort;
use std::collections::BTreeSet;
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Stdout rendering / file formats.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Format {
    Text,
    Csv,
    Json,
    Markdown,
}

impl Format {
    fn parse(s: &str) -> Option<Format> {
        match s {
            "text" => Some(Format::Text),
            "csv" => Some(Format::Csv),
            "json" => Some(Format::Json),
            "md" => Some(Format::Markdown),
            _ => None,
        }
    }
}

/// Parsed command line.
#[derive(Debug)]
struct Args {
    list: bool,
    all: bool,
    names: Vec<String>,
    effort: Option<Effort>,
    seed: u64,
    format: Format,
    out_dir: String,
    ci: bool,
    checkpoint_dir: Option<String>,
    resume: bool,
    deadline_secs: Option<f64>,
    fault: Option<String>,
}

const USAGE: &str = "usage:
  hb_eval --list [--format text|csv|json|md]
  hb_eval run <name>... [--effort quick|full|tiny] [--seed N]
                        [--threads N] [--format text|csv|json] [--ci]
                        [--out-dir DIR] [--checkpoint-dir DIR] [--resume]
                        [--deadline-secs N] [--fault SPEC]
  hb_eval --all [same flags as run]

`hb_eval --list` shows every registered experiment.
`--ci` adds ci_lo/ci_hi/n confidence-interval columns to CSV output
(text and JSON always carry the intervals where an experiment computes
them).
`--checkpoint-dir DIR` journals adaptive Monte-Carlo progress under
DIR/<experiment>/ after every round; `--resume` continues an interrupted
run from those journals (bit-identical to an uninterrupted run).
`--deadline-secs N` stops cleanly at a checkpoint once N seconds have
elapsed, marking partial artifacts as truncated (exit code 3).
`--fault SPEC` injects a deterministic runtime fault
(panic:<trial>|crash_after_round:<n>|io_fail:<substr>) for resilience
testing; equivalent to setting HB_FAULT, but a bad spec is an error here
instead of a warning.";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        list: false,
        all: false,
        names: Vec::new(),
        effort: None,
        seed: registry::DEFAULT_SEED,
        format: Format::Text,
        out_dir: "results".to_string(),
        ci: false,
        checkpoint_dir: None,
        resume: false,
        deadline_secs: None,
        fault: None,
    };
    let mut it = argv.iter().peekable();
    let value = |it: &mut std::iter::Peekable<std::slice::Iter<String>>,
                 flag: &str|
     -> Result<String, String> {
        it.next()
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(a) = it.next() {
        match a.as_str() {
            "--list" => args.list = true,
            "--all" => args.all = true,
            "run" => {
                while let Some(n) = it.peek() {
                    if n.starts_with("--") {
                        break;
                    }
                    args.names.push(it.next().unwrap().clone());
                }
                if args.names.is_empty() {
                    return Err("run needs at least one experiment name".to_string());
                }
            }
            "--effort" => {
                let v = value(&mut it, "--effort")?;
                args.effort =
                    Some(Effort::by_name(&v).ok_or_else(|| format!("unknown effort '{v}'"))?);
            }
            "--seed" => {
                let v = value(&mut it, "--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad seed '{v}'"))?;
            }
            "--threads" => {
                let v = value(&mut it, "--threads")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count '{v}'"))?;
                std::env::set_var("HB_THREADS", n.max(1).to_string());
            }
            "--format" => {
                let v = value(&mut it, "--format")?;
                args.format = Format::parse(&v).ok_or_else(|| format!("unknown format '{v}'"))?;
            }
            "--out-dir" => args.out_dir = value(&mut it, "--out-dir")?,
            "--ci" => args.ci = true,
            "--checkpoint-dir" => args.checkpoint_dir = Some(value(&mut it, "--checkpoint-dir")?),
            "--resume" => args.resume = true,
            "--deadline-secs" => {
                let v = value(&mut it, "--deadline-secs")?;
                let secs: f64 = v.parse().map_err(|_| format!("bad deadline '{v}'"))?;
                if !secs.is_finite() || secs <= 0.0 {
                    return Err(format!(
                        "--deadline-secs needs a positive number, got '{v}'"
                    ));
                }
                args.deadline_secs = Some(secs);
            }
            "--fault" => {
                let v = value(&mut it, "--fault")?;
                if checkpoint::parse_fault(&v).is_none() {
                    return Err(format!(
                        "bad --fault spec '{v}' (expected \
                         panic:<trial>|crash_after_round:<n>|io_fail:<substr>)"
                    ));
                }
                args.fault = Some(v);
            }
            other => return Err(format!("unknown argument '{other}'\n\n{USAGE}")),
        }
    }
    // Contradictory selections fail fast instead of silently privileging
    // one mode (previously `--list` won and the rest was dropped).
    if args.list && (args.all || !args.names.is_empty()) {
        return Err(format!(
            "--list cannot be combined with run/--all: it only prints the registry\n\n{USAGE}"
        ));
    }
    if args.all && !args.names.is_empty() {
        return Err(format!(
            "--all already selects every experiment; drop the explicit names {:?}\n\n{USAGE}",
            args.names
        ));
    }
    if args.list && args.ci {
        return Err(format!(
            "--ci applies to experiment runs, not --list\n\n{USAGE}"
        ));
    }
    if args.list
        && (args.checkpoint_dir.is_some()
            || args.resume
            || args.deadline_secs.is_some()
            || args.fault.is_some())
    {
        return Err(format!(
            "--checkpoint-dir/--resume/--deadline-secs/--fault apply to experiment runs, not --list\n\n{USAGE}"
        ));
    }
    if args.resume && args.checkpoint_dir.is_none() {
        return Err(format!(
            "--resume needs --checkpoint-dir DIR to know where the journals live\n\n{USAGE}"
        ));
    }
    Ok(args)
}

/// Renders the registry listing in the requested format.
fn render_list(format: Format) -> String {
    let mut out = String::new();
    match format {
        Format::Text => {
            let width = registry::registry()
                .iter()
                .map(|e| e.name().len())
                .max()
                .unwrap_or(0);
            for e in registry::registry() {
                out.push_str(&format!("{:width$}  {}\n", e.name(), e.reproduces()));
            }
        }
        Format::Csv => {
            out.push_str("name,reproduces\n");
            for e in registry::registry() {
                out.push_str(&format!(
                    "{},{}\n",
                    e.name(),
                    hb_testbed::report::csv_escape(e.reproduces())
                ));
            }
        }
        Format::Json => {
            out.push_str("[\n");
            let n = registry::registry().len();
            for (i, e) in registry::registry().iter().enumerate() {
                out.push_str(&format!(
                    "  {{\"name\": \"{}\", \"reproduces\": {}}}{}\n",
                    e.name(),
                    hb_testbed::report::json_string(e.reproduces()),
                    if i + 1 < n { "," } else { "" }
                ));
            }
            out.push_str("]\n");
        }
        Format::Markdown => {
            out.push_str("| Experiment | Reproduces |\n|---|---|\n");
            for e in registry::registry() {
                out.push_str(&format!("| `{}` | {} |\n", e.name(), e.reproduces()));
            }
        }
    }
    out
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if args.list {
        print!("{}", render_list(args.format));
        return ExitCode::SUCCESS;
    }
    // The flag wins over any inherited HB_FAULT; it must land before the
    // first `checkpoint::fault()` call locks the process-wide value in.
    if let Some(spec) = &args.fault {
        std::env::set_var("HB_FAULT", spec);
    }

    let selected: Vec<&'static dyn Experiment> = if args.all {
        registry::registry().to_vec()
    } else if args.names.is_empty() {
        eprintln!("nothing to do: pass --list, --all, or run <name>...\n\n{USAGE}");
        return ExitCode::from(2);
    } else {
        let mut v = Vec::new();
        for name in &args.names {
            match registry::find(name) {
                Some(e) => v.push(e),
                None => {
                    eprintln!("unknown experiment '{name}'; `hb_eval --list` shows the registry");
                    return ExitCode::from(2);
                }
            }
        }
        v
    };
    if args.format == Format::Markdown {
        eprintln!("--format md is for --list only; use text, csv, or json for runs");
        return ExitCode::from(2);
    }

    if std::fs::create_dir_all(&args.out_dir).is_err() {
        eprintln!("cannot create output directory {}", args.out_dir);
        return ExitCode::FAILURE;
    }
    eprintln!(
        "hb_eval: {} experiment(s), seed {}, {} worker thread(s)",
        selected.len(),
        args.seed,
        hb_testbed::parallel_threads()
    );
    let t0 = Instant::now();
    // One deadline for the whole invocation: every experiment's adaptive
    // loops check it between rounds and stop at a checkpoint.
    let deadline = args
        .deadline_secs
        .map(|secs| Instant::now() + Duration::from_secs_f64(secs));
    // Write failures no longer abort the run: remaining experiments (and
    // their checkpoints) still complete, and the exit code reports which
    // experiments lost artifacts.
    let mut write_failures: Vec<String> = Vec::new();
    let mut truncated: Vec<&str> = Vec::new();
    // Stdout must stay machine-readable for any number of experiments:
    // one CSV header total, and multiple JSON artifacts as a JSON array.
    let multi = selected.len() > 1;
    match args.format {
        Format::Csv if args.ci => println!("experiment,series,x,y,ci_lo,ci_hi,n"),
        Format::Csv => println!("experiment,series,x,y"),
        Format::Json if multi => println!("["),
        _ => {}
    }
    for (i, exp) in selected.iter().enumerate() {
        let ctx = EvalCtx::new(
            args.effort.unwrap_or_else(|| exp.default_effort()),
            args.seed,
        );
        let ckpt_dir = args
            .checkpoint_dir
            .as_ref()
            .map(|d| Path::new(d).join(exp.name()));
        let ctl = Arc::new(RunCtl::new(ckpt_dir, args.resume, deadline));
        let t = Instant::now();
        let (artifact, stem, health) = registry::run_one_with(*exp, &ctx, &ctl);
        eprintln!("{} done in {:.1}s", exp.name(), t.elapsed().as_secs_f64());
        if health.degraded() {
            eprintln!(
                "{}: degraded — {} trial(s) quarantined (see the checkpoint journals)",
                exp.name(),
                health.quarantined
            );
        }
        if health.truncated {
            eprintln!(
                "{}: deadline expired — partial artifact marked truncated",
                exp.name()
            );
            truncated.push(exp.name());
        }
        let json = artifact.to_json();
        let json_path = format!("{}/{stem}.json", args.out_dir);
        if let Err(e) = checkpoint::atomic_write(Path::new(&json_path), json.as_bytes()) {
            eprintln!("cannot write {json_path}: {e}");
            write_failures.push(exp.name().to_string());
        }
        match args.format {
            Format::Text => print!("{}", artifact.render()),
            Format::Json => {
                if multi {
                    print!(
                        "{}{}",
                        json.trim_end(),
                        if i + 1 < selected.len() { ",\n" } else { "\n" }
                    );
                } else {
                    print!("{json}");
                }
            }
            Format::Csv => {
                let csv = if args.ci {
                    artifact.to_csv_ci()
                } else {
                    artifact.to_csv()
                };
                let csv_path = format!("{}/{stem}.csv", args.out_dir);
                if let Err(e) = checkpoint::atomic_write(Path::new(&csv_path), csv.as_bytes()) {
                    eprintln!("cannot write {csv_path}: {e}");
                    write_failures.push(exp.name().to_string());
                }
                // Per-file CSV keeps its own header; stdout gets one
                // header plus an experiment-name column.
                let name = exp.name();
                for row in csv.lines().skip(1) {
                    println!("{name},{row}");
                }
            }
            Format::Markdown => unreachable!("rejected above"),
        }
    }
    if args.format == Format::Json && multi {
        println!("]");
    }
    eprintln!(
        "total {:.1}s; artifacts in {}/",
        t0.elapsed().as_secs_f64(),
        args.out_dir
    );
    if !write_failures.is_empty() {
        let affected: BTreeSet<&str> = write_failures.iter().map(String::as_str).collect();
        eprintln!(
            "error: artifact write(s) failed for: {}",
            affected.into_iter().collect::<Vec<_>>().join(", ")
        );
        return ExitCode::FAILURE;
    }
    if !truncated.is_empty() {
        eprintln!(
            "deadline truncated: partial artifacts for: {}",
            truncated.join(", ")
        );
        return ExitCode::from(3);
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(argv: &[&str]) -> Result<Args, String> {
        parse_args(&argv.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn plain_modes_parse() {
        assert!(parse(&["--list"]).is_ok());
        assert!(parse(&["--all", "--ci"]).is_ok());
        let a = parse(&["run", "fig8", "fig9", "--seed", "5", "--ci"]).unwrap();
        assert_eq!(a.names, ["fig8", "fig9"]);
        assert_eq!(a.seed, 5);
        assert!(a.ci);
    }

    #[test]
    fn list_conflicts_are_rejected() {
        // Previously `--list` silently won and the run request was dropped.
        let err = parse(&["--list", "run", "fig8"]).unwrap_err();
        assert!(err.contains("--list cannot be combined"), "{err}");
        let err = parse(&["--all", "--list"]).unwrap_err();
        assert!(err.contains("--list cannot be combined"), "{err}");
        let err = parse(&["--list", "--ci"]).unwrap_err();
        assert!(err.contains("--ci applies to experiment runs"), "{err}");
    }

    #[test]
    fn all_with_names_is_rejected() {
        let err = parse(&["--all", "run", "fig8"]).unwrap_err();
        assert!(err.contains("--all already selects"), "{err}");
    }

    #[test]
    fn checkpoint_flags_parse() {
        let a = parse(&[
            "run",
            "fig9",
            "--checkpoint-dir",
            "ckpt",
            "--resume",
            "--deadline-secs",
            "90.5",
        ])
        .unwrap();
        assert_eq!(a.checkpoint_dir.as_deref(), Some("ckpt"));
        assert!(a.resume);
        assert_eq!(a.deadline_secs, Some(90.5));
    }

    #[test]
    fn fault_flag_parses_and_misuse_is_rejected() {
        let a = parse(&["run", "fig9", "--fault", "panic:3"]).unwrap();
        assert_eq!(a.fault.as_deref(), Some("panic:3"));
        let a = parse(&["--all", "--fault", "io_fail:figure_9"]).unwrap();
        assert_eq!(a.fault.as_deref(), Some("io_fail:figure_9"));

        for bad in ["panic", "panic:", "panic:x", "explode:1", "io_fail:", ""] {
            let err = parse(&["run", "fig9", "--fault", bad]).unwrap_err();
            assert!(
                err.contains("bad --fault spec"),
                "fault '{bad}' must be rejected: {err}"
            );
        }
        let err = parse(&["run", "fig9", "--fault"]).unwrap_err();
        assert!(err.contains("--fault needs a value"), "{err}");
        let err = parse(&["--list", "--fault", "panic:3"]).unwrap_err();
        assert!(err.contains("apply to experiment runs"), "{err}");
    }

    #[test]
    fn checkpoint_flag_misuse_is_rejected() {
        let err = parse(&["run", "fig9", "--resume"]).unwrap_err();
        assert!(err.contains("--resume needs --checkpoint-dir"), "{err}");
        let err = parse(&["--list", "--checkpoint-dir", "ckpt"]).unwrap_err();
        assert!(err.contains("apply to experiment runs"), "{err}");
        for bad in ["0", "-3", "nan", "inf", "x"] {
            let err = parse(&["run", "fig9", "--deadline-secs", bad]).unwrap_err();
            assert!(
                err.contains("deadline"),
                "deadline '{bad}' must be rejected: {err}"
            );
        }
    }
}
