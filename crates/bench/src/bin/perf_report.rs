//! `perf_report` — the repo's tracked-benchmark harness.
//!
//! Times the canonical hot kernels (the `Medium` block step at several
//! antenna counts, FSK modulation/demodulation, one full relayed exchange,
//! a quick Fig. 9 run) plus the supporting micro-kernels, and prints a
//! machine-readable JSON report to stdout (and optionally a file).
//!
//! Usage:
//!
//! ```text
//! perf_report [--quick] [--out results/BENCH_N.json]
//! ```
//!
//! `--quick` shrinks iteration counts so CI can smoke-test the harness in
//! seconds; timings from a loaded CI machine are not comparable across
//! runs, so the checked-in `results/BENCH_*.json` files are produced on a
//! quiet machine via `scripts/bench.sh`.

use hb_channel::fading::Fading;
use hb_channel::geometry::Placement;
use hb_channel::medium::{Medium, MediumConfig};
use hb_channel::pathloss::PathlossModel;
use hb_dsp::complex::C64;
use hb_imd::commands::Command;
use hb_phy::bits::Prbs;
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::stream::StreamingDetector;
use hb_shield::jamsignal::JamSignal;
use hb_testbed::experiments::{fig9, relay_one_exchange, Effort};
use hb_testbed::scenario::{ScenarioBuilder, ScenarioConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

/// One timed kernel: name, iterations, total seconds.
struct Timing {
    name: &'static str,
    iters: u64,
    seconds: f64,
    /// What one iteration of the kernel covers (for human readers).
    unit: &'static str,
    /// Samples processed per iteration, when the kernel has a meaningful
    /// per-sample cost (the `medium_block_*` family: antennas ×
    /// block_len received samples per block).
    samples: Option<u64>,
}

impl Timing {
    fn per_iter_us(&self) -> f64 {
        self.seconds / self.iters as f64 * 1e6
    }

    fn per_sample_ns(&self) -> Option<f64> {
        self.samples
            .map(|s| self.seconds / self.iters as f64 / s as f64 * 1e9)
    }

    fn with_samples(mut self, samples: u64) -> Self {
        self.samples = Some(samples);
        self
    }
}

/// Times `f` for `iters` iterations after one warm-up iteration.
fn time_kernel<F: FnMut()>(name: &'static str, unit: &'static str, iters: u64, mut f: F) -> Timing {
    f(); // warm-up: populate caches/pools so steady state is measured
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    Timing {
        name,
        iters,
        seconds: start.elapsed().as_secs_f64(),
        unit,
        samples: None,
    }
}

/// A medium with `n` antennas in a line, all cross links set, `n_tx`
/// transmitters staging every block.
fn bench_medium(n: usize, n_tx: usize, blocks: u64) -> Timing {
    let mut m = Medium::new(MediumConfig::default(), 42);
    for i in 0..n {
        m.add_antenna(Placement::los("ant", i as f64 * 0.5, 0.0));
    }
    for a in 0..n {
        for b in 0..n {
            if a != b {
                m.set_gain(a, b, C64::new(0.1 / (1.0 + a as f64), 0.05));
            }
        }
    }
    let burst: Vec<C64> = (0..m.config().block_len)
        .map(|i| C64::cis(i as f64 * 0.3))
        .collect();
    let name = match n {
        3 => "medium_block_3ant",
        8 => "medium_block_8ant",
        16 => "medium_block_16ant",
        _ => panic!("no tracked name for a {n}-antenna dense medium"),
    };
    let samples = (n * m.config().block_len) as u64;
    time_kernel(
        name,
        "1 block: stage txs + receive at every antenna + end_block",
        blocks,
        move || {
            for tx in 0..n_tx {
                m.transmit(tx, 0, &burst);
            }
            for rx in 0..n {
                let y = m.receive(rx, 0);
                std::hint::black_box(y.last().copied());
            }
            m.end_block();
        },
    )
    .with_samples(samples)
}

/// A ward-scale culled medium: `n` antennas along a hospital corridor
/// (2 m pitch), links drawn from the indoor MICS pathloss model, and a
/// finite cull margin. Every 8th antenna is an implanted transmitter
/// (`n_tx` of them stage each block); the +40 dB per in-body endpoint
/// means each receiver only hears the staged implants within ~28 m, so
/// the audible degree per receiver stays bounded as `n` grows — this is
/// the scaling regime the sparse engine exists for, and what keeps the
/// 128-antenna per-sample cost within the 16-antenna dense bench's
/// envelope.
fn bench_medium_ward(n: usize, blocks: u64) -> Timing {
    let n_tx = n / 8;
    let mut m = Medium::new(
        MediumConfig {
            cull_margin_db: 12.0,
            ..MediumConfig::default()
        },
        42,
    );
    for i in 0..n {
        let p = Placement::los("ward", i as f64 * 2.0, 0.0);
        m.add_antenna(if i % 8 == 0 { p.implanted() } else { p });
    }
    m.build_links(&PathlossModel::mics_indoor(), Fading::None);
    let burst: Vec<C64> = (0..m.config().block_len)
        .map(|i| C64::cis(i as f64 * 0.3))
        .collect();
    let name = match n {
        64 => "medium_block_64ant",
        128 => "medium_block_128ant",
        _ => panic!("no tracked name for a {n}-antenna ward medium"),
    };
    let samples = (n * m.config().block_len) as u64;
    time_kernel(
        name,
        "1 block on the culled ward corridor: stage implants + receive everywhere + end_block",
        blocks,
        move || {
            for k in 0..n_tx {
                m.transmit(k * 8, 0, &burst);
            }
            for rx in 0..n {
                let y = m.receive(rx, 0);
                std::hint::black_box(y.last().copied());
            }
            m.end_block();
        },
    )
    .with_samples(samples)
}

/// The repeat-receive (cache-hit) path: the shield, IMD and eavesdropper
/// all re-reading the same (antenna, channel) within one block. This is
/// *the* Medium-receive microbench the PR-2 acceptance criterion tracks:
/// the seed engine cloned the cached `Vec<C64>` on every repeat call;
/// `receive_view` returns a borrow of the pooled buffer instead.
fn bench_medium_repeat(blocks: u64) -> Timing {
    let mut m = Medium::new(MediumConfig::default(), 7);
    for i in 0..3 {
        m.add_antenna(Placement::los("ant", i as f64 * 0.5, 0.0));
    }
    m.set_gain(0, 2, C64::new(0.3, 0.1));
    let burst = vec![C64::ONE; m.config().block_len];
    time_kernel(
        "medium_receive_cached",
        "1 block: 1 fresh receive + 255 repeat receives",
        blocks,
        move || {
            m.transmit(0, 0, &burst);
            for _ in 0..256 {
                let y = m.receive_view(2, 0);
                std::hint::black_box(y.first().copied());
            }
            m.end_block();
        },
    )
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let scale: u64 = if quick { 1 } else { 10 };

    // --- Layer 1: the Medium block step ---
    let mut timings: Vec<Timing> = vec![
        bench_medium(3, 2, 2_000 * scale),
        bench_medium(8, 3, 800 * scale),
        bench_medium(16, 4, 300 * scale),
        bench_medium_ward(64, 120 * scale),
        bench_medium_ward(128, 60 * scale),
        bench_medium_repeat(2_000 * scale),
    ];

    // --- Layer 2: the FSK modem ---
    let modem = FskModem::new(FskParams::mics_default());
    let mut prbs = Prbs::new(0x5A);
    let bits = prbs.bits(1024);
    let wave = modem.modulate(&bits);
    {
        let modem = modem.clone();
        let bits = bits.clone();
        timings.push(time_kernel(
            "fsk_modulate_1024bits",
            "modulate 1024 bits (24576 samples)",
            100 * scale,
            move || {
                std::hint::black_box(modem.modulate(&bits).len());
            },
        ));
    }
    {
        let modem = modem.clone();
        let wave = wave.clone();
        timings.push(time_kernel(
            "fsk_demodulate_1024bits",
            "demodulate 24576 samples",
            100 * scale,
            move || {
                std::hint::black_box(modem.demodulate(&wave).len());
            },
        ));
    }
    {
        let wave = wave.clone();
        let mut det = StreamingDetector::new(FskParams::mics_default(), 4);
        timings.push(time_kernel(
            "streaming_detector_24k_samples",
            "push 24576 samples through the 24-phase detector",
            10 * scale,
            move || {
                for block in wave.chunks(16) {
                    std::hint::black_box(det.push_block(block).len());
                }
            },
        ));
    }
    {
        // The raw blocked MAC stage alone (stage (a) of the detector):
        // isolates the correlator kernel from the per-symbol state machine.
        // `detection_correlator` is the exact constructor the production
        // detectors use, so this times the same filter they run.
        let wave = wave.clone();
        let params = FskParams::mics_default();
        let sps = params.samples_per_symbol();
        let mut corr = hb_phy::stream::detection_correlator(params);
        let (mut e0, mut e1) = (Vec::new(), Vec::new());
        timings.push(time_kernel(
            "detector_sweep_24k",
            "24576 samples through the raw blocked 24-phase MAC stage",
            10 * scale,
            move || {
                e0.clear();
                e1.clear();
                for (i, block) in wave.chunks(16).enumerate() {
                    corr.process_block(block, (i * 16) % sps, &mut e0, &mut e1);
                }
                std::hint::black_box(e1.last().copied());
            },
        ));
    }
    {
        let mut rng = StdRng::seed_from_u64(3);
        timings.push(time_kernel(
            "white_noise_4k",
            "4096 complex Gaussian samples",
            100 * scale,
            move || {
                std::hint::black_box(hb_dsp::noise::white_noise(&mut rng, 4096, 1.0).len());
            },
        ));
    }
    {
        // The batched NoiseSource on a pooled buffer — the allocation-free
        // form every Medium receive and jam synthesis path uses.
        let mut rng = StdRng::seed_from_u64(5);
        let src = hb_dsp::noise::NoiseSource::new(1.0);
        let mut buf = vec![hb_dsp::C64::ZERO; 65_536];
        timings.push(time_kernel(
            "noise_fill_64k",
            "65536 complex Gaussian samples into a pooled buffer (batched paired Box-Muller)",
            10 * scale,
            move || {
                src.fill(&mut rng, &mut buf);
                std::hint::black_box(buf.last().copied());
            },
        ));
    }
    {
        // The phase-recurrence oscillator that replaced per-sample sin/cos
        // in FSK modulation and CFO rotation.
        let mut osc = hb_dsp::osc::Rotator::new(0.0, 2.0 * std::f64::consts::PI * 50e3 / 300e3);
        let mut buf = vec![hb_dsp::C64::ZERO; 65_536];
        timings.push(time_kernel(
            "osc_rotator_64k",
            "65536 complex tone samples via the rotator recurrence",
            10 * scale,
            move || {
                osc.fill(&mut buf);
                std::hint::black_box(buf.last().copied());
            },
        ));
    }
    {
        let mut jam = JamSignal::shaped_for_fsk(FskParams::mics_default(), 256);
        jam.set_power_dbm(-35.0);
        let mut rng = StdRng::seed_from_u64(4);
        timings.push(time_kernel(
            "jam_next_4k",
            "4096 shaped jamming samples",
            100 * scale,
            move || {
                std::hint::black_box(jam.next_samples(&mut rng, 4096).len());
            },
        ));
    }

    {
        // The adaptive Monte-Carlo engine's own bookkeeping: a no-op trial
        // through a full cap-bounded run (4096 trials over ~7 doubling
        // rounds, single worker) isolates seed derivation, count pooling
        // and Wilson-interval evaluation from simulation cost. This is the
        // fixed tax every adaptive experiment pays per data point — it
        // must stay negligible next to one real exchange (~ms).
        use hb_testbed::montecarlo::{adaptive_proportions_with, McConfig};
        let cfg = McConfig {
            initial_trials: 64,
            max_trials: 4096,
            target_half_width: 0.0, // unreachable: always runs to the cap
            z: hb_dsp::stats::Z_95,
            bootstrap_resamples: 0,
        };
        timings.push(time_kernel(
            "montecarlo_round_overhead",
            "4096-trial adaptive run (no-op trials): engine overhead only",
            20 * scale,
            move || {
                let run = adaptive_proportions_with(1, &cfg, 11, |s| [(s & 1, 1), (s & 2, 2)]);
                std::hint::black_box(run.estimates[0].ci_hi);
            },
        ));
    }
    {
        // The same cap-bounded no-op run, but journaled: every doubling
        // round encodes, checksums, fsyncs, and atomically renames a
        // checkpoint journal. The delta against `montecarlo_round_overhead`
        // is the full crash-safety tax per adaptive run (~7 fsynced
        // journal writes, a few ms total). That is per *data point*, not
        // per trial: a real data point simulates hundreds of ~ms
        // exchanges, so the tax must stay well under a percent of that.
        use hb_testbed::checkpoint::RunCtl;
        use hb_testbed::montecarlo::{adaptive_proportions_ctl, McConfig};
        let cfg = McConfig {
            initial_trials: 64,
            max_trials: 4096,
            target_half_width: 0.0, // unreachable: always runs to the cap
            z: hb_dsp::stats::Z_95,
            bootstrap_resamples: 0,
        };
        let dir = std::env::temp_dir().join(format!("hb_perf_resume_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        timings.push(time_kernel(
            "montecarlo_resume_overhead",
            "4096-trial adaptive run with per-round journal checkpoints",
            20 * scale,
            {
                let dir = dir.clone();
                move || {
                    let ctl = RunCtl::new(Some(dir.clone()), false, None);
                    let run: hb_testbed::montecarlo::McRun<2> =
                        adaptive_proportions_ctl(1, &cfg, 11, Some(&ctl), |s| {
                            [(s & 1, 1), (s & 2, 2)]
                        });
                    std::hint::black_box(run.estimates[0].ci_hi);
                }
            },
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    // --- Layer 3: one full relayed exchange and a quick Fig. 9 ---
    timings.push(time_kernel(
        "relay_one_exchange",
        "one 60 ms relayed interrogation (1125 blocks)",
        3 * scale,
        || {
            let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(9)).build();
            relay_one_exchange(&mut scenario, &mut [], Command::Interrogate);
            std::hint::black_box(scenario.shield.as_ref().unwrap().stats.imd_frames_ok);
        },
    ));
    timings.push(time_kernel(
        "arq_exchange_faulty",
        "one ARQ interrogation under calibrated burst loss (intensity 1.0)",
        3 * scale,
        || {
            use hb_testbed::experiments::resilience;
            let mut cfg = ScenarioConfig::paper(9);
            cfg.fault = resilience::fault_plan(1.0);
            let mut scenario = ScenarioBuilder::new(cfg).build();
            let out = hb_testbed::recovery::run_arq_exchange(
                &mut scenario,
                &mut [],
                Command::Interrogate,
                hb_imd::arq::ArqConfig::default(),
                hb_mics::session::SessionConfig::default(),
            );
            std::hint::black_box(out.map(|o| o.blocks).unwrap_or(0));
        },
    ));
    timings.push(time_kernel(
        "defense_matrix_tiny",
        "one clean defended exchange per defense (shield, imdfence, wakeup-radio)",
        2 * scale,
        || {
            use hb_testbed::defense::{run_defended_exchange, DEFENSES};
            for defense in DEFENSES {
                let mut cfg = ScenarioConfig::paper(9);
                defense.configure(&mut cfg);
                let mut builder = ScenarioBuilder::new(cfg);
                let mut rig = defense.install(&mut builder);
                let mut scenario = builder.build();
                let report = run_defended_exchange(
                    &mut scenario,
                    &mut rig,
                    &mut [],
                    Command::Interrogate,
                    0.120,
                );
                std::hint::black_box(report.delivered);
            }
        },
    ));
    if quick {
        timings.push(time_kernel(
            "fig9_one_location",
            "eavesdropper BER at location 1, 2 packets",
            1,
            || {
                std::hint::black_box(fig9::ber_at_location(1, 2, 3));
            },
        ));
    } else {
        timings.push(time_kernel(
            "fig9_quick_run",
            "full 18-location Fig. 9 sweep at tiny effort",
            1,
            || {
                std::hint::black_box(fig9::run(Effort::tiny(), 1).cdf.median());
            },
        ));
    }

    // --- Report ---
    let mut json = String::from("{\n");
    json.push_str(&format!("  \"quick\": {quick},\n"));
    json.push_str(&format!(
        "  \"threads\": {},\n",
        hb_testbed::parallel_threads()
    ));
    json.push_str("  \"kernels\": [\n");
    for (i, t) in timings.iter().enumerate() {
        let per_sample = t
            .per_sample_ns()
            .map(|ns| format!("\"per_sample_ns\": {ns:.3}, "))
            .unwrap_or_default();
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"iters\": {}, \"total_s\": {:.6}, \"per_iter_us\": {:.3}, {}\"unit\": \"{}\"}}{}\n",
            t.name,
            t.iters,
            t.seconds,
            t.per_iter_us(),
            per_sample,
            t.unit,
            if i + 1 < timings.len() { "," } else { "" }
        ));
    }
    json.push_str("  ]\n}\n");

    print!("{json}");
    if let Some(path) = out_path {
        std::fs::write(&path, &json).unwrap_or_else(|e| panic!("write {path}: {e}"));
        eprintln!("wrote {path}");
    }
}
