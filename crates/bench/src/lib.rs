//! # hb-bench — benchmark harness and evaluation CLI
//!
//! Two binaries live under `src/bin/`:
//!
//! * `perf_report` — the tracked-benchmark harness behind
//!   `scripts/bench.sh` (`results/BENCH_*.json`).
//! * `hb_eval` — the experiment-registry CLI: `--list`, `run <name>...`,
//!   `--all`, with `--effort`/`--seed`/`--threads` and
//!   `--format text|csv|json` artifacts written under `results/`.
//!
//! Criterion benches live under `benches/`:
//!
//! * `dsp_micro` — FFT, shaped-noise generation, Welch PSD, filtering.
//! * `phy_micro` — FSK modulation/demodulation, streaming detection,
//!   Sid matching.
//! * `shield_micro` — antidote computation, jam generation, a full
//!   relay-exchange simulation step.
//! * `experiments` — one benchmark per paper table/figure, each running a
//!   reduced-effort version of the corresponding experiment and asserting
//!   its headline property, so `cargo bench` regenerates the whole
//!   evaluation (see EXPERIMENTS.md for paper-scale runs).

#![forbid(unsafe_code)]
