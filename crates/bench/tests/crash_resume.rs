//! End-to-end crash safety of the `hb_eval` binary: a run killed by the
//! fault injector mid-evaluation, then resumed with `--resume`, produces
//! a byte-identical JSON artifact to an uninterrupted run — at
//! `HB_THREADS=1` and `4`. Also exercises graceful degradation
//! (`HB_FAULT=panic:<i>` → run completes with `"degraded": true`) and
//! artifact-write failure reporting (`HB_FAULT=io_fail:<substr>` → exit
//! code 1 naming the affected experiment).
//!
//! These spawn the real binary (`CARGO_BIN_EXE_hb_eval`), so the fault
//! injector's process-global state — the env-parsed fault, the round
//! counter, the `exit(86)` — behaves exactly as in production.

use std::path::PathBuf;
use std::process::{Command, Output};

const CRASH_EXIT_CODE: i32 = 86;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hb_crashres_{}_{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Runs `hb_eval run fig9 --effort tiny` with the given extra args,
/// thread count, and optional `HB_FAULT`, never inheriting a fault from
/// the test environment.
fn hb_eval(extra: &[&str], threads: usize, fault: Option<&str>) -> Output {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_hb_eval"));
    cmd.args(["run", "fig9", "--effort", "tiny"])
        .args(extra)
        .env("HB_THREADS", threads.to_string())
        .env_remove("HB_FAULT");
    if let Some(f) = fault {
        cmd.env("HB_FAULT", f);
    }
    cmd.output().expect("spawn hb_eval")
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn killed_and_resumed_run_matches_uninterrupted_byte_for_byte() {
    let mut artifacts: Vec<Vec<u8>> = Vec::new();
    for threads in [1usize, 4] {
        let ckpt = tmp_dir(&format!("ckpt_{threads}"));
        let out_crash = tmp_dir(&format!("out_crash_{threads}"));
        let out_clean = tmp_dir(&format!("out_clean_{threads}"));

        // Phase 1: the injected crash kills the process right after the
        // first round's journal hits disk — exactly a mid-run kill.
        let crashed = hb_eval(
            &[
                "--out-dir",
                out_crash.to_str().unwrap(),
                "--checkpoint-dir",
                ckpt.to_str().unwrap(),
            ],
            threads,
            Some("crash_after_round:1"),
        );
        assert_eq!(
            crashed.status.code(),
            Some(CRASH_EXIT_CODE),
            "injected crash must exit {CRASH_EXIT_CODE}; stderr:\n{}",
            stderr_of(&crashed)
        );
        assert!(
            std::fs::read_dir(ckpt.join("fig9"))
                .map(|d| d.count() > 0)
                .unwrap_or(false),
            "the crash must leave at least one journal behind"
        );

        // Phase 2: resume from the journals, no fault installed.
        let resumed = hb_eval(
            &[
                "--out-dir",
                out_crash.to_str().unwrap(),
                "--checkpoint-dir",
                ckpt.to_str().unwrap(),
                "--resume",
            ],
            threads,
            None,
        );
        assert!(
            resumed.status.success(),
            "resume must succeed; stderr:\n{}",
            stderr_of(&resumed)
        );

        // Phase 3: an uninterrupted run for comparison.
        let clean = hb_eval(&["--out-dir", out_clean.to_str().unwrap()], threads, None);
        assert!(clean.status.success(), "{}", stderr_of(&clean));

        let resumed_json = std::fs::read(out_crash.join("figure_9.json")).expect("resumed json");
        let clean_json = std::fs::read(out_clean.join("figure_9.json")).expect("clean json");
        assert_eq!(
            resumed_json, clean_json,
            "resumed artifact must be byte-identical at {threads} thread(s)"
        );
        assert_eq!(
            resumed.stdout, clean.stdout,
            "resumed stdout must match at {threads} thread(s)"
        );
        artifacts.push(clean_json);

        for d in [&ckpt, &out_crash, &out_clean] {
            let _ = std::fs::remove_dir_all(d);
        }
    }
    // The engine is thread-count invariant, so the 1- and 4-thread
    // artifacts must agree too.
    assert_eq!(artifacts[0], artifacts[1]);
}

#[test]
fn quarantined_panic_degrades_gracefully() {
    let ckpt = tmp_dir("quar_ckpt");
    let out = tmp_dir("quar_out");
    // Trial index 1 runs in the first round at tiny effort (round 1 is
    // trials {0, 1}), so this fires in every adaptive call.
    let run = hb_eval(
        &[
            "--out-dir",
            out.to_str().unwrap(),
            "--checkpoint-dir",
            ckpt.to_str().unwrap(),
        ],
        1,
        Some("panic:1"),
    );
    assert!(
        run.status.success(),
        "a quarantined panic must not kill the run; stderr:\n{}",
        stderr_of(&run)
    );
    let json = std::fs::read_to_string(out.join("figure_9.json")).expect("artifact written");
    assert!(
        json.contains("\"degraded\": true"),
        "artifact must carry the degraded flag:\n{json}"
    );
    assert!(
        json.contains("\"quarantined\":"),
        "artifact must report the quarantine count:\n{json}"
    );
    assert!(
        stderr_of(&run).contains("degraded"),
        "stderr must surface the degradation:\n{}",
        stderr_of(&run)
    );
    let _ = std::fs::remove_dir_all(&ckpt);
    let _ = std::fs::remove_dir_all(&out);
}

#[test]
fn artifact_write_failure_sets_exit_code_and_names_the_experiment() {
    let out = tmp_dir("iofail_out");
    let run = hb_eval(
        &["--out-dir", out.to_str().unwrap()],
        1,
        Some("io_fail:figure_9"),
    );
    assert_eq!(
        run.status.code(),
        Some(1),
        "failed artifact writes must exit 1; stderr:\n{}",
        stderr_of(&run)
    );
    let err = stderr_of(&run);
    assert!(
        err.contains("artifact write(s) failed for: fig9"),
        "stderr must name the affected experiment:\n{err}"
    );
    assert!(
        !out.join("figure_9.json").exists(),
        "the atomic write must not leave a partial artifact"
    );
    let _ = std::fs::remove_dir_all(&out);
}
