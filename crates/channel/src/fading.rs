//! Small-scale fading: complex link gains with Rayleigh/Rician statistics,
//! and a tapped-delay-line multipath channel for the wideband (OFDM)
//! extension.
//!
//! The paper's experiments are static (nothing moves during a run), so the
//! medium draws one complex gain per link per run. Indoor links with line
//! of sight are Rician (strong direct path plus scatter); heavily
//! obstructed links approach Rayleigh.

use hb_dsp::complex::C64;
use hb_dsp::noise::complex_gaussian;
use rand::Rng;

/// Small-scale fading statistics for a link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Fading {
    /// No fading: deterministic gain with uniform random phase.
    None,
    /// Rician fading with the given K-factor (ratio of direct-path power
    /// to scattered power, linear). K → ∞ approaches `None`.
    Rician(f64),
    /// Rayleigh fading (no direct path) — equivalent to `Rician(0)`.
    Rayleigh,
}

impl Fading {
    /// Draws a unit-mean-power complex gain with these statistics.
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> C64 {
        match *self {
            Fading::None => C64::from_polar(1.0, rng.gen::<f64>() * std::f64::consts::TAU),
            Fading::Rayleigh => complex_gaussian(rng, 1.0),
            Fading::Rician(k) => {
                assert!(k >= 0.0, "Rician K must be non-negative");
                // Direct path carries k/(k+1) of the power, scatter 1/(k+1).
                let direct = C64::from_polar(
                    (k / (k + 1.0)).sqrt(),
                    rng.gen::<f64>() * std::f64::consts::TAU,
                );
                direct + complex_gaussian(rng, 1.0 / (k + 1.0))
            }
        }
    }
}

/// A static tapped-delay-line multipath channel (for wideband/OFDM
/// experiments; narrowband MICS links use a single tap).
#[derive(Debug, Clone)]
pub struct MultipathChannel {
    /// Complex tap gains; tap `i` has a delay of `i` samples.
    pub taps: Vec<C64>,
}

impl MultipathChannel {
    /// A single-tap (flat) channel.
    pub fn flat(gain: C64) -> Self {
        MultipathChannel { taps: vec![gain] }
    }

    /// Draws an exponentially-decaying power-delay profile with `n_taps`
    /// taps and decay constant `decay` (power ratio between successive
    /// taps), normalized to unit total power.
    pub fn random_exponential<R: Rng + ?Sized>(n_taps: usize, decay: f64, rng: &mut R) -> Self {
        assert!(n_taps >= 1 && decay > 0.0 && decay <= 1.0);
        let mut taps = Vec::with_capacity(n_taps);
        let mut p = 1.0;
        for _ in 0..n_taps {
            taps.push(complex_gaussian(rng, p));
            p *= decay;
        }
        let total: f64 = taps.iter().map(|t| t.norm_sq()).sum();
        let k = 1.0 / total.sqrt();
        for t in taps.iter_mut() {
            *t = t.scale(k);
        }
        MultipathChannel { taps }
    }

    /// Applies the channel by linear convolution; output has
    /// `input.len() + taps.len() - 1` samples.
    pub fn apply(&self, input: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; input.len() + self.taps.len() - 1];
        for (i, &x) in input.iter().enumerate() {
            for (j, &h) in self.taps.iter().enumerate() {
                out[i + j] += x * h;
            }
        }
        out
    }

    /// Delay spread in samples (last tap index).
    pub fn delay_spread(&self) -> usize {
        self.taps.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_has_unit_magnitude_random_phase() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut phases = Vec::new();
        for _ in 0..100 {
            let g = Fading::None.draw(&mut rng);
            assert!((g.abs() - 1.0).abs() < 1e-12);
            phases.push(g.arg());
        }
        // Phases spread over the circle.
        let spread = phases.iter().cloned().fold(f64::MIN, f64::max)
            - phases.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 3.0);
    }

    #[test]
    fn rayleigh_unit_mean_power() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 50_000;
        let p: f64 = (0..n)
            .map(|_| Fading::Rayleigh.draw(&mut rng).norm_sq())
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.03, "power {p}");
    }

    #[test]
    fn rician_unit_mean_power_and_lower_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 50_000;
        let k = 10.0;
        let powers: Vec<f64> = (0..n)
            .map(|_| Fading::Rician(k).draw(&mut rng).norm_sq())
            .collect();
        let mean = powers.iter().sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.03, "power {mean}");
        // High-K Rician has much smaller power variance than Rayleigh.
        let var = powers.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>() / n as f64;
        assert!(var < 0.3, "variance {var}");
    }

    #[test]
    fn rician_zero_k_is_rayleigh_like() {
        let mut rng = StdRng::seed_from_u64(4);
        let n = 50_000;
        let p: f64 = (0..n)
            .map(|_| Fading::Rician(0.0).draw(&mut rng).norm_sq())
            .sum::<f64>()
            / n as f64;
        assert!((p - 1.0).abs() < 0.03);
    }

    #[test]
    fn multipath_unit_power_normalization() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20 {
            let ch = MultipathChannel::random_exponential(8, 0.5, &mut rng);
            let total: f64 = ch.taps.iter().map(|t| t.norm_sq()).sum();
            assert!((total - 1.0).abs() < 1e-9);
            assert_eq!(ch.delay_spread(), 7);
        }
    }

    #[test]
    fn flat_channel_scales_input() {
        let ch = MultipathChannel::flat(C64::new(0.0, 2.0));
        let out = ch.apply(&[C64::ONE, C64::new(1.0, 1.0)]);
        assert_eq!(out.len(), 2);
        assert!((out[0] - C64::new(0.0, 2.0)).abs() < 1e-12);
    }

    #[test]
    fn convolution_length_and_superposition() {
        let mut rng = StdRng::seed_from_u64(6);
        let ch = MultipathChannel::random_exponential(4, 0.7, &mut rng);
        let a = vec![C64::ONE; 10];
        let b = vec![C64::J; 10];
        let sum: Vec<C64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let ya = ch.apply(&a);
        let yb = ch.apply(&b);
        let ysum = ch.apply(&sum);
        assert_eq!(ya.len(), 13);
        for i in 0..13 {
            assert!((ysum[i] - (ya[i] + yb[i])).abs() < 1e-12);
        }
    }
}
