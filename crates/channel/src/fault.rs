//! Deterministic channel fault injection.
//!
//! The paper's testbed lives in a clean lab; real wards don't. A
//! [`FaultPlan`] arms the medium with seeded adversity — burst packet
//! loss modeled as deep gain dropouts, impulse-noise storms pinned to
//! chosen MICS channels, and timed shield outages (consumed by the
//! shield model, not the medium) — so the session layer's retry and
//! rescan machinery can be stressed reproducibly.
//!
//! # Determinism contract
//!
//! Faults draw from a **dedicated RNG stream**, never from the medium's
//! main stream:
//!
//! * With the default (inactive) plan the medium constructs no fault
//!   state and consumes **zero** extra draws anywhere — every receive
//!   is bit-identical to the fault-free engine. The equivalence
//!   proptests pin this the same way PR 8 pinned `−∞ ≡ dense`.
//! * With an active plan, the per-block hazard draws happen exactly
//!   once per block (in [`Medium::end_block`](crate::Medium::end_block)
//!   and at construction), never per receive, so the fault schedule is
//!   a pure function of `(plan, seed, block index)` — independent of
//!   how many antennas receive, in what order, or on how many threads.
//!
//! The storm's noise fill does draw per affected receive, but from the
//! fault stream, so the main stream's draw sequence (receiver noise,
//! impulse interference, link fading) is untouched even when faults
//! fire.

/// A deterministic schedule of channel adversity. `Copy` on purpose so
/// it rides along inside `MediumConfig` and scenario configs.
///
/// All rates are per simulation block. The inactive default injects
/// nothing and costs nothing.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Per-block probability that a gain-dropout burst starts. During a
    /// burst every staged transmission is attenuated by
    /// [`dropout_depth_db`](FaultPlan::dropout_depth_db) at the mixture
    /// (receiver noise is untouched), modeling a deep fade / antenna
    /// detune that takes the whole link budget down for a few blocks —
    /// the channel-level cause of burst packet loss.
    pub dropout_start_prob: f64,
    /// Dropout burst length, blocks.
    pub dropout_len_blocks: u32,
    /// Dropout depth, dB (signal-to-noise loss during the burst).
    pub dropout_depth_db: f64,
    /// Per-block probability that an impulse-noise storm starts. During
    /// a storm, extra white noise at
    /// [`storm_power_dbm`](FaultPlan::storm_power_dbm) is added to every
    /// receive on the channels selected by
    /// [`storm_channel_mask`](FaultPlan::storm_channel_mask) — persistent
    /// interference that raises CCA/LBT readings and drowns frames,
    /// the stimulus for a MICS channel rescan.
    pub storm_start_prob: f64,
    /// Storm length, blocks.
    pub storm_len_blocks: u32,
    /// Storm noise power, dBm per channel.
    pub storm_power_dbm: f64,
    /// Bit `c` selects MICS channel `c` for storm noise.
    pub storm_channel_mask: u16,
    /// First shield outage start, seconds. The medium ignores these
    /// three fields; the scenario layer forwards them to the shield,
    /// which silences its own emissions (jamming and relays) inside the
    /// windows. Kept on the plan so one struct describes the whole
    /// adversity schedule.
    pub outage_start_s: f64,
    /// Shield outage length, seconds (`0` disables outages).
    pub outage_len_s: f64,
    /// Outage repetition period, seconds (`0` means one-shot).
    pub outage_period_s: f64,
}

impl FaultPlan {
    /// The inactive plan: nothing is injected, no fault state is
    /// allocated, and the engine is bit-for-bit the fault-free engine.
    pub const fn none() -> Self {
        FaultPlan {
            dropout_start_prob: 0.0,
            dropout_len_blocks: 0,
            dropout_depth_db: 0.0,
            storm_start_prob: 0.0,
            storm_len_blocks: 0,
            storm_power_dbm: f64::NEG_INFINITY,
            storm_channel_mask: 0,
            outage_start_s: 0.0,
            outage_len_s: 0.0,
            outage_period_s: 0.0,
        }
    }

    /// True when the plan can perturb the *medium* (dropouts or storms).
    /// Outages alone don't arm the medium — they act on the shield.
    pub fn perturbs_medium(&self) -> bool {
        self.dropout_start_prob > 0.0 || self.storm_start_prob > 0.0
    }

    /// True when the plan schedules shield outages.
    pub fn has_outages(&self) -> bool {
        self.outage_len_s > 0.0
    }
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_plan_is_inert() {
        let p = FaultPlan::default();
        assert_eq!(p, FaultPlan::none());
        assert!(!p.perturbs_medium());
        assert!(!p.has_outages());
    }

    #[test]
    fn activity_flags_track_fields() {
        let dropouts = FaultPlan {
            dropout_start_prob: 1e-3,
            dropout_len_blocks: 8,
            dropout_depth_db: 30.0,
            ..FaultPlan::none()
        };
        assert!(dropouts.perturbs_medium());
        assert!(!dropouts.has_outages());

        let outages = FaultPlan {
            outage_start_s: 0.010,
            outage_len_s: 0.005,
            ..FaultPlan::none()
        };
        assert!(!outages.perturbs_medium());
        assert!(outages.has_outages());
    }
}
