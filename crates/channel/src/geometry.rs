//! Planar geometry for the testbed: positions, distances, line-of-sight.
//!
//! The paper's evaluation (Fig. 6) places the IMD and shield at fixed spots
//! in an office and moves the adversary among 18 numbered locations between
//! 20 cm and 30 m away, some line-of-sight and some not. We model positions
//! in a 2-D plane with an explicit LOS flag per location (the original
//! floor plan's walls are not published, so obstruction is declared rather
//! than ray-traced).

/// A point in the 2-D testbed plane, in meters.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// X coordinate, meters.
    pub x: f64,
    /// Y coordinate, meters.
    pub y: f64,
}

impl Point {
    /// Creates a point.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point, meters.
    pub fn distance(&self, other: &Point) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }
}

/// A named placement in the testbed.
#[derive(Debug, Clone)]
pub struct Placement {
    /// Human-readable name ("shield", "adversary-7", …).
    pub label: String,
    /// Position in meters.
    pub position: Point,
    /// Whether this placement has line of sight to the IMD/shield cluster.
    /// Non-LOS placements incur the NLOS pathloss penalty.
    pub line_of_sight: bool,
    /// Whether the antenna is inside body tissue (the IMD's is; signals
    /// crossing the body boundary incur the in-body loss).
    pub in_body: bool,
}

impl Placement {
    /// Convenience constructor for an on-air, line-of-sight placement.
    pub fn los(label: &str, x: f64, y: f64) -> Self {
        Placement {
            label: label.to_string(),
            position: Point::new(x, y),
            line_of_sight: true,
            in_body: false,
        }
    }

    /// Convenience constructor for a non-line-of-sight placement.
    pub fn nlos(label: &str, x: f64, y: f64) -> Self {
        Placement {
            label: label.to_string(),
            position: Point::new(x, y),
            line_of_sight: false,
            in_body: false,
        }
    }

    /// Marks the placement as implanted (in body tissue).
    pub fn implanted(mut self) -> Self {
        self.in_body = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(3.0, 4.0);
        assert!((a.distance(&b) - 5.0).abs() < 1e-12);
        assert!((b.distance(&a) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn distance_to_self_is_zero() {
        let a = Point::new(1.5, -2.5);
        assert_eq!(a.distance(&a), 0.0);
    }

    #[test]
    fn placement_constructors() {
        let p = Placement::los("eve", 1.0, 2.0);
        assert!(p.line_of_sight);
        assert!(!p.in_body);
        let q = Placement::nlos("eve2", 0.0, 0.0);
        assert!(!q.line_of_sight);
        let imd = Placement::los("imd", 0.0, 0.0).implanted();
        assert!(imd.in_body);
    }
}
