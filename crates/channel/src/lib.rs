//! # hb-channel — wireless channel simulation
//!
//! Replaces the paper's physical testbed with a faithful complex-baseband
//! channel model:
//!
//! * [`geometry`] — planar placements with line-of-sight and in-body flags.
//! * [`pathloss`] — the calibrated indoor MICS model: free-space segment,
//!   indoor breakpoint, near-field coupling floor, NLOS penalty, lognormal
//!   shadowing, and the in-body loss term `L_body` of §6(b).
//! * [`fading`] — Rayleigh/Rician link gains and tapped-delay-line
//!   multipath (for the wideband extension).
//! * [`fault`] — deterministic channel fault injection: seeded burst
//!   gain dropouts, impulse-noise storms, and timed shield-outage
//!   schedules, drawn from a dedicated RNG stream.
//! * [`medium`] — the block-stepped shared medium: linear mixing of
//!   concurrent transmissions with per-link complex gains plus receiver
//!   noise, with explicit wired-coupling overrides for the shield's
//!   full-duplex receive antenna.
//! * [`sim`] — the two-phase (produce/consume) poll loop executive.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fading;
pub mod fault;
pub mod geometry;
pub mod medium;
pub mod pathloss;
pub mod sim;
pub mod txsched;

pub use fault::FaultPlan;
pub use geometry::{Placement, Point};
pub use medium::{AntennaId, Medium, MediumConfig, Tick};
pub use pathloss::PathlossModel;
pub use sim::Node;
pub use txsched::TxScheduler;
