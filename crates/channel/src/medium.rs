//! The shared wireless medium: a sample-level, block-stepped simulation of
//! concurrent transmissions at complex baseband.
//!
//! This module replaces the paper's physical testbed (USRP radios in a
//! room). Its model is exactly the one the paper's analysis assumes:
//! *"the wireless channel creates linear combinations of concurrently
//! transmitted signals"* (§6). Every receive antenna observes
//!
//! ```text
//! y_rx[t] = Σ_tx H(tx→rx) · x_tx[t]  +  n_rx[t]
//! ```
//!
//! with complex link gains `H` derived from the pathloss/fading models (or
//! set explicitly for wired couplings like the shield's self-loop `Hself`)
//! and white Gaussian receiver noise at each antenna's noise floor.
//!
//! Time advances in fixed-size blocks (default 16 samples ≈ 53 µs at
//! 300 kHz). Each block has two phases: first every device *stages* its
//! transmissions, then every device *receives* the mixed waveform. The
//! one-block reaction latency this imposes is physical — real receivers
//! also process in buffers. Mid-packet reactions (the shield's
//! detect-then-jam) happen at block granularity.
//!
//! The 3 MHz MICS band is modeled as `n_channels` independent 300 kHz
//! channels — the per-channel-filter front end of §7(c). A transmission is
//! tagged with its channel; receivers subscribe per channel.

use crate::fading::Fading;
use crate::geometry::Placement;
use crate::pathloss::PathlossModel;
use hb_dsp::complex::C64;
use hb_dsp::noise::white_noise;
use hb_dsp::units::ratio_from_db;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Identifies one antenna registered with the medium.
pub type AntennaId = usize;

/// A sample-count timestamp.
pub type Tick = u64;

/// Medium configuration.
#[derive(Debug, Clone, Copy)]
pub struct MediumConfig {
    /// Per-channel complex baseband sample rate, Hz.
    pub fs_hz: f64,
    /// Samples per simulation block.
    pub block_len: usize,
    /// Number of 300 kHz MICS channels simulated.
    pub n_channels: usize,
    /// Default receiver noise floor, dBm (thermal + noise figure over one
    /// channel bandwidth). Per-antenna overrides available.
    pub noise_floor_dbm: f64,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            fs_hz: 300e3,
            block_len: 16,
            // FCC divides the 3 MHz MICS band into 10 channels (§2).
            n_channels: 10,
            // Thermal floor of a 300 kHz channel (-119 dBm) plus a 7 dB
            // receiver noise figure.
            noise_floor_dbm: -112.0,
        }
    }
}

struct StagedTx {
    tx: AntennaId,
    channel: usize,
    samples: Vec<C64>,
}

/// The shared medium. See the module docs for the model.
pub struct Medium {
    cfg: MediumConfig,
    placements: Vec<Placement>,
    /// Per-antenna noise floor, linear power (1.0 ≡ 0 dBm).
    noise_floor: Vec<f64>,
    /// Per-antenna oscillator offset, Hz (transmissions rotate at this
    /// rate relative to the nominal carrier).
    cfo_hz: Vec<f64>,
    /// Impulsive interference: (probability per block, power linear).
    impulse: Option<(f64, f64)>,
    /// Directed link gains; `(a, b)` is the gain from `a`'s transmitter to
    /// `b`'s receiver. Reciprocal by construction unless overridden.
    gains: HashMap<(AntennaId, AntennaId), C64>,
    block_index: u64,
    staged: Vec<StagedTx>,
    rx_cache: HashMap<(AntennaId, usize), Vec<C64>>,
    /// Set once any receive happens in the block; staging is then frozen.
    receiving: bool,
    rng: StdRng,
}

impl Medium {
    /// Creates an empty medium.
    pub fn new(cfg: MediumConfig, seed: u64) -> Self {
        assert!(cfg.block_len > 0 && cfg.n_channels > 0);
        Medium {
            cfg,
            placements: Vec::new(),
            noise_floor: Vec::new(),
            cfo_hz: Vec::new(),
            impulse: None,
            gains: HashMap::new(),
            block_index: 0,
            staged: Vec::new(),
            rx_cache: HashMap::new(),
            receiving: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.cfg
    }

    /// Registers an antenna at a placement; returns its id.
    pub fn add_antenna(&mut self, placement: Placement) -> AntennaId {
        self.placements.push(placement);
        self.noise_floor
            .push(ratio_from_db(self.cfg.noise_floor_dbm));
        self.cfo_hz.push(0.0);
        self.placements.len() - 1
    }

    /// Sets an antenna's oscillator offset, Hz. Its transmissions rotate
    /// at this rate relative to the nominal carrier — receivers with a
    /// different offset see the difference as a carrier frequency offset
    /// (§6(a) of the paper notes the shield compensates for the CFO
    /// between its RF chain and the IMD's).
    pub fn set_cfo_hz(&mut self, a: AntennaId, hz: f64) {
        self.cfo_hz[a] = hz;
    }

    /// Enables impulsive interference: with probability `prob` per block,
    /// a receiver sees an extra white burst at `power_dbm` for that block
    /// (drawn independently per receiver) — a fault-injection hook for
    /// robustness experiments (microwave ovens, ISM neighbours, and other
    /// non-Gaussian RF life).
    pub fn set_impulse_noise(&mut self, prob: f64, power_dbm: f64) {
        assert!((0.0..=1.0).contains(&prob));
        self.impulse = Some((prob, ratio_from_db(power_dbm)));
    }

    /// Number of registered antennas.
    pub fn antenna_count(&self) -> usize {
        self.placements.len()
    }

    /// The placement of an antenna.
    pub fn placement(&self, a: AntennaId) -> &Placement {
        &self.placements[a]
    }

    /// Overrides an antenna's noise floor in dBm.
    pub fn set_noise_floor_dbm(&mut self, a: AntennaId, dbm: f64) {
        self.noise_floor[a] = ratio_from_db(dbm);
    }

    /// Computes link gains for every antenna pair from a pathloss model and
    /// fading statistics (reciprocal: `H(a→b) = H(b→a)`). Self-links stay
    /// absent (zero) unless set explicitly with [`Medium::set_gain`] — a
    /// normal antenna does not hear itself through the air model; the
    /// shield's receive-antenna self-loop is a wired coupling set by its
    /// device model.
    ///
    /// Call after all antennas are registered; explicit gains set *before*
    /// this call are preserved.
    pub fn build_links(&mut self, model: &PathlossModel, fading: Fading) {
        let n = self.placements.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.gains.contains_key(&(a, b)) || self.gains.contains_key(&(b, a)) {
                    continue;
                }
                let loss_db = model.link_loss_db_shadowed(
                    &self.placements[a],
                    &self.placements[b],
                    &mut self.rng,
                );
                let amplitude = ratio_from_db(-loss_db).sqrt();
                let gain = fading.draw(&mut self.rng).scale(amplitude);
                self.gains.insert((a, b), gain);
                self.gains.insert((b, a), gain);
            }
        }
    }

    /// Sets a directed link gain explicitly (used for the shield's wired
    /// self-loop `Hself` and the jam→receive antenna coupling `Hjam→rec`).
    pub fn set_gain(&mut self, tx: AntennaId, rx: AntennaId, gain: C64) {
        self.gains.insert((tx, rx), gain);
    }

    /// The current gain from `tx` to `rx` (zero if no link).
    pub fn gain(&self, tx: AntennaId, rx: AntennaId) -> C64 {
        self.gains.get(&(tx, rx)).copied().unwrap_or(C64::ZERO)
    }

    /// Current block index.
    pub fn block_index(&self) -> u64 {
        self.block_index
    }

    /// Current time in samples (start of the current block).
    pub fn tick(&self) -> Tick {
        self.block_index * self.cfg.block_len as u64
    }

    /// Current time in seconds (start of the current block).
    pub fn time_s(&self) -> f64 {
        self.tick() as f64 / self.cfg.fs_hz
    }

    /// Converts a duration in seconds to whole blocks (rounding up).
    pub fn blocks_for_duration(&self, seconds: f64) -> u64 {
        let samples = seconds * self.cfg.fs_hz;
        (samples / self.cfg.block_len as f64).ceil() as u64
    }

    /// Stages a transmission for the current block. `samples` must not
    /// exceed the block length; shorter bursts are zero-padded (a packet's
    /// final partial block).
    ///
    /// # Panics
    /// Panics if called after any receive in the same block, if the channel
    /// is out of range, or if the burst exceeds the block length.
    pub fn transmit(&mut self, tx: AntennaId, channel: usize, samples: &[C64]) {
        assert!(
            !self.receiving,
            "transmit after receive in the same block: stage all transmissions first"
        );
        assert!(
            channel < self.cfg.n_channels,
            "channel {channel} out of range"
        );
        assert!(
            samples.len() <= self.cfg.block_len,
            "burst of {} exceeds block length {}",
            samples.len(),
            self.cfg.block_len
        );
        assert!(tx < self.placements.len(), "unknown antenna {tx}");
        let mut buf = samples.to_vec();
        buf.resize(self.cfg.block_len, C64::ZERO);
        self.staged.push(StagedTx {
            tx,
            channel,
            samples: buf,
        });
    }

    /// Receives the current block at an antenna on a channel: the
    /// gain-weighted sum of all staged transmissions plus receiver noise.
    /// Idempotent within a block (the same noise is returned on repeat
    /// calls). Freezes staging for the rest of the block.
    pub fn receive(&mut self, rx: AntennaId, channel: usize) -> Vec<C64> {
        assert!(
            channel < self.cfg.n_channels,
            "channel {channel} out of range"
        );
        assert!(rx < self.placements.len(), "unknown antenna {rx}");
        self.receiving = true;
        if let Some(cached) = self.rx_cache.get(&(rx, channel)) {
            return cached.clone();
        }
        let mut buf = white_noise(&mut self.rng, self.cfg.block_len, self.noise_floor[rx]);
        // Impulsive interference (if enabled) hits all receivers alike;
        // draw once per (block, channel) via a cached decision keyed into
        // the rng stream deterministically.
        if let Some((prob, power)) = self.impulse {
            if self.rng.gen::<f64>() < prob {
                for (v, n) in
                    buf.iter_mut()
                        .zip(white_noise(&mut self.rng, self.cfg.block_len, power))
                {
                    *v += n;
                }
            }
        }
        let block_start = self.tick();
        for tx in self.staged.iter().filter(|t| t.channel == channel) {
            let g = self.gains.get(&(tx.tx, rx)).copied().unwrap_or(C64::ZERO);
            if g == C64::ZERO {
                continue;
            }
            // Relative oscillator rotation between transmitter and receiver.
            let dcfo = self.cfo_hz[tx.tx] - self.cfo_hz[rx];
            if dcfo == 0.0 {
                for (i, &s) in tx.samples.iter().enumerate() {
                    buf[i] += s * g;
                }
            } else {
                let w = std::f64::consts::TAU * dcfo / self.cfg.fs_hz;
                for (i, &s) in tx.samples.iter().enumerate() {
                    let phase = w * (block_start + i as u64) as f64;
                    buf[i] += s * g * C64::cis(phase);
                }
            }
        }
        self.rx_cache.insert((rx, channel), buf.clone());
        buf
    }

    /// True if any transmission is staged on `channel` this block
    /// (omniscient view — used by tests and by the observer harness, not by
    /// in-world devices).
    pub fn channel_active(&self, channel: usize) -> bool {
        self.staged.iter().any(|t| t.channel == channel)
    }

    /// Total staged transmit power on a channel this block (omniscient
    /// debugging/observer view).
    pub fn staged_power(&self, channel: usize) -> f64 {
        self.staged
            .iter()
            .filter(|t| t.channel == channel)
            .map(|t| hb_dsp::complex::mean_power(&t.samples))
            .sum()
    }

    /// Finishes the block: clears staging and caches, advances time.
    pub fn end_block(&mut self) {
        self.staged.clear();
        self.rx_cache.clear();
        self.receiving = false;
        self.block_index += 1;
    }

    /// Direct access to the medium's RNG (for device models that want to
    /// derive seeds deterministically from the scenario seed).
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::complex::mean_power;
    use hb_dsp::units::db_from_ratio;

    fn quiet_medium() -> Medium {
        let cfg = MediumConfig {
            noise_floor_dbm: -200.0, // effectively noiseless for exact checks
            ..MediumConfig::default()
        };
        Medium::new(cfg, 7)
    }

    #[test]
    fn receive_is_gain_weighted_sum() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        let c = m.add_antenna(Placement::los("c", 2.0, 0.0));
        m.set_gain(a, c, C64::new(0.5, 0.0));
        m.set_gain(b, c, C64::new(0.0, 0.25));

        let xa = vec![C64::ONE; 16];
        let xb = vec![C64::new(2.0, 0.0); 16];
        m.transmit(a, 0, &xa);
        m.transmit(b, 0, &xb);
        let y = m.receive(c, 0);
        for s in &y {
            assert!((*s - C64::new(0.5, 0.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 3, &vec![C64::ONE; 16]);
        let y0 = m.receive(b, 0);
        let y3 = m.receive(b, 3);
        assert!(mean_power(&y0) < 1e-12, "channel 0 should be silent");
        assert!((mean_power(&y3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_means_no_signal() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(b, 0);
        assert!(mean_power(&y) < 1e-12);
    }

    #[test]
    fn self_loop_only_when_set() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(mean_power(&m.receive(a, 0)) < 1e-12);
        m.end_block();
        m.set_gain(a, a, C64::new(0.7, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(a, 0);
        assert!((mean_power(&y) - 0.49).abs() < 1e-9);
    }

    #[test]
    fn receive_is_idempotent_within_block() {
        let cfg = MediumConfig::default(); // real noise floor
        let mut m = Medium::new(cfg, 9);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y1 = m.receive(b, 0);
        let y2 = m.receive(b, 0);
        assert_eq!(y1, y2, "same block, same noise");
        m.end_block();
        let y3 = m.receive(b, 0);
        assert_ne!(y1, y3, "new block, fresh noise");
    }

    #[test]
    #[should_panic(expected = "transmit after receive")]
    fn staging_frozen_after_receive() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let _ = m.receive(a, 0);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
    }

    #[test]
    fn short_burst_zero_padded() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 0, &[C64::ONE; 4]);
        let y = m.receive(b, 0);
        // Tolerances sized above the -200 dBm residual noise floor.
        assert!((y[3] - C64::ONE).abs() < 1e-6);
        assert!(y[4].abs() < 1e-6);
    }

    #[test]
    fn noise_floor_level_is_respected() {
        let mut m = Medium::new(MediumConfig::default(), 11);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.set_noise_floor_dbm(a, -50.0);
        let mut acc = 0.0;
        let blocks = 2000;
        for _ in 0..blocks {
            let y = m.receive(a, 0);
            acc += mean_power(&y);
            m.end_block();
        }
        let dbm = db_from_ratio(acc / blocks as f64);
        assert!((dbm - (-50.0)).abs() < 0.3, "floor {dbm}");
    }

    #[test]
    fn build_links_uses_pathloss() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -200.0,
                ..Default::default()
            },
            13,
        );
        let model = PathlossModel::free_space(403.5e6);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 10.0, 0.0));
        m.build_links(&model, Fading::None);
        let g = m.gain(a, b);
        // Free space at 10 m, 403.5 MHz: ~44.6 dB.
        let loss_db = -db_from_ratio(g.norm_sq());
        assert!((loss_db - 44.6).abs() < 0.2, "loss {loss_db}");
        // Reciprocity.
        assert_eq!(m.gain(a, b), m.gain(b, a));
        // Self gain remains zero.
        assert_eq!(m.gain(a, a), C64::ZERO);
    }

    #[test]
    fn build_links_preserves_explicit_gains() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 0.01, 0.0));
        let wired = C64::new(0.9, 0.0);
        m.set_gain(a, b, wired);
        m.set_gain(b, a, wired);
        m.build_links(&PathlossModel::mics_indoor(), Fading::None);
        assert_eq!(m.gain(a, b), wired);
    }

    #[test]
    fn tick_and_time_advance() {
        let mut m = quiet_medium();
        assert_eq!(m.tick(), 0);
        m.end_block();
        m.end_block();
        assert_eq!(m.block_index(), 2);
        assert_eq!(m.tick(), 32);
        assert!((m.time_s() - 32.0 / 300e3).abs() < 1e-15);
        assert_eq!(m.blocks_for_duration(1e-3), 19); // 300 samples / 16
    }

    #[test]
    fn cfo_rotates_transmissions_continuously() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.set_cfo_hz(a, 3e3);
        // Transmit a constant; receive a rotating phasor whose rate matches
        // the offset, continuous across blocks.
        let mut rx = Vec::new();
        for _ in 0..8 {
            m.transmit(a, 0, &vec![C64::ONE; 16]);
            rx.extend(m.receive(b, 0));
            m.end_block();
        }
        let est = hb_dsp::cfo::estimate_cfo(&rx, m.config().fs_hz);
        assert!((est - 3e3).abs() < 20.0, "estimated CFO {est}");
        // Equal offsets on both ends cancel.
        m.set_cfo_hz(b, 3e3);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(b, 0);
        for s in &y {
            assert!((s.arg()).abs() < 0.2, "residual rotation {}", s.arg());
        }
    }

    #[test]
    fn impulse_noise_raises_average_floor() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -112.0,
                ..Default::default()
            },
            21,
        );
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.set_impulse_noise(0.25, -60.0);
        let mut hot_blocks = 0;
        let blocks = 2000;
        for _ in 0..blocks {
            let y = m.receive(a, 0);
            if mean_power(&y) > ratio_from_db(-70.0) {
                hot_blocks += 1;
            }
            m.end_block();
        }
        let rate = hot_blocks as f64 / blocks as f64;
        assert!((rate - 0.25).abs() < 0.05, "impulse rate {rate}");
    }

    #[test]
    fn observer_helpers() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        assert!(!m.channel_active(0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(m.channel_active(0));
        assert!(!m.channel_active(1));
        assert!((m.staged_power(0) - 1.0).abs() < 1e-12);
    }
}
