//! The shared wireless medium: a sample-level, block-stepped simulation of
//! concurrent transmissions at complex baseband.
//!
//! This module replaces the paper's physical testbed (USRP radios in a
//! room). Its model is exactly the one the paper's analysis assumes:
//! *"the wireless channel creates linear combinations of concurrently
//! transmitted signals"* (§6). Every receive antenna observes
//!
//! ```text
//! y_rx[t] = Σ_tx H(tx→rx) · x_tx[t]  +  n_rx[t]
//! ```
//!
//! with complex link gains `H` derived from the pathloss/fading models (or
//! set explicitly for wired couplings like the shield's self-loop `Hself`)
//! and white Gaussian receiver noise at each antenna's noise floor.
//!
//! Time advances in fixed-size blocks (default 16 samples ≈ 53 µs at
//! 300 kHz). Each block has two phases: first every device *stages* its
//! transmissions, then every device *receives* the mixed waveform. The
//! one-block reaction latency this imposes is physical — real receivers
//! also process in buffers. Mid-packet reactions (the shield's
//! detect-then-jam) happen at block granularity.
//!
//! The 3 MHz MICS band is modeled as `n_channels` independent 300 kHz
//! channels — the per-channel-filter front end of §7(c). A transmission is
//! tagged with its channel; receivers subscribe per channel.
//!
//! # Sparse propagation (pathloss culling)
//!
//! The gain matrix stays dense, but the *work* is sparse: each receiver
//! keeps an audibility row (its neighbor list) and a pair is skipped
//! whenever its gain power lands below the receiver's noise floor times
//! the configured [`MediumConfig::cull_margin_db`]. A culled pair's
//! contribution is below the floor *by construction* (for a 0 dBm-or-
//! quieter transmitter; pick the margin from the loudest transmitter in
//! the scenario), so hospital-floor scenarios with 100+ devices pay per
//! audible pair, not per antenna pair. A transmitter audible at no
//! receiver is not even staged.
//!
//! **Cull invariant**: at the default margin of `−∞` the threshold is
//! exactly zero, nothing is ever culled, and the engine is bit-for-bit
//! the dense engine — the golden suite pins this. Audibility rows are
//! maintained incrementally: setting one gain updates one entry; moving
//! one antenna ([`Medium::move_antenna`]) re-draws and re-checks only the
//! pairs touching that antenna (its own row plus one entry per other
//! row), never the full matrix.

use crate::fading::Fading;
use crate::fault::FaultPlan;
use crate::geometry::Placement;
use crate::pathloss::PathlossModel;
use hb_dsp::complex::C64;
use hb_dsp::noise::white_noise_into;
use hb_dsp::units::ratio_from_db;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Identifies one antenna registered with the medium.
pub type AntennaId = usize;

/// A sample-count timestamp.
pub type Tick = u64;

/// Medium configuration.
#[derive(Debug, Clone, Copy)]
pub struct MediumConfig {
    /// Per-channel complex baseband sample rate, Hz.
    pub fs_hz: f64,
    /// Samples per simulation block.
    pub block_len: usize,
    /// Number of 300 kHz MICS channels simulated.
    pub n_channels: usize,
    /// Default receiver noise floor, dBm (thermal + noise figure over one
    /// channel bandwidth). Per-antenna overrides available.
    pub noise_floor_dbm: f64,
    /// Pathloss-culling margin, dB. A (tx, rx) pair is *culled* — skipped
    /// by staging and the receive mixture — when its gain power satisfies
    /// `|H|² < noise_floor(rx) · 10^(margin/10)`: the pair would deliver a
    /// 0 dBm transmission at `margin` dB below the receiver's own noise
    /// floor. Choose `margin ≤ −(loudest tx power in dBm)` and every
    /// culled contribution is guaranteed sub-floor. The default `−∞`
    /// makes the threshold exactly zero: nothing is culled and the engine
    /// is bit-for-bit the dense engine.
    pub cull_margin_db: f64,
    /// Deterministic fault schedule (see [`crate::fault`]). The inactive
    /// default allocates no fault state and draws nothing: the engine is
    /// bit-for-bit the fault-free engine. An active plan draws from its
    /// own RNG stream, never from the medium's main stream.
    pub fault: FaultPlan,
}

impl Default for MediumConfig {
    fn default() -> Self {
        MediumConfig {
            fs_hz: 300e3,
            block_len: 16,
            // FCC divides the 3 MHz MICS band into 10 channels (§2).
            n_channels: 10,
            // Thermal floor of a 300 kHz channel (-119 dBm) plus a 7 dB
            // receiver noise figure.
            noise_floor_dbm: -112.0,
            // Dense by default: culling is opt-in per scenario.
            cull_margin_db: f64::NEG_INFINITY,
            // Fault-free by default: adversity is opt-in per scenario.
            fault: FaultPlan::none(),
        }
    }
}

/// One pooled staging slot: the buffer is `block_len` long and reused
/// across blocks, so steady-state staging performs no heap allocation.
struct StagedTx {
    tx: AntennaId,
    channel: usize,
    samples: Vec<C64>,
}

/// One pooled receive-cache slot for an (antenna, channel) pair.
#[derive(Default)]
struct RxSlot {
    buf: Vec<C64>,
    /// True once this block's mixture has been computed into `buf`.
    valid: bool,
}

/// Runtime state of an armed [`FaultPlan`]: the dedicated RNG stream plus
/// the per-block burst counters. Present only when the plan perturbs the
/// medium — the fault-free engine allocates none of this and draws
/// nothing extra anywhere.
struct FaultState {
    plan: FaultPlan,
    /// Dedicated stream: fault draws never touch the medium's main RNG.
    rng: StdRng,
    /// Blocks remaining in the current gain-dropout burst (counting the
    /// current block).
    dropout_left: u32,
    /// Blocks remaining in the current impulse-noise storm.
    storm_left: u32,
    /// Amplitude scale applied to every staged transmission during a
    /// dropout (`10^(-depth/20)`), precomputed.
    dropout_amp: f64,
    /// Storm noise power, linear.
    storm_power: f64,
}

impl FaultState {
    fn new(plan: FaultPlan, seed: u64) -> Self {
        let mut s = FaultState {
            plan,
            // Fixed derivation: the fault stream is a pure function of the
            // medium seed, disjoint from the main stream seeded by `seed`
            // itself.
            rng: StdRng::seed_from_u64(seed ^ 0xFA_0175_EEDC_A5E5),
            dropout_left: 0,
            storm_left: 0,
            dropout_amp: ratio_from_db(-plan.dropout_depth_db).sqrt(),
            storm_power: ratio_from_db(plan.storm_power_dbm),
        };
        s.advance();
        s
    }

    /// Rolls the hazard dice for one block: exactly two draws regardless
    /// of burst state, so the fault schedule is a pure function of
    /// `(plan, seed, block index)` — independent of receive order, count,
    /// or thread layout. A burst in progress runs down before a new one
    /// can start (the block after a burst never starts another).
    fn advance(&mut self) {
        let d: f64 = self.rng.gen();
        let s: f64 = self.rng.gen();
        if self.dropout_left > 0 {
            self.dropout_left -= 1;
        } else if d < self.plan.dropout_start_prob {
            self.dropout_left = self.plan.dropout_len_blocks;
        }
        if self.storm_left > 0 {
            self.storm_left -= 1;
        } else if s < self.plan.storm_start_prob {
            self.storm_left = self.plan.storm_len_blocks;
        }
    }
}

/// Provenance of one directed gain entry: who wrote it decides whether
/// [`Medium::build_links`] may draw it and [`Medium::move_antenna`] may
/// re-draw it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum GainState {
    /// Never written; zero gain. `build_links` will draw it.
    Unset,
    /// Drawn from the pathloss/fading models; `move_antenna` re-draws it
    /// when either endpoint moves.
    Drawn,
    /// Set explicitly ([`Medium::set_gain`]) — a wired coupling like the
    /// shield's self-loop. Preserved by `build_links` and `move_antenna`.
    Explicit,
}

/// Audibility bookkeeping counters — how much cull state was recomputed.
/// The mobility tests pin the invalidation scope with these: moving one
/// antenna must cost O(n) pair updates and no full-row rebuilds, while a
/// noise-floor change rebuilds exactly the affected receiver's row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CullStats {
    /// Full per-receiver audibility-row recomputations (noise-floor
    /// changes, antenna registration).
    pub rows_rebuilt: u64,
    /// Single-pair audibility updates (gain writes: `set_gain`,
    /// `build_links`, `move_antenna`).
    pub pair_updates: u64,
    /// Currently audible (tx, rx) pairs.
    pub audible_pairs: usize,
    /// All (tx, rx) pairs (`n²`).
    pub total_pairs: usize,
}

/// The shared medium. See the module docs for the model.
///
/// Steady-state performance: all per-block state (staged transmissions,
/// receive caches, scratch buffers) lives in pools that are recycled by
/// [`Medium::end_block`], the link gains are a dense `n×n` matrix with
/// per-receiver audibility rows on top (see the module docs on pathloss
/// culling), and the borrowing receive path ([`Medium::receive_view`])
/// returns cache views — a block step performs **zero heap allocations**
/// once the pools are warm.
pub struct Medium {
    cfg: MediumConfig,
    placements: Vec<Placement>,
    /// Per-antenna noise floor, linear power (1.0 ≡ 0 dBm).
    noise_floor: Vec<f64>,
    /// Per-antenna oscillator offset, Hz (transmissions rotate at this
    /// rate relative to the nominal carrier).
    cfo_hz: Vec<f64>,
    /// True once any antenna has a non-zero oscillator offset (fast-path
    /// gate for the per-sample rotation).
    any_cfo: bool,
    /// Impulsive interference: (probability per block, power linear).
    impulse: Option<(f64, f64)>,
    /// Armed fault-injection state; `None` whenever the configured plan
    /// cannot perturb the medium.
    fault: Option<FaultState>,
    /// Directed link gains, dense row-major: `gains[tx * n + rx]` is the
    /// gain from `tx`'s transmitter to `rx`'s receiver. Reciprocal by
    /// construction unless overridden.
    gains: Vec<C64>,
    /// Provenance of `gains[i]` (an explicit zero is remembered so
    /// [`Medium::build_links`] won't redraw it; only drawn gains are
    /// re-drawn by [`Medium::move_antenna`]).
    gain_state: Vec<GainState>,
    /// Per-receiver neighbor rows, rx-major: `audible[rx * n + tx]` is
    /// true iff the pair clears `rx`'s cull threshold. All-true at the
    /// default `−∞` margin. Maintained incrementally by every gain write.
    audible: Vec<bool>,
    /// Per-transmitter count of receivers that can hear it; staging skips
    /// a transmitter nobody can hear (only possible at a finite margin).
    tx_audible: Vec<u32>,
    /// Per-receiver cull threshold, linear power:
    /// `noise_floor[rx] · 10^(cull_margin_db/10)` (zero at `−∞`).
    cull_threshold: Vec<f64>,
    /// Linear cull ratio `10^(cull_margin_db/10)`, precomputed.
    cull_ratio: f64,
    /// Stats: full audibility-row recomputations.
    cull_rows_rebuilt: u64,
    /// Stats: single-pair audibility updates.
    cull_pair_updates: u64,
    block_index: u64,
    /// Staging pool; the first `staged_len` entries are this block's.
    staged: Vec<StagedTx>,
    staged_len: usize,
    /// Per-channel index into `staged`, in staging order.
    staged_by_channel: Vec<Vec<u32>>,
    /// Receive cache, dense: slot `rx * n_channels + channel`.
    rx_slots: Vec<RxSlot>,
    /// Slots computed this block (cleared cheaply by `end_block`).
    dirty_slots: Vec<u32>,
    /// Scratch for the impulse-noise burst.
    impulse_scratch: Vec<C64>,
    /// Per-block cache of CFO rotator phasors, keyed by the bit pattern of
    /// the relative offset `Δf`: every link sharing a `Δf` reuses the same
    /// per-sample phasors instead of recomputing `C64::cis` per sample.
    /// Pooled: only the first `cfo_phasors_len` entries are this block's;
    /// `end_block` rewinds the counter and the buffers are refilled in
    /// place, so CFO-impaired scenarios stay allocation-free too.
    cfo_phasors: Vec<(u64, Vec<C64>)>,
    cfo_phasors_len: usize,
    /// Set once any receive happens in the block; staging is then frozen.
    receiving: bool,
    rng: StdRng,
}

impl Medium {
    /// Creates an empty medium.
    pub fn new(cfg: MediumConfig, seed: u64) -> Self {
        assert!(cfg.block_len > 0 && cfg.n_channels > 0);
        Medium {
            cfg,
            placements: Vec::new(),
            noise_floor: Vec::new(),
            cfo_hz: Vec::new(),
            any_cfo: false,
            impulse: None,
            fault: cfg
                .fault
                .perturbs_medium()
                .then(|| FaultState::new(cfg.fault, seed)),
            gains: Vec::new(),
            gain_state: Vec::new(),
            audible: Vec::new(),
            tx_audible: Vec::new(),
            cull_threshold: Vec::new(),
            cull_ratio: ratio_from_db(cfg.cull_margin_db),
            cull_rows_rebuilt: 0,
            cull_pair_updates: 0,
            block_index: 0,
            staged: Vec::new(),
            staged_len: 0,
            staged_by_channel: vec![Vec::new(); cfg.n_channels],
            rx_slots: Vec::new(),
            dirty_slots: Vec::new(),
            impulse_scratch: vec![C64::ZERO; cfg.block_len],
            cfo_phasors: Vec::new(),
            cfo_phasors_len: 0,
            receiving: false,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The configuration.
    pub fn config(&self) -> &MediumConfig {
        &self.cfg
    }

    /// Registers an antenna at a placement; returns its id.
    pub fn add_antenna(&mut self, placement: Placement) -> AntennaId {
        self.placements.push(placement);
        let floor = ratio_from_db(self.cfg.noise_floor_dbm);
        self.noise_floor.push(floor);
        self.cull_threshold.push(floor * self.cull_ratio);
        self.cfo_hz.push(0.0);
        self.tx_audible.push(0);
        let n = self.placements.len();
        // Re-stride the dense matrices from (n-1)² to n². `gains` is
        // tx-major, `audible` is rx-major (each receiver's neighbor row
        // is contiguous).
        let mut gains = vec![C64::ZERO; n * n];
        let mut gain_state = vec![GainState::Unset; n * n];
        let mut audible = vec![false; n * n];
        for a in 0..n - 1 {
            for b in 0..n - 1 {
                gains[a * n + b] = self.gains[a * (n - 1) + b];
                gain_state[a * n + b] = self.gain_state[a * (n - 1) + b];
                audible[a * n + b] = self.audible[a * (n - 1) + b];
            }
        }
        self.gains = gains;
        self.gain_state = gain_state;
        self.audible = audible;
        // The new pairs (all-zero gains): the new receiver's row, plus the
        // new transmitter's entry in every existing row.
        self.rebuild_audible_row(n - 1);
        for rx in 0..n - 1 {
            self.update_membership(n - 1, rx);
        }
        for _ in 0..self.cfg.n_channels {
            self.rx_slots.push(RxSlot::default());
        }
        n - 1
    }

    /// Recomputes one pair's audibility from its gain and the receiver's
    /// cull threshold, keeping the per-transmitter counts consistent.
    fn update_membership(&mut self, tx: AntennaId, rx: AntennaId) {
        let n = self.placements.len();
        let aud = self.gains[tx * n + rx].norm_sq() >= self.cull_threshold[rx];
        let slot = &mut self.audible[rx * n + tx];
        if *slot != aud {
            *slot = aud;
            if aud {
                self.tx_audible[tx] += 1;
            } else {
                self.tx_audible[tx] -= 1;
            }
        }
    }

    /// Recomputes a receiver's whole audibility row (noise-floor change,
    /// antenna registration).
    fn rebuild_audible_row(&mut self, rx: AntennaId) {
        for tx in 0..self.placements.len() {
            self.update_membership(tx, rx);
        }
        self.cull_rows_rebuilt += 1;
    }

    /// Audibility bookkeeping counters and the current audible-pair count.
    pub fn cull_stats(&self) -> CullStats {
        CullStats {
            rows_rebuilt: self.cull_rows_rebuilt,
            pair_updates: self.cull_pair_updates,
            audible_pairs: self.audible.iter().filter(|&&a| a).count(),
            total_pairs: self.audible.len(),
        }
    }

    /// Whether the (tx, rx) pair clears `rx`'s cull threshold (always
    /// true at the default `−∞` margin).
    pub fn pair_audible(&self, tx: AntennaId, rx: AntennaId) -> bool {
        let n = self.placements.len();
        assert!(tx < n && rx < n, "unknown antenna pair ({tx}, {rx})");
        self.audible[rx * n + tx]
    }

    /// Sets an antenna's oscillator offset, Hz. Its transmissions rotate
    /// at this rate relative to the nominal carrier — receivers with a
    /// different offset see the difference as a carrier frequency offset
    /// (§6(a) of the paper notes the shield compensates for the CFO
    /// between its RF chain and the IMD's).
    pub fn set_cfo_hz(&mut self, a: AntennaId, hz: f64) {
        self.cfo_hz[a] = hz;
        self.any_cfo = self.cfo_hz.iter().any(|&f| f != 0.0);
    }

    /// Enables impulsive interference: with probability `prob`, a receiver
    /// sees an extra white burst at `power_dbm` for one block. The burst
    /// decision is drawn **independently per (receiver, channel, block)**
    /// — impulsive interference is a local phenomenon (a microwave oven
    /// near one antenna, an ISM neighbour near another), so no two
    /// receivers share a burst. A fault-injection hook for robustness
    /// experiments.
    pub fn set_impulse_noise(&mut self, prob: f64, power_dbm: f64) {
        assert!((0.0..=1.0).contains(&prob));
        self.impulse = Some((prob, ratio_from_db(power_dbm)));
    }

    /// Number of registered antennas.
    pub fn antenna_count(&self) -> usize {
        self.placements.len()
    }

    /// The placement of an antenna.
    pub fn placement(&self, a: AntennaId) -> &Placement {
        &self.placements[a]
    }

    /// Overrides an antenna's noise floor in dBm. Rebuilds that
    /// receiver's audibility row (its cull threshold moved).
    pub fn set_noise_floor_dbm(&mut self, a: AntennaId, dbm: f64) {
        self.noise_floor[a] = ratio_from_db(dbm);
        self.cull_threshold[a] = self.noise_floor[a] * self.cull_ratio;
        self.rebuild_audible_row(a);
    }

    /// Computes link gains for every antenna pair from a pathloss model and
    /// fading statistics (reciprocal: `H(a→b) = H(b→a)`). Self-links stay
    /// absent (zero) unless set explicitly with [`Medium::set_gain`] — a
    /// normal antenna does not hear itself through the air model; the
    /// shield's receive-antenna self-loop is a wired coupling set by its
    /// device model.
    ///
    /// Call after all antennas are registered; explicit gains set *before*
    /// this call are preserved.
    pub fn build_links(&mut self, model: &PathlossModel, fading: Fading) {
        let n = self.placements.len();
        for a in 0..n {
            for b in (a + 1)..n {
                if self.gain_state[a * n + b] != GainState::Unset
                    || self.gain_state[b * n + a] != GainState::Unset
                {
                    continue;
                }
                let gain = self.draw_link(model, fading, a, b);
                self.write_gain(a, b, gain, GainState::Drawn);
                self.write_gain(b, a, gain, GainState::Drawn);
            }
        }
    }

    /// Draws one shadowed, faded link gain between two placements.
    fn draw_link(
        &mut self,
        model: &PathlossModel,
        fading: Fading,
        a: AntennaId,
        b: AntennaId,
    ) -> C64 {
        let loss_db =
            model.link_loss_db_shadowed(&self.placements[a], &self.placements[b], &mut self.rng);
        let amplitude = ratio_from_db(-loss_db).sqrt();
        fading.draw(&mut self.rng).scale(amplitude)
    }

    /// Writes one directed gain with its provenance and updates the pair's
    /// audibility.
    fn write_gain(&mut self, tx: AntennaId, rx: AntennaId, gain: C64, state: GainState) {
        let n = self.placements.len();
        self.gains[tx * n + rx] = gain;
        self.gain_state[tx * n + rx] = state;
        self.update_membership(tx, rx);
        self.cull_pair_updates += 1;
    }

    /// Sets a directed link gain explicitly (used for the shield's wired
    /// self-loop `Hself` and the jam→receive antenna coupling `Hjam→rec`).
    pub fn set_gain(&mut self, tx: AntennaId, rx: AntennaId, gain: C64) {
        let n = self.placements.len();
        assert!(tx < n && rx < n, "unknown antenna pair ({tx}, {rx})");
        self.write_gain(tx, rx, gain, GainState::Explicit);
    }

    /// Moves an antenna to a new placement and re-draws the *drawn* link
    /// gains touching it from the pathloss/fading models (fresh shadowing,
    /// reciprocal, in deterministic id order). Explicit wired couplings
    /// are preserved; pairs `build_links` never drew stay absent.
    ///
    /// Invalidation is row-scoped: only the moved antenna's own audibility
    /// row and its single entry in every other receiver's row are
    /// re-checked — O(n) pair updates, no full-matrix rebuild (pinned by
    /// [`Medium::cull_stats`]-based tests).
    pub fn move_antenna(
        &mut self,
        a: AntennaId,
        placement: Placement,
        model: &PathlossModel,
        fading: Fading,
    ) {
        let n = self.placements.len();
        assert!(a < n, "unknown antenna {a}");
        self.placements[a] = placement;
        for b in 0..n {
            if b == a {
                continue;
            }
            let ab = self.gain_state[a * n + b] == GainState::Drawn;
            let ba = self.gain_state[b * n + a] == GainState::Drawn;
            if !(ab || ba) {
                continue;
            }
            let gain = self.draw_link(model, fading, a, b);
            if ab {
                self.write_gain(a, b, gain, GainState::Drawn);
            }
            if ba {
                self.write_gain(b, a, gain, GainState::Drawn);
            }
        }
    }

    /// The current gain from `tx` to `rx` (zero if no link).
    pub fn gain(&self, tx: AntennaId, rx: AntennaId) -> C64 {
        let n = self.placements.len();
        assert!(tx < n && rx < n, "unknown antenna pair ({tx}, {rx})");
        self.gains[tx * n + rx]
    }

    /// Current block index.
    pub fn block_index(&self) -> u64 {
        self.block_index
    }

    /// Current time in samples (start of the current block).
    pub fn tick(&self) -> Tick {
        self.block_index * self.cfg.block_len as u64
    }

    /// Current time in seconds (start of the current block).
    pub fn time_s(&self) -> f64 {
        self.tick() as f64 / self.cfg.fs_hz
    }

    /// Converts a duration in seconds to whole blocks (rounding up).
    pub fn blocks_for_duration(&self, seconds: f64) -> u64 {
        let samples = seconds * self.cfg.fs_hz;
        (samples / self.cfg.block_len as f64).ceil() as u64
    }

    /// Stages a transmission for the current block. `samples` must not
    /// exceed the block length; shorter bursts are zero-padded (a packet's
    /// final partial block).
    ///
    /// # Panics
    /// Panics if called after any receive in the same block, if the channel
    /// is out of range, or if the burst exceeds the block length.
    pub fn transmit(&mut self, tx: AntennaId, channel: usize, samples: &[C64]) {
        assert!(
            !self.receiving,
            "transmit after receive in the same block: stage all transmissions first"
        );
        assert!(
            channel < self.cfg.n_channels,
            "channel {channel} out of range"
        );
        assert!(
            samples.len() <= self.cfg.block_len,
            "burst of {} exceeds block length {}",
            samples.len(),
            self.cfg.block_len
        );
        assert!(tx < self.placements.len(), "unknown antenna {tx}");
        // Sparse fast path: a transmitter audible at no receiver cannot
        // contribute to any mixture — skip the staging copy entirely.
        // Impossible at the default −∞ margin (every pair is audible,
        // including zero-gain ones), so the dense observer semantics of
        // `channel_active`/`staged_power` are unchanged there.
        if self.tx_audible[tx] == 0 {
            return;
        }
        let idx = self.staged_len;
        if idx == self.staged.len() {
            self.staged.push(StagedTx {
                tx,
                channel,
                samples: vec![C64::ZERO; self.cfg.block_len],
            });
        }
        let slot = &mut self.staged[idx];
        slot.tx = tx;
        slot.channel = channel;
        slot.samples[..samples.len()].copy_from_slice(samples);
        slot.samples[samples.len()..].fill(C64::ZERO);
        self.staged_by_channel[channel].push(idx as u32);
        self.staged_len = idx + 1;
    }

    /// Receives the current block at an antenna on a channel: the
    /// gain-weighted sum of all staged transmissions plus receiver noise.
    /// Idempotent within a block (the same noise is returned on repeat
    /// calls). Freezes staging for the rest of the block.
    ///
    /// Allocating compatibility wrapper around [`Medium::receive_view`];
    /// hot paths should use the view (or copy out of it) instead.
    pub fn receive(&mut self, rx: AntennaId, channel: usize) -> Vec<C64> {
        self.receive_view(rx, channel).to_vec()
    }

    /// Borrowing receive: identical semantics to [`Medium::receive`], but
    /// returns a view into the block's pooled receive cache. The first call
    /// for an (antenna, channel) computes the mixture in place; repeat
    /// calls within the block return the same buffer without copying. Zero
    /// heap allocations in steady state.
    pub fn receive_view(&mut self, rx: AntennaId, channel: usize) -> &[C64] {
        assert!(
            channel < self.cfg.n_channels,
            "channel {channel} out of range"
        );
        assert!(rx < self.placements.len(), "unknown antenna {rx}");
        self.receiving = true;
        let n = self.placements.len();
        let block_len = self.cfg.block_len;
        let slot_idx = rx * self.cfg.n_channels + channel;
        if self.rx_slots[slot_idx].valid {
            return &self.rx_slots[slot_idx].buf;
        }
        let slot = &mut self.rx_slots[slot_idx];
        slot.buf.resize(block_len, C64::ZERO);
        let buf = &mut slot.buf[..];
        white_noise_into(&mut self.rng, buf, self.noise_floor[rx]);
        // Impulsive interference: an independent draw per (receiver,
        // channel, block) — see `set_impulse_noise`.
        if let Some((prob, power)) = self.impulse {
            if self.rng.gen::<f64>() < prob {
                white_noise_into(&mut self.rng, &mut self.impulse_scratch, power);
                for (v, &n) in buf.iter_mut().zip(self.impulse_scratch.iter()) {
                    *v += n;
                }
            }
        }
        // Impulse-noise storm fault: extra noise on the masked channels,
        // drawn from the dedicated fault stream so the main stream's draw
        // sequence is untouched even while the storm fires.
        if let Some(f) = self.fault.as_mut() {
            if f.storm_left > 0 && channel < 16 && (f.plan.storm_channel_mask >> channel) & 1 == 1 {
                white_noise_into(&mut f.rng, &mut self.impulse_scratch, f.storm_power);
                for (v, &n) in buf.iter_mut().zip(self.impulse_scratch.iter()) {
                    *v += n;
                }
            }
        }
        // Gain-dropout fault: one real amplitude scale on every staged
        // contribution this block. Receiver noise is untouched, so a
        // dropout is a pure SNR loss; scaling every transmitter equally
        // preserves linear-combination identities (the shield's antidote
        // still cancels its own jamming exactly).
        let fault_amp = match &self.fault {
            Some(f) if f.dropout_left > 0 => f.dropout_amp,
            _ => 1.0,
        };
        let block_start = self.block_index * block_len as u64;
        let audible = &self.audible[rx * n..(rx + 1) * n];
        for &staged_idx in &self.staged_by_channel[channel] {
            let tx = &self.staged[staged_idx as usize];
            // Sparse skip: the pair is below the receiver's cull
            // threshold (never taken at the −∞ margin, where the
            // audibility row is all-true).
            if !audible[tx.tx] {
                continue;
            }
            let g = self.gains[tx.tx * n + rx];
            if g == C64::ZERO {
                continue;
            }
            // Fault-free (and out-of-burst) blocks take the untouched
            // gain — bit-identical to the engine without fault support.
            let g = if fault_amp != 1.0 {
                g.scale(fault_amp)
            } else {
                g
            };
            // Relative oscillator rotation between transmitter and receiver.
            let dcfo = if self.any_cfo {
                self.cfo_hz[tx.tx] - self.cfo_hz[rx]
            } else {
                0.0
            };
            if dcfo == 0.0 {
                mac_scaled(buf, &tx.samples, g);
            } else {
                // Per-block rotator phasors, shared by every link with the
                // same relative offset. Filled by a phase-recurrence
                // oscillator: one `cis` for the block's start phase, then
                // a complex multiply per sample (within an ulp of the
                // direct per-sample `cis`; the golden suite pins the
                // recurrence engine).
                let key = dcfo.to_bits();
                let cached = self.cfo_phasors[..self.cfo_phasors_len]
                    .iter()
                    .position(|(k, _)| *k == key);
                let pos = match cached {
                    Some(p) => p,
                    None => {
                        let w = std::f64::consts::TAU * dcfo / self.cfg.fs_hz;
                        if self.cfo_phasors_len == self.cfo_phasors.len() {
                            self.cfo_phasors.push((key, Vec::new()));
                        }
                        let entry = &mut self.cfo_phasors[self.cfo_phasors_len];
                        entry.0 = key;
                        entry.1.clear();
                        let mut osc = hb_dsp::osc::Rotator::new(w * block_start as f64, w);
                        entry.1.extend((0..block_len).map(|_| osc.next()));
                        self.cfo_phasors_len += 1;
                        self.cfo_phasors_len - 1
                    }
                };
                let phasors = &self.cfo_phasors[pos].1;
                mac_scaled_rotated(buf, &tx.samples, phasors, g);
            }
        }
        slot.valid = true;
        self.dirty_slots.push(slot_idx as u32);
        &self.rx_slots[slot_idx].buf
    }

    /// True if any transmission is staged on `channel` this block
    /// (omniscient view — used by tests and by the observer harness, not by
    /// in-world devices). At a finite cull margin, transmitters audible at
    /// no receiver are never staged and so don't count.
    pub fn channel_active(&self, channel: usize) -> bool {
        !self.staged_by_channel[channel].is_empty()
    }

    /// Total staged transmit power on a channel this block (omniscient
    /// debugging/observer view). Like [`Medium::channel_active`], excludes
    /// transmitters culled everywhere.
    pub fn staged_power(&self, channel: usize) -> f64 {
        self.staged_by_channel[channel]
            .iter()
            .map(|&i| hb_dsp::complex::mean_power(&self.staged[i as usize].samples))
            .sum()
    }

    /// Finishes the block: recycles the staging and receive-cache pools,
    /// advances time. No heap is released — the pools are reused by the
    /// next block.
    pub fn end_block(&mut self) {
        self.staged_len = 0;
        for list in self.staged_by_channel.iter_mut() {
            list.clear();
        }
        for &slot in &self.dirty_slots {
            self.rx_slots[slot as usize].valid = false;
        }
        self.dirty_slots.clear();
        self.cfo_phasors_len = 0;
        self.receiving = false;
        self.block_index += 1;
        // Roll the fault hazards for the new block — once per block, here,
        // never in the receive path (see the [`crate::fault`] determinism
        // contract).
        if let Some(f) = self.fault.as_mut() {
            f.advance();
        }
    }

    /// True while a gain-dropout burst is active this block. Observer
    /// view for tests and experiments; always false without an armed
    /// fault plan.
    pub fn fault_dropout_active(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.dropout_left > 0)
    }

    /// True while an impulse-noise storm is active this block (on the
    /// plan's masked channels). Always false without an armed fault plan.
    pub fn fault_storm_active(&self) -> bool {
        self.fault.as_ref().is_some_and(|f| f.storm_left > 0)
    }

    /// Direct access to the medium's RNG (for device models that want to
    /// derive seeds deterministically from the scenario seed).
    pub fn fork_rng(&mut self) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen())
    }
}

/// Accumulates one surviving pair into the mixture: `dst[i] += src[i]·g`.
///
/// Standalone and `#[inline(never)]` on purpose (the PR-5 correlator
/// idiom): with `&mut`/`&` slice parameters the optimizer knows `dst`
/// and `src` cannot alias and keeps the accumulation in registers;
/// inlined into the `&mut self` receive path it would re-derive both
/// from `self` and emit per-iteration alias checks instead. Identical
/// arithmetic and order to the historical in-place loop — bit-exact.
#[inline(never)]
fn mac_scaled(dst: &mut [C64], src: &[C64], g: C64) {
    for (v, &s) in dst.iter_mut().zip(src.iter()) {
        *v += s * g;
    }
}

/// [`mac_scaled`] with a per-sample CFO rotation: `dst[i] += src[i]·g·r[i]`.
#[inline(never)]
fn mac_scaled_rotated(dst: &mut [C64], src: &[C64], rot: &[C64], g: C64) {
    for ((v, &s), &r) in dst.iter_mut().zip(src.iter()).zip(rot.iter()) {
        *v += s * g * r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::complex::mean_power;
    use hb_dsp::units::db_from_ratio;

    fn quiet_medium() -> Medium {
        let cfg = MediumConfig {
            noise_floor_dbm: -200.0, // effectively noiseless for exact checks
            ..MediumConfig::default()
        };
        Medium::new(cfg, 7)
    }

    #[test]
    fn receive_is_gain_weighted_sum() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        let c = m.add_antenna(Placement::los("c", 2.0, 0.0));
        m.set_gain(a, c, C64::new(0.5, 0.0));
        m.set_gain(b, c, C64::new(0.0, 0.25));

        let xa = vec![C64::ONE; 16];
        let xb = vec![C64::new(2.0, 0.0); 16];
        m.transmit(a, 0, &xa);
        m.transmit(b, 0, &xb);
        let y = m.receive(c, 0);
        for s in &y {
            assert!((*s - C64::new(0.5, 0.5)).abs() < 1e-9);
        }
    }

    #[test]
    fn channels_are_independent() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 3, &vec![C64::ONE; 16]);
        let y0 = m.receive(b, 0);
        let y3 = m.receive(b, 3);
        assert!(mean_power(&y0) < 1e-12, "channel 0 should be silent");
        assert!((mean_power(&y3) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn no_link_means_no_signal() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(b, 0);
        assert!(mean_power(&y) < 1e-12);
    }

    #[test]
    fn self_loop_only_when_set() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(mean_power(&m.receive(a, 0)) < 1e-12);
        m.end_block();
        m.set_gain(a, a, C64::new(0.7, 0.0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(a, 0);
        assert!((mean_power(&y) - 0.49).abs() < 1e-9);
    }

    #[test]
    fn receive_is_idempotent_within_block() {
        let cfg = MediumConfig::default(); // real noise floor
        let mut m = Medium::new(cfg, 9);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y1 = m.receive(b, 0);
        let y2 = m.receive(b, 0);
        assert_eq!(y1, y2, "same block, same noise");
        m.end_block();
        let y3 = m.receive(b, 0);
        assert_ne!(y1, y3, "new block, fresh noise");
    }

    #[test]
    #[should_panic(expected = "transmit after receive")]
    fn staging_frozen_after_receive() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let _ = m.receive(a, 0);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
    }

    #[test]
    fn short_burst_zero_padded() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 0, &[C64::ONE; 4]);
        let y = m.receive(b, 0);
        // Tolerances sized above the -200 dBm residual noise floor.
        assert!((y[3] - C64::ONE).abs() < 1e-6);
        assert!(y[4].abs() < 1e-6);
    }

    #[test]
    fn noise_floor_level_is_respected() {
        let mut m = Medium::new(MediumConfig::default(), 11);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.set_noise_floor_dbm(a, -50.0);
        let mut acc = 0.0;
        let blocks = 2000;
        for _ in 0..blocks {
            let y = m.receive(a, 0);
            acc += mean_power(&y);
            m.end_block();
        }
        let dbm = db_from_ratio(acc / blocks as f64);
        assert!((dbm - (-50.0)).abs() < 0.3, "floor {dbm}");
    }

    #[test]
    fn build_links_uses_pathloss() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -200.0,
                ..Default::default()
            },
            13,
        );
        let model = PathlossModel::free_space(403.5e6);
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 10.0, 0.0));
        m.build_links(&model, Fading::None);
        let g = m.gain(a, b);
        // Free space at 10 m, 403.5 MHz: ~44.6 dB.
        let loss_db = -db_from_ratio(g.norm_sq());
        assert!((loss_db - 44.6).abs() < 0.2, "loss {loss_db}");
        // Reciprocity.
        assert_eq!(m.gain(a, b), m.gain(b, a));
        // Self gain remains zero.
        assert_eq!(m.gain(a, a), C64::ZERO);
    }

    #[test]
    fn build_links_preserves_explicit_gains() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 0.01, 0.0));
        let wired = C64::new(0.9, 0.0);
        m.set_gain(a, b, wired);
        m.set_gain(b, a, wired);
        m.build_links(&PathlossModel::mics_indoor(), Fading::None);
        assert_eq!(m.gain(a, b), wired);
    }

    #[test]
    fn tick_and_time_advance() {
        let mut m = quiet_medium();
        assert_eq!(m.tick(), 0);
        m.end_block();
        m.end_block();
        assert_eq!(m.block_index(), 2);
        assert_eq!(m.tick(), 32);
        assert!((m.time_s() - 32.0 / 300e3).abs() < 1e-15);
        assert_eq!(m.blocks_for_duration(1e-3), 19); // 300 samples / 16
    }

    #[test]
    fn cfo_rotates_transmissions_continuously() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_gain(a, b, C64::ONE);
        m.set_cfo_hz(a, 3e3);
        // Transmit a constant; receive a rotating phasor whose rate matches
        // the offset, continuous across blocks.
        let mut rx = Vec::new();
        for _ in 0..8 {
            m.transmit(a, 0, &vec![C64::ONE; 16]);
            rx.extend(m.receive(b, 0));
            m.end_block();
        }
        let est = hb_dsp::cfo::estimate_cfo(&rx, m.config().fs_hz);
        assert!((est - 3e3).abs() < 20.0, "estimated CFO {est}");
        // Equal offsets on both ends cancel.
        m.set_cfo_hz(b, 3e3);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let y = m.receive(b, 0);
        for s in &y {
            assert!((s.arg()).abs() < 0.2, "residual rotation {}", s.arg());
        }
    }

    #[test]
    fn impulse_noise_raises_average_floor() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -112.0,
                ..Default::default()
            },
            21,
        );
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.set_impulse_noise(0.25, -60.0);
        let mut hot_blocks = 0;
        let blocks = 2000;
        for _ in 0..blocks {
            let y = m.receive(a, 0);
            if mean_power(&y) > ratio_from_db(-70.0) {
                hot_blocks += 1;
            }
            m.end_block();
        }
        let rate = hot_blocks as f64 / blocks as f64;
        assert!((rate - 0.25).abs() < 0.05, "impulse rate {rate}");
    }

    #[test]
    fn impulse_noise_is_independent_per_receiver() {
        // Two receivers, same block: burst decisions are drawn per
        // (receiver, channel, block), so within one block one antenna can
        // be hit while the other is quiet. Pin that: over many blocks all
        // four hit/quiet combinations must occur.
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -112.0,
                ..Default::default()
            },
            31,
        );
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        m.set_impulse_noise(0.5, -60.0);
        let hot = |y: &[C64]| mean_power(y) > ratio_from_db(-70.0);
        let mut combos = [0usize; 4];
        for _ in 0..400 {
            let ha = hot(&m.receive(a, 0));
            let hb = hot(&m.receive(b, 0));
            combos[usize::from(ha) * 2 + usize::from(hb)] += 1;
            m.end_block();
        }
        assert!(
            combos.iter().all(|&c| c > 0),
            "all hit/quiet combinations must occur (independent draws): {combos:?}"
        );
        // And the marginal rate at each antenna tracks the probability.
        let rate_a = (combos[2] + combos[3]) as f64 / 400.0;
        let rate_b = (combos[1] + combos[3]) as f64 / 400.0;
        assert!((rate_a - 0.5).abs() < 0.1, "rate at a: {rate_a}");
        assert!((rate_b - 0.5).abs() < 0.1, "rate at b: {rate_b}");
    }

    #[test]
    fn repeat_receive_borrows_the_same_buffer() {
        // The cache-hit path must not copy: both views alias the same
        // pooled slot.
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        m.transmit(a, 0, &[C64::ONE; 16]);
        let p1 = m.receive_view(a, 0).as_ptr();
        let p2 = m.receive_view(a, 0).as_ptr();
        assert_eq!(p1, p2, "repeat receive must return the cached buffer");
        m.end_block();
        // Next block recycles the same pooled allocation.
        let p3 = m.receive_view(a, 0).as_ptr();
        assert_eq!(p1, p3, "pool must be recycled across blocks");
    }

    #[test]
    fn observer_helpers() {
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        assert!(!m.channel_active(0));
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(m.channel_active(0));
        assert!(!m.channel_active(1));
        assert!((m.staged_power(0) - 1.0).abs() < 1e-12);
    }

    /// Noise floor −100 dBm, cull margin 0 dB: pairs below −100 dB of
    /// gain power are culled.
    fn culling_medium() -> Medium {
        let cfg = MediumConfig {
            noise_floor_dbm: -100.0,
            cull_margin_db: 0.0,
            ..MediumConfig::default()
        };
        Medium::new(cfg, 7)
    }

    #[test]
    fn finite_margin_culls_sub_floor_pairs() {
        let mut m = culling_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        let c = m.add_antenna(Placement::los("c", 2.0, 0.0));
        // a→b comfortably above the threshold; a→c 10 dB below it.
        m.set_gain(a, b, C64::new(ratio_from_db(-40.0).sqrt(), 0.0));
        m.set_gain(a, c, C64::new(ratio_from_db(-110.0).sqrt(), 0.0));
        assert!(m.pair_audible(a, b));
        assert!(!m.pair_audible(a, c));
        // The culled pair contributes nothing: c hears only its own noise.
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        let quiet: Vec<C64> = {
            // A twin medium with no staged tx, same seed: identical noise.
            let mut t = culling_medium();
            t.add_antenna(Placement::los("a", 0.0, 0.0));
            t.add_antenna(Placement::los("b", 1.0, 0.0));
            let c2 = t.add_antenna(Placement::los("c", 2.0, 0.0));
            t.receive(c2, 0)
        };
        let y = m.receive(c, 0);
        assert_eq!(y, quiet, "culled pair must add nothing to the mixture");
    }

    #[test]
    fn inaudible_everywhere_is_not_staged() {
        let mut m = culling_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        // No gains at all: with a finite margin every zero-gain pair is
        // culled, so `a` is audible nowhere and staging skips it.
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(!m.channel_active(0), "culled-everywhere tx must not stage");
        assert_eq!(m.staged_power(0), 0.0);
        // Give it one audible listener and it stages again.
        m.end_block();
        m.set_gain(a, b, C64::ONE);
        m.transmit(a, 0, &vec![C64::ONE; 16]);
        assert!(m.channel_active(0));
        assert!((m.staged_power(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn neg_inf_margin_keeps_zero_gain_pairs_audible() {
        // The dense invariant: at −∞ the threshold is exactly zero, so
        // even an unlinked pair is "audible" and observer semantics match
        // the dense engine (`observer_helpers` relies on this).
        let mut m = quiet_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        assert!(m.pair_audible(a, b));
        assert!(m.pair_audible(a, a));
        let stats = m.cull_stats();
        assert_eq!(stats.audible_pairs, stats.total_pairs);
    }

    #[test]
    fn noise_floor_change_rebuilds_that_row() {
        let mut m = culling_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        // −95 dB of gain power: audible at a −100 dBm floor (margin 0)…
        m.set_gain(a, b, C64::new(ratio_from_db(-95.0).sqrt(), 0.0));
        assert!(m.pair_audible(a, b));
        // …culled once b's floor is raised to −90 dBm.
        let rows_before = m.cull_stats().rows_rebuilt;
        m.set_noise_floor_dbm(b, -90.0);
        assert!(!m.pair_audible(a, b));
        assert_eq!(m.cull_stats().rows_rebuilt, rows_before + 1);
    }

    #[test]
    fn move_antenna_redraws_drawn_and_preserves_explicit() {
        let mut m = culling_medium();
        let a = m.add_antenna(Placement::los("a", 0.0, 0.0));
        let b = m.add_antenna(Placement::los("b", 1.0, 0.0));
        let c = m.add_antenna(Placement::los("c", 2.0, 0.0));
        let wired = C64::new(0.9, 0.0);
        m.set_gain(a, b, wired);
        m.set_gain(b, a, wired);
        m.build_links(&PathlossModel::mics_indoor(), Fading::None);
        let g_ac = m.gain(a, c);
        let g_bc = m.gain(b, c);
        assert_ne!(g_ac, C64::ZERO);
        // Move a: its drawn links (a↔c) redraw, its explicit links (a↔b)
        // and untouched links (b↔c) are preserved.
        m.move_antenna(
            a,
            Placement::los("a", 5.0, 0.0),
            &PathlossModel::mics_indoor(),
            Fading::None,
        );
        assert_eq!(m.gain(a, b), wired);
        assert_eq!(m.gain(b, a), wired);
        assert_eq!(m.gain(b, c), g_bc);
        assert_ne!(m.gain(a, c), g_ac, "drawn link must redraw on move");
        assert_eq!(m.gain(a, c), m.gain(c, a), "redraw stays reciprocal");
    }

    #[test]
    fn move_antenna_invalidation_is_row_scoped() {
        let mut m = culling_medium();
        for i in 0..8 {
            m.add_antenna(Placement::los("x", i as f64, 0.0));
        }
        m.build_links(&PathlossModel::mics_indoor(), Fading::None);
        let before = m.cull_stats();
        m.move_antenna(
            3,
            Placement::los("x", 3.0, 4.0),
            &PathlossModel::mics_indoor(),
            Fading::None,
        );
        let after = m.cull_stats();
        let n = m.antenna_count() as u64;
        assert_eq!(
            after.rows_rebuilt, before.rows_rebuilt,
            "a move must not trigger full row rebuilds"
        );
        assert!(
            after.pair_updates - before.pair_updates <= 2 * (n - 1),
            "a move must touch at most the moved antenna's row and column: {} updates",
            after.pair_updates - before.pair_updates
        );
        // Audibility stays semantically consistent after the incremental
        // update: every pair's flag matches a from-scratch evaluation.
        for tx in 0..m.antenna_count() {
            for rx in 0..m.antenna_count() {
                let expect = m.gain(tx, rx).norm_sq() >= ratio_from_db(-100.0);
                assert_eq!(m.pair_audible(tx, rx), expect, "pair ({tx}, {rx})");
            }
        }
    }
}
