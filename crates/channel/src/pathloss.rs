//! Pathloss models for the 402–405 MHz MICS band.
//!
//! Three pieces, mirroring the decomposition the paper itself uses
//! (`L = L_body + L_air`, §6(b)):
//!
//! * **Air**: log-distance with a free-space (n = 2) segment up to an
//!   indoor breakpoint, a steeper (n = 3.5) segment beyond it, and a
//!   **near-field coupling floor** — below roughly a wavelength, small
//!   400 MHz antennas couple far less efficiently than ideal free-space
//!   math suggests, so the loss never drops below `min_coupling_db`.
//!   The floor is what makes jamming-based protection behave the same for
//!   a 20 cm adversary as for the shield's own antennas a few cm apart
//!   (calibrated against Fig. 8a and Fig. 13 of the paper).
//! * **Body**: a fixed in-body attenuation applied per body-boundary
//!   crossing; §7(b) cites "as high as 40 dB" for implant depth \[47\].
//! * **NLOS**: a fixed penalty for non-line-of-sight placements plus
//!   per-link lognormal shadowing.

use crate::geometry::Placement;
use hb_dsp::units::{db_from_ratio, wavelength_m};
use rand::Rng;

/// Free-space pathloss in dB at distance `d_m` meters for frequency
/// `freq_hz` (the standard Friis form, `20·log10(4πd/λ)`).
pub fn free_space_db(d_m: f64, freq_hz: f64) -> f64 {
    let lambda = wavelength_m(freq_hz);
    db_from_ratio((4.0 * std::f64::consts::PI * d_m / lambda).powi(2))
}

/// Parameters of the composite indoor MICS pathloss model.
#[derive(Debug, Clone, Copy)]
pub struct PathlossModel {
    /// Carrier frequency, Hz.
    pub freq_hz: f64,
    /// Minimum over-the-air coupling loss, dB (near-field floor).
    pub min_coupling_db: f64,
    /// Breakpoint distance, m: free-space up to here.
    pub breakpoint_m: f64,
    /// Pathloss exponent beyond the breakpoint.
    pub far_exponent: f64,
    /// Extra loss for non-line-of-sight links, dB.
    pub nlos_penalty_db: f64,
    /// Lognormal shadowing standard deviation, dB (drawn once per link).
    pub shadowing_sigma_db: f64,
    /// In-body attenuation per body-boundary crossing, dB.
    pub body_loss_db: f64,
}

impl Default for PathlossModel {
    fn default() -> Self {
        Self::mics_indoor()
    }
}

impl PathlossModel {
    /// The calibrated indoor model used by the testbed (DESIGN.md,
    /// "Calibrated physical constants").
    pub fn mics_indoor() -> Self {
        PathlossModel {
            freq_hz: 403.5e6,
            min_coupling_db: 27.0,
            breakpoint_m: 10.0,
            far_exponent: 3.5,
            nlos_penalty_db: 12.0,
            shadowing_sigma_db: 2.0,
            body_loss_db: 40.0,
        }
    }

    /// Ideal free-space variant (no floor, no breakpoint, no body) —
    /// useful for unit tests and theory comparisons.
    pub fn free_space(freq_hz: f64) -> Self {
        PathlossModel {
            freq_hz,
            min_coupling_db: 0.0,
            breakpoint_m: f64::INFINITY,
            far_exponent: 2.0,
            nlos_penalty_db: 0.0,
            shadowing_sigma_db: 0.0,
            body_loss_db: 0.0,
        }
    }

    /// Median over-the-air loss in dB at distance `d_m` (no body, no
    /// shadowing, LOS).
    pub fn air_loss_db(&self, d_m: f64) -> f64 {
        let d = d_m.max(1e-3);
        let fs = if d <= self.breakpoint_m {
            free_space_db(d, self.freq_hz)
        } else {
            free_space_db(self.breakpoint_m, self.freq_hz)
                + 10.0 * self.far_exponent * (d / self.breakpoint_m).log10()
        };
        fs.max(self.min_coupling_db)
    }

    /// Median total loss between two placements in dB: air loss over the
    /// distance, NLOS penalty if either endpoint lacks line of sight, and
    /// body loss for each endpoint inside tissue.
    pub fn link_loss_db(&self, a: &Placement, b: &Placement) -> f64 {
        let mut loss = self.air_loss_db(a.position.distance(&b.position));
        if !a.line_of_sight || !b.line_of_sight {
            loss += self.nlos_penalty_db;
        }
        if a.in_body {
            loss += self.body_loss_db;
        }
        if b.in_body {
            loss += self.body_loss_db;
        }
        loss
    }

    /// Draws the total loss including lognormal shadowing for one link.
    pub fn link_loss_db_shadowed<R: Rng + ?Sized>(
        &self,
        a: &Placement,
        b: &Placement,
        rng: &mut R,
    ) -> f64 {
        let shadow = hb_dsp::noise::standard_normal(rng) * self.shadowing_sigma_db;
        self.link_loss_db(a, b) + shadow
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn free_space_reference_values() {
        // 403.5 MHz at 1 m: ~24.6 dB.
        let l1 = free_space_db(1.0, 403.5e6);
        assert!((l1 - 24.56).abs() < 0.1, "1m loss {l1}");
        // +20 dB per decade.
        let l10 = free_space_db(10.0, 403.5e6);
        assert!((l10 - l1 - 20.0).abs() < 1e-9);
    }

    #[test]
    fn near_field_floor_applies() {
        let m = PathlossModel::mics_indoor();
        // At 20 cm the raw Friis loss (~10.6 dB) is below the floor.
        assert_eq!(m.air_loss_db(0.2), 27.0);
        assert_eq!(m.air_loss_db(0.01), 27.0);
        // Beyond ~1.4 m the distance term dominates.
        assert!(m.air_loss_db(2.0) > 27.0);
    }

    #[test]
    fn breakpoint_changes_slope() {
        let m = PathlossModel::mics_indoor();
        let l_10 = m.air_loss_db(10.0);
        let l_20 = m.air_loss_db(20.0);
        let l_5 = m.air_loss_db(5.0);
        // Below breakpoint: 20 dB/decade => 10->5 m is ~6 dB.
        assert!((l_10 - l_5 - 6.02).abs() < 0.1);
        // Above breakpoint: 35 dB/decade => 10->20 m is ~10.5 dB.
        assert!((l_20 - l_10 - 10.54).abs() < 0.1);
    }

    #[test]
    fn loss_is_monotone_in_distance() {
        let m = PathlossModel::mics_indoor();
        let mut last = 0.0;
        for i in 1..300 {
            let d = i as f64 * 0.1;
            let l = m.air_loss_db(d);
            assert!(l >= last - 1e-12, "non-monotone at {d} m");
            last = l;
        }
    }

    #[test]
    fn body_and_nlos_terms() {
        let m = PathlossModel::mics_indoor();
        let imd = Placement::los("imd", 0.0, 0.0).implanted();
        let shield = Placement::los("shield", 0.25, 0.0);
        let eve_nlos = Placement::nlos("eve", 5.0, 0.0);

        let base = m.air_loss_db(0.25);
        assert!((m.link_loss_db(&imd, &shield) - (base + 40.0)).abs() < 1e-9);

        let air5 = m.air_loss_db(5.0);
        assert!((m.link_loss_db(&imd, &eve_nlos) - (air5 + 40.0 + 12.0)).abs() < 1e-9);

        // Two in-body endpoints cross the boundary twice.
        let imd2 = Placement::los("imd2", 0.1, 0.0).implanted();
        assert!(m.link_loss_db(&imd, &imd2) >= 27.0 + 80.0 - 1e-9);
    }

    #[test]
    fn link_loss_is_symmetric() {
        let m = PathlossModel::mics_indoor();
        let a = Placement::los("a", 0.0, 0.0).implanted();
        let b = Placement::nlos("b", 3.0, 4.0);
        assert_eq!(m.link_loss_db(&a, &b), m.link_loss_db(&b, &a));
    }

    #[test]
    fn shadowing_statistics() {
        let m = PathlossModel::mics_indoor();
        let a = Placement::los("a", 0.0, 0.0);
        let b = Placement::los("b", 5.0, 0.0);
        let median = m.link_loss_db(&a, &b);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 20_000;
        let draws: Vec<f64> = (0..n)
            .map(|_| m.link_loss_db_shadowed(&a, &b, &mut rng))
            .collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(
            (mean - median).abs() < 0.1,
            "mean {mean} vs median {median}"
        );
        assert!((var.sqrt() - 2.0).abs() < 0.1, "sigma {}", var.sqrt());
    }

    #[test]
    fn free_space_model_has_no_floor() {
        let m = PathlossModel::free_space(403.5e6);
        assert!(m.air_loss_db(0.2) < 12.0);
        let a = Placement::los("a", 0.0, 0.0);
        let b = Placement::nlos("b", 1.0, 0.0);
        // No NLOS penalty in the ideal model.
        assert!((m.link_loss_db(&a, &b) - m.air_loss_db(1.0)).abs() < 1e-9);
    }
}
