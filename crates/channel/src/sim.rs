//! The simulation executive: a poll-based, two-phase block loop.
//!
//! Following the smoltcp idiom, devices are *polled*: the executive never
//! calls into a device except at well-defined points, and devices never
//! block. Each simulation block:
//!
//! 1. **produce** — every node stages its transmissions for the block (the
//!    medium rejects staging after mixing begins, so ordering bugs panic
//!    loudly rather than corrupting results);
//! 2. **consume** — every node receives the mixed waveform and updates its
//!    state machine, to act on it in the *next* block.
//!
//! Concrete experiment harnesses in `hb-testbed` mostly drive their typed
//! devices directly with this same two-phase pattern; the [`Node`] trait
//! and [`run_blocks`] helper serve examples and generic scenarios.

use crate::medium::Medium;

/// A device attached to the medium.
pub trait Node {
    /// Short name for traces and error messages.
    fn label(&self) -> &str;

    /// Phase 1: stage this block's transmissions (may stage none).
    fn produce(&mut self, medium: &mut Medium);

    /// Phase 2: receive this block's mixed waveform and update state.
    fn consume(&mut self, medium: &mut Medium);
}

/// Runs `n_blocks` blocks of the two-phase loop over `nodes`.
pub fn run_blocks(medium: &mut Medium, nodes: &mut [&mut dyn Node], n_blocks: u64) {
    for _ in 0..n_blocks {
        for node in nodes.iter_mut() {
            node.produce(medium);
        }
        for node in nodes.iter_mut() {
            node.consume(medium);
        }
        medium.end_block();
    }
}

/// Runs the loop for at least `seconds` of simulated time.
pub fn run_seconds(medium: &mut Medium, nodes: &mut [&mut dyn Node], seconds: f64) {
    let blocks = medium.blocks_for_duration(seconds);
    run_blocks(medium, nodes, blocks);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Placement;
    use crate::medium::{AntennaId, MediumConfig};
    use hb_dsp::complex::{mean_power, C64};

    /// A node that transmits a constant tone for a fixed number of blocks.
    struct Beacon {
        antenna: AntennaId,
        blocks_left: u64,
        produced: u64,
    }

    impl Node for Beacon {
        fn label(&self) -> &str {
            "beacon"
        }
        fn produce(&mut self, medium: &mut Medium) {
            if self.blocks_left > 0 {
                let block = vec![C64::ONE; medium.config().block_len];
                medium.transmit(self.antenna, 0, &block);
                self.blocks_left -= 1;
                self.produced += 1;
            }
        }
        fn consume(&mut self, _medium: &mut Medium) {}
    }

    /// A node that accumulates received power.
    struct PowerMeter {
        antenna: AntennaId,
        total: f64,
        blocks: u64,
    }

    impl Node for PowerMeter {
        fn label(&self) -> &str {
            "meter"
        }
        fn produce(&mut self, _medium: &mut Medium) {}
        fn consume(&mut self, medium: &mut Medium) {
            let y = medium.receive(self.antenna, 0);
            self.total += mean_power(&y);
            self.blocks += 1;
        }
    }

    #[test]
    fn two_phase_loop_delivers_power() {
        let cfg = MediumConfig {
            noise_floor_dbm: -200.0,
            ..Default::default()
        };
        let mut medium = Medium::new(cfg, 1);
        let a = medium.add_antenna(Placement::los("tx", 0.0, 0.0));
        let b = medium.add_antenna(Placement::los("rx", 1.0, 0.0));
        medium.set_gain(a, b, C64::new(0.5, 0.0));

        let mut beacon = Beacon {
            antenna: a,
            blocks_left: 10,
            produced: 0,
        };
        let mut meter = PowerMeter {
            antenna: b,
            total: 0.0,
            blocks: 0,
        };
        run_blocks(&mut medium, &mut [&mut beacon, &mut meter], 20);

        assert_eq!(beacon.produced, 10);
        assert_eq!(meter.blocks, 20);
        // 10 blocks at |0.5|^2 = 0.25, 10 silent blocks.
        assert!((meter.total - 2.5).abs() < 1e-9, "total {}", meter.total);
        assert_eq!(medium.block_index(), 20);
    }

    #[test]
    fn run_seconds_rounds_up() {
        let mut medium = Medium::new(
            MediumConfig {
                noise_floor_dbm: -200.0,
                ..Default::default()
            },
            2,
        );
        let a = medium.add_antenna(Placement::los("rx", 0.0, 0.0));
        let mut meter = PowerMeter {
            antenna: a,
            total: 0.0,
            blocks: 0,
        };
        // 1 ms at 300 kHz = 300 samples = 18.75 blocks -> 19.
        run_seconds(&mut medium, &mut [&mut meter], 1e-3);
        assert_eq!(meter.blocks, 19);
    }
}
