//! Block-aligned transmission scheduling.
//!
//! Devices build whole waveforms (a modulated frame, a jamming burst) and
//! hand them to a [`TxScheduler`] with an absolute start tick; the
//! scheduler slices them into medium blocks each `produce` phase,
//! zero-padding partial blocks so sub-block start offsets (e.g. the IMD's
//! 2.8–3.7 ms reply delay) are honored to the sample.

use crate::medium::{AntennaId, Medium, Tick};
use hb_dsp::complex::C64;

#[derive(Debug, Clone)]
struct Scheduled {
    start_tick: Tick,
    channel: usize,
    samples: Vec<C64>,
}

/// Queue of future transmissions for one antenna.
#[derive(Debug, Clone, Default)]
pub struct TxScheduler {
    queue: Vec<Scheduled>,
    /// Pooled per-channel mix buffers for [`TxScheduler::produce`]; the
    /// first `scratch_len` entries are live this block. Reused across
    /// blocks so steady-state production does not allocate, and iterated
    /// in claim order so multi-channel staging is deterministic (the
    /// `HashMap` this replaces iterated in a per-process random order).
    scratch: Vec<(usize, Vec<C64>)>,
    scratch_len: usize,
}

impl TxScheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        TxScheduler::default()
    }

    /// Schedules `samples` to start at `start_tick` (absolute sample time)
    /// on `channel`. Bursts that overlap in time are summed — an antenna
    /// driving two simultaneous bursts emits their superposition, which is
    /// what a DAC fed two signals would do.
    pub fn schedule(&mut self, start_tick: Tick, channel: usize, samples: Vec<C64>) {
        if samples.is_empty() {
            return;
        }
        self.queue.push(Scheduled {
            start_tick,
            channel,
            samples,
        });
    }

    /// True if a queued burst covers `tick`.
    pub fn busy_at(&self, tick: Tick) -> bool {
        self.queue
            .iter()
            .any(|s| tick >= s.start_tick && tick < s.start_tick + s.samples.len() as Tick)
    }

    /// True if nothing is queued.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }

    /// Tick just past the end of the last queued burst, if any.
    pub fn end_tick(&self) -> Option<Tick> {
        self.queue
            .iter()
            .map(|s| s.start_tick + s.samples.len() as Tick)
            .max()
    }

    /// Cancels everything queued.
    pub fn clear(&mut self) {
        self.queue.clear();
    }

    /// Emits this block's slice of every active burst (one transmission per
    /// channel). Returns `true` if any samples went out this block.
    pub fn produce(&mut self, antenna: AntennaId, medium: &mut Medium) -> bool {
        let block_len = medium.config().block_len as Tick;
        let block_start = medium.tick();
        let block_end = block_start + block_len;

        self.scratch_len = 0;
        for s in &self.queue {
            let s_end = s.start_tick + s.samples.len() as Tick;
            if s.start_tick >= block_end || s_end <= block_start {
                continue;
            }
            // Claim (or find) this channel's pooled mix buffer.
            let idx = match self.scratch[..self.scratch_len]
                .iter()
                .position(|(ch, _)| *ch == s.channel)
            {
                Some(i) => i,
                None => {
                    if self.scratch_len == self.scratch.len() {
                        self.scratch.push((s.channel, Vec::new()));
                    }
                    let entry = &mut self.scratch[self.scratch_len];
                    entry.0 = s.channel;
                    entry.1.clear();
                    entry.1.resize(block_len as usize, C64::ZERO);
                    self.scratch_len += 1;
                    self.scratch_len - 1
                }
            };
            let buf = &mut self.scratch[idx].1;
            let from = block_start.max(s.start_tick);
            let to = block_end.min(s_end);
            for t in from..to {
                buf[(t - block_start) as usize] += s.samples[(t - s.start_tick) as usize];
            }
        }
        // Drop bursts that have fully played out.
        self.queue
            .retain(|s| s.start_tick + s.samples.len() as Tick > block_end);

        let any = self.scratch_len > 0;
        for (channel, buf) in &self.scratch[..self.scratch_len] {
            medium.transmit(antenna, *channel, buf);
        }
        any
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::geometry::Placement;
    use crate::medium::MediumConfig;
    use hb_dsp::complex::mean_power;

    fn medium() -> Medium {
        Medium::new(
            MediumConfig {
                noise_floor_dbm: -300.0,
                ..Default::default()
            },
            1,
        )
    }

    #[test]
    fn burst_plays_with_exact_offset() {
        let mut m = medium();
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);

        let mut sched = TxScheduler::new();
        // Start mid-block: tick 20 (block 1, offset 4), 10 samples long.
        sched.schedule(20, 0, vec![C64::ONE; 10]);

        let mut received = Vec::new();
        for _ in 0..4 {
            sched.produce(tx, &mut m);
            received.extend(m.receive(rx, 0));
            m.end_block();
        }
        for (t, s) in received.iter().enumerate() {
            let expected = if (20..30).contains(&t) { 1.0 } else { 0.0 };
            assert!(
                (s.abs() - expected).abs() < 1e-9,
                "tick {t}: {} vs {expected}",
                s.abs()
            );
        }
        assert!(sched.is_idle());
    }

    #[test]
    fn long_burst_spans_blocks() {
        let mut m = medium();
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);

        let mut sched = TxScheduler::new();
        let wave: Vec<C64> = (0..100).map(|i| C64::new(i as f64, 0.0)).collect();
        sched.schedule(0, 2, wave.clone());

        let mut received = Vec::new();
        for _ in 0..7 {
            sched.produce(tx, &mut m);
            received.extend(m.receive(rx, 2));
            m.end_block();
        }
        for (t, expected) in wave.iter().enumerate() {
            assert!((received[t] - *expected).abs() < 1e-9, "sample {t}");
        }
        assert!(mean_power(&received[100..112]) < 1e-12);
    }

    #[test]
    fn overlapping_bursts_superpose() {
        let mut m = medium();
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);

        let mut sched = TxScheduler::new();
        sched.schedule(0, 0, vec![C64::ONE; 16]);
        sched.schedule(8, 0, vec![C64::ONE; 16]);

        sched.produce(tx, &mut m);
        let y = m.receive(rx, 0);
        assert!((y[4] - C64::ONE).abs() < 1e-9);
        assert!((y[12] - C64::new(2.0, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn different_channels_in_one_block() {
        let mut m = medium();
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);

        let mut sched = TxScheduler::new();
        sched.schedule(0, 0, vec![C64::ONE; 16]);
        sched.schedule(0, 5, vec![C64::new(2.0, 0.0); 16]);
        sched.produce(tx, &mut m);
        assert!((m.receive(rx, 0)[0] - C64::ONE).abs() < 1e-9);
        assert!((m.receive(rx, 5)[0] - C64::new(2.0, 0.0)).abs() < 1e-9);
    }

    #[test]
    fn busy_and_end_tick() {
        let mut sched = TxScheduler::new();
        assert!(sched.is_idle());
        assert_eq!(sched.end_tick(), None);
        sched.schedule(100, 0, vec![C64::ONE; 50]);
        assert!(!sched.busy_at(99));
        assert!(sched.busy_at(100));
        assert!(sched.busy_at(149));
        assert!(!sched.busy_at(150));
        assert_eq!(sched.end_tick(), Some(150));
        sched.clear();
        assert!(sched.is_idle());
    }

    #[test]
    fn empty_schedule_ignored() {
        let mut sched = TxScheduler::new();
        sched.schedule(0, 0, vec![]);
        assert!(sched.is_idle());
    }
}
