//! Property-based tests for the channel substrate.

use hb_channel::fading::{Fading, MultipathChannel};
use hb_channel::geometry::{Placement, Point};
use hb_channel::medium::{Medium, MediumConfig};
use hb_channel::pathloss::PathlossModel;
use hb_channel::txsched::TxScheduler;
use hb_dsp::complex::C64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Pathloss is monotone non-decreasing in distance.
    #[test]
    fn pathloss_monotone(d1 in 0.01f64..50.0, d2 in 0.01f64..50.0) {
        let m = PathlossModel::mics_indoor();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.air_loss_db(near) <= m.air_loss_db(far) + 1e-9);
    }

    /// Link loss is symmetric in its endpoints for any placement combo.
    #[test]
    fn link_loss_symmetric(
        x1 in -30.0f64..30.0, y1 in -30.0f64..30.0,
        x2 in -30.0f64..30.0, y2 in -30.0f64..30.0,
        los1 in any::<bool>(), los2 in any::<bool>(),
        body1 in any::<bool>(), body2 in any::<bool>(),
    ) {
        let m = PathlossModel::mics_indoor();
        let make = |l: &str, x: f64, y: f64, los: bool, body: bool| {
            let mut p = if los { Placement::los(l, x, y) } else { Placement::nlos(l, x, y) };
            if body { p = p.implanted(); }
            p
        };
        let a = make("a", x1, y1, los1, body1);
        let b = make("b", x2, y2, los2, body2);
        prop_assert!((m.link_loss_db(&a, &b) - m.link_loss_db(&b, &a)).abs() < 1e-12);
    }

    /// Distance is a metric (triangle inequality on random triples).
    #[test]
    fn distance_triangle(
        ax in -10f64..10.0, ay in -10f64..10.0,
        bx in -10f64..10.0, by in -10f64..10.0,
        cx in -10f64..10.0, cy in -10f64..10.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    /// The medium is linear: doubling the transmit amplitude doubles the
    /// received amplitude (noise disabled).
    #[test]
    fn medium_linearity(amp in 0.1f64..10.0, gain_db in -80.0f64..0.0) {
        let mut m = Medium::new(
            MediumConfig { noise_floor_dbm: -300.0, ..Default::default() },
            1,
        );
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        let g = C64::from_polar(hb_dsp::units::amplitude_from_db(gain_db), 0.3);
        m.set_gain(tx, rx, g);

        m.transmit(tx, 0, &vec![C64::real(amp); 16]);
        let y1 = m.receive(rx, 0);
        m.end_block();
        m.transmit(tx, 0, &vec![C64::real(2.0 * amp); 16]);
        let y2 = m.receive(rx, 0);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((b.abs() - 2.0 * a.abs()).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// A scheduled burst is reproduced sample-exactly at any offset and
    /// any block size boundary.
    #[test]
    fn txsched_sample_exact(offset in 0u64..100, len in 1usize..200) {
        let mut m = Medium::new(
            MediumConfig { noise_floor_dbm: -300.0, ..Default::default() },
            2,
        );
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);
        let wave: Vec<C64> = (0..len).map(|i| C64::new(i as f64 + 1.0, -(i as f64))).collect();
        let mut sched = TxScheduler::new();
        sched.schedule(offset, 0, wave.clone());
        let mut rx_all = Vec::new();
        let blocks = (offset as usize + len) / 16 + 2;
        for _ in 0..blocks {
            sched.produce(tx, &mut m);
            rx_all.extend(m.receive(rx, 0));
            m.end_block();
        }
        for (i, expected) in wave.iter().enumerate() {
            prop_assert!((rx_all[offset as usize + i] - *expected).abs() < 1e-9);
        }
        // Silence before and after.
        if offset > 0 {
            prop_assert!(rx_all[offset as usize - 1].abs() < 1e-9);
        }
        prop_assert!(rx_all[offset as usize + len].abs() < 1e-9);
    }

    /// Fading draws preserve unit mean power for any Rician K.
    #[test]
    fn rician_unit_power(k in 0.0f64..50.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let p: f64 = (0..n).map(|_| Fading::Rician(k).draw(&mut rng).norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((p - 1.0).abs() < 0.2, "power {}", p);
    }

    /// Multipath normalization holds for any profile shape.
    #[test]
    fn multipath_unit_power(n_taps in 1usize..16, decay in 0.05f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = MultipathChannel::random_exponential(n_taps, decay, &mut rng);
        let total: f64 = ch.taps.iter().map(|t| t.norm_sq()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
