//! Property-based tests for the channel substrate.

use hb_channel::fading::{Fading, MultipathChannel};
use hb_channel::fault::FaultPlan;
use hb_channel::geometry::{Placement, Point};
use hb_channel::medium::{Medium, MediumConfig};
use hb_channel::pathloss::PathlossModel;
use hb_channel::txsched::TxScheduler;
use hb_dsp::complex::C64;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    /// Pathloss is monotone non-decreasing in distance.
    #[test]
    fn pathloss_monotone(d1 in 0.01f64..50.0, d2 in 0.01f64..50.0) {
        let m = PathlossModel::mics_indoor();
        let (near, far) = if d1 < d2 { (d1, d2) } else { (d2, d1) };
        prop_assert!(m.air_loss_db(near) <= m.air_loss_db(far) + 1e-9);
    }

    /// Link loss is symmetric in its endpoints for any placement combo.
    #[test]
    fn link_loss_symmetric(
        x1 in -30.0f64..30.0, y1 in -30.0f64..30.0,
        x2 in -30.0f64..30.0, y2 in -30.0f64..30.0,
        los1 in any::<bool>(), los2 in any::<bool>(),
        body1 in any::<bool>(), body2 in any::<bool>(),
    ) {
        let m = PathlossModel::mics_indoor();
        let make = |l: &str, x: f64, y: f64, los: bool, body: bool| {
            let mut p = if los { Placement::los(l, x, y) } else { Placement::nlos(l, x, y) };
            if body { p = p.implanted(); }
            p
        };
        let a = make("a", x1, y1, los1, body1);
        let b = make("b", x2, y2, los2, body2);
        prop_assert!((m.link_loss_db(&a, &b) - m.link_loss_db(&b, &a)).abs() < 1e-12);
    }

    /// Distance is a metric (triangle inequality on random triples).
    #[test]
    fn distance_triangle(
        ax in -10f64..10.0, ay in -10f64..10.0,
        bx in -10f64..10.0, by in -10f64..10.0,
        cx in -10f64..10.0, cy in -10f64..10.0,
    ) {
        let a = Point::new(ax, ay);
        let b = Point::new(bx, by);
        let c = Point::new(cx, cy);
        prop_assert!(a.distance(&c) <= a.distance(&b) + b.distance(&c) + 1e-9);
    }

    /// The medium is linear: doubling the transmit amplitude doubles the
    /// received amplitude (noise disabled).
    #[test]
    fn medium_linearity(amp in 0.1f64..10.0, gain_db in -80.0f64..0.0) {
        let mut m = Medium::new(
            MediumConfig { noise_floor_dbm: -300.0, ..Default::default() },
            1,
        );
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        let g = C64::from_polar(hb_dsp::units::amplitude_from_db(gain_db), 0.3);
        m.set_gain(tx, rx, g);

        m.transmit(tx, 0, &vec![C64::real(amp); 16]);
        let y1 = m.receive(rx, 0);
        m.end_block();
        m.transmit(tx, 0, &vec![C64::real(2.0 * amp); 16]);
        let y2 = m.receive(rx, 0);
        for (a, b) in y1.iter().zip(&y2) {
            prop_assert!((b.abs() - 2.0 * a.abs()).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// A scheduled burst is reproduced sample-exactly at any offset and
    /// any block size boundary.
    #[test]
    fn txsched_sample_exact(offset in 0u64..100, len in 1usize..200) {
        let mut m = Medium::new(
            MediumConfig { noise_floor_dbm: -300.0, ..Default::default() },
            2,
        );
        let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, C64::ONE);
        let wave: Vec<C64> = (0..len).map(|i| C64::new(i as f64 + 1.0, -(i as f64))).collect();
        let mut sched = TxScheduler::new();
        sched.schedule(offset, 0, wave.clone());
        let mut rx_all = Vec::new();
        let blocks = (offset as usize + len) / 16 + 2;
        for _ in 0..blocks {
            sched.produce(tx, &mut m);
            rx_all.extend(m.receive(rx, 0));
            m.end_block();
        }
        for (i, expected) in wave.iter().enumerate() {
            prop_assert!((rx_all[offset as usize + i] - *expected).abs() < 1e-9);
        }
        // Silence before and after.
        if offset > 0 {
            prop_assert!(rx_all[offset as usize - 1].abs() < 1e-9);
        }
        prop_assert!(rx_all[offset as usize + len].abs() < 1e-9);
    }

    /// Fading draws preserve unit mean power for any Rician K.
    #[test]
    fn rician_unit_power(k in 0.0f64..50.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 4000;
        let p: f64 = (0..n).map(|_| Fading::Rician(k).draw(&mut rng).norm_sq()).sum::<f64>() / n as f64;
        prop_assert!((p - 1.0).abs() < 0.2, "power {}", p);
    }

    /// Multipath normalization holds for any profile shape.
    #[test]
    fn multipath_unit_power(n_taps in 1usize..16, decay in 0.05f64..1.0, seed in any::<u64>()) {
        let mut rng = StdRng::seed_from_u64(seed);
        let ch = MultipathChannel::random_exponential(n_taps, decay, &mut rng);
        let total: f64 = ch.taps.iter().map(|t| t.norm_sq()).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// At a cull margin of −∞ the sparse engine IS the dense engine: with
    /// noise disabled, the received block is bit-identical to the dense
    /// reference sum Σ_tx g(tx,rx)·s_tx accumulated in staging order.
    #[test]
    fn neg_inf_margin_is_bitwise_dense(
        n in 2usize..6,
        seed in any::<u64>(),
        gains_db in prop::collection::vec(-120.0f64..-10.0, 25),
        amps in prop::collection::vec(0.05f64..2.0, 5),
    ) {
        let cfg = MediumConfig {
            noise_floor_dbm: f64::NEG_INFINITY,
            ..Default::default()
        };
        prop_assert!(cfg.cull_margin_db == f64::NEG_INFINITY);
        let mut m = Medium::new(cfg, seed);
        for i in 0..n {
            m.add_antenna(Placement::los("ant", i as f64, 0.0));
        }
        let mut k = 0;
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx {
                    let amp = hb_dsp::units::amplitude_from_db(gains_db[k]);
                    m.set_gain(tx, rx, C64::from_polar(amp, 0.1 * k as f64));
                    k += 1;
                }
            }
        }
        let waves: Vec<Vec<C64>> = (0..n)
            .map(|tx| (0..16).map(|i| C64::new(amps[tx % amps.len()], 0.01 * i as f64)).collect())
            .collect();
        for (tx, wave) in waves.iter().enumerate() {
            m.transmit(tx, 0, wave);
        }
        for rx in 0..n {
            let got = m.receive(rx, 0);
            // Dense reference: same staging order, same per-sample MAC
            // expression, starting from an all-zero (noiseless) buffer.
            let mut want = vec![C64::ZERO; 16];
            for (tx, wave) in waves.iter().enumerate() {
                let g = m.gain(tx, rx);
                if g == C64::ZERO {
                    continue;
                }
                for (v, &s) in want.iter_mut().zip(wave) {
                    *v += s * g;
                }
            }
            for (a, b) in got.iter().zip(&want) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
        }
    }

    /// Sparse-with-margin receive differs from the −∞ (dense) twin by at
    /// most the guaranteed sub-noise-floor bound: each culled staged pair
    /// contributes less than √(floor·10^(margin/10))·max|s| per sample.
    #[test]
    fn finite_margin_error_is_sub_floor_bounded(
        n in 2usize..6,
        seed in any::<u64>(),
        margin_db in -20.0f64..20.0,
        gains_db in prop::collection::vec(-160.0f64..-20.0, 25),
        amps in prop::collection::vec(0.05f64..1.0, 5),
    ) {
        let floor_dbm = -100.0;
        let dense_cfg = MediumConfig { noise_floor_dbm: floor_dbm, ..Default::default() };
        let sparse_cfg = MediumConfig {
            noise_floor_dbm: floor_dbm,
            cull_margin_db: margin_db,
            ..Default::default()
        };
        let mut dense = Medium::new(dense_cfg, seed);
        let mut sparse = Medium::new(sparse_cfg, seed);
        for i in 0..n {
            let p = Placement::los("ant", i as f64, 0.0);
            dense.add_antenna(p.clone());
            sparse.add_antenna(p);
        }
        let mut k = 0;
        for tx in 0..n {
            for rx in 0..n {
                if tx != rx {
                    let amp = hb_dsp::units::amplitude_from_db(gains_db[k]);
                    let g = C64::from_polar(amp, 0.2 * k as f64);
                    dense.set_gain(tx, rx, g);
                    sparse.set_gain(tx, rx, g);
                    k += 1;
                }
            }
        }
        let waves: Vec<Vec<C64>> = (0..n)
            .map(|tx| vec![C64::real(amps[tx % amps.len()]); 16])
            .collect();
        for (tx, wave) in waves.iter().enumerate() {
            dense.transmit(tx, 0, wave);
            sparse.transmit(tx, 0, wave);
        }
        // Identical seeds and identical RNG consumption (culling draws
        // nothing) → identical noise, so the difference is exactly the
        // culled contributions.
        let threshold = hb_dsp::units::ratio_from_db(floor_dbm)
            * hb_dsp::units::ratio_from_db(margin_db);
        for rx in 0..n {
            let yd = dense.receive(rx, 0);
            let ys = sparse.receive(rx, 0);
            let mut bound = 0.0;
            for tx in 0..n {
                if tx == rx {
                    continue;
                }
                if !sparse.pair_audible(tx, rx) {
                    let g = sparse.gain(tx, rx);
                    prop_assert!(g.norm_sq() < threshold, "culled pair must be sub-threshold");
                    bound += g.abs() * amps[tx % amps.len()];
                }
            }
            for (a, b) in yd.iter().zip(&ys) {
                prop_assert!((*a - *b).abs() <= bound + 1e-15, "diff {} > bound {}", (*a - *b).abs(), bound);
            }
        }
    }

    /// Moving one antenna invalidates only that antenna's rows: at most
    /// 2(n−1) pair updates, no full row rebuilds, and audibility flags
    /// stay consistent with a from-scratch evaluation.
    #[test]
    fn mobility_invalidation_is_row_scoped(
        n in 3usize..10,
        seed in any::<u64>(),
        moved in 0usize..10,
        dx in -5.0f64..5.0,
        dy in -5.0f64..5.0,
    ) {
        let moved = moved % n;
        let cfg = MediumConfig { cull_margin_db: 6.0, ..Default::default() };
        let mut m = Medium::new(cfg, seed);
        for i in 0..n {
            m.add_antenna(Placement::los("ant", 2.0 * i as f64, 0.0));
        }
        let model = PathlossModel::mics_indoor();
        m.build_links(&model, Fading::None);
        let before = m.cull_stats();
        m.move_antenna(moved, Placement::los("ant", 2.0 * moved as f64 + dx, dy), &model, Fading::None);
        let after = m.cull_stats();
        prop_assert_eq!(after.rows_rebuilt, before.rows_rebuilt);
        prop_assert!(after.pair_updates - before.pair_updates <= 2 * (n as u64 - 1));
        // Default floor is −112 dBm; margin was set to 6 dB above.
        let threshold = hb_dsp::units::ratio_from_db(-112.0)
            * hb_dsp::units::ratio_from_db(6.0);
        for tx in 0..n {
            let expect = m.gain(tx, moved).norm_sq() >= threshold;
            prop_assert_eq!(m.pair_audible(tx, moved), expect);
        }
    }

    /// Faults-off ≡ today, and the fault stream is isolated: a medium with
    /// an armed storm plan is *bit-identical* to its unarmed twin on every
    /// channel outside the storm mask, across multiple blocks. The armed
    /// plan draws its hazards and storm noise from a dedicated stream, so
    /// the main stream's draw sequence — and therefore every receive the
    /// faults don't touch — matches the fault-free engine exactly. (The
    /// default `FaultPlan::none()` config doesn't even arm the state, so
    /// it is a fortiori bit-identical to the pre-fault engine.)
    #[test]
    fn armed_fault_stream_is_isolated_from_main_stream(
        seed in any::<u64>(),
        storm_ch in 0usize..10,
        clean_ch in 0usize..10,
        storm_dbm in -80.0f64..-40.0,
        amp in 0.05f64..2.0,
        blocks in 1usize..6,
    ) {
        prop_assume!(storm_ch != clean_ch);
        let clean_cfg = MediumConfig::default();
        let armed_cfg = MediumConfig {
            fault: FaultPlan {
                storm_start_prob: 1.0,
                storm_len_blocks: 3,
                storm_power_dbm: storm_dbm,
                storm_channel_mask: 1 << storm_ch,
                ..FaultPlan::none()
            },
            ..Default::default()
        };
        let mut clean = Medium::new(clean_cfg, seed);
        let mut armed = Medium::new(armed_cfg, seed);
        for m in [&mut clean, &mut armed] {
            let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
            let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
            m.set_gain(tx, rx, C64::from_polar(0.5, 0.7));
        }
        let wave = vec![C64::real(amp); 16];
        for _ in 0..blocks {
            clean.transmit(0, clean_ch, &wave);
            armed.transmit(0, clean_ch, &wave);
            // Same receive order on both media: first the clean channel,
            // then the stormed one.
            let yc = clean.receive(1, clean_ch);
            let ya = armed.receive(1, clean_ch);
            for (a, b) in ya.iter().zip(&yc) {
                prop_assert_eq!(a.re.to_bits(), b.re.to_bits());
                prop_assert_eq!(a.im.to_bits(), b.im.to_bits());
            }
            // On the masked channel the storm adds power on top of the
            // *same* main-stream noise draw. (A burst runs down before the
            // next can start, so one block in `storm_len_blocks + 1` is
            // storm-free even at start probability 1.)
            let pc = hb_dsp::complex::mean_power(&clean.receive(1, storm_ch));
            let pa = hb_dsp::complex::mean_power(&armed.receive(1, storm_ch));
            if armed.fault_storm_active() {
                prop_assert!(
                    pa > pc,
                    "storm power {pa} not above clean floor {pc} on masked channel"
                );
            } else {
                prop_assert_eq!(pa.to_bits(), pc.to_bits());
            }
            clean.end_block();
            armed.end_block();
        }
    }

    /// A gain dropout is a pure signal fade: receiver noise is untouched
    /// (bit-identical to an unarmed twin's noise) and the signal term is
    /// scaled by exactly `10^(-depth/20)`.
    #[test]
    fn dropout_is_pure_signal_fade(
        seed in any::<u64>(),
        depth_db in 10.0f64..60.0,
        amp in 0.1f64..2.0,
        gain_db in -60.0f64..-10.0,
    ) {
        let fault = FaultPlan {
            dropout_start_prob: 1.0,
            dropout_len_blocks: 4,
            dropout_depth_db: depth_db,
            ..FaultPlan::none()
        };
        let clean_cfg = MediumConfig::default();
        let armed_cfg = MediumConfig { fault, ..Default::default() };
        let mut clean = Medium::new(clean_cfg, seed);
        let mut armed = Medium::new(armed_cfg, seed);
        let mut noise_twin = Medium::new(clean_cfg, seed);
        for m in [&mut clean, &mut armed, &mut noise_twin] {
            let tx = m.add_antenna(Placement::los("tx", 0.0, 0.0));
            let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
            let g = C64::from_polar(hb_dsp::units::amplitude_from_db(gain_db), 0.3);
            m.set_gain(tx, rx, g);
        }
        let wave = vec![C64::new(amp, 0.5 * amp); 16];
        clean.transmit(0, 0, &wave);
        armed.transmit(0, 0, &wave);
        // The noise twin stages nothing: identical seed and identical
        // draw sequence, so its receive IS the shared noise realization.
        let yc = clean.receive(1, 0);
        prop_assert!(armed.fault_dropout_active());
        let ya = armed.receive(1, 0);
        let yn = noise_twin.receive(1, 0);
        let fade = hb_dsp::units::ratio_from_db(-depth_db).sqrt();
        for ((a, c), n) in ya.iter().zip(yc).zip(yn) {
            // Signal terms: receive minus the shared noise realization.
            let sa = *a - n;
            let sc = c - n;
            let err = (sa - sc.scale(fade)).abs();
            prop_assert!(
                err < 1e-12 * (1.0 + sc.abs()),
                "faded signal off by {err}"
            );
        }
    }
}
