//! The jammer-cum-receiver: antidote-based full-duplex without antenna
//! separation (§5 of the paper).
//!
//! Two antennas: a **jamming antenna** transmitting the random jamming
//! signal `j(t)`, and a **receive antenna** simultaneously connected to a
//! transmit and a receive chain. The transmit chain emits the *antidote*
//!
//! ```text
//! x(t) = −(H_jam→rec / H_self) · j(t)                    (Eq. 2)
//! ```
//!
//! so the receive chain observes `H_jam→rec·j + H_self·x = 0` — the
//! jamming signal cancels **only at the receive antenna** (Eqs. 3–5 show
//! the cancellation condition is physically infeasible anywhere else,
//! because `|H_jam→rec/H_self| ≪ 1` — about −27 dB on the paper's USRP2
//! prototype — while any over-the-air location sees the two antennas with
//! comparable attenuation).
//!
//! In practice cancellation is limited by channel-estimation error: the
//! shield uses estimates `Ĥ`, leaving a residual
//! `(H_jam→rec − H_self·Ĥ_jam→rec/Ĥ_self)·j(t)`. With the bias-limited
//! error model of [`FullDuplex::estimate`], the mean cancellation `G`
//! equals the configured estimation SNR; the default 32 dB reproduces the
//! paper's measured Fig. 7 distribution.

use hb_dsp::complex::C64;
use hb_dsp::units::{amplitude_from_db, db_from_ratio};
use rand::Rng;

/// Physical couplings of the shield's two-antenna front end.
#[derive(Debug, Clone, Copy)]
pub struct CouplingConfig {
    /// Wired self-loop gain on the receive antenna, dB (tx chain → rx
    /// chain of the same antenna).
    pub h_self_db: f64,
    /// Over-the-air coupling from the jamming antenna to the receive
    /// antenna, dB.
    pub h_jam_rec_db: f64,
}

impl CouplingConfig {
    /// The paper's USRP2 prototype: `|H_jam→rec / H_self| ≈ −27 dB` (§5).
    pub fn usrp2_prototype() -> Self {
        CouplingConfig {
            h_self_db: -3.0,
            h_jam_rec_db: -30.0,
        }
    }

    /// The ratio `|H_jam→rec / H_self|` in dB (≈ −27 for the prototype).
    pub fn coupling_ratio_db(&self) -> f64 {
        self.h_jam_rec_db - self.h_self_db
    }

    /// Draws the true complex gains with random phases.
    pub fn draw_gains<R: Rng + ?Sized>(&self, rng: &mut R) -> (C64, C64) {
        let h_self = C64::from_polar(
            amplitude_from_db(self.h_self_db),
            rng.gen::<f64>() * std::f64::consts::TAU,
        );
        let h_jam_rec = C64::from_polar(
            amplitude_from_db(self.h_jam_rec_db),
            rng.gen::<f64>() * std::f64::consts::TAU,
        );
        (h_self, h_jam_rec)
    }
}

/// The full-duplex cancellation engine: true channels (as installed in the
/// medium) plus the shield's current estimates of them.
#[derive(Debug, Clone)]
pub struct FullDuplex {
    h_self_true: C64,
    h_jam_rec_true: C64,
    h_self_est: C64,
    h_jam_rec_est: C64,
}

impl FullDuplex {
    /// Creates the engine from the true channel gains. Estimates start
    /// equal to truth; call [`FullDuplex::estimate`] to model a real
    /// (noisy) estimation pass.
    pub fn new(h_self_true: C64, h_jam_rec_true: C64) -> Self {
        assert!(
            h_self_true.abs() > 0.0 && h_jam_rec_true.abs() > 0.0,
            "couplings must be non-zero"
        );
        FullDuplex {
            h_self_true,
            h_jam_rec_true,
            h_self_est: h_self_true,
            h_jam_rec_est: h_jam_rec_true,
        }
    }

    /// Performs one channel-estimation pass (§5 "Channel estimation": the
    /// shield probes before transmitting, and every 200 ms when idle).
    ///
    /// Error model: each estimate carries a relative error of fixed
    /// magnitude `10^(−est_snr_db/20)` (±5% jitter) at a uniformly random
    /// phase. Hardware cancellers are *bias-limited* — quantization,
    /// nonlinearity and drift set a floor that averaging cannot remove —
    /// rather than noise-limited, which matches the measured Fig. 7
    /// distribution: a bounded worst case about 6 dB below the mean, an
    /// occasional much deeper null, and mean cancellation equal to
    /// `est_snr_db` (the −3 dB from summing two error vectors cancels the
    /// +3 dB dB-domain mean of `2(1−cos φ)` exactly).
    pub fn estimate<R: Rng + ?Sized>(&mut self, est_snr_db: f64, rng: &mut R) {
        let a = amplitude_from_db(-est_snr_db);
        let perturb = |h: C64, rng: &mut R| -> C64 {
            let mag = a * (1.0 + 0.05 * hb_dsp::noise::standard_normal(rng));
            let theta = rng.gen::<f64>() * std::f64::consts::TAU;
            h * (C64::ONE + C64::from_polar(mag.max(0.0), theta))
        };
        self.h_self_est = perturb(self.h_self_true, rng);
        self.h_jam_rec_est = perturb(self.h_jam_rec_true, rng);
    }

    /// The antidote coefficient `−Ĥ_jam→rec / Ĥ_self` (Eq. 2).
    pub fn antidote_coeff(&self) -> C64 {
        -(self.h_jam_rec_est / self.h_self_est)
    }

    /// Computes the antidote waveform for a jamming (or own-transmission)
    /// waveform.
    pub fn antidote(&self, j: &[C64]) -> Vec<C64> {
        let mut out = vec![C64::ZERO; j.len()];
        self.antidote_into(j, &mut out);
        out
    }

    /// Computes the antidote waveform into `out` (resized to `j.len()`),
    /// reusing the buffer's allocation — the form the shield's per-block
    /// hot loop uses.
    pub fn antidote_into(&self, j: &[C64], out: &mut Vec<C64>) {
        let k = self.antidote_coeff();
        out.resize(j.len(), C64::ZERO);
        for (dst, &s) in out.iter_mut().zip(j.iter()) {
            *dst = s * k;
        }
    }

    /// The residual coupling seen by the receive chain per unit of jamming
    /// signal: `H_jam→rec + H_self·coeff` (zero with perfect estimates).
    pub fn residual_coupling(&self) -> C64 {
        self.h_jam_rec_true + self.h_self_true * self.antidote_coeff()
    }

    /// Cancellation depth in dB: jamming power at the receive chain
    /// without the antidote relative to with it (the quantity in Fig. 7).
    pub fn cancellation_db(&self) -> f64 {
        let before = self.h_jam_rec_true.norm_sq();
        let after = self.residual_coupling().norm_sq();
        if after == 0.0 {
            return f64::INFINITY;
        }
        db_from_ratio(before / after)
    }

    /// True self-loop gain (for installing into the medium).
    pub fn h_self_true(&self) -> C64 {
        self.h_self_true
    }

    /// True jam→receive coupling (for installing into the medium).
    pub fn h_jam_rec_true(&self) -> C64 {
        self.h_jam_rec_true
    }

    /// Estimated jam→receive coupling (what the shield believes).
    pub fn h_jam_rec_est(&self) -> C64 {
        self.h_jam_rec_est
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::stats::RunningStats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn prototype_ratio_is_minus_27db() {
        let c = CouplingConfig::usrp2_prototype();
        assert!((c.coupling_ratio_db() - (-27.0)).abs() < 1e-9);
    }

    #[test]
    fn perfect_estimates_cancel_perfectly() {
        let mut rng = StdRng::seed_from_u64(1);
        let (hs, hjr) = CouplingConfig::usrp2_prototype().draw_gains(&mut rng);
        let fd = FullDuplex::new(hs, hjr);
        // Down to floating-point rounding, nothing leaks through.
        assert!(fd.residual_coupling().abs() < 1e-12);
        assert!(fd.cancellation_db() > 200.0);
    }

    #[test]
    fn antidote_cancels_at_receive_chain() {
        let mut rng = StdRng::seed_from_u64(2);
        let (hs, hjr) = CouplingConfig::usrp2_prototype().draw_gains(&mut rng);
        let mut fd = FullDuplex::new(hs, hjr);
        fd.estimate(35.0, &mut rng);
        // Simulate the medium: y = Hjr*j + Hs*x.
        let j: Vec<C64> = (0..256).map(|k| C64::cis(k as f64 * 0.37)).collect();
        let x = fd.antidote(&j);
        let before: f64 = j.iter().map(|&s| (s * hjr).norm_sq()).sum();
        let after: f64 = j
            .iter()
            .zip(&x)
            .map(|(&ji, &xi)| (ji * hjr + xi * hs).norm_sq())
            .sum();
        let g = db_from_ratio(before / after);
        assert!(g > 20.0, "cancellation {g} dB");
        assert!((g - fd.cancellation_db()).abs() < 1e-6);
    }

    #[test]
    fn mean_cancellation_is_32db_at_32db_estimation_snr() {
        // Reproduces the headline of Fig. 7: mean ≈ 32 dB, with a bounded
        // worst case ~6 dB below the mean.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = CouplingConfig::usrp2_prototype();
        let mut stats = RunningStats::new();
        for _ in 0..2000 {
            let (hs, hjr) = cfg.draw_gains(&mut rng);
            let mut fd = FullDuplex::new(hs, hjr);
            fd.estimate(32.0, &mut rng);
            stats.push(fd.cancellation_db());
        }
        let mean = stats.mean();
        assert!((mean - 32.0).abs() < 1.0, "mean cancellation {mean} dB");
        // Hard floor: 2·a of error vectors at opposite phase, ≈ 26 dB
        // (minus the 5% magnitude jitter).
        assert!(stats.min() > 24.0, "worst case {} dB", stats.min());
        // Occasional deep nulls on the other side.
        assert!(stats.max() > 40.0, "best case {} dB", stats.max());
    }

    #[test]
    fn cancellation_improves_with_estimation_snr() {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = CouplingConfig::usrp2_prototype();
        let mut means = Vec::new();
        for snr in [20.0, 30.0, 40.0] {
            let mut stats = RunningStats::new();
            for _ in 0..800 {
                let (hs, hjr) = cfg.draw_gains(&mut rng);
                let mut fd = FullDuplex::new(hs, hjr);
                fd.estimate(snr, &mut rng);
                stats.push(fd.cancellation_db());
            }
            means.push(stats.mean());
        }
        assert!(means[0] < means[1] && means[1] < means[2], "{means:?}");
    }

    #[test]
    fn no_cancellation_elsewhere_in_space() {
        // Eq. 4: at a third location the combined signal is
        // (Hjam→l − Hrec→l · Ĥjr/Ĥs) · j. With comparable attenuations
        // from the two co-located antennas and |Hjr/Hs| ≈ −27 dB, the
        // jamming power at l is essentially unchanged by the antidote.
        let mut rng = StdRng::seed_from_u64(5);
        let (hs, hjr) = CouplingConfig::usrp2_prototype().draw_gains(&mut rng);
        let mut fd = FullDuplex::new(hs, hjr);
        fd.estimate(35.0, &mut rng);

        for _ in 0..50 {
            // Comparable attenuation from both antennas to location l
            // (|ratio| ≈ 1, random phases).
            let h_jam_l = C64::from_polar(1e-3, rng.gen::<f64>() * std::f64::consts::TAU);
            let h_rec_l = C64::from_polar(
                1e-3 * rng.gen_range(0.8..1.2),
                rng.gen::<f64>() * std::f64::consts::TAU,
            );
            let effective = h_jam_l + h_rec_l * fd.antidote_coeff();
            let reduction_db = db_from_ratio(h_jam_l.norm_sq() / effective.norm_sq());
            // At most ~1 dB of incidental change; never meaningful
            // cancellation.
            assert!(
                reduction_db < 1.0,
                "jamming reduced by {reduction_db} dB at a remote location"
            );
        }
    }

    #[test]
    fn antidote_is_much_weaker_than_jam() {
        let mut rng = StdRng::seed_from_u64(6);
        let (hs, hjr) = CouplingConfig::usrp2_prototype().draw_gains(&mut rng);
        let fd = FullDuplex::new(hs, hjr);
        // |coeff|² ≈ −27 dB: the antidote barely radiates.
        let coeff_db = db_from_ratio(fd.antidote_coeff().norm_sq());
        assert!((coeff_db - (-27.0)).abs() < 0.5, "coeff {coeff_db} dB");
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_coupling_rejected() {
        let _ = FullDuplex::new(C64::ZERO, C64::ONE);
    }
}
