//! Jamming-signal generation (§6(a) of the paper).
//!
//! The jamming signal is random — "sent without modulation or coding" so
//! the information rate at any eavesdropper is pushed outside the capacity
//! region — and its power spectrum is **shaped to match the IMD's FSK
//! profile** (Fig. 5). A flat ("oblivious") jammer wastes power on
//! frequencies FSK decoding never looks at, and an adversary can strip
//! most of it with two band-pass filters around the FSK tones; matching
//! the IMD's spectral shape closes that hole.

use hb_dsp::complex::C64;
use hb_dsp::noise::ShapedNoise;
use hb_dsp::spectrum::welch_psd;
use hb_dsp::units::ratio_from_db;
use hb_dsp::window::Window;
use hb_phy::bits::Prbs;
use hb_phy::fsk::{FskModem, FskParams};
use rand::Rng;

/// Derives the per-bin power profile of an FSK air interface by modulating
/// a long pseudo-random bit sequence and measuring its Welch PSD — the
/// in-simulation equivalent of capturing the Virtuoso's transmission and
/// plotting Fig. 4.
pub fn fsk_power_profile(params: FskParams, fft_size: usize) -> Vec<f64> {
    let modem = FskModem::new(params);
    let mut prbs = Prbs::new(0x1D5);
    let bits = prbs.bits(4000);
    let sig = modem.modulate(&bits);
    welch_psd(&sig, fft_size, Window::Hann, params.fs_hz).profile()
}

/// The *jamming* profile derived from the FSK profile: the measured PSD
/// smoothed over ~30 kHz and floored at a small fraction of the peak.
///
/// This matches the paper's Fig. 5 curve — a broad double hump over the
/// tone regions, not two needles. The width matters for the shield itself:
/// its own jamming *residual* is this same signal, and a needle-sharp
/// profile would park all residual power inside its matched filter,
/// costing ~8 dB of SINR versus the smooth profile (see the
/// `smooth_profile_protects_the_shields_own_decoder` test).
///
/// The profile is a pure function of `(params, fft_size)` but costs a
/// 4000-bit modulation plus a Welch PSD to derive, and every
/// `Shield::install` needs it — so results are memoized process-wide.
/// Experiments that rebuild a scenario per (location, repetition) hit the
/// cache after the first build.
pub fn jam_profile_for_fsk(params: FskParams, fft_size: usize) -> Vec<f64> {
    let key: CacheKey = (
        params.fs_hz.to_bits(),
        params.bitrate.to_bits(),
        params.deviation_hz.to_bits(),
        fft_size,
    );
    // The lock is held across the lookup *and* the insert: dropping it in
    // between let two threads computing the same key both push, so the
    // process-wide cache accumulated duplicate multi-KB profiles. Serial
    // first derivation of a key is the price, and it is paid once.
    let mut cache = profile_cache().lock().unwrap();
    if let Some((_, profile)) = cache.iter().find(|(k, _)| *k == key) {
        return profile.clone();
    }
    let profile = jam_profile_for_fsk_uncached(params, fft_size);
    cache.push((key, profile.clone()));
    profile
}

type CacheKey = (u64, u64, u64, usize);
type ProfileCache = std::sync::Mutex<Vec<(CacheKey, Vec<f64>)>>;

/// The process-wide memoized profile store behind [`jam_profile_for_fsk`].
fn profile_cache() -> &'static ProfileCache {
    static CACHE: std::sync::OnceLock<ProfileCache> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| std::sync::Mutex::new(Vec::new()))
}

/// Number of cache entries [`jam_profile_for_fsk`] holds for one
/// `(params, fft_size)` key (test hook: the cache-race regression test
/// asserts concurrent callers of a fresh key insert exactly one entry;
/// key-scoped so unrelated tests inserting other keys in parallel cannot
/// perturb the count).
#[doc(hidden)]
pub fn jam_profile_cache_entries(params: FskParams, fft_size: usize) -> usize {
    let key: CacheKey = (
        params.fs_hz.to_bits(),
        params.bitrate.to_bits(),
        params.deviation_hz.to_bits(),
        fft_size,
    );
    profile_cache()
        .lock()
        .unwrap()
        .iter()
        .filter(|(k, _)| *k == key)
        .count()
}

fn jam_profile_for_fsk_uncached(params: FskParams, fft_size: usize) -> Vec<f64> {
    let raw = fsk_power_profile(params, fft_size);
    let n = raw.len();
    // Circular boxcar smoothing over ~30 kHz.
    let half = ((30e3 / params.fs_hz * n as f64) as usize / 2).max(1);
    let mut smooth = vec![0.0; n];
    for (i, v) in smooth.iter_mut().enumerate() {
        let mut acc = 0.0;
        for d in 0..=(2 * half) {
            acc += raw[(i + n + d - half) % n];
        }
        *v = acc / (2 * half + 1) as f64;
    }
    // Skirt floor at 2% of peak, as in the measured Fig. 5 curve.
    let peak = smooth.iter().cloned().fold(0.0f64, f64::max);
    for v in smooth.iter_mut() {
        *v = v.max(0.02 * peak);
    }
    smooth
}

/// A continuous generator of jamming waveform at a configured power.
#[derive(Debug, Clone)]
pub struct JamSignal {
    gen: ShapedNoise,
    /// Pre-generated samples not yet consumed.
    buffer: Vec<C64>,
    buffer_pos: usize,
    amplitude: f64,
}

impl JamSignal {
    /// A jammer shaped to the IMD's (smoothed) FSK profile — the paper's
    /// design, Fig. 5.
    pub fn shaped_for_fsk(params: FskParams, fft_size: usize) -> Self {
        JamSignal {
            gen: ShapedNoise::new(&jam_profile_for_fsk(params, fft_size)),
            buffer: Vec::new(),
            buffer_pos: 0,
            amplitude: 1.0,
        }
    }

    /// A flat-profile jammer over the whole channel (the "constant power
    /// profile" baseline of Fig. 5, used by the ablation experiments).
    pub fn flat(fft_size: usize) -> Self {
        JamSignal {
            gen: ShapedNoise::flat(fft_size),
            buffer: Vec::new(),
            buffer_pos: 0,
            amplitude: 1.0,
        }
    }

    /// Sets the transmit power in dBm (mean sample power; 1.0 ≡ 0 dBm).
    pub fn set_power_dbm(&mut self, dbm: f64) {
        self.amplitude = ratio_from_db(dbm).sqrt();
    }

    /// Current transmit power in dBm.
    pub fn power_dbm(&self) -> f64 {
        hb_dsp::units::db_from_ratio(self.amplitude * self.amplitude)
    }

    /// Produces the next `n` samples of jamming waveform.
    pub fn next_samples<R: Rng + ?Sized>(&mut self, rng: &mut R, n: usize) -> Vec<C64> {
        let mut out = vec![C64::ZERO; n];
        self.next_samples_into(rng, &mut out);
        out
    }

    /// Fills `out` with the next samples of jamming waveform — identical
    /// RNG consumption and output to [`JamSignal::next_samples`] of the
    /// same length, without the per-block allocation (the shield calls
    /// this once per simulation block on a pooled scratch buffer).
    pub fn next_samples_into<R: Rng + ?Sized>(&mut self, rng: &mut R, out: &mut [C64]) {
        let mut filled = 0usize;
        while filled < out.len() {
            if self.buffer_pos >= self.buffer.len() {
                self.gen.block_into(rng, &mut self.buffer);
                self.buffer_pos = 0;
            }
            let take = (out.len() - filled).min(self.buffer.len() - self.buffer_pos);
            for (dst, &src) in out[filled..filled + take]
                .iter_mut()
                .zip(self.buffer[self.buffer_pos..self.buffer_pos + take].iter())
            {
                *dst = src.scale(self.amplitude);
            }
            self.buffer_pos += take;
            filled += take;
        }
    }

    /// The normalized per-bin power profile this jammer emits (for the
    /// Fig. 5 comparison plot).
    pub fn profile(&self) -> Vec<f64> {
        // ShapedNoise normalizes internally; re-derive the shape from a
        // generated block ensemble would be stochastic, so regenerate from
        // the generator's own scaling: expose via spectral estimate.
        // Simpler: measure empirically over many blocks with a fixed rng.
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(0xD1A6);
        let mut acc = vec![0.0; self.gen.block_len()];
        for _ in 0..200 {
            let block = self.gen.block(&mut rng);
            let spec = hb_dsp::fft::fft(&block);
            for (k, v) in spec.iter().enumerate() {
                acc[k] += v.norm_sq();
            }
        }
        let total: f64 = acc.iter().sum();
        acc.into_iter().map(|p| p / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::complex::mean_power;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> FskParams {
        FskParams::mics_default()
    }

    #[test]
    fn concurrent_profile_derivation_inserts_one_entry() {
        // Regression test for the check-then-push race: before the lock
        // was held across lookup+insert, N threads racing on a fresh key
        // could each push their own copy of the multi-KB profile. Use a
        // parameter set no other test touches so the key is cold here.
        let mut p = params();
        p.deviation_hz = 41_787.0;
        assert_eq!(jam_profile_cache_entries(p, 128), 0, "key must be cold");
        let profiles: Vec<Vec<f64>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|_| scope.spawn(move || jam_profile_for_fsk(p, 128)))
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        assert_eq!(
            jam_profile_cache_entries(p, 128),
            1,
            "8 concurrent derivations of one key must insert exactly once"
        );
        for w in profiles.windows(2) {
            assert_eq!(w[0], w[1], "all callers must see the same profile");
        }
    }

    #[test]
    fn fsk_profile_peaks_at_tones() {
        let n = 256;
        let prof = fsk_power_profile(params(), n);
        let fs = params().fs_hz;
        // Energy fraction within ±15 kHz of each tone should dominate
        // (Fig. 4: "most of the energy is concentrated around ±50 KHz").
        let near_tones: f64 = prof
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = hb_dsp::fft::bin_freq_hz(*k, n, fs);
                (f.abs() - 50e3).abs() < 15e3
            })
            .map(|(_, &p)| p)
            .sum();
        assert!(near_tones > 0.7, "tone-region fraction {near_tones}");
    }

    #[test]
    fn shaped_jammer_concentrates_power_like_imd() {
        let shaped = JamSignal::shaped_for_fsk(params(), 256);
        let prof = shaped.profile();
        let fs = params().fs_hz;
        // The smoothed hump covers roughly ±(20..80) kHz.
        let near_tones: f64 = prof
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = hb_dsp::fft::bin_freq_hz(*k, 256, fs);
                (f.abs() - 50e3).abs() < 35e3
            })
            .map(|(_, &p)| p)
            .sum();
        assert!(near_tones > 0.7, "hump-region fraction {near_tones}");
        // But it is a hump, not a needle: the exact tone bins hold well
        // under half the power.
        let at_tones: f64 = prof
            .iter()
            .enumerate()
            .filter(|(k, _)| {
                let f = hb_dsp::fft::bin_freq_hz(*k, 256, fs);
                (f.abs() - 50e3).abs() < 7e3
            })
            .map(|(_, &p)| p)
            .sum();
        assert!(at_tones < 0.5, "needle fraction {at_tones}");
    }

    #[test]
    fn smooth_profile_protects_the_shields_own_decoder() {
        // The design reason for smoothing: the shield decodes through its
        // own jamming *residual*. A needle profile at the FSK tones parks
        // all residual power inside the matched filter; the smooth profile
        // spreads it, buying several dB of effective SINR at equal power.
        use hb_phy::bits::{bit_error_rate, Prbs};
        use hb_phy::fsk::FskModem;
        let m = FskModem::new(params());
        let mut prbs = Prbs::new(0x2F);
        let bits = prbs.bits(8000);
        let sig = m.modulate(&bits);
        let mut rng = StdRng::seed_from_u64(5);

        let ber_with = |gen: &JamSignal, rng: &mut StdRng| {
            let mut g = gen.clone();
            g.set_power_dbm(-4.0); // SINR +4 dB
            let j = g.next_samples(rng, sig.len());
            let rx: Vec<hb_dsp::C64> = sig.iter().zip(&j).map(|(&s, &n)| s + n).collect();
            bit_error_rate(&bits, &m.demodulate(&rx))
        };
        let needle = JamSignal {
            gen: hb_dsp::noise::ShapedNoise::new(&fsk_power_profile(params(), 256)),
            buffer: Vec::new(),
            buffer_pos: 0,
            amplitude: 1.0,
        };
        let smooth = JamSignal::shaped_for_fsk(params(), 256);
        let ber_needle = ber_with(&needle, &mut rng);
        let ber_smooth = ber_with(&smooth, &mut rng);
        assert!(
            ber_needle > 3.0 * ber_smooth + 0.001,
            "needle {ber_needle} vs smooth {ber_smooth}"
        );
    }

    #[test]
    fn flat_jammer_spreads_power() {
        let flat = JamSignal::flat(256);
        let prof = flat.profile();
        let max = prof.iter().cloned().fold(0.0, f64::max);
        // No bin should hold more than ~3x the average share.
        assert!(max < 3.0 / 256.0, "max bin share {max}");
    }

    #[test]
    fn power_setting_is_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut jam = JamSignal::shaped_for_fsk(params(), 256);
        jam.set_power_dbm(-33.5);
        let s = jam.next_samples(&mut rng, 100_000);
        let dbm = hb_dsp::units::db_from_ratio(mean_power(&s));
        assert!((dbm - (-33.5)).abs() < 0.5, "measured {dbm} dBm");
        assert!((jam.power_dbm() - (-33.5)).abs() < 1e-9);
    }

    #[test]
    fn arbitrary_chunk_sizes_are_continuous() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut jam = JamSignal::flat(64);
        jam.set_power_dbm(0.0);
        // Pull samples in odd-sized chunks; total power stays right.
        let mut all = Vec::new();
        for n in [1usize, 7, 16, 61, 128, 333] {
            all.extend(jam.next_samples(&mut rng, n));
        }
        assert_eq!(all.len(), 546);
        let p = mean_power(&all);
        assert!((p - 1.0).abs() < 0.25, "power {p}");
    }

    #[test]
    fn jamming_is_unpredictable_across_blocks() {
        // Two successive draws must be uncorrelated — the "one-time pad"
        // property (§6) depends on the jamming signal being random.
        let mut rng = StdRng::seed_from_u64(4);
        let mut jam = JamSignal::shaped_for_fsk(params(), 256);
        let a = jam.next_samples(&mut rng, 256);
        let b = jam.next_samples(&mut rng, 256);
        let corr = hb_dsp::complex::inner_product(&a, &b).abs()
            / (hb_dsp::complex::energy(&a).sqrt() * hb_dsp::complex::energy(&b).sqrt());
        assert!(corr < 0.35, "cross-block correlation {corr}");
    }
}
