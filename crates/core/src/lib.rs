//! # hb-shield — the shield: non-invasive security for IMDs
//!
//! The primary contribution of *"They Can Hear Your Heartbeats"*
//! (SIGCOMM 2011), reproduced in simulation:
//!
//! * [`fullduplex`] — the jammer-cum-receiver (Eqs. 1–5): antidote-based
//!   cancellation that needs no antenna separation, so the shield can be a
//!   small wearable device.
//! * [`jamsignal`] — random jamming shaped to the IMD's FSK power profile
//!   (Fig. 5), making band-pass filtering attacks useless.
//! * [`sinr`] — the SINR analysis of §6: location-independent eavesdropper
//!   error and the shield/adversary SINR gap `G` (Eqs. 6–9).
//! * [`shield`] — the device itself: encrypted programmer relay, passive
//!   jam windows over IMD replies, wideband `Sid` monitoring with
//!   jam-until-idle, own-transmission guarding, and the `Pthresh` alarm.
//! * [`wideband`] — the §5 multipath extension: per-OFDM-subcarrier
//!   antidote cancellation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fullduplex;
pub mod jamsignal;
pub mod shield;
pub mod sinr;
pub mod wideband;

pub use fullduplex::{CouplingConfig, FullDuplex};
pub use jamsignal::JamSignal;
pub use shield::{
    JamReason, Shield, ShieldConfig, ShieldEvent, ShieldEventKind, ShieldStats, TurnaroundProfile,
};
