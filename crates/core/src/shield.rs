//! The shield device: the paper's contribution, assembled.
//!
//! A wearable two-antenna radio placed next to the IMD that:
//!
//! * **relays** — authorized programmers talk to the shield over an
//!   encrypted channel (`hb-crypto`); the shield forwards commands to the
//!   IMD over the air and returns the responses (§4);
//! * **jams the IMD's transmissions** so eavesdroppers cannot decode them,
//!   while decoding them itself through antidote cancellation (§5, §6) —
//!   the jam window is scheduled from the IMD's reply timing (T1/T2/P),
//!   exploiting the fact that the IMD answers blindly on a fixed schedule;
//! * **jams unauthorized commands** — a wideband monitor watches every
//!   MICS channel for the protected device's identifying sequence `Sid`
//!   (within `bthresh` bit errors) and jams until the signal stops (§7);
//! * **guards its own transmissions** — any signal concurrent with the
//!   shield's own relay transmission triggers an immediate switch to
//!   jamming, so an adversary cannot overwrite the shield's messages (§7);
//! * **raises an alarm** when an adversarial transmission is strong enough
//!   (≥ `Pthresh`) that jamming may fail (§7(d)), and schedules a
//!   protective jam window over the IMD's potential reply.

use crate::fullduplex::{CouplingConfig, FullDuplex};
use crate::jamsignal::JamSignal;
use hb_channel::geometry::Placement;
use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_crypto::session::{SecureSession, SessionError};
use hb_dsp::complex::{mean_power, C64};
use hb_dsp::units::{db_from_ratio, ratio_from_db};
use hb_imd::commands::{Command, Response};
use hb_mics::timing::ReplyTiming;
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::packet::{identifying_sequence, Frame, FrameType, Serial};
use hb_phy::rssi::EnergyDetector;
use hb_phy::stream::{DetectorEvent, SidMonitor, StreamingDetector};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::{BTreeMap, VecDeque};

/// Turn-around time model: how long after a jammed signal ends the shield
/// keeps transmitting (Table 2 measures 270 ± 23 µs for the software
/// prototype; §11 estimates tens of µs for a hardware implementation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TurnaroundProfile {
    /// GNU Radio / USRP software pipeline: 270 ± 23 µs.
    Software,
    /// Dedicated hardware: 10 ± 2 µs.
    Hardware,
    /// Custom Gaussian profile.
    Custom {
        /// Mean, seconds.
        mean_s: f64,
        /// Standard deviation, seconds.
        std_s: f64,
    },
}

impl TurnaroundProfile {
    /// Draws one turn-around delay in seconds (clamped non-negative).
    pub fn draw<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let (mean, std) = match *self {
            TurnaroundProfile::Software => (270e-6, 23e-6),
            TurnaroundProfile::Hardware => (10e-6, 2e-6),
            TurnaroundProfile::Custom { mean_s, std_s } => (mean_s, std_s),
        };
        (mean + hb_dsp::noise::standard_normal(rng) * std).max(0.0)
    }
}

/// Why the shield is jamming.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JamReason {
    /// Covering the IMD's reply window (confidentiality, §6).
    Passive,
    /// Countering a detected unauthorized transmission (§7).
    Active,
    /// A signal appeared concurrent with the shield's own transmission.
    Concurrent,
}

/// Entries in the shield's event log.
#[derive(Debug, Clone, PartialEq)]
pub enum ShieldEventKind {
    /// The protected device's `Sid` was observed on a channel.
    SidDetected {
        /// MICS channel index.
        channel: usize,
        /// RSSI over the matched window, dBm.
        rssi_dbm: f64,
    },
    /// Jamming started on a channel.
    JamStart {
        /// MICS channel index.
        channel: usize,
        /// Trigger.
        reason: JamReason,
    },
    /// Jamming ended on a channel.
    JamEnd {
        /// MICS channel index.
        channel: usize,
    },
    /// High-powered adversarial transmission: patient-facing alarm (§7(d)).
    Alarm {
        /// RSSI that tripped the alarm, dBm.
        rssi_dbm: f64,
        /// Channel it was observed on.
        channel: usize,
    },
    /// Signal detected concurrent with the shield's own transmission.
    ConcurrentSignal {
        /// Measured excess power, dBm.
        rssi_dbm: f64,
    },
    /// An IMD frame was decoded (while jamming, via the antidote).
    ImdFrameDecoded {
        /// Whether the CRC verified.
        crc_ok: bool,
    },
    /// A relayed command was transmitted to the IMD.
    CommandSent,
    /// Channels were (re-)estimated; the resulting cancellation depth.
    ChannelEstimated {
        /// Cancellation G, dB.
        cancellation_db: f64,
    },
}

/// A timestamped shield event.
#[derive(Debug, Clone, PartialEq)]
pub struct ShieldEvent {
    /// Sample tick.
    pub tick: Tick,
    /// What happened.
    pub kind: ShieldEventKind,
}

/// A timed shield outage: the shield's transmit chain is silenced inside
/// the windows (jamming, relays, antidotes), while its receive chain —
/// detection, decoding, jam bookkeeping — keeps running. Models a fault
/// (battery brown-out, firmware watchdog, accidental unplug) in the one
/// device the paper's security argument leans on; the resilience
/// experiments quantify the exposure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OutageSchedule {
    /// First window start, seconds.
    pub start_s: f64,
    /// Window length, seconds.
    pub len_s: f64,
    /// Repetition period, seconds (`0` means one-shot).
    pub period_s: f64,
}

impl OutageSchedule {
    /// True when `t_s` falls inside an outage window.
    pub fn contains(&self, t_s: f64) -> bool {
        if self.len_s <= 0.0 || t_s < self.start_s {
            return false;
        }
        let dt = t_s - self.start_s;
        let phase = if self.period_s > 0.0 {
            dt % self.period_s
        } else {
            dt
        };
        phase < self.len_s
    }
}

/// Aggregate counters for experiments.
#[derive(Debug, Clone, Default)]
pub struct ShieldStats {
    /// IMD frames decoded with a valid CRC (while jamming).
    pub imd_frames_ok: u64,
    /// Detected frames with CRC failures on the session channel.
    pub imd_frames_crc_fail: u64,
    /// `Sid` detections (potential unauthorized commands).
    pub sid_detections: u64,
    /// Active jamming engagements.
    pub active_jam_events: u64,
    /// Alarms raised.
    pub alarms: u64,
    /// Commands relayed to the IMD.
    pub commands_sent: u64,
    /// Cancellation depth per estimation pass, dB (Fig. 7 data).
    pub cancellation_db: Vec<f64>,
    /// Measured turn-around times, seconds (Table 2 data): jam-off delay
    /// after the jammed channel went idle.
    pub turnaround_s: Vec<f64>,
    /// Blocks spent silenced by an [`OutageSchedule`] window.
    pub outage_blocks: u64,
    /// Silenced blocks in which the shield *wanted* to jam (a passive
    /// reply window or an active engagement was due) but could not — the
    /// confidentiality/integrity exposure window of an outage.
    pub outage_exposed_blocks: u64,
    /// Fail-safe re-locks: outage windows that ended with jamming still
    /// due, where emission resumed on the first unsilenced block.
    pub outage_relocks: u64,
}

/// Shield configuration. Defaults reproduce the paper's settings.
#[derive(Debug, Clone)]
pub struct ShieldConfig {
    /// Serial of the protected IMD (defines `Sid`).
    pub protected_serial: Serial,
    /// FSK air interface shared with the IMD.
    pub fsk: FskParams,
    /// The session channel the IMD is locked to.
    pub session_channel: usize,
    /// Number of MICS channels the wideband monitor watches (§7(c)).
    pub monitored_channels: usize,
    /// Passive jamming power margin over the received IMD power, dB
    /// (+20 dB per §10.1(b)).
    pub jam_margin_db: f64,
    /// Active jamming transmit power, dBm (FCC limit per §7(d)).
    pub active_jam_power_dbm: f64,
    /// Power of the shield's own relayed command transmissions, dBm.
    pub command_tx_power_dbm: f64,
    /// Sid match tolerance in bits (`bthresh`, calibrated to 4 in §10.1(c)).
    pub bthresh: usize,
    /// Alarm threshold: adversarial RSSI at the shield that may defeat
    /// jamming, dBm. Calibrated per the Table 1 procedure (minimum
    /// successful adversarial RSSI minus a guard band) — for this
    /// testbed's geometry that lands near −36 dBm; the paper's absolute
    /// −14.5 dBm reflects its different near-field coupling (DESIGN.md).
    pub pthresh_dbm: f64,
    /// Channel-estimation accuracy, dB: the mean antidote cancellation
    /// equals this value (see `FullDuplex::estimate`).
    pub est_snr_db: f64,
    /// Probe/re-estimation interval, seconds (200 ms in the prototype).
    pub probe_interval_s: f64,
    /// Turn-around time model.
    pub turnaround: TurnaroundProfile,
    /// Antenna couplings.
    pub coupling: CouplingConfig,
    /// The protected IMD's reply timing (T1/T2/P).
    pub reply: ReplyTiming,
    /// Initial estimate of the IMD's received power at the shield, dBm
    /// (updated adaptively from decoded frames).
    pub expected_imd_rx_dbm: f64,
    /// FFT size for jam shaping.
    pub fft_size: usize,
    /// Margin above the expected jam residual for the busy/idle decision
    /// while actively jamming, dB.
    pub idle_margin_db: f64,
    /// Squelch threshold for the wideband monitor, dBm: channels below
    /// this level are not demodulated.
    pub squelch_dbm: f64,
    /// Pre-shared key for the programmer channel.
    pub session_key: [u8; 32],
    /// Timed transmit-chain outages (fault injection). `None` — the
    /// default — leaves the shield's behavior bit-identical to the
    /// outage-free engine.
    pub outage: Option<OutageSchedule>,
}

impl ShieldConfig {
    /// Paper-faithful defaults for a given protected device and channel.
    pub fn paper_defaults(protected_serial: Serial, session_channel: usize) -> Self {
        ShieldConfig {
            protected_serial,
            fsk: FskParams::mics_default(),
            session_channel,
            monitored_channels: hb_mics::N_CHANNELS,
            jam_margin_db: 20.0,
            active_jam_power_dbm: hb_mics::fcc_eirp_limit_dbm(),
            command_tx_power_dbm: hb_mics::fcc_eirp_limit_dbm(),
            bthresh: 4,
            pthresh_dbm: -39.0,
            est_snr_db: 32.0,
            probe_interval_s: 0.2,
            turnaround: TurnaroundProfile::Software,
            coupling: CouplingConfig::usrp2_prototype(),
            reply: ReplyTiming::medtronic_measured(),
            expected_imd_rx_dbm: -85.0,
            fft_size: 256,
            idle_margin_db: 8.0,
            squelch_dbm: -95.0,
            session_key: [0x42; 32],
            outage: None,
        }
    }
}

/// An in-flight transmission of the shield's own (relayed command).
struct OwnTx {
    samples: Vec<C64>,
    start_tick: Tick,
    channel: usize,
}

/// Per-channel active jamming state.
struct ActiveJam {
    /// When set, jamming stops at this tick (idle + turn-around).
    until: Option<Tick>,
    /// Tick at which the channel was last seen busy.
    last_busy: Tick,
    /// Whether the trigger exceeded Pthresh (schedules a protective
    /// passive window on exit, §7(d)).
    high_power: bool,
}

/// The shield. Implements [`Node`]; see the module docs.
pub struct Shield {
    cfg: ShieldConfig,
    jam_ant: AntennaId,
    rx_ant: AntennaId,
    fd: FullDuplex,
    jam: JamSignal,
    modem: FskModem,
    frame_detector: StreamingDetector,
    sid_monitors: Vec<SidMonitor>,
    /// Per-channel squelch trackers for the wideband monitor.
    squelch: Vec<EnergyDetector>,
    session: SecureSession,
    own_tx: Option<OwnTx>,
    /// Passive jam window on the session channel: (start, end).
    passive_window: Option<(Tick, Tick)>,
    /// Active jams by channel. Ordered map: iteration order drives jam
    /// emission and turn-around RNG draws, so it must be deterministic
    /// across runs (a `HashMap`'s randomized order would leak into the
    /// simulation's RNG stream whenever two channels are jammed at once).
    active: BTreeMap<usize, ActiveJam>,
    next_probe_tick: Tick,
    imd_rx_dbm: f64,
    pending_commands: VecDeque<Command>,
    decoded_responses: Vec<Response>,
    sealed_responses: Vec<Vec<u8>>,
    /// Pooled scratch: one block of jamming waveform.
    scratch_jam: Vec<C64>,
    /// Pooled scratch: the matching antidote block.
    scratch_antidote: Vec<C64>,
    /// Pooled scratch: a silence block for detector clock alignment.
    scratch_silence: Vec<C64>,
    /// Pooled scratch: this block's (channel, jam power) emissions.
    scratch_jam_channels: Vec<(usize, f64)>,
    /// Whether the previous block was silenced by an outage window (for
    /// the fail-safe re-lock accounting).
    was_silenced: bool,
    rng: StdRng,
    /// Aggregate counters.
    pub stats: ShieldStats,
    /// Timestamped event log.
    pub events: Vec<ShieldEvent>,
}

impl Shield {
    /// Installs a shield into the medium at `position`: registers its two
    /// antennas (2 cm apart — no wavelength-scale separation needed, the
    /// point of §5), wires up the self-loop and cross couplings, and runs
    /// an initial channel estimation.
    ///
    /// Call *before* `medium.build_links` so the wired couplings are
    /// preserved.
    pub fn install(
        cfg: ShieldConfig,
        medium: &mut Medium,
        position: (f64, f64),
        seed: u64,
    ) -> Shield {
        let mut rng = StdRng::seed_from_u64(seed);
        let jam_ant = medium.add_antenna(Placement::los("shield-jam", position.0, position.1));
        let rx_ant = medium.add_antenna(Placement::los("shield-rx", position.0 + 0.02, position.1));
        let (h_self, h_jam_rec) = cfg.coupling.draw_gains(&mut rng);
        medium.set_gain(rx_ant, rx_ant, h_self);
        medium.set_gain(jam_ant, rx_ant, h_jam_rec);

        let mut fd = FullDuplex::new(h_self, h_jam_rec);
        fd.estimate(cfg.est_snr_db, &mut rng);

        let sid = identifying_sequence(cfg.protected_serial);
        let sid_monitors = (0..cfg.monitored_channels)
            .map(|_| SidMonitor::new(cfg.fsk, sid.clone(), cfg.bthresh))
            .collect();
        let squelch = (0..cfg.monitored_channels)
            .map(|_| EnergyDetector::new(cfg.squelch_dbm, 16))
            .collect();

        let mut stats = ShieldStats::default();
        stats.cancellation_db.push(fd.cancellation_db());

        let imd_rx_dbm = cfg.expected_imd_rx_dbm;
        let probe_interval = cfg.probe_interval_s;
        Shield {
            jam: JamSignal::shaped_for_fsk(cfg.fsk, cfg.fft_size),
            modem: FskModem::new(cfg.fsk),
            frame_detector: StreamingDetector::new(cfg.fsk, 4),
            sid_monitors,
            squelch,
            session: SecureSession::shield_side(cfg.session_key),
            own_tx: None,
            passive_window: None,
            active: BTreeMap::new(),
            next_probe_tick: (probe_interval * cfg.fsk.fs_hz) as Tick,
            imd_rx_dbm,
            pending_commands: VecDeque::new(),
            decoded_responses: Vec::new(),
            sealed_responses: Vec::new(),
            scratch_jam: Vec::new(),
            scratch_antidote: Vec::new(),
            scratch_silence: Vec::new(),
            scratch_jam_channels: Vec::new(),
            was_silenced: false,
            rng,
            stats,
            events: Vec::new(),
            fd,
            cfg,
            jam_ant,
            rx_ant,
        }
    }

    /// The shield's configuration.
    pub fn config(&self) -> &ShieldConfig {
        &self.cfg
    }

    /// The jamming antenna id.
    pub fn jam_antenna(&self) -> AntennaId {
        self.jam_ant
    }

    /// The receive antenna id.
    pub fn rx_antenna(&self) -> AntennaId {
        self.rx_ant
    }

    /// The full-duplex engine (for inspection in experiments).
    pub fn full_duplex(&self) -> &FullDuplex {
        &self.fd
    }

    /// Replaces the jamming waveform generator (ablation experiments swap
    /// in a flat-profile jammer here).
    pub fn set_jammer(&mut self, jam: JamSignal) {
        self.jam = jam;
    }

    /// Queues a command for relay to the IMD (trusted-path entry used by
    /// experiments; the authenticated path is
    /// [`Shield::relay_sealed_command`]).
    pub fn queue_command(&mut self, cmd: Command) {
        self.pending_commands.push_back(cmd);
    }

    /// Accepts an encrypted command frame from the programmer, verifies
    /// and queues it.
    pub fn relay_sealed_command(&mut self, sealed: &[u8]) -> Result<(), SessionError> {
        let plain = self.session.open_frame(sealed)?;
        let cmd = Command::from_payload(&plain).ok_or(SessionError::Malformed)?;
        self.pending_commands.push_back(cmd);
        Ok(())
    }

    /// Commands queued for relay but not yet on the air (ARQ drivers use
    /// this to avoid stacking a retransmission behind a copy that has not
    /// even started).
    pub fn pending_commands(&self) -> usize {
        self.pending_commands.len()
    }

    /// Drains decoded IMD responses (plaintext, for experiments).
    pub fn take_responses(&mut self) -> Vec<Response> {
        std::mem::take(&mut self.decoded_responses)
    }

    /// Drains sealed (encrypted) response frames for the programmer.
    pub fn take_sealed_responses(&mut self) -> Vec<Vec<u8>> {
        std::mem::take(&mut self.sealed_responses)
    }

    /// True while the shield is jamming `channel` inside the passive
    /// reply window of its own relayed exchange — protocol-intrinsic
    /// energy a session supervisor must not mistake for interference
    /// (unlike an *active* engagement, which is triggered by foreign
    /// energy and is exactly the interference signal worth reacting to).
    pub fn passive_jamming_on(&self, channel: usize, tick: Tick) -> bool {
        channel == self.cfg.session_channel
            && self
                .passive_window
                .map(|(s, e)| tick >= s && tick < e)
                .unwrap_or(false)
    }

    /// True if the shield is emitting jamming on `channel` this block.
    pub fn jamming_on(&self, channel: usize, tick: Tick) -> bool {
        self.passive_jamming_on(channel, tick) || self.active.contains_key(&channel)
    }

    /// Running estimate of the IMD's received power at the shield, dBm.
    pub fn imd_rx_estimate_dbm(&self) -> f64 {
        self.imd_rx_dbm
    }

    /// True while a relayed command transmission is in flight.
    pub fn transmitting(&self) -> bool {
        self.own_tx.is_some()
    }

    /// True when `tick` falls inside a configured outage window.
    pub fn in_outage(&self, tick: Tick) -> bool {
        self.cfg
            .outage
            .map(|o| o.contains(tick as f64 / self.cfg.fsk.fs_hz))
            .unwrap_or(false)
    }

    /// Moves the protected session to a new MICS channel (the §2 rescan
    /// outcome, driven by the scenario's session-recovery layer). Clears
    /// the session-channel detector state and any pending passive window;
    /// the detector clocks keep running, so timing stays consistent.
    pub fn retune(&mut self, channel: usize, tick: Tick) {
        if channel == self.cfg.session_channel {
            return;
        }
        if self.passive_window.take().is_some() {
            self.log(
                tick,
                ShieldEventKind::JamEnd {
                    channel: self.cfg.session_channel,
                },
            );
        }
        self.own_tx = None;
        self.frame_detector.reset();
        self.sid_monitors[self.cfg.session_channel].reset();
        self.cfg.session_channel = channel;
    }

    fn log(&mut self, tick: Tick, kind: ShieldEventKind) {
        self.events.push(ShieldEvent { tick, kind });
    }

    /// Passive jam transmit power: places the jamming signal
    /// `jam_margin_db` above the received IMD power *at the shield's own
    /// receive antenna*, referred back through the estimated jam→receive
    /// coupling.
    fn passive_jam_tx_dbm(&self) -> f64 {
        let coupling_db = db_from_ratio(self.fd.h_jam_rec_est().norm_sq());
        (self.imd_rx_dbm + self.cfg.jam_margin_db - coupling_db).min(self.cfg.active_jam_power_dbm)
        // never exceed the FCC limit
    }

    /// Expected residual self-interference while jamming at `tx_dbm`, as
    /// observed at the receive chain (used for busy/idle decisions).
    fn expected_residual_dbm(&self, tx_dbm: f64) -> f64 {
        let residual_coupling_db = db_from_ratio(self.fd.residual_coupling().norm_sq().max(1e-30));
        tx_dbm + residual_coupling_db
    }

    /// Starts (or refreshes) active jamming on `channel`.
    fn engage_active_jam(
        &mut self,
        channel: usize,
        tick: Tick,
        high_power: bool,
        reason: JamReason,
    ) {
        if let Some(entry) = self.active.get_mut(&channel) {
            entry.until = None;
            entry.last_busy = tick;
            entry.high_power |= high_power;
            return;
        }
        // Fresh engagement: per §5, estimate the channels immediately
        // before jamming (the estimates also set the busy/idle threshold).
        self.fd.estimate(self.cfg.est_snr_db, &mut self.rng);
        let g = self.fd.cancellation_db();
        self.stats.cancellation_db.push(g);
        self.active.insert(
            channel,
            ActiveJam {
                until: None,
                last_busy: tick,
                high_power,
            },
        );
        self.stats.active_jam_events += 1;
        self.log(tick, ShieldEventKind::JamStart { channel, reason });
    }

    /// Handles one decoded event from the session-channel frame detector.
    fn on_session_frame(&mut self, event: DetectorEvent, tick: Tick) {
        let DetectorEvent::FrameDone {
            result, mean_power, ..
        } = event
        else {
            return;
        };
        match result {
            Ok(frame) => {
                if frame.serial == self.cfg.protected_serial
                    && frame.frame_type == FrameType::Response
                {
                    self.stats.imd_frames_ok += 1;
                    self.log(tick, ShieldEventKind::ImdFrameDecoded { crc_ok: true });
                    // Adapt the IMD power estimate (slow EMA).
                    if mean_power > 0.0 {
                        let dbm = db_from_ratio(mean_power);
                        self.imd_rx_dbm = 0.9 * self.imd_rx_dbm + 0.1 * dbm;
                    }
                    if let Some(resp) = Response::from_payload(&frame.payload) {
                        let sealed = self.session.seal_frame(&resp.to_payload());
                        self.sealed_responses.push(sealed);
                        self.decoded_responses.push(resp);
                    }
                }
            }
            Err(_) => {
                self.stats.imd_frames_crc_fail += 1;
                self.log(tick, ShieldEventKind::ImdFrameDecoded { crc_ok: false });
            }
        }
    }
}

impl Node for Shield {
    fn label(&self) -> &str {
        "shield"
    }

    fn produce(&mut self, medium: &mut Medium) {
        let tick = medium.tick();
        let block_len = medium.config().block_len;

        // Timed outage: the transmit chain is down this block. Everything
        // below still runs its bookkeeping (own-tx offsets advance, jam
        // windows open and expire) so recovery resumes mid-schedule; only
        // the emissions — and the RNG draws that exist solely to shape
        // them — are suppressed. Without a configured outage this is
        // always false and the path is bit-identical to the outage-free
        // engine.
        let silenced = self.in_outage(tick);
        if silenced {
            self.stats.outage_blocks += 1;
        }

        // Periodic channel (re-)estimation — §5's 200 ms probe cycle. Skip
        // while transmitting or jamming (the paper also estimates
        // immediately before each jam; our estimates stay fresh enough at
        // the probe cadence).
        let in_passive_window = self
            .passive_window
            .map(|(s, e)| tick >= s && tick < e)
            .unwrap_or(false);
        let busy = self.own_tx.is_some() || in_passive_window || !self.active.is_empty();
        if tick >= self.next_probe_tick && !busy && !silenced {
            self.fd.estimate(self.cfg.est_snr_db, &mut self.rng);
            let g = self.fd.cancellation_db();
            self.stats.cancellation_db.push(g);
            self.log(
                tick,
                ShieldEventKind::ChannelEstimated { cancellation_db: g },
            );
            self.next_probe_tick = tick + (self.cfg.probe_interval_s * self.cfg.fsk.fs_hz) as Tick;
        }

        // Start a pending relayed command if the air is ours (and the
        // transmit chain is up). Active jams on *other* channels don't
        // gate the relay: emission is per-channel, and a session moved
        // away from a persistently jammed channel must still be usable
        // while the engagement there winds down.
        let relay_busy = self.own_tx.is_some()
            || in_passive_window
            || self.active.contains_key(&self.cfg.session_channel);
        if !relay_busy && !silenced {
            if let Some(cmd) = self.pending_commands.pop_front() {
                let frame = Frame::new(
                    self.cfg.protected_serial,
                    FrameType::Command,
                    (self.stats.commands_sent & 0xFF) as u8,
                    cmd.to_payload(),
                );
                let mut wave = self.modem.modulate(&frame.to_bits());
                let amp = ratio_from_db(self.cfg.command_tx_power_dbm).sqrt();
                for s in wave.iter_mut() {
                    *s = s.scale(amp);
                }
                self.own_tx = Some(OwnTx {
                    samples: wave,
                    start_tick: tick,
                    channel: self.cfg.session_channel,
                });
                self.stats.commands_sent += 1;
                self.log(tick, ShieldEventKind::CommandSent);
            }
        }

        // Emit this block's slice of our own transmission (plus antidote).
        // During an outage the offset still advances but nothing airs —
        // the frame goes out with a hole and fails CRC at the IMD, a
        // degraded outcome the ARQ layer sees as a timeout.
        let mut completed_tx: Option<(Tick, usize)> = None;
        if let Some(own) = &self.own_tx {
            let offset = (tick - own.start_tick) as usize;
            let end = (offset + block_len).min(own.samples.len());
            let slice = &own.samples[offset..end];
            if !silenced {
                medium.transmit(self.jam_ant, own.channel, slice);
                self.fd.antidote_into(slice, &mut self.scratch_antidote);
                medium.transmit(self.rx_ant, own.channel, &self.scratch_antidote);
            }
            if end == own.samples.len() {
                let end_tick = own.start_tick + own.samples.len() as Tick;
                completed_tx = Some((end_tick, own.channel));
            }
        }
        if let Some((end_tick, channel)) = completed_tx {
            // Transmission complete: schedule the passive jam window over
            // the IMD's reply: [end+T1, end+T1+(T2−T1)+P] (§6). Per §5,
            // the shield re-estimates its channels immediately before
            // jamming.
            self.own_tx = None;
            self.fd.estimate(self.cfg.est_snr_db, &mut self.rng);
            let g = self.fd.cancellation_db();
            self.stats.cancellation_db.push(g);
            self.log(
                tick,
                ShieldEventKind::ChannelEstimated { cancellation_db: g },
            );
            let t1 = (self.cfg.reply.t1_s * self.cfg.fsk.fs_hz) as Tick;
            let window = (self.cfg.reply.jam_window_s() * self.cfg.fsk.fs_hz) as Tick;
            self.passive_window = Some((end_tick + t1, end_tick + t1 + window));
            self.log(
                end_tick + t1,
                ShieldEventKind::JamStart {
                    channel,
                    reason: JamReason::Passive,
                },
            );
        }

        // Jam emission: passive window (session channel) and active jams.
        let mut jam_channels = std::mem::take(&mut self.scratch_jam_channels);
        jam_channels.clear();
        if let Some((s, e)) = self.passive_window {
            if tick >= s && tick < e {
                jam_channels.push((self.cfg.session_channel, self.passive_jam_tx_dbm()));
            } else if tick >= e {
                self.passive_window = None;
                self.log(
                    tick,
                    ShieldEventKind::JamEnd {
                        channel: self.cfg.session_channel,
                    },
                );
            }
        }
        for (&ch, _) in self.active.iter() {
            match jam_channels.iter_mut().find(|(c, _)| *c == ch) {
                Some(entry) => entry.1 = entry.1.max(self.cfg.active_jam_power_dbm),
                None => jam_channels.push((ch, self.cfg.active_jam_power_dbm)),
            }
        }
        if silenced {
            // Exposure accounting: jamming was due but the transmit chain
            // is down — the IMD's reply (or the adversary's frame) is on
            // the air unjammed for these blocks.
            if !jam_channels.is_empty() {
                self.stats.outage_exposed_blocks += 1;
            }
        } else {
            // Fail-safe re-lock: the outage just ended with jamming still
            // due — emission resumes this very block.
            if self.was_silenced && !jam_channels.is_empty() {
                self.stats.outage_relocks += 1;
            }
            for &(ch, power_dbm) in &jam_channels {
                self.jam.set_power_dbm(power_dbm);
                self.scratch_jam.resize(block_len, C64::ZERO);
                self.jam
                    .next_samples_into(&mut self.rng, &mut self.scratch_jam);
                self.fd
                    .antidote_into(&self.scratch_jam, &mut self.scratch_antidote);
                medium.transmit(self.rx_ant, ch, &self.scratch_antidote);
                medium.transmit(self.jam_ant, ch, &self.scratch_jam);
            }
        }
        self.was_silenced = silenced;
        self.scratch_jam_channels = jam_channels;
    }

    fn consume(&mut self, medium: &mut Medium) {
        let tick = medium.tick();
        let block_len = medium.config().block_len as u64;

        // --- Session channel ---
        let rx = medium.receive_view(self.rx_ant, self.cfg.session_channel);

        if let Some(own_channel) = self.own_tx.as_ref().map(|o| o.channel) {
            // Guarding our own transmission: anything loud concurrent with
            // it means an adversary is trying to overwrite our message.
            let expected = self.expected_residual_dbm(self.cfg.command_tx_power_dbm);
            let measured = db_from_ratio(mean_power(rx).max(1e-30));
            let threshold = expected.max(self.cfg.squelch_dbm) + self.cfg.idle_margin_db;
            if measured > threshold {
                self.own_tx = None; // abort: switch from transmission to jamming
                self.log(
                    tick,
                    ShieldEventKind::ConcurrentSignal { rssi_dbm: measured },
                );
                let high = measured >= self.cfg.pthresh_dbm;
                if high {
                    self.stats.alarms += 1;
                    self.log(
                        tick,
                        ShieldEventKind::Alarm {
                            rssi_dbm: measured,
                            channel: own_channel,
                        },
                    );
                }
                self.engage_active_jam(own_channel, tick, high, JamReason::Concurrent);
            }
            // Keep detector clocks aligned while transmitting.
            self.scratch_silence.resize(block_len as usize, C64::ZERO);
            self.frame_detector.push_block(&self.scratch_silence);
            self.sid_monitors[self.cfg.session_channel].advance_silent(block_len);
        } else {
            // Decode IMD traffic (works while jamming, thanks to the
            // antidote).
            for e in self.frame_detector.push_block(rx) {
                self.on_session_frame(e, tick);
            }
            // Sid monitoring on the session channel — but not inside the
            // passive window, where the only Sid-bearing signal is the
            // IMD's own (already-jammed) reply.
            let in_passive = self
                .passive_window
                .map(|(s, e)| tick >= s && tick < e)
                .unwrap_or(false);
            let rx = medium.receive_view(self.rx_ant, self.cfg.session_channel);
            if in_passive {
                self.sid_monitors[self.cfg.session_channel].advance_silent(block_len);
            } else if let Some(det) = self.sid_monitors[self.cfg.session_channel].push_block(rx) {
                let rssi = db_from_ratio(det.mean_power.max(1e-30));
                self.stats.sid_detections += 1;
                self.log(
                    tick,
                    ShieldEventKind::SidDetected {
                        channel: self.cfg.session_channel,
                        rssi_dbm: rssi,
                    },
                );
                let high = rssi >= self.cfg.pthresh_dbm;
                if high {
                    self.stats.alarms += 1;
                    self.log(
                        tick,
                        ShieldEventKind::Alarm {
                            rssi_dbm: rssi,
                            channel: self.cfg.session_channel,
                        },
                    );
                }
                self.engage_active_jam(self.cfg.session_channel, tick, high, JamReason::Active);
            }
        }

        // --- Wideband monitor over the other channels (§7(c)) ---
        for ch in 0..self.cfg.monitored_channels {
            if ch == self.cfg.session_channel {
                continue;
            }
            let rx_c = medium.receive_view(self.rx_ant, ch);
            let jamming_here = self.active.contains_key(&ch);
            let busy_level = db_from_ratio(mean_power(rx_c).max(1e-30));
            let squelch_open = self.squelch[ch].push_block(rx_c)
                || (jamming_here
                    && busy_level
                        > self.expected_residual_dbm(self.cfg.active_jam_power_dbm)
                            + self.cfg.idle_margin_db);
            if squelch_open && !jamming_here {
                if let Some(det) = self.sid_monitors[ch].push_block(rx_c) {
                    let rssi = db_from_ratio(det.mean_power.max(1e-30));
                    self.stats.sid_detections += 1;
                    self.log(
                        tick,
                        ShieldEventKind::SidDetected {
                            channel: ch,
                            rssi_dbm: rssi,
                        },
                    );
                    let high = rssi >= self.cfg.pthresh_dbm;
                    if high {
                        self.stats.alarms += 1;
                        self.log(
                            tick,
                            ShieldEventKind::Alarm {
                                rssi_dbm: rssi,
                                channel: ch,
                            },
                        );
                    }
                    self.engage_active_jam(ch, tick, high, JamReason::Active);
                }
            } else {
                self.sid_monitors[ch].advance_silent(block_len);
            }
        }

        // --- Active jam maintenance: jam until the signal stops, then a
        //     turn-around delay (§7, Table 2) ---
        let mut finished: Vec<usize> = Vec::new();
        let channels: Vec<usize> = self.active.keys().copied().collect();
        for ch in channels {
            let rx_c = medium.receive_view(self.rx_ant, ch);
            let level = db_from_ratio(mean_power(rx_c).max(1e-30));
            let busy_threshold = self
                .expected_residual_dbm(self.cfg.active_jam_power_dbm)
                .max(self.cfg.squelch_dbm)
                + self.cfg.idle_margin_db;
            let idle_needs_deadline = {
                let entry = self.active.get(&ch).unwrap();
                level <= busy_threshold && entry.until.is_none()
            };
            let delay = if idle_needs_deadline {
                Some((self.cfg.turnaround.draw(&mut self.rng) * self.cfg.fsk.fs_hz) as Tick)
            } else {
                None
            };
            let entry = self.active.get_mut(&ch).unwrap();
            if level > busy_threshold {
                // The signal was alive somewhere in this block; reference
                // the turn-around clock to the block's end so quantization
                // does not inflate the measurement.
                entry.last_busy = tick + block_len;
                entry.until = None;
            } else if let Some(d) = delay {
                entry.until = Some(tick + d);
            }
            if let Some(until) = entry.until {
                if tick >= until {
                    finished.push(ch);
                }
            }
        }
        for ch in finished {
            let entry = self.active.remove(&ch).unwrap();
            self.log(tick, ShieldEventKind::JamEnd { channel: ch });
            self.stats
                .turnaround_s
                .push(tick.saturating_sub(entry.last_busy) as f64 / self.cfg.fsk.fs_hz);
            self.sid_monitors[ch].reset();
            // A high-powered message may have reached the IMD despite
            // jamming: cover the potential reply with a passive window
            // (§7(d)).
            if entry.high_power && ch == self.cfg.session_channel {
                let t1 = (self.cfg.reply.t1_s * self.cfg.fsk.fs_hz) as Tick;
                let window = (self.cfg.reply.jam_window_s() * self.cfg.fsk.fs_hz) as Tick;
                self.passive_window = Some((tick + t1, tick + t1 + window));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outage_schedule_windows() {
        let one_shot = OutageSchedule {
            start_s: 0.010,
            len_s: 0.005,
            period_s: 0.0,
        };
        assert!(!one_shot.contains(0.0));
        assert!(!one_shot.contains(0.0099));
        assert!(one_shot.contains(0.010));
        assert!(one_shot.contains(0.0149));
        assert!(!one_shot.contains(0.0151));
        assert!(!one_shot.contains(1.0));

        let periodic = OutageSchedule {
            start_s: 0.010,
            len_s: 0.005,
            period_s: 0.050,
        };
        assert!(periodic.contains(0.012));
        assert!(!periodic.contains(0.020));
        assert!(periodic.contains(0.062));
        assert!(!periodic.contains(0.070));

        let disabled = OutageSchedule {
            start_s: 0.0,
            len_s: 0.0,
            period_s: 0.0,
        };
        assert!(!disabled.contains(0.0));
        assert!(!disabled.contains(5.0));
    }
}
