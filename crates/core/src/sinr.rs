//! The SINR analysis of §6(b)–(c): why eavesdropper error is independent
//! of location, and the SINR gap `G` between shield and adversary.
//!
//! All quantities in dB. Equation numbers refer to the paper.

/// Inputs to the adversary-side SINR (Eq. 6/7).
#[derive(Debug, Clone, Copy)]
pub struct LinkBudget {
    /// IMD transmit power, dBm.
    pub imd_tx_dbm: f64,
    /// In-body loss, dB (`L_body`).
    pub body_loss_db: f64,
    /// Jamming power as transmitted (referenced to the same point as the
    /// IMD power after body loss — the paper folds `L_air ≈ L_j` away).
    pub jam_dbm: f64,
    /// Receiver noise, dBm.
    pub noise_dbm: f64,
}

/// Eq. 7: `SINR_A = (P_i − L_body) − P_j − N_A` — independent of the
/// adversary's location, because the IMD's signal and the jamming signal
/// experience (approximately) the same air pathloss from the co-located
/// shield/IMD cluster to wherever the adversary stands.
pub fn sinr_adversary_db(b: &LinkBudget) -> f64 {
    let signal = b.imd_tx_dbm - b.body_loss_db;
    let interference_plus_noise = power_sum_dbm(b.jam_dbm, b.noise_dbm);
    signal - interference_plus_noise
}

/// Eq. 8: `SINR_S = (P_i − L_body) − (P_j − G) − N_G`: the shield sees the
/// same signal but only the *residual* of the jamming after `G` dB of
/// antidote cancellation.
pub fn sinr_shield_db(b: &LinkBudget, cancellation_db: f64) -> f64 {
    let signal = b.imd_tx_dbm - b.body_loss_db;
    let residual = b.jam_dbm - cancellation_db;
    signal - power_sum_dbm(residual, b.noise_dbm)
}

/// Eq. 9 (noise-free simplification): `SINR_S = SINR_A + G`. This is the
/// intrinsic trade-off: raising the adversary's error rate while keeping
/// the shield reliable requires cancellation `G`.
pub fn sinr_gap_db(b: &LinkBudget, cancellation_db: f64) -> f64 {
    sinr_shield_db(b, cancellation_db) - sinr_adversary_db(b)
}

/// dB-domain power sum: `10·log10(10^(a/10) + 10^(b/10))`.
pub fn power_sum_dbm(a_dbm: f64, b_dbm: f64) -> f64 {
    10.0 * (10f64.powf(a_dbm / 10.0) + 10f64.powf(b_dbm / 10.0)).log10()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paper_budget() -> LinkBudget {
        LinkBudget {
            imd_tx_dbm: -36.0,
            body_loss_db: 40.0,
            // Jamming at +20 dB over the (post-body) IMD signal level.
            jam_dbm: -36.0 - 40.0 + 20.0,
            noise_dbm: -112.0,
        }
    }

    #[test]
    fn adversary_sinr_is_minus_20_at_paper_settings() {
        // With jamming 20 dB above the IMD's level and negligible noise,
        // SINR_A ≈ −20 dB regardless of where the adversary is.
        let s = sinr_adversary_db(&paper_budget());
        assert!((s - (-20.0)).abs() < 0.1, "SINR_A {s}");
    }

    #[test]
    fn shield_sinr_is_g_minus_20() {
        // Eq. 9: SINR_S = SINR_A + G = G − 20.
        let b = paper_budget();
        let s = sinr_shield_db(&b, 32.0);
        assert!((s - 12.0).abs() < 0.3, "SINR_S {s}");
    }

    #[test]
    fn gap_equals_cancellation_when_noise_negligible() {
        let b = paper_budget();
        for g in [20.0, 26.0, 32.0, 40.0] {
            let gap = sinr_gap_db(&b, g);
            assert!((gap - g).abs() < 0.5, "gap {gap} vs G {g}");
        }
    }

    #[test]
    fn noise_caps_the_gap() {
        // With enormous cancellation the shield becomes noise-limited and
        // the gap saturates below G.
        let b = paper_budget();
        let gap = sinr_gap_db(&b, 80.0);
        assert!(gap < 80.0 - 3.0, "gap {gap} should saturate");
    }

    #[test]
    fn location_independence() {
        // Moving the adversary changes neither term of Eq. 7 — encode that
        // by construction: the budget has no distance input at all. Verify
        // the monotonic effect of each term instead.
        let mut b = paper_budget();
        let base = sinr_adversary_db(&b);
        b.jam_dbm += 5.0;
        assert!(sinr_adversary_db(&b) < base);
        b = paper_budget();
        b.imd_tx_dbm += 5.0;
        assert!(sinr_adversary_db(&b) > base);
    }

    #[test]
    fn power_sum_identities() {
        assert!((power_sum_dbm(0.0, 0.0) - 3.0103).abs() < 1e-3);
        assert!((power_sum_dbm(0.0, -100.0) - 0.0).abs() < 1e-4);
    }
}
