//! The wideband extension of the antidote scheme (§5, "Wideband channels").
//!
//! The narrowband antidote `x = −(H_jam→rec/H_self)·j` assumes a flat
//! channel between the two antennas. Over a channel with multipath, no
//! single coefficient cancels: the paper notes that *"such channels use
//! OFDM, which divides the bandwidth into orthogonal subcarriers and
//! treats each of the subcarriers as if it was an independent narrowband
//! channel. Our model naturally fits in this context"* (and footnote 2
//! sketches the equivalent time-domain equalizer view).
//!
//! This module implements that extension: the jamming signal is generated
//! with OFDM structure (random subcarriers + cyclic prefix), and the
//! antidote is computed **per subcarrier**:
//!
//! ```text
//! X[k] = −(H_jam→rec[k] / H_self) · J[k]
//! ```
//!
//! The cyclic prefix turns the multipath convolution into a circular one
//! inside each symbol's payload window, so per-subcarrier scaling is exact
//! there. Tests show the narrowband antidote collapses to ~5–10 dB of
//! cancellation on a multipath coupling while the per-subcarrier antidote
//! restores the full estimation-limited depth.

use hb_channel::fading::MultipathChannel;
use hb_dsp::complex::{mean_power, C64};
use hb_dsp::fft::FftPlan;
use hb_dsp::noise::complex_gaussian;
use hb_dsp::units::{amplitude_from_db, db_from_ratio};
use rand::Rng;

/// One OFDM-structured jamming symbol with its matching antidote.
#[derive(Debug, Clone)]
pub struct WidebandJamSymbol {
    /// Time-domain jamming samples (CP + payload), for the jam antenna.
    pub jam: Vec<C64>,
    /// Time-domain antidote samples, for the receive antenna's TX chain.
    pub antidote: Vec<C64>,
}

/// Per-subcarrier full-duplex engine for frequency-selective couplings.
#[derive(Debug, Clone)]
pub struct WidebandFullDuplex {
    /// True multipath coupling jam→receive antenna.
    h_jam_rec: MultipathChannel,
    /// True (flat, wired) self-loop gain.
    h_self: C64,
    /// Estimated per-subcarrier jam→receive response.
    est_jr: Vec<C64>,
    /// Estimated self-loop gain.
    est_self: C64,
    plan: FftPlan,
    n_sub: usize,
    cp: usize,
}

impl WidebandFullDuplex {
    /// Creates the engine. `cp` must be at least the channel's delay
    /// spread for the per-subcarrier model to hold.
    ///
    /// # Panics
    /// Panics if the cyclic prefix is shorter than the delay spread.
    pub fn new(h_jam_rec: MultipathChannel, h_self: C64, n_sub: usize, cp: usize) -> Self {
        assert!(
            cp >= h_jam_rec.delay_spread(),
            "cyclic prefix {cp} shorter than delay spread {}",
            h_jam_rec.delay_spread()
        );
        let est_jr = Self::true_freq_response(&h_jam_rec, n_sub);
        WidebandFullDuplex {
            h_jam_rec,
            h_self,
            est_jr,
            est_self: h_self,
            plan: FftPlan::new(n_sub),
            n_sub,
            cp,
        }
    }

    /// The channel's true per-subcarrier response.
    fn true_freq_response(ch: &MultipathChannel, n_sub: usize) -> Vec<C64> {
        let mut taps = vec![C64::ZERO; n_sub];
        taps[..ch.taps.len()].copy_from_slice(&ch.taps);
        FftPlan::new(n_sub).forward(&mut taps);
        taps
    }

    /// Performs a channel-estimation pass with the same bias-limited error
    /// model as the narrowband engine (fixed relative magnitude, random
    /// phase, per subcarrier).
    pub fn estimate<R: Rng + ?Sized>(&mut self, est_snr_db: f64, rng: &mut R) {
        let a = amplitude_from_db(-est_snr_db);
        let truth = Self::true_freq_response(&self.h_jam_rec, self.n_sub);
        self.est_jr = truth
            .iter()
            .map(|&h| {
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                h * (C64::ONE + C64::from_polar(a, theta))
            })
            .collect();
        let theta = rng.gen::<f64>() * std::f64::consts::TAU;
        self.est_self = self.h_self * (C64::ONE + C64::from_polar(a, theta));
    }

    /// Generates one OFDM-structured jamming symbol and its antidote.
    /// The jam payload has unit mean power (in expectation).
    pub fn jam_symbol<R: Rng + ?Sized>(&self, rng: &mut R) -> WidebandJamSymbol {
        // Random frequency-domain jamming with unit power per subcarrier.
        let j_freq: Vec<C64> = (0..self.n_sub)
            .map(|_| complex_gaussian(rng, self.n_sub as f64))
            .collect();
        // Per-subcarrier antidote.
        let x_freq: Vec<C64> = j_freq
            .iter()
            .zip(&self.est_jr)
            .map(|(&j, &h)| -(h / self.est_self) * j)
            .collect();
        let to_time = |freq: &[C64]| -> Vec<C64> {
            let mut buf = freq.to_vec();
            self.plan.inverse(&mut buf);
            let mut out = Vec::with_capacity(self.cp + self.n_sub);
            out.extend_from_slice(&buf[self.n_sub - self.cp..]);
            out.extend_from_slice(&buf);
            out
        };
        WidebandJamSymbol {
            jam: to_time(&j_freq),
            antidote: to_time(&x_freq),
        }
    }

    /// Simulates the receive chain for `symbols` jamming symbols and
    /// measures the cancellation depth in dB over the payload windows:
    /// received = (h_jam_rec ⊛ jam) + h_self·antidote, compared with the
    /// jamming contribution alone.
    pub fn measure_cancellation<R: Rng + ?Sized>(&self, symbols: usize, rng: &mut R) -> f64 {
        let sym_len = self.cp + self.n_sub;
        let mut jam_stream = Vec::with_capacity(symbols * sym_len);
        let mut anti_stream = Vec::with_capacity(symbols * sym_len);
        for _ in 0..symbols {
            let s = self.jam_symbol(rng);
            jam_stream.extend(s.jam);
            anti_stream.extend(s.antidote);
        }
        let through_channel = self.h_jam_rec.apply(&jam_stream);
        let mut with_antidote = Vec::with_capacity(jam_stream.len());
        let mut without = Vec::with_capacity(jam_stream.len());
        for i in 0..jam_stream.len() {
            // Payload windows only (skip each symbol's CP region, where
            // inter-symbol leakage lives).
            if i % sym_len < self.cp {
                continue;
            }
            without.push(through_channel[i]);
            with_antidote.push(through_channel[i] + anti_stream[i] * self.h_self);
        }
        db_from_ratio(mean_power(&without) / mean_power(&with_antidote))
    }

    /// Cancellation of the *narrowband* antidote (a single coefficient
    /// matched to the channel's mean response) on the same multipath
    /// coupling — the baseline this module improves upon.
    pub fn measure_narrowband_cancellation<R: Rng + ?Sized>(
        &self,
        symbols: usize,
        rng: &mut R,
    ) -> f64 {
        // Best single-tap approximation: the DC-subcarrier response.
        let coeff = -(self.est_jr[0] / self.est_self);
        let sym_len = self.cp + self.n_sub;
        let mut jam_stream = Vec::with_capacity(symbols * sym_len);
        for _ in 0..symbols {
            let s = self.jam_symbol(rng);
            jam_stream.extend(s.jam);
        }
        let through_channel = self.h_jam_rec.apply(&jam_stream);
        let mut with_antidote = Vec::with_capacity(jam_stream.len());
        let mut without = Vec::with_capacity(jam_stream.len());
        for i in 0..jam_stream.len() {
            if i % sym_len < self.cp {
                continue;
            }
            without.push(through_channel[i]);
            with_antidote.push(through_channel[i] + jam_stream[i] * coeff * self.h_self);
        }
        db_from_ratio(mean_power(&without) / mean_power(&with_antidote))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn multipath(rng: &mut StdRng) -> MultipathChannel {
        // A 6-tap exponentially decaying coupling scaled to −30 dB total,
        // like the narrowband |H_jam→rec|.
        let mut ch = MultipathChannel::random_exponential(6, 0.5, rng);
        for t in ch.taps.iter_mut() {
            *t = t.scale(amplitude_from_db(-30.0));
        }
        ch
    }

    fn engine(rng: &mut StdRng) -> WidebandFullDuplex {
        let h_self = C64::from_polar(amplitude_from_db(-3.0), 1.1);
        WidebandFullDuplex::new(multipath(rng), h_self, 64, 16)
    }

    #[test]
    fn perfect_estimates_cancel_deeply() {
        let mut rng = StdRng::seed_from_u64(1);
        let fd = engine(&mut rng);
        let g = fd.measure_cancellation(50, &mut rng);
        assert!(g > 60.0, "ideal per-subcarrier cancellation only {g} dB");
    }

    #[test]
    fn estimation_limited_cancellation_matches_narrowband_theory() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut fd = engine(&mut rng);
        fd.estimate(32.0, &mut rng);
        let g = fd.measure_cancellation(80, &mut rng);
        // Per-subcarrier errors at 32 dB estimation accuracy: cancellation
        // lands in the same regime as the narrowband engine's Fig. 7
        // distribution.
        assert!(
            (24.0..45.0).contains(&g),
            "estimation-limited cancellation {g} dB"
        );
    }

    #[test]
    fn narrowband_antidote_fails_on_multipath() {
        let mut rng = StdRng::seed_from_u64(3);
        let fd = engine(&mut rng);
        let g_wide = fd.measure_cancellation(50, &mut rng);
        let g_narrow = fd.measure_narrowband_cancellation(50, &mut rng);
        assert!(
            g_narrow < 15.0,
            "single-tap antidote should collapse on multipath, got {g_narrow} dB"
        );
        assert!(
            g_wide > g_narrow + 20.0,
            "per-subcarrier ({g_wide} dB) must dominate single-tap ({g_narrow} dB)"
        );
    }

    #[test]
    fn flat_channel_reduces_to_narrowband() {
        // With a single-tap coupling, both antidotes do the same job.
        let mut rng = StdRng::seed_from_u64(4);
        let flat = MultipathChannel::flat(C64::from_polar(amplitude_from_db(-30.0), 0.4));
        let h_self = C64::from_polar(amplitude_from_db(-3.0), -0.9);
        let fd = WidebandFullDuplex::new(flat, h_self, 64, 16);
        let g_wide = fd.measure_cancellation(40, &mut rng);
        let g_narrow = fd.measure_narrowband_cancellation(40, &mut rng);
        assert!(g_wide > 60.0);
        assert!(g_narrow > 60.0);
    }

    #[test]
    #[should_panic(expected = "cyclic prefix")]
    fn rejects_insufficient_cp() {
        let mut rng = StdRng::seed_from_u64(5);
        let ch = MultipathChannel::random_exponential(20, 0.8, &mut rng);
        let _ = WidebandFullDuplex::new(ch, C64::ONE, 64, 8);
    }

    #[test]
    fn jam_symbols_have_unit_payload_power() {
        let mut rng = StdRng::seed_from_u64(6);
        let fd = engine(&mut rng);
        let mut payload = Vec::new();
        for _ in 0..100 {
            let s = fd.jam_symbol(&mut rng);
            payload.extend_from_slice(&s.jam[16..]);
        }
        let p = mean_power(&payload);
        assert!((p - 1.0).abs() < 0.1, "payload power {p}");
    }
}
