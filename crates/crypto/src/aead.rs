//! ChaCha20-Poly1305 AEAD construction (RFC 8439 §2.8).

use crate::chacha20::{chacha20_block, chacha20_xor, KEY_LEN, NONCE_LEN};
use crate::poly1305::{poly1305, tags_equal, TAG_LEN};

/// AEAD decryption failure: the tag did not verify. No plaintext is ever
/// released on failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AEAD authentication failed")
    }
}

impl std::error::Error for AuthError {}

/// Derives the Poly1305 one-time key from the cipher key and nonce
/// (the first 32 bytes of ChaCha20 block 0).
fn poly_key(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN]) -> [u8; 32] {
    let block = chacha20_block(key, 0, nonce);
    let mut pk = [0u8; 32];
    pk.copy_from_slice(&block[..32]);
    pk
}

/// The message over which the tag is computed:
/// `aad || pad16 || ciphertext || pad16 || len(aad) || len(ciphertext)`.
fn mac_data(aad: &[u8], ciphertext: &[u8]) -> Vec<u8> {
    let mut m = Vec::with_capacity(aad.len() + ciphertext.len() + 32);
    m.extend_from_slice(aad);
    m.resize(m.len().div_ceil(16) * 16, 0);
    m.extend_from_slice(ciphertext);
    m.resize(m.len().div_ceil(16) * 16, 0);
    m.extend_from_slice(&(aad.len() as u64).to_le_bytes());
    m.extend_from_slice(&(ciphertext.len() as u64).to_le_bytes());
    m
}

/// Encrypts `plaintext` with associated data `aad`; returns
/// `ciphertext || tag`.
pub fn seal(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
    let mut ct = plaintext.to_vec();
    chacha20_xor(key, 1, nonce, &mut ct);
    let tag = poly1305(&poly_key(key, nonce), &mac_data(aad, &ct));
    ct.extend_from_slice(&tag);
    ct
}

/// Verifies and decrypts `ciphertext || tag`. Returns the plaintext, or
/// [`AuthError`] if the tag (or anything covered by it) was tampered with.
pub fn open(
    key: &[u8; KEY_LEN],
    nonce: &[u8; NONCE_LEN],
    aad: &[u8],
    sealed: &[u8],
) -> Result<Vec<u8>, AuthError> {
    if sealed.len() < TAG_LEN {
        return Err(AuthError);
    }
    let (ct, tag_bytes) = sealed.split_at(sealed.len() - TAG_LEN);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(tag_bytes);
    let expected = poly1305(&poly_key(key, nonce), &mac_data(aad, ct));
    if !tags_equal(&expected, &tag) {
        return Err(AuthError);
    }
    let mut pt = ct.to_vec();
    chacha20_xor(key, 1, nonce, &mut pt);
    Ok(pt)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.8.2 test vector.
    #[test]
    fn rfc8439_aead_vector() {
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let aad: [u8; 12] = [
            0x50, 0x51, 0x52, 0x53, 0xc0, 0xc1, 0xc2, 0xc3, 0xc4, 0xc5, 0xc6, 0xc7,
        ];
        let key: [u8; 32] = [
            0x80, 0x81, 0x82, 0x83, 0x84, 0x85, 0x86, 0x87, 0x88, 0x89, 0x8a, 0x8b, 0x8c, 0x8d,
            0x8e, 0x8f, 0x90, 0x91, 0x92, 0x93, 0x94, 0x95, 0x96, 0x97, 0x98, 0x99, 0x9a, 0x9b,
            0x9c, 0x9d, 0x9e, 0x9f,
        ];
        let nonce: [u8; 12] = [
            0x07, 0x00, 0x00, 0x00, 0x40, 0x41, 0x42, 0x43, 0x44, 0x45, 0x46, 0x47,
        ];
        let sealed = seal(&key, &nonce, &aad, plaintext);
        // First ciphertext bytes.
        let expected_ct_start: [u8; 16] = [
            0xd3, 0x1a, 0x8d, 0x34, 0x64, 0x8e, 0x60, 0xdb, 0x7b, 0x86, 0xaf, 0xbc, 0x53, 0xef,
            0x7e, 0xc2,
        ];
        assert_eq!(&sealed[..16], &expected_ct_start);
        // Tag.
        let expected_tag: [u8; 16] = [
            0x1a, 0xe1, 0x0b, 0x59, 0x4f, 0x09, 0xe2, 0x6a, 0x7e, 0x90, 0x2e, 0xcb, 0xd0, 0x60,
            0x06, 0x91,
        ];
        assert_eq!(&sealed[sealed.len() - 16..], &expected_tag);
        // Round trip.
        let pt = open(&key, &nonce, &aad, &sealed).unwrap();
        assert_eq!(pt, plaintext);
    }

    #[test]
    fn tampered_ciphertext_rejected() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let sealed = seal(&key, &nonce, b"hdr", b"interrogate");
        for i in 0..sealed.len() {
            let mut bad = sealed.clone();
            bad[i] ^= 0x40;
            assert_eq!(open(&key, &nonce, b"hdr", &bad), Err(AuthError), "byte {i}");
        }
    }

    #[test]
    fn tampered_aad_rejected() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let sealed = seal(&key, &nonce, b"seq=1", b"set-rate 70");
        assert_eq!(open(&key, &nonce, b"seq=2", &sealed), Err(AuthError));
    }

    #[test]
    fn wrong_key_or_nonce_rejected() {
        let key = [9u8; 32];
        let nonce = [1u8; 12];
        let sealed = seal(&key, &nonce, b"", b"payload");
        assert_eq!(open(&[8u8; 32], &nonce, b"", &sealed), Err(AuthError));
        assert_eq!(open(&key, &[2u8; 12], b"", &sealed), Err(AuthError));
    }

    #[test]
    fn empty_plaintext_and_aad() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        let sealed = seal(&key, &nonce, b"", b"");
        assert_eq!(sealed.len(), TAG_LEN);
        assert_eq!(open(&key, &nonce, b"", &sealed).unwrap(), b"");
    }

    #[test]
    fn truncated_input_rejected() {
        let key = [3u8; 32];
        let nonce = [4u8; 12];
        assert_eq!(open(&key, &nonce, b"", &[0u8; 8]), Err(AuthError));
    }
}
