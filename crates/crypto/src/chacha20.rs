//! ChaCha20 stream cipher (RFC 8439).
//!
//! The paper assumes "an authenticated, encrypted channel between the
//! shield and the programmer" (§4) without prescribing a construction. We
//! implement the standard ChaCha20-Poly1305 AEAD so the relay path runs a
//! real cryptographic channel end to end. Verified against the RFC 8439
//! test vectors.

/// Key length in bytes.
pub const KEY_LEN: usize = 32;
/// Nonce length in bytes (the 96-bit IETF variant).
pub const NONCE_LEN: usize = 12;
/// Block length in bytes.
pub const BLOCK_LEN: usize = 64;

/// The ChaCha20 quarter round.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Builds the initial state for a block.
fn initial_state(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN]) -> [u32; 16] {
    let mut state = [0u32; 16];
    // "expand 32-byte k"
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    for i in 0..8 {
        state[4 + i] = u32::from_le_bytes(key[4 * i..4 * i + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        state[13 + i] = u32::from_le_bytes(nonce[4 * i..4 * i + 4].try_into().unwrap());
    }
    state
}

/// Computes one 64-byte keystream block.
pub fn chacha20_block(
    key: &[u8; KEY_LEN],
    counter: u32,
    nonce: &[u8; NONCE_LEN],
) -> [u8; BLOCK_LEN] {
    let initial = initial_state(key, counter, nonce);
    let mut state = initial;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_LEN];
    for i in 0..16 {
        let v = state[i].wrapping_add(initial[i]);
        out[4 * i..4 * i + 4].copy_from_slice(&v.to_le_bytes());
    }
    out
}

/// Encrypts or decrypts `data` in place (XOR keystream), starting at block
/// `counter`.
pub fn chacha20_xor(key: &[u8; KEY_LEN], counter: u32, nonce: &[u8; NONCE_LEN], data: &mut [u8]) {
    for (block_idx, chunk) in data.chunks_mut(BLOCK_LEN).enumerate() {
        let ks = chacha20_block(key, counter.wrapping_add(block_idx as u32), nonce);
        for (b, k) in chunk.iter_mut().zip(ks.iter()) {
            *b ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_key() -> [u8; 32] {
        let mut k = [0u8; 32];
        for (i, b) in k.iter_mut().enumerate() {
            *b = i as u8;
        }
        k
    }

    #[test]
    fn rfc8439_block_vector() {
        // RFC 8439 §2.3.2.
        let key = test_key();
        let nonce = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expected: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expected);
        // Last 16 bytes too.
        let expected_tail: [u8; 16] = [
            0xb5, 0x12, 0x9c, 0xd1, 0xde, 0x16, 0x4e, 0xb9, 0xcb, 0xd0, 0x83, 0xe8, 0xa2, 0x50,
            0x3c, 0x4e,
        ];
        assert_eq!(&block[48..], &expected_tail);
    }

    #[test]
    fn rfc8439_encryption_vector() {
        // RFC 8439 §2.4.2: the "sunscreen" plaintext.
        let key = test_key();
        let nonce = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = *b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        chacha20_xor(&key, 1, &nonce, &mut data);
        let expected_start: [u8; 16] = [
            0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80, 0x41, 0xba, 0x07, 0x28, 0xdd, 0x0d,
            0x69, 0x81,
        ];
        assert_eq!(&data[..16], &expected_start);
        let expected_end: [u8; 10] = [0xb4, 0x0b, 0x8e, 0xed, 0xf2, 0x78, 0x5e, 0x42, 0x87, 0x4d];
        assert_eq!(&data[104..114], &expected_end);
    }

    #[test]
    fn xor_is_involution() {
        let key = test_key();
        let nonce = [7u8; 12];
        let original: Vec<u8> = (0..300).map(|i| (i * 7) as u8).collect();
        let mut data = original.clone();
        chacha20_xor(&key, 5, &nonce, &mut data);
        assert_ne!(data, original);
        chacha20_xor(&key, 5, &nonce, &mut data);
        assert_eq!(data, original);
    }

    #[test]
    fn different_nonces_give_different_streams() {
        let key = test_key();
        let b1 = chacha20_block(&key, 0, &[1u8; 12]);
        let b2 = chacha20_block(&key, 0, &[2u8; 12]);
        assert_ne!(b1, b2);
    }

    #[test]
    fn different_counters_give_different_blocks() {
        let key = test_key();
        let nonce = [3u8; 12];
        assert_ne!(
            chacha20_block(&key, 0, &nonce),
            chacha20_block(&key, 1, &nonce)
        );
    }

    #[test]
    fn quarter_round_rfc_vector() {
        // RFC 8439 §2.1.1.
        let mut state = [0u32; 16];
        state[0] = 0x11111111;
        state[1] = 0x01020304;
        state[2] = 0x9b8d6f43;
        state[3] = 0x01234567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a92f4);
        assert_eq!(state[1], 0xcb1cf8ce);
        assert_eq!(state[2], 0x4581472e);
        assert_eq!(state[3], 0x5881c4bb);
    }
}
