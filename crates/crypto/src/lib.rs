//! # hb-crypto — the shield ↔ programmer cryptographic channel
//!
//! The paper's architecture (§4) routes all programmer traffic through the
//! shield over "an authenticated, encrypted channel". This crate implements
//! that channel from scratch:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439, verified against
//!   the RFC test vectors).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439).
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction.
//! * [`session`] — pre-shared-key sessions with per-direction nonces and
//!   replay rejection.
//! * [`micro`] — compact sealing (4-byte overhead, truncated tag) that
//!   fits inside the 10-byte MICS frame payload, plus the key-derivation
//!   helper behind per-session keys and wake tokens.
//!
//! Scope note: this is a faithful, tested implementation intended for the
//! simulation; it has not been side-channel hardened for production use on
//! real patient hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod micro;
pub mod poly1305;
pub mod session;

pub use aead::{open, seal, AuthError};
pub use micro::{derive_key, MicroError, MicroSession};
pub use session::{SecureSession, SessionError};
