//! # hb-crypto — the shield ↔ programmer cryptographic channel
//!
//! The paper's architecture (§4) routes all programmer traffic through the
//! shield over "an authenticated, encrypted channel". This crate implements
//! that channel from scratch:
//!
//! * [`chacha20`] — the ChaCha20 stream cipher (RFC 8439, verified against
//!   the RFC test vectors).
//! * [`poly1305`] — the Poly1305 one-time authenticator (RFC 8439).
//! * [`aead`] — the ChaCha20-Poly1305 AEAD construction.
//! * [`session`] — pre-shared-key sessions with per-direction nonces and
//!   replay rejection.
//!
//! Scope note: this is a faithful, tested implementation intended for the
//! simulation; it has not been side-channel hardened for production use on
//! real patient hardware.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod aead;
pub mod chacha20;
pub mod poly1305;
pub mod session;

pub use aead::{open, seal, AuthError};
pub use session::{SecureSession, SessionError};
