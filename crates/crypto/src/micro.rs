//! Compact authenticated sealing for the 10-byte MICS air budget.
//!
//! The full [`session`](crate::session) wire format spends 25 bytes on
//! framing — fine for the shield ↔ programmer side channel, hopeless for
//! MICS frames whose payload field is capped at
//! `hb_phy::packet::MAX_PAYLOAD` (10 bytes). Protocol-level IMD defenses
//! (the IMDfence-style session in `hb_testbed::defense`) need
//! authenticated encryption *inside* that cap, so this module trades
//! nonce width and tag strength for size:
//!
//! ```text
//! | ctr 1B | ciphertext (= plaintext len) | tag 3B |
//! ```
//!
//! 4 bytes of overhead leave [`MAX_PT`] = 6 bytes of plaintext — exactly
//! a `SetTherapy` payload, with room for every response except bulk
//! `Data` chunks (which secure mode truncates; the confidentiality tax
//! is measured, not hidden).
//!
//! The construction is ChaCha20-Poly1305 with the nonce built from the
//! direction byte and the 1-byte counter, and the Poly1305 tag truncated
//! to 24 bits. A 24-bit tag is far below modern AEAD margins — that is
//! the honest cost of a 10-byte frame budget, and one of the axes the
//! defense matrix exists to surface. Counters are strictly increasing in
//! each direction, so a replayed frame is rejected before the tag is
//! even checked; replay state only advances on authenticated frames.

use crate::chacha20::{self, KEY_LEN, NONCE_LEN};
use crate::poly1305;

/// Wire overhead of a sealed micro frame: 1 counter byte + 3 tag bytes.
pub const MICRO_OVERHEAD: usize = 4;

/// Truncated tag length (24 bits).
pub const TAG_LEN: usize = 3;

/// Largest plaintext that fits a 10-byte MICS payload once sealed.
pub const MAX_PT: usize = 10 - MICRO_OVERHEAD;

/// Why a sealed frame was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroError {
    /// Shorter than the fixed 4-byte overhead.
    Malformed,
    /// Counter did not advance past the last authenticated frame.
    Replay,
    /// Truncated tag mismatch.
    Auth,
}

impl std::fmt::Display for MicroError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MicroError::Malformed => write!(f, "sealed frame shorter than header + tag"),
            MicroError::Replay => write!(f, "counter replayed or out of order"),
            MicroError::Auth => write!(f, "authentication tag mismatch"),
        }
    }
}

impl std::error::Error for MicroError {}

/// Direction byte baked into the nonce: programmer → device.
const DIR_TO_DEVICE: u8 = 0;
/// Direction byte baked into the nonce: device → programmer.
const DIR_TO_PROGRAMMER: u8 = 1;

fn nonce_for(direction: u8, ctr: u8) -> [u8; NONCE_LEN] {
    let mut nonce = [0u8; NONCE_LEN];
    nonce[0] = direction;
    nonce[1] = ctr;
    nonce
}

/// Seals `pt` under `(key, direction, ctr)`. Panics if `pt` exceeds
/// [`MAX_PT`] — callers own the frame budget.
fn seal_raw(key: &[u8; KEY_LEN], direction: u8, ctr: u8, pt: &[u8]) -> Vec<u8> {
    assert!(pt.len() <= MAX_PT, "micro plaintext exceeds frame budget");
    let nonce = nonce_for(direction, ctr);
    let mut ct = pt.to_vec();
    chacha20::chacha20_xor(key, 1, &nonce, &mut ct);
    let tag = tag_for(key, &nonce, &ct);
    let mut wire = Vec::with_capacity(1 + ct.len() + TAG_LEN);
    wire.push(ctr);
    wire.extend_from_slice(&ct);
    wire.extend_from_slice(&tag);
    wire
}

/// Truncated Poly1305 tag over the ciphertext, keyed per-nonce exactly
/// like the full AEAD (block 0 of the keystream).
fn tag_for(key: &[u8; KEY_LEN], nonce: &[u8; NONCE_LEN], ct: &[u8]) -> [u8; TAG_LEN] {
    let block = chacha20::chacha20_block(key, 0, nonce);
    let mut poly_key = [0u8; poly1305::KEY_LEN];
    poly_key.copy_from_slice(&block[..poly1305::KEY_LEN]);
    let full = poly1305::poly1305(&poly_key, ct);
    let mut tag = [0u8; TAG_LEN];
    tag.copy_from_slice(&full[..TAG_LEN]);
    tag
}

fn open_raw(
    key: &[u8; KEY_LEN],
    direction: u8,
    last: Option<u8>,
    wire: &[u8],
) -> Result<(u8, Vec<u8>), MicroError> {
    if wire.len() < MICRO_OVERHEAD {
        return Err(MicroError::Malformed);
    }
    let ctr = wire[0];
    if let Some(last) = last {
        if ctr <= last {
            return Err(MicroError::Replay);
        }
    }
    let ct = &wire[1..wire.len() - TAG_LEN];
    let nonce = nonce_for(direction, ctr);
    let expect = tag_for(key, &nonce, ct);
    let got = &wire[wire.len() - TAG_LEN..];
    // Constant-time enough for a simulation: fold the comparison.
    let mut diff = 0u8;
    for (a, b) in expect.iter().zip(got) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return Err(MicroError::Auth);
    }
    let mut pt = ct.to_vec();
    chacha20::chacha20_xor(key, 1, &nonce, &mut pt);
    Ok((ctr, pt))
}

/// One endpoint of a sealed command/response exchange.
///
/// Each side seals with its own direction byte and strictly-increasing
/// 1-byte counter, and accepts only frames whose counter advances past
/// the last *authenticated* one — a heard-and-replayed frame fails
/// before decryption.
#[derive(Debug, Clone)]
pub struct MicroSession {
    key: [u8; KEY_LEN],
    send_dir: u8,
    recv_dir: u8,
    next_send: u8,
    last_recv: Option<u8>,
}

impl MicroSession {
    /// The implanted-device endpoint (receives commands, sends replies).
    pub fn device_side(key: [u8; KEY_LEN]) -> Self {
        MicroSession {
            key,
            send_dir: DIR_TO_PROGRAMMER,
            recv_dir: DIR_TO_DEVICE,
            next_send: 1,
            last_recv: None,
        }
    }

    /// The programmer endpoint (sends commands, receives replies).
    pub fn programmer_side(key: [u8; KEY_LEN]) -> Self {
        MicroSession {
            key,
            send_dir: DIR_TO_DEVICE,
            recv_dir: DIR_TO_PROGRAMMER,
            next_send: 1,
            last_recv: None,
        }
    }

    /// Seals a payload for the peer. Panics past [`MAX_PT`] or once the
    /// 1-byte counter space (255 frames per direction) is exhausted —
    /// both are caller bugs in this codebase, not runtime conditions.
    pub fn seal(&mut self, pt: &[u8]) -> Vec<u8> {
        let ctr = self.next_send;
        self.next_send = self
            .next_send
            .checked_add(1)
            .expect("micro counter space exhausted");
        seal_raw(&self.key, self.send_dir, ctr, pt)
    }

    /// Opens a frame from the peer, advancing replay state only on
    /// success.
    pub fn open(&mut self, wire: &[u8]) -> Result<Vec<u8>, MicroError> {
        let (ctr, pt) = open_raw(&self.key, self.recv_dir, self.last_recv, wire)?;
        self.last_recv = Some(ctr);
        Ok(pt)
    }
}

/// Derives a fresh 256-bit key from a master key, a domain label, and a
/// public nonce — the handshake primitive behind per-session keys and
/// wake tokens. One ChaCha20 block keyed by the master, with label and
/// nonce packed into the block nonce (both capped so they cannot
/// collide across domains).
pub fn derive_key(master: &[u8; KEY_LEN], label: &[u8], nonce: &[u8]) -> [u8; KEY_LEN] {
    assert!(label.len() <= 8, "kdf label cap");
    assert!(nonce.len() <= 3, "kdf nonce cap");
    let mut n = [0u8; NONCE_LEN];
    n[..label.len()].copy_from_slice(label);
    n[8] = label.len() as u8;
    n[9..9 + nonce.len()].copy_from_slice(nonce);
    let block = chacha20::chacha20_block(master, 0xFFFF_FFFF, &n);
    let mut key = [0u8; KEY_LEN];
    key.copy_from_slice(&block[..KEY_LEN]);
    key
}

/// Length of a control-token MAC (32 bits).
pub const TOKEN_TAG_LEN: usize = 4;

/// Short MAC for single-frame control tokens — wake tokens and handshake
/// hellos. Poly1305 over `msg` under a one-time key derived from
/// `(master, label, ctr)`, truncated to 32 bits; the counter in the key
/// derivation makes every token value single-use, so a heard token
/// cannot be replayed past a monotonic receiver.
pub fn token_tag(master: &[u8; KEY_LEN], label: &[u8], ctr: u8, msg: &[u8]) -> [u8; TOKEN_TAG_LEN] {
    let key = derive_key(master, label, &[ctr]);
    let full = poly1305::poly1305(&key, msg);
    let mut tag = [0u8; TOKEN_TAG_LEN];
    tag.copy_from_slice(&full[..TOKEN_TAG_LEN]);
    tag
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; KEY_LEN] = [7u8; KEY_LEN];

    #[test]
    fn token_tags_vary_with_every_input() {
        let base = token_tag(&KEY, b"wake", 1, b"SERIAL0001");
        assert_ne!(base, token_tag(&KEY, b"wake", 2, b"SERIAL0001"));
        assert_ne!(base, token_tag(&KEY, b"hello", 1, b"SERIAL0001"));
        assert_ne!(base, token_tag(&KEY, b"wake", 1, b"SERIAL0002"));
        assert_eq!(base, token_tag(&KEY, b"wake", 1, b"SERIAL0001"));
    }

    #[test]
    fn roundtrip_all_lengths() {
        for len in 0..=MAX_PT {
            let mut prog = MicroSession::programmer_side(KEY);
            let mut dev = MicroSession::device_side(KEY);
            let pt: Vec<u8> = (0..len as u8).collect();
            let wire = prog.seal(&pt);
            assert_eq!(wire.len(), pt.len() + MICRO_OVERHEAD);
            assert!(wire.len() <= 10, "sealed frame must fit MAX_PAYLOAD");
            assert_eq!(dev.open(&wire).unwrap(), pt);
        }
    }

    #[test]
    fn tampered_byte_fails_auth() {
        let mut prog = MicroSession::programmer_side(KEY);
        let mut dev = MicroSession::device_side(KEY);
        let wire = prog.seal(&[0x10, 0x01]);
        for i in 0..wire.len() {
            let mut bad = wire.clone();
            bad[i] ^= 0x80;
            let err = dev.clone().open(&bad).unwrap_err();
            assert!(
                matches!(err, MicroError::Auth | MicroError::Replay),
                "byte {i} flip must not authenticate"
            );
        }
        // The pristine frame still opens.
        assert!(dev.open(&wire).is_ok());
    }

    #[test]
    fn replayed_frame_is_rejected() {
        let mut prog = MicroSession::programmer_side(KEY);
        let mut dev = MicroSession::device_side(KEY);
        let wire = prog.seal(&[0x10, 0x01]);
        assert!(dev.open(&wire).is_ok());
        assert_eq!(dev.open(&wire).unwrap_err(), MicroError::Replay);
    }

    #[test]
    fn directions_do_not_cross() {
        // A frame the programmer sealed must not open as a device reply:
        // the direction byte in the nonce separates the streams.
        let mut prog = MicroSession::programmer_side(KEY);
        let wire = prog.seal(&[0xA2, 0x01]);
        let mut prog_rx = MicroSession::programmer_side(KEY);
        assert_eq!(prog_rx.open(&wire).unwrap_err(), MicroError::Auth);
    }

    #[test]
    fn wrong_key_fails() {
        let mut prog = MicroSession::programmer_side(KEY);
        let wire = prog.seal(&[0x10]);
        let mut dev = MicroSession::device_side([8u8; KEY_LEN]);
        assert_eq!(dev.open(&wire).unwrap_err(), MicroError::Auth);
    }

    #[test]
    fn short_frame_is_malformed() {
        let mut dev = MicroSession::device_side(KEY);
        assert_eq!(dev.open(&[1, 2, 3]).unwrap_err(), MicroError::Malformed);
    }

    #[test]
    fn ciphertext_differs_from_plaintext() {
        let mut prog = MicroSession::programmer_side(KEY);
        let pt = [0x30, 0x01, 0x00, 0x96, 0x19, 0x0f];
        let wire = prog.seal(&pt);
        assert_ne!(&wire[1..1 + pt.len()], &pt[..]);
    }

    #[test]
    fn derive_key_separates_labels_and_nonces() {
        let a = derive_key(&KEY, b"imdfence", &[1, 0]);
        let b = derive_key(&KEY, b"imdfence", &[2, 0]);
        let c = derive_key(&KEY, b"wake", &[1, 0]);
        assert_ne!(a, b);
        assert_ne!(a, c);
        assert_ne!(b, c);
        assert_eq!(a, derive_key(&KEY, b"imdfence", &[1, 0]));
    }
}
