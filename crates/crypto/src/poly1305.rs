//! Poly1305 one-time authenticator (RFC 8439).
//!
//! Implemented with 8-bit limbs after D. J. Bernstein's reference
//! implementation: slow but simple and obviously correct, which is the
//! right trade-off here — relay messages are hundreds of bytes, not
//! gigabytes. Verified against the RFC 8439 test vector.

/// Tag length in bytes.
pub const TAG_LEN: usize = 16;
/// One-time key length in bytes.
pub const KEY_LEN: usize = 32;

/// Adds `b` into `a` over 8-bit limbs (no modular reduction).
fn add(a: &mut [u32; 17], b: &[u32; 17]) {
    let mut carry = 0u32;
    for i in 0..17 {
        carry += a[i] + b[i];
        a[i] = carry & 0xFF;
        carry >>= 8;
    }
}

/// Reduces `a` modulo 2^130 - 5 into the canonical range.
fn freeze(a: &mut [u32; 17]) {
    let orig = *a;
    // Subtract p = 2^130 - 5 by adding its two's complement over 17 bytes:
    // 2^136 - p = 5 + 63·2^130 = {5, 0, …, 0, 0xFC}. The add masks limbs,
    // so the result is (a - p) mod 2^136.
    let mut minus_p = [0u32; 17];
    minus_p[0] = 5;
    minus_p[16] = 0xFC;
    add(a, &minus_p);
    // If a < p the subtraction wrapped: the top limb carries the 0xFC-ish
    // high bits. Restore the original in that case.
    let wrapped = (a[16] & 0x80) != 0;
    if wrapped {
        *a = orig;
    }
}

/// Multiplies `h` by `r` modulo 2^130 - 5.
fn mulmod(h: &mut [u32; 17], r: &[u32; 17]) {
    let mut hr = [0u32; 17];
    for i in 0..17 {
        let mut u = 0u32;
        // Low partial products.
        for j in 0..=i {
            u += h[j] * r[i - j];
        }
        // High partial products wrap with factor 2^130 ≡ 5 (mod p), which
        // over 8-bit limbs shifted by 17 bytes is a factor of 5 * 2^6 = 320.
        for j in (i + 1)..17 {
            u += 320 * h[j] * r[i + 17 - j];
        }
        hr[i] = u;
    }
    // Carry propagation back to 8-bit limbs, twice to settle.
    for _ in 0..2 {
        let mut carry = 0u32;
        for (i, v) in hr.iter_mut().enumerate() {
            carry += *v;
            if i < 16 {
                *v = carry & 0xFF;
                carry >>= 8;
            } else {
                *v = carry & 0x03;
                carry = 5 * (carry >> 2);
            }
        }
        hr[0] += carry;
    }
    *h = hr;
}

/// Computes the Poly1305 tag of `msg` under the one-time `key`.
pub fn poly1305(key: &[u8; KEY_LEN], msg: &[u8]) -> [u8; TAG_LEN] {
    // Clamp r.
    let mut r = [0u32; 17];
    for i in 0..16 {
        r[i] = key[i] as u32;
    }
    r[3] &= 15;
    r[7] &= 15;
    r[11] &= 15;
    r[15] &= 15;
    r[4] &= 252;
    r[8] &= 252;
    r[12] &= 252;

    let mut h = [0u32; 17];
    let mut offset = 0;
    while offset < msg.len() {
        let block = &msg[offset..msg.len().min(offset + 16)];
        let mut c = [0u32; 17];
        for (i, &b) in block.iter().enumerate() {
            c[i] = b as u32;
        }
        c[block.len()] = 1; // the "1" pad bit
        add(&mut h, &c);
        mulmod(&mut h, &r);
        offset += 16;
    }
    freeze(&mut h);

    // Add s (the second key half) modulo 2^128.
    let mut s = [0u32; 17];
    for i in 0..16 {
        s[i] = key[16 + i] as u32;
    }
    add(&mut h, &s);
    let mut tag = [0u8; TAG_LEN];
    for i in 0..16 {
        tag[i] = h[i] as u8;
    }
    tag
}

/// Constant-time tag comparison.
pub fn tags_equal(a: &[u8; TAG_LEN], b: &[u8; TAG_LEN]) -> bool {
    let mut diff = 0u8;
    for i in 0..TAG_LEN {
        diff |= a[i] ^ b[i];
    }
    diff == 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc8439_vector() {
        // RFC 8439 §2.5.2.
        let key: [u8; 32] = [
            0x85, 0xd6, 0xbe, 0x78, 0x57, 0x55, 0x6d, 0x33, 0x7f, 0x44, 0x52, 0xfe, 0x42, 0xd5,
            0x06, 0xa8, 0x01, 0x03, 0x80, 0x8a, 0xfb, 0x0d, 0xb2, 0xfd, 0x4a, 0xbf, 0xf6, 0xaf,
            0x41, 0x49, 0xf5, 0x1b,
        ];
        let msg = b"Cryptographic Forum Research Group";
        let tag = poly1305(&key, msg);
        let expected: [u8; 16] = [
            0xa8, 0x06, 0x1d, 0xc1, 0x30, 0x51, 0x36, 0xc6, 0xc2, 0x2b, 0x8b, 0xaf, 0x0c, 0x01,
            0x27, 0xa9,
        ];
        assert_eq!(tag, expected);
    }

    #[test]
    fn empty_message() {
        // Tag of empty message is just s.
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let tag = poly1305(&key, b"");
        assert_eq!(&tag[..], &key[16..32]);
    }

    #[test]
    fn tag_changes_with_message() {
        let key = [0x42u8; 32];
        let t1 = poly1305(&key, b"message one");
        let t2 = poly1305(&key, b"message two");
        assert_ne!(t1, t2);
    }

    #[test]
    fn tag_changes_with_single_bit_flip() {
        let key = [0x42u8; 32];
        let base = poly1305(&key, b"therapy parameters update");
        let mut msg = b"therapy parameters update".to_vec();
        for byte in 0..msg.len() {
            msg[byte] ^= 1;
            assert_ne!(poly1305(&key, &msg), base, "flip at {byte} undetected");
            msg[byte] ^= 1;
        }
    }

    #[test]
    fn tag_changes_with_key() {
        let t1 = poly1305(&[1u8; 32], b"same message");
        let t2 = poly1305(&[2u8; 32], b"same message");
        assert_ne!(t1, t2);
    }

    #[test]
    fn block_boundary_lengths() {
        // Exercise lengths around the 16-byte block boundary.
        let key = [0x17u8; 32];
        let mut tags = Vec::new();
        for len in [0usize, 1, 15, 16, 17, 31, 32, 33, 64] {
            let msg: Vec<u8> = (0..len).map(|i| i as u8).collect();
            tags.push(poly1305(&key, &msg));
        }
        // All distinct.
        for i in 0..tags.len() {
            for j in (i + 1)..tags.len() {
                assert_ne!(tags[i], tags[j], "lengths {i} and {j} collide");
            }
        }
    }

    #[test]
    fn constant_time_compare() {
        let a = [1u8; 16];
        let mut b = [1u8; 16];
        assert!(tags_equal(&a, &b));
        b[15] ^= 0x80;
        assert!(!tags_equal(&a, &b));
    }
}
