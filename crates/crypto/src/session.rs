//! The secure session between the shield and an authorized programmer.
//!
//! §4 of the paper: *"An authorized programmer that wants to communicate
//! with the IMD instead exchanges its messages with the shield … We assume
//! the existence of an authenticated, encrypted channel between the shield
//! and the programmer."* This module realizes that channel:
//!
//! * pre-shared 256-bit key (provisioned out of band, e.g. at the clinic —
//!   the paper cites both in-band \[19\] and out-of-band \[28\] pairing);
//! * per-direction monotonic counters carried in the nonce — replayed or
//!   reordered frames are rejected;
//! * ChaCha20-Poly1305 sealing with the header as associated data.
//!
//! Wire format: `| direction 1B | counter 8B BE | ciphertext…tag |`.

use crate::aead::{open, seal, AuthError};
use crate::chacha20::{KEY_LEN, NONCE_LEN};

/// Which side of the session a frame travels from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum Direction {
    /// Programmer → shield.
    ToShield = 0x01,
    /// Shield → programmer.
    ToProgrammer = 0x02,
}

impl Direction {
    fn from_byte(b: u8) -> Option<Self> {
        match b {
            0x01 => Some(Direction::ToShield),
            0x02 => Some(Direction::ToProgrammer),
            _ => None,
        }
    }
}

/// Errors from [`SecureSession::open_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// Frame too short or with an unknown direction byte.
    Malformed,
    /// Frame direction matches our own sending direction (reflection).
    WrongDirection,
    /// Counter not strictly greater than the last accepted one (replay).
    Replay,
    /// AEAD tag failure.
    Auth,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Malformed => write!(f, "malformed frame"),
            SessionError::WrongDirection => write!(f, "frame from wrong direction"),
            SessionError::Replay => write!(f, "replayed or reordered frame"),
            SessionError::Auth => write!(f, "authentication failure"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<AuthError> for SessionError {
    fn from(_: AuthError) -> Self {
        SessionError::Auth
    }
}

/// One endpoint of the authenticated, encrypted shield↔programmer channel.
#[derive(Debug, Clone)]
pub struct SecureSession {
    key: [u8; KEY_LEN],
    /// The direction *we* send in.
    send_dir: Direction,
    send_counter: u64,
    /// Highest counter accepted from the peer.
    recv_counter: Option<u64>,
}

impl SecureSession {
    /// Creates the shield-side endpoint.
    pub fn shield_side(key: [u8; KEY_LEN]) -> Self {
        SecureSession {
            key,
            send_dir: Direction::ToProgrammer,
            send_counter: 0,
            recv_counter: None,
        }
    }

    /// Creates the programmer-side endpoint.
    pub fn programmer_side(key: [u8; KEY_LEN]) -> Self {
        SecureSession {
            key,
            send_dir: Direction::ToShield,
            send_counter: 0,
            recv_counter: None,
        }
    }

    fn nonce(dir: Direction, counter: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[0] = dir as u8;
        n[4..12].copy_from_slice(&counter.to_be_bytes());
        n
    }

    /// Seals a message for the peer; increments the send counter.
    pub fn seal_frame(&mut self, plaintext: &[u8]) -> Vec<u8> {
        self.send_counter += 1;
        let mut header = [0u8; 9];
        header[0] = self.send_dir as u8;
        header[1..9].copy_from_slice(&self.send_counter.to_be_bytes());
        let nonce = Self::nonce(self.send_dir, self.send_counter);
        let mut frame = header.to_vec();
        frame.extend(seal(&self.key, &nonce, &header, plaintext));
        frame
    }

    /// Verifies and decrypts a frame from the peer, enforcing direction and
    /// strictly increasing counters.
    pub fn open_frame(&mut self, frame: &[u8]) -> Result<Vec<u8>, SessionError> {
        if frame.len() < 9 + 16 {
            return Err(SessionError::Malformed);
        }
        let dir = Direction::from_byte(frame[0]).ok_or(SessionError::Malformed)?;
        if dir == self.send_dir {
            return Err(SessionError::WrongDirection);
        }
        let counter = u64::from_be_bytes(frame[1..9].try_into().unwrap());
        if let Some(last) = self.recv_counter {
            if counter <= last {
                return Err(SessionError::Replay);
            }
        }
        let nonce = Self::nonce(dir, counter);
        let pt = open(&self.key, &nonce, &frame[..9], &frame[9..])?;
        // Only update the replay state after authentication succeeds, so a
        // forged counter cannot wedge the session.
        self.recv_counter = Some(counter);
        Ok(pt)
    }

    /// Number of frames sent so far.
    pub fn frames_sent(&self) -> u64 {
        self.send_counter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureSession, SecureSession) {
        let key = [0x5Au8; 32];
        (
            SecureSession::shield_side(key),
            SecureSession::programmer_side(key),
        )
    }

    #[test]
    fn bidirectional_exchange() {
        let (mut shield, mut prog) = pair();
        let cmd = prog.seal_frame(b"interrogate");
        assert_eq!(shield.open_frame(&cmd).unwrap(), b"interrogate");
        let resp = shield.seal_frame(b"ecg:72bpm");
        assert_eq!(prog.open_frame(&resp).unwrap(), b"ecg:72bpm");
    }

    #[test]
    fn replay_rejected() {
        let (mut shield, mut prog) = pair();
        let cmd = prog.seal_frame(b"set-rate 60");
        assert!(shield.open_frame(&cmd).is_ok());
        assert_eq!(shield.open_frame(&cmd), Err(SessionError::Replay));
    }

    #[test]
    fn reorder_rejected() {
        let (mut shield, mut prog) = pair();
        let c1 = prog.seal_frame(b"one");
        let c2 = prog.seal_frame(b"two");
        assert!(shield.open_frame(&c2).is_ok());
        assert_eq!(shield.open_frame(&c1), Err(SessionError::Replay));
    }

    #[test]
    fn reflection_rejected() {
        let (mut shield, mut prog) = pair();
        let own = prog.seal_frame(b"hello");
        // The programmer receiving its own frame back must reject it.
        assert_eq!(prog.open_frame(&own), Err(SessionError::WrongDirection));
        drop(shield.open_frame(&own));
    }

    #[test]
    fn tampering_rejected_without_state_change() {
        let (mut shield, mut prog) = pair();
        let mut cmd = prog.seal_frame(b"disable-therapy");
        let n = cmd.len();
        cmd[n - 1] ^= 1;
        assert_eq!(shield.open_frame(&cmd), Err(SessionError::Auth));
        // A failed frame must not advance the replay counter: the genuine
        // frame still goes through.
        cmd[n - 1] ^= 1;
        assert!(shield.open_frame(&cmd).is_ok());
    }

    #[test]
    fn forged_future_counter_cannot_wedge() {
        let (mut shield, mut prog) = pair();
        // Adversary forges a frame claiming counter 999.
        let mut forged = prog.seal_frame(b"x");
        forged[8] = 0xFF; // bump counter field; tag now invalid
        assert_eq!(shield.open_frame(&forged), Err(SessionError::Auth));
        // Legitimate traffic continues.
        let ok = prog.seal_frame(b"y");
        assert!(shield.open_frame(&ok).is_ok());
    }

    #[test]
    fn wrong_key_rejected() {
        let mut shield = SecureSession::shield_side([1u8; 32]);
        let mut prog = SecureSession::programmer_side([2u8; 32]);
        let cmd = prog.seal_frame(b"cmd");
        assert_eq!(shield.open_frame(&cmd), Err(SessionError::Auth));
    }

    #[test]
    fn malformed_frames() {
        let (mut shield, _) = pair();
        assert_eq!(shield.open_frame(&[]), Err(SessionError::Malformed));
        assert_eq!(shield.open_frame(&[0u8; 10]), Err(SessionError::Malformed));
        let mut bad_dir = vec![0x7F];
        bad_dir.extend_from_slice(&[0u8; 40]);
        assert_eq!(shield.open_frame(&bad_dir), Err(SessionError::Malformed));
    }

    #[test]
    fn counters_track() {
        let (_, mut prog) = pair();
        assert_eq!(prog.frames_sent(), 0);
        prog.seal_frame(b"a");
        prog.seal_frame(b"b");
        assert_eq!(prog.frames_sent(), 2);
    }
}
