//! Property-based tests for the cryptographic channel.

use hb_crypto::aead::{open, seal};
use hb_crypto::chacha20::chacha20_xor;
use hb_crypto::poly1305::poly1305;
use hb_crypto::session::SecureSession;
use proptest::prelude::*;

proptest! {
    /// AEAD round-trips any key/nonce/aad/plaintext combination.
    #[test]
    fn aead_roundtrip(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        aad in prop::collection::vec(any::<u8>(), 0..64),
        pt in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let sealed = seal(&key, &nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        prop_assert_eq!(open(&key, &nonce, &aad, &sealed).unwrap(), pt);
    }

    /// Any single-byte tamper anywhere in the sealed frame is rejected.
    #[test]
    fn aead_tamper_rejected(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        pt in prop::collection::vec(any::<u8>(), 1..128),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let mut sealed = seal(&key, &nonce, b"hdr", &pt);
        let i = idx.index(sealed.len());
        sealed[i] ^= xor;
        prop_assert!(open(&key, &nonce, b"hdr", &sealed).is_err());
    }

    /// ChaCha20 XOR is an involution for any key/nonce/counter.
    #[test]
    fn chacha_involution(
        key in prop::array::uniform32(any::<u8>()),
        nonce in prop::array::uniform12(any::<u8>()),
        counter in any::<u32>(),
        data in prop::collection::vec(any::<u8>(), 0..300),
    ) {
        let mut buf = data.clone();
        chacha20_xor(&key, counter, &nonce, &mut buf);
        chacha20_xor(&key, counter, &nonce, &mut buf);
        prop_assert_eq!(buf, data);
    }

    /// Poly1305 is deterministic and message-sensitive.
    #[test]
    fn poly1305_sensitivity(
        key in prop::array::uniform32(any::<u8>()),
        msg in prop::collection::vec(any::<u8>(), 1..128),
        idx in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let t1 = poly1305(&key, &msg);
        prop_assert_eq!(poly1305(&key, &msg), t1);
        let mut tampered = msg.clone();
        let i = idx.index(tampered.len());
        tampered[i] ^= xor;
        prop_assert_ne!(poly1305(&key, &tampered), t1);
    }

    /// A session accepts messages exactly once and in order.
    #[test]
    fn session_exactly_once(
        key in prop::array::uniform32(any::<u8>()),
        msgs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..48), 1..6),
        drop_idx in any::<prop::sample::Index>(),
    ) {
        // Even with a dropped frame, later frames still verify (counters
        // may skip forward, never backward).
        let mut prog = SecureSession::programmer_side(key);
        let mut shield = SecureSession::shield_side(key);
        let dropped = drop_idx.index(msgs.len());
        for (i, m) in msgs.iter().enumerate() {
            let frame = prog.seal_frame(m);
            if i == dropped && msgs.len() > 1 {
                continue; // lost on the air
            }
            prop_assert_eq!(&shield.open_frame(&frame).unwrap(), m);
            prop_assert!(shield.open_frame(&frame).is_err(), "replay accepted");
        }
    }
}
