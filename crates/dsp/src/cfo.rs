//! Carrier frequency offset (CFO) modeling and compensation.
//!
//! Real radios' oscillators differ slightly; §6(a) notes the shield
//! "compensates for any carrier frequency offset between its RF chain and
//! that of the IMD". We model a CFO as a time-domain phasor rotation and
//! estimate it from a known tone or from the phase slope of a signal.

use crate::complex::C64;
use crate::osc::Rotator;
use std::f64::consts::PI;

/// Applies a frequency offset of `offset_hz` (and initial phase
/// `phase_rad`) to a signal sampled at `fs_hz`, starting from sample index
/// `start_index` (so block-wise application stays phase-continuous).
///
/// The tone is synthesized by a phase-recurrence [`Rotator`] — one `cis`
/// for the start phase, then one complex multiply per sample (ulp-level
/// agreement with the direct per-sample evaluation).
pub fn apply_cfo(
    signal: &[C64],
    offset_hz: f64,
    fs_hz: f64,
    start_index: u64,
    phase_rad: f64,
) -> Vec<C64> {
    let w = 2.0 * PI * offset_hz / fs_hz;
    let mut osc = Rotator::new(phase_rad + w * start_index as f64, w);
    let mut out = signal.to_vec();
    osc.rotate_in_place(&mut out);
    out
}

/// Estimates a small frequency offset from the average sample-to-sample
/// phase rotation (the classic Kay/autocorrelation-at-lag-1 estimator).
///
/// Works on any roughly constant-envelope signal (a tone, an FSK burst
/// averaged over both tones, a preamble). Unambiguous for offsets below
/// `fs/2` per sample, i.e. `|offset| < fs/2`.
pub fn estimate_cfo(signal: &[C64], fs_hz: f64) -> f64 {
    if signal.len() < 2 {
        return 0.0;
    }
    let acc: C64 = signal.windows(2).map(|w| w[1] * w[0].conj()).sum();
    acc.arg() / (2.0 * PI) * fs_hz
}

/// Removes an estimated CFO from a signal (inverse of [`apply_cfo`] with
/// zero initial phase).
pub fn correct_cfo(signal: &[C64], offset_hz: f64, fs_hz: f64) -> Vec<C64> {
    apply_cfo(signal, -offset_hz, fs_hz, 0, 0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::white_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn estimate_recovers_applied_offset() {
        let fs = 300e3;
        let sig = vec![C64::ONE; 3000];
        for &cfo in &[-5e3, -250.0, 0.0, 790.0, 12e3] {
            let shifted = apply_cfo(&sig, cfo, fs, 0, 0.3);
            let est = estimate_cfo(&shifted, fs);
            assert!((est - cfo).abs() < 1.0, "cfo {cfo}: est {est}");
        }
    }

    #[test]
    fn estimate_works_in_noise() {
        let fs = 300e3;
        let mut rng = StdRng::seed_from_u64(8);
        let clean = vec![C64::ONE; 10_000];
        let shifted = apply_cfo(&clean, 3e3, fs, 0, 0.0);
        let noise = white_noise(&mut rng, shifted.len(), 0.01); // 20 dB SNR
        let noisy: Vec<C64> = shifted.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let est = estimate_cfo(&noisy, fs);
        assert!((est - 3e3).abs() < 50.0, "est {est}");
    }

    #[test]
    fn correct_inverts_apply() {
        let fs = 300e3;
        let sig: Vec<C64> = (0..500).map(|n| C64::cis(n as f64 * 0.01)).collect();
        let shifted = apply_cfo(&sig, 4.2e3, fs, 0, 0.0);
        let back = correct_cfo(&shifted, 4.2e3, fs);
        for (a, b) in sig.iter().zip(&back) {
            assert!((*a - *b).abs() < 1e-9);
        }
    }

    #[test]
    fn blockwise_application_is_phase_continuous() {
        let fs = 300e3;
        let sig = vec![C64::ONE; 100];
        let whole = apply_cfo(&sig, 7e3, fs, 0, 0.1);
        let first = apply_cfo(&sig[..60], 7e3, fs, 0, 0.1);
        let second = apply_cfo(&sig[60..], 7e3, fs, 60, 0.1);
        let mut joined = first;
        joined.extend(second);
        for (a, b) in whole.iter().zip(&joined) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(estimate_cfo(&[], 1e5), 0.0);
        assert_eq!(estimate_cfo(&[C64::ONE], 1e5), 0.0);
    }
}
