//! Tiny integrity checksums for on-disk run state.
//!
//! The crash-safe evaluation runtime (`hb_testbed::checkpoint`) stamps
//! every journal with a length + checksum header so a torn or corrupted
//! write is detected on load and treated as "no journal" rather than
//! resumed from. The checksum is FNV-1a/64: not cryptographic, but a
//! dependency-free hash with good avalanche on short inputs — exactly the
//! right tool for detecting truncation and bit rot, which is all the
//! journal format asks of it.

/// FNV-1a 64-bit hash of `bytes`.
///
/// Uses the standard offset basis `0xcbf29ce484222325` and prime
/// `0x100000001b3`, so values match every other FNV-1a implementation —
/// journals stay checkable by external tooling.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_published_fnv1a_vectors() {
        // Reference values from the FNV specification's test suite.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn sensitive_to_order_and_truncation() {
        assert_ne!(fnv1a64(b"ab"), fnv1a64(b"ba"));
        assert_ne!(fnv1a64(b"journal"), fnv1a64(b"journa"));
        // Single-bit flips move the hash (avalanche sanity).
        let a = fnv1a64(&[0b0000_0000; 32]);
        let b = fnv1a64(&{
            let mut v = [0b0000_0000; 32];
            v[16] = 0b0000_0001;
            v
        });
        assert_ne!(a, b);
    }
}
