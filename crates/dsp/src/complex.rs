//! A minimal complex-number type for baseband signal processing.
//!
//! We deliberately implement this ourselves instead of pulling in an external
//! crate: the simulator needs only a handful of operations (arithmetic,
//! conjugation, polar conversion) and keeping the type local lets us guarantee
//! `#[repr(C)]` layout and write exhaustive property tests against it.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, DivAssign, Mul, MulAssign, Neg, Sub, SubAssign};

/// A complex number with `f64` components, used for all baseband samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[repr(C)]
pub struct C64 {
    /// Real (in-phase) component.
    pub re: f64,
    /// Imaginary (quadrature) component.
    pub im: f64,
}

impl C64 {
    /// The additive identity.
    pub const ZERO: C64 = C64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: C64 = C64 { re: 1.0, im: 0.0 };
    /// The imaginary unit `j`.
    pub const J: C64 = C64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular components.
    #[inline]
    pub const fn new(re: f64, im: f64) -> Self {
        C64 { re, im }
    }

    /// Creates a purely real complex number.
    #[inline]
    pub const fn real(re: f64) -> Self {
        C64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar form: `r * e^(j*theta)`.
    #[inline]
    pub fn from_polar(r: f64, theta: f64) -> Self {
        C64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// `e^(j*theta)` — a unit phasor at angle `theta` radians.
    #[inline]
    pub fn cis(theta: f64) -> Self {
        Self::from_polar(1.0, theta)
    }

    /// Complex conjugate.
    #[inline]
    pub fn conj(self) -> Self {
        C64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Magnitude (absolute value).
    #[inline]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude, `re^2 + im^2`. Cheaper than [`C64::abs`]; this is
    /// the instantaneous power of a baseband sample.
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Phase angle in radians, in `(-pi, pi]`.
    #[inline]
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Multiplicative inverse. Returns non-finite components when `self` is
    /// zero, mirroring `1.0 / 0.0` semantics for floats.
    #[inline]
    pub fn inv(self) -> Self {
        let d = self.norm_sq();
        C64 {
            re: self.re / d,
            im: -self.im / d,
        }
    }

    /// Scales by a real factor.
    #[inline]
    pub fn scale(self, k: f64) -> Self {
        C64 {
            re: self.re * k,
            im: self.im * k,
        }
    }

    /// Complex exponential `e^self`.
    #[inline]
    pub fn exp(self) -> Self {
        Self::from_polar(self.re.exp(), self.im)
    }

    /// Principal square root.
    #[inline]
    pub fn sqrt(self) -> Self {
        Self::from_polar(self.abs().sqrt(), self.arg() / 2.0)
    }

    /// Returns true if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl From<f64> for C64 {
    fn from(re: f64) -> Self {
        C64::real(re)
    }
}

impl fmt::Display for C64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}j", self.re, self.im)
        } else {
            write!(f, "{}{}j", self.re, self.im)
        }
    }
}

impl Add for C64 {
    type Output = C64;
    #[inline]
    fn add(self, rhs: C64) -> C64 {
        C64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for C64 {
    type Output = C64;
    #[inline]
    fn sub(self, rhs: C64) -> C64 {
        C64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        C64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Div for C64 {
    type Output = C64;
    #[inline]
    #[allow(clippy::suspicious_arithmetic_impl)] // z / w == z * w⁻¹
    fn div(self, rhs: C64) -> C64 {
        self * rhs.inv()
    }
}

impl Neg for C64 {
    type Output = C64;
    #[inline]
    fn neg(self) -> C64 {
        C64::new(-self.re, -self.im)
    }
}

impl Mul<f64> for C64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: f64) -> C64 {
        self.scale(rhs)
    }
}

impl Mul<C64> for f64 {
    type Output = C64;
    #[inline]
    fn mul(self, rhs: C64) -> C64 {
        rhs.scale(self)
    }
}

impl Div<f64> for C64 {
    type Output = C64;
    #[inline]
    fn div(self, rhs: f64) -> C64 {
        self.scale(1.0 / rhs)
    }
}

impl AddAssign for C64 {
    #[inline]
    fn add_assign(&mut self, rhs: C64) {
        *self = *self + rhs;
    }
}

impl SubAssign for C64 {
    #[inline]
    fn sub_assign(&mut self, rhs: C64) {
        *self = *self - rhs;
    }
}

impl MulAssign for C64 {
    #[inline]
    fn mul_assign(&mut self, rhs: C64) {
        *self = *self * rhs;
    }
}

impl DivAssign for C64 {
    #[inline]
    fn div_assign(&mut self, rhs: C64) {
        *self = *self / rhs;
    }
}

impl Sum for C64 {
    fn sum<I: Iterator<Item = C64>>(iter: I) -> C64 {
        iter.fold(C64::ZERO, |a, b| a + b)
    }
}

/// Average power (mean squared magnitude) of a sample slice.
///
/// Returns 0.0 for an empty slice.
pub fn mean_power(samples: &[C64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.iter().map(|s| s.norm_sq()).sum::<f64>() / samples.len() as f64
}

/// Total energy (sum of squared magnitudes) of a sample slice.
pub fn energy(samples: &[C64]) -> f64 {
    samples.iter().map(|s| s.norm_sq()).sum::<f64>()
}

/// In-place scaling of a sample slice by a real factor.
pub fn scale_in_place(samples: &mut [C64], k: f64) {
    for s in samples.iter_mut() {
        *s = s.scale(k);
    }
}

/// Inner product `<a, b> = sum(a[i] * conj(b[i]))`.
///
/// The slices must have equal length; extra samples in the longer slice are
/// ignored (zip semantics).
pub fn inner_product(a: &[C64], b: &[C64]) -> C64 {
    a.iter().zip(b.iter()).map(|(&x, &y)| x * y.conj()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    const EPS: f64 = 1e-12;

    fn close(a: C64, b: C64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = C64::new(1.5, -2.5);
        let b = C64::new(-0.25, 4.0);
        assert!(close(a + b - b, a));
    }

    #[test]
    fn mul_matches_expansion() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(-1.0, 2.0);
        // (3+4j)(-1+2j) = -3 + 6j - 4j + 8j^2 = -11 + 2j
        assert!(close(a * b, C64::new(-11.0, 2.0)));
    }

    #[test]
    fn div_is_mul_inverse() {
        let a = C64::new(3.0, 4.0);
        let b = C64::new(-1.0, 2.0);
        assert!(close(a / b * b, a));
    }

    #[test]
    fn conj_mul_is_norm_sq() {
        let a = C64::new(3.0, 4.0);
        let p = a * a.conj();
        assert!((p.re - 25.0).abs() < EPS);
        assert!(p.im.abs() < EPS);
    }

    #[test]
    fn polar_roundtrip() {
        let a = C64::from_polar(2.0, 0.7);
        assert!((a.abs() - 2.0).abs() < EPS);
        assert!((a.arg() - 0.7).abs() < EPS);
    }

    #[test]
    fn cis_is_unit() {
        for k in 0..16 {
            let theta = k as f64 * 0.41;
            assert!((C64::cis(theta).abs() - 1.0).abs() < EPS);
        }
    }

    #[test]
    fn exp_of_j_pi_is_minus_one() {
        let e = C64::new(0.0, std::f64::consts::PI).exp();
        assert!(close(e, C64::new(-1.0, 0.0)));
    }

    #[test]
    fn sqrt_squares_back() {
        let a = C64::new(-3.0, 4.0);
        let r = a.sqrt();
        assert!(close(r * r, a));
    }

    #[test]
    fn mean_power_of_unit_phasors_is_one() {
        let v: Vec<C64> = (0..100).map(|k| C64::cis(k as f64)).collect();
        assert!((mean_power(&v) - 1.0).abs() < EPS);
    }

    #[test]
    fn mean_power_empty_is_zero() {
        assert_eq!(mean_power(&[]), 0.0);
    }

    #[test]
    fn inner_product_orthogonal_tones() {
        let n = 64;
        let a: Vec<C64> = (0..n)
            .map(|k| C64::cis(2.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        let b: Vec<C64> = (0..n)
            .map(|k| C64::cis(4.0 * std::f64::consts::PI * k as f64 / n as f64))
            .collect();
        assert!(inner_product(&a, &b).abs() < 1e-9);
        assert!((inner_product(&a, &a).re - n as f64).abs() < 1e-9);
    }

    #[test]
    fn scale_in_place_doubles_power() {
        let mut v = vec![C64::new(1.0, 1.0); 8];
        let p0 = mean_power(&v);
        scale_in_place(&mut v, std::f64::consts::SQRT_2);
        assert!((mean_power(&v) - 2.0 * p0).abs() < 1e-9);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(format!("{}", C64::new(1.0, 2.0)), "1+2j");
        assert_eq!(format!("{}", C64::new(1.0, -2.0)), "1-2j");
    }
}
