//! Blocked multi-phase matched-filter correlator — the streaming
//! detection front end shared by `hb_phy`'s `StreamingDetector` and
//! `SidMonitor`.
//!
//! # The problem it solves
//!
//! A streaming FSK receiver does not know where symbol boundaries fall, so
//! it correlates the incoming samples against both tone templates at
//! **every** sub-symbol alignment ("phase") simultaneously: with `sps`
//! samples per symbol it maintains `sps` pairs of tone accumulators
//! `(c0, c1)`, and exactly one phase completes a symbol on every sample.
//! Done naively (one pass over all phases per sample, each reading a
//! different matched-filter position) this was the simulator's largest
//! remaining kernel: the per-phase filter positions walk *backwards*
//! through the template and the accumulators interleave `(c0, c1)` pairs,
//! so the compiler cannot vectorize the sweep.
//!
//! # The blocked kernel
//!
//! [`MultiPhaseCorrelator`] restructures the sweep so the hot loop is a
//! dense, branch-free, **forward** pass the compiler autovectorizes, like
//! [`crate::kernels::boxmuller_batch`]:
//!
//! * Accumulators are stored **structure-of-arrays**: contiguous
//!   `[c0; sps]` then `[c1; sps]` slabs (split further into re/im planes),
//!   so phase `p`'s update touches four contiguous `f64` streams.
//! * The matched-filter tables are stored **reversed and doubled**
//!   (`w[i] = mf[(sps-1-i) mod sps]`, length `2·sps`): for a sample at
//!   symbol offset `base`, the template value phase `p` needs is
//!   `w[(sps-1-base) + p]` — a *forward, contiguous* window into the
//!   table, for every phase, with no modulo in the loop.
//! * When the two tone templates are exact conjugates (always true for
//!   binary FSK, whose tones sit at ±deviation), the four shared products
//!   `s·re`, `s·im` per component serve **both** tones, halving the
//!   multiply count. The fast path is taken only when the tables are
//!   bitwise conjugates, and produces bit-identical sums either way.
//!
//! The per-sample cost is unchanged in operation *count* (`2·sps` complex
//! MACs — each accumulator still sees the exact same additions in the
//! exact same order), but the loop body is straight-line elementwise
//! arithmetic over disjoint slices, which is what lets LLVM vectorize it.
//!
//! # Determinism contract
//!
//! Results are **bit-for-bit identical** to the historical per-sample
//! sweep: every product is the same two-operand `a.re*b.re - a.im*b.im` /
//! `a.re*b.im + a.im*b.re` complex multiply, every accumulator receives
//! its contributions in the same order, and the emitted energies are the
//! same `re² + im²`. They are also independent of how a stream is chunked
//! into [`MultiPhaseCorrelator::process_block`] calls (pinned by unit and
//! property tests, and by `hb_phy`'s old-vs-new detector equivalence
//! suite). The golden determinism tests in `crates/testbed/tests/golden.rs`
//! therefore pass unchanged across this kernel swap — no re-capture.
//!
//! # Example
//!
//! ```
//! use hb_dsp::complex::C64;
//! use hb_dsp::correlator::MultiPhaseCorrelator;
//! use std::f64::consts::PI;
//!
//! // 4 samples/symbol at fs = 8 Hz; tones at -1 Hz (bit 0) and +1 Hz (bit 1).
//! let sps = 4usize;
//! let table = |f: f64| -> Vec<C64> {
//!     (0..sps).map(|n| C64::cis(-2.0 * PI * f * n as f64 / 8.0)).collect()
//! };
//! let mut corr = MultiPhaseCorrelator::new(&table(-1.0), &table(1.0));
//!
//! // Two symbols of a pure +1 Hz tone ("1" bits), symbol-aligned.
//! let samples: Vec<C64> = (0..8).map(|n| C64::cis(2.0 * PI * n as f64 / 8.0)).collect();
//! let (mut e0, mut e1) = (Vec::new(), Vec::new());
//! corr.process_block(&samples, 0, &mut e0, &mut e1);
//!
//! // Sample 3 completes phase 0's first full symbol: the 1-tone wins.
//! assert_eq!(e0.len(), 8);
//! assert!(e1[3] > e0[3]);
//! assert!(e1[7] > e0[7]);
//! ```

use crate::complex::C64;

/// A bank of `sps` per-phase `(c0, c1)` tone accumulators driven by a
/// dense, autovectorizable per-sample MAC loop. See the module docs for
/// the layout and determinism contract.
#[derive(Debug, Clone)]
pub struct MultiPhaseCorrelator {
    sps: usize,
    /// Reversed, doubled tone-0 template (re plane): `w0re[i]` is the real
    /// part of `mf0[(sps-1-i) mod sps]`, for `i` in `0..2·sps`.
    w0re: Vec<f64>,
    /// Reversed, doubled tone-0 template (im plane).
    w0im: Vec<f64>,
    /// Reversed, doubled tone-1 template (re plane) — unused on the fused
    /// conjugate-pair fast path.
    w1re: Vec<f64>,
    /// Reversed, doubled tone-1 template (im plane).
    w1im: Vec<f64>,
    /// True when `mf1[i]` is bitwise `conj(mf0[i])` for every `i` (binary
    /// FSK's ±deviation tones): enables the shared-product fast path,
    /// which is bit-identical to the generic path under this precondition.
    conj_pair: bool,
    /// Per-phase accumulators, structure-of-arrays: `c0` re/im planes then
    /// `c1` re/im planes, each `sps` long.
    a0re: Vec<f64>,
    a0im: Vec<f64>,
    a1re: Vec<f64>,
    a1im: Vec<f64>,
}

impl MultiPhaseCorrelator {
    /// Creates a correlator for one-symbol tone templates `mf0`/`mf1`
    /// (typically `cis(-2π f n / fs)` for the two FSK tones).
    ///
    /// # Panics
    /// Panics if the templates are empty or of different lengths.
    pub fn new(mf0: &[C64], mf1: &[C64]) -> Self {
        assert!(!mf0.is_empty(), "tone templates must not be empty");
        assert_eq!(
            mf0.len(),
            mf1.len(),
            "tone templates must be the same length"
        );
        let sps = mf0.len();
        // Reversed and doubled: w[i] = mf[(sps-1-i) mod sps]. A sample at
        // symbol offset `base` then reads the contiguous window starting
        // at sps-1-base, one template value per phase, no modulo.
        let rev = |mf: &[C64], f: fn(C64) -> f64| -> Vec<f64> {
            (0..2 * sps)
                .map(|i| f(mf[(2 * sps - 1 - i) % sps]))
                .collect()
        };
        let conj_pair = mf0
            .iter()
            .zip(mf1.iter())
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && (-a.im).to_bits() == b.im.to_bits());
        MultiPhaseCorrelator {
            sps,
            w0re: rev(mf0, |c| c.re),
            w0im: rev(mf0, |c| c.im),
            w1re: rev(mf1, |c| c.re),
            w1im: rev(mf1, |c| c.im),
            conj_pair,
            a0re: vec![0.0; sps],
            a0im: vec![0.0; sps],
            a1re: vec![0.0; sps],
            a1im: vec![0.0; sps],
        }
    }

    /// Samples per symbol (the number of phases swept).
    pub fn sps(&self) -> usize {
        self.sps
    }

    /// Zeroes every phase accumulator (the tables are immutable).
    pub fn reset(&mut self) {
        for a in [
            &mut self.a0re,
            &mut self.a0im,
            &mut self.a1re,
            &mut self.a1im,
        ] {
            a.fill(0.0);
        }
    }

    /// Consumes `samples`, appending one `(e0, e1)` energy pair per sample
    /// to `e0_out`/`e1_out`.
    ///
    /// `base0` is the symbol offset of the first sample (`tick mod sps` in
    /// the caller's sample clock). The sample at offset `base` completes
    /// the symbol of phase `(base + 1) mod sps`: its accumulated tone
    /// correlations are emitted as squared magnitudes and the phase's
    /// accumulators are zeroed for the next symbol. Callers recover the
    /// completing phase as `(tick + 1) mod sps`.
    ///
    /// Output is appended (the buffers are not cleared), and is identical
    /// no matter how a stream is split across calls.
    ///
    /// # Panics
    /// Panics if `base0 >= sps`.
    pub fn process_block(
        &mut self,
        samples: &[C64],
        base0: usize,
        e0_out: &mut Vec<f64>,
        e1_out: &mut Vec<f64>,
    ) {
        assert!(base0 < self.sps, "base0 {base0} out of range");
        e0_out.reserve(samples.len());
        e1_out.reserve(samples.len());
        if self.conj_pair {
            mac_block_fused(
                samples,
                base0,
                &self.w0re,
                &self.w0im,
                &mut self.a0re,
                &mut self.a0im,
                &mut self.a1re,
                &mut self.a1im,
                e0_out,
                e1_out,
            );
        } else {
            mac_block_generic(
                samples,
                base0,
                [&self.w0re, &self.w0im, &self.w1re, &self.w1im],
                &mut self.a0re,
                &mut self.a0im,
                &mut self.a1re,
                &mut self.a1im,
                e0_out,
                e1_out,
            );
        }
    }
}

/// The fused conjugate-pair MAC stage: mf1 = conj(mf0), so the four
/// products `sr·tr`, `si·ti`, `sr·ti`, `si·tr` serve both tones —
/// bit-identical to the generic path (multiplying by a negated factor
/// negates the product exactly, and `x−(−y) ≡ x+y` in IEEE 754).
///
/// A standalone function on purpose (and `inline(never)`): the `&mut`
/// slice parameters carry `noalias` across the call boundary, which is
/// what lets LLVM vectorize the inner loop without emitting runtime
/// alias checks between the accumulator planes and the table windows on
/// every sample. (Inlined into the caller, everything is reached through
/// `self` and the vectorizer guards each sample with a pile of overlap
/// tests — measurably slower than the scalar sweep it replaces.)
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn mac_block_fused(
    samples: &[C64],
    base0: usize,
    wre: &[f64],
    wim: &[f64],
    a0r: &mut [f64],
    a0i: &mut [f64],
    a1r: &mut [f64],
    a1i: &mut [f64],
    e0_out: &mut Vec<f64>,
    e1_out: &mut Vec<f64>,
) {
    let sps = a0r.len();
    let a0i = &mut a0i[..sps];
    let a1r = &mut a1r[..sps];
    let a1i = &mut a1i[..sps];
    let mut base = base0;
    // Samples are consumed two at a time: the accumulator planes are then
    // loaded and stored once per *pair* instead of once per sample, which
    // halves the store traffic the loop is actually bound by. Both
    // contributions are applied as two sequential adds per lane, so every
    // accumulator sees the exact rounding sequence of the one-sample-at-a-
    // time walk. The one phase that completes *between* the two samples
    // (`p1`) gets a scalar pre-step (its energies read the state after the
    // first sample only) and a post-loop fix-up (its fresh symbol restarts
    // from zero plus the second sample's contribution) — both computed
    // with the identical products and adds, so the pair walk is
    // bit-for-bit the same as the scalar walk.
    let mut pairs = samples.chunks_exact(2);
    for pair in &mut pairs {
        let (sr0, si0) = (pair[0].re, pair[0].im);
        let (sr1, si1) = (pair[1].re, pair[1].im);
        let start0 = sps - 1 - base;
        let p1 = if base + 1 == sps { 0 } else { base + 1 };
        let start1 = sps - 1 - p1;
        let p2 = if p1 + 1 == sps { 0 } else { p1 + 1 };

        // Phase p1 completes after the first sample: extract its energies
        // from (carried + first contribution) before the pair loop runs.
        let (wr, wi) = (wre[start0 + p1], wim[start0 + p1]);
        let t1 = sr0 * wr;
        let t2 = si0 * wi;
        let t3 = sr0 * wi;
        let t4 = si0 * wr;
        let i0r = a0r[p1] + (t1 - t2);
        let i0i = a0i[p1] + (t3 + t4);
        let i1r = a1r[p1] + (t1 + t2);
        let i1i = a1i[p1] + (t4 - t3);
        e0_out.push(i0r * i0r + i0i * i0i);
        e1_out.push(i1r * i1r + i1i * i1i);

        let wr0 = &wre[start0..start0 + sps];
        let wi0 = &wim[start0..start0 + sps];
        let wr1 = &wre[start1..start1 + sps];
        let wi1 = &wim[start1..start1 + sps];
        for p in 0..sps {
            let t1 = sr0 * wr0[p];
            let t2 = si0 * wi0[p];
            let t3 = sr0 * wi0[p];
            let t4 = si0 * wr0[p];
            let mut r0 = a0r[p] + (t1 - t2);
            let mut i0 = a0i[p] + (t3 + t4);
            let mut r1 = a1r[p] + (t1 + t2);
            let mut i1 = a1i[p] + (t4 - t3);
            let u1 = sr1 * wr1[p];
            let u2 = si1 * wi1[p];
            let u3 = sr1 * wi1[p];
            let u4 = si1 * wr1[p];
            r0 += u1 - u2;
            i0 += u3 + u4;
            r1 += u1 + u2;
            i1 += u4 - u3;
            a0r[p] = r0;
            a0i[p] = i0;
            a1r[p] = r1;
            a1i[p] = i1;
        }

        // Fix up p1: its completed symbol was emitted above, so its fresh
        // accumulator restarts from zero plus the second sample's
        // contribution (`0.0 + x`, exactly as the scalar walk computes it).
        let (wr, wi) = (wre[start1 + p1], wim[start1 + p1]);
        let u1 = sr1 * wr;
        let u2 = si1 * wi;
        let u3 = sr1 * wi;
        let u4 = si1 * wr;
        a0r[p1] = 0.0 + (u1 - u2);
        a0i[p1] = 0.0 + (u3 + u4);
        a1r[p1] = 0.0 + (u1 + u2);
        a1i[p1] = 0.0 + (u4 - u3);

        // Phase p2 completes after the second sample: extract and clear.
        e0_out.push(a0r[p2] * a0r[p2] + a0i[p2] * a0i[p2]);
        e1_out.push(a1r[p2] * a1r[p2] + a1i[p2] * a1i[p2]);
        a0r[p2] = 0.0;
        a0i[p2] = 0.0;
        a1r[p2] = 0.0;
        a1i[p2] = 0.0;
        base = p2;
    }
    // Odd trailing sample: the plain one-sample walk.
    for &s in pairs.remainder() {
        let (sr, si) = (s.re, s.im);
        let start = sps - 1 - base;
        let wr = &wre[start..start + sps];
        let wi = &wim[start..start + sps];
        for p in 0..sps {
            let t1 = sr * wr[p];
            let t2 = si * wi[p];
            let t3 = sr * wi[p];
            let t4 = si * wr[p];
            a0r[p] += t1 - t2;
            a0i[p] += t3 + t4;
            a1r[p] += t1 + t2;
            a1i[p] += t4 - t3;
        }
        let p = if base + 1 == sps { 0 } else { base + 1 };
        e0_out.push(a0r[p] * a0r[p] + a0i[p] * a0i[p]);
        e1_out.push(a1r[p] * a1r[p] + a1i[p] * a1i[p]);
        a0r[p] = 0.0;
        a0i[p] = 0.0;
        a1r[p] = 0.0;
        a1i[p] = 0.0;
        base = p;
    }
}

/// The generic two-table MAC stage (templates with no conjugate
/// relation). Same structure and `noalias` rationale as
/// [`mac_block_fused`].
#[allow(clippy::too_many_arguments)]
#[inline(never)]
fn mac_block_generic(
    samples: &[C64],
    base0: usize,
    tables: [&[f64]; 4],
    a0r: &mut [f64],
    a0i: &mut [f64],
    a1r: &mut [f64],
    a1i: &mut [f64],
    e0_out: &mut Vec<f64>,
    e1_out: &mut Vec<f64>,
) {
    let [w0re, w0im, w1re, w1im] = tables;
    let sps = a0r.len();
    let a0i = &mut a0i[..sps];
    let a1r = &mut a1r[..sps];
    let a1i = &mut a1i[..sps];
    let mut base = base0;
    for &s in samples {
        let (sr, si) = (s.re, s.im);
        let start = sps - 1 - base;
        let w0r = &w0re[start..start + sps];
        let w0i = &w0im[start..start + sps];
        let w1r = &w1re[start..start + sps];
        let w1i = &w1im[start..start + sps];
        for p in 0..sps {
            a0r[p] += sr * w0r[p] - si * w0i[p];
            a0i[p] += sr * w0i[p] + si * w0r[p];
            a1r[p] += sr * w1r[p] - si * w1i[p];
            a1i[p] += sr * w1i[p] + si * w1r[p];
        }
        let p = if base + 1 == sps { 0 } else { base + 1 };
        e0_out.push(a0r[p] * a0r[p] + a0i[p] * a0i[p]);
        e1_out.push(a1r[p] * a1r[p] + a1i[p] * a1i[p]);
        a0r[p] = 0.0;
        a0i[p] = 0.0;
        a1r[p] = 0.0;
        a1i[p] = 0.0;
        base = p;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    use std::f64::consts::PI;

    /// The historical per-sample sweep (PR 1–4's `sweep_phases`): the
    /// semantic and bit-exactness reference for the blocked kernel.
    fn naive_sweep(
        mf0: &[C64],
        mf1: &[C64],
        samples: &[C64],
        base0: usize,
        accum: &mut [(C64, C64)],
    ) -> (Vec<f64>, Vec<f64>) {
        let sps = mf0.len();
        let (mut e0s, mut e1s) = (Vec::new(), Vec::new());
        let mut base = base0;
        for &s in samples {
            for (p, acc) in accum[..=base].iter_mut().enumerate() {
                let pos = base - p;
                acc.0 += s * mf0[pos];
                acc.1 += s * mf1[pos];
            }
            for (off, acc) in accum[base + 1..].iter_mut().enumerate() {
                let pos = sps - 1 - off;
                acc.0 += s * mf0[pos];
                acc.1 += s * mf1[pos];
            }
            let p = (base + 1) % sps;
            e0s.push(accum[p].0.norm_sq());
            e1s.push(accum[p].1.norm_sq());
            accum[p] = (C64::ZERO, C64::ZERO);
            base = p;
        }
        (e0s, e1s)
    }

    fn fsk_tables(sps: usize, dev_frac: f64) -> (Vec<C64>, Vec<C64>) {
        let make = |f: f64| -> Vec<C64> {
            (0..sps)
                .map(|n| C64::cis(-2.0 * PI * f * n as f64 / sps as f64))
                .collect()
        };
        (make(-dev_frac), make(dev_frac))
    }

    fn random_samples(rng: &mut StdRng, n: usize) -> Vec<C64> {
        (0..n)
            .map(|_| C64::new(rng.gen::<f64>() - 0.5, rng.gen::<f64>() - 0.5))
            .collect()
    }

    #[test]
    fn matches_naive_sweep_bit_for_bit_fsk_tables() {
        // Real FSK tables (conjugate tone pair -> fused fast path).
        let mut rng = StdRng::seed_from_u64(21);
        for sps in [1usize, 2, 3, 8, 24] {
            let (mf0, mf1) = fsk_tables(sps, 4.0);
            let samples = random_samples(&mut rng, 5 * sps + 3);
            for base0 in [0, sps - 1, sps / 2] {
                let mut corr = MultiPhaseCorrelator::new(&mf0, &mf1);
                let (mut e0, mut e1) = (Vec::new(), Vec::new());
                corr.process_block(&samples, base0, &mut e0, &mut e1);
                let mut accum = vec![(C64::ZERO, C64::ZERO); sps];
                let (r0, r1) = naive_sweep(&mf0, &mf1, &samples, base0, &mut accum);
                for i in 0..samples.len() {
                    assert_eq!(e0[i].to_bits(), r0[i].to_bits(), "sps {sps} e0[{i}]");
                    assert_eq!(e1[i].to_bits(), r1[i].to_bits(), "sps {sps} e1[{i}]");
                }
            }
        }
    }

    #[test]
    fn matches_naive_sweep_bit_for_bit_arbitrary_tables() {
        // Unrelated tables (no conjugate structure -> generic path).
        let mut rng = StdRng::seed_from_u64(33);
        let sps = 7;
        let mf0: Vec<C64> = random_samples(&mut rng, sps);
        let mf1: Vec<C64> = random_samples(&mut rng, sps);
        let samples = random_samples(&mut rng, 100);
        let mut corr = MultiPhaseCorrelator::new(&mf0, &mf1);
        assert!(!corr.conj_pair, "random tables must take the generic path");
        let (mut e0, mut e1) = (Vec::new(), Vec::new());
        corr.process_block(&samples, 3, &mut e0, &mut e1);
        let mut accum = vec![(C64::ZERO, C64::ZERO); sps];
        let (r0, r1) = naive_sweep(&mf0, &mf1, &samples, 3, &mut accum);
        for i in 0..samples.len() {
            assert_eq!(e0[i].to_bits(), r0[i].to_bits(), "e0[{i}]");
            assert_eq!(e1[i].to_bits(), r1[i].to_bits(), "e1[{i}]");
        }
    }

    #[test]
    fn fsk_tables_take_the_fused_path() {
        // The ±deviation FSK tone tables are exact conjugates on this
        // platform's libm, so the shared-product path must engage.
        let (mf0, mf1) = fsk_tables(24, 4.0);
        let corr = MultiPhaseCorrelator::new(&mf0, &mf1);
        assert!(corr.conj_pair);
    }

    #[test]
    fn chunking_does_not_change_the_output() {
        let mut rng = StdRng::seed_from_u64(55);
        let sps = 24;
        let (mf0, mf1) = fsk_tables(sps, 4.0);
        let samples = random_samples(&mut rng, 400);
        let mut whole = MultiPhaseCorrelator::new(&mf0, &mf1);
        let (mut e0w, mut e1w) = (Vec::new(), Vec::new());
        whole.process_block(&samples, 0, &mut e0w, &mut e1w);
        let mut chunked = MultiPhaseCorrelator::new(&mf0, &mf1);
        let (mut e0c, mut e1c) = (Vec::new(), Vec::new());
        let mut off = 0usize;
        for n in [1usize, 7, 16, 23, 24, 25, 100, 400] {
            let take = n.min(samples.len() - off);
            chunked.process_block(&samples[off..off + take], off % sps, &mut e0c, &mut e1c);
            off += take;
            if off == samples.len() {
                break;
            }
        }
        assert_eq!(off, samples.len());
        for i in 0..samples.len() {
            assert_eq!(e0w[i].to_bits(), e0c[i].to_bits(), "e0[{i}]");
            assert_eq!(e1w[i].to_bits(), e1c[i].to_bits(), "e1[{i}]");
        }
    }

    #[test]
    fn reset_clears_partial_symbols() {
        let mut rng = StdRng::seed_from_u64(77);
        let sps = 6;
        let (mf0, mf1) = fsk_tables(sps, 2.0);
        let samples = random_samples(&mut rng, 50);
        let mut a = MultiPhaseCorrelator::new(&mf0, &mf1);
        let (mut e0, mut e1) = (Vec::new(), Vec::new());
        // Pollute with a partial block, then reset.
        a.process_block(&samples[..4], 0, &mut e0, &mut e1);
        a.reset();
        e0.clear();
        e1.clear();
        a.process_block(&samples, 0, &mut e0, &mut e1);
        let mut fresh = MultiPhaseCorrelator::new(&mf0, &mf1);
        let (mut f0, mut f1) = (Vec::new(), Vec::new());
        fresh.process_block(&samples, 0, &mut f0, &mut f1);
        for i in 0..samples.len() {
            assert_eq!(e0[i].to_bits(), f0[i].to_bits(), "e0[{i}]");
            assert_eq!(e1[i].to_bits(), f1[i].to_bits(), "e1[{i}]");
        }
    }

    #[test]
    fn output_is_appended_not_overwritten() {
        let (mf0, mf1) = fsk_tables(4, 1.0);
        let mut corr = MultiPhaseCorrelator::new(&mf0, &mf1);
        let (mut e0, mut e1) = (vec![-1.0], vec![-2.0]);
        corr.process_block(&[C64::ONE; 3], 0, &mut e0, &mut e1);
        assert_eq!(e0.len(), 4);
        assert_eq!(e0[0], -1.0);
        assert_eq!(e1[0], -2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_base() {
        let (mf0, mf1) = fsk_tables(4, 1.0);
        let mut corr = MultiPhaseCorrelator::new(&mf0, &mf1);
        corr.process_block(&[C64::ONE], 4, &mut Vec::new(), &mut Vec::new());
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn rejects_empty_tables() {
        let _ = MultiPhaseCorrelator::new(&[], &[]);
    }
}
