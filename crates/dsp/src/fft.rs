//! Radix-2 fast Fourier transform.
//!
//! A straightforward iterative Cooley–Tukey implementation. Sizes must be
//! powers of two; callers that need other lengths zero-pad (see
//! [`next_pow2`]). Twiddle factors are cached in an [`FftPlan`] so repeated
//! transforms of the same size (the common case: the jammer shapes noise in
//! fixed-size blocks) avoid recomputing them.

use crate::complex::C64;
use std::f64::consts::PI;

/// Smallest power of two `>= n` (and at least 1).
pub fn next_pow2(n: usize) -> usize {
    n.max(1).next_power_of_two()
}

/// Returns true if `n` is a power of two.
pub fn is_pow2(n: usize) -> bool {
    n != 0 && n & (n - 1) == 0
}

/// A reusable FFT plan for a fixed power-of-two size.
#[derive(Debug, Clone)]
pub struct FftPlan {
    n: usize,
    /// Forward twiddles for each butterfly stage, flattened.
    twiddles: Vec<C64>,
}

impl FftPlan {
    /// Creates a plan for transforms of length `n` (must be a power of two).
    ///
    /// # Panics
    /// Panics if `n` is not a power of two.
    pub fn new(n: usize) -> Self {
        assert!(is_pow2(n), "FFT size must be a power of two, got {n}");
        // Precompute e^{-2 pi j k / n} for k in 0..n/2.
        let half = n / 2;
        let twiddles = (0..half)
            .map(|k| C64::cis(-2.0 * PI * k as f64 / n as f64))
            .collect();
        FftPlan { n, twiddles }
    }

    /// Transform size.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Returns true for the degenerate size-0 plan (never constructible; kept
    /// for API completeness with `len`).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// In-place forward FFT (no normalization).
    ///
    /// # Panics
    /// Panics if `data.len() != self.len()`.
    pub fn forward(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.transform(data, false);
    }

    /// In-place inverse FFT with `1/n` normalization, so
    /// `inverse(forward(x)) == x`.
    pub fn inverse(&self, data: &mut [C64]) {
        assert_eq!(data.len(), self.n, "buffer length mismatch");
        self.transform(data, true);
        let k = 1.0 / self.n as f64;
        for v in data.iter_mut() {
            *v = v.scale(k);
        }
    }

    fn transform(&self, data: &mut [C64], inverse: bool) {
        let n = self.n;
        if n <= 1 {
            return;
        }
        // Bit-reversal permutation.
        let shift = (n as u64).leading_zeros() + 1;
        for i in 0..n {
            let j = (i as u64).reverse_bits().wrapping_shr(shift) as usize;
            if j > i {
                data.swap(i, j);
            }
        }
        // Iterative butterflies.
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            let stride = n / len; // step through the cached twiddle table
            for start in (0..n).step_by(len) {
                for k in 0..half {
                    let mut w = self.twiddles[k * stride];
                    if inverse {
                        w = w.conj();
                    }
                    let a = data[start + k];
                    let b = data[start + k + half] * w;
                    data[start + k] = a + b;
                    data[start + k + half] = a - b;
                }
            }
            len *= 2;
        }
    }
}

/// One-shot forward FFT returning a new vector. Input is zero-padded to the
/// next power of two if needed.
pub fn fft(input: &[C64]) -> Vec<C64> {
    let n = next_pow2(input.len());
    let mut buf = vec![C64::ZERO; n];
    buf[..input.len()].copy_from_slice(input);
    FftPlan::new(n).forward(&mut buf);
    buf
}

/// One-shot inverse FFT returning a new vector (input length must be a power
/// of two).
pub fn ifft(input: &[C64]) -> Vec<C64> {
    assert!(
        is_pow2(input.len()),
        "ifft input must be power-of-two sized"
    );
    let mut buf = input.to_vec();
    FftPlan::new(buf.len()).inverse(&mut buf);
    buf
}

/// Rotates a spectrum so the DC bin sits in the middle (for plotting /
/// profile extraction). For even `n`, bin `n/2` becomes the most negative
/// frequency.
pub fn fftshift<T: Copy>(spectrum: &[T]) -> Vec<T> {
    let n = spectrum.len();
    let half = n.div_ceil(2);
    let mut out = Vec::with_capacity(n);
    out.extend_from_slice(&spectrum[half..]);
    out.extend_from_slice(&spectrum[..half]);
    out
}

/// Frequency in Hz of FFT bin `k` for an `n`-point transform at sample rate
/// `fs`, using the signed convention (bins above `n/2` are negative).
pub fn bin_freq_hz(k: usize, n: usize, fs: f64) -> f64 {
    let k = k % n;
    if k <= n / 2 {
        k as f64 * fs / n as f64
    } else {
        (k as f64 - n as f64) * fs / n as f64
    }
}

/// Naive O(n^2) DFT used as a test oracle.
#[doc(hidden)]
pub fn dft_reference(input: &[C64]) -> Vec<C64> {
    let n = input.len();
    (0..n)
        .map(|k| {
            (0..n)
                .map(|t| input[t] * C64::cis(-2.0 * PI * (k * t) as f64 / n as f64))
                .sum()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::complex::mean_power;

    fn assert_close(a: &[C64], b: &[C64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            assert!((x - y).abs() < tol, "mismatch at {i}: {x} vs {y}");
        }
    }

    #[test]
    fn matches_reference_dft() {
        let input: Vec<C64> = (0..32)
            .map(|i| C64::new((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let fast = fft(&input);
        let slow = dft_reference(&input);
        assert_close(&fast, &slow, 1e-9);
    }

    #[test]
    fn roundtrip_identity() {
        let input: Vec<C64> = (0..256)
            .map(|i| C64::new((i as f64).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let back = ifft(&fft(&input));
        assert_close(&back, &input, 1e-9);
    }

    #[test]
    fn impulse_transforms_to_flat() {
        let mut input = vec![C64::ZERO; 64];
        input[0] = C64::ONE;
        let spec = fft(&input);
        for v in spec {
            assert!((v - C64::ONE).abs() < 1e-10);
        }
    }

    #[test]
    fn tone_lands_in_single_bin() {
        let n = 128;
        let k0 = 5;
        let input: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * PI * (k0 * t) as f64 / n as f64))
            .collect();
        let spec = fft(&input);
        for (k, v) in spec.iter().enumerate() {
            if k == k0 {
                assert!((v.abs() - n as f64).abs() < 1e-8);
            } else {
                assert!(v.abs() < 1e-8, "leakage at bin {k}");
            }
        }
    }

    #[test]
    fn parseval_energy_conservation() {
        let input: Vec<C64> = (0..64)
            .map(|i| C64::new((i as f64 * 0.11).cos(), (i as f64 * 0.23).sin()))
            .collect();
        let spec = fft(&input);
        let time_energy: f64 = input.iter().map(|v| v.norm_sq()).sum();
        let freq_energy: f64 = spec.iter().map(|v| v.norm_sq()).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-8);
    }

    #[test]
    fn linearity() {
        let a: Vec<C64> = (0..32).map(|i| C64::new(i as f64, 0.0)).collect();
        let b: Vec<C64> = (0..32).map(|i| C64::new(0.0, (i * i) as f64)).collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fsum = fft(&sum);
        let combined: Vec<C64> = fa.iter().zip(&fb).map(|(&x, &y)| x + y).collect();
        assert_close(&fsum, &combined, 1e-8);
    }

    #[test]
    fn zero_pads_non_pow2_input() {
        let input = vec![C64::ONE; 100];
        let spec = fft(&input);
        assert_eq!(spec.len(), 128);
    }

    #[test]
    fn fftshift_even_and_odd() {
        assert_eq!(fftshift(&[0, 1, 2, 3]), vec![2, 3, 0, 1]);
        assert_eq!(fftshift(&[0, 1, 2, 3, 4]), vec![3, 4, 0, 1, 2]);
    }

    #[test]
    fn bin_freqs_are_signed() {
        let fs = 300e3;
        let n = 8;
        assert_eq!(bin_freq_hz(0, n, fs), 0.0);
        assert!((bin_freq_hz(1, n, fs) - 37.5e3).abs() < 1e-9);
        assert!((bin_freq_hz(7, n, fs) + 37.5e3).abs() < 1e-9);
        assert!((bin_freq_hz(4, n, fs) - 150e3).abs() < 1e-9);
    }

    #[test]
    fn size_one_and_two() {
        let one = fft(&[C64::new(3.0, -1.0)]);
        assert_close(&one, &[C64::new(3.0, -1.0)], 1e-12);
        let two = fft(&[C64::ONE, C64::ONE]);
        assert_close(&two, &[C64::new(2.0, 0.0), C64::ZERO], 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn plan_rejects_non_pow2() {
        let _ = FftPlan::new(48);
    }

    #[test]
    fn ifft_preserves_noise_power() {
        // White spectrum of unit-power bins -> unit-power time signal.
        let n = 1024;
        let spec: Vec<C64> = (0..n).map(|k| C64::cis(k as f64 * 2.399)).collect();
        let time = ifft(&spec);
        // Power scales by 1/n after IFFT normalization.
        assert!((mean_power(&time) - 1.0 / n as f64).abs() < 1e-12);
    }
}
