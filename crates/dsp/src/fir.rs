//! FIR filter design (windowed-sinc) and streaming filtering.
//!
//! The shield's wideband front end channelizes the 3 MHz MICS band with
//! per-channel band-pass filters (§7(c) of the paper), and the band-pass
//! filtering *attack* on unshaped jamming (§6(a)) needs narrow filters around
//! the FSK mark/space tones. Both are built here.

use crate::complex::C64;
use crate::special::sinc;
use crate::window::Window;
use std::collections::VecDeque;
use std::f64::consts::PI;

/// Designs a linear-phase low-pass FIR prototype with the windowed-sinc
/// method.
///
/// * `cutoff_hz` — one-sided cutoff.
/// * `fs_hz` — sample rate.
/// * `taps` — filter length (forced odd so the filter has a symmetric
///   center tap).
pub fn design_lowpass(cutoff_hz: f64, fs_hz: f64, taps: usize, window: Window) -> Vec<f64> {
    assert!(
        cutoff_hz > 0.0 && cutoff_hz < fs_hz / 2.0,
        "cutoff out of range"
    );
    let taps = if taps.is_multiple_of(2) {
        taps + 1
    } else {
        taps
    };
    let fc = cutoff_hz / fs_hz; // normalized 0..0.5
    let mid = (taps / 2) as isize;
    let mut h: Vec<f64> = (0..taps)
        .map(|n| {
            let m = n as isize - mid;
            2.0 * fc * sinc(2.0 * fc * m as f64) * window.value(n, taps)
        })
        .collect();
    // Normalize to unit DC gain.
    let sum: f64 = h.iter().sum();
    for v in h.iter_mut() {
        *v /= sum;
    }
    h
}

/// Designs a complex band-pass filter centered at `center_hz` (which may be
/// negative — we work at complex baseband) with two-sided bandwidth
/// `bandwidth_hz`, by modulating a low-pass prototype.
pub fn design_bandpass_complex(
    center_hz: f64,
    bandwidth_hz: f64,
    fs_hz: f64,
    taps: usize,
    window: Window,
) -> Vec<C64> {
    let lp = design_lowpass(bandwidth_hz / 2.0, fs_hz, taps, window);
    lp.iter()
        .enumerate()
        .map(|(n, &h)| C64::from_polar(h, 2.0 * PI * center_hz * n as f64 / fs_hz))
        .collect()
}

/// Full convolution of `signal` with real `taps`; output length is
/// `signal.len() + taps.len() - 1`.
pub fn convolve_real(signal: &[C64], taps: &[f64]) -> Vec<C64> {
    let mut out = vec![C64::ZERO; signal.len() + taps.len() - 1];
    for (i, &x) in signal.iter().enumerate() {
        for (j, &h) in taps.iter().enumerate() {
            out[i + j] += x.scale(h);
        }
    }
    out
}

/// "Same-size" filtering: convolves and trims the group delay so the output
/// aligns with the input.
pub fn filter_same(signal: &[C64], taps: &[f64]) -> Vec<C64> {
    let full = convolve_real(signal, taps);
    let delay = taps.len() / 2;
    full[delay..delay + signal.len()].to_vec()
}

/// A streaming FIR filter with complex taps and internal state, for
/// block-at-a-time processing in the simulation executive.
#[derive(Debug, Clone)]
pub struct StreamingFir {
    taps: Vec<C64>,
    /// Delay line; newest sample at the back.
    history: VecDeque<C64>,
}

impl StreamingFir {
    /// Creates a streaming filter from complex taps.
    pub fn new(taps: Vec<C64>) -> Self {
        assert!(!taps.is_empty(), "filter needs at least one tap");
        let len = taps.len();
        StreamingFir {
            taps,
            history: VecDeque::from(vec![C64::ZERO; len]),
        }
    }

    /// Creates a streaming filter from real taps.
    pub fn from_real(taps: &[f64]) -> Self {
        Self::new(taps.iter().map(|&t| C64::real(t)).collect())
    }

    /// Processes one sample, returning one output sample.
    pub fn push(&mut self, x: C64) -> C64 {
        self.history.pop_front();
        self.history.push_back(x);
        let n = self.taps.len();
        let mut acc = C64::ZERO;
        for (k, &h) in self.taps.iter().enumerate() {
            // taps[0] multiplies the newest sample.
            acc += self.history[n - 1 - k] * h;
        }
        acc
    }

    /// Processes a block of samples.
    pub fn process(&mut self, block: &[C64]) -> Vec<C64> {
        block.iter().map(|&x| self.push(x)).collect()
    }

    /// Resets the delay line to zeros.
    pub fn reset(&mut self) {
        for v in self.history.iter_mut() {
            *v = C64::ZERO;
        }
    }

    /// Filter length in taps.
    pub fn len(&self) -> usize {
        self.taps.len()
    }

    /// Always false; filters have at least one tap.
    pub fn is_empty(&self) -> bool {
        self.taps.is_empty()
    }
}

/// Measures the magnitude response (linear) of real taps at `freq_hz`.
pub fn frequency_response(taps: &[f64], freq_hz: f64, fs_hz: f64) -> f64 {
    let w = 2.0 * PI * freq_hz / fs_hz;
    taps.iter()
        .enumerate()
        .map(|(n, &h)| C64::from_polar(h, -w * n as f64))
        .sum::<C64>()
        .abs()
}

/// Measures the magnitude response of complex taps at `freq_hz`.
pub fn frequency_response_complex(taps: &[C64], freq_hz: f64, fs_hz: f64) -> f64 {
    let w = 2.0 * PI * freq_hz / fs_hz;
    taps.iter()
        .enumerate()
        .map(|(n, &h)| h * C64::cis(-w * n as f64))
        .sum::<C64>()
        .abs()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowpass_passes_dc_blocks_high() {
        let fs = 300e3;
        let taps = design_lowpass(30e3, fs, 63, Window::Hamming);
        let dc = frequency_response(&taps, 0.0, fs);
        let pass = frequency_response(&taps, 10e3, fs);
        let stop = frequency_response(&taps, 120e3, fs);
        assert!((dc - 1.0).abs() < 1e-9, "dc gain {dc}");
        assert!(pass > 0.9, "passband gain {pass}");
        assert!(stop < 0.01, "stopband gain {stop}");
    }

    #[test]
    fn lowpass_is_symmetric_linear_phase() {
        let taps = design_lowpass(50e3, 300e3, 41, Window::Blackman);
        for i in 0..taps.len() {
            assert!((taps[i] - taps[taps.len() - 1 - i]).abs() < 1e-12);
        }
    }

    #[test]
    fn bandpass_centers_on_target() {
        let fs = 300e3;
        let taps = design_bandpass_complex(50e3, 20e3, fs, 81, Window::Hamming);
        let on = frequency_response_complex(&taps, 50e3, fs);
        let off = frequency_response_complex(&taps, -50e3, fs);
        let far = frequency_response_complex(&taps, 120e3, fs);
        assert!(on > 0.9, "center gain {on}");
        assert!(off < 0.02, "mirror gain {off}");
        assert!(far < 0.02, "far gain {far}");
    }

    #[test]
    fn negative_center_bandpass() {
        let fs = 300e3;
        let taps = design_bandpass_complex(-50e3, 20e3, fs, 81, Window::Hamming);
        assert!(frequency_response_complex(&taps, -50e3, fs) > 0.9);
        assert!(frequency_response_complex(&taps, 50e3, fs) < 0.02);
    }

    #[test]
    fn streaming_matches_batch() {
        let fs = 300e3;
        let taps = design_lowpass(40e3, fs, 31, Window::Hann);
        let signal: Vec<C64> = (0..200)
            .map(|n| C64::cis(2.0 * PI * 10e3 * n as f64 / fs))
            .collect();
        let batch = convolve_real(&signal, &taps);
        let mut f = StreamingFir::from_real(&taps);
        let stream = f.process(&signal);
        // Streaming output equals the first signal.len() samples of the full
        // convolution.
        for i in 0..signal.len() {
            assert!((stream[i] - batch[i]).abs() < 1e-9, "sample {i}");
        }
    }

    #[test]
    fn streaming_blocks_equal_one_shot() {
        let taps = design_lowpass(40e3, 300e3, 21, Window::Hamming);
        let signal: Vec<C64> = (0..100).map(|n| C64::new((n as f64).sin(), 0.0)).collect();
        let mut f1 = StreamingFir::from_real(&taps);
        let whole = f1.process(&signal);
        let mut f2 = StreamingFir::from_real(&taps);
        let mut chunks = Vec::new();
        for c in signal.chunks(7) {
            chunks.extend(f2.process(c));
        }
        for (a, b) in whole.iter().zip(&chunks) {
            assert!((*a - *b).abs() < 1e-12);
        }
    }

    #[test]
    fn filter_same_preserves_length_and_aligns() {
        let fs = 300e3;
        let taps = design_lowpass(60e3, fs, 41, Window::Hamming);
        let tone: Vec<C64> = (0..256)
            .map(|n| C64::cis(2.0 * PI * 5e3 * n as f64 / fs))
            .collect();
        let out = filter_same(&tone, &taps);
        assert_eq!(out.len(), tone.len());
        // Mid-signal samples should closely track the input (in-band tone).
        for i in 60..200 {
            assert!((out[i] - tone[i]).abs() < 0.05, "sample {i}");
        }
    }

    #[test]
    fn reset_clears_state() {
        let mut f = StreamingFir::from_real(&[0.5, 0.5]);
        f.push(C64::ONE);
        f.reset();
        let y = f.push(C64::ZERO);
        assert!(y.abs() < 1e-12);
    }

    #[test]
    fn even_tap_request_rounds_up() {
        let taps = design_lowpass(10e3, 300e3, 10, Window::Hamming);
        assert_eq!(taps.len(), 11);
    }
}
