//! Goertzel algorithm: single-bin DFT evaluation.
//!
//! The noncoherent FSK demodulator needs the signal energy at exactly two
//! frequencies (the mark and space tones) per symbol. Goertzel computes one
//! bin in O(n) with two multiplies per sample — much cheaper than a full FFT
//! per symbol, and it works for arbitrary (non-integer-bin) frequencies.

use crate::complex::C64;
use std::f64::consts::PI;

/// Computes the DFT of `samples` at frequency `freq_hz` given sample rate
/// `fs_hz`, via the complex (generalized) Goertzel recursion.
///
/// Returns the complex correlation `sum_n x[n] * e^{-j 2 pi f n / fs}`.
pub fn goertzel(samples: &[C64], freq_hz: f64, fs_hz: f64) -> C64 {
    let w = 2.0 * PI * freq_hz / fs_hz;
    let coeff = 2.0 * w.cos();
    // Run the recursion separately over the real and imaginary parts; the
    // transform is linear so the results combine.
    let mut s1 = C64::ZERO;
    let mut s2 = C64::ZERO;
    for &x in samples {
        let s0 = x + s1.scale(coeff) - s2;
        s2 = s1;
        s1 = s0;
    }
    // Finalize: X = e^{jw} s1 - s2, then rotate by the phase accumulated over
    // the block so the result matches the direct correlation definition.
    let y = s1 * C64::cis(w) - s2;
    y * C64::cis(-w * samples.len() as f64)
}

/// Signal power at `freq_hz` (squared magnitude of the Goertzel output,
/// normalized by block length so it is comparable across block sizes).
pub fn goertzel_power(samples: &[C64], freq_hz: f64, fs_hz: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    goertzel(samples, freq_hz, fs_hz).norm_sq() / samples.len() as f64
}

/// Direct correlation against a complex exponential — the literal matched
/// filter for a tone. Used as the test oracle for [`goertzel`] and as the
/// per-symbol detector when the caller already has the phasor table.
pub fn tone_correlate(samples: &[C64], freq_hz: f64, fs_hz: f64) -> C64 {
    let w = -2.0 * PI * freq_hz / fs_hz;
    samples
        .iter()
        .enumerate()
        .map(|(n, &x)| x * C64::cis(w * n as f64))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_direct_correlation() {
        let fs = 300e3;
        let samples: Vec<C64> = (0..96)
            .map(|n| {
                C64::cis(2.0 * PI * 50e3 * n as f64 / fs)
                    + C64::cis(-2.0 * PI * 20e3 * n as f64 / fs).scale(0.5)
            })
            .collect();
        for &f in &[50e3, -50e3, 20e3, -20e3, 12.345e3] {
            let g = goertzel(&samples, f, fs);
            let d = tone_correlate(&samples, f, fs);
            assert!((g - d).abs() < 1e-6, "freq {f}: {g} vs {d}");
        }
    }

    #[test]
    fn detects_tone_at_its_own_frequency() {
        let fs = 300e3;
        let f0 = 50e3;
        let n = 60; // integer number of cycles: 50e3 * 60 / 300e3 = 10
        let samples: Vec<C64> = (0..n)
            .map(|t| C64::cis(2.0 * PI * f0 * t as f64 / fs))
            .collect();
        let p_on = goertzel_power(&samples, f0, fs);
        let p_off = goertzel_power(&samples, -f0, fs);
        assert!(p_on > 100.0 * p_off, "on {p_on} off {p_off}");
        // Matched bin magnitude is n; power normalized by n gives n.
        assert!((p_on - n as f64).abs() < 1e-6);
    }

    #[test]
    fn empty_input_is_zero() {
        assert_eq!(goertzel_power(&[], 1000.0, 300e3), 0.0);
        assert_eq!(goertzel(&[], 1000.0, 300e3), C64::ZERO);
    }

    #[test]
    fn linear_in_input() {
        let fs = 1e5;
        let a: Vec<C64> = (0..40).map(|n| C64::new((n as f64).sin(), 0.2)).collect();
        let b: Vec<C64> = (0..40).map(|n| C64::new(0.1, (n as f64).cos())).collect();
        let sum: Vec<C64> = a.iter().zip(&b).map(|(&x, &y)| x + y).collect();
        let g = goertzel(&sum, 7e3, fs);
        let gs = goertzel(&a, 7e3, fs) + goertzel(&b, 7e3, fs);
        assert!((g - gs).abs() < 1e-8);
    }
}
