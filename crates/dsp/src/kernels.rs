//! Batched, branch-free math kernels for the hot noise/oscillator paths.
//!
//! The simulator's dominant cost is synthesizing noise (the shield jams
//! continuously, so every idle block is mostly `ln`/`sqrt`/`sin`/`cos`
//! work). libm's scalar transcendentals are accurate to the last ulp but
//! branchy, so the compiler cannot vectorize loops around them. These
//! kernels trade the last few ulps for straight-line code over slices:
//! every lane executes the same instructions, which lets LLVM autovectorize
//! the polynomial evaluation even at the baseline x86-64 target.
//!
//! Accuracy: `ln_batch` is within ~2e-12 relative error over the full
//! normal range (and exact enough at the `1e-300` clamp the noise path
//! uses); `sincos_turns_batch` is within ~2e-10 absolute. Both are pure
//! functions of their input bits — no tables, no FMA, no fast-math — so
//! results are bit-identical across runs, hosts and thread counts, which
//! is what the golden determinism suite pins.
//!
//! These are *statistical* kernels: they feed noise synthesis, where a
//! 1e-10 phase error is ~120 dB below the signal. Code that needs
//! last-ulp trig (one-off table construction, analysis helpers) should
//! keep calling `f64::ln`/`f64::sin_cos`.
//!
//! The same batched, branch-free design recurs across the crate's hot
//! paths: [`crate::noise::NoiseSource`] stages uniforms and runs
//! [`boxmuller_batch`] in place, [`crate::osc`] replaces per-sample trig
//! with phase recurrences, and [`crate::correlator`] turns the streaming
//! detector's per-sample phase sweep into dense vectorizable MAC loops.
//! All of them are exact-rounding-order deterministic, so the golden
//! suite pins their outputs bit-for-bit.

/// Scalar core of [`ln_batch`]: branch-free base-2 decomposition plus an
/// `atanh`-series polynomial. `#[inline(always)]` so the batch loops fuse
/// it into straight-line, autovectorizable bodies.
#[inline(always)]
fn ln_core(x: f64) -> f64 {
    const LN2: f64 = std::f64::consts::LN_2;
    let bits = x.to_bits();
    let mut e = ((bits >> 52) & 0x7ff) as i64 - 1023;
    let mut mbits = (bits & 0x000f_ffff_ffff_ffff) | 0x3ff0_0000_0000_0000;
    // Re-center the mantissa into [sqrt(1/2), sqrt(2)) so the series
    // argument t stays small (|t| <= 0.1716).
    let m0 = f64::from_bits(mbits);
    let big = (m0 >= std::f64::consts::SQRT_2) as i64;
    e += big;
    mbits -= (big as u64) << 52;
    let m = f64::from_bits(mbits);
    // ln(m) = 2 atanh(t), t = (m-1)/(m+1); odd series in t.
    let t = (m - 1.0) / (m + 1.0);
    let t2 = t * t;
    let p = t2
        * (1.0 / 3.0
            + t2 * (1.0 / 5.0
                + t2 * (1.0 / 7.0 + t2 * (1.0 / 9.0 + t2 * (1.0 / 11.0 + t2 * (1.0 / 13.0))))));
    e as f64 * LN2 + 2.0 * t * (1.0 + p)
}

/// Scalar core of [`sincos_turns_batch`]: quarter-turn reduction, Taylor
/// polynomials, branch-free quadrant rotation. Returns `(sin, cos)`.
#[inline(always)]
fn sincos_turns_core(u: f64) -> (f64, f64) {
    // Quarter-turn units: x in [0, 4); q = nearest quadrant;
    // r in [-1/2, 1/2] quarter-turns, i.e. a in [-pi/4, pi/4] radians.
    let x = 4.0 * u;
    let q = (x + 0.5).floor();
    let r = x - q;
    let a = r * std::f64::consts::FRAC_PI_2;
    let a2 = a * a;
    // Taylor series; at |a| <= pi/4 the truncation error is below 1e-16
    // for sin (a^13 term) and ~1e-14 for cos (a^12 term).
    let s = a
        * (1.0
            + a2 * (-1.0 / 6.0
                + a2 * (1.0 / 120.0
                    + a2 * (-1.0 / 5040.0 + a2 * (1.0 / 362_880.0 + a2 * (-1.0 / 39_916_800.0))))));
    let c = 1.0
        + a2 * (-1.0 / 2.0
            + a2 * (1.0 / 24.0
                + a2 * (-1.0 / 720.0 + a2 * (1.0 / 40_320.0 + a2 * (-1.0 / 3_628_800.0)))));
    // (sin, cos) by quadrant: q=0:(s,c)  1:(c,-s)  2:(-s,-c)  3:(-c,s).
    let qi = q as i64 & 3;
    let swap = (qi & 1) as f64; // 0.0 or 1.0: odd quadrants swap s/c
    let bs = s + swap * (c - s);
    let bc = c + swap * (s - c);
    let sneg = (((qi >> 1) & 1) as u64) << 63; // q=2,3: sin negative
    let cneg = ((((qi + 1) >> 1) & 1) as u64) << 63; // q=1,2: cos negative
    (
        f64::from_bits(bs.to_bits() ^ sneg),
        f64::from_bits(bc.to_bits() ^ cneg),
    )
}

/// Natural log over a slice: `out[i] = ln(xs[i])`.
///
/// Branch-free base-2 decomposition (`x = 2^e · m` with `m` in
/// `[√½, √2)`) followed by an `atanh`-series polynomial. Inputs must be
/// finite, positive normals (the noise path clamps to `1e-300`, well
/// inside the normal range); zeros, subnormals, infinities and NaNs are
/// *not* handled.
///
/// # Panics
/// Panics if `out` is shorter than `xs`.
pub fn ln_batch(xs: &[f64], out: &mut [f64]) {
    assert!(out.len() >= xs.len(), "ln_batch: output too short");
    for (o, &x) in out.iter_mut().zip(xs.iter()) {
        *o = ln_core(x);
    }
}

/// Sine and cosine of `2π · turns[i]` for `turns[i]` in `[0, 1)`.
///
/// The argument is a fraction of a full turn — exactly what a uniform
/// `[0, 1)` random draw gives — so range reduction is a single
/// multiply-and-round to the nearest quarter turn, not a `fmod` by an
/// irrational. Quadrant rotation is branch-free (arithmetic select plus
/// sign-bit xor), so the whole loop autovectorizes.
///
/// # Panics
/// Panics if either output is shorter than `turns`.
pub fn sincos_turns_batch(turns: &[f64], sin_out: &mut [f64], cos_out: &mut [f64]) {
    assert!(
        sin_out.len() >= turns.len() && cos_out.len() >= turns.len(),
        "sincos_turns_batch: output too short"
    );
    for ((s_out, c_out), &u) in sin_out.iter_mut().zip(cos_out.iter_mut()).zip(turns.iter()) {
        let (s, c) = sincos_turns_core(u);
        *s_out = s;
        *c_out = c;
    }
}

/// Fused paired Box–Muller transform, in place over `(u₁, u₂)` pairs.
///
/// On input each sample holds two uniforms packed as `re = u₁` (already
/// clamped away from zero), `im = u₂`; on output it is one
/// circularly-symmetric complex Gaussian with average power `-neg_power`:
/// radius `√(ln u₁ · neg_power)`, phase `2π·u₂`. Fusing the `ln`, `sqrt`
/// and `sincos` stages into one straight-line pass keeps the whole
/// transform in registers — no scratch arrays, so a 16-sample fill (one
/// `Medium` block at one antenna) pays no fixed batch overhead, while
/// long fills still autovectorize.
///
/// Accuracy and determinism follow the component kernels ([`ln_batch`],
/// [`sincos_turns_batch`]): pure per-sample function, bit-identical
/// regardless of how a buffer is split across calls.
pub fn boxmuller_batch(samples: &mut [crate::complex::C64], neg_power: f64) {
    for v in samples.iter_mut() {
        let radius = (ln_core(v.re) * neg_power).sqrt();
        let (sin, cos) = sincos_turns_core(v.im);
        v.re = radius * cos;
        v.im = radius * sin;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn ln_matches_std_over_unit_interval() {
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..100_000 {
            let x: f64 = rng.gen::<f64>().max(1e-300);
            let mut out = [0.0];
            ln_batch(&[x], &mut out);
            let want = x.ln();
            let err = (out[0] - want).abs() / want.abs().max(1e-30);
            assert!(err < 2e-12, "ln({x:e}): {} vs {want} (rel {err:e})", out[0]);
        }
    }

    #[test]
    fn ln_handles_extreme_and_near_one_inputs() {
        for x in [
            1e-300f64,
            1e-100,
            1e-10,
            0.25,
            0.5,
            1.0 - 1e-16,
            1.0,
            2.0,
            1e10,
        ] {
            let mut out = [0.0];
            ln_batch(&[x], &mut out);
            let want = x.ln();
            assert!(
                (out[0] - want).abs() <= want.abs() * 2e-12 + 1e-15,
                "ln({x:e}): {} vs {want}",
                out[0]
            );
        }
    }

    #[test]
    fn sincos_matches_std_over_full_turn() {
        let mut rng = StdRng::seed_from_u64(13);
        let (mut s, mut c) = ([0.0], [0.0]);
        for i in 0..100_000 {
            // Mix random draws with boundary-adjacent points.
            let u: f64 = if i % 10 == 0 {
                [
                    0.0,
                    0.125,
                    0.25,
                    0.375,
                    0.5,
                    0.625,
                    0.75,
                    0.875,
                    1.0 - 1e-16,
                    1e-16,
                ][i / 10 % 10]
            } else {
                rng.gen()
            };
            sincos_turns_batch(&[u], &mut s, &mut c);
            let (ws, wc) = (2.0 * std::f64::consts::PI * u).sin_cos();
            assert!(
                (s[0] - ws).abs() < 2e-10 && (c[0] - wc).abs() < 2e-10,
                "u={u:e}: ({}, {}) vs ({ws}, {wc})",
                s[0],
                c[0]
            );
        }
    }

    #[test]
    fn sincos_outputs_stay_on_unit_circle() {
        let mut rng = StdRng::seed_from_u64(17);
        let (mut s, mut c) = ([0.0], [0.0]);
        for _ in 0..10_000 {
            let u: f64 = rng.gen();
            sincos_turns_batch(&[u], &mut s, &mut c);
            let norm = s[0] * s[0] + c[0] * c[0];
            assert!((norm - 1.0).abs() < 1e-9, "u={u}: |.|^2 = {norm}");
        }
    }

    #[test]
    fn batch_results_equal_scalar_results() {
        // The batch kernels must be a pure per-lane function: evaluating a
        // slice must produce bit-identical results to evaluating each lane
        // alone (no cross-lane state, no chunk-size dependence).
        let mut rng = StdRng::seed_from_u64(19);
        let xs: Vec<f64> = (0..257).map(|_| rng.gen::<f64>().max(1e-300)).collect();
        let mut whole = vec![0.0; xs.len()];
        ln_batch(&xs, &mut whole);
        for (i, &x) in xs.iter().enumerate() {
            let mut one = [0.0];
            ln_batch(&[x], &mut one);
            assert_eq!(one[0].to_bits(), whole[i].to_bits(), "lane {i}");
        }
        let (mut sw, mut cw) = (vec![0.0; xs.len()], vec![0.0; xs.len()]);
        sincos_turns_batch(&xs, &mut sw, &mut cw);
        for (i, &x) in xs.iter().enumerate() {
            let (mut s1, mut c1) = ([0.0], [0.0]);
            sincos_turns_batch(&[x], &mut s1, &mut c1);
            assert_eq!(s1[0].to_bits(), sw[i].to_bits(), "sin lane {i}");
            assert_eq!(c1[0].to_bits(), cw[i].to_bits(), "cos lane {i}");
        }
    }

    #[test]
    #[should_panic(expected = "output too short")]
    fn ln_rejects_short_output() {
        let mut out = [0.0];
        ln_batch(&[1.0, 2.0], &mut out);
    }

    #[test]
    fn fused_boxmuller_equals_component_kernels() {
        // The fused pass and the component kernels share the same scalar
        // cores; pin that composing them stays bit-identical.
        use crate::complex::C64;
        let mut rng = StdRng::seed_from_u64(37);
        let n = 300;
        let power = 2.75;
        let pairs: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.gen::<f64>().max(1e-300), rng.gen::<f64>()))
            .collect();
        let mut fused: Vec<C64> = pairs.iter().map(|&(u1, u2)| C64::new(u1, u2)).collect();
        boxmuller_batch(&mut fused, -power);
        let u1s: Vec<f64> = pairs.iter().map(|p| p.0).collect();
        let turns: Vec<f64> = pairs.iter().map(|p| p.1).collect();
        let mut lns = vec![0.0; n];
        ln_batch(&u1s, &mut lns);
        let (mut s, mut c) = (vec![0.0; n], vec![0.0; n]);
        sincos_turns_batch(&turns, &mut s, &mut c);
        for i in 0..n {
            let r = (lns[i] * -power).sqrt();
            assert_eq!(fused[i].re.to_bits(), (r * c[i]).to_bits(), "re lane {i}");
            assert_eq!(fused[i].im.to_bits(), (r * s[i]).to_bits(), "im lane {i}");
        }
    }
}
