//! # hb-dsp — complex-baseband DSP substrate
//!
//! Numerics foundation for the *heartbeats* workspace, a reproduction of
//! "They Can Hear Your Heartbeats: Non-Invasive Security for Implantable
//! Medical Devices" (SIGCOMM 2011).
//!
//! Everything operates on [`complex::C64`] baseband samples:
//!
//! * [`fft`] — radix-2 FFT/IFFT with cached plans.
//! * [`fir`] — windowed-sinc filter design and streaming filters (the
//!   shield's channelizer and the eavesdropper's band-pass attack).
//! * [`goertzel`] — single-bin DFT (the FSK tone matched filter).
//! * [`correlator`] — the blocked multi-phase matched-filter correlator
//!   behind `hb_phy`'s streaming detector and Sid monitor (dense,
//!   autovectorizable per-phase tone accumulation).
//! * [`kernels`] — batched, branch-free `ln`/`sincos` kernels for the hot
//!   noise and oscillator paths (autovectorizable).
//! * [`noise`] — white and **PSD-shaped** Gaussian noise (the jamming
//!   signal construction of §6(a) of the paper), batched via
//!   [`noise::NoiseSource`].
//! * [`osc`] — phase-recurrence oscillators (tone synthesis without
//!   per-sample trig).
//! * [`spectrum`] — Welch PSD estimation and power profiles (Fig. 4/5).
//! * [`cfo`] — carrier frequency offset modeling and estimation.
//! * [`checksum`] — FNV-1a hashing for the crash-safe run journal's
//!   integrity header.
//! * [`window`], [`special`], [`units`], [`stats`] — supporting math.
//!
//! The crate has no unsafe code and every public item is documented.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cfo;
pub mod checksum;
pub mod complex;
pub mod correlator;
pub mod fft;
pub mod fir;
pub mod goertzel;
pub mod kernels;
pub mod noise;
pub mod osc;
pub mod special;
pub mod spectrum;
pub mod stats;
pub mod units;
pub mod window;

pub use complex::C64;
