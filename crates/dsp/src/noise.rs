//! Noise generation: white complex Gaussian noise and **PSD-shaped** random
//! noise.
//!
//! The shaped generator implements the jamming-signal construction of §6(a)
//! of the paper: draw independent white Gaussian values for each frequency
//! bin, set each bin's variance to match a target power profile, then IFFT to
//! obtain a time-domain signal whose spectrum matches the profile. This lets
//! the shield concentrate jamming power at the FSK mark/space tones instead
//! of spreading it across the whole 300 kHz channel.

use crate::complex::{mean_power, C64};
use crate::fft::{is_pow2, FftPlan};
use crate::kernels::boxmuller_batch;
use rand::Rng;
use std::f64::consts::PI;

/// Draws one standard normal variate via the Box–Muller transform.
///
/// Scalar path for cold call sites (shadowing draws, fading taps,
/// heartbeat jitter). Consumption is **fixed**: exactly two uniforms per
/// call — the historical `u1 > 1e-300` *rejection* loop consumed a
/// data-dependent number of uniforms, so the stream position after `n`
/// calls was not a pure function of `n`; the guard is now a *clamp*
/// (`max(1e-300)`), which truncates the output at ~37σ with probability
/// 2⁻⁵³ per draw — statistically indistinguishable, and deterministic in
/// stream position. The batched [`NoiseSource`] uses the same clamp.
///
/// Note the cosine variate is kept and the sine discarded, so this path's
/// stream is *not* the same as [`NoiseSource`]'s paired transform; hot
/// loops should fill buffers through [`NoiseSource`]/[`white_noise_into`]
/// instead of calling this per sample.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300); // clamp, not reject: see above
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
}

/// Draws one circularly-symmetric complex Gaussian sample with total
/// variance `variance` (i.e. `variance/2` per real dimension).
///
/// Scalar path (two [`standard_normal`] calls, four uniforms); buffer
/// fills should use [`NoiseSource`], which needs half the uniforms and
/// batches the transcendentals.
pub fn complex_gaussian<R: Rng + ?Sized>(rng: &mut R, variance: f64) -> C64 {
    let s = (variance / 2.0).sqrt();
    C64::new(standard_normal(rng) * s, standard_normal(rng) * s)
}

/// A batched generator of white circularly-symmetric complex Gaussian
/// noise — the engine's hot noise path (receiver floors, impulse bursts,
/// the jamming waveform's frequency-domain draws).
///
/// One output sample consumes exactly **two** uniforms `(u₁, u₂)` and is
/// the *paired* Box–Muller transform: radius `√(−ln u₁ · power)` and
/// phase `2π·u₂` yield `re = r·cos`, `im = r·sin` — both variates of the
/// pair are kept (the scalar path discards the sine), halving uniform
/// consumption. The uniforms are staged directly in the output buffer and
/// transformed in place by the fused, branch-free
/// [`crate::kernels::boxmuller_batch`] — one sequential RNG pass, one
/// straight-line math pass the compiler can vectorize, zero scratch.
///
/// Determinism contract: the stream position after `n` samples is exactly
/// `2n` `u64` draws — a pure function of the sample index, with no
/// data-dependent rejection (`u₁` is clamped to `1e-300`, reached with
/// probability 2⁻⁵³) — and the sample values do not depend on how a fill
/// is split across calls: filling 64k samples in one call or in many
/// arbitrary-sized calls from the same RNG produces identical bits.
///
/// # Example
///
/// ```
/// use hb_dsp::complex::{mean_power, C64};
/// use hb_dsp::noise::NoiseSource;
/// use rand::rngs::StdRng;
/// use rand::SeedableRng;
///
/// let src = NoiseSource::new(2.0); // average sample power 2.0 (linear)
/// let mut rng = StdRng::seed_from_u64(1);
/// let mut buf = vec![C64::ZERO; 4096];
/// src.fill(&mut rng, &mut buf);
/// let p = mean_power(&buf);
/// assert!((p - 2.0).abs() < 0.2, "measured power {p}");
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseSource {
    /// Average sample power (linear).
    power: f64,
}

impl NoiseSource {
    /// Creates a source with average sample power `power` (linear).
    pub fn new(power: f64) -> Self {
        assert!(power >= 0.0, "noise power must be non-negative");
        NoiseSource { power }
    }

    /// Average sample power (linear).
    pub fn power(&self) -> f64 {
        self.power
    }

    /// Fills `out` with noise, consuming exactly `2 · out.len()` uniforms.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [C64]) {
        // Pass 1 — the raw u64 stream, drawn in blocks through
        // [`RngCore::fill_u64`] (the xoshiro recurrence is inherently
        // sequential, but the batched walk keeps the generator state in
        // registers for the whole block instead of per-call). Draw order
        // is unchanged: sample k always consumes draws (2k, 2k+1)
        // regardless of how fills are chunked across calls.
        // Pass 2 — convert the block to clamped uniforms in the output
        // buffer. With no RNG call in the loop this pass is pure
        // straight-line arithmetic the compiler can vectorize; the
        // mapping is bit-identical to the scalar `gen::<f64>()` path
        // (top 53 bits, `max(1e-300)` fixed-consumption clamp).
        const CHUNK: usize = 128;
        let mut raw = [0u64; 2 * CHUNK];
        for part in out.chunks_mut(CHUNK) {
            let draws = &mut raw[..2 * part.len()];
            rng.fill_u64(draws);
            uniforms_from_draws(draws, part);
        }
        // Pass 3 — the fused branch-free Box–Muller transform in place.
        boxmuller_batch(out, -self.power);
    }
}

/// Pass 2 of [`NoiseSource::fill`]: unpacks the paired u64 draws into
/// clamped `[0, 1)` uniforms, exactly as rand's `Standard` f64 sampling
/// does (`(u >> 11) · 2⁻⁵³`, then the `max(1e-300)` consumption clamp on
/// the radius uniform). Standalone with slice params so the optimizer
/// sees non-aliasing inputs and vectorizes the conversion.
#[inline(never)]
fn uniforms_from_draws(draws: &[u64], out: &mut [C64]) {
    let scale = 1.0 / (1u64 << 53) as f64;
    for (v, pair) in out.iter_mut().zip(draws.chunks_exact(2)) {
        v.re = ((pair[0] >> 11) as f64 * scale).max(1e-300);
        v.im = (pair[1] >> 11) as f64 * scale;
    }
}

/// Generates `n` samples of white complex Gaussian noise with average power
/// `power` (linear).
pub fn white_noise<R: Rng + ?Sized>(rng: &mut R, n: usize, power: f64) -> Vec<C64> {
    let mut out = vec![C64::ZERO; n];
    white_noise_into(rng, &mut out, power);
    out
}

/// Fills `out` with white complex Gaussian noise with average power `power`
/// (linear). Identical RNG consumption and output to [`white_noise`] of the
/// same length — this is the allocation-free form the simulation hot loop
/// uses on its pooled buffers. Delegates to the batched [`NoiseSource`]
/// (two uniforms per sample, split-invariant across calls).
pub fn white_noise_into<R: Rng + ?Sized>(rng: &mut R, out: &mut [C64], power: f64) {
    NoiseSource::new(power).fill(rng, out);
}

/// A generator of random noise whose power spectral density follows a caller
/// supplied per-bin profile.
///
/// Block-based: each call to [`ShapedNoise::block`] produces `fft_size`
/// fresh samples. Blocks are independent, which is exactly what a jammer
/// wants — there is no exploitable correlation across blocks.
#[derive(Debug, Clone)]
pub struct ShapedNoise {
    plan: FftPlan,
    /// Per-bin amplitude scale (sqrt of the bin's target power share).
    bin_scale: Vec<f64>,
}

impl ShapedNoise {
    /// Creates a generator from a per-bin *power* profile (unnormalized;
    /// only the shape matters). `profile.len()` must be a power of two and
    /// uses standard FFT bin ordering (bin 0 = DC, upper half = negative
    /// frequencies).
    ///
    /// The generated time-domain signal has average power 1.0; scale it to
    /// the desired transmit power with [`crate::complex::scale_in_place`].
    pub fn new(profile: &[f64]) -> Self {
        assert!(
            is_pow2(profile.len()),
            "profile length must be a power of two"
        );
        assert!(
            profile.iter().all(|&p| p >= 0.0),
            "power profile must be non-negative"
        );
        let total: f64 = profile.iter().sum();
        assert!(total > 0.0, "power profile must not be all zero");
        let n = profile.len() as f64;
        // Normalize so that the time-domain output has unit average power.
        // With X[k] ~ CN(0, sigma_k^2) and x = IFFT(X) (1/N convention),
        // E|x[t]|^2 = (1/N^2) * sum_k sigma_k^2. Setting
        // sigma_k^2 = N^2 * p_k / sum(p) yields unit power.
        let bin_scale = profile
            .iter()
            .map(|&p| (n * n * p / total).sqrt())
            .collect();
        ShapedNoise {
            plan: FftPlan::new(profile.len()),
            bin_scale,
        }
    }

    /// Creates a flat (constant-profile) generator over the whole band —
    /// the "oblivious" jammer of Fig. 5.
    pub fn flat(fft_size: usize) -> Self {
        Self::new(&vec![1.0; fft_size])
    }

    /// Number of samples produced per block.
    pub fn block_len(&self) -> usize {
        self.plan.len()
    }

    /// Generates one block of shaped noise with unit average power
    /// (in expectation).
    pub fn block<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<C64> {
        let mut out = Vec::new();
        self.block_into(rng, &mut out);
        out
    }

    /// Generates one block of shaped noise into `out` (resized to
    /// [`ShapedNoise::block_len`]). Identical RNG consumption and output to
    /// [`ShapedNoise::block`], reusing the buffer's allocation.
    ///
    /// The per-bin draws ride the batched [`NoiseSource`] (unit-power fill,
    /// then a per-bin amplitude pass), so jam synthesis shares the same
    /// two-uniforms-per-bin kernel as the white-noise path.
    pub fn block_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<C64>) {
        out.resize(self.bin_scale.len(), C64::ZERO);
        NoiseSource::new(1.0).fill(rng, out);
        for (v, &s) in out.iter_mut().zip(self.bin_scale.iter()) {
            *v = v.scale(s);
        }
        self.plan.inverse(out);
    }

    /// Generates at least `n` samples by concatenating blocks, then truncates
    /// to exactly `n`.
    pub fn samples<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<C64> {
        let mut out = Vec::with_capacity(n + self.block_len());
        while out.len() < n {
            out.extend(self.block(rng));
        }
        out.truncate(n);
        out
    }
}

/// Scales `samples` in place so their *measured* mean power equals `power`.
/// No-op for all-zero input.
pub fn set_mean_power(samples: &mut [C64], power: f64) {
    let p = mean_power(samples);
    if p > 0.0 {
        let k = (power / p).sqrt();
        for s in samples.iter_mut() {
            *s = s.scale(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fft::fft;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn standard_normal_moments() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn noise_source_moments_are_standard() {
        // Per-dimension mean 0, variance power/2; fourth moment consistent
        // with a Gaussian (kurtosis 3 per dimension).
        let mut rng = StdRng::seed_from_u64(23);
        let src = NoiseSource::new(2.0);
        let mut v = vec![C64::ZERO; 200_000];
        src.fill(&mut rng, &mut v);
        let n = v.len() as f64;
        let mean_re = v.iter().map(|s| s.re).sum::<f64>() / n;
        let mean_im = v.iter().map(|s| s.im).sum::<f64>() / n;
        assert!(mean_re.abs() < 0.01, "mean re {mean_re}");
        assert!(mean_im.abs() < 0.01, "mean im {mean_im}");
        let var_re = v.iter().map(|s| s.re * s.re).sum::<f64>() / n;
        let var_im = v.iter().map(|s| s.im * s.im).sum::<f64>() / n;
        assert!((var_re - 1.0).abs() < 0.02, "var re {var_re}");
        assert!((var_im - 1.0).abs() < 0.02, "var im {var_im}");
        let kurt = v.iter().map(|s| s.re.powi(4)).sum::<f64>() / n / (var_re * var_re);
        assert!((kurt - 3.0).abs() < 0.15, "kurtosis {kurt}");
    }

    #[test]
    fn noise_source_is_circularly_symmetric() {
        // E[x²] ≈ 0 (pseudo-variance) and re/im are uncorrelated — the
        // paired Box–Muller keeps both properties because (r·cosθ, r·sinθ)
        // with θ uniform is rotation-invariant.
        let mut rng = StdRng::seed_from_u64(29);
        let src = NoiseSource::new(1.0);
        let mut v = vec![C64::ZERO; 200_000];
        src.fill(&mut rng, &mut v);
        let pseudo: C64 = v.iter().map(|&x| x * x).sum::<C64>() / v.len() as f64;
        assert!(pseudo.abs() < 0.01, "pseudo-variance {pseudo}");
        let cross = v.iter().map(|s| s.re * s.im).sum::<f64>() / v.len() as f64;
        assert!(cross.abs() < 0.01, "re/im correlation {cross}");
    }

    #[test]
    fn split_fills_match_one_big_fill_bit_for_bit() {
        // The determinism contract: 64k samples in one call == the same
        // 64k in many arbitrary-sized calls, from the same RNG state.
        let n = 65_536;
        let mut whole = vec![C64::ZERO; n];
        white_noise_into(&mut StdRng::seed_from_u64(77), &mut whole, 1.7);
        let mut rng = StdRng::seed_from_u64(77);
        let mut split = Vec::with_capacity(n);
        let mut sizes = [1usize, 3, 7, 63, 64, 65, 640, 4096, 10_000].iter().cycle();
        while split.len() < n {
            let take = (*sizes.next().unwrap()).min(n - split.len());
            let mut part = vec![C64::ZERO; take];
            white_noise_into(&mut rng, &mut part, 1.7);
            split.extend(part);
        }
        for (i, (a, b)) in whole.iter().zip(split.iter()).enumerate() {
            assert!(
                a.re.to_bits() == b.re.to_bits() && a.im.to_bits() == b.im.to_bits(),
                "sample {i}: {a} != {b}"
            );
        }
    }

    #[test]
    fn noise_source_consumes_exactly_two_uniforms_per_sample() {
        // Stream position is a pure function of sample count: after
        // filling n samples, an independent draw must see the RNG exactly
        // 2n u64s ahead.
        use rand::RngCore;
        for n in [1usize, 63, 64, 65, 1000] {
            let mut a = StdRng::seed_from_u64(5);
            let mut buf = vec![C64::ZERO; n];
            NoiseSource::new(0.5).fill(&mut a, &mut buf);
            let mut b = StdRng::seed_from_u64(5);
            for _ in 0..2 * n {
                b.next_u64();
            }
            assert_eq!(a.next_u64(), b.next_u64(), "consumption at n={n}");
        }
    }

    #[test]
    fn white_noise_power_and_circularity() {
        let mut rng = StdRng::seed_from_u64(42);
        let v = white_noise(&mut rng, 100_000, 2.5);
        let p = mean_power(&v);
        assert!((p - 2.5).abs() < 0.05, "power {p}");
        // Circular symmetry: E[x^2] ~ 0 (not just E[|x|^2]).
        let pseudo: C64 = v.iter().map(|&x| x * x).sum::<C64>() / v.len() as f64;
        assert!(pseudo.abs() < 0.05, "pseudo-variance {pseudo}");
    }

    #[test]
    fn shaped_noise_unit_power() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut profile = vec![0.0; 256];
        // Two tone clusters like FSK.
        for k in 40..48 {
            profile[k] = 1.0;
            profile[256 - k] = 1.0;
        }
        let gen = ShapedNoise::new(&profile);
        let s = gen.samples(&mut rng, 65_536);
        let p = mean_power(&s);
        assert!((p - 1.0).abs() < 0.05, "power {p}");
    }

    #[test]
    fn shaped_noise_concentrates_power_in_profile_bins() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 256;
        let mut profile = vec![0.0; n];
        for p in profile.iter_mut().take(48).skip(40) {
            *p = 1.0;
        }
        let gen = ShapedNoise::new(&profile);
        // Average the spectrum over many blocks.
        let mut acc = vec![0.0; n];
        let blocks = 200;
        for _ in 0..blocks {
            let b = gen.block(&mut rng);
            let spec = fft(&b);
            for (k, v) in spec.iter().enumerate() {
                acc[k] += v.norm_sq();
            }
        }
        let in_band: f64 = (40..48).map(|k| acc[k]).sum();
        let total: f64 = acc.iter().sum();
        assert!(
            in_band / total > 0.99,
            "in-band fraction {}",
            in_band / total
        );
    }

    #[test]
    fn flat_noise_is_spectrally_flat() {
        let mut rng = StdRng::seed_from_u64(17);
        let n = 128;
        let gen = ShapedNoise::flat(n);
        let mut acc = vec![0.0; n];
        for _ in 0..500 {
            let spec = fft(&gen.block(&mut rng));
            for (k, v) in spec.iter().enumerate() {
                acc[k] += v.norm_sq();
            }
        }
        let mean = acc.iter().sum::<f64>() / n as f64;
        for (k, &a) in acc.iter().enumerate() {
            assert!(
                (a - mean).abs() / mean < 0.25,
                "bin {k} deviates: {} vs {}",
                a,
                mean
            );
        }
    }

    #[test]
    fn blocks_are_statistically_independent() {
        let mut rng = StdRng::seed_from_u64(5);
        let gen = ShapedNoise::flat(64);
        let a = gen.block(&mut rng);
        let b = gen.block(&mut rng);
        let corr = crate::complex::inner_product(&a, &b).abs()
            / (crate::complex::energy(&a).sqrt() * crate::complex::energy(&b).sqrt());
        assert!(corr < 0.35, "cross-block correlation {corr}");
    }

    #[test]
    fn set_mean_power_hits_target() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut v = white_noise(&mut rng, 1000, 1.0);
        set_mean_power(&mut v, 0.125);
        assert!((mean_power(&v) - 0.125).abs() < 1e-12);
    }

    #[test]
    fn set_mean_power_zero_signal_noop() {
        let mut v = vec![C64::ZERO; 16];
        set_mean_power(&mut v, 1.0);
        assert!(v.iter().all(|s| *s == C64::ZERO));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn shaped_rejects_non_pow2() {
        let _ = ShapedNoise::new(&[1.0; 100]);
    }

    #[test]
    #[should_panic(expected = "all zero")]
    fn shaped_rejects_zero_profile() {
        let _ = ShapedNoise::new(&[0.0; 64]);
    }
}
