//! Phase-recurrence oscillators: complex tone synthesis without per-sample
//! trig.
//!
//! A tone `e^{j(φ₀ + nΔφ)}` is a geometric sequence in the complex plane:
//! multiply the current phasor by the fixed step `e^{jΔφ}` once per sample.
//! That turns the modulator's per-sample `sin`/`cos` (≈25 ns) into one
//! complex multiply (≈2 ns). Rounding makes the recurrence spiral in or
//! out by ~1 ulp per step, so [`Rotator`] renormalizes the magnitude every
//! [`RENORM_INTERVAL`] samples with a first-order Newton step — phase is
//! untouched (renormalization is a pure real scale), and the phase error
//! itself only random-walks at the ulp level: over 10⁶ samples the phasor
//! stays within ~1e-10 of the exact `cis(φ₀ + nΔφ)` (pinned by a
//! property test).
//!
//! Determinism: the emitted sequence is a pure function of the
//! construction phase, the step-change history and the number of `next`
//! calls — independent of how the output is chunked into `fill` calls —
//! so golden tests that pin waveforms bit-exactly stay meaningful.

use crate::complex::C64;

/// Samples between magnitude renormalizations. At ~1 ulp of drift per
/// complex multiply, 64 steps keep `|phasor| − 1` below ~1e-14, and the
/// Newton step below squares that residual.
pub const RENORM_INTERVAL: u32 = 64;

/// A complex rotator: generates `e^{j(φ₀ + nΔφ)}` by recurrence.
///
/// # Example
///
/// ```
/// use hb_dsp::complex::C64;
/// use hb_dsp::osc::Rotator;
/// use std::f64::consts::PI;
///
/// // A 50 kHz tone at a 300 kHz sample rate — six samples per cycle.
/// let dphi = 2.0 * PI * 50e3 / 300e3;
/// let mut osc = Rotator::new(0.0, dphi);
/// let mut tone = vec![C64::ZERO; 6];
/// osc.fill(&mut tone);
/// // Each sample tracks the exact cis() evaluation to ~1e-12…
/// assert!((tone[3] - C64::cis(3.0 * dphi)).abs() < 1e-12);
/// // …and after one full cycle the phasor is back at 1 + 0j.
/// assert!((osc.phasor() - C64::ONE).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Rotator {
    cur: C64,
    step: C64,
    since_renorm: u32,
}

impl Rotator {
    /// Creates a rotator starting at phase `phase0_rad`, advancing by
    /// `dphi_rad` per sample.
    pub fn new(phase0_rad: f64, dphi_rad: f64) -> Self {
        Rotator {
            cur: C64::cis(phase0_rad),
            step: C64::cis(dphi_rad),
            since_renorm: 0,
        }
    }

    /// The phasor the next call to [`Rotator::next`] will return.
    #[inline]
    pub fn phasor(&self) -> C64 {
        self.cur
    }

    /// Changes the per-sample phase increment (phase stays continuous).
    pub fn set_step(&mut self, dphi_rad: f64) {
        self.step = C64::cis(dphi_rad);
    }

    /// Returns the current phasor and advances by one step.
    // Not an `Iterator`: the sequence is infinite, infallible, and the
    // borrow-heavy fill/rotate paths would gain nothing from the trait.
    #[allow(clippy::should_implement_trait)]
    #[inline]
    pub fn next(&mut self) -> C64 {
        let out = self.cur;
        self.cur *= self.step;
        self.since_renorm += 1;
        if self.since_renorm >= RENORM_INTERVAL {
            self.renormalize();
        }
        out
    }

    /// Fills `out[i]` with the phasor sequence, advancing the oscillator.
    ///
    /// The loop keeps the oscillator state in locals so the recurrence
    /// runs register-to-register (the per-sample cost is the complex
    /// multiply's latency chain, ~2 ns); the sequence is identical to
    /// calling [`Rotator::next`] `out.len()` times.
    pub fn fill(&mut self, out: &mut [C64]) {
        let step = self.step;
        let mut cur = self.cur;
        let mut since = self.since_renorm;
        for v in out.iter_mut() {
            *v = cur;
            cur *= step;
            since += 1;
            if since >= RENORM_INTERVAL {
                cur = renormalize_phasor(cur);
                since = 0;
            }
        }
        self.cur = cur;
        self.since_renorm = since;
    }

    /// Multiplies each `out[i]` by the phasor sequence in place —
    /// `x[n] ↦ x[n]·e^{j(φ₀+nΔφ)}`, the form [`crate::cfo::apply_cfo`]
    /// uses. Advances the oscillator exactly like [`Rotator::fill`].
    pub fn rotate_in_place(&mut self, out: &mut [C64]) {
        let step = self.step;
        let mut cur = self.cur;
        let mut since = self.since_renorm;
        for v in out.iter_mut() {
            *v *= cur;
            cur *= step;
            since += 1;
            if since >= RENORM_INTERVAL {
                cur = renormalize_phasor(cur);
                since = 0;
            }
        }
        self.cur = cur;
        self.since_renorm = since;
    }

    /// One [`renormalize_phasor`] step; see there for why a single Newton
    /// iteration is exact enough.
    #[inline]
    fn renormalize(&mut self) {
        self.cur = renormalize_phasor(self.cur);
        self.since_renorm = 0;
    }
}

/// A blocked tone synthesizer: one precomputed table of step powers per
/// tone, applied as `out[i] = base · e^{jiΔφ}`.
///
/// Where [`Rotator`] advances sample-by-sample (a serial multiply chain —
/// its ~3.5 ns/sample floor *is* the multiplier latency), `ToneBlock`
/// makes every sample inside a block an **independent** multiply against
/// the table and advances the base phasor once per block, so the loop
/// vectorizes and the recurrence chain shrinks by the block length. The
/// FSK modulator keeps one `ToneBlock` per bit value (one symbol long)
/// and threads the base phasor through symbol boundaries, which is what
/// takes `fsk_modulate_1024bits` under the per-sample rotator's floor.
///
/// Accuracy is *better* than the per-sample recurrence: within a block
/// the phase is exact (`cis` table), and the base only accumulates one
/// rounding per block instead of one per sample.
#[derive(Debug, Clone)]
pub struct ToneBlock {
    /// `phasors[i] = e^{jiΔφ}` for `i` in `0..len`.
    phasors: Vec<C64>,
    /// `e^{j·len·Δφ}` — the base advance across one whole block.
    advance: C64,
}

impl ToneBlock {
    /// Builds the table for per-sample increment `dphi_rad` and block
    /// length `len` (each entry an exact `cis`, so within-block phase
    /// never drifts).
    pub fn new(dphi_rad: f64, len: usize) -> Self {
        assert!(len > 0, "tone block length must be positive");
        ToneBlock {
            phasors: (0..len).map(|i| C64::cis(i as f64 * dphi_rad)).collect(),
            advance: C64::cis(len as f64 * dphi_rad),
        }
    }

    /// Samples per block.
    pub fn len(&self) -> usize {
        self.phasors.len()
    }

    /// True if the block is empty (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.phasors.is_empty()
    }

    /// Writes one block starting at phase `base` (a unit phasor) into
    /// `out` and returns the advanced base for the next block. `out` must
    /// be exactly one block long.
    #[inline]
    pub fn emit(&self, base: C64, out: &mut [C64]) -> C64 {
        assert_eq!(out.len(), self.phasors.len(), "emit: length mismatch");
        for (v, &p) in out.iter_mut().zip(self.phasors.iter()) {
            *v = base * p;
        }
        base * self.advance
    }
}

/// The one magnitude-renormalization step every oscillator in this module
/// uses: a first-order Newton iteration toward `|p| = 1`,
/// `p · (3 − |p|²)/2` — exact enough because drift per interval is
/// ulp-scale, so a full `1/sqrt` would buy no measurable accuracy.
/// [`Rotator`] applies it internally every [`RENORM_INTERVAL`] samples;
/// callers threading a base phasor through [`ToneBlock::emit`] should
/// apply it every [`RENORM_INTERVAL`] blocks or so.
#[inline]
pub fn renormalize_phasor(p: C64) -> C64 {
    p.scale(0.5 * (3.0 - p.norm_sq()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    #[test]
    fn matches_cis_over_short_runs() {
        let dphi = 2.0 * PI * 50e3 / 300e3;
        let mut r = Rotator::new(0.3, dphi);
        for n in 0..1000 {
            let want = C64::cis(0.3 + n as f64 * dphi);
            let got = r.next();
            assert!((got - want).abs() < 1e-12, "sample {n}: {got} vs {want}");
        }
    }

    #[test]
    fn stays_near_unit_circle_over_a_million_samples() {
        let mut r = Rotator::new(0.0, 0.017);
        let mut worst: f64 = 0.0;
        for _ in 0..1_000_000 {
            let p = r.next();
            worst = worst.max((p.abs() - 1.0).abs());
        }
        assert!(worst < 1e-12, "magnitude drift {worst}");
    }

    #[test]
    fn fill_chunking_does_not_change_the_sequence() {
        let dphi = -0.41;
        let mut whole = Rotator::new(1.0, dphi);
        let mut chunked = Rotator::new(1.0, dphi);
        let mut a = vec![C64::ZERO; 300];
        whole.fill(&mut a);
        let mut b = Vec::new();
        for n in [1usize, 7, 64, 100, 128] {
            let mut part = vec![C64::ZERO; n];
            chunked.fill(&mut part);
            b.extend(part);
        }
        for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
            assert!(
                x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits(),
                "sample {i} differs under chunked fill"
            );
        }
    }

    #[test]
    fn fill_equals_repeated_next_bit_for_bit() {
        // The register-local fill loop must advance state exactly like
        // next(), including renormalization points (200 > RENORM_INTERVAL
        // so at least two renorms are crossed).
        let mut a = Rotator::new(0.7, 0.29);
        let mut b = Rotator::new(0.7, 0.29);
        let mut filled = vec![C64::ZERO; 200];
        a.fill(&mut filled);
        for (i, v) in filled.iter().enumerate() {
            let w = b.next();
            assert!(
                v.re.to_bits() == w.re.to_bits() && v.im.to_bits() == w.im.to_bits(),
                "sample {i}: fill {v} != next {w}"
            );
        }
        let (pa, pb) = (a.phasor(), b.phasor());
        assert_eq!(pa.re.to_bits(), pb.re.to_bits());
        assert_eq!(pa.im.to_bits(), pb.im.to_bits());
    }

    #[test]
    fn step_changes_keep_phase_continuous() {
        // Model an FSK symbol boundary: flip the step sign and check the
        // phase path has no jump larger than the step itself.
        let dphi = 2.0 * PI * 50e3 / 300e3;
        let mut r = Rotator::new(0.0, dphi);
        let mut seq = vec![C64::ZERO; 24];
        r.fill(&mut seq);
        r.set_step(-dphi);
        let mut rest = vec![C64::ZERO; 24];
        r.fill(&mut rest);
        seq.extend(rest);
        for w in seq.windows(2) {
            let jump = (w[1] * w[0].conj()).arg().abs();
            assert!(jump <= dphi + 1e-9, "phase jump {jump}");
        }
    }

    #[test]
    fn tone_block_matches_cis_across_blocks() {
        let dphi = 2.0 * PI * 50e3 / 300e3;
        let tb = ToneBlock::new(dphi, 6);
        let mut base = C64::ONE;
        let mut out = vec![C64::ZERO; 6];
        for blk in 0..2000 {
            base = tb.emit(base, &mut out);
            if blk % 64 == 63 {
                base = renormalize_phasor(base);
            }
            for (i, v) in out.iter().enumerate() {
                let n = blk * 6 + i;
                let want = C64::cis(n as f64 * dphi);
                assert!((*v - want).abs() < 1e-10, "sample {n}: {v} vs {want}");
            }
        }
    }

    #[test]
    fn rotate_in_place_applies_the_tone() {
        let mut r = Rotator::new(0.2, 0.05);
        let mut buf = vec![C64::new(2.0, -1.0); 50];
        r.rotate_in_place(&mut buf);
        for (n, v) in buf.iter().enumerate() {
            let want = C64::new(2.0, -1.0) * C64::cis(0.2 + n as f64 * 0.05);
            assert!((*v - want).abs() < 1e-12, "sample {n}");
        }
    }
}
