//! Special mathematical functions needed for communication theory:
//! `erfc`/`Q` for theoretical BER curves, modified Bessel `I0` for Kaiser
//! windows and Rician fading, and `sinc` for filter design.

use std::f64::consts::PI;

/// Complementary error function, `erfc(x) = 1 - erf(x)`.
///
/// Uses the rational Chebyshev approximation from Numerical Recipes
/// (7 significant digits over the real line), which is more than enough
/// precision for BER-vs-SNR comparisons.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Error function `erf(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Gaussian Q-function: tail probability of a standard normal.
pub fn q_function(x: f64) -> f64 {
    0.5 * erfc(x / std::f64::consts::SQRT_2)
}

/// Modified Bessel function of the first kind, order zero.
///
/// Polynomial approximation from Abramowitz & Stegun 9.8.1/9.8.2, accurate
/// to better than 2e-7 relative error over the real line.
pub fn bessel_i0(x: f64) -> f64 {
    let ax = x.abs();
    if ax < 3.75 {
        let t = (x / 3.75).powi(2);
        1.0 + t
            * (3.5156229
                + t * (3.0899424
                    + t * (1.2067492 + t * (0.2659732 + t * (0.0360768 + t * 0.0045813)))))
    } else {
        let t = 3.75 / ax;
        (ax.exp() / ax.sqrt())
            * (0.39894228
                + t * (0.01328592
                    + t * (0.00225319
                        + t * (-0.00157565
                            + t * (0.00916281
                                + t * (-0.02057706
                                    + t * (0.02635537 + t * (-0.01647633 + t * 0.00392377))))))))
    }
}

/// Normalized sinc function: `sin(pi x) / (pi x)`, with `sinc(0) = 1`.
pub fn sinc(x: f64) -> f64 {
    if x.abs() < 1e-12 {
        1.0
    } else {
        let px = PI * x;
        px.sin() / px
    }
}

/// Theoretical BER of *noncoherent* binary FSK in AWGN:
/// `Pb = 0.5 * exp(-Eb/N0 / 2)`.
///
/// `snr_linear` is Eb/N0 as a linear power ratio. This is the decoder the
/// paper's eavesdropper uses ("optimal FSK decoder" \[38\]); we validate our
/// demodulator against this curve.
pub fn fsk_noncoherent_ber(snr_linear: f64) -> f64 {
    0.5 * (-snr_linear / 2.0).exp()
}

/// Theoretical BER of *coherent* binary FSK in AWGN: `Pb = Q(sqrt(Eb/N0))`.
pub fn fsk_coherent_ber(snr_linear: f64) -> f64 {
    q_function(snr_linear.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157_299_2).abs() < 1e-6);
        assert!((erfc(2.0) - 0.004_677_73).abs() < 1e-7);
        assert!(erfc(5.0) < 2e-12);
    }

    #[test]
    fn erfc_symmetry() {
        for &x in &[0.1, 0.5, 1.0, 2.5] {
            assert!((erfc(-x) - (2.0 - erfc(x))).abs() < 1e-12);
        }
    }

    #[test]
    fn erf_is_odd() {
        for &x in &[0.2, 0.9, 1.7] {
            assert!((erf(-x) + erf(x)).abs() < 1e-7);
        }
    }

    #[test]
    fn q_function_half_at_zero() {
        assert!((q_function(0.0) - 0.5).abs() < 1e-7);
        // Q(1.0) ~ 0.158655
        assert!((q_function(1.0) - 0.158_655).abs() < 1e-5);
        // Q(3.0) ~ 0.0013499
        assert!((q_function(3.0) - 0.001_349_9).abs() < 1e-6);
    }

    #[test]
    fn bessel_i0_known_values() {
        assert!((bessel_i0(0.0) - 1.0).abs() < 1e-9);
        assert!((bessel_i0(1.0) - 1.266_065_878).abs() < 1e-6);
        assert!((bessel_i0(5.0) - 27.239_871_8).abs() / 27.24 < 1e-6);
        // Even function.
        assert!((bessel_i0(-2.3) - bessel_i0(2.3)).abs() < 1e-9);
    }

    #[test]
    fn sinc_zero_crossings() {
        assert!((sinc(0.0) - 1.0).abs() < 1e-12);
        for k in 1..5 {
            assert!(sinc(k as f64).abs() < 1e-12);
        }
        assert!((sinc(0.5) - 2.0 / PI).abs() < 1e-12);
    }

    #[test]
    fn fsk_ber_curves_are_monotone_decreasing() {
        let mut last_nc = 1.0;
        let mut last_c = 1.0;
        for db in 0..20 {
            let snr = 10f64.powf(db as f64 / 10.0);
            let nc = fsk_noncoherent_ber(snr);
            let c = fsk_coherent_ber(snr);
            assert!(nc < last_nc);
            assert!(c < last_c);
            // Coherent detection is strictly better at reasonable SNR.
            if db >= 3 {
                assert!(c < nc);
            }
            last_nc = nc;
            last_c = c;
        }
    }

    #[test]
    fn fsk_noncoherent_at_zero_snr_is_half() {
        assert!((fsk_noncoherent_ber(0.0) - 0.5).abs() < 1e-12);
    }
}
