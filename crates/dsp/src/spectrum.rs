//! Spectral estimation: periodogram and Welch-averaged power spectral
//! density, plus helpers to extract the normalized **power profile** of a
//! signal — the quantity the shield matches when shaping its jamming signal
//! (Fig. 4 and Fig. 5 of the paper).

use crate::complex::C64;
use crate::fft::{fftshift, FftPlan};
use crate::window::Window;

/// A power spectral density estimate.
#[derive(Debug, Clone)]
pub struct Psd {
    /// Per-bin power, in FFT bin order (DC first).
    pub power: Vec<f64>,
    /// Sample rate used, in Hz.
    pub fs_hz: f64,
}

impl Psd {
    /// Number of frequency bins.
    pub fn len(&self) -> usize {
        self.power.len()
    }

    /// True if the estimate has no bins.
    pub fn is_empty(&self) -> bool {
        self.power.is_empty()
    }

    /// Returns `(freq_hz, power)` pairs, shifted so frequencies ascend from
    /// `-fs/2` to `+fs/2` — the form used for plotting Fig. 4/5.
    pub fn shifted(&self) -> Vec<(f64, f64)> {
        let n = self.len();
        let shifted = fftshift(&self.power);
        shifted
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                let k = i as f64 - (n - n / 2) as f64;
                (k * self.fs_hz / n as f64, p)
            })
            .collect()
    }

    /// Total power across all bins.
    pub fn total_power(&self) -> f64 {
        self.power.iter().sum()
    }

    /// Normalizes so bins sum to 1, yielding a *power profile* suitable for
    /// [`crate::noise::ShapedNoise::new`].
    pub fn profile(&self) -> Vec<f64> {
        let total = self.total_power();
        if total <= 0.0 {
            return vec![0.0; self.len()];
        }
        self.power.iter().map(|&p| p / total).collect()
    }

    /// Fraction of total power within `+/- half_width_hz` of `center_hz`.
    pub fn power_fraction_near(&self, center_hz: f64, half_width_hz: f64) -> f64 {
        let total = self.total_power();
        if total <= 0.0 {
            return 0.0;
        }
        let n = self.len();
        let mut acc = 0.0;
        for (k, &p) in self.power.iter().enumerate() {
            let f = crate::fft::bin_freq_hz(k, n, self.fs_hz);
            if (f - center_hz).abs() <= half_width_hz {
                acc += p;
            }
        }
        acc / total
    }
}

/// Welch's method: splits the signal into `fft_size`-sample segments with
/// 50% overlap, windows each, and averages the periodograms.
///
/// `fft_size` must be a power of two. Signals shorter than one segment are
/// zero-padded into a single segment.
pub fn welch_psd(signal: &[C64], fft_size: usize, window: Window, fs_hz: f64) -> Psd {
    let plan = FftPlan::new(fft_size);
    let w = window.coefficients(fft_size);
    let w_energy: f64 = w.iter().map(|v| v * v).sum();
    let hop = (fft_size / 2).max(1);

    let mut acc = vec![0.0; fft_size];
    let mut segments = 0usize;
    let mut start = 0usize;
    loop {
        let mut buf = vec![C64::ZERO; fft_size];
        let avail = signal.len().saturating_sub(start).min(fft_size);
        if avail == 0 && segments > 0 {
            break;
        }
        for i in 0..avail {
            buf[i] = signal[start + i].scale(w[i]);
        }
        plan.forward(&mut buf);
        for (k, v) in buf.iter().enumerate() {
            acc[k] += v.norm_sq();
        }
        segments += 1;
        start += hop;
        if start >= signal.len() {
            break;
        }
    }
    let norm = 1.0 / (segments as f64 * w_energy * fft_size as f64);
    for v in acc.iter_mut() {
        *v *= norm;
    }
    Psd { power: acc, fs_hz }
}

/// Single periodogram of the entire signal (zero-padded to a power of two).
pub fn periodogram(signal: &[C64], fs_hz: f64) -> Psd {
    let n = crate::fft::next_pow2(signal.len());
    welch_psd(signal, n, Window::Rectangular, fs_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::noise::white_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::f64::consts::PI;

    fn tone(freq: f64, fs: f64, n: usize) -> Vec<C64> {
        (0..n)
            .map(|t| C64::cis(2.0 * PI * freq * t as f64 / fs))
            .collect()
    }

    #[test]
    fn tone_peaks_at_right_bin() {
        let fs = 300e3;
        let sig = tone(50e3, fs, 4096);
        let psd = welch_psd(&sig, 256, Window::Hann, fs);
        let (peak_bin, _) = psd
            .power
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        let peak_freq = crate::fft::bin_freq_hz(peak_bin, 256, fs);
        assert!(
            (peak_freq - 50e3).abs() < 2.0 * fs / 256.0,
            "peak at {peak_freq}"
        );
    }

    #[test]
    fn negative_tone_lands_in_negative_bins() {
        let fs = 300e3;
        let sig = tone(-50e3, fs, 4096);
        let psd = welch_psd(&sig, 256, Window::Hann, fs);
        assert!(psd.power_fraction_near(-50e3, 10e3) > 0.9);
        assert!(psd.power_fraction_near(50e3, 10e3) < 0.05);
    }

    #[test]
    fn white_noise_is_flat() {
        let mut rng = StdRng::seed_from_u64(11);
        let sig = white_noise(&mut rng, 1 << 16, 1.0);
        let psd = welch_psd(&sig, 128, Window::Hamming, 1.0);
        let mean = psd.total_power() / psd.len() as f64;
        for (k, &p) in psd.power.iter().enumerate() {
            assert!((p - mean).abs() / mean < 0.3, "bin {k}: {p} vs mean {mean}");
        }
    }

    #[test]
    fn profile_sums_to_one() {
        let fs = 300e3;
        let sig = tone(25e3, fs, 2048);
        let psd = welch_psd(&sig, 128, Window::Hann, fs);
        let prof = psd.profile();
        let sum: f64 = prof.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn shifted_freq_axis_is_monotone() {
        let psd = Psd {
            power: vec![1.0; 64],
            fs_hz: 300e3,
        };
        let pairs = psd.shifted();
        assert_eq!(pairs.len(), 64);
        for w in pairs.windows(2) {
            assert!(w[1].0 > w[0].0);
        }
        assert!(pairs[0].0 < 0.0);
        assert!(pairs.last().unwrap().0 > 0.0);
    }

    #[test]
    fn parseval_total_power_tracks_signal_power() {
        // Welch with rectangular window and exactly one segment equals the
        // normalized periodogram; total power should approximate mean power.
        let mut rng = StdRng::seed_from_u64(4);
        let sig = white_noise(&mut rng, 4096, 3.0);
        let psd = welch_psd(&sig, 256, Window::Rectangular, 1.0);
        assert!(
            (psd.total_power() - 3.0).abs() < 0.3,
            "total {}",
            psd.total_power()
        );
    }

    #[test]
    fn short_signal_zero_padded() {
        let sig = tone(10e3, 300e3, 50);
        let psd = welch_psd(&sig, 256, Window::Hann, 300e3);
        assert_eq!(psd.len(), 256);
        assert!(psd.total_power() > 0.0);
    }
}
