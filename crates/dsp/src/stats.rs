//! Small statistics toolkit: running moments, empirical CDFs, histograms,
//! and interval estimators.
//!
//! The paper reports almost everything as CDFs (Fig. 7, 9, 10) or
//! min/mean/std tables (Table 1, Table 2); these types back those reports.
//! The interval estimators ([`wilson_interval`] for proportions,
//! [`bootstrap_mean_interval`] for continuous metrics) back the adaptive
//! Monte-Carlo engine in `hb_testbed::montecarlo`: statistical claims
//! (BER ≈ 0.5, attack success ≈ 0) are asserted as "the confidence
//! interval excludes the forbidden region", not as point estimates.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// z-score of the two-sided 95% confidence level.
pub const Z_95: f64 = 1.959963984540054;

/// z-score of the two-sided 99% confidence level.
pub const Z_99: f64 = 2.5758293035489004;

/// Wilson score interval for a binomial proportion: returns `(lo, hi)`
/// bounds on the true success probability given `successes` out of
/// `trials` at z-score `z` (e.g. [`Z_95`]).
///
/// Unlike the naive Wald interval, Wilson stays inside `[0, 1]`, never
/// collapses to zero width at `p̂ ∈ {0, 1}`, and always contains the point
/// estimate `successes / trials` — the properties the proptests in
/// `crates/dsp/tests/proptests.rs` pin. With `trials == 0` the interval
/// is the uninformative `(0, 1)`.
pub fn wilson_interval(successes: u64, trials: u64, z: f64) -> (f64, f64) {
    assert!(successes <= trials, "more successes than trials");
    assert!(z > 0.0, "z-score must be positive");
    if trials == 0 {
        return (0.0, 1.0);
    }
    let n = trials as f64;
    let p = successes as f64 / n;
    let z2 = z * z;
    let denom = 1.0 + z2 / n;
    let center = (p + z2 / (2.0 * n)) / denom;
    let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
    ((center - half).max(0.0), (center + half).min(1.0))
}

/// Percentile-bootstrap confidence interval for the mean of `samples`:
/// draws `resamples` with-replacement resamples using an RNG derived from
/// `seed` (fully deterministic), and returns the `(alpha/2, 1-alpha/2)`
/// quantiles of the resampled means. `alpha = 0.05` gives a 95% interval.
///
/// Returns `(mean, mean)` for fewer than 2 samples (no spread to
/// estimate) and the resampled quantiles otherwise; the interval always
/// stays within `[min, max]` of the samples by construction.
pub fn bootstrap_mean_interval(
    samples: &[f64],
    resamples: usize,
    alpha: f64,
    seed: u64,
) -> (f64, f64) {
    assert!(resamples > 0, "need at least one bootstrap resample");
    assert!((0.0..1.0).contains(&alpha), "alpha must be in [0, 1)");
    let n = samples.len();
    if n < 2 {
        let m = samples.first().copied().unwrap_or(0.0);
        return (m, m);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut means: Vec<f64> = (0..resamples)
        .map(|_| {
            let mut acc = 0.0;
            for _ in 0..n {
                acc += samples[rng.gen_range(0..n)];
            }
            acc / n as f64
        })
        .collect();
    means.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let pick = |q: f64| -> f64 {
        let idx = ((q * means.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(means.len() - 1);
        means[idx]
    };
    (pick(alpha / 2.0), pick(1.0 - alpha / 2.0))
}

/// Incremental mean/variance accumulator (Welford's algorithm).
#[derive(Debug, Clone, Default)]
pub struct RunningStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 if fewer than 2 observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Minimum observation (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Maximum observation (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max
    }
}

/// An empirical cumulative distribution function over recorded samples.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples (NaNs are dropped).
    pub fn from_samples(mut samples: Vec<f64>) -> Self {
        samples.retain(|x| !x.is_nan());
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Cdf { sorted: samples }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// `P(X <= x)`.
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile for `q` in \[0,1\] (nearest-rank).
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty CDF");
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize)
            .saturating_sub(1)
            .min(self.sorted.len() - 1);
        self.sorted[idx]
    }

    /// Median.
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Sample mean.
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
        }
    }

    /// Minimum sample.
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(f64::NAN)
    }

    /// Maximum sample.
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(f64::NAN)
    }

    /// Returns `(x, P(X<=x))` points suitable for plotting, one per sample.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len();
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, &x)| (x, (i + 1) as f64 / n as f64))
            .collect()
    }

    /// Renders a compact ASCII CDF plot (for experiment reports).
    pub fn ascii_plot(&self, width: usize, label: &str) -> String {
        if self.sorted.is_empty() {
            return format!("{label}: (no data)\n");
        }
        let mut out = String::new();
        out.push_str(&format!(
            "{label}: n={} min={:.4} median={:.4} mean={:.4} max={:.4}\n",
            self.len(),
            self.min(),
            self.median(),
            self.mean(),
            self.max()
        ));
        let levels = [0.1, 0.25, 0.5, 0.75, 0.9, 1.0];
        for &q in &levels {
            let x = self.quantile(q);
            let bar = "#".repeat(((q * width as f64) as usize).max(1));
            out.push_str(&format!(
                "  P{:<3} {:>12.4} |{}\n",
                (q * 100.0) as u32,
                x,
                bar
            ));
        }
        out
    }
}

/// A fixed-bin histogram over `[lo, hi)`.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
}

impl Histogram {
    /// Creates a histogram with `bins` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Self {
        assert!(hi > lo && bins > 0, "invalid histogram bounds");
        Histogram {
            lo,
            hi,
            bins: vec![0; bins],
            underflow: 0,
            overflow: 0,
        }
    }

    /// Records one observation.
    pub fn push(&mut self, x: f64) {
        if x < self.lo {
            self.underflow += 1;
        } else if x >= self.hi {
            self.overflow += 1;
        } else {
            let n = self.bins.len();
            let idx = ((x - self.lo) / (self.hi - self.lo) * n as f64) as usize;
            self.bins[idx.min(n - 1)] += 1;
        }
    }

    /// Bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// Observations below `lo` / at-or-above `hi`.
    pub fn out_of_range(&self) -> (u64, u64) {
        (self.underflow, self.overflow)
    }

    /// Center x-value of bin `i`.
    pub fn bin_center(&self, i: usize) -> f64 {
        let w = (self.hi - self.lo) / self.bins.len() as f64;
        self.lo + (i as f64 + 0.5) * w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn running_stats_basic() {
        let mut s = RunningStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn running_stats_empty() {
        let s = RunningStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
    }

    #[test]
    fn cdf_eval_and_quantiles() {
        let c = Cdf::from_samples(vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.eval(0.5), 0.0);
        assert_eq!(c.eval(1.0), 0.25);
        assert_eq!(c.eval(2.5), 0.5);
        assert_eq!(c.eval(10.0), 1.0);
        assert_eq!(c.quantile(0.25), 1.0);
        assert_eq!(c.quantile(1.0), 4.0);
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.min(), 1.0);
        assert_eq!(c.max(), 4.0);
    }

    #[test]
    fn cdf_drops_nan() {
        let c = Cdf::from_samples(vec![f64::NAN, 1.0, 2.0]);
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn cdf_points_monotone() {
        let c = Cdf::from_samples(vec![3.0, 1.0, 2.0]);
        let pts = c.points();
        assert_eq!(pts.len(), 3);
        for w in pts.windows(2) {
            assert!(w[1].0 >= w[0].0);
            assert!(w[1].1 > w[0].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn histogram_bins_correctly() {
        let mut h = Histogram::new(0.0, 10.0, 10);
        for x in [0.5, 1.5, 1.7, 9.9, -1.0, 10.0] {
            h.push(x);
        }
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 1);
        assert_eq!(h.out_of_range(), (1, 1));
        assert!((h.bin_center(0) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn wilson_known_values() {
        // 50/100 at 95%: the textbook interval is roughly (0.404, 0.596).
        let (lo, hi) = wilson_interval(50, 100, Z_95);
        assert!((lo - 0.4038).abs() < 1e-3, "lo {lo}");
        assert!((hi - 0.5962).abs() < 1e-3, "hi {hi}");
        // Zero successes: lo pins to 0, hi is z²/(n+z²).
        let (lo0, hi0) = wilson_interval(0, 20, Z_95);
        assert_eq!(lo0, 0.0);
        assert!((hi0 - Z_95 * Z_95 / (20.0 + Z_95 * Z_95)).abs() < 1e-12);
        // All successes mirrors it.
        let (lo1, hi1) = wilson_interval(20, 20, Z_95);
        assert_eq!(hi1, 1.0);
        assert!((lo1 - (1.0 - hi0)).abs() < 1e-12);
    }

    #[test]
    fn wilson_empty_is_uninformative() {
        assert_eq!(wilson_interval(0, 0, Z_95), (0.0, 1.0));
    }

    #[test]
    fn wilson_wider_at_higher_confidence() {
        let (lo95, hi95) = wilson_interval(30, 80, Z_95);
        let (lo99, hi99) = wilson_interval(30, 80, Z_99);
        assert!(lo99 < lo95 && hi99 > hi95);
    }

    #[test]
    fn bootstrap_interval_brackets_the_mean() {
        let samples: Vec<f64> = (0..50).map(|i| (i % 7) as f64).collect();
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (lo, hi) = bootstrap_mean_interval(&samples, 500, 0.05, 99);
        assert!(lo <= mean && mean <= hi, "({lo}, {hi}) vs mean {mean}");
        assert!(lo >= 0.0 && hi <= 6.0, "interval within sample range");
    }

    #[test]
    fn bootstrap_is_deterministic_in_the_seed() {
        let samples: Vec<f64> = (0..30).map(|i| (i as f64).sin()).collect();
        let a = bootstrap_mean_interval(&samples, 200, 0.05, 7);
        let b = bootstrap_mean_interval(&samples, 200, 0.05, 7);
        assert_eq!(a, b);
        let c = bootstrap_mean_interval(&samples, 200, 0.05, 8);
        assert_ne!(a, c, "different seeds should resample differently");
    }

    #[test]
    fn bootstrap_degenerate_inputs() {
        assert_eq!(bootstrap_mean_interval(&[], 100, 0.05, 1), (0.0, 0.0));
        assert_eq!(bootstrap_mean_interval(&[3.5], 100, 0.05, 1), (3.5, 3.5));
    }

    #[test]
    fn ascii_plot_contains_label() {
        let c = Cdf::from_samples((0..100).map(|i| i as f64).collect());
        let plot = c.ascii_plot(40, "test-metric");
        assert!(plot.contains("test-metric"));
        assert!(plot.contains("P50"));
    }
}
