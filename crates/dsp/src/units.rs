//! Decibel and power-unit conversions used throughout the link-budget math.
//!
//! Conventions:
//! * Power ratios use `10*log10` ([`db_from_ratio`] / [`ratio_from_db`]).
//! * Amplitude ratios use `20*log10` ([`db_from_amplitude`]).
//! * Absolute powers are expressed in dBm (dB relative to 1 mW) or watts.

/// Converts a linear *power* ratio to decibels.
#[inline]
pub fn db_from_ratio(ratio: f64) -> f64 {
    10.0 * ratio.log10()
}

/// Converts decibels to a linear *power* ratio.
#[inline]
pub fn ratio_from_db(db: f64) -> f64 {
    10f64.powf(db / 10.0)
}

/// Converts a linear *amplitude* ratio to decibels.
#[inline]
pub fn db_from_amplitude(ratio: f64) -> f64 {
    20.0 * ratio.log10()
}

/// Converts decibels to a linear *amplitude* ratio.
#[inline]
pub fn amplitude_from_db(db: f64) -> f64 {
    10f64.powf(db / 20.0)
}

/// Converts a power in watts to dBm.
#[inline]
pub fn dbm_from_watts(watts: f64) -> f64 {
    10.0 * (watts * 1e3).log10()
}

/// Converts dBm to watts.
#[inline]
pub fn watts_from_dbm(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0) * 1e-3
}

/// Converts dBm to milliwatts.
#[inline]
pub fn mw_from_dbm(dbm: f64) -> f64 {
    10f64.powf(dbm / 10.0)
}

/// Converts milliwatts to dBm.
#[inline]
pub fn dbm_from_mw(mw: f64) -> f64 {
    10.0 * mw.log10()
}

/// Boltzmann constant in J/K.
pub const BOLTZMANN: f64 = 1.380_649e-23;

/// Standard noise reference temperature in kelvin.
pub const T0_KELVIN: f64 = 290.0;

/// Thermal noise power in dBm for a given bandwidth in Hz at `T0` (290 K).
///
/// The familiar `-174 dBm/Hz + 10 log10(B)` rule; e.g. a 300 kHz MICS
/// channel has a thermal floor of about −119 dBm.
#[inline]
pub fn thermal_noise_dbm(bandwidth_hz: f64) -> f64 {
    dbm_from_watts(BOLTZMANN * T0_KELVIN * bandwidth_hz)
}

/// Speed of light in m/s.
pub const SPEED_OF_LIGHT: f64 = 299_792_458.0;

/// Wavelength in meters for a carrier frequency in Hz.
#[inline]
pub fn wavelength_m(freq_hz: f64) -> f64 {
    SPEED_OF_LIGHT / freq_hz
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn db_roundtrip() {
        for &db in &[-40.0, -3.0, 0.0, 3.0, 20.0, 32.0] {
            assert!((db_from_ratio(ratio_from_db(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn amplitude_roundtrip() {
        for &db in &[-27.0, 0.0, 6.0] {
            assert!((db_from_amplitude(amplitude_from_db(db)) - db).abs() < 1e-12);
        }
    }

    #[test]
    fn known_values() {
        assert!((db_from_ratio(2.0) - 3.0103).abs() < 1e-3);
        assert!((db_from_amplitude(10.0) - 20.0).abs() < 1e-12);
        assert!((dbm_from_watts(1.0) - 30.0).abs() < 1e-12);
        assert!((watts_from_dbm(0.0) - 1e-3).abs() < 1e-18);
    }

    #[test]
    fn mics_fcc_limit_is_minus_16_dbm() {
        // FCC EIRP limit for MICS is 25 microwatts = -16 dBm.
        let dbm = dbm_from_watts(25e-6);
        assert!((dbm - (-16.02)).abs() < 0.01);
    }

    #[test]
    fn thermal_floor_matches_textbook() {
        // -174 dBm/Hz at 290 K.
        let per_hz = thermal_noise_dbm(1.0);
        assert!((per_hz - (-173.98)).abs() < 0.05);
        // 300 kHz channel: about -119.2 dBm.
        let mics = thermal_noise_dbm(300e3);
        assert!((mics - (-119.2)).abs() < 0.1);
    }

    #[test]
    fn mics_wavelength_is_75cm() {
        let lambda = wavelength_m(403.5e6);
        assert!((lambda - 0.743).abs() < 0.01);
    }

    #[test]
    fn dbm_mw_roundtrip() {
        for &dbm in &[-30.0, -16.0, 0.0, 10.0] {
            assert!((dbm_from_mw(mw_from_dbm(dbm)) - dbm).abs() < 1e-12);
        }
    }
}
