//! Window functions for filter design and spectral estimation.

use crate::special::bessel_i0;
use std::f64::consts::PI;

/// Supported window shapes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Window {
    /// Rectangular (no tapering). Highest leakage, narrowest main lobe.
    Rectangular,
    /// Hamming window: first sidelobe about −43 dB.
    Hamming,
    /// Hann window: sidelobes fall off at 18 dB/octave.
    Hann,
    /// Blackman window: first sidelobe about −58 dB.
    Blackman,
    /// Kaiser window with shape parameter beta.
    Kaiser(f64),
}

impl Window {
    /// Evaluates the window at tap `n` of an `len`-tap window.
    ///
    /// Uses the symmetric convention: `w(0) == w(len-1)`.
    pub fn value(self, n: usize, len: usize) -> f64 {
        assert!(len >= 1, "window length must be >= 1");
        if len == 1 {
            return 1.0;
        }
        let x = n as f64 / (len - 1) as f64; // 0..=1
        match self {
            Window::Rectangular => 1.0,
            Window::Hamming => 0.54 - 0.46 * (2.0 * PI * x).cos(),
            Window::Hann => 0.5 - 0.5 * (2.0 * PI * x).cos(),
            Window::Blackman => 0.42 - 0.5 * (2.0 * PI * x).cos() + 0.08 * (4.0 * PI * x).cos(),
            Window::Kaiser(beta) => {
                let t = 2.0 * x - 1.0; // -1..=1
                bessel_i0(beta * (1.0 - t * t).sqrt()) / bessel_i0(beta)
            }
        }
    }

    /// Generates the full window as a vector of `len` coefficients.
    pub fn coefficients(self, len: usize) -> Vec<f64> {
        (0..len).map(|n| self.value(n, len)).collect()
    }

    /// Kaiser window beta for a desired stopband attenuation in dB
    /// (Kaiser's empirical formula).
    pub fn kaiser_beta(atten_db: f64) -> f64 {
        if atten_db > 50.0 {
            0.1102 * (atten_db - 8.7)
        } else if atten_db >= 21.0 {
            0.5842 * (atten_db - 21.0).powf(0.4) + 0.078_86 * (atten_db - 21.0)
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_are_symmetric() {
        for w in [
            Window::Rectangular,
            Window::Hamming,
            Window::Hann,
            Window::Blackman,
            Window::Kaiser(6.0),
        ] {
            let c = w.coefficients(33);
            for i in 0..c.len() {
                assert!(
                    (c[i] - c[c.len() - 1 - i]).abs() < 1e-12,
                    "{w:?} not symmetric at {i}"
                );
            }
        }
    }

    #[test]
    fn windows_peak_at_center() {
        for w in [
            Window::Hamming,
            Window::Hann,
            Window::Blackman,
            Window::Kaiser(8.0),
        ] {
            let c = w.coefficients(65);
            let peak = c[32];
            assert!((peak - 1.0).abs() < 1e-9, "{w:?} center is {peak}");
            for (i, &v) in c.iter().enumerate() {
                assert!(v <= peak + 1e-12, "{w:?} exceeds center at {i}");
            }
        }
    }

    #[test]
    fn hann_endpoints_are_zero() {
        let c = Window::Hann.coefficients(16);
        assert!(c[0].abs() < 1e-12);
        assert!(c[15].abs() < 1e-12);
    }

    #[test]
    fn hamming_endpoints() {
        let c = Window::Hamming.coefficients(16);
        assert!((c[0] - 0.08).abs() < 1e-12);
    }

    #[test]
    fn kaiser_beta_zero_is_rectangular() {
        let k = Window::Kaiser(0.0).coefficients(11);
        for v in k {
            assert!((v - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn kaiser_beta_formula_regions() {
        assert_eq!(Window::kaiser_beta(10.0), 0.0);
        assert!(Window::kaiser_beta(30.0) > 0.0);
        assert!((Window::kaiser_beta(60.0) - 0.1102 * 51.3).abs() < 1e-9);
        // Monotone in attenuation.
        assert!(Window::kaiser_beta(80.0) > Window::kaiser_beta(60.0));
    }

    #[test]
    fn length_one_window_is_unity() {
        for w in [Window::Hamming, Window::Hann, Window::Blackman] {
            assert_eq!(w.coefficients(1), vec![1.0]);
        }
    }
}
