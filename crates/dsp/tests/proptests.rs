//! Property-based tests for the DSP substrate.

use hb_dsp::cfo::{apply_cfo, correct_cfo};
use hb_dsp::complex::{inner_product, mean_power, C64};
use hb_dsp::fft::{fft, ifft, next_pow2, FftPlan};
use hb_dsp::fir::{convolve_real, design_lowpass, StreamingFir};
use hb_dsp::goertzel::{goertzel, tone_correlate};
use hb_dsp::kernels::{ln_batch, sincos_turns_batch};
use hb_dsp::noise::NoiseSource;
use hb_dsp::osc::Rotator;
use hb_dsp::stats::{bootstrap_mean_interval, wilson_interval, Cdf, Z_95};
use hb_dsp::units::{db_from_ratio, ratio_from_db};
use hb_dsp::window::Window;
use proptest::prelude::*;

fn sig_strategy(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
    prop::collection::vec((-1e3f64..1e3, -1e3f64..1e3), 1..max_len)
        .prop_map(|v| v.into_iter().map(|(re, im)| C64::new(re, im)).collect())
}

proptest! {
    /// dB conversions round-trip.
    #[test]
    fn db_roundtrip(db in -120.0f64..120.0) {
        prop_assert!((db_from_ratio(ratio_from_db(db)) - db).abs() < 1e-9);
    }

    /// FFT is linear: F(a·x + y) == a·F(x) + F(y).
    #[test]
    fn fft_linearity(x in sig_strategy(64), scale in -10.0f64..10.0) {
        let n = next_pow2(x.len());
        let mut a = x.clone();
        a.resize(n, C64::ZERO);
        let mut b: Vec<C64> = a.iter().rev().copied().collect();
        b.resize(n, C64::ZERO);
        let combined: Vec<C64> = a.iter().zip(&b).map(|(&p, &q)| p.scale(scale) + q).collect();
        let fa = fft(&a);
        let fb = fft(&b);
        let fc = fft(&combined);
        for i in 0..n {
            let expect = fa[i].scale(scale) + fb[i];
            prop_assert!((fc[i] - expect).abs() < 1e-6 * (1.0 + expect.abs()));
        }
    }

    /// Forward/inverse FFT with a shared plan round-trips.
    #[test]
    fn plan_roundtrip(x in sig_strategy(128)) {
        let n = next_pow2(x.len());
        let mut buf = x.clone();
        buf.resize(n, C64::ZERO);
        let orig = buf.clone();
        let plan = FftPlan::new(n);
        plan.forward(&mut buf);
        plan.inverse(&mut buf);
        for (a, b) in orig.iter().zip(&buf) {
            prop_assert!((*a - *b).abs() < 1e-6);
        }
    }

    /// ifft(fft(x)) preserves mean power.
    #[test]
    fn fft_power_preservation(x in sig_strategy(64)) {
        let n = next_pow2(x.len());
        let mut buf = x;
        buf.resize(n, C64::ZERO);
        let p0 = mean_power(&buf);
        let back = ifft(&fft(&buf));
        prop_assert!((mean_power(&back) - p0).abs() < 1e-6 * (1.0 + p0));
    }

    /// Goertzel equals the direct correlation at any frequency.
    #[test]
    fn goertzel_equals_correlation(x in sig_strategy(64), f in -140e3f64..140e3) {
        let g = goertzel(&x, f, 300e3);
        let d = tone_correlate(&x, f, 300e3);
        prop_assert!((g - d).abs() < 1e-5 * (1.0 + d.abs()));
    }

    /// Convolution is linear in the signal.
    #[test]
    fn convolution_linearity(x in sig_strategy(48), scale in -4.0f64..4.0) {
        let taps = design_lowpass(40e3, 300e3, 15, Window::Hamming);
        let scaled: Vec<C64> = x.iter().map(|&s| s.scale(scale)).collect();
        let y1 = convolve_real(&scaled, &taps);
        let y0 = convolve_real(&x, &taps);
        for (a, b) in y1.iter().zip(&y0) {
            prop_assert!((*a - b.scale(scale)).abs() < 1e-6 * (1.0 + b.abs()));
        }
    }

    /// Streaming filtering equals batch convolution regardless of chunking.
    #[test]
    fn streaming_equals_batch(x in sig_strategy(96), chunk in 1usize..32) {
        let taps = design_lowpass(50e3, 300e3, 11, Window::Hann);
        let batch = convolve_real(&x, &taps);
        let mut f = StreamingFir::from_real(&taps);
        let mut out = Vec::new();
        for c in x.chunks(chunk) {
            out.extend(f.process(c));
        }
        for i in 0..x.len() {
            prop_assert!((out[i] - batch[i]).abs() < 1e-9);
        }
    }

    /// CFO application is invertible.
    #[test]
    fn cfo_invertible(x in sig_strategy(64), f in -50e3f64..50e3) {
        let shifted = apply_cfo(&x, f, 300e3, 0, 0.0);
        let back = correct_cfo(&shifted, f, 300e3);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((*a - *b).abs() < 1e-9 * (1.0 + a.abs()));
        }
    }

    /// CDF is a valid distribution function: monotone, ends at 1.
    #[test]
    fn cdf_is_monotone(samples in prop::collection::vec(-1e6f64..1e6, 1..200)) {
        let cdf = Cdf::from_samples(samples);
        let pts = cdf.points();
        let mut last = 0.0;
        for &(_, p) in &pts {
            prop_assert!(p >= last);
            last = p;
        }
        prop_assert!((last - 1.0).abs() < 1e-12);
        prop_assert!(cdf.quantile(0.0) <= cdf.quantile(1.0));
    }

    /// Wilson intervals always contain the point estimate, stay within
    /// [0, 1], and are properly ordered — for any (successes, trials, z).
    #[test]
    fn wilson_contains_point_estimate(
        trials in 1u64..100_000,
        frac in 0.0f64..=1.0,
        z in 0.5f64..4.0,
    ) {
        let successes = ((trials as f64) * frac).round() as u64;
        let successes = successes.min(trials);
        let p = successes as f64 / trials as f64;
        let (lo, hi) = wilson_interval(successes, trials, z);
        prop_assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        prop_assert!(lo <= hi);
        prop_assert!(lo <= p + 1e-12 && p <= hi + 1e-12, "({lo}, {hi}) vs p {p}");
    }

    /// Wilson interval half-widths shrink monotonically as the sample
    /// grows at a fixed observed proportion (4x the data, same p̂).
    #[test]
    fn wilson_shrinks_with_n(
        trials in 4u64..100_000,
        frac in 0.0f64..=1.0,
    ) {
        let successes = ((trials as f64) * frac).round() as u64;
        let successes = successes.min(trials);
        let (lo1, hi1) = wilson_interval(successes, trials, Z_95);
        let (lo4, hi4) = wilson_interval(4 * successes, 4 * trials, Z_95);
        prop_assert!(
            hi4 - lo4 < hi1 - lo1,
            "width at 4n ({}) must be below width at n ({})",
            hi4 - lo4,
            hi1 - lo1
        );
    }

    /// Bootstrap intervals bracket the sample mean and never leave the
    /// sample range, for any sample set, resample count, and seed.
    #[test]
    fn bootstrap_brackets_sample_mean(
        samples in prop::collection::vec(-1e6f64..1e6, 2..80),
        resamples in 20usize..200,
        seed in 0u64..1_000_000,
    ) {
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        let (lo, hi) = bootstrap_mean_interval(&samples, resamples, 0.05, seed);
        prop_assert!(lo <= hi);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(lo >= min - 1e-9 && hi <= max + 1e-9);
        // The percentile interval brackets the sample mean up to quantile
        // granularity (slack of one resample's worth of range on each
        // side covers nearest-rank rounding at small resample counts).
        let slack = (max - min) / resamples as f64 + 1e-9;
        prop_assert!(lo <= mean + slack && mean <= hi + slack, "({lo}, {hi}) vs mean {mean}");
    }

    /// Inner product is conjugate-symmetric: <a,b> = conj(<b,a>).
    #[test]
    fn inner_product_conjugate_symmetry(x in sig_strategy(32)) {
        let y: Vec<C64> = x.iter().rev().copied().collect();
        let ab = inner_product(&x, &y);
        let ba = inner_product(&y, &x);
        prop_assert!((ab - ba.conj()).abs() < 1e-6 * (1.0 + ab.abs()));
    }

    /// Windows are symmetric and bounded by 1 at the center.
    #[test]
    fn window_symmetry(len in 2usize..128) {
        for w in [Window::Hamming, Window::Hann, Window::Blackman, Window::Kaiser(7.0)] {
            let c = w.coefficients(len);
            for i in 0..len {
                prop_assert!((c[i] - c[len - 1 - i]).abs() < 1e-9);
                prop_assert!(c[i] <= 1.0 + 1e-9);
            }
        }
    }

    /// The oscillator recurrence stays within 1e-9 of the exact
    /// `sin`/`cos` evaluation over a million samples, at any step and
    /// start phase — the accuracy contract that lets modulation, jam
    /// synthesis and CFO rotation all ride the recurrence.
    #[test]
    fn rotator_tracks_sincos_over_1m_samples(
        dphi in -1.5f64..1.5,
        phase0 in -3.0f64..3.0,
    ) {
        let mut osc = Rotator::new(phase0, dphi);
        // Checking every one of the 1e6 samples against libm costs more
        // than the recurrence itself; stride the comparison and always
        // include the final (worst-accumulated-error) samples.
        let total: u64 = 1_000_000;
        let mut worst = 0.0f64;
        for n in 0..total {
            let got = osc.next();
            if n % 97 == 0 || n > total - 1000 {
                let phase = phase0 + n as f64 * dphi;
                let want = C64::new(phase.cos(), phase.sin());
                worst = worst.max((got - want).abs());
            }
        }
        prop_assert!(worst < 1e-9, "worst recurrence error {worst:e}");
    }

    /// Batch ln matches libm to 2e-12 relative over the unit interval.
    #[test]
    fn ln_batch_matches_std(xs in prop::collection::vec(1e-12f64..1.0, 1..200)) {
        let mut out = vec![0.0; xs.len()];
        ln_batch(&xs, &mut out);
        for (&x, &got) in xs.iter().zip(out.iter()) {
            let want = x.ln();
            prop_assert!(
                (got - want).abs() <= want.abs() * 2e-12 + 1e-15,
                "ln({x:e}) = {got} vs {want}"
            );
        }
    }

    /// Batch sincos matches libm to 2e-10 absolute over the full turn.
    #[test]
    fn sincos_batch_matches_std(us in prop::collection::vec(0.0f64..1.0, 1..200)) {
        let mut s = vec![0.0; us.len()];
        let mut c = vec![0.0; us.len()];
        sincos_turns_batch(&us, &mut s, &mut c);
        for (i, &u) in us.iter().enumerate() {
            let (ws, wc) = (2.0 * std::f64::consts::PI * u).sin_cos();
            prop_assert!((s[i] - ws).abs() < 2e-10, "sin(2pi*{u})");
            prop_assert!((c[i] - wc).abs() < 2e-10, "cos(2pi*{u})");
        }
    }

    /// NoiseSource fills are split-invariant: any partition of a buffer
    /// into consecutive fills yields bit-identical samples.
    #[test]
    fn noise_fill_is_split_invariant(
        seed in 0u64..1_000_000,
        cut in 1usize..511,
        power in 1e-12f64..1e3,
    ) {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let n = 512;
        let src = NoiseSource::new(power);
        let mut whole = vec![C64::ZERO; n];
        src.fill(&mut StdRng::seed_from_u64(seed), &mut whole);
        let mut rng = StdRng::seed_from_u64(seed);
        let mut a = vec![C64::ZERO; cut];
        let mut b = vec![C64::ZERO; n - cut];
        src.fill(&mut rng, &mut a);
        src.fill(&mut rng, &mut b);
        a.extend(b);
        for (x, y) in whole.iter().zip(a.iter()) {
            prop_assert!(x.re.to_bits() == y.re.to_bits() && x.im.to_bits() == y.im.to_bits());
        }
    }
}
