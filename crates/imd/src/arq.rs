//! Link-layer ARQ: programmer-side exchange tracking with reply timeout,
//! bounded retries, and deterministic exponential backoff.
//!
//! The MICS link has no link-layer acknowledgements of its own — the
//! paper's exchanges are fire-and-forget, which is fine in a clean lab
//! and useless in a ward. [`ArqTracker`] is the minimal stop-and-wait
//! machine an operator console would run on top of the relay path: send
//! the command, await the IMD's reply (the reply *is* the ACK — the
//! protocol has no separate acknowledgement frame), and on timeout back
//! off and retry a bounded number of times.
//!
//! The tracker is a pure state machine over sample ticks: no RNG, no
//! clock reads, no channel access. Backoff is deterministic
//! (`base · 2^(attempt−1)`, capped) on purpose: randomized backoff buys
//! nothing against channel faults (there is exactly one station per
//! session — collisions with *ourselves* are impossible), and a
//! deterministic schedule keeps every simulation bit-reproducible.
//! Retries are bounded because unbounded retransmission is itself a
//! battery-depletion attack on the implant (each duplicate command costs
//! irreplaceable IMD energy); after the budget is spent the tracker
//! reports failure and leaves recovery — e.g. a MICS channel rescan — to
//! the session layer.

use hb_channel::medium::Tick;

/// ARQ policy knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArqConfig {
    /// How long to wait for the IMD's reply after starting an attempt,
    /// seconds. Must cover the command airtime plus `T2` plus the reply
    /// airtime (a full exchange runs ~46 ms; the default adds margin).
    pub reply_timeout_s: f64,
    /// Retries after the first attempt (`0` = fire-and-forget with a
    /// delivery verdict).
    pub max_retries: u32,
    /// First backoff, seconds. Attempt `k`'s timeout is followed by a
    /// `base · 2^(k−1)` pause, capped at
    /// [`backoff_max_s`](ArqConfig::backoff_max_s).
    pub backoff_base_s: f64,
    /// Backoff cap, seconds.
    pub backoff_max_s: f64,
    /// Sample rate used to convert the above to ticks, Hz.
    pub fs_hz: f64,
}

impl Default for ArqConfig {
    fn default() -> Self {
        ArqConfig {
            reply_timeout_s: 0.060,
            max_retries: 5,
            backoff_base_s: 0.010,
            backoff_max_s: 0.080,
            fs_hz: 300e3,
        }
    }
}

impl ArqConfig {
    /// The same policy with retries disabled (the no-ARQ baseline arm of
    /// the resilience experiments).
    pub fn without_retries(mut self) -> Self {
        self.max_retries = 0;
        self
    }

    fn ticks(&self, seconds: f64) -> Tick {
        ((seconds * self.fs_hz).round() as Tick).max(1)
    }
}

/// What the driver should do this block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ArqAction {
    /// Start (re-)transmitting the command now; `attempt` is 1-based.
    Transmit {
        /// 1-based attempt number.
        attempt: u32,
    },
    /// Nothing to do — awaiting a reply or backing off.
    Wait,
    /// The exchange completed (a reply was delivered).
    Done,
    /// All attempts exhausted without a reply.
    Failed,
}

/// Counters exposed for experiments.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ArqStats {
    /// Transmission attempts started (1 on a clean exchange).
    pub attempts: u32,
    /// Reply timeouts observed.
    pub timeouts: u32,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Idle,
    Awaiting { deadline: Tick, attempt: u32 },
    BackingOff { resume: Tick, attempt: u32 },
    Done,
    Failed,
}

/// The stop-and-wait ARQ tracker. See the module docs.
#[derive(Debug, Clone)]
pub struct ArqTracker {
    cfg: ArqConfig,
    state: State,
    /// Counters for experiments.
    pub stats: ArqStats,
}

impl ArqTracker {
    /// A fresh tracker for one exchange.
    pub fn new(cfg: ArqConfig) -> Self {
        ArqTracker {
            cfg,
            state: State::Idle,
            stats: ArqStats::default(),
        }
    }

    /// The policy.
    pub fn config(&self) -> &ArqConfig {
        &self.cfg
    }

    /// Deterministic backoff after attempt `attempt` (1-based) timed out:
    /// `base · 2^(attempt−1)`, capped.
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let exp = attempt.saturating_sub(1).min(30);
        (self.cfg.backoff_base_s * f64::powi(2.0, exp as i32)).min(self.cfg.backoff_max_s)
    }

    /// Advances the machine to `now` and returns the action to take.
    /// Call once per block with a non-decreasing tick.
    pub fn poll(&mut self, now: Tick) -> ArqAction {
        match self.state {
            State::Idle => self.start_attempt(now, 1),
            State::Awaiting { deadline, attempt } => {
                if now < deadline {
                    ArqAction::Wait
                } else {
                    self.stats.timeouts += 1;
                    if attempt > self.cfg.max_retries {
                        self.state = State::Failed;
                        ArqAction::Failed
                    } else {
                        let resume = now + self.cfg.ticks(self.backoff_s(attempt));
                        self.state = State::BackingOff { resume, attempt };
                        ArqAction::Wait
                    }
                }
            }
            State::BackingOff { resume, attempt } => {
                if now < resume {
                    ArqAction::Wait
                } else {
                    self.start_attempt(now, attempt + 1)
                }
            }
            State::Done => ArqAction::Done,
            State::Failed => ArqAction::Failed,
        }
    }

    fn start_attempt(&mut self, now: Tick, attempt: u32) -> ArqAction {
        self.stats.attempts = attempt;
        self.state = State::Awaiting {
            deadline: now + self.cfg.ticks(self.cfg.reply_timeout_s),
            attempt,
        };
        ArqAction::Transmit { attempt }
    }

    /// Records a delivered reply. Accepted even while backing off (a
    /// conservative timeout beaten by a late reply still completes the
    /// exchange). A no-op once the machine already failed or finished.
    pub fn on_delivered(&mut self) {
        match self.state {
            State::Idle | State::Awaiting { .. } | State::BackingOff { .. } => {
                self.state = State::Done;
            }
            State::Done | State::Failed => {}
        }
    }

    /// True once the exchange is over, either way.
    pub fn finished(&self) -> bool {
        matches!(self.state, State::Done | State::Failed)
    }

    /// True if a reply was delivered.
    pub fn delivered(&self) -> bool {
        matches!(self.state, State::Done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ticks(cfg: &ArqConfig, s: f64) -> Tick {
        (s * cfg.fs_hz).round() as Tick
    }

    #[test]
    fn clean_exchange_is_one_attempt() {
        let cfg = ArqConfig::default();
        let mut t = ArqTracker::new(cfg);
        assert_eq!(t.poll(0), ArqAction::Transmit { attempt: 1 });
        assert_eq!(t.poll(16), ArqAction::Wait);
        t.on_delivered();
        assert_eq!(t.poll(32), ArqAction::Done);
        assert!(t.delivered());
        assert_eq!(t.stats.attempts, 1);
        assert_eq!(t.stats.timeouts, 0);
    }

    #[test]
    fn timeout_backs_off_then_retransmits() {
        let cfg = ArqConfig::default();
        let mut t = ArqTracker::new(cfg);
        assert_eq!(t.poll(0), ArqAction::Transmit { attempt: 1 });
        let deadline = ticks(&cfg, cfg.reply_timeout_s);
        assert_eq!(t.poll(deadline - 1), ArqAction::Wait);
        // Deadline reached: timeout, enter backoff.
        assert_eq!(t.poll(deadline), ArqAction::Wait);
        assert_eq!(t.stats.timeouts, 1);
        // Backoff elapses: attempt 2 goes out.
        let resume = deadline + ticks(&cfg, cfg.backoff_base_s);
        assert_eq!(t.poll(resume - 1), ArqAction::Wait);
        assert_eq!(t.poll(resume), ArqAction::Transmit { attempt: 2 });
        assert_eq!(t.stats.attempts, 2);
    }

    #[test]
    fn no_retry_config_fails_after_one_timeout() {
        let cfg = ArqConfig::default().without_retries();
        let mut t = ArqTracker::new(cfg);
        assert_eq!(t.poll(0), ArqAction::Transmit { attempt: 1 });
        let deadline = ticks(&cfg, cfg.reply_timeout_s);
        assert_eq!(t.poll(deadline), ArqAction::Failed);
        assert!(t.finished());
        assert!(!t.delivered());
        assert_eq!(t.stats.attempts, 1);
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let t = ArqTracker::new(ArqConfig::default());
        assert_eq!(t.backoff_s(1), 0.010);
        assert_eq!(t.backoff_s(2), 0.020);
        assert_eq!(t.backoff_s(3), 0.040);
        assert_eq!(t.backoff_s(4), 0.080);
        assert_eq!(t.backoff_s(5), 0.080, "capped");
        assert_eq!(t.backoff_s(20), 0.080, "still capped");
    }

    #[test]
    fn late_reply_during_backoff_completes() {
        let cfg = ArqConfig::default();
        let mut t = ArqTracker::new(cfg);
        t.poll(0);
        let deadline = ticks(&cfg, cfg.reply_timeout_s);
        assert_eq!(t.poll(deadline), ArqAction::Wait); // backing off
        t.on_delivered();
        assert_eq!(t.poll(deadline + 1), ArqAction::Done);
        assert_eq!(t.stats.attempts, 1);
        assert_eq!(t.stats.timeouts, 1);
    }
}
