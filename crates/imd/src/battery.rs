//! IMD battery model.
//!
//! IMDs are "typically nonrechargeable power-limited devices" (§7(e));
//! every radio transmission spends irreplaceable energy, which is why the
//! paper treats *triggering the IMD to transmit* as an attack in its own
//! right (Fig. 11). The model tracks radio energy separately from the
//! (dominant, constant) therapy/housekeeping drain so experiments can
//! quantify how much lifetime an attack burns.

/// Battery state of an implanted device.
#[derive(Debug, Clone)]
pub struct Battery {
    /// Usable capacity, joules.
    capacity_j: f64,
    /// Energy consumed so far, joules.
    consumed_j: f64,
    /// Baseline (pacing + housekeeping) drain, watts.
    baseline_w: f64,
    /// Radio power draw while transmitting, watts (circuit power, which
    /// dwarfs the microwatt RF output).
    tx_draw_w: f64,
    /// Cumulative radio-only energy, joules.
    radio_j: f64,
}

impl Battery {
    /// A typical ICD battery: ~2 Ah at ~3 V ≈ 20 kJ usable, ~7-year
    /// baseline life, ~30 mW radio draw while transmitting.
    pub fn typical_icd() -> Self {
        Battery {
            capacity_j: 20_000.0,
            consumed_j: 0.0,
            baseline_w: 90e-6, // ~20 kJ / 7 years
            tx_draw_w: 30e-3,
            radio_j: 0.0,
        }
    }

    /// Creates a battery with explicit parameters.
    pub fn new(capacity_j: f64, baseline_w: f64, tx_draw_w: f64) -> Self {
        assert!(capacity_j > 0.0 && baseline_w > 0.0 && tx_draw_w >= 0.0);
        Battery {
            capacity_j,
            consumed_j: 0.0,
            baseline_w,
            tx_draw_w,
            radio_j: 0.0,
        }
    }

    /// Accounts for `dt_s` seconds of baseline operation.
    pub fn tick_baseline(&mut self, dt_s: f64) {
        self.consumed_j += self.baseline_w * dt_s;
    }

    /// Accounts for `dt_s` seconds of radio transmission.
    pub fn spend_tx(&mut self, dt_s: f64) {
        let e = self.tx_draw_w * dt_s;
        self.consumed_j += e;
        self.radio_j += e;
    }

    /// Remaining fraction in [0, 1].
    pub fn remaining_fraction(&self) -> f64 {
        ((self.capacity_j - self.consumed_j) / self.capacity_j).clamp(0.0, 1.0)
    }

    /// Remaining percentage (rounded down), as reported in Status frames.
    pub fn remaining_pct(&self) -> u8 {
        (self.remaining_fraction() * 100.0).floor() as u8
    }

    /// True when the battery has reached end of service.
    pub fn depleted(&self) -> bool {
        self.consumed_j >= self.capacity_j
    }

    /// Total energy spent on radio transmissions, joules.
    pub fn radio_energy_j(&self) -> f64 {
        self.radio_j
    }

    /// Projected remaining lifetime at the baseline drain alone, seconds.
    pub fn remaining_lifetime_s(&self) -> f64 {
        (self.capacity_j - self.consumed_j).max(0.0) / self.baseline_w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_battery_full() {
        let b = Battery::typical_icd();
        assert_eq!(b.remaining_pct(), 100);
        assert!(!b.depleted());
        // ~7 years of baseline life.
        let years = b.remaining_lifetime_s() / (365.25 * 86400.0);
        assert!((6.0..8.5).contains(&years), "lifetime {years} years");
    }

    #[test]
    fn tx_spends_radio_energy() {
        let mut b = Battery::typical_icd();
        b.spend_tx(1.0);
        assert!((b.radio_energy_j() - 0.03).abs() < 1e-12);
        assert!(b.remaining_fraction() < 1.0);
    }

    #[test]
    fn depletion_attack_shortens_lifetime() {
        // A day of forced continuous transmission costs ~2.6 kJ of a 20 kJ
        // battery — about 13% of total life in one day.
        let mut attacked = Battery::typical_icd();
        attacked.spend_tx(86_400.0);
        let mut idle = Battery::typical_icd();
        idle.tick_baseline(86_400.0);
        let lost_s = idle.remaining_lifetime_s() - attacked.remaining_lifetime_s();
        let lost_days = lost_s / 86_400.0;
        assert!(lost_days > 300.0, "attack cost only {lost_days} days");
    }

    #[test]
    fn depletes_and_clamps() {
        let mut b = Battery::new(1.0, 1e-6, 1.0);
        b.spend_tx(2.0);
        assert!(b.depleted());
        assert_eq!(b.remaining_pct(), 0);
        assert_eq!(b.remaining_fraction(), 0.0);
        assert_eq!(b.remaining_lifetime_s(), 0.0);
    }

    #[test]
    fn baseline_accumulates() {
        let mut b = Battery::new(100.0, 1.0, 0.0);
        b.tick_baseline(25.0);
        assert!((b.remaining_fraction() - 0.75).abs() < 1e-12);
        assert_eq!(b.remaining_pct(), 75);
    }
}
