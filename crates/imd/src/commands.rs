//! The programmer → IMD command set and IMD → programmer responses.
//!
//! Modeled on the interactions the paper exercises (§10.3): interrogation
//! (identity/status, used for the battery-depletion attack because every
//! reply costs transmit energy), telemetry reads (private patient data —
//! the confidentiality target), and therapy modification (the dangerous
//! one). Payloads fit the 10-byte frame payload budget; bulk data (ECG) is
//! fetched chunk-by-chunk with an offset, as real telemetry protocols
//! fragment large records.

use crate::therapy::TherapyParams;

/// A command carried in a `FrameType::Command` frame payload.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Command {
    /// Identify yourself and report status (triggers a reply — the
    /// battery-depletion attack repeats this).
    Interrogate,
    /// Read the current therapy parameters.
    ReadTherapy,
    /// Replace the therapy parameters.
    SetTherapy(TherapyParams),
    /// Read one chunk of stored ECG, by chunk index.
    ReadEcg {
        /// Which 8-sample chunk to return.
        chunk: u16,
    },
    /// Read the patient record chunk (name, ids), by chunk index.
    ReadPatient {
        /// Which 8-byte chunk to return.
        chunk: u16,
    },
}

/// Command opcodes.
mod opcode {
    pub const INTERROGATE: u8 = 0x10;
    pub const READ_THERAPY: u8 = 0x20;
    pub const SET_THERAPY: u8 = 0x21;
    pub const READ_ECG: u8 = 0x30;
    pub const READ_PATIENT: u8 = 0x31;
}

impl Command {
    /// Serializes to a frame payload.
    pub fn to_payload(&self) -> Vec<u8> {
        match self {
            Command::Interrogate => vec![opcode::INTERROGATE],
            Command::ReadTherapy => vec![opcode::READ_THERAPY],
            Command::SetTherapy(p) => {
                let mut v = vec![opcode::SET_THERAPY];
                v.extend_from_slice(&p.to_bytes());
                v
            }
            Command::ReadEcg { chunk } => {
                let mut v = vec![opcode::READ_ECG];
                v.extend_from_slice(&chunk.to_be_bytes());
                v
            }
            Command::ReadPatient { chunk } => {
                let mut v = vec![opcode::READ_PATIENT];
                v.extend_from_slice(&chunk.to_be_bytes());
                v
            }
        }
    }

    /// Parses a frame payload.
    pub fn from_payload(payload: &[u8]) -> Option<Command> {
        let (&op, rest) = payload.split_first()?;
        match op {
            opcode::INTERROGATE => Some(Command::Interrogate),
            opcode::READ_THERAPY => Some(Command::ReadTherapy),
            opcode::SET_THERAPY => TherapyParams::from_bytes(rest).map(Command::SetTherapy),
            opcode::READ_ECG => {
                if rest.len() < 2 {
                    return None;
                }
                Some(Command::ReadEcg {
                    chunk: u16::from_be_bytes([rest[0], rest[1]]),
                })
            }
            opcode::READ_PATIENT => {
                if rest.len() < 2 {
                    return None;
                }
                Some(Command::ReadPatient {
                    chunk: u16::from_be_bytes([rest[0], rest[1]]),
                })
            }
            _ => None,
        }
    }
}

/// A response carried in a `FrameType::Response` frame payload.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Identity/status report: model code, battery percent.
    Status {
        /// Device model code.
        model: u8,
        /// Remaining battery, percent.
        battery_pct: u8,
    },
    /// Current therapy parameters.
    Therapy(TherapyParams),
    /// Acknowledgement of a SetTherapy.
    Ack,
    /// Rejection (e.g. invalid parameters).
    Nak,
    /// A chunk of data (ECG or patient record).
    Data {
        /// Echo of the requested chunk index.
        chunk: u16,
        /// Up to 7 bytes of record data.
        bytes: Vec<u8>,
    },
}

mod rcode {
    pub const STATUS: u8 = 0x90;
    pub const THERAPY: u8 = 0xA0;
    pub const ACK: u8 = 0xA1;
    pub const NAK: u8 = 0xA2;
    pub const DATA: u8 = 0xB0;
}

impl Response {
    /// Serializes to a frame payload (≤ 10 bytes).
    pub fn to_payload(&self) -> Vec<u8> {
        match self {
            Response::Status { model, battery_pct } => vec![rcode::STATUS, *model, *battery_pct],
            Response::Therapy(p) => {
                let mut v = vec![rcode::THERAPY];
                v.extend_from_slice(&p.to_bytes());
                v
            }
            Response::Ack => vec![rcode::ACK],
            Response::Nak => vec![rcode::NAK],
            Response::Data { chunk, bytes } => {
                assert!(bytes.len() <= 7, "data chunk too large for payload");
                let mut v = vec![rcode::DATA];
                v.extend_from_slice(&chunk.to_be_bytes());
                v.extend_from_slice(bytes);
                v
            }
        }
    }

    /// Parses a frame payload.
    pub fn from_payload(payload: &[u8]) -> Option<Response> {
        let (&op, rest) = payload.split_first()?;
        match op {
            rcode::STATUS => {
                if rest.len() < 2 {
                    return None;
                }
                Some(Response::Status {
                    model: rest[0],
                    battery_pct: rest[1],
                })
            }
            rcode::THERAPY => TherapyParams::from_bytes(rest).map(Response::Therapy),
            rcode::ACK => Some(Response::Ack),
            rcode::NAK => Some(Response::Nak),
            rcode::DATA => {
                if rest.len() < 2 {
                    return None;
                }
                Some(Response::Data {
                    chunk: u16::from_be_bytes([rest[0], rest[1]]),
                    bytes: rest[2..].to_vec(),
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn command_roundtrips() {
        let cmds = [
            Command::Interrogate,
            Command::ReadTherapy,
            Command::SetTherapy(TherapyParams::nominal()),
            Command::ReadEcg { chunk: 1234 },
            Command::ReadPatient { chunk: 7 },
        ];
        for c in cmds {
            let p = c.to_payload();
            assert!(p.len() <= 10, "{c:?} payload too big: {}", p.len());
            assert_eq!(Command::from_payload(&p), Some(c));
        }
    }

    #[test]
    fn response_roundtrips() {
        let resps = [
            Response::Status {
                model: 3,
                battery_pct: 87,
            },
            Response::Therapy(TherapyParams::nominal()),
            Response::Ack,
            Response::Nak,
            Response::Data {
                chunk: 500,
                bytes: vec![1, 2, 3, 4, 5, 6, 7],
            },
        ];
        for r in resps {
            let p = r.to_payload();
            assert!(p.len() <= 10, "{r:?} payload too big: {}", p.len());
            assert_eq!(Response::from_payload(&p), Some(r));
        }
    }

    #[test]
    fn garbage_rejected() {
        assert_eq!(Command::from_payload(&[]), None);
        assert_eq!(Command::from_payload(&[0xFF]), None);
        assert_eq!(Command::from_payload(&[0x30]), None); // missing chunk
        assert_eq!(Response::from_payload(&[0x42]), None);
        assert_eq!(Response::from_payload(&[]), None);
    }

    #[test]
    fn set_therapy_with_truncated_params_rejected() {
        assert_eq!(Command::from_payload(&[0x21, 1, 2]), None);
    }
}
