//! The IMD device model: a medium [`Node`] implementing the behaviour the
//! paper measured on the real Virtuoso/Concerto devices.
//!
//! The properties everything else is built on:
//!
//! * **Responds only when spoken to** (§2, FCC requirement): the device
//!   never initiates; it transmits a response a bounded time after
//!   decoding a valid command.
//! * **No carrier sense** (Fig. 3b): the reply is scheduled blindly into
//!   the reply window `[T1, T2]`, regardless of channel occupancy.
//! * **Checksum discard** (§3.1): frames failing CRC are dropped silently.
//!   This — combined with jamming-induced bit errors — is the entire
//!   mechanism by which the shield neutralizes unauthorized commands.
//! * **Half duplex**: while transmitting, the receiver is deaf.

use crate::battery::Battery;
use crate::commands::{Command, Response};
use crate::fence::{self, FenceState};
use crate::models::{ImdConfig, SecurityMode};
use crate::telemetry::{EcgGenerator, PatientRecord};
use crate::therapy::TherapyParams;
use crate::wakeup::{self, WakeGate};
use hb_channel::medium::{AntennaId, Medium};
use hb_channel::sim::Node;
use hb_channel::txsched::TxScheduler;
use hb_dsp::complex::C64;
use hb_dsp::units::ratio_from_db;
use hb_phy::fsk::FskModem;
use hb_phy::packet::{Frame, FrameType};
use hb_phy::stream::{DetectorEvent, StreamingDetector};
use rand::rngs::StdRng;
use rand::Rng;

/// Counters exposed for experiments.
#[derive(Debug, Clone, Default)]
pub struct ImdStats {
    /// Valid, addressed, parseable commands executed.
    pub commands_executed: u64,
    /// Response frames transmitted.
    pub responses_sent: u64,
    /// Therapy parameter changes applied.
    pub therapy_changes: u64,
    /// Detected frames that failed CRC (jammed or corrupted).
    pub crc_failures: u64,
    /// Valid frames addressed to some other device (ignored).
    pub foreign_frames: u64,
    /// Commands whose payload was identical to the previous executed
    /// command's. Real ICDs execute duplicates blindly (there is no
    /// transaction layer); under link-layer retries every re-delivered
    /// command after a lost *reply* lands here — the degraded outcome
    /// (extra executions, extra battery) the resilience experiments
    /// quantify.
    pub duplicate_commands: u64,
    /// Addressed frames refused by the authenticated-session layer
    /// (plaintext commands, bad tags, replays, stale HELLOs). Always 0
    /// in [`SecurityMode::Open`].
    pub auth_rejects: u64,
    /// Authentic wake tokens that opened (or refreshed) the wake gate.
    pub wake_tokens_accepted: u64,
    /// Frame events that arrived while the wake gate kept the main radio
    /// off — decoded by nobody, answered by nobody, at zero energy cost.
    pub wake_dropped: u64,
}

/// Ground-truth record of one transmitted frame (omniscient experiment
/// data: the eavesdropper-BER experiments compare an adversary's decode
/// against exactly what went on the air).
#[derive(Debug, Clone)]
pub struct TxRecord {
    /// First sample tick of the transmission.
    pub start_tick: u64,
    /// The frame's on-air bits.
    pub bits: Vec<u8>,
    /// Logical plaintext payload of the reply — the ground truth for
    /// confidentiality metrics. Equals the on-air payload in
    /// [`SecurityMode::Open`]; under an authenticated session the air
    /// carries the sealed form and this field holds what it protects.
    pub payload: Vec<u8>,
}

/// The IMD device model. See the module docs.
pub struct ImdDevice {
    cfg: ImdConfig,
    antenna: AntennaId,
    modem: FskModem,
    detector: StreamingDetector,
    tx: TxScheduler,
    therapy: TherapyParams,
    patient: PatientRecord,
    battery: Battery,
    seq: u8,
    /// Payload of the last executed command (duplicate detection).
    last_cmd_payload: Option<Vec<u8>>,
    /// Reusable silence block fed to the detector while transmitting.
    silence: Vec<C64>,
    /// Authenticated-session state (`None` in [`SecurityMode::Open`]).
    fence: Option<FenceState>,
    /// Wake-up gate (`None` on stock devices).
    gate: Option<WakeGate>,
    rng: StdRng,
    /// Public experiment counters.
    pub stats: ImdStats,
    /// Ground-truth log of transmitted frames (for experiments; drain with
    /// [`ImdDevice::take_tx_log`]).
    pub tx_log: Vec<TxRecord>,
}

impl ImdDevice {
    /// Creates an IMD attached to `antenna` (which should be registered
    /// with an in-body placement).
    pub fn new(cfg: ImdConfig, antenna: AntennaId, rng: StdRng) -> Self {
        let modem = FskModem::new(cfg.fsk);
        let detector = StreamingDetector::new(cfg.fsk, 4);
        let fence = match &cfg.security {
            SecurityMode::Open => None,
            SecurityMode::Authenticated { key } => Some(FenceState::new(*key)),
        };
        let gate = cfg
            .wake
            .clone()
            .map(|w| WakeGate::new(w, cfg.serial, cfg.fsk.fs_hz));
        ImdDevice {
            cfg,
            antenna,
            modem,
            detector,
            tx: TxScheduler::new(),
            therapy: TherapyParams::nominal(),
            patient: PatientRecord::demo(),
            battery: Battery::typical_icd(),
            seq: 0,
            last_cmd_payload: None,
            silence: Vec::new(),
            fence,
            gate,
            rng,
            stats: ImdStats::default(),
            tx_log: Vec::new(),
        }
    }

    /// Drains the ground-truth transmit log.
    pub fn take_tx_log(&mut self) -> Vec<TxRecord> {
        std::mem::take(&mut self.tx_log)
    }

    /// The device's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }

    /// The device's configuration.
    pub fn config(&self) -> &ImdConfig {
        &self.cfg
    }

    /// Current therapy parameters (for experiments to check whether an
    /// attack changed them).
    pub fn therapy(&self) -> &TherapyParams {
        &self.therapy
    }

    /// Battery state (for the depletion experiments).
    pub fn battery(&self) -> &Battery {
        &self.battery
    }

    /// Resets therapy to nominal (between experiment repetitions).
    pub fn reset_therapy(&mut self) {
        self.therapy = TherapyParams::nominal();
    }

    /// True while the device's transmitter is on at `tick`.
    pub fn transmitting(&self, tick: u64) -> bool {
        self.tx.busy_at(tick)
    }

    /// Moves the device to a new MICS channel (the §2 rescan outcome: in a
    /// real deployment the programmer re-establishes the session on a
    /// clean channel and the implant follows). The frame detector's state
    /// is cleared but its sample clock keeps running, so reply timing
    /// stays consistent with the medium.
    pub fn retune(&mut self, channel: usize) {
        if channel == self.cfg.channel {
            return;
        }
        self.cfg.channel = channel;
        self.detector.reset();
    }

    /// Executes a parsed command against device state, producing the reply.
    fn execute(&mut self, cmd: Command) -> Response {
        match cmd {
            Command::Interrogate => Response::Status {
                model: self.cfg.model_code,
                battery_pct: self.battery.remaining_pct(),
            },
            Command::ReadTherapy => Response::Therapy(self.therapy),
            Command::SetTherapy(p) => {
                if p.validate().is_ok() {
                    self.therapy = p;
                    self.stats.therapy_changes += 1;
                    Response::Ack
                } else {
                    Response::Nak
                }
            }
            Command::ReadEcg { chunk } => {
                let ecg = EcgGenerator::new(self.therapy.rate_ppm as f64);
                Response::Data {
                    chunk,
                    bytes: ecg.chunk(chunk),
                }
            }
            Command::ReadPatient { chunk } => Response::Data {
                chunk,
                bytes: self.patient.chunk(chunk),
            },
        }
    }

    /// Handles a completed detector event.
    fn on_frame(&mut self, event: DetectorEvent) {
        let DetectorEvent::FrameDone {
            result, end_tick, ..
        } = event
        else {
            return;
        };

        // Wake gate, closed: the main radio is off. The zero-power wake
        // receiver matches authenticated tokens addressed to this device
        // and nothing else — no CRC bookkeeping, no command decode, no
        // reply, no transmit energy.
        if let Some(gate) = self.gate.as_mut() {
            if !gate.awake(end_tick) {
                if let Ok(frame) = &result {
                    if frame.serial == self.cfg.serial
                        && frame.frame_type == FrameType::Command
                        && gate.try_wake(&frame.payload, end_tick)
                    {
                        self.stats.wake_tokens_accepted += 1;
                        return;
                    }
                }
                self.stats.wake_dropped += 1;
                return;
            }
        }

        let frame = match result {
            Ok(f) => f,
            Err(_) => {
                self.stats.crc_failures += 1;
                return;
            }
        };
        if frame.serial != self.cfg.serial {
            self.stats.foreign_frames += 1;
            return;
        }
        if frame.frame_type != FrameType::Command {
            return;
        }

        // Wake tokens are gate traffic even while awake (they refresh the
        // window); never a command. Stock firmware has no gate and falls
        // through to the opcode parse, which rejects 0x40 as unknown —
        // identical outward behaviour.
        if wakeup::is_wake_payload(&frame.payload) {
            if let Some(gate) = self.gate.as_mut() {
                if gate.try_wake(&frame.payload, end_tick) {
                    self.stats.wake_tokens_accepted += 1;
                }
            }
            return;
        }

        // Authenticated sessions: HELLOs establish, everything else must
        // open under the live session. Refusals cost a Nak transmission.
        let plain: Vec<u8> = if let Some(fnc) = self.fence.as_mut() {
            if fence::is_hello(&frame.payload) {
                if fnc.on_hello(&self.cfg.serial, &frame.payload) {
                    let ack = Response::Ack.to_payload();
                    let sealed = fnc
                        .session
                        .as_mut()
                        .expect("session exists after accepted HELLO")
                        .seal(&ack);
                    self.schedule_reply(sealed, ack, end_tick);
                } else {
                    self.stats.auth_rejects += 1;
                    let nak = Response::Nak.to_payload();
                    self.schedule_reply(nak.clone(), nak, end_tick);
                }
                return;
            }
            match fnc.session.as_mut().map(|s| s.open(&frame.payload)) {
                Some(Ok(pt)) => pt,
                _ => {
                    self.stats.auth_rejects += 1;
                    let nak = Response::Nak.to_payload();
                    self.schedule_reply(nak.clone(), nak, end_tick);
                    return;
                }
            }
        } else {
            frame.payload.clone()
        };

        let Some(cmd) = Command::from_payload(&plain) else {
            return;
        };
        self.stats.commands_executed += 1;
        if self.last_cmd_payload.as_deref() == Some(&plain[..]) {
            self.stats.duplicate_commands += 1;
        }
        self.last_cmd_payload = Some(plain);
        let mut response = self.execute(cmd);
        if self.fence.is_some() {
            // Sealing costs 4 bytes of the 10-byte frame: bulk telemetry
            // chunks shrink to fit. The confidentiality tax is measured
            // (smaller chunks, more exchanges), not hidden.
            if let Response::Data { bytes, .. } = &mut response {
                bytes.truncate(hb_crypto::micro::MAX_PT - 3);
            }
        }
        let truth = response.to_payload();
        let wire = match self.fence.as_mut().and_then(|f| f.session.as_mut()) {
            Some(sess) => sess.seal(&truth),
            None => truth.clone(),
        };
        self.schedule_reply(wire, truth, end_tick);
    }

    /// Draws the reply-window delay and schedules `payload` as a Response
    /// frame ending the exchange that finished at `end_tick`. `truth` is
    /// the logical plaintext logged for the omniscient leak metrics
    /// (equal to `payload` on an open device).
    ///
    /// Per Fig. 3 the reply starts a device-specific fixed interval after
    /// the command ends; the shield only assumes it lies within [T1, T2].
    /// We draw per-response jitter inside that window around the ~3.5 ms
    /// typical latency.
    fn schedule_reply(&mut self, payload: Vec<u8>, truth: Vec<u8>, end_tick: u64) {
        let delay_s = self
            .rng
            .gen_range(self.cfg.reply.t1_s..=self.cfg.reply.t2_s);
        let delay_samples = (delay_s * self.cfg.fsk.fs_hz).round() as u64;

        self.seq = self.seq.wrapping_add(1);
        let reply = Frame::new(self.cfg.serial, FrameType::Response, self.seq, payload);
        let bits = reply.to_bits();
        let mut wave = self.modem.modulate(&bits);
        let amplitude = ratio_from_db(self.cfg.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amplitude);
        }
        let start_tick = end_tick + delay_samples;
        self.tx_log.push(TxRecord {
            start_tick,
            bits,
            payload: truth,
        });
        self.tx.schedule(start_tick, self.cfg.channel, wave);
        self.stats.responses_sent += 1;
    }
}

impl Node for ImdDevice {
    fn label(&self) -> &str {
        "imd"
    }

    fn produce(&mut self, medium: &mut Medium) {
        let block_s = medium.config().block_len as f64 / medium.config().fs_hz;
        self.battery.tick_baseline(block_s);
        if self.tx.produce(self.antenna, medium) {
            self.battery.spend_tx(block_s);
        }
    }

    fn consume(&mut self, medium: &mut Medium) {
        // Half duplex: while our transmitter is on, the receive path sees
        // nothing usable. Feed silence so the detector's sample clock stays
        // aligned with the medium.
        let busy = self.tx.busy_at(medium.tick());
        let events = if busy {
            if self.silence.len() != medium.config().block_len {
                self.silence = vec![C64::ZERO; medium.config().block_len];
            }
            self.detector.push_block(&self.silence)
        } else {
            self.detector
                .push_block(medium.receive_view(self.antenna, self.cfg.channel))
        };
        for e in events {
            self.on_frame(e);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models::ImdConfig;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_dsp::units::db_from_ratio;
    use rand::SeedableRng;

    const CH: usize = 0;

    fn setup_with(cfg: ImdConfig) -> (Medium, ImdDevice, AntennaId) {
        let mut medium = Medium::new(
            MediumConfig {
                noise_floor_dbm: -130.0,
                ..Default::default()
            },
            42,
        );
        let imd_ant = medium.add_antenna(Placement::los("imd", 0.0, 0.0).implanted());
        let prog_ant = medium.add_antenna(Placement::los("prog", 0.5, 0.0));
        // Strong symmetric link so decoding is easy in unit tests.
        medium.set_gain(imd_ant, prog_ant, C64::new(0.1, 0.0));
        medium.set_gain(prog_ant, imd_ant, C64::new(0.1, 0.0));
        let imd = ImdDevice::new(cfg, imd_ant, StdRng::seed_from_u64(7));
        (medium, imd, prog_ant)
    }

    fn setup() -> (Medium, ImdDevice, AntennaId) {
        setup_with(ImdConfig::virtuoso_icd(CH))
    }

    /// Sends a raw Command-frame payload and returns the samples received
    /// back at the programmer antenna after the command's air time.
    fn send_payload(
        medium: &mut Medium,
        imd: &mut ImdDevice,
        prog_ant: AntennaId,
        payload: Vec<u8>,
        run_blocks: u64,
    ) -> Vec<C64> {
        let modem = FskModem::new(imd.config().fsk);
        let frame = Frame::new(imd.config().serial, FrameType::Command, 9, payload);
        let wave = modem.modulate(&frame.to_bits());
        let cmd_len = wave.len();
        let mut sched = TxScheduler::new();
        sched.schedule(medium.tick(), CH, wave);
        let mut rx = Vec::new();
        for _ in 0..run_blocks {
            sched.produce(prog_ant, medium);
            imd.produce(medium);
            imd.consume(medium);
            rx.extend(medium.receive(prog_ant, CH));
            medium.end_block();
        }
        rx.split_off(cmd_len)
    }

    /// Sends `cmd` from `prog_ant` and runs until the IMD's reply (if any)
    /// has fully played out. Returns the received samples at the
    /// programmer antenna and the tick at which the command's last sample
    /// aired.
    fn run_exchange(
        medium: &mut Medium,
        imd: &mut ImdDevice,
        prog_ant: AntennaId,
        cmd: Command,
        run_blocks: u64,
    ) -> (Vec<C64>, u64) {
        let modem = FskModem::new(imd.config().fsk);
        let frame = Frame::new(imd.config().serial, FrameType::Command, 9, cmd.to_payload());
        let wave = modem.modulate(&frame.to_bits());
        let cmd_len = wave.len() as u64;
        let mut sched = TxScheduler::new();
        sched.schedule(medium.tick(), CH, wave);

        let mut rx = Vec::new();
        for _ in 0..run_blocks {
            sched.produce(prog_ant, medium);
            imd.produce(medium);
            imd.consume(medium);
            rx.extend(medium.receive(prog_ant, CH));
            medium.end_block();
        }
        (rx, cmd_len)
    }

    #[test]
    fn responds_to_interrogation_within_reply_window() {
        let (mut medium, mut imd, prog_ant) = setup();
        let (rx, cmd_len) =
            run_exchange(&mut medium, &mut imd, prog_ant, Command::Interrogate, 3_000);
        assert_eq!(imd.stats.commands_executed, 1);
        assert_eq!(imd.stats.responses_sent, 1);

        // Decode the response at the programmer.
        let modem = FskModem::new(imd.config().fsk);
        let reply_region = &rx[cmd_len as usize..];
        let frame = modem.receive_frame(reply_region).expect("reply decodes");
        assert_eq!(frame.frame_type, FrameType::Response);
        let resp = Response::from_payload(&frame.payload).unwrap();
        assert!(matches!(resp, Response::Status { .. }));

        // Reply must start T1..T2 after the command end.
        let start = modem.find_frame_start(reply_region, 4).unwrap();
        let delay_s = start as f64 / imd.config().fsk.fs_hz;
        // Allow one symbol of frame-start estimation slack plus two blocks
        // of loop latency on the upper side.
        let symbol_s = 24.0 / 300e3;
        let slack = 2.0 * 16.0 / 300e3;
        assert!(
            delay_s >= imd.config().reply.t1_s - symbol_s
                && delay_s <= imd.config().reply.t2_s + symbol_s + slack,
            "reply delay {delay_s}"
        );
    }

    #[test]
    fn ignores_frame_for_other_device() {
        let (mut medium, mut imd, prog_ant) = setup();
        let other = hb_phy::packet::Serial::from_str_padded("SOMEONEELS");
        let modem = FskModem::new(imd.config().fsk);
        let frame = Frame::new(
            other,
            FrameType::Command,
            1,
            Command::Interrogate.to_payload(),
        );
        let mut sched = TxScheduler::new();
        sched.schedule(0, CH, modem.modulate(&frame.to_bits()));
        for _ in 0..2_000 {
            sched.produce(prog_ant, &mut medium);
            imd.produce(&mut medium);
            imd.consume(&mut medium);
            medium.end_block();
        }
        assert_eq!(imd.stats.commands_executed, 0);
        assert_eq!(imd.stats.foreign_frames, 1);
        assert_eq!(imd.stats.responses_sent, 0);
    }

    #[test]
    fn therapy_change_applies_and_acks() {
        let (mut medium, mut imd, prog_ant) = setup();
        let mut p = TherapyParams::nominal();
        p.rate_ppm = 120;
        let (rx, cmd_len) = run_exchange(
            &mut medium,
            &mut imd,
            prog_ant,
            Command::SetTherapy(p),
            3_000,
        );
        assert_eq!(imd.therapy().rate_ppm, 120);
        assert_eq!(imd.stats.therapy_changes, 1);
        let modem = FskModem::new(imd.config().fsk);
        let frame = modem.receive_frame(&rx[cmd_len as usize..]).unwrap();
        assert_eq!(Response::from_payload(&frame.payload), Some(Response::Ack));
    }

    #[test]
    fn invalid_therapy_rejected_with_nak() {
        let (mut medium, mut imd, prog_ant) = setup();
        let mut p = TherapyParams::nominal();
        p.rate_ppm = 250; // out of clinical range
        let (rx, cmd_len) = run_exchange(
            &mut medium,
            &mut imd,
            prog_ant,
            Command::SetTherapy(p),
            3_000,
        );
        assert_eq!(imd.therapy().rate_ppm, 60, "therapy must not change");
        assert_eq!(imd.stats.therapy_changes, 0);
        let modem = FskModem::new(imd.config().fsk);
        let frame = modem.receive_frame(&rx[cmd_len as usize..]).unwrap();
        assert_eq!(Response::from_payload(&frame.payload), Some(Response::Nak));
    }

    #[test]
    fn corrupted_command_discarded_by_checksum() {
        let (mut medium, mut imd, prog_ant) = setup();
        let modem = FskModem::new(imd.config().fsk);
        let frame = Frame::new(
            imd.config().serial,
            FrameType::Command,
            1,
            Command::Interrogate.to_payload(),
        );
        let mut bits = frame.to_bits();
        // Flip payload bits (past the header) to emulate jamming damage.
        let n = bits.len();
        for b in bits[n - 40..n - 30].iter_mut() {
            *b ^= 1;
        }
        let mut sched = TxScheduler::new();
        sched.schedule(0, CH, modem.modulate(&bits));
        for _ in 0..3_000 {
            sched.produce(prog_ant, &mut medium);
            imd.produce(&mut medium);
            imd.consume(&mut medium);
            medium.end_block();
        }
        assert_eq!(imd.stats.commands_executed, 0);
        assert_eq!(imd.stats.crc_failures, 1);
        assert_eq!(imd.stats.responses_sent, 0);
    }

    #[test]
    fn reply_transmit_power_matches_config() {
        let (mut medium, mut imd, prog_ant) = setup();
        let (rx, cmd_len) =
            run_exchange(&mut medium, &mut imd, prog_ant, Command::Interrogate, 3_000);
        let modem = FskModem::new(imd.config().fsk);
        let region = &rx[cmd_len as usize..];
        let start = modem.find_frame_start(region, 4).unwrap();
        // Measure power over the reply body.
        let body = &region[start..start + 1000];
        let p_dbm = db_from_ratio(hb_dsp::complex::mean_power(body));
        let expected = imd.config().tx_power_dbm - 20.0; // |0.1|² link
        assert!((p_dbm - expected).abs() < 1.5, "reply power {p_dbm} dBm");
    }

    #[test]
    fn battery_drains_with_responses() {
        let (mut medium, mut imd, prog_ant) = setup();
        let before = imd.battery().radio_energy_j();
        run_exchange(&mut medium, &mut imd, prog_ant, Command::Interrogate, 3_000);
        assert!(imd.battery().radio_energy_j() > before);
    }

    #[test]
    fn authenticated_device_naks_plaintext_and_accepts_sealed() {
        use crate::fence;
        use hb_crypto::micro::MicroSession;
        let master = [0x42u8; 32];
        let mut cfg = ImdConfig::virtuoso_icd(CH);
        cfg.security = crate::models::SecurityMode::Authenticated { key: master };
        let (mut medium, mut imd, prog_ant) = setup_with(cfg);
        let modem = FskModem::new(imd.config().fsk);

        // 1. Plaintext command: refused with a plaintext Nak, not executed.
        let rx = send_payload(
            &mut medium,
            &mut imd,
            prog_ant,
            Command::Interrogate.to_payload(),
            3_000,
        );
        assert_eq!(imd.stats.commands_executed, 0);
        assert_eq!(imd.stats.auth_rejects, 1);
        let frame = modem.receive_frame(&rx).expect("nak decodes");
        assert_eq!(Response::from_payload(&frame.payload), Some(Response::Nak));

        // 2. HELLO: establishes the session; the Ack comes back sealed.
        let serial = imd.config().serial;
        let rx = send_payload(
            &mut medium,
            &mut imd,
            prog_ant,
            fence::hello_payload(&master, &serial, 1),
            3_000,
        );
        let mut prog_sess = MicroSession::programmer_side(fence::session_key(&master, 1));
        let frame = modem.receive_frame(&rx).expect("hello ack decodes");
        assert_eq!(
            Response::from_payload(&frame.payload),
            None,
            "sealed ack must not parse as plaintext"
        );
        assert_eq!(
            prog_sess.open(&frame.payload).expect("ack opens"),
            Response::Ack.to_payload()
        );

        // 3. Sealed command: executed, reply opens under the session.
        let mut cmd_sess = MicroSession::programmer_side(fence::session_key(&master, 1));
        let sealed = cmd_sess.seal(&Command::Interrogate.to_payload());
        let rx = send_payload(&mut medium, &mut imd, prog_ant, sealed, 3_000);
        assert_eq!(imd.stats.commands_executed, 1);
        let frame = modem.receive_frame(&rx).expect("sealed reply decodes");
        let pt = prog_sess.open(&frame.payload).expect("reply opens");
        assert!(matches!(
            Response::from_payload(&pt),
            Some(Response::Status { .. })
        ));
    }

    #[test]
    fn wake_gate_blocks_commands_until_token() {
        use crate::wakeup::{wake_token, WakeConfig};
        let key = [0x21u8; 32];
        let mut cfg = ImdConfig::virtuoso_icd(CH);
        cfg.wake = Some(WakeConfig::new(key));
        let (mut medium, mut imd, prog_ant) = setup_with(cfg);

        // Asleep: a valid addressed command is not decoded, not answered,
        // and costs no transmit energy.
        send_payload(
            &mut medium,
            &mut imd,
            prog_ant,
            Command::Interrogate.to_payload(),
            3_000,
        );
        assert_eq!(imd.stats.commands_executed, 0);
        assert_eq!(imd.stats.responses_sent, 0);
        assert!(imd.stats.wake_dropped >= 1);
        assert_eq!(imd.battery().radio_energy_j(), 0.0);

        // Token, then the same command inside the window: normal service.
        let serial = imd.config().serial;
        send_payload(
            &mut medium,
            &mut imd,
            prog_ant,
            wake_token(&key, &serial, 1),
            1_000,
        );
        assert_eq!(imd.stats.wake_tokens_accepted, 1);
        send_payload(
            &mut medium,
            &mut imd,
            prog_ant,
            Command::Interrogate.to_payload(),
            3_000,
        );
        assert_eq!(imd.stats.commands_executed, 1);
        assert_eq!(imd.stats.responses_sent, 1);
    }

    #[test]
    fn does_not_transmit_unprompted() {
        let (mut medium, mut imd, _) = setup();
        for _ in 0..5_000 {
            imd.produce(&mut medium);
            imd.consume(&mut medium);
            medium.end_block();
        }
        assert_eq!(imd.stats.responses_sent, 0);
        assert_eq!(imd.battery().radio_energy_j(), 0.0);
    }
}
