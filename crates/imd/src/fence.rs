//! IMDfence-style session establishment on the device side.
//!
//! When an IMD runs with
//! [`SecurityMode::Authenticated`](crate::models::SecurityMode), its
//! command interface speaks a two-step protocol inside the 10-byte MICS
//! payload budget:
//!
//! 1. **HELLO** — `| 0x41 | nonce 1B | tag 4B |`, MAC'd under the shared
//!    master key and bound to the device serial. A fresh, authentic
//!    HELLO derives a per-session key
//!    (`derive_key(master, "imdfence", nonce)`) and resets both
//!    directions' [`MicroSession`] counters; the device acknowledges
//!    with a *sealed* Ack so the programmer can confirm key agreement.
//! 2. **Sealed traffic** — every subsequent command must open under the
//!    session ([`hb_crypto::micro`] wire format) and every reply goes
//!    back sealed.
//!
//! Anything that fails — stale nonce, bad tag, plaintext command, wrong
//! session — is refused with a plaintext Nak. The explicit refusal is
//! deliberate: it is what real protocol stacks do, and its transmit
//! cost is exactly the battery-drain exposure the defense matrix
//! measures for this defense (contrast with the wake-up gate, which
//! spends nothing).

use hb_crypto::micro::{token_tag, MicroSession, TOKEN_TAG_LEN};
use hb_phy::packet::Serial;

/// Reserved opcode marking a HELLO payload (outside the command space).
pub const HELLO_OPCODE: u8 = 0x41;

/// HELLO payload length: opcode + nonce + 32-bit tag.
pub const HELLO_LEN: usize = 2 + TOKEN_TAG_LEN;

/// KDF label for HELLO authentication tags.
const HELLO_LABEL: &[u8] = b"hello";

/// KDF label for per-session keys.
const SESSION_LABEL: &[u8] = b"imdfence";

/// Builds the HELLO payload opening a session with `serial`.
pub fn hello_payload(master: &[u8; 32], serial: &Serial, nonce: u8) -> Vec<u8> {
    let tag = token_tag(master, HELLO_LABEL, nonce, &serial.0);
    let mut payload = Vec::with_capacity(HELLO_LEN);
    payload.push(HELLO_OPCODE);
    payload.push(nonce);
    payload.extend_from_slice(&tag);
    payload
}

/// True if `payload` is shaped like a HELLO (handshake traffic).
pub fn is_hello(payload: &[u8]) -> bool {
    payload.first() == Some(&HELLO_OPCODE)
}

/// The per-session key both ends derive from an accepted HELLO.
pub fn session_key(master: &[u8; 32], nonce: u8) -> [u8; 32] {
    hb_crypto::micro::derive_key(master, SESSION_LABEL, &[nonce])
}

/// Device-side handshake state: the master key, replay floor for HELLO
/// nonces, and the live session (if any).
#[derive(Debug, Clone)]
pub struct FenceState {
    master: [u8; 32],
    last_hello: Option<u8>,
    /// The established session; `None` until a HELLO is accepted.
    pub session: Option<MicroSession>,
}

impl FenceState {
    /// Fresh state with no session.
    pub fn new(master: [u8; 32]) -> Self {
        FenceState {
            master,
            last_hello: None,
            session: None,
        }
    }

    /// Offers a received HELLO payload. On success the session is
    /// (re-)established and `true` is returned; replayed nonces and bad
    /// tags leave existing state untouched.
    pub fn on_hello(&mut self, serial: &Serial, payload: &[u8]) -> bool {
        if payload.len() != HELLO_LEN || payload[0] != HELLO_OPCODE {
            return false;
        }
        let nonce = payload[1];
        if self.last_hello.is_some_and(|last| nonce <= last) {
            return false;
        }
        let expect = token_tag(&self.master, HELLO_LABEL, nonce, &serial.0);
        if payload[2..] != expect {
            return false;
        }
        self.last_hello = Some(nonce);
        self.session = Some(MicroSession::device_side(session_key(&self.master, nonce)));
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MASTER: [u8; 32] = [5u8; 32];

    fn serial() -> Serial {
        Serial::from_str_padded("VIRTUOSO01")
    }

    #[test]
    fn hello_establishes_and_keys_agree() {
        let mut dev = FenceState::new(MASTER);
        assert!(dev.session.is_none());
        let hello = hello_payload(&MASTER, &serial(), 1);
        assert!(dev.on_hello(&serial(), &hello));

        // Programmer derives the same key: sealed traffic round-trips.
        let mut prog = MicroSession::programmer_side(session_key(&MASTER, 1));
        let wire = prog.seal(&[0x10]);
        assert_eq!(dev.session.as_mut().unwrap().open(&wire).unwrap(), [0x10]);
    }

    #[test]
    fn replayed_or_forged_hello_rejected() {
        let mut dev = FenceState::new(MASTER);
        let hello = hello_payload(&MASTER, &serial(), 1);
        assert!(dev.on_hello(&serial(), &hello));
        assert!(!dev.on_hello(&serial(), &hello), "nonce replay");
        let forged = hello_payload(&[6u8; 32], &serial(), 2);
        assert!(!dev.on_hello(&serial(), &forged), "wrong master key");
        let other = hello_payload(&MASTER, &Serial::from_str_padded("CONCERTO02"), 2);
        assert!(!dev.on_hello(&serial(), &other), "bound to another serial");
    }

    #[test]
    fn rehello_rolls_the_session_key() {
        let mut dev = FenceState::new(MASTER);
        assert!(dev.on_hello(&serial(), &hello_payload(&MASTER, &serial(), 1)));
        assert!(dev.on_hello(&serial(), &hello_payload(&MASTER, &serial(), 2)));
        // Traffic sealed under the first session no longer opens.
        let mut old = MicroSession::programmer_side(session_key(&MASTER, 1));
        let wire = old.seal(&[0x10]);
        assert!(dev.session.as_mut().unwrap().open(&wire).is_err());
    }

    #[test]
    fn hello_fits_the_frame_budget() {
        assert!(hello_payload(&MASTER, &serial(), 9).len() <= hb_phy::packet::MAX_PAYLOAD);
    }
}
