//! # hb-imd — implantable medical device models
//!
//! Executable models of the devices the paper protects and talks to:
//!
//! * [`device`] — the IMD state machine: responds only when addressed,
//!   within a bounded window, without carrier sensing, and discards frames
//!   that fail the checksum — the measured behaviours of the Medtronic
//!   Virtuoso ICD and Concerto CRT that the shield's algorithms rely on.
//! * [`models`] — Virtuoso/Concerto configuration profiles.
//! * [`programmer`] — the authorized clinic programmer (CareLink-class),
//!   with FCC-compliant power and listen-before-talk.
//! * [`therapy`] — pacing/defibrillation parameters (the attack target).
//! * [`telemetry`] — patient record and synthetic ECG (the privacy target).
//! * [`battery`] — energy model for the battery-depletion attack.
//! * [`commands`] — the command/response wire protocol.
//! * [`arq`] — link-layer exchange tracking: reply timeout, bounded
//!   retries, deterministic backoff (the resilience machinery).
//! * [`fence`] — IMDfence-style authenticated sessions (device side):
//!   HELLO handshake + sealed commands inside the MICS frame budget.
//! * [`wakeup`] — zero-power wake-up gate: the main radio stays off
//!   until an authenticated wake token arrives (battery-DoS defense).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arq;
pub mod battery;
pub mod commands;
pub mod device;
pub mod fence;
pub mod models;
pub mod programmer;
pub mod telemetry;
pub mod therapy;
pub mod wakeup;

pub use arq::{ArqAction, ArqConfig, ArqStats, ArqTracker};
pub use commands::{Command, Response};
pub use device::{ImdDevice, ImdStats};
pub use models::{ImdConfig, SecurityMode};
pub use programmer::{Programmer, ProgrammerConfig};
pub use therapy::TherapyParams;
pub use wakeup::WakeConfig;
