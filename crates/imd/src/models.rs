//! Device profiles for the two IMDs the paper evaluates.
//!
//! The Medtronic **Virtuoso DR** implantable cardiac defibrillator and
//! **Concerto** cardiac resynchronization therapy device (§9). Both share
//! the same MICS air interface (FCC ID LF5MICS, §7(a) footnote) and, per
//! the paper's measurements, the same reply timing; they differ in model
//! identity and serial number. The evaluation combines their results
//! "since the two IMDs did not show any significant difference" (§10) —
//! our experiments run both and do the same.

use crate::wakeup::WakeConfig;
use hb_mics::timing::ReplyTiming;
use hb_phy::fsk::FskParams;
use hb_phy::packet::Serial;

/// Model codes reported in Status responses.
pub mod model_code {
    /// Virtuoso DR ICD.
    pub const VIRTUOSO_ICD: u8 = 0x01;
    /// Concerto CRT-D.
    pub const CONCERTO_CRT: u8 = 0x02;
}

/// Protocol-layer security posture of the command interface.
///
/// The paper's stock devices are [`SecurityMode::Open`] — that is the
/// whole premise of the shield. The alternative defenses in
/// `hb_testbed::defense` flip this to model an IMDfence-style firmware
/// that refuses unauthenticated traffic.
#[derive(Debug, Clone)]
pub enum SecurityMode {
    /// Stock firmware: plaintext commands executed as received.
    Open,
    /// IMDfence-style sessions: a handshake authenticated by `key`
    /// derives a per-session key; commands must arrive sealed under it
    /// ([`hb_crypto::micro`]) and replies go back sealed. Anything that
    /// fails to authenticate is refused with a Nak — an explicit,
    /// energy-costing rejection the defense matrix measures.
    Authenticated {
        /// Master key shared with authorized programmers.
        key: [u8; 32],
    },
}

/// Static configuration of an IMD.
#[derive(Debug, Clone)]
pub struct ImdConfig {
    /// 10-byte device serial (the identity the shield's `Sid` matches).
    pub serial: Serial,
    /// Model code for Status responses.
    pub model_code: u8,
    /// Transmit power, dBm. Default −24 dBm (4 µW EIRP): comfortably
    /// inside the 25 µW MICS cap and ~8 dB above the "20 dB below
    /// external devices" floor of §10.1(b); calibrated so the received
    /// IMD level at the shield reproduces the paper's +20 dB jamming
    /// margin arithmetic (DESIGN.md, calibrated constants).
    pub tx_power_dbm: f64,
    /// Reply-window timing (T1/T2/P).
    pub reply: ReplyTiming,
    /// The MICS channel the session occupies.
    pub channel: usize,
    /// FSK air-interface parameters.
    pub fsk: FskParams,
    /// Protocol-layer security posture (stock devices: [`SecurityMode::Open`]).
    pub security: SecurityMode,
    /// Zero-power wake-up gate, if fitted: the main radio stays off until
    /// an authenticated wake token arrives (`None` on stock devices).
    pub wake: Option<WakeConfig>,
}

impl ImdConfig {
    /// The Virtuoso DR ICD profile.
    pub fn virtuoso_icd(channel: usize) -> Self {
        ImdConfig {
            serial: Serial::from_str_padded("VIRTUOSO01"),
            model_code: model_code::VIRTUOSO_ICD,
            tx_power_dbm: -24.0,
            reply: ReplyTiming::medtronic_measured(),
            channel,
            fsk: FskParams::mics_default(),
            security: SecurityMode::Open,
            wake: None,
        }
    }

    /// The Concerto CRT profile.
    pub fn concerto_crt(channel: usize) -> Self {
        ImdConfig {
            serial: Serial::from_str_padded("CONCERTO02"),
            model_code: model_code::CONCERTO_CRT,
            ..Self::virtuoso_icd(channel)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_differ_only_in_identity() {
        let v = ImdConfig::virtuoso_icd(5);
        let c = ImdConfig::concerto_crt(5);
        assert_ne!(v.serial, c.serial);
        assert_ne!(v.model_code, c.model_code);
        assert_eq!(v.reply, c.reply);
        assert_eq!(v.fsk, c.fsk);
        assert_eq!(v.tx_power_dbm, c.tx_power_dbm);
    }

    #[test]
    fn implant_power_within_mics_cap_and_below_external() {
        let v = ImdConfig::virtuoso_icd(0);
        // Within the 25 µW MICS EIRP cap…
        assert!(v.tx_power_dbm <= hb_mics::fcc_eirp_limit_dbm());
        // …and well below what external devices transmit, preserving the
        // §10.1(b) headroom argument for the shield's +20 dB jamming.
        assert!(v.tx_power_dbm <= hb_mics::fcc_eirp_limit_dbm() - 5.0);
    }
}
