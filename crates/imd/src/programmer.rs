//! The IMD programmer: the authorized clinic device (Medtronic CareLink
//! 2090 in the paper's testbed).
//!
//! Follows FCC rules: transmits at or below the −16 dBm EIRP limit and
//! performs 10 ms listen-before-talk before opening a session (§2). In a
//! shield deployment the programmer talks to the *shield* over the
//! encrypted channel instead of directly to the IMD; this radio model is
//! used (a) for baseline programmer↔IMD sessions, (b) as the hardware an
//! adversary replays (§9: the adversary records programmer transmissions,
//! demodulates them to clean bits, and re-modulates).

use crate::commands::{Command, Response};
use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_channel::txsched::TxScheduler;
use hb_dsp::units::ratio_from_db;
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::packet::{Frame, FrameType, Serial};
use hb_phy::rssi::EnergyDetector;
use hb_phy::stream::{DetectorEvent, StreamingDetector};

/// A response received by the programmer, with arrival metadata.
#[derive(Debug, Clone, PartialEq)]
pub struct ReceivedResponse {
    /// Parsed response payload.
    pub response: Response,
    /// Frame sequence number.
    pub seq: u8,
    /// Tick at which the response frame ended.
    pub end_tick: Tick,
}

/// A raw Response frame received by the programmer, before any payload
/// interpretation — what a secured exchange works from, since sealed
/// replies do not parse as plaintext [`Response`]s.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReceivedFrame {
    /// Frame sequence number.
    pub seq: u8,
    /// Raw payload bytes as they crossed the air.
    pub payload: Vec<u8>,
    /// Tick at which the frame ended.
    pub end_tick: Tick,
}

/// Programmer configuration.
#[derive(Debug, Clone)]
pub struct ProgrammerConfig {
    /// Transmit power, dBm (FCC limit by default).
    pub tx_power_dbm: f64,
    /// FSK parameters (must match the IMD's).
    pub fsk: FskParams,
    /// Session channel.
    pub channel: usize,
    /// CCA threshold for listen-before-talk, dBm.
    pub lbt_threshold_dbm: f64,
}

impl Default for ProgrammerConfig {
    fn default() -> Self {
        ProgrammerConfig {
            tx_power_dbm: hb_mics::fcc_eirp_limit_dbm(),
            fsk: FskParams::mics_default(),
            channel: 0,
            lbt_threshold_dbm: -90.0,
        }
    }
}

/// The programmer device model.
pub struct Programmer {
    cfg: ProgrammerConfig,
    antenna: AntennaId,
    modem: FskModem,
    detector: StreamingDetector,
    tx: TxScheduler,
    cca: EnergyDetector,
    /// Seconds of continuous quiet observed (for LBT).
    quiet_s: f64,
    seq: u8,
    /// Reusable silence block fed to the detector while transmitting.
    silence: Vec<hb_dsp::C64>,
    /// Responses received, in arrival order.
    pub inbox: Vec<ReceivedResponse>,
    /// Every CRC-valid Response frame, in arrival order, payload
    /// untouched (sealed replies land here and nowhere else).
    pub raw_inbox: Vec<ReceivedFrame>,
    /// Commands transmitted (count).
    pub commands_sent: u64,
}

impl Programmer {
    /// Creates a programmer attached to `antenna`.
    pub fn new(cfg: ProgrammerConfig, antenna: AntennaId) -> Self {
        let modem = FskModem::new(cfg.fsk);
        let detector = StreamingDetector::new(cfg.fsk, 4);
        let cca = EnergyDetector::new(cfg.lbt_threshold_dbm, 64);
        Programmer {
            cfg,
            antenna,
            modem,
            detector,
            tx: TxScheduler::new(),
            cca,
            quiet_s: 0.0,
            seq: 0,
            silence: Vec::new(),
            inbox: Vec::new(),
            raw_inbox: Vec::new(),
            commands_sent: 0,
        }
    }

    /// The programmer's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }

    /// The configuration.
    pub fn config(&self) -> &ProgrammerConfig {
        &self.cfg
    }

    /// True once at least `LBT_DURATION_S` of continuous quiet has been
    /// observed on the session channel.
    pub fn channel_clear(&self) -> bool {
        self.quiet_s + 1e-12 >= hb_mics::regs::LBT_DURATION_S
    }

    /// Builds the on-air waveform for a command to `serial` (also used by
    /// the replay adversary to synthesize clean copies).
    pub fn command_waveform(&mut self, serial: Serial, cmd: Command) -> Vec<hb_dsp::C64> {
        self.seq = self.seq.wrapping_add(1);
        let frame = Frame::new(serial, FrameType::Command, self.seq, cmd.to_payload());
        let mut wave = self.modem.modulate(&frame.to_bits());
        let amplitude = ratio_from_db(self.cfg.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amplitude);
        }
        wave
    }

    /// Schedules a command for transmission at `start_tick` (no LBT check —
    /// callers either verified [`Programmer::channel_clear`] or are
    /// deliberately modeling rule-breaking behaviour).
    pub fn send_command_at(&mut self, start_tick: Tick, serial: Serial, cmd: Command) {
        let wave = self.command_waveform(serial, cmd);
        self.tx.schedule(start_tick, self.cfg.channel, wave);
        self.commands_sent += 1;
    }

    /// Schedules an arbitrary Command-frame payload at `start_tick` —
    /// the transmit path for handshake HELLOs, wake tokens, and sealed
    /// commands, which are not plaintext [`Command`]s.
    pub fn send_payload_at(&mut self, start_tick: Tick, serial: Serial, payload: Vec<u8>) {
        self.seq = self.seq.wrapping_add(1);
        let frame = Frame::new(serial, FrameType::Command, self.seq, payload);
        let mut wave = self.modem.modulate(&frame.to_bits());
        let amplitude = ratio_from_db(self.cfg.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amplitude);
        }
        self.tx.schedule(start_tick, self.cfg.channel, wave);
        self.commands_sent += 1;
    }

    /// End tick of the most recently scheduled transmission.
    pub fn tx_end_tick(&self) -> Option<Tick> {
        self.tx.end_tick()
    }

    /// True while the programmer's transmitter is on at `tick`.
    pub fn transmitting(&self, tick: Tick) -> bool {
        self.tx.busy_at(tick)
    }

    /// Drains received responses.
    pub fn take_responses(&mut self) -> Vec<ReceivedResponse> {
        std::mem::take(&mut self.inbox)
    }

    /// Drains raw received Response frames.
    pub fn take_raw(&mut self) -> Vec<ReceivedFrame> {
        std::mem::take(&mut self.raw_inbox)
    }
}

impl Node for Programmer {
    fn label(&self) -> &str {
        "programmer"
    }

    fn produce(&mut self, medium: &mut Medium) {
        self.tx.produce(self.antenna, medium);
    }

    fn consume(&mut self, medium: &mut Medium) {
        let block_len = medium.config().block_len;
        let block_s = block_len as f64 / medium.config().fs_hz;
        let busy_tx = self.tx.busy_at(medium.tick());
        let block: &[hb_dsp::C64] = if busy_tx {
            if self.silence.len() != block_len {
                self.silence = vec![hb_dsp::C64::ZERO; block_len];
            }
            &self.silence
        } else {
            medium.receive_view(self.antenna, self.cfg.channel)
        };
        // LBT bookkeeping.
        if self.cca.push_block(block) || busy_tx {
            self.quiet_s = 0.0;
        } else {
            self.quiet_s += block_s;
        }
        // Frame reception.
        for e in self.detector.push_block(block) {
            if let DetectorEvent::FrameDone {
                result: Ok(frame),
                end_tick,
                ..
            } = e
            {
                if frame.frame_type == FrameType::Response {
                    self.raw_inbox.push(ReceivedFrame {
                        seq: frame.seq,
                        payload: frame.payload.clone(),
                        end_tick,
                    });
                    if let Some(response) = Response::from_payload(&frame.payload) {
                        self.inbox.push(ReceivedResponse {
                            response,
                            seq: frame.seq,
                            end_tick,
                        });
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::ImdDevice;
    use crate::models::ImdConfig;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_dsp::complex::C64;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn setup() -> (Medium, ImdDevice, Programmer) {
        let mut medium = Medium::new(
            MediumConfig {
                noise_floor_dbm: -130.0,
                ..Default::default()
            },
            3,
        );
        let imd_ant = medium.add_antenna(Placement::los("imd", 0.0, 0.0).implanted());
        let prog_ant = medium.add_antenna(Placement::los("prog", 0.5, 0.0));
        medium.set_gain(imd_ant, prog_ant, C64::new(0.1, 0.0));
        medium.set_gain(prog_ant, imd_ant, C64::new(0.1, 0.0));
        let imd = ImdDevice::new(
            ImdConfig::virtuoso_icd(0),
            imd_ant,
            StdRng::seed_from_u64(5),
        );
        let prog = Programmer::new(ProgrammerConfig::default(), prog_ant);
        (medium, imd, prog)
    }

    fn run(medium: &mut Medium, imd: &mut ImdDevice, prog: &mut Programmer, blocks: u64) {
        for _ in 0..blocks {
            prog.produce(medium);
            imd.produce(medium);
            prog.consume(medium);
            imd.consume(medium);
            medium.end_block();
        }
    }

    #[test]
    fn full_interrogation_round_trip() {
        let (mut medium, mut imd, mut prog) = setup();
        // LBT first.
        run(&mut medium, &mut imd, &mut prog, 200);
        assert!(prog.channel_clear(), "quiet channel should pass LBT");

        prog.send_command_at(medium.tick(), imd.config().serial, Command::Interrogate);
        run(&mut medium, &mut imd, &mut prog, 3_000);

        let responses = prog.take_responses();
        assert_eq!(responses.len(), 1);
        assert!(matches!(
            responses[0].response,
            Response::Status {
                battery_pct: 91..=100,
                ..
            }
        ));
        assert_eq!(prog.commands_sent, 1);
    }

    #[test]
    fn lbt_sees_occupied_channel() {
        let (mut medium, mut imd, mut prog) = setup();
        // A third device blasts the channel continuously.
        let blocker = medium.add_antenna(Placement::los("blocker", 1.0, 0.0));
        medium.set_gain(blocker, prog.antenna(), C64::new(0.3, 0.0));
        for _ in 0..400 {
            let block = vec![C64::ONE; medium.config().block_len];
            medium.transmit(blocker, 0, &block);
            prog.produce(&mut medium);
            imd.produce(&mut medium);
            prog.consume(&mut medium);
            imd.consume(&mut medium);
            medium.end_block();
        }
        assert!(!prog.channel_clear());
    }

    #[test]
    fn repeated_interrogations_each_get_replies() {
        let (mut medium, mut imd, mut prog) = setup();
        for _ in 0..3 {
            prog.send_command_at(medium.tick(), imd.config().serial, Command::Interrogate);
            run(&mut medium, &mut imd, &mut prog, 3_000);
        }
        assert_eq!(prog.take_responses().len(), 3);
        assert_eq!(imd.stats.responses_sent, 3);
    }

    #[test]
    fn reads_patient_record_chunks() {
        let (mut medium, mut imd, mut prog) = setup();
        let record = crate::telemetry::PatientRecord::demo();
        let mut assembled = Vec::new();
        for chunk in 0..record.chunk_count() {
            prog.send_command_at(
                medium.tick(),
                imd.config().serial,
                Command::ReadPatient { chunk },
            );
            run(&mut medium, &mut imd, &mut prog, 3_000);
            let rs = prog.take_responses();
            assert_eq!(rs.len(), 1, "chunk {chunk}");
            if let Response::Data { bytes, .. } = &rs[0].response {
                assembled.extend_from_slice(bytes);
            } else {
                panic!("expected Data response");
            }
        }
        assert_eq!(assembled, record.to_bytes());
        // The plaintext patient name crossed the air — this is the
        // confidentiality problem the shield exists to solve.
        let name = b"DOE, JANE";
        assert!(assembled.windows(name.len()).any(|w| w == name));
    }
}
