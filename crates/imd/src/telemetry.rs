//! Patient data held by the IMD: identity record and stored ECG.
//!
//! This is the confidential information the passive eavesdropper is after
//! ("patient name, ECG signal", §2). The ECG is synthesized with the
//! classic sum-of-Gaussians morphology model (one Gaussian per P, Q, R, S,
//! T wave), giving a recognizable, deterministic waveform whose rate
//! follows the programmed pacing rate.

/// The stored patient identity record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatientRecord {
    /// Patient name (as stored by the clinic).
    pub name: String,
    /// Medical record number.
    pub mrn: String,
    /// Implanting physician.
    pub physician: String,
}

impl PatientRecord {
    /// A demo record used by examples and experiments.
    pub fn demo() -> Self {
        PatientRecord {
            name: "DOE, JANE".to_string(),
            mrn: "MRN-0047112".to_string(),
            physician: "DR. OSLER".to_string(),
        }
    }

    /// Serializes the record to bytes (length-prefixed fields).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut v = Vec::new();
        for field in [&self.name, &self.mrn, &self.physician] {
            let b = field.as_bytes();
            v.push(b.len().min(255) as u8);
            v.extend_from_slice(&b[..b.len().min(255)]);
        }
        v
    }

    /// The record split into 7-byte chunks for `ReadPatient` responses.
    pub fn chunk(&self, index: u16) -> Vec<u8> {
        let bytes = self.to_bytes();
        let start = index as usize * 7;
        if start >= bytes.len() {
            return Vec::new();
        }
        bytes[start..(start + 7).min(bytes.len())].to_vec()
    }

    /// Number of chunks in the record.
    pub fn chunk_count(&self) -> u16 {
        (self.to_bytes().len().div_ceil(7)) as u16
    }
}

/// Morphology of one ECG beat as a sum of Gaussians.
/// `(amplitude_mV, center_fraction_of_beat, width_fraction)` per wave.
const ECG_WAVES: [(f64, f64, f64); 5] = [
    (0.15, 0.15, 0.035),  // P
    (-0.12, 0.28, 0.012), // Q
    (1.20, 0.31, 0.015),  // R
    (-0.25, 0.34, 0.012), // S
    (0.30, 0.55, 0.060),  // T
];

/// Deterministic synthetic ECG generator.
#[derive(Debug, Clone)]
pub struct EcgGenerator {
    /// Heart rate, beats per minute.
    pub rate_bpm: f64,
    /// Output sample rate, Hz.
    pub fs_hz: f64,
}

impl EcgGenerator {
    /// Creates a generator at the given heart rate, sampled at 256 Hz.
    pub fn new(rate_bpm: f64) -> Self {
        assert!(rate_bpm > 0.0);
        EcgGenerator {
            rate_bpm,
            fs_hz: 256.0,
        }
    }

    /// ECG voltage in millivolts at time `t` seconds.
    pub fn voltage_mv(&self, t: f64) -> f64 {
        let beat_period = 60.0 / self.rate_bpm;
        let phase = (t / beat_period).fract();
        ECG_WAVES
            .iter()
            .map(|&(a, c, w)| {
                // Wrap-aware distance on the unit circle of beat phase.
                let mut d = (phase - c).abs();
                d = d.min(1.0 - d);
                a * (-d * d / (2.0 * w * w)).exp()
            })
            .sum()
    }

    /// Generates `n` samples starting at sample index `start`, quantized to
    /// i8 at 0.02 mV/LSB (the stored-telemetry format; fits data chunks).
    pub fn samples_i8(&self, start: u64, n: usize) -> Vec<i8> {
        (0..n)
            .map(|i| {
                let t = (start + i as u64) as f64 / self.fs_hz;
                (self.voltage_mv(t) / 0.02).round().clamp(-127.0, 127.0) as i8
            })
            .collect()
    }

    /// One 7-byte chunk of stored ECG for `ReadEcg` responses.
    pub fn chunk(&self, index: u16) -> Vec<u8> {
        self.samples_i8(index as u64 * 7, 7)
            .into_iter()
            .map(|s| s as u8)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_chunks_reassemble() {
        let r = PatientRecord::demo();
        let mut assembled = Vec::new();
        for i in 0..r.chunk_count() {
            assembled.extend(r.chunk(i));
        }
        assert_eq!(assembled, r.to_bytes());
        // Past-the-end chunk is empty.
        assert!(r.chunk(r.chunk_count()).is_empty());
    }

    #[test]
    fn record_contains_name() {
        let r = PatientRecord::demo();
        let bytes = r.to_bytes();
        let name = b"DOE, JANE";
        assert!(bytes.windows(name.len()).any(|w| w == name));
    }

    #[test]
    fn ecg_is_periodic_at_heart_rate() {
        let g = EcgGenerator::new(60.0); // 1 beat/s
        for t in [0.1, 0.31, 0.77] {
            assert!((g.voltage_mv(t) - g.voltage_mv(t + 1.0)).abs() < 1e-9);
        }
    }

    #[test]
    fn r_wave_dominates() {
        let g = EcgGenerator::new(60.0);
        // Peak near 31% of the beat should be the largest value.
        let peak = g.voltage_mv(0.31);
        assert!(peak > 1.0, "R wave {peak}");
        for frac in [0.0, 0.1, 0.5, 0.7, 0.9] {
            assert!(g.voltage_mv(frac) < peak + 1e-9);
        }
    }

    #[test]
    fn rate_scales_period() {
        let g = EcgGenerator::new(120.0); // 0.5 s period
        assert!((g.voltage_mv(0.2) - g.voltage_mv(0.7)).abs() < 1e-9);
    }

    #[test]
    fn samples_deterministic_and_bounded() {
        let g = EcgGenerator::new(72.0);
        let a = g.samples_i8(0, 512);
        let b = g.samples_i8(0, 512);
        assert_eq!(a, b);
        assert!(a.iter().any(|&s| s > 30)); // R waves present
    }

    #[test]
    fn chunks_tile_the_stream() {
        let g = EcgGenerator::new(60.0);
        let c0 = g.chunk(0);
        let c1 = g.chunk(1);
        let direct: Vec<u8> = g.samples_i8(0, 14).into_iter().map(|s| s as u8).collect();
        assert_eq!(&direct[..7], &c0[..]);
        assert_eq!(&direct[7..], &c1[..]);
    }
}
