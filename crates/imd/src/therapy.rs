//! Therapy parameters of a cardiac device.
//!
//! These are the safety-critical settings the paper's active adversary
//! tries to change ("commands that cause the device to deliver an electric
//! shock to the patient", §1; Fig. 12's therapy-modification attack). The
//! parameter set models a pacemaker/ICD: pacing mode, lower rate limit,
//! pulse amplitude/width, and defibrillation shock energy.

/// Pacing mode (NBG code subset).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum PacingMode {
    /// Ventricular demand pacing.
    Vvi = 0,
    /// Dual-chamber pacing.
    Ddd = 1,
    /// Atrial demand pacing.
    Aai = 2,
    /// Pacing disabled (monitoring only).
    Off = 3,
}

impl PacingMode {
    /// Decodes from a byte.
    pub fn from_byte(b: u8) -> Option<Self> {
        match b {
            0 => Some(PacingMode::Vvi),
            1 => Some(PacingMode::Ddd),
            2 => Some(PacingMode::Aai),
            3 => Some(PacingMode::Off),
            _ => None,
        }
    }
}

/// The full therapy parameter block (fits one command payload).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TherapyParams {
    /// Pacing mode.
    pub mode: PacingMode,
    /// Lower rate limit, pulses per minute (30–185).
    pub rate_ppm: u8,
    /// Pacing pulse amplitude, tenths of a volt (1–75, i.e. 0.1–7.5 V).
    pub amplitude_dv: u8,
    /// Pacing pulse width, tenths of a millisecond (1–15).
    pub pulse_width_dms: u8,
    /// Maximum defibrillation shock energy, joules (0–40).
    pub shock_energy_j: u8,
}

/// Validation error for therapy parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TherapyError(pub String);

impl std::fmt::Display for TherapyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid therapy parameters: {}", self.0)
    }
}

impl std::error::Error for TherapyError {}

impl TherapyParams {
    /// Nominal shipping configuration.
    pub fn nominal() -> Self {
        TherapyParams {
            mode: PacingMode::Ddd,
            rate_ppm: 60,
            amplitude_dv: 35,
            pulse_width_dms: 4,
            shock_energy_j: 30,
        }
    }

    /// Checks clinical ranges.
    pub fn validate(&self) -> Result<(), TherapyError> {
        if !(30..=185).contains(&self.rate_ppm) {
            return Err(TherapyError(format!(
                "rate {} ppm out of 30..=185",
                self.rate_ppm
            )));
        }
        if !(1..=75).contains(&self.amplitude_dv) {
            return Err(TherapyError(format!(
                "amplitude {} dV out of 1..=75",
                self.amplitude_dv
            )));
        }
        if !(1..=15).contains(&self.pulse_width_dms) {
            return Err(TherapyError(format!(
                "pulse width {} dms out of 1..=15",
                self.pulse_width_dms
            )));
        }
        if self.shock_energy_j > 40 {
            return Err(TherapyError(format!(
                "shock energy {} J out of 0..=40",
                self.shock_energy_j
            )));
        }
        Ok(())
    }

    /// Serializes to 5 wire bytes.
    pub fn to_bytes(&self) -> [u8; 5] {
        [
            self.mode as u8,
            self.rate_ppm,
            self.amplitude_dv,
            self.pulse_width_dms,
            self.shock_energy_j,
        ]
    }

    /// Parses from 5 wire bytes (structure only; call
    /// [`TherapyParams::validate`] for clinical ranges).
    pub fn from_bytes(b: &[u8]) -> Option<Self> {
        if b.len() < 5 {
            return None;
        }
        Some(TherapyParams {
            mode: PacingMode::from_byte(b[0])?,
            rate_ppm: b[1],
            amplitude_dv: b[2],
            pulse_width_dms: b[3],
            shock_energy_j: b[4],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nominal_is_valid() {
        TherapyParams::nominal().validate().unwrap();
    }

    #[test]
    fn roundtrip_bytes() {
        let p = TherapyParams::nominal();
        assert_eq!(TherapyParams::from_bytes(&p.to_bytes()).unwrap(), p);
    }

    #[test]
    fn rejects_out_of_range() {
        let mut p = TherapyParams::nominal();
        p.rate_ppm = 250;
        assert!(p.validate().is_err());
        p = TherapyParams::nominal();
        p.amplitude_dv = 0;
        assert!(p.validate().is_err());
        p = TherapyParams::nominal();
        p.pulse_width_dms = 16;
        assert!(p.validate().is_err());
        p = TherapyParams::nominal();
        p.shock_energy_j = 41;
        assert!(p.validate().is_err());
    }

    #[test]
    fn from_bytes_rejects_bad_mode_or_length() {
        assert!(TherapyParams::from_bytes(&[9, 60, 35, 4, 30]).is_none());
        assert!(TherapyParams::from_bytes(&[0, 60, 35]).is_none());
    }

    #[test]
    fn mode_byte_roundtrip() {
        for m in [
            PacingMode::Vvi,
            PacingMode::Ddd,
            PacingMode::Aai,
            PacingMode::Off,
        ] {
            assert_eq!(PacingMode::from_byte(m as u8), Some(m));
        }
        assert_eq!(PacingMode::from_byte(200), None);
    }
}
