//! Zero-power wake-up gate: the battery-DoS defense.
//!
//! The battery-depletion attack (Fig. 11, and the `battery` experiment)
//! works because a stock IMD's receiver is always on and every valid
//! command costs a transmitted reply. The wake-up-radio literature cuts
//! that loop with a separate, passively-powered receiver that does
//! exactly one thing: match an *authenticated wake token*. Until one
//! arrives, the main radio is off — commands are not decoded, no replies
//! are sent, no stats are kept, and the battery spends nothing on the
//! attacker's traffic.
//!
//! The gate is modeled at the frame layer: while closed, the only frame
//! the device reacts to is a token payload
//! `| 0x40 | ctr 1B | tag 4B |` addressed to its serial, whose tag is a
//! truncated Poly1305 MAC under a key derived from the wake key and the
//! counter ([`hb_crypto::micro::token_tag`]). Counters are strictly
//! increasing, so a token heard over the air cannot be replayed to
//! re-open the gate. An accepted token opens the main radio for
//! [`WakeConfig::window_s`]; traffic inside the window is whatever the
//! firmware speaks — for a stock
//! [`SecurityMode::Open`](crate::models::SecurityMode::Open) device that
//! is *plaintext*, which is precisely the eavesdropping/forgery residue
//! the defense matrix measures against this defense.

use hb_crypto::micro::{token_tag, TOKEN_TAG_LEN};
use hb_phy::packet::Serial;

/// Reserved opcode marking a wake-token payload. Outside the command
/// opcode space, so stock firmware (no gate) silently ignores tokens.
pub const WAKE_OPCODE: u8 = 0x40;

/// Wake-token payload length: opcode + counter + 32-bit tag.
pub const TOKEN_LEN: usize = 2 + TOKEN_TAG_LEN;

/// KDF label separating wake-token keys from everything else.
const LABEL: &[u8] = b"wake";

/// Configuration of a fitted wake-up receiver.
#[derive(Debug, Clone)]
pub struct WakeConfig {
    /// Key shared with authorized programmers' wake transmitters.
    pub key: [u8; 32],
    /// How long the main radio stays on after an accepted token, seconds.
    pub window_s: f64,
}

impl WakeConfig {
    /// A gate keyed with `key` and the default 250 ms window — enough
    /// for a full command/reply exchange with margin, short enough that
    /// a drain attacker who merely *observed* a session gets little.
    pub fn new(key: [u8; 32]) -> Self {
        WakeConfig {
            key,
            window_s: 0.25,
        }
    }
}

/// Builds the wake-token payload for `serial` with counter `ctr`.
pub fn wake_token(key: &[u8; 32], serial: &Serial, ctr: u8) -> Vec<u8> {
    let tag = token_tag(key, LABEL, ctr, &serial.0);
    let mut payload = Vec::with_capacity(TOKEN_LEN);
    payload.push(WAKE_OPCODE);
    payload.push(ctr);
    payload.extend_from_slice(&tag);
    payload
}

/// True if `payload` is shaped like a wake token (gate traffic, never a
/// command).
pub fn is_wake_payload(payload: &[u8]) -> bool {
    payload.first() == Some(&WAKE_OPCODE)
}

/// The gate state machine the device consults per received frame.
#[derive(Debug, Clone)]
pub struct WakeGate {
    cfg: WakeConfig,
    serial: Serial,
    window_ticks: u64,
    last_ctr: Option<u8>,
    awake_until: Option<u64>,
}

impl WakeGate {
    /// A closed gate for the device `serial`, with the token window
    /// converted to ticks at the air interface's sample rate.
    pub fn new(cfg: WakeConfig, serial: Serial, fs_hz: f64) -> Self {
        let window_ticks = (cfg.window_s * fs_hz).round() as u64;
        WakeGate {
            cfg,
            serial,
            window_ticks,
            last_ctr: None,
            awake_until: None,
        }
    }

    /// Is the main radio on at `tick`?
    pub fn awake(&self, tick: u64) -> bool {
        self.awake_until.is_some_and(|until| tick < until)
    }

    /// Offers a received payload to the wake receiver at `tick`. A
    /// fresh, authentic token (re-)opens the window and returns true.
    pub fn try_wake(&mut self, payload: &[u8], tick: u64) -> bool {
        if payload.len() != TOKEN_LEN || payload[0] != WAKE_OPCODE {
            return false;
        }
        let ctr = payload[1];
        if self.last_ctr.is_some_and(|last| ctr <= last) {
            return false;
        }
        let expect = token_tag(&self.cfg.key, LABEL, ctr, &self.serial.0);
        if payload[2..] != expect {
            return false;
        }
        self.last_ctr = Some(ctr);
        self.awake_until = Some(tick + self.window_ticks);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: [u8; 32] = [3u8; 32];
    const FS: f64 = 300e3;

    fn gate() -> WakeGate {
        WakeGate::new(
            WakeConfig::new(KEY),
            Serial::from_str_padded("VIRTUOSO01"),
            FS,
        )
    }

    #[test]
    fn starts_closed_and_opens_on_valid_token() {
        let mut g = gate();
        assert!(!g.awake(0));
        let token = wake_token(&KEY, &Serial::from_str_padded("VIRTUOSO01"), 1);
        assert!(g.try_wake(&token, 1_000));
        assert!(g.awake(1_001));
        // Window is 0.25 s = 75 000 ticks.
        assert!(g.awake(1_000 + 74_999));
        assert!(!g.awake(1_000 + 75_000));
    }

    #[test]
    fn replayed_token_does_not_reopen() {
        let mut g = gate();
        let token = wake_token(&KEY, &Serial::from_str_padded("VIRTUOSO01"), 1);
        assert!(g.try_wake(&token, 0));
        assert!(!g.try_wake(&token, 200_000), "same counter must be dead");
        let next = wake_token(&KEY, &Serial::from_str_padded("VIRTUOSO01"), 2);
        assert!(g.try_wake(&next, 200_000));
    }

    #[test]
    fn wrong_key_serial_or_tamper_rejected() {
        let mut g = gate();
        let wrong_key = wake_token(&[9u8; 32], &Serial::from_str_padded("VIRTUOSO01"), 1);
        assert!(!g.try_wake(&wrong_key, 0));
        let wrong_serial = wake_token(&KEY, &Serial::from_str_padded("CONCERTO02"), 1);
        assert!(!g.try_wake(&wrong_serial, 0));
        let mut bent = wake_token(&KEY, &Serial::from_str_padded("VIRTUOSO01"), 1);
        bent[3] ^= 1;
        assert!(!g.try_wake(&bent, 0));
        assert!(!g.awake(0));
    }

    #[test]
    fn non_token_payloads_are_ignored() {
        let mut g = gate();
        assert!(!g.try_wake(&[0x10], 0)); // Interrogate opcode
        assert!(!g.try_wake(&[], 0));
        assert!(!is_wake_payload(&[0x10]));
        assert!(is_wake_payload(&[WAKE_OPCODE, 0, 0, 0, 0, 0]));
    }
}
