//! Property tests for the link-layer ARQ tracker.
//!
//! The tracker is a pure state machine, so its contracts can be checked
//! exhaustively against arbitrary policies and poll schedules: the retry
//! budget is never exceeded, backoff is monotone and capped, transmit
//! times are properly spaced, and delivery is terminal.

use hb_imd::arq::{ArqAction, ArqConfig, ArqTracker};
use proptest::prelude::*;

fn arb_config() -> impl Strategy<Value = ArqConfig> {
    (
        0.001f64..0.2,  // reply_timeout_s
        0u32..8,        // max_retries
        0.001f64..0.05, // backoff_base_s
        0.001f64..0.2,  // backoff_max_s
    )
        .prop_map(|(timeout, retries, base, cap)| ArqConfig {
            reply_timeout_s: timeout,
            max_retries: retries,
            backoff_base_s: base,
            backoff_max_s: cap,
            fs_hz: 300e3,
        })
}

/// Drives the tracker with polls every `step` ticks until it finishes
/// (or a safety bound), returning the ticks of every Transmit action.
fn run_to_completion(cfg: ArqConfig, step: u64) -> (ArqTracker, Vec<u64>) {
    let mut t = ArqTracker::new(cfg);
    let mut transmits = Vec::new();
    let mut now = 0u64;
    // Worst case: (retries+1) × (timeout + capped backoff), generously padded.
    let bound = (cfg.max_retries as u64 + 2)
        * (((cfg.reply_timeout_s + cfg.backoff_max_s + cfg.backoff_base_s) * cfg.fs_hz) as u64
            + 2 * step);
    while !t.finished() && now <= bound {
        if let ArqAction::Transmit { .. } = t.poll(now) {
            transmits.push(now);
        }
        now += step;
    }
    (t, transmits)
}

proptest! {
    /// Without a reply, the tracker transmits exactly `max_retries + 1`
    /// times, then fails and stays failed.
    #[test]
    fn attempts_never_exceed_budget(cfg in arb_config(), step in 1u64..512) {
        let (mut t, transmits) = run_to_completion(cfg, step);
        prop_assert!(t.finished(), "tracker must terminate without replies");
        prop_assert!(!t.delivered());
        prop_assert_eq!(transmits.len() as u32, cfg.max_retries + 1);
        prop_assert_eq!(t.stats.attempts, cfg.max_retries + 1);
        // Failed is absorbing: further polls never transmit again.
        let late = transmits.last().unwrap() + 1_000_000;
        prop_assert_eq!(t.poll(late), ArqAction::Failed);
        prop_assert_eq!(t.stats.attempts, cfg.max_retries + 1);
    }

    /// Consecutive transmits are separated by at least the reply timeout
    /// (the attempt must fully time out before a retry can start).
    #[test]
    fn retransmits_wait_out_the_timeout(cfg in arb_config(), step in 1u64..512) {
        let (_, transmits) = run_to_completion(cfg, step);
        let timeout_ticks = ((cfg.reply_timeout_s * cfg.fs_hz).round() as u64).max(1);
        for pair in transmits.windows(2) {
            prop_assert!(
                pair[1] - pair[0] >= timeout_ticks,
                "retransmit after {} ticks, timeout is {}",
                pair[1] - pair[0],
                timeout_ticks
            );
        }
    }

    /// Backoff is monotone non-decreasing in the attempt number and never
    /// exceeds the cap (nor drops below the base unless capped under it).
    #[test]
    fn backoff_is_monotone_and_capped(cfg in arb_config()) {
        let t = ArqTracker::new(cfg);
        let cap = cfg.backoff_max_s;
        let mut prev = 0.0f64;
        for attempt in 1..=32u32 {
            let b = t.backoff_s(attempt);
            prop_assert!(b >= prev, "backoff must not shrink: {} < {}", b, prev);
            prop_assert!(b <= cap + 1e-12, "backoff {} exceeds cap {}", b, cap);
            prop_assert!(b >= cfg.backoff_base_s.min(cap) - 1e-12);
            prev = b;
        }
    }

    /// A reply delivered at any point makes Done absorbing: no transmit
    /// ever follows, and the attempt count is frozen.
    #[test]
    fn delivery_is_terminal(
        cfg in arb_config(),
        step in 1u64..512,
        deliver_after_polls in 0usize..64,
    ) {
        let mut t = ArqTracker::new(cfg);
        let mut now = 0u64;
        for _ in 0..deliver_after_polls {
            if t.finished() {
                break;
            }
            t.poll(now);
            now += step;
        }
        let failed_already = t.finished() && !t.delivered();
        t.on_delivered();
        let attempts_at_delivery = t.stats.attempts;
        if failed_already {
            // Delivery after exhaustion must not resurrect the exchange.
            prop_assert!(!t.delivered());
        } else {
            prop_assert!(t.delivered());
        }
        for _ in 0..16 {
            let action = t.poll(now);
            prop_assert!(
                !matches!(action, ArqAction::Transmit { .. }),
                "no transmissions after the exchange ended"
            );
            now += step;
        }
        prop_assert_eq!(t.stats.attempts, attempts_at_delivery);
    }
}
