//! The MICS band plan: 402–405 MHz divided into ten 300 kHz channels
//! (FCC 47 CFR 95, §2 of the paper).

/// Lower edge of the MICS band, Hz.
pub const BAND_START_HZ: f64 = 402.0e6;
/// Upper edge of the MICS band, Hz.
pub const BAND_END_HZ: f64 = 405.0e6;
/// Width of one MICS channel, Hz.
pub const CHANNEL_WIDTH_HZ: f64 = 300.0e3;
/// Number of channels in the band.
pub const N_CHANNELS: usize = 10;

/// A MICS channel index (0..=9).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MicsChannel(pub usize);

impl MicsChannel {
    /// Creates a channel, checking range.
    pub fn new(index: usize) -> Option<Self> {
        if index < N_CHANNELS {
            Some(MicsChannel(index))
        } else {
            None
        }
    }

    /// Center frequency of the channel, Hz.
    pub fn center_hz(&self) -> f64 {
        BAND_START_HZ + (self.0 as f64 + 0.5) * CHANNEL_WIDTH_HZ
    }

    /// Lower edge frequency, Hz.
    pub fn low_hz(&self) -> f64 {
        BAND_START_HZ + self.0 as f64 * CHANNEL_WIDTH_HZ
    }

    /// Upper edge frequency, Hz.
    pub fn high_hz(&self) -> f64 {
        self.low_hz() + CHANNEL_WIDTH_HZ
    }

    /// The channel containing a frequency, if it is in the band.
    pub fn containing(freq_hz: f64) -> Option<Self> {
        if !(BAND_START_HZ..BAND_END_HZ).contains(&freq_hz) {
            return None;
        }
        let idx = ((freq_hz - BAND_START_HZ) / CHANNEL_WIDTH_HZ) as usize;
        Some(MicsChannel(idx.min(N_CHANNELS - 1)))
    }

    /// Iterator over all channels.
    pub fn all() -> impl Iterator<Item = MicsChannel> {
        (0..N_CHANNELS).map(MicsChannel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn band_covers_3_mhz_in_10_channels() {
        assert_eq!(N_CHANNELS, 10);
        assert!((BAND_END_HZ - BAND_START_HZ - 3.0e6).abs() < 1.0);
        assert!((N_CHANNELS as f64 * CHANNEL_WIDTH_HZ - 3.0e6).abs() < 1.0);
    }

    #[test]
    fn channel_zero_and_nine_edges() {
        let c0 = MicsChannel(0);
        assert_eq!(c0.low_hz(), 402.0e6);
        assert_eq!(c0.center_hz(), 402.15e6);
        let c9 = MicsChannel(9);
        assert_eq!(c9.high_hz(), 405.0e6);
    }

    #[test]
    fn new_checks_range() {
        assert!(MicsChannel::new(9).is_some());
        assert!(MicsChannel::new(10).is_none());
    }

    #[test]
    fn containing_maps_frequencies() {
        assert_eq!(MicsChannel::containing(402.1e6), Some(MicsChannel(0)));
        assert_eq!(MicsChannel::containing(403.5e6), Some(MicsChannel(5)));
        assert_eq!(MicsChannel::containing(404.95e6), Some(MicsChannel(9)));
        assert_eq!(MicsChannel::containing(401.9e6), None);
        assert_eq!(MicsChannel::containing(405.1e6), None);
    }

    #[test]
    fn all_channels_tile_the_band() {
        let mut next_edge = BAND_START_HZ;
        for c in MicsChannel::all() {
            assert!((c.low_hz() - next_edge).abs() < 1e-6);
            next_edge = c.high_hz();
        }
        assert!((next_edge - BAND_END_HZ).abs() < 1e-6);
    }

    #[test]
    fn roundtrip_center_to_channel() {
        for c in MicsChannel::all() {
            assert_eq!(MicsChannel::containing(c.center_hz()), Some(c));
        }
    }
}
