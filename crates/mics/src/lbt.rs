//! Listen-before-talk channel acquisition.
//!
//! Per §2 of the paper: *"Before they can use a 300 KHz channel for their
//! session, they must 'listen' for a minimum of 10 ms to ensure that the
//! channel is unoccupied."* This module provides the LBT state machine a
//! programmer runs before opening a session (IMDs never carrier-sense —
//! they respond blindly, which is exactly the property the shield's
//! passive-jamming window exploits).

use crate::band::MicsChannel;
use crate::regs::LBT_DURATION_S;

/// Result of one LBT attempt on a channel.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LbtOutcome {
    /// Still monitoring; keep feeding observations.
    Monitoring,
    /// Channel was quiet for the full window — clear to transmit.
    Clear,
    /// Energy detected — channel occupied, try another.
    Occupied,
}

/// Listen-before-talk monitor for one channel.
#[derive(Debug, Clone)]
pub struct LbtMonitor {
    channel: MicsChannel,
    threshold_dbm: f64,
    required_s: f64,
    observed_s: f64,
    outcome: LbtOutcome,
}

impl LbtMonitor {
    /// Starts monitoring `channel`; energy above `threshold_dbm` marks the
    /// channel occupied.
    pub fn new(channel: MicsChannel, threshold_dbm: f64) -> Self {
        LbtMonitor {
            channel,
            threshold_dbm,
            required_s: LBT_DURATION_S,
            observed_s: 0.0,
            outcome: LbtOutcome::Monitoring,
        }
    }

    /// The channel being monitored.
    pub fn channel(&self) -> MicsChannel {
        self.channel
    }

    /// Feeds one observation: the measured channel level over `dt_s`
    /// seconds. Returns the current outcome.
    pub fn observe(&mut self, level_dbm: f64, dt_s: f64) -> LbtOutcome {
        if self.outcome != LbtOutcome::Monitoring {
            return self.outcome;
        }
        if level_dbm > self.threshold_dbm {
            self.outcome = LbtOutcome::Occupied;
        } else {
            self.observed_s += dt_s;
            if self.observed_s + 1e-12 >= self.required_s {
                self.outcome = LbtOutcome::Clear;
            }
        }
        self.outcome
    }

    /// Current outcome without feeding a new observation.
    pub fn outcome(&self) -> LbtOutcome {
        self.outcome
    }

    /// Seconds of quiet observed so far.
    pub fn observed_s(&self) -> f64 {
        self.observed_s
    }
}

/// Scans channels in order, returning the first that passes LBT according
/// to the per-channel levels reported by `level_dbm(channel)`.
///
/// This is the idealized "find an unoccupied channel" step a programmer
/// performs at session start; the full time-domain version runs inside the
/// programmer device model.
pub fn first_clear_channel<F: FnMut(MicsChannel) -> f64>(
    threshold_dbm: f64,
    mut level_dbm: F,
) -> Option<MicsChannel> {
    MicsChannel::all().find(|&c| level_dbm(c) <= threshold_dbm)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_channel_clears_after_10ms() {
        let mut m = LbtMonitor::new(MicsChannel(0), -90.0);
        for _ in 0..9 {
            assert_eq!(m.observe(-110.0, 1e-3), LbtOutcome::Monitoring);
        }
        assert_eq!(m.observe(-110.0, 1e-3), LbtOutcome::Clear);
        assert!((m.observed_s() - 0.010).abs() < 1e-12);
    }

    #[test]
    fn energy_marks_occupied_immediately() {
        let mut m = LbtMonitor::new(MicsChannel(3), -90.0);
        assert_eq!(m.observe(-110.0, 5e-3), LbtOutcome::Monitoring);
        assert_eq!(m.observe(-60.0, 1e-3), LbtOutcome::Occupied);
        // Outcome is sticky.
        assert_eq!(m.observe(-120.0, 20e-3), LbtOutcome::Occupied);
    }

    #[test]
    fn clear_is_sticky() {
        let mut m = LbtMonitor::new(MicsChannel(0), -90.0);
        m.observe(-110.0, 10e-3);
        assert_eq!(m.outcome(), LbtOutcome::Clear);
        assert_eq!(m.observe(-40.0, 1e-3), LbtOutcome::Clear);
    }

    #[test]
    fn first_clear_skips_occupied() {
        let busy = [
            true, true, false, true, false, false, false, false, false, false,
        ];
        let found = first_clear_channel(-90.0, |c| if busy[c.0] { -50.0 } else { -110.0 });
        assert_eq!(found, Some(MicsChannel(2)));
    }

    #[test]
    fn all_busy_returns_none() {
        let found = first_clear_channel(-90.0, |_| -50.0);
        assert_eq!(found, None);
    }
}
