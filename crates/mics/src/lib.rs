//! # hb-mics — the Medical Implant Communication Service band model
//!
//! Regulatory and protocol context for the 402–405 MHz MICS band (§2 of
//! the paper):
//!
//! * [`band`] — ten 300 kHz channels across 3 MHz.
//! * [`regs`] — FCC EIRP limits (25 µW external, 20 dB lower for implants)
//!   and compliance checks.
//! * [`lbt`] — the 10 ms listen-before-talk rule programmers follow.
//! * [`session`] — session establishment: scan → LBT → established →
//!   rescan on persistent interference.
//! * [`timing`] — IMD reply-window timing (T1/T2/P), the property the
//!   shield's passive jamming schedule is built on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod band;
pub mod lbt;
pub mod regs;
pub mod session;
pub mod timing;

pub use band::{MicsChannel, N_CHANNELS};
pub use regs::{check_tx_power, fcc_eirp_limit_dbm, implant_tx_power_dbm, Compliance};
pub use session::{SessionConfig, SessionNegotiator, SessionState};
pub use timing::ReplyTiming;
