//! Regulatory limits for the MICS band and compliance checking.
//!
//! * The FCC EIRP limit for MICS devices is 25 µW (−16 dBm).
//! * Implanted transmitters operate about 20 dB below external devices
//!   ([40, 41] in the paper) — this is the headroom that lets the shield
//!   jam at "+20 dB relative to the received IMD power" while remaining
//!   compliant (§10.1(b)).
//! * Devices must monitor a candidate channel for at least 10 ms before
//!   using it (listen-before-talk, §2).

use hb_dsp::units::dbm_from_watts;

/// FCC EIRP limit for external MICS devices, dBm (25 µW ≈ −16 dBm).
pub fn fcc_eirp_limit_dbm() -> f64 {
    dbm_from_watts(25e-6)
}

/// Typical implant transmit power, dBm: 20 dB below the external limit.
pub fn implant_tx_power_dbm() -> f64 {
    fcc_eirp_limit_dbm() - 20.0
}

/// Required listen-before-talk monitoring time, seconds.
pub const LBT_DURATION_S: f64 = 10e-3;

/// Outcome of a compliance check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Compliance {
    /// Within limits.
    Compliant,
    /// Exceeds the applicable EIRP limit.
    OverPower,
}

/// Checks a transmit power against the applicable limit.
///
/// `implanted` selects the implant budget (external limit − 20 dB).
pub fn check_tx_power(power_dbm: f64, implanted: bool) -> Compliance {
    let limit = if implanted {
        implant_tx_power_dbm()
    } else {
        fcc_eirp_limit_dbm()
    };
    // Allow a hair of numerical slack at exactly the limit.
    if power_dbm <= limit + 1e-9 {
        Compliance::Compliant
    } else {
        Compliance::OverPower
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn limits_have_expected_values() {
        assert!((fcc_eirp_limit_dbm() - (-16.02)).abs() < 0.01);
        assert!((implant_tx_power_dbm() - (-36.02)).abs() < 0.01);
    }

    #[test]
    fn compliance_checks() {
        assert_eq!(check_tx_power(-20.0, false), Compliance::Compliant);
        assert_eq!(check_tx_power(-10.0, false), Compliance::OverPower);
        assert_eq!(
            check_tx_power(fcc_eirp_limit_dbm(), false),
            Compliance::Compliant
        );
        assert_eq!(check_tx_power(-36.5, true), Compliance::Compliant);
        assert_eq!(check_tx_power(-30.0, true), Compliance::OverPower);
    }

    #[test]
    fn high_power_adversary_is_noncompliant() {
        // The paper's sophisticated adversary transmits at 100x the
        // shield's power: +20 dB over the limit.
        let adversary = fcc_eirp_limit_dbm() + 20.0;
        assert_eq!(check_tx_power(adversary, false), Compliance::OverPower);
    }

    #[test]
    fn lbt_duration_is_10ms() {
        assert_eq!(LBT_DURATION_S, 0.010);
    }
}
