//! MICS session establishment and maintenance (§2 of the paper).
//!
//! *"Before they can use a 300 KHz channel for their session, they must
//! 'listen' for a minimum of 10 ms to ensure that the channel is
//! unoccupied. Once they find an unoccupied channel, they establish a
//! session and alternate between the programmer transmitting a query or
//! command, and the IMD responding immediately without sensing the medium.
//! The programmer and IMD can keep using the channel until the end of
//! their session, or until they encounter persistent interference, in
//! which case they listen again to find an unoccupied channel."*
//!
//! [`SessionNegotiator`] is that state machine, fed with per-channel level
//! observations: scan → LBT on a candidate → established → (on persistent
//! interference) rescan. It is medium-agnostic — devices feed it their own
//! RSSI measurements — so the same logic runs in the programmer model and
//! in tests.

use crate::band::{MicsChannel, N_CHANNELS};
use crate::lbt::{LbtMonitor, LbtOutcome};

/// Session-negotiation state.
#[derive(Debug, Clone)]
pub enum SessionState {
    /// Performing listen-before-talk on a candidate channel.
    Listening {
        /// The LBT monitor for the candidate.
        monitor: LbtMonitor,
        /// Channels already found busy this scan round.
        rejected: Vec<MicsChannel>,
    },
    /// A session channel has been acquired.
    Established {
        /// The channel in use.
        channel: MicsChannel,
        /// Seconds of persistent interference accumulated.
        interference_s: f64,
    },
    /// Every channel in the band was busy.
    BandBusy,
}

/// Configuration for session negotiation.
#[derive(Debug, Clone, Copy)]
pub struct SessionConfig {
    /// CCA threshold, dBm: levels above this mark a channel busy.
    pub cca_threshold_dbm: f64,
    /// Seconds of persistent interference after which the pair abandons
    /// the channel and rescans.
    pub interference_tolerance_s: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            cca_threshold_dbm: -90.0,
            interference_tolerance_s: 0.050,
        }
    }
}

/// The session state machine. Feed it observations; read its state.
#[derive(Debug, Clone)]
pub struct SessionNegotiator {
    cfg: SessionConfig,
    state: SessionState,
    /// Sessions established so far (for diagnostics).
    pub sessions_established: u64,
    /// Channel changes forced by interference.
    pub interference_moves: u64,
}

impl SessionNegotiator {
    /// Starts negotiating, trying channel 0 first.
    pub fn new(cfg: SessionConfig) -> Self {
        SessionNegotiator {
            state: SessionState::Listening {
                monitor: LbtMonitor::new(MicsChannel(0), cfg.cca_threshold_dbm),
                rejected: Vec::new(),
            },
            cfg,
            sessions_established: 0,
            interference_moves: 0,
        }
    }

    /// Starts mid-session: already established on `channel` with a clean
    /// interference clock. Used by drivers that join a session negotiated
    /// elsewhere (e.g. a scenario built directly on its session channel)
    /// and only need the maintenance half of the machine — ride out
    /// transient interference, abandon and rescan when it persists.
    pub fn established_on(cfg: SessionConfig, channel: MicsChannel) -> Self {
        SessionNegotiator {
            cfg,
            state: SessionState::Established {
                channel,
                interference_s: 0.0,
            },
            sessions_established: 1,
            interference_moves: 0,
        }
    }

    /// Starts negotiating with listen-before-talk on `channel` first —
    /// for drivers that must acquire a *specific* session channel before
    /// transmitting (e.g. an authenticated programmer whose implant is
    /// parked on that channel), rather than the first quiet one.
    pub fn scanning_from(cfg: SessionConfig, channel: MicsChannel) -> Self {
        SessionNegotiator {
            state: SessionState::Listening {
                monitor: LbtMonitor::new(channel, cfg.cca_threshold_dbm),
                rejected: Vec::new(),
            },
            cfg,
            sessions_established: 0,
            interference_moves: 0,
        }
    }

    /// Current state.
    pub fn state(&self) -> &SessionState {
        &self.state
    }

    /// The channel currently being listened on or used, if any.
    pub fn current_channel(&self) -> Option<MicsChannel> {
        match &self.state {
            SessionState::Listening { monitor, .. } => Some(monitor.channel()),
            SessionState::Established { channel, .. } => Some(*channel),
            SessionState::BandBusy => None,
        }
    }

    /// True once a session channel is held.
    pub fn established(&self) -> bool {
        matches!(self.state, SessionState::Established { .. })
    }

    /// Feeds one observation for the *current* channel: measured level
    /// over `dt_s` seconds. Advances the state machine.
    pub fn observe(&mut self, level_dbm: f64, dt_s: f64) {
        match &mut self.state {
            SessionState::Listening { monitor, rejected } => {
                match monitor.observe(level_dbm, dt_s) {
                    LbtOutcome::Monitoring => {}
                    LbtOutcome::Clear => {
                        self.sessions_established += 1;
                        self.state = SessionState::Established {
                            channel: monitor.channel(),
                            interference_s: 0.0,
                        };
                    }
                    LbtOutcome::Occupied => {
                        let mut rejected = std::mem::take(rejected);
                        rejected.push(monitor.channel());
                        // Next candidate not yet rejected this round.
                        let next = MicsChannel::all().find(|c| !rejected.contains(c));
                        self.state = match next {
                            Some(c) => SessionState::Listening {
                                monitor: LbtMonitor::new(c, self.cfg.cca_threshold_dbm),
                                rejected,
                            },
                            None => SessionState::BandBusy,
                        };
                    }
                }
            }
            SessionState::Established {
                channel,
                interference_s,
            } => {
                if level_dbm > self.cfg.cca_threshold_dbm {
                    *interference_s += dt_s;
                    if *interference_s >= self.cfg.interference_tolerance_s {
                        // Persistent interference: abandon and rescan,
                        // starting from the next channel.
                        let bad = *channel;
                        self.interference_moves += 1;
                        let next = MicsChannel((bad.0 + 1) % N_CHANNELS);
                        self.state = SessionState::Listening {
                            monitor: LbtMonitor::new(next, self.cfg.cca_threshold_dbm),
                            rejected: vec![bad],
                        };
                    }
                } else {
                    *interference_s = 0.0;
                }
            }
            SessionState::BandBusy => {}
        }
    }

    /// Restarts scanning from scratch (e.g. a new clinical session).
    pub fn rescan(&mut self) {
        self.state = SessionState::Listening {
            monitor: LbtMonitor::new(MicsChannel(0), self.cfg.cca_threshold_dbm),
            rejected: Vec::new(),
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quiet() -> f64 {
        -110.0
    }
    fn busy() -> f64 {
        -60.0
    }

    #[test]
    fn establishes_on_first_quiet_channel() {
        let mut n = SessionNegotiator::new(SessionConfig::default());
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(0)));
        assert_eq!(n.sessions_established, 1);
    }

    #[test]
    fn scanning_from_listens_on_the_requested_channel_first() {
        let mut n = SessionNegotiator::scanning_from(SessionConfig::default(), MicsChannel(4));
        assert!(!n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(4)));
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(4)));
        // Busy target channel: falls back to the normal scan order.
        let mut n = SessionNegotiator::scanning_from(SessionConfig::default(), MicsChannel(4));
        n.observe(busy(), 1e-3);
        assert_eq!(n.current_channel(), Some(MicsChannel(0)));
    }

    #[test]
    fn skips_busy_channels() {
        let mut n = SessionNegotiator::new(SessionConfig::default());
        // Channel 0 busy; channel 1 busy; channel 2 quiet.
        n.observe(busy(), 1e-3); // rejects 0
        assert_eq!(n.current_channel(), Some(MicsChannel(1)));
        n.observe(busy(), 1e-3); // rejects 1
        assert_eq!(n.current_channel(), Some(MicsChannel(2)));
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(2)));
    }

    #[test]
    fn whole_band_busy() {
        let mut n = SessionNegotiator::new(SessionConfig::default());
        for _ in 0..N_CHANNELS {
            n.observe(busy(), 1e-3);
        }
        assert!(matches!(n.state(), SessionState::BandBusy));
        assert_eq!(n.current_channel(), None);
        // Recoverable.
        n.rescan();
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
    }

    #[test]
    fn transient_interference_tolerated() {
        let mut n = SessionNegotiator::new(SessionConfig::default());
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        // 30 ms of interference, below the 50 ms tolerance, then quiet.
        for _ in 0..30 {
            n.observe(busy(), 1e-3);
        }
        assert!(n.established(), "must ride out transient interference");
        n.observe(quiet(), 1e-3);
        // The interference clock resets.
        for _ in 0..30 {
            n.observe(busy(), 1e-3);
        }
        assert!(n.established());
    }

    #[test]
    fn interference_clock_resets_on_reacquisition() {
        // After persistent interference forces a move and a new channel is
        // acquired, the interference accumulator must start from zero on
        // the new channel — the 49 ms carried over from the old channel
        // must not count against the new one.
        let mut n = SessionNegotiator::new(SessionConfig::default());
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        for _ in 0..50 {
            n.observe(busy(), 1e-3); // forces the move off channel 0
        }
        for _ in 0..10 {
            n.observe(quiet(), 1e-3); // LBT clears channel 1
        }
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(1)));
        // 49 ms of interference on the fresh channel: below tolerance, so
        // the session must hold. Only a stale accumulator would move.
        for _ in 0..49 {
            n.observe(busy(), 1e-3);
        }
        assert!(
            n.established(),
            "interference accumulator must reset on re-acquisition"
        );
        assert_eq!(n.interference_moves, 1);
    }

    #[test]
    fn band_busy_then_rescan_recovers_mid_session() {
        // A session driver that hits BandBusy keeps rescanning; once any
        // channel frees up the pair re-establishes and the maintenance
        // logic runs with a clean clock.
        let mut n = SessionNegotiator::established_on(SessionConfig::default(), MicsChannel(3));
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(3)));
        assert_eq!(n.sessions_established, 1);
        // Persistent interference, then every channel busy.
        for _ in 0..50 {
            n.observe(busy(), 1e-3);
        }
        assert!(!n.established());
        for _ in 0..N_CHANNELS {
            n.observe(busy(), 1e-3);
        }
        assert!(matches!(n.state(), SessionState::BandBusy));
        // Observations while BandBusy are inert; the driver must rescan.
        n.observe(quiet(), 1e-3);
        assert!(matches!(n.state(), SessionState::BandBusy));
        n.rescan();
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        assert_eq!(n.sessions_established, 2);
        assert_eq!(n.interference_moves, 1);
    }

    #[test]
    fn persistent_interference_forces_channel_change() {
        let mut n = SessionNegotiator::new(SessionConfig::default());
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert_eq!(n.current_channel(), Some(MicsChannel(0)));
        // Exactly the tolerance's worth of continuous interference forces
        // the move; after it the pair is scanning a fresh channel (which
        // is quiet again in this test).
        for _ in 0..50 {
            n.observe(busy(), 1e-3);
        }
        assert!(!n.established());
        assert_eq!(n.interference_moves, 1);
        // It scans a *different* channel next (never back onto the bad one
        // in this round).
        assert_eq!(n.current_channel(), Some(MicsChannel(1)));
        for _ in 0..10 {
            n.observe(quiet(), 1e-3);
        }
        assert!(n.established());
        assert_eq!(n.current_channel(), Some(MicsChannel(1)));
        assert_eq!(n.sessions_established, 2);
    }
}
