//! Session timing parameters of MICS IMD communication.
//!
//! The properties the shield's passive-protection algorithm leans on (§6):
//!
//! 1. an IMD transmits only in response to a programmer message;
//! 2. it responds **without sensing the medium**, within a bounded window
//!    `[T1, T2]` after the message ends;
//! 3. its packets last at most `P`.
//!
//! The shield therefore jams from `T1` after each message it sends until
//! `(T2 − T1) + P` later, guaranteeing coverage of any reply. The paper
//! measured, for the Virtuoso/Concerto devices: T1 = 2.8 ms, T2 = 3.7 ms,
//! P = 21 ms, with a typical observed reply latency of ~3.5 ms (Fig. 3).

/// Reply-timing profile of an IMD, calibrated per device (§6).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplyTiming {
    /// Earliest reply start after the triggering message ends, seconds.
    pub t1_s: f64,
    /// Latest reply start, seconds.
    pub t2_s: f64,
    /// Maximum packet duration, seconds.
    pub p_s: f64,
}

impl ReplyTiming {
    /// The values the paper measured for the Medtronic Virtuoso ICD and
    /// Concerto CRT.
    pub fn medtronic_measured() -> Self {
        ReplyTiming {
            t1_s: 2.8e-3,
            t2_s: 3.7e-3,
            p_s: 21e-3,
        }
    }

    /// Duration the shield must jam, starting `t1_s` after its own
    /// transmission ends: `(T2 − T1) + P` (§6).
    pub fn jam_window_s(&self) -> f64 {
        (self.t2_s - self.t1_s) + self.p_s
    }

    /// Validates the invariants `0 < T1 <= T2`, `P > 0`.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.t1_s > 0.0 && self.t2_s >= self.t1_s && self.p_s > 0.0) {
            return Err(format!(
                "invalid reply timing: T1={} T2={} P={}",
                self.t1_s, self.t2_s, self.p_s
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measured_values_match_paper() {
        let t = ReplyTiming::medtronic_measured();
        assert_eq!(t.t1_s, 0.0028);
        assert_eq!(t.t2_s, 0.0037);
        assert_eq!(t.p_s, 0.021);
        t.validate().unwrap();
    }

    #[test]
    fn jam_window_formula() {
        let t = ReplyTiming::medtronic_measured();
        // (3.7 - 2.8) + 21 = 21.9 ms.
        assert!((t.jam_window_s() - 0.0219).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_nonsense() {
        assert!(ReplyTiming {
            t1_s: -1.0,
            t2_s: 1.0,
            p_s: 1.0
        }
        .validate()
        .is_err());
        assert!(ReplyTiming {
            t1_s: 2.0,
            t2_s: 1.0,
            p_s: 1.0
        }
        .validate()
        .is_err());
        assert!(ReplyTiming {
            t1_s: 1e-3,
            t2_s: 2e-3,
            p_s: 0.0
        }
        .validate()
        .is_err());
    }
}
