//! Bit/byte packing helpers and pseudo-random bit sequences.
//!
//! Bits are represented as `u8` values of 0 or 1, MSB-first within bytes —
//! the order they appear on the air.

/// Unpacks bytes into bits, MSB first.
pub fn bytes_to_bits(bytes: &[u8]) -> Vec<u8> {
    let mut bits = Vec::with_capacity(bytes.len() * 8);
    for &b in bytes {
        for i in (0..8).rev() {
            bits.push((b >> i) & 1);
        }
    }
    bits
}

/// Packs bits (MSB first) into bytes. The bit count must be a multiple of 8.
///
/// # Panics
/// Panics if `bits.len() % 8 != 0` or any value is not 0/1.
pub fn bits_to_bytes(bits: &[u8]) -> Vec<u8> {
    assert!(
        bits.len().is_multiple_of(8),
        "bit count must be a multiple of 8"
    );
    bits.chunks(8)
        .map(|chunk| {
            chunk.iter().fold(0u8, |acc, &b| {
                assert!(b <= 1, "bit values must be 0 or 1");
                (acc << 1) | b
            })
        })
        .collect()
}

/// Counts positions where two bit slices differ (Hamming distance over the
/// common prefix).
pub fn bit_errors(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b.iter()).filter(|(x, y)| x != y).count()
}

/// Bit error rate between two sequences of the same nominal length.
/// Compares over the shorter length; returns 0.5 on empty input (the
/// "pure guessing" convention used in BER reporting).
pub fn bit_error_rate(a: &[u8], b: &[u8]) -> f64 {
    let n = a.len().min(b.len());
    if n == 0 {
        return 0.5;
    }
    bit_errors(a, b) as f64 / n as f64
}

/// A Fibonacci LFSR producing a PRBS-9 style pseudo-random bit sequence
/// (x^9 + x^5 + 1). Used for test payloads and whitening.
#[derive(Debug, Clone)]
pub struct Prbs {
    state: u16,
}

impl Prbs {
    /// Creates a PRBS generator. A zero seed is mapped to 1 (the all-zero
    /// state is a fixed point of the LFSR).
    pub fn new(seed: u16) -> Self {
        let state = if seed & 0x1FF == 0 { 1 } else { seed & 0x1FF };
        Prbs { state }
    }

    /// Returns the next pseudo-random bit.
    pub fn next_bit(&mut self) -> u8 {
        let bit = ((self.state >> 8) ^ (self.state >> 4)) & 1;
        self.state = ((self.state << 1) | bit) & 0x1FF;
        bit as u8
    }

    /// Generates `n` bits.
    pub fn bits(&mut self, n: usize) -> Vec<u8> {
        (0..n).map(|_| self.next_bit()).collect()
    }

    /// Generates `n` bytes.
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        bits_to_bytes(&self.bits(n * 8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_bytes_bits() {
        let bytes = vec![0x00, 0xFF, 0xA5, 0x3C, 0x01];
        assert_eq!(bits_to_bytes(&bytes_to_bits(&bytes)), bytes);
    }

    #[test]
    fn msb_first_order() {
        assert_eq!(bytes_to_bits(&[0x80]), vec![1, 0, 0, 0, 0, 0, 0, 0]);
        assert_eq!(bytes_to_bits(&[0x01]), vec![0, 0, 0, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn bit_errors_counts() {
        assert_eq!(bit_errors(&[0, 1, 0, 1], &[0, 1, 1, 0]), 2);
        assert_eq!(bit_errors(&[1, 1], &[1, 1]), 0);
    }

    #[test]
    fn ber_empty_is_half() {
        assert_eq!(bit_error_rate(&[], &[]), 0.5);
    }

    #[test]
    fn ber_fraction() {
        assert!((bit_error_rate(&[0, 0, 0, 0], &[1, 0, 0, 1]) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn prbs_period_is_511() {
        // PRBS-9 has period 2^9 - 1.
        let mut p = Prbs::new(0x1AB);
        let first: Vec<u8> = p.bits(511);
        let second: Vec<u8> = p.bits(511);
        assert_eq!(first, second);
        // And it's not a shorter period.
        assert_ne!(first[..255], first[256..511]);
    }

    #[test]
    fn prbs_is_balanced() {
        let mut p = Prbs::new(1);
        let bits = p.bits(511);
        let ones: usize = bits.iter().map(|&b| b as usize).sum();
        // PRBS-9 has exactly 256 ones per period.
        assert_eq!(ones, 256);
    }

    #[test]
    fn prbs_zero_seed_ok() {
        let mut p = Prbs::new(0);
        let bits = p.bits(100);
        assert!(bits.contains(&1));
    }

    #[test]
    #[should_panic(expected = "multiple of 8")]
    fn bits_to_bytes_rejects_ragged() {
        let _ = bits_to_bytes(&[1, 0, 1]);
    }
}
