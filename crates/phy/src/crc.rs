//! Cyclic redundancy checks.
//!
//! The paper's threat analysis (§3.1, §7) rests on one property of the IMD:
//! *"legitimate messages sent to an IMD have a checksum and the IMD will
//! discard any message that fails the checksum test."* Jamming works by
//! flipping bits so this check fails. We implement CRC-16/CCITT-FALSE for
//! packet bodies and CRC-8 for short headers.

/// CRC-16/CCITT-FALSE: polynomial 0x1021, init 0xFFFF, no reflection,
/// no final XOR. Check value for "123456789" is 0x29B1.
pub fn crc16_ccitt(data: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &byte in data {
        crc ^= (byte as u16) << 8;
        for _ in 0..8 {
            if crc & 0x8000 != 0 {
                crc = (crc << 1) ^ 0x1021;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// CRC-8 (ATM HEC): polynomial 0x07, init 0x00. Check value for
/// "123456789" is 0xF4.
pub fn crc8(data: &[u8]) -> u8 {
    let mut crc: u8 = 0;
    for &byte in data {
        crc ^= byte;
        for _ in 0..8 {
            if crc & 0x80 != 0 {
                crc = (crc << 1) ^ 0x07;
            } else {
                crc <<= 1;
            }
        }
    }
    crc
}

/// Verifies that `data` followed by its big-endian CRC-16 checks out.
pub fn verify_crc16(data_with_crc: &[u8]) -> bool {
    if data_with_crc.len() < 2 {
        return false;
    }
    let (data, crc_bytes) = data_with_crc.split_at(data_with_crc.len() - 2);
    let expected = u16::from_be_bytes([crc_bytes[0], crc_bytes[1]]);
    crc16_ccitt(data) == expected
}

/// Appends a big-endian CRC-16 to `data`.
pub fn append_crc16(data: &mut Vec<u8>) {
    let crc = crc16_ccitt(data);
    data.extend_from_slice(&crc.to_be_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc16_check_value() {
        assert_eq!(crc16_ccitt(b"123456789"), 0x29B1);
    }

    #[test]
    fn crc8_check_value() {
        assert_eq!(crc8(b"123456789"), 0xF4);
    }

    #[test]
    fn crc16_empty() {
        assert_eq!(crc16_ccitt(&[]), 0xFFFF);
    }

    #[test]
    fn append_verify_roundtrip() {
        let mut data = b"interrogate-imd".to_vec();
        append_crc16(&mut data);
        assert!(verify_crc16(&data));
    }

    #[test]
    fn single_bit_flip_is_detected() {
        let mut data = b"therapy-parameters-v2".to_vec();
        append_crc16(&mut data);
        let n = data.len();
        // Flip every single bit, one at a time; CRC-16 must catch each.
        for byte in 0..n {
            for bit in 0..8 {
                let mut corrupted = data.clone();
                corrupted[byte] ^= 1 << bit;
                assert!(
                    !verify_crc16(&corrupted),
                    "undetected flip at byte {byte} bit {bit}"
                );
            }
        }
    }

    #[test]
    fn burst_errors_detected() {
        let mut data = vec![0x42; 32];
        append_crc16(&mut data);
        // All burst errors up to 16 bits are detected by CRC-16.
        for start in 0..8 {
            let mut corrupted = data.clone();
            corrupted[start] ^= 0xFF;
            corrupted[start + 1] ^= 0xFF;
            assert!(!verify_crc16(&corrupted));
        }
    }

    #[test]
    fn verify_rejects_short_input() {
        assert!(!verify_crc16(&[]));
        assert!(!verify_crc16(&[0x12]));
    }

    #[test]
    fn crc16_is_order_sensitive() {
        assert_ne!(crc16_ccitt(b"ab"), crc16_ccitt(b"ba"));
    }
}
