//! Binary FSK modem — the air interface of MICS-band IMDs.
//!
//! The tested Medtronic devices use 2-FSK whose received spectrum
//! concentrates around ±50 kHz within a 300 kHz channel (Fig. 4 of the
//! paper). We model this as phase-continuous binary FSK: a `0` bit is a
//! tone at `-deviation`, a `1` bit a tone at `+deviation`, with continuous
//! phase across symbol boundaries (constant envelope, like real FSK
//! transmitter hardware).
//!
//! Demodulation is **noncoherent matched filtering**: per symbol, correlate
//! against both tones and pick the larger magnitude. This is the "optimal
//! FSK decoder \[38\]" the paper equips the eavesdropper with; we verify the
//! implementation against the textbook BER curve `0.5·exp(−SNR/2)` in the
//! tests.

use crate::bits::bit_errors;
use crate::packet::{Frame, FrameError, PREAMBLE, SYNC_WORD};
use hb_dsp::complex::C64;
use std::f64::consts::PI;

/// FSK air-interface parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FskParams {
    /// Complex baseband sample rate, Hz.
    pub fs_hz: f64,
    /// Bit rate, bits/s. `fs_hz / bitrate` must be an integer.
    pub bitrate: f64,
    /// Tone deviation, Hz: bit 0 ↦ −deviation, bit 1 ↦ +deviation.
    pub deviation_hz: f64,
}

impl FskParams {
    /// The profile used throughout the reproduction: 300 kHz channel,
    /// 12.5 kbps telemetry, ±50 kHz tones.
    ///
    /// The tone placement matches Fig. 4's energy concentration at ±50 kHz.
    /// The bit rate is chosen so that (a) the longest 256-bit frame lasts
    /// ~21 ms — the paper's max packet duration P — and (b) the
    /// matched-filter processing gain (300 kHz / 12.5 kbps ≈ 13.8 dB)
    /// makes the paper's measured 32 dB antenna cancellation sufficient
    /// for its reported 0.2% packet loss at +20 dB jamming (§10.1(b)).
    pub fn mics_default() -> Self {
        FskParams {
            fs_hz: 300e3,
            bitrate: 12.5e3,
            deviation_hz: 50e3,
        }
    }

    /// Samples per symbol (integer by construction).
    pub fn samples_per_symbol(&self) -> usize {
        let sps = self.fs_hz / self.bitrate;
        assert!(
            (sps - sps.round()).abs() < 1e-9 && sps >= 1.0,
            "fs/bitrate must be a positive integer, got {sps}"
        );
        sps.round() as usize
    }

    /// Tone frequency for a bit value.
    pub fn tone_hz(&self, bit: u8) -> f64 {
        if bit == 0 {
            -self.deviation_hz
        } else {
            self.deviation_hz
        }
    }
}

/// Phase-continuous binary FSK modulator/demodulator.
///
/// Performance notes: neither direction pays trig per sample.
/// Demodulation's per-tone correlation phasors are precomputed one symbol
/// deep at construction. Modulation is blocked phase recurrence
/// ([`hb_dsp::osc::ToneBlock`]): per symbol, one vectorizable pass of
/// independent multiplies against a precomputed per-bit phasor table,
/// with the base phasor advancing once per symbol and renormalizing
/// every [`hb_dsp::osc::RENORM_INTERVAL`] symbols — ~1.3 ns a sample
/// versus ~10 ns for the historical `cis(phase)` accumulator. The
/// waveform differs from that accumulator only at the ulp level (phase
/// error stays below 1e-9 over million-sample frames, pinned by tests);
/// the golden determinism suite was deliberately re-captured on this
/// engine (see `crates/testbed/tests/golden.rs` for the re-pin policy).
#[derive(Debug, Clone)]
pub struct FskModem {
    params: FskParams,
    /// Tone-0 matched-filter phasor table (one symbol long, conjugated),
    /// split into SoA re/im planes so the blocked demodulator kernels take
    /// plain `&[f64]` operands (the PR-5 correlator layout).
    mf0_re: Vec<f64>,
    mf0_im: Vec<f64>,
    /// Tone-1 planes — only read by the generic kernel when the tables are
    /// not a bitwise conjugate pair.
    mf1_re: Vec<f64>,
    mf1_im: Vec<f64>,
    /// Whether the tone-1 table equals `conj(tone-0)` bit for bit. True
    /// for every symmetric-deviation profile (tones at ±deviation); lets
    /// the demodulator share the four partial products between both tone
    /// correlations. Checked at construction, bitwise.
    conj_pair: bool,
    /// One symbol-long blocked tone table per bit value: modulation
    /// multiplies a running base phasor against these, so it never calls
    /// `cis` and carries no per-sample recurrence chain.
    tone: [hb_dsp::osc::ToneBlock; 2],
}

impl FskModem {
    /// Creates a modem for the given parameters.
    pub fn new(params: FskParams) -> Self {
        let sps = params.samples_per_symbol();
        let make = |f: f64| -> Vec<C64> {
            (0..sps)
                .map(|n| C64::cis(-2.0 * PI * f * n as f64 / params.fs_hz))
                .collect()
        };
        let tone_for = |bit: u8| {
            hb_dsp::osc::ToneBlock::new(2.0 * PI * params.tone_hz(bit) / params.fs_hz, sps)
        };
        let mf_zero = make(params.tone_hz(0));
        let mf_one = make(params.tone_hz(1));
        let conj_pair = mf_zero
            .iter()
            .zip(&mf_one)
            .all(|(a, b)| a.re.to_bits() == b.re.to_bits() && (-a.im).to_bits() == b.im.to_bits());
        FskModem {
            params,
            mf0_re: mf_zero.iter().map(|c| c.re).collect(),
            mf0_im: mf_zero.iter().map(|c| c.im).collect(),
            mf1_re: mf_one.iter().map(|c| c.re).collect(),
            mf1_im: mf_one.iter().map(|c| c.im).collect(),
            conj_pair,
            tone: [tone_for(0), tone_for(1)],
        }
    }

    /// Air-interface parameters.
    pub fn params(&self) -> &FskParams {
        &self.params
    }

    /// Modulates bits into unit-amplitude, phase-continuous baseband
    /// samples (`bits.len() * samples_per_symbol` samples).
    ///
    /// Tone synthesis is blocked phase recurrence
    /// ([`hb_dsp::osc::ToneBlock`]): each symbol is one vectorizable pass
    /// of independent multiplies `base · e^{jiΔφ}` against the per-bit
    /// table, and the base phasor advances once per symbol (phase stays
    /// continuous across symbol boundaries by construction), with a
    /// magnitude renormalization every
    /// [`hb_dsp::osc::RENORM_INTERVAL`] symbols.
    pub fn modulate(&self, bits: &[u8]) -> Vec<C64> {
        let sps = self.params.samples_per_symbol();
        let mut out = vec![C64::ZERO; bits.len() * sps];
        let mut base = C64::ONE;
        for (i, (chunk, &bit)) in out.chunks_mut(sps).zip(bits.iter()).enumerate() {
            base = self.tone[usize::from(bit != 0)].emit(base, chunk);
            if i as u32 % hb_dsp::osc::RENORM_INTERVAL == hb_dsp::osc::RENORM_INTERVAL - 1 {
                base = hb_dsp::osc::renormalize_phasor(base);
            }
        }
        out
    }

    /// Per-symbol noncoherent detection statistics for every complete
    /// symbol in `samples`: parallel `(e0, e1)` vectors of the squared
    /// correlation magnitudes against the 0-tone and 1-tone.
    ///
    /// Blocked layout (PR-5 correlator idiom): [`DEMOD_LANES`] symbols are
    /// correlated at once with independent scalar accumulator chains, so
    /// the per-symbol add-latency chain of the historical scalar walk
    /// (kept under `#[cfg(test)] mod reference`) no longer bounds
    /// throughput. Each symbol's own accumulation order is unchanged —
    /// sequential over the symbol — and the fused kernel's rearrangements
    /// are sign-exact in IEEE arithmetic, so the energies are bit-identical
    /// to the reference (pinned by the equivalence proptests; goldens
    /// needed no re-capture).
    fn demod_energies(&self, samples: &[C64]) -> (Vec<f64>, Vec<f64>) {
        let sps = self.params.samples_per_symbol();
        let n_sym = samples.len() / sps;
        let mut e0 = vec![0.0; n_sym];
        let mut e1 = vec![0.0; n_sym];
        let aligned = &samples[..n_sym * sps];
        if self.conj_pair {
            energies_fused(aligned, &self.mf0_re, &self.mf0_im, &mut e0, &mut e1);
        } else {
            energies_generic(
                aligned,
                &self.mf0_re,
                &self.mf0_im,
                &self.mf1_re,
                &self.mf1_im,
                &mut e0,
                &mut e1,
            );
        }
        (e0, e1)
    }

    /// Demodulates symbol-aligned samples into hard bits. Trailing partial
    /// symbols are ignored.
    pub fn demodulate(&self, samples: &[C64]) -> Vec<u8> {
        let (e0, e1) = self.demod_energies(samples);
        e0.iter().zip(&e1).map(|(&a, &b)| u8::from(b > a)).collect()
    }

    /// Soft demodulation: per symbol, returns `e1 − e0` normalized by the
    /// total, in `[-1, 1]` (positive favours bit 1).
    pub fn demodulate_soft(&self, samples: &[C64]) -> Vec<f64> {
        let (e0, e1) = self.demod_energies(samples);
        e0.iter()
            .zip(&e1)
            .map(|(&a, &b)| {
                let total = a + b;
                if total > 0.0 {
                    (b - a) / total
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Searches for a frame start within `samples` by trying every
    /// sub-symbol alignment and scanning the demodulated bit stream for the
    /// preamble + sync pattern (up to `max_pattern_errors` bit errors
    /// allowed).
    ///
    /// Returns the *sample* index where the frame's first preamble symbol
    /// begins.
    pub fn find_frame_start(&self, samples: &[C64], max_pattern_errors: usize) -> Option<usize> {
        let sps = self.params.samples_per_symbol();
        let mut pattern = Vec::new();
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));

        let mut best: Option<(usize, usize)> = None; // (errors, sample index)
        for phase in 0..sps.min(samples.len()) {
            let bits = self.demodulate(&samples[phase..]);
            if bits.len() < pattern.len() {
                continue;
            }
            for start in 0..=(bits.len() - pattern.len()) {
                let errs = bit_errors(&bits[start..start + pattern.len()], &pattern);
                if errs <= max_pattern_errors {
                    let sample_idx = phase + start * sps;
                    match best {
                        Some((e, s)) if (errs, sample_idx) >= (e, s) => {}
                        _ => best = Some((errs, sample_idx)),
                    }
                    // Earliest adequate match at this phase is enough.
                    break;
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Attempts to receive a complete frame from a sample buffer: locates
    /// the preamble/sync, demodulates from there, and parses.
    pub fn receive_frame(&self, samples: &[C64]) -> Result<Frame, FskRxError> {
        let start = self
            .find_frame_start(samples, 4)
            .ok_or(FskRxError::NoFrame)?;
        let bits = self.demodulate(&samples[start..]);
        Frame::from_bits(&bits).map_err(FskRxError::Frame)
    }

    /// On-air duration of `n_bits` in seconds.
    pub fn duration_s(&self, n_bits: usize) -> f64 {
        n_bits as f64 / self.params.bitrate
    }

    /// On-air duration of `n_bits` in samples.
    pub fn duration_samples(&self, n_bits: usize) -> usize {
        n_bits * self.params.samples_per_symbol()
    }
}

/// Symbols correlated per blocked-kernel iteration: enough independent
/// accumulator chains (4 lanes × 4 accumulators) to hide FP add latency
/// without spilling the register file.
const DEMOD_LANES: usize = 4;

/// Fused matched-filter energies for a bitwise-conjugate tone pair.
///
/// With `mf_one[i] == conj(mf_zero[i])` the two correlations share the four
/// partial products `s.re·wr, s.im·wi, s.re·wi, s.im·wr`: the tone-1 terms
/// are the same products with flipped combination signs, and in IEEE
/// arithmetic `a − (−b) ≡ a + b` and `(−a) + b ≡ b − a` bit for bit, so
/// this halves the multiplies while staying bit-identical to the scalar
/// reference walk.
///
/// Each full block correlates [`DEMOD_LANES`] symbols at once: per
/// filter tap the four symbols' samples are gathered into fixed-size
/// local lane arrays, which LLVM packs straight into vector registers
/// and turns — together with the `[f64; DEMOD_LANES]` accumulators —
/// into packed mul/add/sub, one SIMD lane per symbol. Lane-parallel
/// packing never reassociates any per-symbol sum, and packed IEEE ops
/// round per-lane identically to their scalar forms, so the energies
/// stay bit-identical to the reference at any vector width. Standalone
/// `#[inline(never)]` function over slice params so noalias holds
/// (PR-5 idiom).
#[inline(never)]
fn energies_fused(samples: &[C64], wr: &[f64], wi: &[f64], e0: &mut [f64], e1: &mut [f64]) {
    let sps = wr.len();
    let n_sym = e0.len();
    debug_assert_eq!(samples.len(), n_sym * sps);
    debug_assert_eq!(e1.len(), n_sym);
    let mut sym = 0;
    while sym + DEMOD_LANES <= n_sym {
        let block = &samples[sym * sps..(sym + DEMOD_LANES) * sps];
        let (b0, rest) = block.split_at(sps);
        let (b1, rest) = rest.split_at(sps);
        let (b2, b3) = rest.split_at(sps);
        let mut c0r = [0.0f64; DEMOD_LANES];
        let mut c0i = [0.0f64; DEMOD_LANES];
        let mut c1r = [0.0f64; DEMOD_LANES];
        let mut c1i = [0.0f64; DEMOD_LANES];
        for i in 0..sps {
            let re = [b0[i].re, b1[i].re, b2[i].re, b3[i].re];
            let im = [b0[i].im, b1[i].im, b2[i].im, b3[i].im];
            let tr = wr[i];
            let ti = wi[i];
            for l in 0..DEMOD_LANES {
                let t1 = re[l] * tr;
                let t2 = im[l] * ti;
                let t3 = re[l] * ti;
                let t4 = im[l] * tr;
                c0r[l] += t1 - t2;
                c0i[l] += t3 + t4;
                c1r[l] += t1 + t2;
                c1i[l] += t4 - t3;
            }
        }
        for l in 0..DEMOD_LANES {
            e0[sym + l] = c0r[l] * c0r[l] + c0i[l] * c0i[l];
            e1[sym + l] = c1r[l] * c1r[l] + c1i[l] * c1i[l];
        }
        sym += DEMOD_LANES;
    }
    while sym < n_sym {
        let block = &samples[sym * sps..(sym + 1) * sps];
        let (mut c0r, mut c0i, mut c1r, mut c1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &s) in block.iter().enumerate() {
            let t1 = s.re * wr[i];
            let t2 = s.im * wi[i];
            let t3 = s.re * wi[i];
            let t4 = s.im * wr[i];
            c0r += t1 - t2;
            c0i += t3 + t4;
            c1r += t1 + t2;
            c1i += t4 - t3;
        }
        e0[sym] = c0r * c0r + c0i * c0i;
        e1[sym] = c1r * c1r + c1i * c1i;
        sym += 1;
    }
}

/// Matched-filter energies against two independent tone tables — the
/// fallback when the tables are not a bitwise conjugate pair. Same lane
/// structure as [`energies_fused`], full complex MAC per tone; each term
/// is written in the exact operand order of the scalar reference so the
/// result is bit-identical.
#[inline(never)]
#[allow(clippy::too_many_arguments)]
fn energies_generic(
    samples: &[C64],
    w0r: &[f64],
    w0i: &[f64],
    w1r: &[f64],
    w1i: &[f64],
    e0: &mut [f64],
    e1: &mut [f64],
) {
    let sps = w0r.len();
    let n_sym = e0.len();
    debug_assert_eq!(samples.len(), n_sym * sps);
    debug_assert_eq!(e1.len(), n_sym);
    let mut sym = 0;
    while sym + DEMOD_LANES <= n_sym {
        let block = &samples[sym * sps..(sym + DEMOD_LANES) * sps];
        let mut c0r = [0.0f64; DEMOD_LANES];
        let mut c0i = [0.0f64; DEMOD_LANES];
        let mut c1r = [0.0f64; DEMOD_LANES];
        let mut c1i = [0.0f64; DEMOD_LANES];
        for i in 0..sps {
            for l in 0..DEMOD_LANES {
                let s = block[l * sps + i];
                c0r[l] += s.re * w0r[i] - s.im * w0i[i];
                c0i[l] += s.re * w0i[i] + s.im * w0r[i];
                c1r[l] += s.re * w1r[i] - s.im * w1i[i];
                c1i[l] += s.re * w1i[i] + s.im * w1r[i];
            }
        }
        for l in 0..DEMOD_LANES {
            e0[sym + l] = c0r[l] * c0r[l] + c0i[l] * c0i[l];
            e1[sym + l] = c1r[l] * c1r[l] + c1i[l] * c1i[l];
        }
        sym += DEMOD_LANES;
    }
    while sym < n_sym {
        let block = &samples[sym * sps..(sym + 1) * sps];
        let (mut c0r, mut c0i, mut c1r, mut c1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
        for (i, &s) in block.iter().enumerate() {
            c0r += s.re * w0r[i] - s.im * w0i[i];
            c0i += s.re * w0i[i] + s.im * w0r[i];
            c1r += s.re * w1r[i] - s.im * w1i[i];
            c1i += s.re * w1i[i] + s.im * w1r[i];
        }
        e0[sym] = c0r * c0r + c0i * c0i;
        e1[sym] = c1r * c1r + c1i * c1i;
        sym += 1;
    }
}

/// Errors from [`FskModem::receive_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FskRxError {
    /// No preamble/sync pattern found in the buffer.
    NoFrame,
    /// Pattern found but the frame failed to parse (e.g. CRC).
    Frame(FrameError),
}

impl std::fmt::Display for FskRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FskRxError::NoFrame => write!(f, "no frame detected"),
            FskRxError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for FskRxError {}

/// The pre-blocked (PR ≤ 7) demodulator, kept verbatim as the
/// bit-exactness reference for the blocked-kernel rewrite: the equivalence
/// property tests drive this and the production modem on identical
/// samples and require identical output, bit for bit.
#[cfg(test)]
pub(crate) mod reference {
    use super::*;

    /// The historical per-symbol scalar matched-filter walk.
    pub struct RefFskDemod {
        params: FskParams,
        mf_zero: Vec<C64>,
        mf_one: Vec<C64>,
    }

    impl RefFskDemod {
        pub fn new(params: FskParams) -> Self {
            let sps = params.samples_per_symbol();
            let make = |f: f64| -> Vec<C64> {
                (0..sps)
                    .map(|n| C64::cis(-2.0 * PI * f * n as f64 / params.fs_hz))
                    .collect()
            };
            RefFskDemod {
                params,
                mf_zero: make(params.tone_hz(0)),
                mf_one: make(params.tone_hz(1)),
            }
        }

        fn symbol_energies(&self, symbol: &[C64]) -> (f64, f64) {
            let mut c0 = C64::ZERO;
            let mut c1 = C64::ZERO;
            for (i, &x) in symbol.iter().enumerate() {
                c0 += x * self.mf_zero[i];
                c1 += x * self.mf_one[i];
            }
            (c0.norm_sq(), c1.norm_sq())
        }

        pub fn demodulate(&self, samples: &[C64]) -> Vec<u8> {
            let sps = self.params.samples_per_symbol();
            samples
                .chunks_exact(sps)
                .map(|sym| {
                    let (e0, e1) = self.symbol_energies(sym);
                    u8::from(e1 > e0)
                })
                .collect()
        }

        pub fn demodulate_soft(&self, samples: &[C64]) -> Vec<f64> {
            let sps = self.params.samples_per_symbol();
            samples
                .chunks_exact(sps)
                .map(|sym| {
                    let (e0, e1) = self.symbol_energies(sym);
                    let total = e0 + e1;
                    if total > 0.0 {
                        (e1 - e0) / total
                    } else {
                        0.0
                    }
                })
                .collect()
        }
    }
}

/// Old-vs-new equivalence: the blocked demodulator must reproduce the
/// scalar reference bit for bit on arbitrary inputs (this is what lets
/// the golden suite stay pinned with no re-capture).
#[cfg(test)]
mod equivalence {
    use super::reference::RefFskDemod;
    use super::*;
    use proptest::prelude::*;

    fn arb_samples(max_len: usize) -> impl Strategy<Value = Vec<C64>> {
        prop::collection::vec(
            (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(re, im)| C64::new(re, im)),
            0..max_len,
        )
    }

    proptest! {
        /// Hard and soft demodulation are bit-identical to the scalar
        /// reference for any sps, deviation, and sample buffer (including
        /// unaligned tails and lane remainders).
        #[test]
        fn demod_equivalence_with_scalar_reference(
            sps in 1usize..32,
            dev_idx in 0usize..4,
            samples in arb_samples(1200),
        ) {
            let deviation = [0.0f64, 12_347.0, 50e3, 149e3][dev_idx];
            let fs = 300e3;
            let params = FskParams { fs_hz: fs, bitrate: fs / sps as f64, deviation_hz: deviation };
            let modem = FskModem::new(params);
            let r = RefFskDemod::new(params);
            prop_assert_eq!(modem.demodulate(&samples), r.demodulate(&samples));
            let soft = modem.demodulate_soft(&samples);
            let soft_ref = r.demodulate_soft(&samples);
            prop_assert_eq!(soft.len(), soft_ref.len());
            for (a, b) in soft.iter().zip(&soft_ref) {
                prop_assert_eq!(a.to_bits(), b.to_bits());
            }
        }

        /// The generic (non-conjugate) kernel matches the reference too —
        /// exercised directly since symmetric-deviation profiles always
        /// take the fused path.
        #[test]
        fn generic_kernel_equivalence(
            sps in 1usize..24,
            n_sym in 0usize..12,
            seed_re in -2.0f64..2.0,
        ) {
            let fs = 300e3;
            let params = FskParams { fs_hz: fs, bitrate: fs / sps as f64, deviation_hz: 50e3 };
            let r = RefFskDemod::new(params);
            let samples: Vec<C64> = (0..n_sym * sps)
                .map(|i| C64::new(seed_re + (i as f64 * 0.37).sin(), (i as f64 * 0.61).cos()))
                .collect();
            let make = |f: f64| -> Vec<C64> {
                (0..sps).map(|n| C64::cis(-2.0 * PI * f * n as f64 / fs)).collect()
            };
            let mf0 = make(params.tone_hz(0));
            let mf1 = make(params.tone_hz(1));
            let (w0r, w0i): (Vec<f64>, Vec<f64>) = mf0.iter().map(|c| (c.re, c.im)).unzip();
            let (w1r, w1i): (Vec<f64>, Vec<f64>) = mf1.iter().map(|c| (c.re, c.im)).unzip();
            let mut e0 = vec![0.0; n_sym];
            let mut e1 = vec![0.0; n_sym];
            energies_generic(&samples, &w0r, &w0i, &w1r, &w1i, &mut e0, &mut e1);
            let want = r.demodulate(&samples);
            let got: Vec<u8> = e0.iter().zip(&e1).map(|(&a, &b)| u8::from(b > a)).collect();
            prop_assert_eq!(got, want);
        }

        /// The blocked fused kernel (transpose + lane loop) is bit-identical
        /// to a plain one-symbol-at-a-time walk of the same fused
        /// expressions — pins the lane/transpose machinery directly at the
        /// kernel level, independent of the modem wrapper.
        #[test]
        fn blocked_fused_kernel_matches_single_symbol_walk(
            sps in 1usize..32,
            n_sym in 0usize..16,
            samples in arb_samples(512),
        ) {
            let fs = 300e3;
            let table: Vec<C64> = (0..sps)
                .map(|n| C64::cis(-2.0 * PI * 50e3 * n as f64 / fs))
                .collect();
            let (wr, wi): (Vec<f64>, Vec<f64>) = table.iter().map(|c| (c.re, c.im)).unzip();
            let n_sym = n_sym.min(samples.len() / sps);
            let aligned = &samples[..n_sym * sps];
            let mut e0 = vec![0.0; n_sym];
            let mut e1 = vec![0.0; n_sym];
            energies_fused(aligned, &wr, &wi, &mut e0, &mut e1);
            for (sym, chunk) in aligned.chunks_exact(sps).enumerate() {
                let (mut c0r, mut c0i, mut c1r, mut c1i) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
                for (i, &s) in chunk.iter().enumerate() {
                    let t1 = s.re * wr[i];
                    let t2 = s.im * wi[i];
                    let t3 = s.re * wi[i];
                    let t4 = s.im * wr[i];
                    c0r += t1 - t2;
                    c0i += t3 + t4;
                    c1r += t1 + t2;
                    c1i += t4 - t3;
                }
                prop_assert_eq!(e0[sym].to_bits(), (c0r * c0r + c0i * c0i).to_bits());
                prop_assert_eq!(e1[sym].to_bits(), (c1r * c1r + c1i * c1i).to_bits());
            }
        }
    }

    /// The mics profile takes the fused path (tables are an exact
    /// conjugate pair), and the fused energies match the reference
    /// bitwise on a real modulated frame.
    #[test]
    fn mics_profile_fused_equivalence() {
        let params = FskParams::mics_default();
        let modem = FskModem::new(params);
        assert!(
            modem.conj_pair,
            "mics tables must be a bitwise conjugate pair"
        );
        let r = RefFskDemod::new(params);
        let mut prbs = crate::bits::Prbs::new(0x2D);
        let bits = prbs.bits(512);
        let sig = modem.modulate(&bits);
        assert_eq!(modem.demodulate(&sig), r.demodulate(&sig));
        for (a, b) in modem
            .demodulate_soft(&sig)
            .iter()
            .zip(&r.demodulate_soft(&sig))
        {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, Prbs};
    use crate::packet::{FrameType, Serial};
    use hb_dsp::complex::mean_power;
    use hb_dsp::noise::white_noise;
    use hb_dsp::special::fsk_noncoherent_ber;
    use hb_dsp::units::ratio_from_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modem() -> FskModem {
        FskModem::new(FskParams::mics_default())
    }

    #[test]
    fn modulated_signal_is_constant_envelope() {
        let m = modem();
        let sig = m.modulate(&[0, 1, 1, 0, 1, 0, 0, 1]);
        for s in &sig {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
        assert!((mean_power(&sig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modulation_is_phase_continuous() {
        let m = modem();
        let sig = m.modulate(&[0, 1, 0, 1]);
        // Max phase step anywhere must equal one of the two tone increments.
        let max_step = 2.0 * PI * 50e3 / 300e3 + 1e-9;
        for w in sig.windows(2) {
            let d = (w[1] * w[0].conj()).arg().abs();
            assert!(d <= max_step, "phase jump {d}");
        }
    }

    #[test]
    fn modulation_tracks_direct_phase_accumulator() {
        // The rotator recurrence must stay within 1e-9 of the exact
        // per-sample `cis(phase)` evaluation over long frames — close
        // enough that detector statistics are unaffected (errors sit
        // ~180 dB below the signal), while being ~5x faster. Bit-exact
        // anchoring now lives in the golden suite, which was re-captured
        // on this engine (see crates/testbed/tests/golden.rs).
        let reference = |params: FskParams, bits: &[u8]| -> Vec<C64> {
            let sps = params.samples_per_symbol();
            let mut out = Vec::with_capacity(bits.len() * sps);
            let mut phase = 0.0f64;
            for &bit in bits {
                let dphi = 2.0 * PI * params.tone_hz(bit) / params.fs_hz;
                for _ in 0..sps {
                    out.push(C64::cis(phase));
                    phase += dphi;
                    if phase > PI {
                        phase -= 2.0 * PI;
                    } else if phase < -PI {
                        phase += 2.0 * PI;
                    }
                }
            }
            out
        };
        let mut prbs = Prbs::new(0x6B);
        let bits = prbs.bits(3000);
        for params in [
            FskParams::mics_default(),
            FskParams {
                fs_hz: 300e3,
                bitrate: 12.5e3,
                deviation_hz: 12_347.0,
            },
        ] {
            let m = FskModem::new(params);
            let fast = m.modulate(&bits);
            let direct = reference(params, &bits);
            assert_eq!(fast.len(), direct.len());
            for (i, (a, b)) in fast.iter().zip(direct.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-9,
                    "sample {i} drifts: {a} vs {b} (deviation {})",
                    params.deviation_hz
                );
            }
        }
    }

    #[test]
    fn modulation_is_deterministic_across_calls() {
        // Same bits -> bit-identical waveform, every time (the oscillator
        // state is per-call, so there is no cross-call leakage).
        let m = modem();
        let mut prbs = Prbs::new(0x3C);
        let bits = prbs.bits(500);
        let a = m.modulate(&bits);
        let b = m.modulate(&bits);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn clean_roundtrip() {
        let m = modem();
        let mut prbs = Prbs::new(0x55);
        let bits = prbs.bits(400);
        let rx = m.demodulate(&m.modulate(&bits));
        assert_eq!(bits, rx);
    }

    #[test]
    fn soft_bits_sign_matches_hard_bits() {
        let m = modem();
        let bits = vec![0, 1, 1, 0, 0, 0, 1, 1, 0, 1];
        let sig = m.modulate(&bits);
        let soft = m.demodulate_soft(&sig);
        for (b, s) in bits.iter().zip(&soft) {
            if *b == 1 {
                assert!(*s > 0.5);
            } else {
                assert!(*s < -0.5);
            }
        }
    }

    #[test]
    fn ber_tracks_theory_in_awgn() {
        // Validate the demodulator against Pb = 0.5 exp(-SNR/2) for
        // noncoherent orthogonal FSK. With matched-filter detection over a
        // symbol, SNR here is Es/N0 measured in the symbol bandwidth.
        let m = modem();
        let mut rng = StdRng::seed_from_u64(1234);
        let mut prbs = Prbs::new(0x1F);
        let bits = prbs.bits(30_000);
        let sig = m.modulate(&bits);
        let sps = m.params().samples_per_symbol() as f64;

        for &snr_db in &[4.0, 8.0, 11.0] {
            // Per-sample noise power for the target Es/N0: signal power is 1,
            // symbol energy is sps; matched filter gain is sps.
            let es_n0 = ratio_from_db(snr_db);
            let noise_power = sps / es_n0;
            let noise = white_noise(&mut rng, sig.len(), noise_power);
            let noisy: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
            let rx = m.demodulate(&noisy);
            let ber = bit_error_rate(&bits, &rx);
            let theory = fsk_noncoherent_ber(es_n0);
            // Within a factor ~2 of theory (tones at +-50kHz with 6 sps are
            // nearly but not exactly orthogonal).
            assert!(
                ber < theory * 2.5 + 1e-4 && ber > theory * 0.3 - 1e-4,
                "snr {snr_db} dB: ber {ber} vs theory {theory}"
            );
        }
    }

    #[test]
    fn heavy_jamming_pushes_ber_to_half() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(99);
        let mut prbs = Prbs::new(0x99);
        let bits = prbs.bits(20_000);
        let sig = m.modulate(&bits);
        // Jam with white noise at +20 dB relative to the signal. The
        // matched filter's 13.8 dB processing gain claws some back, so
        // white jamming at this level leaves BER around 0.44; the shaped
        // jammer (Fig. 5) closes the rest of the gap, which the Fig. 8a
        // experiment demonstrates end to end.
        let noise = white_noise(&mut rng, sig.len(), 100.0);
        let jammed: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let rx = m.demodulate(&jammed);
        let ber = bit_error_rate(&bits, &rx);
        assert!(ber > 0.40, "ber {ber}");
        // And at +30 dB even white jamming reduces the channel to guessing.
        let noise = white_noise(&mut rng, sig.len(), 1000.0);
        let jammed: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let ber = bit_error_rate(&bits, &m.demodulate(&jammed));
        assert!((ber - 0.5).abs() < 0.03, "ber {ber}");
    }

    #[test]
    fn frame_roundtrip_through_modem() {
        let m = modem();
        let f = Frame::new(
            Serial::from_str_padded("VIRTUOSO01"),
            FrameType::Response,
            3,
            vec![0xDE, 0xAD, 0xBE, 0xEF],
        );
        let sig = m.modulate(&f.to_bits());
        let rx = m.receive_frame(&sig).unwrap();
        assert_eq!(rx, f);
    }

    #[test]
    fn frame_found_with_offset_and_noise() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(5);
        let f = Frame::new(
            Serial::from_str_padded("CONCERTO02"),
            FrameType::Command,
            1,
            vec![7; 8],
        );
        let sig = m.modulate(&f.to_bits());
        // Prepend noise-only samples at an awkward offset.
        let mut buf = white_noise(&mut rng, 451, 0.01);
        buf.extend(sig.iter().map(|&s| s + white_noise(&mut rng, 1, 0.01)[0]));
        let rx = m.receive_frame(&buf).unwrap();
        assert_eq!(rx, f);
    }

    #[test]
    fn no_frame_in_pure_noise() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(6);
        let buf = white_noise(&mut rng, 4000, 1.0);
        assert_eq!(m.receive_frame(&buf), Err(FskRxError::NoFrame));
    }

    #[test]
    fn find_frame_start_locates_sample_index() {
        let m = modem();
        let f = Frame::new(Serial([3; 10]), FrameType::Probe, 0, vec![]);
        let sig = m.modulate(&f.to_bits());
        let mut buf = vec![C64::ZERO; 300];
        buf.extend_from_slice(&sig);
        let start = m.find_frame_start(&buf, 2).unwrap();
        // Sub-symbol alignment may settle a few samples early (adjacent
        // phases also decode cleanly over a zero prefix); any alignment
        // within half a symbol of the true start is equivalent.
        let sps = m.params().samples_per_symbol() as i64;
        assert!(
            (start as i64 - 300).abs() <= sps / 2,
            "start {start} not within half a symbol of 300"
        );
        // What matters is that decoding from the reported start succeeds.
        let bits = m.demodulate(&buf[start..]);
        assert_eq!(Frame::from_bits(&bits).unwrap(), f);
    }

    #[test]
    fn durations() {
        let m = modem();
        assert!((m.duration_s(12_500) - 1.0).abs() < 1e-12);
        assert_eq!(m.duration_samples(100), 2400);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn rejects_fractional_sps() {
        let _ = FskModem::new(FskParams {
            fs_hz: 300e3,
            bitrate: 44_100.0,
            deviation_hz: 50e3,
        })
        .params()
        .samples_per_symbol();
    }
}
