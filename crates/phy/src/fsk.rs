//! Binary FSK modem — the air interface of MICS-band IMDs.
//!
//! The tested Medtronic devices use 2-FSK whose received spectrum
//! concentrates around ±50 kHz within a 300 kHz channel (Fig. 4 of the
//! paper). We model this as phase-continuous binary FSK: a `0` bit is a
//! tone at `-deviation`, a `1` bit a tone at `+deviation`, with continuous
//! phase across symbol boundaries (constant envelope, like real FSK
//! transmitter hardware).
//!
//! Demodulation is **noncoherent matched filtering**: per symbol, correlate
//! against both tones and pick the larger magnitude. This is the "optimal
//! FSK decoder \[38\]" the paper equips the eavesdropper with; we verify the
//! implementation against the textbook BER curve `0.5·exp(−SNR/2)` in the
//! tests.

use crate::bits::bit_errors;
use crate::packet::{Frame, FrameError, PREAMBLE, SYNC_WORD};
use hb_dsp::complex::C64;
use std::f64::consts::PI;

/// FSK air-interface parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FskParams {
    /// Complex baseband sample rate, Hz.
    pub fs_hz: f64,
    /// Bit rate, bits/s. `fs_hz / bitrate` must be an integer.
    pub bitrate: f64,
    /// Tone deviation, Hz: bit 0 ↦ −deviation, bit 1 ↦ +deviation.
    pub deviation_hz: f64,
}

impl FskParams {
    /// The profile used throughout the reproduction: 300 kHz channel,
    /// 12.5 kbps telemetry, ±50 kHz tones.
    ///
    /// The tone placement matches Fig. 4's energy concentration at ±50 kHz.
    /// The bit rate is chosen so that (a) the longest 256-bit frame lasts
    /// ~21 ms — the paper's max packet duration P — and (b) the
    /// matched-filter processing gain (300 kHz / 12.5 kbps ≈ 13.8 dB)
    /// makes the paper's measured 32 dB antenna cancellation sufficient
    /// for its reported 0.2% packet loss at +20 dB jamming (§10.1(b)).
    pub fn mics_default() -> Self {
        FskParams {
            fs_hz: 300e3,
            bitrate: 12.5e3,
            deviation_hz: 50e3,
        }
    }

    /// Samples per symbol (integer by construction).
    pub fn samples_per_symbol(&self) -> usize {
        let sps = self.fs_hz / self.bitrate;
        assert!(
            (sps - sps.round()).abs() < 1e-9 && sps >= 1.0,
            "fs/bitrate must be a positive integer, got {sps}"
        );
        sps.round() as usize
    }

    /// Tone frequency for a bit value.
    pub fn tone_hz(&self, bit: u8) -> f64 {
        if bit == 0 {
            -self.deviation_hz
        } else {
            self.deviation_hz
        }
    }
}

/// Phase-continuous binary FSK modulator/demodulator.
///
/// Performance notes: neither direction pays trig per sample.
/// Demodulation's per-tone correlation phasors are precomputed one symbol
/// deep at construction. Modulation is blocked phase recurrence
/// ([`hb_dsp::osc::ToneBlock`]): per symbol, one vectorizable pass of
/// independent multiplies against a precomputed per-bit phasor table,
/// with the base phasor advancing once per symbol and renormalizing
/// every [`hb_dsp::osc::RENORM_INTERVAL`] symbols — ~1.3 ns a sample
/// versus ~10 ns for the historical `cis(phase)` accumulator. The
/// waveform differs from that accumulator only at the ulp level (phase
/// error stays below 1e-9 over million-sample frames, pinned by tests);
/// the golden determinism suite was deliberately re-captured on this
/// engine (see `crates/testbed/tests/golden.rs` for the re-pin policy).
#[derive(Debug, Clone)]
pub struct FskModem {
    params: FskParams,
    /// Per-sample phasor tables for the two tones (one symbol long),
    /// conjugated, for the matched-filter correlations.
    mf_zero: Vec<C64>,
    mf_one: Vec<C64>,
    /// One symbol-long blocked tone table per bit value: modulation
    /// multiplies a running base phasor against these, so it never calls
    /// `cis` and carries no per-sample recurrence chain.
    tone: [hb_dsp::osc::ToneBlock; 2],
}

impl FskModem {
    /// Creates a modem for the given parameters.
    pub fn new(params: FskParams) -> Self {
        let sps = params.samples_per_symbol();
        let make = |f: f64| -> Vec<C64> {
            (0..sps)
                .map(|n| C64::cis(-2.0 * PI * f * n as f64 / params.fs_hz))
                .collect()
        };
        let tone_for = |bit: u8| {
            hb_dsp::osc::ToneBlock::new(2.0 * PI * params.tone_hz(bit) / params.fs_hz, sps)
        };
        FskModem {
            params,
            mf_zero: make(params.tone_hz(0)),
            mf_one: make(params.tone_hz(1)),
            tone: [tone_for(0), tone_for(1)],
        }
    }

    /// Air-interface parameters.
    pub fn params(&self) -> &FskParams {
        &self.params
    }

    /// Modulates bits into unit-amplitude, phase-continuous baseband
    /// samples (`bits.len() * samples_per_symbol` samples).
    ///
    /// Tone synthesis is blocked phase recurrence
    /// ([`hb_dsp::osc::ToneBlock`]): each symbol is one vectorizable pass
    /// of independent multiplies `base · e^{jiΔφ}` against the per-bit
    /// table, and the base phasor advances once per symbol (phase stays
    /// continuous across symbol boundaries by construction), with a
    /// magnitude renormalization every
    /// [`hb_dsp::osc::RENORM_INTERVAL`] symbols.
    pub fn modulate(&self, bits: &[u8]) -> Vec<C64> {
        let sps = self.params.samples_per_symbol();
        let mut out = vec![C64::ZERO; bits.len() * sps];
        let mut base = C64::ONE;
        for (i, (chunk, &bit)) in out.chunks_mut(sps).zip(bits.iter()).enumerate() {
            base = self.tone[usize::from(bit != 0)].emit(base, chunk);
            if i as u32 % hb_dsp::osc::RENORM_INTERVAL == hb_dsp::osc::RENORM_INTERVAL - 1 {
                base = hb_dsp::osc::renormalize_phasor(base);
            }
        }
        out
    }

    /// Per-symbol noncoherent detection statistics: `(e0, e1)` — squared
    /// magnitudes of the correlations against the 0-tone and 1-tone.
    fn symbol_energies(&self, symbol: &[C64]) -> (f64, f64) {
        let mut c0 = C64::ZERO;
        let mut c1 = C64::ZERO;
        for (i, &x) in symbol.iter().enumerate() {
            c0 += x * self.mf_zero[i];
            c1 += x * self.mf_one[i];
        }
        (c0.norm_sq(), c1.norm_sq())
    }

    /// Demodulates symbol-aligned samples into hard bits. Trailing partial
    /// symbols are ignored.
    pub fn demodulate(&self, samples: &[C64]) -> Vec<u8> {
        let sps = self.params.samples_per_symbol();
        samples
            .chunks_exact(sps)
            .map(|sym| {
                let (e0, e1) = self.symbol_energies(sym);
                u8::from(e1 > e0)
            })
            .collect()
    }

    /// Soft demodulation: per symbol, returns `e1 − e0` normalized by the
    /// total, in `[-1, 1]` (positive favours bit 1).
    pub fn demodulate_soft(&self, samples: &[C64]) -> Vec<f64> {
        let sps = self.params.samples_per_symbol();
        samples
            .chunks_exact(sps)
            .map(|sym| {
                let (e0, e1) = self.symbol_energies(sym);
                let total = e0 + e1;
                if total > 0.0 {
                    (e1 - e0) / total
                } else {
                    0.0
                }
            })
            .collect()
    }

    /// Searches for a frame start within `samples` by trying every
    /// sub-symbol alignment and scanning the demodulated bit stream for the
    /// preamble + sync pattern (up to `max_pattern_errors` bit errors
    /// allowed).
    ///
    /// Returns the *sample* index where the frame's first preamble symbol
    /// begins.
    pub fn find_frame_start(&self, samples: &[C64], max_pattern_errors: usize) -> Option<usize> {
        let sps = self.params.samples_per_symbol();
        let mut pattern = Vec::new();
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));

        let mut best: Option<(usize, usize)> = None; // (errors, sample index)
        for phase in 0..sps.min(samples.len()) {
            let bits = self.demodulate(&samples[phase..]);
            if bits.len() < pattern.len() {
                continue;
            }
            for start in 0..=(bits.len() - pattern.len()) {
                let errs = bit_errors(&bits[start..start + pattern.len()], &pattern);
                if errs <= max_pattern_errors {
                    let sample_idx = phase + start * sps;
                    match best {
                        Some((e, s)) if (errs, sample_idx) >= (e, s) => {}
                        _ => best = Some((errs, sample_idx)),
                    }
                    // Earliest adequate match at this phase is enough.
                    break;
                }
            }
        }
        best.map(|(_, s)| s)
    }

    /// Attempts to receive a complete frame from a sample buffer: locates
    /// the preamble/sync, demodulates from there, and parses.
    pub fn receive_frame(&self, samples: &[C64]) -> Result<Frame, FskRxError> {
        let start = self
            .find_frame_start(samples, 4)
            .ok_or(FskRxError::NoFrame)?;
        let bits = self.demodulate(&samples[start..]);
        Frame::from_bits(&bits).map_err(FskRxError::Frame)
    }

    /// On-air duration of `n_bits` in seconds.
    pub fn duration_s(&self, n_bits: usize) -> f64 {
        n_bits as f64 / self.params.bitrate
    }

    /// On-air duration of `n_bits` in samples.
    pub fn duration_samples(&self, n_bits: usize) -> usize {
        n_bits * self.params.samples_per_symbol()
    }
}

/// Errors from [`FskModem::receive_frame`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FskRxError {
    /// No preamble/sync pattern found in the buffer.
    NoFrame,
    /// Pattern found but the frame failed to parse (e.g. CRC).
    Frame(FrameError),
}

impl std::fmt::Display for FskRxError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FskRxError::NoFrame => write!(f, "no frame detected"),
            FskRxError::Frame(e) => write!(f, "frame error: {e}"),
        }
    }
}

impl std::error::Error for FskRxError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, Prbs};
    use crate::packet::{FrameType, Serial};
    use hb_dsp::complex::mean_power;
    use hb_dsp::noise::white_noise;
    use hb_dsp::special::fsk_noncoherent_ber;
    use hb_dsp::units::ratio_from_db;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modem() -> FskModem {
        FskModem::new(FskParams::mics_default())
    }

    #[test]
    fn modulated_signal_is_constant_envelope() {
        let m = modem();
        let sig = m.modulate(&[0, 1, 1, 0, 1, 0, 0, 1]);
        for s in &sig {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
        assert!((mean_power(&sig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn modulation_is_phase_continuous() {
        let m = modem();
        let sig = m.modulate(&[0, 1, 0, 1]);
        // Max phase step anywhere must equal one of the two tone increments.
        let max_step = 2.0 * PI * 50e3 / 300e3 + 1e-9;
        for w in sig.windows(2) {
            let d = (w[1] * w[0].conj()).arg().abs();
            assert!(d <= max_step, "phase jump {d}");
        }
    }

    #[test]
    fn modulation_tracks_direct_phase_accumulator() {
        // The rotator recurrence must stay within 1e-9 of the exact
        // per-sample `cis(phase)` evaluation over long frames — close
        // enough that detector statistics are unaffected (errors sit
        // ~180 dB below the signal), while being ~5x faster. Bit-exact
        // anchoring now lives in the golden suite, which was re-captured
        // on this engine (see crates/testbed/tests/golden.rs).
        let reference = |params: FskParams, bits: &[u8]| -> Vec<C64> {
            let sps = params.samples_per_symbol();
            let mut out = Vec::with_capacity(bits.len() * sps);
            let mut phase = 0.0f64;
            for &bit in bits {
                let dphi = 2.0 * PI * params.tone_hz(bit) / params.fs_hz;
                for _ in 0..sps {
                    out.push(C64::cis(phase));
                    phase += dphi;
                    if phase > PI {
                        phase -= 2.0 * PI;
                    } else if phase < -PI {
                        phase += 2.0 * PI;
                    }
                }
            }
            out
        };
        let mut prbs = Prbs::new(0x6B);
        let bits = prbs.bits(3000);
        for params in [
            FskParams::mics_default(),
            FskParams {
                fs_hz: 300e3,
                bitrate: 12.5e3,
                deviation_hz: 12_347.0,
            },
        ] {
            let m = FskModem::new(params);
            let fast = m.modulate(&bits);
            let direct = reference(params, &bits);
            assert_eq!(fast.len(), direct.len());
            for (i, (a, b)) in fast.iter().zip(direct.iter()).enumerate() {
                assert!(
                    (*a - *b).abs() < 1e-9,
                    "sample {i} drifts: {a} vs {b} (deviation {})",
                    params.deviation_hz
                );
            }
        }
    }

    #[test]
    fn modulation_is_deterministic_across_calls() {
        // Same bits -> bit-identical waveform, every time (the oscillator
        // state is per-call, so there is no cross-call leakage).
        let m = modem();
        let mut prbs = Prbs::new(0x3C);
        let bits = prbs.bits(500);
        let a = m.modulate(&bits);
        let b = m.modulate(&bits);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.re.to_bits(), y.re.to_bits());
            assert_eq!(x.im.to_bits(), y.im.to_bits());
        }
    }

    #[test]
    fn clean_roundtrip() {
        let m = modem();
        let mut prbs = Prbs::new(0x55);
        let bits = prbs.bits(400);
        let rx = m.demodulate(&m.modulate(&bits));
        assert_eq!(bits, rx);
    }

    #[test]
    fn soft_bits_sign_matches_hard_bits() {
        let m = modem();
        let bits = vec![0, 1, 1, 0, 0, 0, 1, 1, 0, 1];
        let sig = m.modulate(&bits);
        let soft = m.demodulate_soft(&sig);
        for (b, s) in bits.iter().zip(&soft) {
            if *b == 1 {
                assert!(*s > 0.5);
            } else {
                assert!(*s < -0.5);
            }
        }
    }

    #[test]
    fn ber_tracks_theory_in_awgn() {
        // Validate the demodulator against Pb = 0.5 exp(-SNR/2) for
        // noncoherent orthogonal FSK. With matched-filter detection over a
        // symbol, SNR here is Es/N0 measured in the symbol bandwidth.
        let m = modem();
        let mut rng = StdRng::seed_from_u64(1234);
        let mut prbs = Prbs::new(0x1F);
        let bits = prbs.bits(30_000);
        let sig = m.modulate(&bits);
        let sps = m.params().samples_per_symbol() as f64;

        for &snr_db in &[4.0, 8.0, 11.0] {
            // Per-sample noise power for the target Es/N0: signal power is 1,
            // symbol energy is sps; matched filter gain is sps.
            let es_n0 = ratio_from_db(snr_db);
            let noise_power = sps / es_n0;
            let noise = white_noise(&mut rng, sig.len(), noise_power);
            let noisy: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
            let rx = m.demodulate(&noisy);
            let ber = bit_error_rate(&bits, &rx);
            let theory = fsk_noncoherent_ber(es_n0);
            // Within a factor ~2 of theory (tones at +-50kHz with 6 sps are
            // nearly but not exactly orthogonal).
            assert!(
                ber < theory * 2.5 + 1e-4 && ber > theory * 0.3 - 1e-4,
                "snr {snr_db} dB: ber {ber} vs theory {theory}"
            );
        }
    }

    #[test]
    fn heavy_jamming_pushes_ber_to_half() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(99);
        let mut prbs = Prbs::new(0x99);
        let bits = prbs.bits(20_000);
        let sig = m.modulate(&bits);
        // Jam with white noise at +20 dB relative to the signal. The
        // matched filter's 13.8 dB processing gain claws some back, so
        // white jamming at this level leaves BER around 0.44; the shaped
        // jammer (Fig. 5) closes the rest of the gap, which the Fig. 8a
        // experiment demonstrates end to end.
        let noise = white_noise(&mut rng, sig.len(), 100.0);
        let jammed: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let rx = m.demodulate(&jammed);
        let ber = bit_error_rate(&bits, &rx);
        assert!(ber > 0.40, "ber {ber}");
        // And at +30 dB even white jamming reduces the channel to guessing.
        let noise = white_noise(&mut rng, sig.len(), 1000.0);
        let jammed: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let ber = bit_error_rate(&bits, &m.demodulate(&jammed));
        assert!((ber - 0.5).abs() < 0.03, "ber {ber}");
    }

    #[test]
    fn frame_roundtrip_through_modem() {
        let m = modem();
        let f = Frame::new(
            Serial::from_str_padded("VIRTUOSO01"),
            FrameType::Response,
            3,
            vec![0xDE, 0xAD, 0xBE, 0xEF],
        );
        let sig = m.modulate(&f.to_bits());
        let rx = m.receive_frame(&sig).unwrap();
        assert_eq!(rx, f);
    }

    #[test]
    fn frame_found_with_offset_and_noise() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(5);
        let f = Frame::new(
            Serial::from_str_padded("CONCERTO02"),
            FrameType::Command,
            1,
            vec![7; 8],
        );
        let sig = m.modulate(&f.to_bits());
        // Prepend noise-only samples at an awkward offset.
        let mut buf = white_noise(&mut rng, 451, 0.01);
        buf.extend(sig.iter().map(|&s| s + white_noise(&mut rng, 1, 0.01)[0]));
        let rx = m.receive_frame(&buf).unwrap();
        assert_eq!(rx, f);
    }

    #[test]
    fn no_frame_in_pure_noise() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(6);
        let buf = white_noise(&mut rng, 4000, 1.0);
        assert_eq!(m.receive_frame(&buf), Err(FskRxError::NoFrame));
    }

    #[test]
    fn find_frame_start_locates_sample_index() {
        let m = modem();
        let f = Frame::new(Serial([3; 10]), FrameType::Probe, 0, vec![]);
        let sig = m.modulate(&f.to_bits());
        let mut buf = vec![C64::ZERO; 300];
        buf.extend_from_slice(&sig);
        let start = m.find_frame_start(&buf, 2).unwrap();
        // Sub-symbol alignment may settle a few samples early (adjacent
        // phases also decode cleanly over a zero prefix); any alignment
        // within half a symbol of the true start is equivalent.
        let sps = m.params().samples_per_symbol() as i64;
        assert!(
            (start as i64 - 300).abs() <= sps / 2,
            "start {start} not within half a symbol of 300"
        );
        // What matters is that decoding from the reported start succeeds.
        let bits = m.demodulate(&buf[start..]);
        assert_eq!(Frame::from_bits(&bits).unwrap(), f);
    }

    #[test]
    fn durations() {
        let m = modem();
        assert!((m.duration_s(12_500) - 1.0).abs() < 1e-12);
        assert_eq!(m.duration_samples(100), 2400);
    }

    #[test]
    #[should_panic(expected = "positive integer")]
    fn rejects_fractional_sps() {
        let _ = FskModem::new(FskParams {
            fs_hz: 300e3,
            bitrate: 44_100.0,
            deviation_hz: 50e3,
        })
        .params()
        .samples_per_symbol();
    }
}
