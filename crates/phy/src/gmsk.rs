//! GMSK modem, modeling the meteorological cross-traffic of §11.
//!
//! The paper's coexistence experiment uses cross-traffic "modeled after the
//! transmissions of meteorological devices, in particular a Vaisala digital
//! radiosonde RS92-AGP that uses GMSK modulation." Radiosondes are the
//! *primary* users of the 402–405 MHz band; the shield must never jam them.
//!
//! GMSK = MSK (modulation index 0.5) with a Gaussian pre-modulation filter
//! of bandwidth-time product `bt`. Demodulation here is the classic
//! 1-bit differential phase detector, adequate for the moderate-SNR
//! coexistence scenarios we simulate.

use hb_dsp::complex::C64;
use std::f64::consts::PI;

/// GMSK modem parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GmskParams {
    /// Sample rate, Hz.
    pub fs_hz: f64,
    /// Bit rate, bits/s (`fs_hz / bitrate` must be an integer).
    pub bitrate: f64,
    /// Gaussian filter bandwidth-time product (RS92 uses ≈0.5).
    pub bt: f64,
}

impl GmskParams {
    /// Profile approximating the Vaisala RS92 radiosonde downlink: GMSK
    /// with BT = 0.5 at ~4.8 kbps. We round the bit rate to 5 kbps so the
    /// symbol period is an integer number of samples at the 300 kHz channel
    /// rate (60 samples/symbol); the 4% rate difference is immaterial to
    /// the coexistence experiment.
    pub fn radiosonde_rs92() -> Self {
        GmskParams {
            fs_hz: 300e3,
            bitrate: 5000.0,
            bt: 0.5,
        }
    }

    /// Samples per symbol.
    pub fn samples_per_symbol(&self) -> usize {
        let sps = self.fs_hz / self.bitrate;
        assert!(
            (sps - sps.round()).abs() < 1e-6 && sps >= 2.0,
            "fs/bitrate must be an integer >= 2, got {sps}"
        );
        sps.round() as usize
    }
}

/// GMSK modulator/demodulator.
#[derive(Debug, Clone)]
pub struct GmskModem {
    params: GmskParams,
    /// Gaussian pulse, sampled at fs, truncated to `span` symbols,
    /// normalized to unit area.
    pulse: Vec<f64>,
}

impl GmskModem {
    /// Creates a modem; the Gaussian pulse spans 3 symbols.
    pub fn new(params: GmskParams) -> Self {
        let sps = params.samples_per_symbol();
        let span = 3usize;
        let n = span * sps;
        // g(t) ∝ exp(-2 pi^2 (bt)^2 t^2 / ln 2), t in symbol units.
        let alpha = 2.0 * PI * PI * params.bt * params.bt / (2.0f64).ln();
        let mid = (n as f64 - 1.0) / 2.0;
        let mut pulse: Vec<f64> = (0..n)
            .map(|i| {
                let t = (i as f64 - mid) / sps as f64;
                (-alpha * t * t).exp()
            })
            .collect();
        let sum: f64 = pulse.iter().sum();
        for p in pulse.iter_mut() {
            *p /= sum;
        }
        GmskModem { params, pulse }
    }

    /// Modem parameters.
    pub fn params(&self) -> &GmskParams {
        &self.params
    }

    /// Modulates bits into a unit-amplitude GMSK waveform.
    ///
    /// The Gaussian pulse spans 3 symbols, so the waveform includes a
    /// 2-symbol tail beyond `bits.len()` symbol periods; total length is
    /// [`GmskModem::duration_samples`]`(bits.len())`.
    pub fn modulate(&self, bits: &[u8]) -> Vec<C64> {
        let sps = self.params.samples_per_symbol();
        // NRZ impulse train at symbol instants, convolved with the pulse.
        let n_out = bits.len() * sps + (self.pulse.len() - sps);
        let mut freq = vec![0.0f64; n_out];
        for (k, &b) in bits.iter().enumerate() {
            let v = if b == 1 { 1.0 } else { -1.0 };
            for (j, &p) in self.pulse.iter().enumerate() {
                freq[k * sps + j] += v * p;
            }
        }
        // Integrate frequency to phase; pi/2 phase per symbol at full scale
        // (MSK modulation index 0.5).
        let mut phase = 0.0f64;
        let mut out = Vec::with_capacity(n_out);
        for f in &freq {
            phase += PI / 2.0 * f;
            out.push(C64::cis(phase));
        }
        out
    }

    /// Differential demodulation of a waveform produced by
    /// [`GmskModem::modulate`] (aligned at its first sample).
    ///
    /// Skips the pulse group delay (one symbol), then accumulates the phase
    /// advance over each symbol period and decides its sign. The Gaussian
    /// pulse spreads energy into neighbour symbols (controlled ISI), so
    /// there is a small irreducible penalty versus ideal MSK — acceptable
    /// for the coexistence model.
    pub fn demodulate(&self, samples: &[C64]) -> Vec<u8> {
        let sps = self.params.samples_per_symbol();
        // Group delay: the pulse for symbol k is centered at
        // k*sps + pulse_len/2; aligning decision windows on those centers
        // means skipping (pulse_len - sps)/2 ≈ one symbol at the start.
        let delay = (self.pulse.len() - sps) / 2;
        if samples.len() <= delay {
            return Vec::new();
        }
        samples[delay..]
            .chunks_exact(sps)
            .map(|sym| {
                let mut adv = 0.0;
                for w in sym.windows(2) {
                    adv += (w[1] * w[0].conj()).arg();
                }
                u8::from(adv > 0.0)
            })
            .collect()
    }

    /// Waveform length in samples for `n_bits` modulated bits (includes the
    /// 2-symbol Gaussian pulse tail).
    pub fn duration_samples(&self, n_bits: usize) -> usize {
        let sps = self.params.samples_per_symbol();
        n_bits * sps + (self.pulse.len() - sps)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, Prbs};
    use hb_dsp::complex::mean_power;
    use hb_dsp::noise::white_noise;
    use hb_dsp::spectrum::welch_psd;
    use hb_dsp::window::Window;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modem() -> GmskModem {
        GmskModem::new(GmskParams {
            fs_hz: 300e3,
            bitrate: 30e3, // higher rate than RS92 to keep tests fast
            bt: 0.5,
        })
    }

    #[test]
    fn constant_envelope() {
        let m = modem();
        let sig = m.modulate(&[1, 0, 1, 1, 0, 0, 1, 0]);
        for s in &sig {
            assert!((s.abs() - 1.0).abs() < 1e-12);
        }
        assert!((mean_power(&sig) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn clean_roundtrip_interior_bits() {
        let m = modem();
        let mut prbs = Prbs::new(0x21);
        let bits = prbs.bits(300);
        let rx = m.demodulate(&m.modulate(&bits));
        // Ignore the pulse-span edge bits; interior must be error-free.
        let ber = bit_error_rate(&bits[2..bits.len() - 2], &rx[2..bits.len() - 2]);
        assert!(ber < 0.01, "ber {ber}");
    }

    #[test]
    fn works_at_moderate_snr() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(31);
        let mut prbs = Prbs::new(0x0F);
        let bits = prbs.bits(2000);
        let sig = m.modulate(&bits);
        let noise = white_noise(&mut rng, sig.len(), 0.05); // 13 dB SNR
        let noisy: Vec<C64> = sig.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let rx = m.demodulate(&noisy);
        let ber = bit_error_rate(&bits[2..], &rx[2..]);
        assert!(ber < 0.02, "ber {ber}");
    }

    #[test]
    fn spectrum_is_narrower_than_fsk() {
        // GMSK at 30 kbps should keep most energy within +-30 kHz, unlike
        // the IMD's +-50 kHz FSK tones. This spectral difference is one cue
        // that cross-traffic is not IMD traffic.
        let m = modem();
        let mut prbs = Prbs::new(0x3D);
        let sig = m.modulate(&prbs.bits(2000));
        let psd = welch_psd(&sig, 256, Window::Hann, m.params().fs_hz);
        assert!(psd.power_fraction_near(0.0, 30e3) > 0.95);
    }

    #[test]
    fn radiosonde_profile_valid() {
        let p = GmskParams::radiosonde_rs92();
        assert_eq!(p.samples_per_symbol(), 60);
        // The modem constructs without panicking and produces a waveform
        // of 3 symbols plus the 2-symbol pulse tail.
        let m = GmskModem::new(p);
        assert_eq!(m.modulate(&[1, 0, 1]).len(), m.duration_samples(3));
        assert_eq!(m.duration_samples(3), 300);
    }

    #[test]
    fn gaussian_pulse_is_normalized_and_symmetric() {
        let m = modem();
        let sum: f64 = m.pulse.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for i in 0..m.pulse.len() / 2 {
            assert!((m.pulse[i] - m.pulse[m.pulse.len() - 1 - i]).abs() < 1e-9);
        }
    }
}
