//! # hb-phy — physical-layer modems and framing
//!
//! The air interfaces of the *heartbeats* workspace:
//!
//! * [`fsk`] — phase-continuous binary FSK with noncoherent matched-filter
//!   demodulation: the IMD air interface (Fig. 4 of the paper) and the
//!   eavesdropper's "optimal FSK decoder".
//! * [`gmsk`] — GMSK modem modeling the Vaisala radiosonde cross-traffic of
//!   the coexistence experiment (§11).
//! * [`ofdm`] — OFDM substrate for the wideband antidote extension (§5).
//! * [`packet`] — the IMD air-frame format: preamble, sync, 10-byte serial,
//!   CRC-16 (the checksum whose failure makes jammed commands harmless).
//! * [`matcher`] — the sliding `Sid` identifying-sequence matcher with
//!   `bthresh` tolerance (§7's active-protection trigger).
//! * [`stream`] — continuous block-at-a-time detection: the streaming
//!   frame detector and Sid monitor, both riding the blocked multi-phase
//!   correlator in `hb_dsp::correlator`.
//! * [`rssi`] — RSSI estimation and energy-based carrier sensing
//!   (listen-before-talk, Pthresh alarm measurements).
//! * [`bits`], [`crc`] — bit manipulation and checksums.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod crc;
pub mod fsk;
pub mod gmsk;
pub mod matcher;
pub mod ofdm;
pub mod packet;
pub mod rssi;
pub mod stream;

pub use fsk::{FskModem, FskParams};
pub use matcher::SidMatcher;
pub use packet::{identifying_sequence, Frame, FrameError, FrameType, Serial};
pub use stream::{DetectorEvent, SidDetection, SidMonitor, StreamingDetector};
