//! Sliding identifying-sequence matcher — the detection primitive of the
//! shield's active protection (§7 of the paper).
//!
//! > "For each newly decoded bit, the shield checks the last m decoded bits
//! > against the identifying sequence Sid. If the two sequences differ by
//! > fewer than a threshold number of bits, bthresh, the shield jams the
//! > signal until the signal stops."
//!
//! [`SidMatcher`] implements exactly that: push one decoded bit at a time;
//! it reports a match whenever the Hamming distance between the last
//! `m` bits and `Sid` is at or below `bthresh`.

/// Incremental matcher for an m-bit identifying sequence (m ≤ 128) with a
/// bit-error tolerance.
///
/// The window and pattern are packed into `u128`s, so each push is a
/// shift + xor + popcount — O(1) per bit instead of the O(m) rescan the
/// first implementation used. The shield runs one matcher per sub-symbol
/// phase per monitored channel, so this sits squarely on the hot path.
#[derive(Debug, Clone)]
pub struct SidMatcher {
    /// Pattern length `m` (the original bit vector is not retained).
    len: usize,
    /// The pattern packed MSB-first: `pattern[0]` (the oldest bit of a
    /// matching window) lives at bit `m-1`.
    pattern_bits: u128,
    /// Low `m` bits set.
    mask: u128,
    bthresh: usize,
    /// The last `m` bits, packed like `pattern_bits`.
    window: u128,
    /// Bits pushed so far (matching is disabled until the window fills).
    pushed: usize,
    /// Current Hamming distance between window and pattern.
    distance: usize,
}

impl SidMatcher {
    /// Creates a matcher for `pattern` tolerating up to `bthresh` bit
    /// differences (inclusive).
    ///
    /// # Panics
    /// Panics if the pattern is empty, longer than 128 bits, or contains
    /// non-bit values.
    pub fn new(pattern: Vec<u8>, bthresh: usize) -> Self {
        assert!(!pattern.is_empty(), "pattern must not be empty");
        assert!(
            pattern.len() <= 128,
            "pattern must fit the 128-bit matcher window"
        );
        assert!(
            pattern.iter().all(|&b| b <= 1),
            "pattern must contain only bits"
        );
        // Start with an all-zero window; the initial distance is the number
        // of ones in the pattern. Matching is gated on `pushed` anyway.
        let m = pattern.len();
        let pattern_bits = pattern
            .iter()
            .fold(0u128, |acc, &b| (acc << 1) | u128::from(b));
        let mask = if m == 128 {
            u128::MAX
        } else {
            (1u128 << m) - 1
        };
        SidMatcher {
            len: m,
            pattern_bits,
            mask,
            bthresh,
            window: 0,
            pushed: 0,
            distance: pattern_bits.count_ones() as usize,
        }
    }

    /// Pattern length `m`.
    pub fn pattern_len(&self) -> usize {
        self.len
    }

    /// The configured tolerance.
    pub fn bthresh(&self) -> usize {
        self.bthresh
    }

    /// Pushes one decoded bit; returns `true` if the last `m` bits now
    /// match the pattern within `bthresh` errors.
    pub fn push(&mut self, bit: u8) -> bool {
        debug_assert!(bit <= 1);
        self.window = ((self.window << 1) | u128::from(bit)) & self.mask;
        self.pushed += 1;
        if self.pushed < self.len {
            return false;
        }
        let distance = (self.window ^ self.pattern_bits).count_ones() as usize;
        self.distance = distance;
        distance <= self.bthresh
    }

    /// Pushes a run of bits; returns the index (within `bits`) of the first
    /// bit that completed a match, if any.
    pub fn push_all(&mut self, bits: &[u8]) -> Option<usize> {
        for (i, &b) in bits.iter().enumerate() {
            if self.push(b) {
                return Some(i);
            }
        }
        None
    }

    /// Hamming distance of the current window against the pattern
    /// (`pattern_len()` until the window has filled).
    pub fn current_distance(&self) -> usize {
        if self.pushed < self.len {
            self.len
        } else {
            self.distance
        }
    }

    /// Resets the matcher to its initial (empty-window) state.
    pub fn reset(&mut self) {
        self.window = 0;
        self.pushed = 0;
        self.distance = self.pattern_bits.count_ones() as usize;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{identifying_sequence, Serial};

    #[test]
    fn exact_match_fires_at_last_bit() {
        let pattern = vec![1, 0, 1, 1, 0];
        let mut m = SidMatcher::new(pattern.clone(), 0);
        let mut fired_at = None;
        for (i, &b) in pattern.iter().enumerate() {
            if m.push(b) {
                fired_at = Some(i);
            }
        }
        assert_eq!(fired_at, Some(4));
    }

    #[test]
    fn no_match_before_window_fills() {
        let mut m = SidMatcher::new(vec![0, 0, 0, 0], 4);
        // Tolerance equals length, so anything matches — but only once the
        // window has filled.
        assert!(!m.push(1));
        assert!(!m.push(1));
        assert!(!m.push(1));
        assert!(m.push(1));
    }

    #[test]
    fn tolerates_up_to_bthresh_errors() {
        let sid = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
        let mut corrupted = sid.clone();
        corrupted[5] ^= 1;
        corrupted[77] ^= 1;
        corrupted[120] ^= 1;

        let mut m = SidMatcher::new(sid.clone(), 4);
        assert!(m.push_all(&corrupted).is_some(), "3 errors <= bthresh 4");

        let mut m2 = SidMatcher::new(sid.clone(), 2);
        assert!(m2.push_all(&corrupted).is_none(), "3 errors > bthresh 2");
    }

    #[test]
    fn match_found_mid_stream() {
        let sid = identifying_sequence(Serial::from_str_padded("CONCERTO02"));
        let mut stream = vec![0u8, 1, 1, 0, 1, 0, 0]; // leading junk
        stream.extend_from_slice(&sid);
        stream.extend_from_slice(&[1, 1, 0]); // trailing payload bits
        let mut m = SidMatcher::new(sid.clone(), 0);
        let hit = m.push_all(&stream);
        assert_eq!(hit, Some(7 + sid.len() - 1));
    }

    #[test]
    fn different_serial_does_not_match() {
        let sid_a = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
        let sid_b = identifying_sequence(Serial::from_str_padded("CONCERTO02"));
        let mut m = SidMatcher::new(sid_a, 4);
        assert!(
            m.push_all(&sid_b).is_none(),
            "another device's Sid must not trigger"
        );
    }

    #[test]
    fn random_bits_rarely_match_128_bit_sid() {
        // With m=128 and bthresh=4 the false-positive probability per
        // window is astronomically small; verify no hit over a long
        // pseudo-random stream.
        let sid = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
        let mut m = SidMatcher::new(sid, 4);
        let mut prbs = crate::bits::Prbs::new(0x1EF);
        let stream = prbs.bits(100_000);
        assert!(m.push_all(&stream).is_none());
    }

    #[test]
    fn reset_requires_refill() {
        let mut m = SidMatcher::new(vec![1, 1], 0);
        m.push(1);
        assert!(m.push(1));
        m.reset();
        assert!(!m.push(1), "window must refill after reset");
        assert!(m.push(1));
    }

    #[test]
    fn current_distance_tracks() {
        let mut m = SidMatcher::new(vec![1, 0, 1], 0);
        assert_eq!(m.current_distance(), 3); // unfilled sentinel
        m.push(1);
        m.push(0);
        m.push(1);
        assert_eq!(m.current_distance(), 0);
        m.push(1); // window now 0,1,1 vs 1,0,1 -> distance 2
        assert_eq!(m.current_distance(), 2);
    }

    #[test]
    #[should_panic(expected = "must not be empty")]
    fn empty_pattern_rejected() {
        let _ = SidMatcher::new(vec![], 0);
    }
}
