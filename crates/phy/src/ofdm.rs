//! OFDM modem — the wideband extension of the shield's antidote scheme.
//!
//! §5 of the paper ("Wideband channels") notes that the antidote
//! construction extends to multipath channels by working per-OFDM-subcarrier:
//! *"such channels use OFDM, which divides the bandwidth into orthogonal
//! subcarriers and treats each of the subcarriers as if it was an
//! independent narrowband channel. Our model naturally fits in this
//! context."* This module provides the OFDM substrate for that extension
//! (exercised by `hb-shield::fullduplex`'s per-subcarrier antidote and the
//! wideband ablation bench).
//!
//! Design: QPSK-mapped subcarriers, cyclic prefix, block pilot for one-tap
//! channel estimation.

use hb_dsp::complex::C64;
use hb_dsp::fft::FftPlan;
use std::f64::consts::FRAC_1_SQRT_2;

/// OFDM parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OfdmParams {
    /// Number of subcarriers (FFT size, power of two).
    pub n_subcarriers: usize,
    /// Cyclic prefix length in samples (must exceed the channel delay
    /// spread for ISI-free operation).
    pub cp_len: usize,
}

impl OfdmParams {
    /// A compact profile used by the wideband experiments: 64 subcarriers,
    /// 16-sample CP.
    pub fn small() -> Self {
        OfdmParams {
            n_subcarriers: 64,
            cp_len: 16,
        }
    }

    /// Samples per OFDM symbol including the cyclic prefix.
    pub fn symbol_len(&self) -> usize {
        self.n_subcarriers + self.cp_len
    }

    /// Data bits carried per OFDM symbol (QPSK: 2 bits/subcarrier).
    pub fn bits_per_symbol(&self) -> usize {
        2 * self.n_subcarriers
    }
}

/// QPSK maps bit pairs to unit-power constellation points (Gray coded).
fn qpsk_map(b0: u8, b1: u8) -> C64 {
    let re = if b0 == 0 {
        FRAC_1_SQRT_2
    } else {
        -FRAC_1_SQRT_2
    };
    let im = if b1 == 0 {
        FRAC_1_SQRT_2
    } else {
        -FRAC_1_SQRT_2
    };
    C64::new(re, im)
}

/// QPSK hard decision back to a bit pair.
fn qpsk_demap(s: C64) -> (u8, u8) {
    (u8::from(s.re < 0.0), u8::from(s.im < 0.0))
}

/// OFDM modulator/demodulator.
#[derive(Debug, Clone)]
pub struct OfdmModem {
    params: OfdmParams,
    plan: FftPlan,
    /// Known pilot symbol (frequency domain) for channel estimation.
    pilot: Vec<C64>,
}

impl OfdmModem {
    /// Creates a modem. The pilot is a fixed pseudo-random QPSK symbol.
    pub fn new(params: OfdmParams) -> Self {
        let plan = FftPlan::new(params.n_subcarriers);
        // Deterministic pilot: alternate constellation corners by index
        // hash; any known sequence works.
        let pilot = (0..params.n_subcarriers)
            .map(|k| {
                let h = (k.wrapping_mul(2654435761)) >> 28;
                qpsk_map((h & 1) as u8, ((h >> 1) & 1) as u8)
            })
            .collect();
        OfdmModem {
            params,
            plan,
            pilot,
        }
    }

    /// Modem parameters.
    pub fn params(&self) -> &OfdmParams {
        &self.params
    }

    /// Converts one frequency-domain symbol to time domain with CP.
    fn to_time(&self, freq: &[C64]) -> Vec<C64> {
        let n = self.params.n_subcarriers;
        let mut buf = freq.to_vec();
        self.plan.inverse(&mut buf);
        // IFFT's 1/N normalization shrinks power; rescale to unit mean power
        // for unit-power constellation input.
        let k = (n as f64).sqrt() * n as f64 / n as f64; // sqrt(N)
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
        let mut out = Vec::with_capacity(self.params.symbol_len());
        out.extend_from_slice(&buf[n - self.params.cp_len..]);
        out.extend_from_slice(&buf);
        out
    }

    /// Converts one time-domain symbol (CP included) to frequency domain.
    fn to_freq(&self, time: &[C64]) -> Vec<C64> {
        let n = self.params.n_subcarriers;
        let mut buf = time[self.params.cp_len..self.params.symbol_len()].to_vec();
        self.plan.forward(&mut buf);
        let k = 1.0 / (n as f64).sqrt();
        for v in buf.iter_mut() {
            *v = v.scale(k);
        }
        buf
    }

    /// The time-domain pilot symbol (transmitted ahead of data symbols).
    pub fn pilot_symbol(&self) -> Vec<C64> {
        self.to_time(&self.pilot)
    }

    /// Modulates bits into a burst: pilot symbol followed by data symbols.
    /// Bits are zero-padded to fill the last symbol.
    pub fn modulate(&self, bits: &[u8]) -> Vec<C64> {
        let bps = self.params.bits_per_symbol();
        let n_sym = bits.len().div_ceil(bps);
        let mut out = self.pilot_symbol();
        for s in 0..n_sym {
            let freq: Vec<C64> = (0..self.params.n_subcarriers)
                .map(|k| {
                    let i = s * bps + 2 * k;
                    let b0 = bits.get(i).copied().unwrap_or(0);
                    let b1 = bits.get(i + 1).copied().unwrap_or(0);
                    qpsk_map(b0, b1)
                })
                .collect();
            out.extend(self.to_time(&freq));
        }
        out
    }

    /// Estimates the per-subcarrier channel from a received pilot symbol.
    pub fn estimate_channel(&self, rx_pilot: &[C64]) -> Vec<C64> {
        let freq = self.to_freq(rx_pilot);
        freq.iter().zip(&self.pilot).map(|(&y, &p)| y / p).collect()
    }

    /// Demodulates a burst produced by [`OfdmModem::modulate`] after channel
    /// distortion: uses the leading pilot for one-tap equalization.
    /// Returns the recovered bits (including any pad bits).
    pub fn demodulate(&self, samples: &[C64]) -> Vec<u8> {
        let sym_len = self.params.symbol_len();
        if samples.len() < 2 * sym_len {
            return Vec::new();
        }
        let h = self.estimate_channel(&samples[..sym_len]);
        let mut bits = Vec::new();
        let mut pos = sym_len;
        while pos + sym_len <= samples.len() {
            let freq = self.to_freq(&samples[pos..pos + sym_len]);
            for (k, &y) in freq.iter().enumerate() {
                let eq = y / h[k];
                let (b0, b1) = qpsk_demap(eq);
                bits.push(b0);
                bits.push(b1);
            }
            pos += sym_len;
        }
        bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::{bit_error_rate, Prbs};
    use hb_dsp::complex::mean_power;
    use hb_dsp::noise::white_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn modem() -> OfdmModem {
        OfdmModem::new(OfdmParams::small())
    }

    #[test]
    fn clean_roundtrip() {
        let m = modem();
        let mut prbs = Prbs::new(3);
        let bits = prbs.bits(128 * 4);
        let rx = m.demodulate(&m.modulate(&bits));
        assert_eq!(&rx[..bits.len()], &bits[..]);
    }

    #[test]
    fn burst_power_is_near_unity() {
        let m = modem();
        let mut prbs = Prbs::new(9);
        let sig = m.modulate(&prbs.bits(1024));
        let p = mean_power(&sig);
        assert!((p - 1.0).abs() < 0.15, "power {p}");
    }

    #[test]
    fn survives_flat_channel_rotation() {
        let m = modem();
        let mut prbs = Prbs::new(5);
        let bits = prbs.bits(512);
        let tx = m.modulate(&bits);
        let h = C64::from_polar(0.4, 1.2);
        let rx_sig: Vec<C64> = tx.iter().map(|&s| s * h).collect();
        let rx = m.demodulate(&rx_sig);
        assert_eq!(&rx[..bits.len()], &bits[..]);
    }

    #[test]
    fn survives_two_tap_multipath() {
        // CP of 16 absorbs a 5-tap delay easily; one-tap equalizer must
        // recover the bits through the frequency-selective channel.
        let m = modem();
        let mut prbs = Prbs::new(11);
        let bits = prbs.bits(512);
        let tx = m.modulate(&bits);
        let mut rx_sig = vec![C64::ZERO; tx.len() + 5];
        for (i, &s) in tx.iter().enumerate() {
            rx_sig[i] += s;
            rx_sig[i + 5] += s.scale(0.45);
        }
        // Discard the channel tail; keep alignment at the burst start.
        let rx = m.demodulate(&rx_sig[..tx.len()]);
        let ber = bit_error_rate(&bits, &rx[..bits.len()]);
        assert_eq!(ber, 0.0, "ber {ber}");
    }

    #[test]
    fn tolerates_moderate_noise() {
        let m = modem();
        let mut rng = StdRng::seed_from_u64(77);
        let mut prbs = Prbs::new(13);
        let bits = prbs.bits(2048);
        let tx = m.modulate(&bits);
        let noise = white_noise(&mut rng, tx.len(), 0.01); // ~20 dB SNR
        let noisy: Vec<C64> = tx.iter().zip(&noise).map(|(&s, &n)| s + n).collect();
        let rx = m.demodulate(&noisy);
        let ber = bit_error_rate(&bits, &rx[..bits.len()]);
        assert!(ber < 0.01, "ber {ber}");
    }

    #[test]
    fn short_buffer_yields_no_bits() {
        let m = modem();
        assert!(m.demodulate(&[C64::ONE; 10]).is_empty());
    }

    #[test]
    fn qpsk_map_demap_all_pairs() {
        for b0 in 0..2u8 {
            for b1 in 0..2u8 {
                let s = qpsk_map(b0, b1);
                assert!((s.abs() - 1.0).abs() < 1e-12);
                assert_eq!(qpsk_demap(s), (b0, b1));
            }
        }
    }

    #[test]
    fn channel_estimate_recovers_flat_gain() {
        let m = modem();
        let h = C64::from_polar(0.7, -0.5);
        let rx_pilot: Vec<C64> = m.pilot_symbol().iter().map(|&s| s * h).collect();
        let est = m.estimate_channel(&rx_pilot);
        for e in est {
            assert!((e - h).abs() < 1e-9);
        }
    }
}
