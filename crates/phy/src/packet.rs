//! Air-interface frame format for MICS-band IMD telemetry.
//!
//! The exact Medtronic frame layout is proprietary; the paper tells us what
//! matters for the shield (§7(a)): packets use FSK, carry *"a known
//! preamble, a header, and the device's ID, i.e. its 10-byte serial
//! number"*, and end in a checksum that the IMD enforces. Our frame encodes
//! exactly those elements:
//!
//! ```text
//! | preamble 4B (0xAA…) | sync 2B (0x2D 0xD4) | serial 10B | type 1B |
//! | seq 1B | len 2B (BE) | payload 0..=MAX | crc16 2B (BE) |
//! ```
//!
//! The **identifying sequence** `Sid` that the shield matches against is the
//! bit expansion of preamble + sync + serial — everything that is fixed for
//! packets addressed to (or sent by) one particular device.

use crate::bits::{bits_to_bytes, bytes_to_bits};
use crate::crc::{crc16_ccitt, verify_crc16};

/// Preamble bytes: alternating 1010… for symbol timing acquisition.
pub const PREAMBLE: [u8; 4] = [0xAA, 0xAA, 0xAA, 0xAA];
/// Frame sync word, chosen (as in common FSK transceivers) for good
/// autocorrelation properties.
pub const SYNC_WORD: [u8; 2] = [0x2D, 0xD4];
/// Length of the device serial number in bytes (per the paper: 10 bytes).
pub const SERIAL_LEN: usize = 10;
/// Maximum payload length in bytes. At the 12.5 kbps FSK telemetry rate the
/// longest frame (22 + 10 bytes = 256 bits) lasts 20.5 ms, matching the
/// paper's max packet duration P = 21 ms. Longer records (ECG traces,
/// interrogation reports) are fragmented across frames, as real IMD
/// telemetry does.
pub const MAX_PAYLOAD: usize = 10;
/// Fixed per-frame overhead: preamble + sync + serial + type + seq + len + crc.
pub const OVERHEAD: usize = PREAMBLE.len() + SYNC_WORD.len() + SERIAL_LEN + 1 + 1 + 2 + 2;

/// A 10-byte device serial number (the device ID carried in every frame).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Serial(pub [u8; SERIAL_LEN]);

impl Serial {
    /// Builds a serial from an ASCII model string, truncated/zero-padded to
    /// 10 bytes (e.g. `Serial::from_str_padded("VIRTUOSO01")`).
    pub fn from_str_padded(s: &str) -> Self {
        let mut b = [0u8; SERIAL_LEN];
        for (i, &c) in s.as_bytes().iter().take(SERIAL_LEN).enumerate() {
            b[i] = c;
        }
        Serial(b)
    }
}

/// Frame type discriminator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum FrameType {
    /// Programmer-to-IMD command.
    Command = 0x01,
    /// IMD-to-programmer response carrying data.
    Response = 0x02,
    /// Link-maintenance / probe frame.
    Probe = 0x03,
    /// Frame types we don't recognize are preserved numerically.
    Other(u8),
}

impl FrameType {
    /// Byte encoding of the frame type.
    pub fn to_byte(self) -> u8 {
        match self {
            FrameType::Command => 0x01,
            FrameType::Response => 0x02,
            FrameType::Probe => 0x03,
            FrameType::Other(b) => b,
        }
    }

    /// Decodes a frame-type byte.
    pub fn from_byte(b: u8) -> Self {
        match b {
            0x01 => FrameType::Command,
            0x02 => FrameType::Response,
            0x03 => FrameType::Probe,
            other => FrameType::Other(other),
        }
    }
}

/// A decoded (or to-be-encoded) air frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Device serial number this frame belongs to (destination for
    /// commands, source for responses — IMD sessions are point-to-point).
    pub serial: Serial,
    /// Frame type.
    pub frame_type: FrameType,
    /// Sequence number (wraps at 255).
    pub seq: u8,
    /// Application payload.
    pub payload: Vec<u8>,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameError {
    /// Input shorter than the fixed overhead.
    TooShort,
    /// Sync word not found where expected.
    BadSync,
    /// Length field exceeds [`MAX_PAYLOAD`] or the available bytes.
    BadLength,
    /// Checksum mismatch — *this is the error jamming induces*; the IMD
    /// discards such frames (§3.1).
    BadCrc,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::TooShort => write!(f, "frame too short"),
            FrameError::BadSync => write!(f, "sync word mismatch"),
            FrameError::BadLength => write!(f, "invalid length field"),
            FrameError::BadCrc => write!(f, "checksum failure"),
        }
    }
}

impl std::error::Error for FrameError {}

impl Frame {
    /// Creates a frame.
    ///
    /// # Panics
    /// Panics if the payload exceeds [`MAX_PAYLOAD`].
    pub fn new(serial: Serial, frame_type: FrameType, seq: u8, payload: Vec<u8>) -> Self {
        assert!(
            payload.len() <= MAX_PAYLOAD,
            "payload {} exceeds MAX_PAYLOAD {}",
            payload.len(),
            MAX_PAYLOAD
        );
        Frame {
            serial,
            frame_type,
            seq,
            payload,
        }
    }

    /// Serializes to on-air bytes (preamble through CRC).
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(OVERHEAD + self.payload.len());
        out.extend_from_slice(&PREAMBLE);
        out.extend_from_slice(&SYNC_WORD);
        // The CRC covers everything after the sync word.
        let body_start = out.len();
        out.extend_from_slice(&self.serial.0);
        out.push(self.frame_type.to_byte());
        out.push(self.seq);
        out.extend_from_slice(&(self.payload.len() as u16).to_be_bytes());
        out.extend_from_slice(&self.payload);
        let crc = crc16_ccitt(&out[body_start..]);
        out.extend_from_slice(&crc.to_be_bytes());
        out
    }

    /// Serializes to on-air bits (MSB first), ready for the modulator.
    pub fn to_bits(&self) -> Vec<u8> {
        bytes_to_bits(&self.to_bytes())
    }

    /// Parses a frame from bytes that start at the preamble.
    pub fn from_bytes(bytes: &[u8]) -> Result<Frame, FrameError> {
        if bytes.len() < OVERHEAD {
            return Err(FrameError::TooShort);
        }
        let sync_at = PREAMBLE.len();
        if bytes[sync_at..sync_at + 2] != SYNC_WORD {
            return Err(FrameError::BadSync);
        }
        let body = &bytes[sync_at + 2..];
        let mut serial = [0u8; SERIAL_LEN];
        serial.copy_from_slice(&body[..SERIAL_LEN]);
        let frame_type = FrameType::from_byte(body[SERIAL_LEN]);
        let seq = body[SERIAL_LEN + 1];
        let len = u16::from_be_bytes([body[SERIAL_LEN + 2], body[SERIAL_LEN + 3]]) as usize;
        if len > MAX_PAYLOAD || body.len() < SERIAL_LEN + 4 + len + 2 {
            return Err(FrameError::BadLength);
        }
        let with_crc = &body[..SERIAL_LEN + 4 + len + 2];
        if !verify_crc16(with_crc) {
            return Err(FrameError::BadCrc);
        }
        let payload = body[SERIAL_LEN + 4..SERIAL_LEN + 4 + len].to_vec();
        Ok(Frame {
            serial: Serial(serial),
            frame_type,
            seq,
            payload,
        })
    }

    /// Parses a frame from demodulated bits starting at the preamble.
    pub fn from_bits(bits: &[u8]) -> Result<Frame, FrameError> {
        let usable = bits.len() - bits.len() % 8;
        if usable == 0 {
            return Err(FrameError::TooShort);
        }
        Frame::from_bytes(&bits_to_bytes(&bits[..usable]))
    }

    /// Total on-air length in bits.
    pub fn bit_len(&self) -> usize {
        (OVERHEAD + self.payload.len()) * 8
    }

    /// On-air duration in seconds at `bitrate` bits/s.
    pub fn duration_s(&self, bitrate: f64) -> f64 {
        self.bit_len() as f64 / bitrate
    }
}

/// Builds the identifying sequence `Sid` for a device: the bits of
/// preamble + sync + serial (§7(a)). Every frame addressed to (or sent by)
/// the device begins with exactly these `16*8 = 128` bits.
pub fn identifying_sequence(serial: Serial) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(PREAMBLE.len() + SYNC_WORD.len() + SERIAL_LEN);
    bytes.extend_from_slice(&PREAMBLE);
    bytes.extend_from_slice(&SYNC_WORD);
    bytes.extend_from_slice(&serial.0);
    bytes_to_bits(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_frame() -> Frame {
        Frame::new(
            Serial::from_str_padded("VIRTUOSO01"),
            FrameType::Command,
            7,
            vec![1, 2, 3, 4, 5],
        )
    }

    #[test]
    fn roundtrip_bytes() {
        let f = sample_frame();
        let decoded = Frame::from_bytes(&f.to_bytes()).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn roundtrip_bits() {
        let f = sample_frame();
        let decoded = Frame::from_bits(&f.to_bits()).unwrap();
        assert_eq!(f, decoded);
    }

    #[test]
    fn empty_payload_roundtrip() {
        let f = Frame::new(Serial([9; 10]), FrameType::Probe, 0, vec![]);
        assert_eq!(Frame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn max_payload_roundtrip() {
        let f = Frame::new(
            Serial([1; 10]),
            FrameType::Response,
            255,
            vec![0xAB; MAX_PAYLOAD],
        );
        assert_eq!(Frame::from_bytes(&f.to_bytes()).unwrap(), f);
    }

    #[test]
    fn max_frame_duration_is_21ms_at_telemetry_rate() {
        let f = Frame::new(
            Serial([0; 10]),
            FrameType::Response,
            0,
            vec![0; MAX_PAYLOAD],
        );
        let d = f.duration_s(12_500.0);
        assert!(d <= 0.021, "duration {d}");
        assert!(d >= 0.020, "duration {d}");
    }

    #[test]
    fn corrupted_payload_fails_crc() {
        let f = sample_frame();
        let mut bytes = f.to_bytes();
        let n = bytes.len();
        bytes[n - 5] ^= 0x10;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadCrc));
    }

    #[test]
    fn corrupted_serial_fails_crc() {
        let f = sample_frame();
        let mut bytes = f.to_bytes();
        bytes[PREAMBLE.len() + 2] ^= 0x01;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadCrc));
    }

    #[test]
    fn bad_sync_detected() {
        let f = sample_frame();
        let mut bytes = f.to_bytes();
        bytes[4] ^= 0xFF;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadSync));
    }

    #[test]
    fn short_input_rejected() {
        assert_eq!(Frame::from_bytes(&[0xAA; 5]), Err(FrameError::TooShort));
    }

    #[test]
    fn oversized_length_field_rejected() {
        let f = sample_frame();
        let mut bytes = f.to_bytes();
        // Corrupt the length field to a huge value; CRC would also fail but
        // length sanity fires first.
        let len_at = PREAMBLE.len() + 2 + SERIAL_LEN + 2;
        bytes[len_at] = 0xFF;
        bytes[len_at + 1] = 0xFF;
        assert_eq!(Frame::from_bytes(&bytes), Err(FrameError::BadLength));
    }

    #[test]
    fn sid_is_128_bits_and_starts_with_preamble() {
        let sid = identifying_sequence(Serial::from_str_padded("CONCERTO02"));
        assert_eq!(sid.len(), 128);
        // 0xAA = 10101010
        assert_eq!(&sid[..8], &[1, 0, 1, 0, 1, 0, 1, 0]);
    }

    #[test]
    fn sid_differs_between_devices() {
        let a = identifying_sequence(Serial::from_str_padded("VIRTUOSO01"));
        let b = identifying_sequence(Serial::from_str_padded("CONCERTO02"));
        assert_ne!(a, b);
        // But the first 48 bits (preamble+sync) agree.
        assert_eq!(&a[..48], &b[..48]);
    }

    #[test]
    fn frame_type_byte_roundtrip() {
        for b in [0x01, 0x02, 0x03, 0x7F, 0xEE] {
            assert_eq!(FrameType::from_byte(b).to_byte(), b);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_PAYLOAD")]
    fn oversize_payload_panics() {
        let _ = Frame::new(
            Serial([0; 10]),
            FrameType::Command,
            0,
            vec![0; MAX_PAYLOAD + 1],
        );
    }
}
