//! Received signal strength (RSSI) estimation and energy-based carrier
//! sensing.
//!
//! Power convention used across the workspace: **a mean sample power of 1.0
//! corresponds to 0 dBm**. Transmit powers, pathloss, and noise floors are
//! all expressed on this scale, so `rssi_dbm` of a received block is
//! directly comparable to the paper's dBm numbers (e.g. Table 1's Pthresh).

use hb_dsp::complex::{mean_power, C64};
use hb_dsp::units::{db_from_ratio, ratio_from_db};

/// RSSI of a sample block in dBm (mean power 1.0 ≡ 0 dBm).
///
/// Returns −200 dBm for an empty or all-zero block.
pub fn rssi_dbm(samples: &[C64]) -> f64 {
    let p = mean_power(samples);
    if p <= 0.0 {
        -200.0
    } else {
        db_from_ratio(p)
    }
}

/// Converts a dBm level to the linear mean-power scale.
pub fn power_from_dbm(dbm: f64) -> f64 {
    ratio_from_db(dbm)
}

/// A sliding-window energy detector for clear-channel assessment and
/// signal-presence detection.
///
/// Drives two shield behaviours: the MICS listen-before-talk rule (§2) and
/// "if it detects a signal on the medium, it proceeds to decode it" (§7).
#[derive(Debug, Clone)]
pub struct EnergyDetector {
    threshold_power: f64,
    window: Vec<f64>,
    head: usize,
    filled: usize,
    sum: f64,
}

impl EnergyDetector {
    /// Creates a detector that reports *busy* when the mean power over the
    /// last `window_len` samples exceeds `threshold_dbm`.
    pub fn new(threshold_dbm: f64, window_len: usize) -> Self {
        assert!(window_len > 0, "window must be non-empty");
        EnergyDetector {
            threshold_power: power_from_dbm(threshold_dbm),
            window: vec![0.0; window_len],
            head: 0,
            filled: 0,
            sum: 0.0,
        }
    }

    /// Pushes one sample; returns `true` if the medium is currently busy.
    pub fn push(&mut self, sample: C64) -> bool {
        let p = sample.norm_sq();
        self.sum -= self.window[self.head];
        self.window[self.head] = p;
        self.sum += p;
        self.head = (self.head + 1) % self.window.len();
        if self.filled < self.window.len() {
            self.filled += 1;
        }
        self.busy()
    }

    /// Pushes a block; returns `true` if the detector was busy at any point
    /// during the block.
    pub fn push_block(&mut self, samples: &[C64]) -> bool {
        let mut any = false;
        for &s in samples {
            any |= self.push(s);
        }
        any
    }

    /// Current busy state.
    pub fn busy(&self) -> bool {
        self.filled == self.window.len() && self.sum / self.filled as f64 > self.threshold_power
    }

    /// Mean power over the current window, in dBm.
    pub fn level_dbm(&self) -> f64 {
        if self.filled == 0 {
            return -200.0;
        }
        let p = self.sum / self.filled as f64;
        if p <= 0.0 {
            -200.0
        } else {
            db_from_ratio(p)
        }
    }

    /// Clears the window.
    pub fn reset(&mut self) {
        for w in self.window.iter_mut() {
            *w = 0.0;
        }
        self.head = 0;
        self.filled = 0;
        self.sum = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_dsp::noise::white_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rssi_of_unit_power_is_zero_dbm() {
        let s = vec![C64::ONE; 100];
        assert!((rssi_dbm(&s) - 0.0).abs() < 1e-9);
    }

    #[test]
    fn rssi_scales_with_power() {
        let mut rng = StdRng::seed_from_u64(1);
        let s = white_noise(&mut rng, 50_000, power_from_dbm(-30.0));
        assert!((rssi_dbm(&s) - (-30.0)).abs() < 0.3);
    }

    #[test]
    fn rssi_empty_sentinel() {
        assert_eq!(rssi_dbm(&[]), -200.0);
        assert_eq!(rssi_dbm(&[C64::ZERO; 4]), -200.0);
    }

    #[test]
    fn detector_quiet_then_busy() {
        let mut d = EnergyDetector::new(-40.0, 16);
        let quiet = vec![C64::ZERO; 32];
        assert!(!d.push_block(&quiet));
        let loud = vec![C64::ONE; 32];
        assert!(d.push_block(&loud));
        assert!(d.busy());
        assert!((d.level_dbm() - 0.0).abs() < 0.5);
    }

    #[test]
    fn detector_returns_to_idle() {
        let mut d = EnergyDetector::new(-40.0, 8);
        d.push_block(&vec![C64::ONE; 16]);
        assert!(d.busy());
        d.push_block(&vec![C64::ZERO; 16]);
        assert!(!d.busy());
    }

    #[test]
    fn detector_does_not_fire_before_window_fills() {
        let mut d = EnergyDetector::new(-40.0, 32);
        // Even loud samples shouldn't assert busy until the window is full:
        // prevents one-sample glitches from triggering CCA.
        for _ in 0..31 {
            assert!(!d.push(C64::ONE));
        }
        assert!(d.push(C64::ONE));
    }

    #[test]
    fn below_threshold_noise_is_idle() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut d = EnergyDetector::new(-40.0, 64);
        let noise = white_noise(&mut rng, 1000, power_from_dbm(-60.0));
        assert!(!d.push_block(&noise));
    }

    #[test]
    fn reset_clears() {
        let mut d = EnergyDetector::new(-40.0, 4);
        d.push_block(&[C64::ONE; 8]);
        d.reset();
        assert!(!d.busy());
        assert_eq!(d.level_dbm(), -200.0);
    }
}
