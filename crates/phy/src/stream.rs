//! Streaming frame detection: block-at-a-time FSK demodulation with
//! continuous sync search and frame assembly.
//!
//! Real receivers do not see tidy, pre-aligned sample buffers; they watch
//! the channel continuously. [`StreamingDetector`] consumes sample blocks
//! as the medium produces them and emits events when it finds and finishes
//! frames. It maintains one matched-filter accumulator per sub-symbol
//! alignment ("phase"), demodulates a bit stream per phase, and runs a
//! sync-pattern matcher on each stream. When a pattern hits, the detector
//! locks onto that phase, collects the frame's bits (using the length
//! field to know when to stop), and emits the parse result — including CRC
//! failures, which is exactly what an IMD sees when the shield jams a
//! command addressed to it.
//!
//! # The two-stage blocked pipeline
//!
//! Both [`StreamingDetector`] and [`SidMonitor`] split each `push_block`
//! call into two stages around the shared
//! [`hb_dsp::correlator::MultiPhaseCorrelator`] kernel:
//!
//! * **Stage (a), hot** — the whole input block flows through the dense
//!   multi-phase MAC sweep. With `sps` samples per symbol, every sample
//!   updates all `sps` per-phase `(c0, c1)` tone accumulators (contiguous
//!   structure-of-arrays layout, branch-free forward loops over reversed
//!   cis tables — see the correlator's module docs), and exactly one
//!   phase completes a symbol per sample. The completed energies
//!   `(e0, e1) = (|c0|², |c1|²)` land in per-block scratch buffers.
//! * **Stage (b), cold** — a per-symbol walk over the scratch runs
//!   everything with state-machine branches: bit decisions, margin
//!   tracking, sync matching, phase arbitration, lock/frame collection.
//!
//! **The blocked-correlator invariant:** stage (a) is a pure function of
//! the sample stream — no detector state (lock, candidates, matchers)
//! feeds back into the accumulators, and the accumulators' contributions
//! arrive in exactly the per-sample order the historical sweep used.
//! Every demodulated bit stream, event, tick and power value is therefore
//! **bit-for-bit identical** to the pre-blocked implementation (kept
//! under `#[cfg(test)]` as `reference` and pinned by equivalence property
//! tests), and independent of how the stream is chunked into blocks.
//!
//! # Phase-arbitration rules
//!
//! Several adjacent phases can match the sync pattern within tolerance.
//! When the first one fires, a one-symbol **arbitration window** opens;
//! phases firing inside it become candidates (each remembering the bits
//! it demodulated after its own match). When the window closes, the
//! winner is chosen by (1) lowest sync Hamming distance, then (2) highest
//! summed tone-energy separation `Σ|e1−e0|` over the sync window, then
//! (3) earliest fire (the sort is stable, so ties keep registration
//! order). Only then does the detector lock and report
//! [`DetectorEvent::SyncFound`].

use crate::fsk::{FskModem, FskParams};
use crate::matcher::SidMatcher;
use crate::packet::{Frame, FrameError, MAX_PAYLOAD, OVERHEAD, PREAMBLE, SYNC_WORD};
use hb_dsp::complex::C64;
use hb_dsp::correlator::MultiPhaseCorrelator;
use std::f64::consts::PI;

/// Bits in the preamble + sync prefix.
const SYNC_BITS: usize = (PREAMBLE.len() + SYNC_WORD.len()) * 8;
/// Bit offset of the length field within the frame.
const LEN_FIELD_BIT: usize = (PREAMBLE.len() + SYNC_WORD.len() + 10 + 1 + 1) * 8;

/// One-symbol tone template `cis(-2π f n / fs)` for `bit`'s tone — the
/// matched filter both streaming front ends correlate against.
fn tone_template(params: FskParams, bit: u8) -> Vec<C64> {
    let sps = params.samples_per_symbol();
    (0..sps)
        .map(|n| C64::cis(-2.0 * PI * params.tone_hz(bit) * n as f64 / params.fs_hz))
        .collect()
}

/// The blocked sweep kernel over `params`' two tone templates — exactly
/// the correlator [`StreamingDetector`] and [`SidMonitor`] run as their
/// hot stage. Public so benchmarks (`perf_report`'s `detector_sweep_24k`)
/// time the same filter the production detectors use rather than
/// rebuilding the template convention by hand.
pub fn detection_correlator(params: FskParams) -> MultiPhaseCorrelator {
    MultiPhaseCorrelator::new(&tone_template(params, 0), &tone_template(params, 1))
}

/// An event from the streaming detector.
#[derive(Debug, Clone, PartialEq)]
pub enum DetectorEvent {
    /// The sync pattern matched; a frame is being collected.
    SyncFound {
        /// Sample tick of the (estimated) first preamble sample.
        start_tick: u64,
    },
    /// A complete frame was collected and parsed.
    FrameDone {
        /// Parse result; `Err(BadCrc)` is the jammed-command case.
        result: Result<Frame, FrameError>,
        /// Sample tick of the frame's first sample.
        start_tick: u64,
        /// Sample tick just past the frame's last sample.
        end_tick: u64,
        /// Mean received power over the frame (1.0 ≡ 0 dBm).
        mean_power: f64,
    },
}

/// Per-alignment demodulation state (cold path: touched once per completed
/// symbol; the per-sample tone accumulators live in the shared
/// [`MultiPhaseCorrelator`] for cache locality).
#[derive(Debug, Clone)]
struct PhaseState {
    /// Sync matcher over this phase's bit stream.
    matcher: SidMatcher,
    /// Tone-energy separation |e1−e0| of the last `SYNC_BITS` symbols
    /// (fixed ring buffer): a correctly aligned phase maximizes this, so
    /// it arbitrates ties between equal-distance sync candidates.
    margins: Vec<f64>,
    /// Ring head — index of the oldest margin once the ring is full.
    head: usize,
    /// Entries filled so far (saturates at `SYNC_BITS`).
    filled: usize,
    margin_sum: f64,
}

impl PhaseState {
    fn new(matcher: SidMatcher) -> Self {
        PhaseState {
            matcher,
            margins: vec![0.0; SYNC_BITS],
            head: 0,
            filled: 0,
            margin_sum: 0.0,
        }
    }

    /// Adds `m` to the rolling window: the sum gains `m` first, then loses
    /// the evicted oldest entry — the same floating-point order the
    /// historical `VecDeque` implementation used, so the sum stays
    /// bit-identical.
    fn push_margin(&mut self, m: f64) {
        self.margin_sum += m;
        if self.filled < SYNC_BITS {
            self.margins[self.filled] = m;
            self.filled += 1;
        } else {
            self.margin_sum -= self.margins[self.head];
            self.margins[self.head] = m;
            self.head = if self.head + 1 == SYNC_BITS {
                0
            } else {
                self.head + 1
            };
        }
    }

    fn clear_margins(&mut self) {
        self.head = 0;
        self.filled = 0;
        self.margin_sum = 0.0;
    }
}

/// Frame-collection state once a sync has matched.
#[derive(Debug, Clone)]
struct LockState {
    phase: usize,
    start_tick: u64,
    /// All frame bits collected so far, including the sync prefix.
    bits: Vec<u8>,
    /// Total expected bits once the length field is readable.
    total_bits: Option<usize>,
    power_sum: f64,
    power_samples: u64,
}

/// A sync-match candidate awaiting phase arbitration.
///
/// Several adjacent sub-symbol phases can match the sync pattern within
/// tolerance (especially with interference in the run-up to a frame);
/// locking onto the first one risks a half-symbol misalignment that
/// corrupts the whole frame. Candidates are therefore collected for one
/// symbol period and the **lowest-distance** phase wins — the streaming
/// equivalent of the offline decoder's search over all alignments. (The
/// full tie-break order is in the module docs.)
#[derive(Debug, Clone)]
struct Candidate {
    phase: usize,
    distance: usize,
    /// Summed tone-energy separation over the sync window (higher =
    /// better aligned).
    quality: f64,
    fire_tick: u64,
    /// Bits this phase produced since (and excluding) its sync match.
    bits_since: Vec<u8>,
}

/// Streaming FSK frame detector. See the module docs.
///
/// # Example
///
/// ```
/// use hb_dsp::complex::C64;
/// use hb_phy::fsk::{FskModem, FskParams};
/// use hb_phy::packet::{Frame, FrameType, Serial};
/// use hb_phy::stream::{DetectorEvent, StreamingDetector};
///
/// let params = FskParams::mics_default();
/// let frame = Frame::new(
///     Serial::from_str_padded("VIRTUOSO01"),
///     FrameType::Command,
///     1,
///     vec![1, 2],
/// );
/// let mut sig = vec![C64::ZERO; 100]; // leading silence
/// sig.extend(FskModem::new(params).modulate(&frame.to_bits()));
/// sig.extend(vec![C64::ZERO; 200]);
///
/// let mut det = StreamingDetector::new(params, 4);
/// let mut decoded = None;
/// // Blocks arrive one at a time, exactly as the medium produces them.
/// for block in sig.chunks(16) {
///     for event in det.push_block(block) {
///         if let DetectorEvent::FrameDone { result, .. } = event {
///             decoded = Some(result.expect("clean channel"));
///         }
///     }
/// }
/// assert_eq!(decoded.unwrap(), frame);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingDetector {
    modem: FskModem,
    /// Stage (a): the shared blocked multi-phase sweep kernel.
    corr: MultiPhaseCorrelator,
    phases: Vec<PhaseState>,
    lock: Option<LockState>,
    /// Pending candidate window: (deadline tick, candidates).
    pending: Option<(u64, Vec<Candidate>)>,
    sync_errors_allowed: usize,
    next_tick: u64,
    /// Per-block scratch: completed-symbol tone energies from stage (a),
    /// one `(e0, e1)` pair per consumed sample.
    e0: Vec<f64>,
    e1: Vec<f64>,
}

impl StreamingDetector {
    /// Creates a detector for the given FSK parameters, tolerating up to
    /// `sync_errors_allowed` bit errors in the preamble + sync pattern.
    pub fn new(params: FskParams, sync_errors_allowed: usize) -> Self {
        let modem = FskModem::new(params);
        let sps = params.samples_per_symbol();
        let mut pattern = Vec::with_capacity(SYNC_BITS);
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
        pattern.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));
        let phases = (0..sps)
            .map(|_| PhaseState::new(SidMatcher::new(pattern.clone(), sync_errors_allowed)))
            .collect();
        StreamingDetector {
            corr: detection_correlator(params),
            modem,
            phases,
            lock: None,
            pending: None,
            sync_errors_allowed,
            next_tick: 0,
            e0: Vec::new(),
            e1: Vec::new(),
        }
    }

    /// The modem parameters in use.
    pub fn params(&self) -> &FskParams {
        self.modem.params()
    }

    /// True while a frame is being collected.
    pub fn is_locked(&self) -> bool {
        self.lock.is_some()
    }

    /// Abandons any in-progress frame and clears all matchers.
    pub fn reset(&mut self) {
        self.lock = None;
        self.pending = None;
        self.corr.reset();
        for p in self.phases.iter_mut() {
            p.matcher.reset();
            p.clear_margins();
        }
    }

    /// Consumes one block of samples (which must directly follow the
    /// previous block) and returns any events it produced.
    pub fn push_block(&mut self, samples: &[C64]) -> Vec<DetectorEvent> {
        let sps = self.modem.params().samples_per_symbol();
        let mut events = Vec::new();

        // Stage (a) — hot: the dense multi-phase MAC sweep over the whole
        // block, emitting one completed (e0, e1) pair per sample.
        self.e0.clear();
        self.e1.clear();
        let base0 = (self.next_tick % sps as u64) as usize;
        self.corr
            .process_block(samples, base0, &mut self.e0, &mut self.e1);

        // Stage (b) — cold: per completed symbol, in tick order. The
        // scratch buffers move out of `self` for the walk so the zip
        // borrows cleanly (and elides every bounds check).
        let e0s = std::mem::take(&mut self.e0);
        let e1s = std::mem::take(&mut self.e1);
        let mut p = base0;
        for ((&s, &e0), &e1) in samples.iter().zip(e0s.iter()).zip(e1s.iter()) {
            let tick = self.next_tick;
            self.next_tick += 1;

            if let Some(lock) = self.lock.as_mut() {
                lock.power_sum += s.norm_sq();
                lock.power_samples += 1;
            }

            let mut frame_completed = false;
            // The phase whose symbol completed on this sample.
            p = if p + 1 == sps { 0 } else { p + 1 };
            {
                let st = &mut self.phases[p];
                let bit = u8::from(e1 > e0);
                st.push_margin((e1 - e0).abs());

                match self.lock.as_mut() {
                    Some(lock) if lock.phase == p => {
                        lock.bits.push(bit);
                        // Read the length field as soon as available.
                        if lock.total_bits.is_none() && lock.bits.len() >= LEN_FIELD_BIT + 16 {
                            let mut len = 0usize;
                            for i in 0..16 {
                                len = (len << 1) | lock.bits[LEN_FIELD_BIT + i] as usize;
                            }
                            if len > MAX_PAYLOAD {
                                // Garbled length: cap at the maximum
                                // frame so the attempt terminates; the
                                // CRC will reject it.
                                len = MAX_PAYLOAD;
                            }
                            lock.total_bits = Some((OVERHEAD + len) * 8);
                        }
                        if let Some(total) = lock.total_bits {
                            if lock.bits.len() >= total {
                                let lock = self.lock.take().unwrap();
                                let result = Frame::from_bits(&lock.bits);
                                events.push(DetectorEvent::FrameDone {
                                    result,
                                    start_tick: lock.start_tick,
                                    end_tick: tick + 1,
                                    mean_power: if lock.power_samples > 0 {
                                        lock.power_sum / lock.power_samples as f64
                                    } else {
                                        0.0
                                    },
                                });
                                // One frame at a time: restart the scan
                                // (matchers reset after this sample's
                                // phase sweep completes).
                                frame_completed = true;
                            }
                        }
                    }
                    Some(_) => {
                        // Another phase holds the lock; stay quiet.
                    }
                    None => {
                        let fired = st.matcher.push(bit);
                        match self.pending.as_mut() {
                            Some((_, candidates)) => {
                                // Feed bits to existing candidates on
                                // this phase; register a new candidate
                                // if this phase just fired.
                                for c in candidates.iter_mut() {
                                    if c.phase == p && c.fire_tick < tick {
                                        c.bits_since.push(bit);
                                    }
                                }
                                if fired && !candidates.iter().any(|c| c.phase == p) {
                                    candidates.push(Candidate {
                                        phase: p,
                                        distance: st.matcher.current_distance(),
                                        quality: st.margin_sum,
                                        fire_tick: tick,
                                        bits_since: Vec::new(),
                                    });
                                }
                            }
                            None => {
                                if fired {
                                    // Open a one-symbol arbitration
                                    // window for competing phases.
                                    self.pending = Some((
                                        tick + sps as u64,
                                        vec![Candidate {
                                            phase: p,
                                            distance: st.matcher.current_distance(),
                                            quality: st.margin_sum,
                                            fire_tick: tick,
                                            bits_since: Vec::new(),
                                        }],
                                    ));
                                }
                            }
                        }
                    }
                }
            }
            if frame_completed {
                for q in self.phases.iter_mut() {
                    q.matcher.reset();
                }
                self.pending = None;
            }
            // Close the candidate window: lock the lowest-distance phase
            // (ties broken by earliest fire).
            if let Some((deadline, _)) = self.pending {
                if tick + 1 >= deadline && self.lock.is_none() {
                    let (_, mut candidates) = self.pending.take().unwrap();
                    // Lowest sync distance wins; ties go to the phase with
                    // the cleanest tone separation over the sync window.
                    candidates.sort_by(|a, b| {
                        a.distance
                            .cmp(&b.distance)
                            .then(b.quality.partial_cmp(&a.quality).unwrap())
                    });
                    let winner = candidates.into_iter().next().unwrap();
                    let start_tick =
                        (winner.fire_tick + 1).saturating_sub((SYNC_BITS * sps) as u64);
                    let mut bits = Vec::with_capacity(SYNC_BITS + winner.bits_since.len());
                    bits.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
                    bits.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));
                    bits.extend_from_slice(&winner.bits_since);
                    self.lock = Some(LockState {
                        phase: winner.phase,
                        start_tick,
                        bits,
                        total_bits: None,
                        power_sum: 0.0,
                        power_samples: 0,
                    });
                    events.push(DetectorEvent::SyncFound { start_tick });
                }
            }
        }
        self.e0 = e0s;
        self.e1 = e1s;
        events
    }

    /// The configured sync-pattern bit-error tolerance.
    pub fn sync_errors_allowed(&self) -> usize {
        self.sync_errors_allowed
    }

    /// The detector's current absolute sample tick.
    pub fn tick(&self) -> u64 {
        self.next_tick
    }
}

/// A detection from [`SidMonitor::push_block`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SidDetection {
    /// Tick at which the pattern's last bit finished (detection instant).
    pub tick: u64,
    /// Hamming distance of the matched window from the pattern.
    pub distance: usize,
    /// Mean received power over the pattern window (1.0 ≡ 0 dBm).
    pub mean_power: f64,
}

/// Streaming identifying-sequence monitor: the shield's active-protection
/// trigger (§7 of the paper).
///
/// Unlike [`StreamingDetector`], this never assembles frames — it watches
/// the bit stream at every sub-symbol alignment and fires the moment the
/// last `m` bits match `Sid` within `bthresh` errors, reporting the RSSI
/// over the matched window (the quantity compared against `Pthresh` for
/// the high-power alarm).
///
/// The sweep itself is the same blocked
/// [`MultiPhaseCorrelator`] stage the detector
/// uses (see the module docs for the two-stage pipeline); only the cold
/// stage differs — a rolling RSSI window and one [`SidMatcher`] per phase
/// instead of frame assembly.
#[derive(Debug, Clone)]
pub struct SidMonitor {
    /// Stage (a): the shared blocked multi-phase sweep kernel.
    corr: MultiPhaseCorrelator,
    matchers: Vec<SidMatcher>,
    /// Rolling power window covering one Sid length of samples.
    power_window: Vec<f64>,
    power_head: usize,
    power_sum: f64,
    sps: usize,
    next_tick: u64,
    /// Refractory: suppress duplicate detections (adjacent phases matching
    /// the same transmission) until this tick.
    holdoff_until: u64,
    /// True when matchers, accumulators and the power window are all in
    /// their freshly-reset state, so repeated [`SidMonitor::advance_silent`]
    /// calls can skip the O(window) reset work.
    in_reset_state: bool,
    /// Per-block scratch: completed-symbol tone energies from stage (a).
    e0: Vec<f64>,
    e1: Vec<f64>,
}

impl SidMonitor {
    /// Creates a monitor for `sid` (bit pattern) tolerating `bthresh`
    /// errors.
    pub fn new(params: FskParams, sid: Vec<u8>, bthresh: usize) -> Self {
        let sps = params.samples_per_symbol();
        let window_len = sid.len() * sps;
        SidMonitor {
            corr: detection_correlator(params),
            matchers: (0..sps)
                .map(|_| SidMatcher::new(sid.clone(), bthresh))
                .collect(),
            power_window: vec![0.0; window_len],
            power_head: 0,
            power_sum: 0.0,
            sps,
            next_tick: 0,
            holdoff_until: 0,
            in_reset_state: true,
            e0: Vec::new(),
            e1: Vec::new(),
        }
    }

    /// Consumes one block; returns the first detection in it, if any.
    pub fn push_block(&mut self, samples: &[C64]) -> Option<SidDetection> {
        if !samples.is_empty() {
            self.in_reset_state = false;
        }
        let mut detection = None;

        // Stage (a) — hot: the shared blocked sweep.
        self.e0.clear();
        self.e1.clear();
        let base0 = (self.next_tick % self.sps as u64) as usize;
        self.corr
            .process_block(samples, base0, &mut self.e0, &mut self.e1);

        // Stage (b) — cold: rolling RSSI + per-phase Sid matching.
        let e0s = std::mem::take(&mut self.e0);
        let e1s = std::mem::take(&mut self.e1);
        let mut phase = base0;
        for ((&s, &e0), &e1) in samples.iter().zip(e0s.iter()).zip(e1s.iter()) {
            let tick = self.next_tick;
            self.next_tick += 1;

            // Rolling power over the Sid window.
            let p = s.norm_sq();
            self.power_sum += p - self.power_window[self.power_head];
            self.power_window[self.power_head] = p;
            self.power_head = (self.power_head + 1) % self.power_window.len();

            phase = if phase + 1 == self.sps { 0 } else { phase + 1 };
            let bit = u8::from(e1 > e0);
            if self.matchers[phase].push(bit) && detection.is_none() && tick >= self.holdoff_until {
                detection = Some(SidDetection {
                    tick,
                    distance: self.matchers[phase].current_distance(),
                    mean_power: self.power_sum / self.power_window.len() as f64,
                });
                // Hold off for half a Sid so sibling phases don't
                // re-report the same transmission.
                self.holdoff_until = tick + (self.power_window.len() / 2) as u64;
            }
        }
        self.e0 = e0s;
        self.e1 = e1s;
        detection
    }

    /// Resets matchers (e.g. after the shield finishes jamming a signal).
    pub fn reset(&mut self) {
        for m in self.matchers.iter_mut() {
            m.reset();
        }
        self.corr.reset();
        // The power window is *not* cleared here, so the next silent
        // advance still has zeroing to do.
        self.in_reset_state = false;
    }

    /// Skips `n` samples of known silence without demodulating them
    /// (squelch: the shield's wideband monitor only pays for channels with
    /// energy on them). Equivalent to pushing `n` zero samples, except the
    /// matcher state is reset rather than fed noise bits.
    ///
    /// Consecutive silent advances are O(1): after the first call the
    /// monitor is already in the reset state, so only the sample clock
    /// moves. This matters — an idle wideband monitor calls this for every
    /// quiet channel every block, which made the reset loop the hottest
    /// code in the whole simulator before the flag was added.
    pub fn advance_silent(&mut self, n: u64) {
        if n == 0 {
            return;
        }
        self.next_tick += n;
        if self.in_reset_state {
            return;
        }
        self.reset();
        for p in self.power_window.iter_mut() {
            *p = 0.0;
        }
        self.power_sum = 0.0;
        self.power_head = 0;
        self.in_reset_state = true;
    }

    /// Current absolute sample tick.
    pub fn tick(&self) -> u64 {
        self.next_tick
    }
}

/// The pre-blocked (PR 1–4) streaming front ends, kept verbatim as the
/// bit-exactness reference for the blocked-correlator rewrite: the
/// equivalence property tests drive these and the production types on
/// identical streams and require identical output, bit for bit.
#[cfg(test)]
mod reference {
    use super::*;

    /// The historical per-sample dense phase sweep.
    ///
    /// Phase `p` reads matched-filter position `(tick - p) mod sps`; with
    /// `base = tick mod sps` that splits into two contiguous runs, so the
    /// loop is dense MACs with no modulo. Accumulates `s` into every
    /// phase's `(c0, c1)` and returns the one phase `p* = (base + 1) mod
    /// sps` that completes a symbol on this sample.
    fn sweep_phases(
        accum: &mut [(C64, C64)],
        mf_zero: &[C64],
        mf_one: &[C64],
        s: C64,
        base: usize,
    ) -> usize {
        let sps = accum.len();
        for (p, acc) in accum[..=base].iter_mut().enumerate() {
            let pos = base - p;
            acc.0 += s * mf_zero[pos];
            acc.1 += s * mf_one[pos];
        }
        for (off, acc) in accum[base + 1..].iter_mut().enumerate() {
            let pos = sps - 1 - off;
            acc.0 += s * mf_zero[pos];
            acc.1 += s * mf_one[pos];
        }
        (base + 1) % sps
    }

    /// The pre-blocked [`StreamingDetector`]: identical state machine,
    /// per-sample sweep.
    #[derive(Debug, Clone)]
    pub struct RefDetector {
        modem: FskModem,
        mf_zero: Vec<C64>,
        mf_one: Vec<C64>,
        accum: Vec<(C64, C64)>,
        phases: Vec<PhaseState>,
        lock: Option<LockState>,
        pending: Option<(u64, Vec<Candidate>)>,
        next_tick: u64,
    }

    impl RefDetector {
        pub fn new(params: FskParams, sync_errors_allowed: usize) -> Self {
            let modem = FskModem::new(params);
            let sps = params.samples_per_symbol();
            let mut pattern = Vec::with_capacity(SYNC_BITS);
            pattern.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
            pattern.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));
            let phases = (0..sps)
                .map(|_| PhaseState::new(SidMatcher::new(pattern.clone(), sync_errors_allowed)))
                .collect();
            RefDetector {
                mf_zero: tone_template(params, 0),
                mf_one: tone_template(params, 1),
                modem,
                accum: vec![(C64::ZERO, C64::ZERO); sps],
                phases,
                lock: None,
                pending: None,
                next_tick: 0,
            }
        }

        pub fn reset(&mut self) {
            self.lock = None;
            self.pending = None;
            for a in self.accum.iter_mut() {
                *a = (C64::ZERO, C64::ZERO);
            }
            for p in self.phases.iter_mut() {
                p.matcher.reset();
                p.clear_margins();
            }
        }

        pub fn push_block(&mut self, samples: &[C64]) -> Vec<DetectorEvent> {
            let sps = self.modem.params().samples_per_symbol();
            let mut events = Vec::new();
            for &s in samples {
                let tick = self.next_tick;
                self.next_tick += 1;

                if let Some(lock) = self.lock.as_mut() {
                    lock.power_sum += s.norm_sq();
                    lock.power_samples += 1;
                }

                let mut frame_completed = false;
                let base = (tick % sps as u64) as usize;
                {
                    let p = sweep_phases(&mut self.accum, &self.mf_zero, &self.mf_one, s, base);
                    let st = &mut self.phases[p];
                    let acc = &mut self.accum[p];
                    {
                        let e0 = acc.0.norm_sq();
                        let e1 = acc.1.norm_sq();
                        let bit = u8::from(e1 > e0);
                        st.push_margin((e1 - e0).abs());
                        *acc = (C64::ZERO, C64::ZERO);

                        match self.lock.as_mut() {
                            Some(lock) if lock.phase == p => {
                                lock.bits.push(bit);
                                if lock.total_bits.is_none()
                                    && lock.bits.len() >= LEN_FIELD_BIT + 16
                                {
                                    let mut len = 0usize;
                                    for i in 0..16 {
                                        len = (len << 1) | lock.bits[LEN_FIELD_BIT + i] as usize;
                                    }
                                    if len > MAX_PAYLOAD {
                                        len = MAX_PAYLOAD;
                                    }
                                    lock.total_bits = Some((OVERHEAD + len) * 8);
                                }
                                if let Some(total) = lock.total_bits {
                                    if lock.bits.len() >= total {
                                        let lock = self.lock.take().unwrap();
                                        let result = Frame::from_bits(&lock.bits);
                                        events.push(DetectorEvent::FrameDone {
                                            result,
                                            start_tick: lock.start_tick,
                                            end_tick: tick + 1,
                                            mean_power: if lock.power_samples > 0 {
                                                lock.power_sum / lock.power_samples as f64
                                            } else {
                                                0.0
                                            },
                                        });
                                        frame_completed = true;
                                    }
                                }
                            }
                            Some(_) => {}
                            None => {
                                let fired = st.matcher.push(bit);
                                match self.pending.as_mut() {
                                    Some((_, candidates)) => {
                                        for c in candidates.iter_mut() {
                                            if c.phase == p && c.fire_tick < tick {
                                                c.bits_since.push(bit);
                                            }
                                        }
                                        if fired && !candidates.iter().any(|c| c.phase == p) {
                                            candidates.push(Candidate {
                                                phase: p,
                                                distance: st.matcher.current_distance(),
                                                quality: st.margin_sum,
                                                fire_tick: tick,
                                                bits_since: Vec::new(),
                                            });
                                        }
                                    }
                                    None => {
                                        if fired {
                                            self.pending = Some((
                                                tick + sps as u64,
                                                vec![Candidate {
                                                    phase: p,
                                                    distance: st.matcher.current_distance(),
                                                    quality: st.margin_sum,
                                                    fire_tick: tick,
                                                    bits_since: Vec::new(),
                                                }],
                                            ));
                                        }
                                    }
                                }
                            }
                        }
                    }
                }
                if frame_completed {
                    for q in self.phases.iter_mut() {
                        q.matcher.reset();
                    }
                    self.pending = None;
                }
                if let Some((deadline, _)) = self.pending {
                    if tick + 1 >= deadline && self.lock.is_none() {
                        let (_, mut candidates) = self.pending.take().unwrap();
                        candidates.sort_by(|a, b| {
                            a.distance
                                .cmp(&b.distance)
                                .then(b.quality.partial_cmp(&a.quality).unwrap())
                        });
                        let winner = candidates.into_iter().next().unwrap();
                        let start_tick =
                            (winner.fire_tick + 1).saturating_sub((SYNC_BITS * sps) as u64);
                        let mut bits = Vec::with_capacity(SYNC_BITS + winner.bits_since.len());
                        bits.extend_from_slice(&crate::bits::bytes_to_bits(&PREAMBLE));
                        bits.extend_from_slice(&crate::bits::bytes_to_bits(&SYNC_WORD));
                        bits.extend_from_slice(&winner.bits_since);
                        self.lock = Some(LockState {
                            phase: winner.phase,
                            start_tick,
                            bits,
                            total_bits: None,
                            power_sum: 0.0,
                            power_samples: 0,
                        });
                        events.push(DetectorEvent::SyncFound { start_tick });
                    }
                }
            }
            events
        }
    }

    /// The pre-blocked [`SidMonitor`]: identical trigger logic, per-sample
    /// sweep.
    #[derive(Debug, Clone)]
    pub struct RefSidMonitor {
        mf_zero: Vec<C64>,
        mf_one: Vec<C64>,
        accum: Vec<(C64, C64)>,
        matchers: Vec<SidMatcher>,
        power_window: Vec<f64>,
        power_head: usize,
        power_sum: f64,
        sps: usize,
        next_tick: u64,
        holdoff_until: u64,
        in_reset_state: bool,
    }

    impl RefSidMonitor {
        pub fn new(params: FskParams, sid: Vec<u8>, bthresh: usize) -> Self {
            let sps = params.samples_per_symbol();
            let window_len = sid.len() * sps;
            RefSidMonitor {
                mf_zero: tone_template(params, 0),
                mf_one: tone_template(params, 1),
                accum: vec![(C64::ZERO, C64::ZERO); sps],
                matchers: (0..sps)
                    .map(|_| SidMatcher::new(sid.clone(), bthresh))
                    .collect(),
                power_window: vec![0.0; window_len],
                power_head: 0,
                power_sum: 0.0,
                sps,
                next_tick: 0,
                holdoff_until: 0,
                in_reset_state: true,
            }
        }

        pub fn push_block(&mut self, samples: &[C64]) -> Option<SidDetection> {
            if !samples.is_empty() {
                self.in_reset_state = false;
            }
            let mut detection = None;
            for &s in samples {
                let tick = self.next_tick;
                self.next_tick += 1;

                let p = s.norm_sq();
                self.power_sum += p - self.power_window[self.power_head];
                self.power_window[self.power_head] = p;
                self.power_head = (self.power_head + 1) % self.power_window.len();

                let base = (tick % self.sps as u64) as usize;
                {
                    let phase = sweep_phases(&mut self.accum, &self.mf_zero, &self.mf_one, s, base);
                    let (c0, c1) = self.accum[phase];
                    let bit = u8::from(c1.norm_sq() > c0.norm_sq());
                    self.accum[phase] = (C64::ZERO, C64::ZERO);
                    if self.matchers[phase].push(bit)
                        && detection.is_none()
                        && tick >= self.holdoff_until
                    {
                        detection = Some(SidDetection {
                            tick,
                            distance: self.matchers[phase].current_distance(),
                            mean_power: self.power_sum / self.power_window.len() as f64,
                        });
                        self.holdoff_until = tick + (self.power_window.len() / 2) as u64;
                    }
                }
            }
            detection
        }

        pub fn reset(&mut self) {
            for m in self.matchers.iter_mut() {
                m.reset();
            }
            for a in self.accum.iter_mut() {
                *a = (C64::ZERO, C64::ZERO);
            }
            self.in_reset_state = false;
        }

        pub fn advance_silent(&mut self, n: u64) {
            if n == 0 {
                return;
            }
            self.next_tick += n;
            if self.in_reset_state {
                return;
            }
            self.reset();
            for p in self.power_window.iter_mut() {
                *p = 0.0;
            }
            self.power_sum = 0.0;
            self.power_head = 0;
            self.in_reset_state = true;
        }

        pub fn tick(&self) -> u64 {
            self.next_tick
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::{identifying_sequence, FrameType, Serial};
    use hb_dsp::noise::white_noise;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn params() -> FskParams {
        FskParams::mics_default()
    }

    fn make_frame(payload: Vec<u8>) -> Frame {
        Frame::new(
            Serial::from_str_padded("VIRTUOSO01"),
            FrameType::Command,
            1,
            payload,
        )
    }

    fn frames_from(events: &[DetectorEvent]) -> Vec<&DetectorEvent> {
        events
            .iter()
            .filter(|e| matches!(e, DetectorEvent::FrameDone { .. }))
            .collect()
    }

    #[test]
    fn detects_clean_frame_in_blocks() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![1, 2, 3]);
        let mut sig = vec![C64::ZERO; 100];
        sig.extend(modem.modulate(&frame.to_bits()));
        sig.extend(vec![C64::ZERO; 200]);

        let mut det = StreamingDetector::new(params(), 4);
        let mut events = Vec::new();
        for block in sig.chunks(16) {
            events.extend(det.push_block(block));
        }
        let frames = frames_from(&events);
        assert_eq!(frames.len(), 1);
        if let DetectorEvent::FrameDone {
            result,
            start_tick,
            end_tick,
            mean_power,
        } = frames[0]
        {
            assert_eq!(result.as_ref().unwrap(), &frame);
            // Start within one symbol of the true position.
            assert!(
                (*start_tick as i64 - 100).unsigned_abs() <= 24,
                "start {start_tick}"
            );
            assert!(*end_tick > *start_tick);
            assert!(*mean_power > 0.5, "power {mean_power}");
        }
    }

    #[test]
    fn block_size_does_not_matter() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![9; 5]);
        let mut sig = vec![C64::ZERO; 37];
        sig.extend(modem.modulate(&frame.to_bits()));
        sig.extend(vec![C64::ZERO; 64]);

        for block_size in [1usize, 7, 16, 64] {
            let mut det = StreamingDetector::new(params(), 4);
            let mut got = 0;
            for block in sig.chunks(block_size) {
                for e in det.push_block(block) {
                    if let DetectorEvent::FrameDone { result, .. } = e {
                        assert_eq!(result.unwrap(), frame);
                        got += 1;
                    }
                }
            }
            assert_eq!(got, 1, "block size {block_size}");
        }
    }

    #[test]
    fn detects_frame_in_noise() {
        let modem = FskModem::new(params());
        let mut rng = StdRng::seed_from_u64(3);
        let frame = make_frame(vec![7; 8]);
        let clean = modem.modulate(&frame.to_bits());
        let mut sig = white_noise(&mut rng, 500, 0.001);
        sig.extend(
            clean
                .iter()
                .map(|&s| s + white_noise(&mut rng, 1, 0.001)[0]),
        );
        sig.extend(white_noise(&mut rng, 500, 0.001));

        let mut det = StreamingDetector::new(params(), 4);
        let mut decoded = None;
        for block in sig.chunks(16) {
            for e in det.push_block(block) {
                if let DetectorEvent::FrameDone { result, .. } = e {
                    decoded = Some(result);
                }
            }
        }
        assert_eq!(decoded.unwrap().unwrap(), frame);
    }

    #[test]
    fn jammed_tail_yields_bad_crc() {
        // Sync arrives clean, then strong noise covers the rest: the
        // detector must still terminate and report a CRC failure — the
        // mechanism by which jamming neutralizes commands.
        let modem = FskModem::new(params());
        let mut rng = StdRng::seed_from_u64(4);
        let frame = make_frame(vec![0xEE; 6]);
        let clean = modem.modulate(&frame.to_bits());
        let sync_samples = 80 * 24; // preamble+sync+serial region stays clean
        let mut sig: Vec<C64> = clean[..sync_samples].to_vec();
        let jam = white_noise(&mut rng, clean.len() - sync_samples, 30.0);
        sig.extend(clean[sync_samples..].iter().zip(&jam).map(|(&s, &j)| s + j));
        // Enough trailing silence for the detector to collect a full
        // max-length frame even if the jammed length field reads as the
        // maximum.
        sig.extend(vec![C64::ZERO; 2000]);

        let mut det = StreamingDetector::new(params(), 4);
        let mut outcome = None;
        for block in sig.chunks(16) {
            for e in det.push_block(block) {
                if let DetectorEvent::FrameDone { result, .. } = e {
                    outcome = Some(result);
                }
            }
        }
        match outcome {
            Some(Err(_)) => {} // CRC (or length) failure: command neutralized
            Some(Ok(f)) => panic!("jammed frame decoded successfully: {f:?}"),
            None => panic!("detector never terminated"),
        }
    }

    #[test]
    fn no_events_in_pure_noise() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut det = StreamingDetector::new(params(), 4);
        let sig = white_noise(&mut rng, 50_000, 1.0);
        let mut events = Vec::new();
        for block in sig.chunks(16) {
            events.extend(det.push_block(block));
        }
        // Random noise can occasionally fire a sync (48-bit pattern with
        // 4-bit tolerance), but it must never produce a *valid* frame.
        for e in events {
            if let DetectorEvent::FrameDone { result, .. } = e {
                assert!(result.is_err(), "noise decoded as a valid frame");
            }
        }
    }

    #[test]
    fn back_to_back_frames_both_found() {
        let modem = FskModem::new(params());
        let f1 = make_frame(vec![1]);
        let f2 = make_frame(vec![2, 2]);
        let mut sig = vec![C64::ZERO; 48];
        sig.extend(modem.modulate(&f1.to_bits()));
        sig.extend(vec![C64::ZERO; 240]); // 10-symbol gap
        sig.extend(modem.modulate(&f2.to_bits()));
        sig.extend(vec![C64::ZERO; 600]);

        let mut det = StreamingDetector::new(params(), 4);
        let mut got = Vec::new();
        for block in sig.chunks(16) {
            for e in det.push_block(block) {
                if let DetectorEvent::FrameDone { result, .. } = e {
                    got.push(result.unwrap());
                }
            }
        }
        assert_eq!(got, vec![f1, f2]);
    }

    #[test]
    fn reset_abandons_lock() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![5; 4]);
        let sig = modem.modulate(&frame.to_bits());
        let mut det = StreamingDetector::new(params(), 4);
        // Feed only the first half, then reset.
        det.push_block(&sig[..sig.len() / 2]);
        assert!(det.is_locked());
        det.reset();
        assert!(!det.is_locked());
        // Feeding the second half alone must not produce a frame.
        let events = det.push_block(&sig[sig.len() / 2..]);
        assert!(frames_from(&events).is_empty());
    }

    #[test]
    fn tick_counts_samples() {
        let mut det = StreamingDetector::new(params(), 4);
        det.push_block(&vec![C64::ZERO; 100]);
        assert_eq!(det.tick(), 100);
    }

    // --- Blocked-rewrite edge cases ---

    /// Compares two event streams requiring bit-level equality (including
    /// the `mean_power` float, which `PartialEq` would compare by value).
    fn assert_events_bit_identical(a: &[DetectorEvent], b: &[DetectorEvent]) {
        assert_eq!(a.len(), b.len(), "event count: {a:?} vs {b:?}");
        for (x, y) in a.iter().zip(b.iter()) {
            match (x, y) {
                (
                    DetectorEvent::SyncFound { start_tick: s1 },
                    DetectorEvent::SyncFound { start_tick: s2 },
                ) => assert_eq!(s1, s2),
                (
                    DetectorEvent::FrameDone {
                        result: r1,
                        start_tick: s1,
                        end_tick: t1,
                        mean_power: p1,
                    },
                    DetectorEvent::FrameDone {
                        result: r2,
                        start_tick: s2,
                        end_tick: t2,
                        mean_power: p2,
                    },
                ) => {
                    assert_eq!(r1, r2);
                    assert_eq!(s1, s2);
                    assert_eq!(t1, t2);
                    assert_eq!(p1.to_bits(), p2.to_bits(), "mean_power {p1} vs {p2}");
                }
                _ => panic!("event kind mismatch: {x:?} vs {y:?}"),
            }
        }
    }

    #[test]
    fn sync_match_straddling_a_block_boundary() {
        // Split the stream exactly around the sync-fire tick and the
        // arbitration window that follows it: the carried accumulators and
        // the pending-candidate state must survive the boundary, producing
        // the same events as a single push.
        let modem = FskModem::new(params());
        let frame = make_frame(vec![0xA5; 4]);
        let mut sig = vec![C64::ZERO; 30];
        sig.extend(modem.modulate(&frame.to_bits()));
        sig.extend(vec![C64::ZERO; 300]);

        let mut whole = StreamingDetector::new(params(), 4);
        let whole_events = whole.push_block(&sig);
        assert_eq!(frames_from(&whole_events).len(), 1, "baseline must decode");

        // The sync pattern's last symbol lands near 30 + SYNC_BITS·24.
        let fire = 30 + SYNC_BITS * 24;
        for split in [fire - 25, fire - 1, fire, fire + 1, fire + 12, fire + 23] {
            let mut det = StreamingDetector::new(params(), 4);
            let mut events = det.push_block(&sig[..split]);
            events.extend(det.push_block(&sig[split..]));
            assert_events_bit_identical(&events, &whole_events);
        }
    }

    #[test]
    fn competing_phases_in_one_arbitration_window() {
        // Over a clean frame with a silent lead-in, nearly *every* phase
        // matches the sync pattern in the same one-symbol window (22 of 24
        // tie at distance 0 here — silence decodes identically at every
        // alignment), so the tone-separation quality tie-break alone must
        // pick an alignment clean enough to decode the frame, and the
        // window must still collapse to exactly one lock.
        let modem = FskModem::new(params());
        let frame = make_frame(vec![3, 1, 4, 1, 5]);
        let mut sig = vec![C64::ZERO; 55];
        sig.extend(modem.modulate(&frame.to_bits()));
        sig.extend(vec![C64::ZERO; 300]);

        let mut det = StreamingDetector::new(params(), 6);
        let mut syncs = 0;
        let mut got = Vec::new();
        for block in sig.chunks(16) {
            for e in det.push_block(block) {
                match e {
                    DetectorEvent::SyncFound { .. } => syncs += 1,
                    DetectorEvent::FrameDone { result, .. } => got.push(result.unwrap()),
                }
            }
        }
        assert_eq!(syncs, 1, "arbitration must produce exactly one lock");
        assert_eq!(got, vec![frame]);

        // At an extreme tolerance the whole window fires a full bit early
        // (distance ~8 candidates, none perfectly aligned) — the harshest
        // arbitration input; pin it bit-identically to the reference.
        let mut a = StreamingDetector::new(params(), 12);
        let mut b = reference::RefDetector::new(params(), 12);
        for block in sig.chunks(7) {
            assert_events_bit_identical(&a.push_block(block), &b.push_block(block));
        }
    }

    #[test]
    fn truncated_final_block_leaves_detector_locked() {
        // The stream ends mid-frame: no FrameDone may be emitted, the lock
        // must persist, and feeding the remainder later must complete the
        // frame exactly as an unbroken stream would.
        let modem = FskModem::new(params());
        let frame = make_frame(vec![0x42; 7]);
        let sig = modem.modulate(&frame.to_bits());
        let cut = sig.len() - 5 * 24; // truncate the last 5 symbols

        let mut det = StreamingDetector::new(params(), 4);
        let events = det.push_block(&sig[..cut]);
        assert!(
            frames_from(&events).is_empty(),
            "no frame from a truncation"
        );
        assert!(det.is_locked(), "lock must survive a truncated block");
        assert_eq!(det.tick(), cut as u64);

        let tail_events = det.push_block(&sig[cut..]);
        let frames = frames_from(&tail_events);
        assert_eq!(frames.len(), 1);
        if let DetectorEvent::FrameDone { result, .. } = frames[0] {
            assert_eq!(result.as_ref().unwrap(), &frame);
        }
    }

    #[test]
    fn empty_block_is_a_no_op() {
        let mut det = StreamingDetector::new(params(), 4);
        assert!(det.push_block(&[]).is_empty());
        assert_eq!(det.tick(), 0);
        let mut mon = SidMonitor::new(params(), sid(), 4);
        assert_eq!(mon.push_block(&[]), None);
        assert_eq!(mon.tick(), 0);
    }

    // --- SidMonitor ---

    fn sid() -> Vec<u8> {
        identifying_sequence(Serial::from_str_padded("VIRTUOSO01"))
    }

    #[test]
    fn sid_monitor_fires_on_matching_frame() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![1, 2, 3]);
        let mut sig = vec![C64::ZERO; 100];
        sig.extend(modem.modulate(&frame.to_bits()));
        sig.extend(vec![C64::ZERO; 100]);

        let mut mon = SidMonitor::new(params(), sid(), 4);
        let mut hits = Vec::new();
        for block in sig.chunks(16) {
            if let Some(d) = mon.push_block(block) {
                hits.push(d);
            }
        }
        assert_eq!(hits.len(), 1, "expected exactly one detection: {hits:?}");
        // Detection lands right as the Sid (first 128 bits) completes:
        // 100 + 128 symbols in.
        let expected = 100 + 128 * 24;
        assert!(
            (hits[0].tick as i64 - expected as i64).unsigned_abs() <= 48,
            "tick {} vs {expected}",
            hits[0].tick
        );
        assert!(hits[0].distance <= 4);
        // Signal at unit power: window mean power near 1 (part of the
        // window may include leading silence at the margin).
        assert!(hits[0].mean_power > 0.8, "power {}", hits[0].mean_power);
    }

    #[test]
    fn sid_monitor_ignores_other_device() {
        let modem = FskModem::new(params());
        let other = Frame::new(
            Serial::from_str_padded("CONCERTO02"),
            FrameType::Command,
            1,
            vec![4, 5],
        );
        let mut sig = modem.modulate(&other.to_bits());
        sig.extend(vec![C64::ZERO; 200]);
        let mut mon = SidMonitor::new(params(), sid(), 4);
        for block in sig.chunks(16) {
            assert_eq!(mon.push_block(block), None);
        }
    }

    #[test]
    fn sid_monitor_fires_mid_packet_not_at_end() {
        // The point of active protection: detection happens as soon as the
        // header passes, leaving the rest of the packet to jam.
        let modem = FskModem::new(params());
        let frame = make_frame(vec![9; 10]); // max-length frame
        let sig = modem.modulate(&frame.to_bits());
        let frame_end = sig.len() as u64;

        let mut mon = SidMonitor::new(params(), sid(), 4);
        let mut hit = None;
        for block in sig.chunks(16) {
            if let Some(d) = mon.push_block(block) {
                hit = Some(d);
                break;
            }
        }
        let d = hit.expect("must detect");
        assert!(
            d.tick < frame_end - 50 * 24,
            "detection at {} should precede frame end {frame_end} by ~100 bits",
            d.tick
        );
    }

    #[test]
    fn sid_monitor_power_tracks_rssi() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![1]);
        let amp = 0.1; // -20 dBm
        let sig: Vec<C64> = modem
            .modulate(&frame.to_bits())
            .into_iter()
            .map(|s| s.scale(amp))
            .collect();
        let mut padded = vec![C64::ZERO; 24 * 128]; // ensure window is full of signal at fire time? no: prepad zeros
        padded.extend(sig);
        let mut mon = SidMonitor::new(params(), sid(), 4);
        let mut hit = None;
        for block in padded.chunks(16) {
            if let Some(d) = mon.push_block(block) {
                hit = Some(d);
            }
        }
        let d = hit.unwrap();
        // Window covers exactly the Sid portion of the signal.
        assert!(
            (hb_dsp::units::db_from_ratio(d.mean_power) - (-20.0)).abs() < 1.5,
            "rssi {} dB",
            hb_dsp::units::db_from_ratio(d.mean_power)
        );
    }

    #[test]
    fn sid_monitor_no_false_positives_in_noise() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut mon = SidMonitor::new(params(), sid(), 4);
        let sig = white_noise(&mut rng, 200_000, 1.0);
        for block in sig.chunks(16) {
            assert_eq!(mon.push_block(block), None);
        }
    }

    #[test]
    fn sid_monitor_reset_and_redetect() {
        let modem = FskModem::new(params());
        let frame = make_frame(vec![7]);
        let sig = modem.modulate(&frame.to_bits());
        let mut mon = SidMonitor::new(params(), sid(), 4);
        let mut count = 0;
        for _ in 0..3 {
            for block in sig.chunks(16) {
                if mon.push_block(block).is_some() {
                    count += 1;
                }
            }
            mon.reset();
            // Inter-packet silence.
            for block in vec![C64::ZERO; 5000].chunks(16) {
                mon.push_block(block);
            }
        }
        assert_eq!(count, 3);
    }

    // --- Old-vs-new equivalence (the blocked-correlator invariant) ---

    mod equivalence {
        use super::*;
        use proptest::prelude::*;

        /// Parameter sets with different samples-per-symbol counts.
        fn param_set(i: usize) -> FskParams {
            let bitrate = [12.5e3, 25e3, 50e3][i % 3]; // sps 24, 12, 6
            FskParams {
                fs_hz: 300e3,
                bitrate,
                deviation_hz: 50e3,
            }
        }

        /// A frame embedded in noise, with noisy lead-in and tail.
        fn build_stream(
            p: FskParams,
            seed: u64,
            payload: &[u8],
            noise_power: f64,
            lead: usize,
        ) -> Vec<C64> {
            let modem = FskModem::new(p);
            let frame = make_frame(payload.to_vec());
            let clean = modem.modulate(&frame.to_bits());
            let mut rng = StdRng::seed_from_u64(seed);
            let mut sig = white_noise(&mut rng, lead, noise_power);
            let overlay = white_noise(&mut rng, clean.len(), noise_power);
            sig.extend(clean.iter().zip(&overlay).map(|(&a, &b)| a + b));
            sig.extend(white_noise(&mut rng, 3000, noise_power));
            sig
        }

        proptest! {
            /// The rewritten detector emits bit-identical events to the
            /// pre-blocked reference on the same stream, at any chunking.
            #[test]
            fn detector_matches_reference(
                seed in 0u64..1_000_000,
                pset in 0usize..3,
                payload_len in 0usize..=MAX_PAYLOAD,
                noise_db in -40.0f64..6.0,
                block_idx in 0usize..6,
            ) {
                let block = [1usize, 5, 16, 24, 37, 160][block_idx];
                let p = param_set(pset);
                let noise = hb_dsp::units::ratio_from_db(noise_db);
                let sig = build_stream(p, seed, &vec![0x5Au8; payload_len], noise, 211);
                let mut new = StreamingDetector::new(p, 4);
                let mut old = reference::RefDetector::new(p, 4);
                let mut did_reset = false;
                for chunk in sig.chunks(block) {
                    let a = new.push_block(chunk);
                    let b = old.push_block(chunk);
                    assert_events_bit_identical(&a, &b);
                    // Once the frame region is past, exercise reset too.
                    if !did_reset && new.tick() as usize >= sig.len().saturating_sub(1000) {
                        new.reset();
                        old.reset();
                        did_reset = true;
                    }
                }
            }

            /// Same for the Sid monitor, including reset/advance_silent
            /// interleavings (the squelch path the wideband shield uses).
            #[test]
            fn sid_monitor_matches_reference(
                seed in 0u64..1_000_000,
                pset in 0usize..3,
                noise_db in -40.0f64..6.0,
                block_idx in 0usize..4,
                silent_gap in 0u64..4000,
            ) {
                let block = [1usize, 16, 24, 100][block_idx];
                let p = param_set(pset);
                let noise = hb_dsp::units::ratio_from_db(noise_db);
                let sig = build_stream(p, seed, &[7, 7], noise, 137);
                let mut new = SidMonitor::new(p, sid(), 4);
                let mut old = reference::RefSidMonitor::new(p, sid(), 4);
                for (i, chunk) in sig.chunks(block).enumerate() {
                    let a = new.push_block(chunk);
                    let b = old.push_block(chunk);
                    match (a, b) {
                        (None, None) => {}
                        (Some(x), Some(y)) => {
                            prop_assert_eq!(x.tick, y.tick);
                            prop_assert_eq!(x.distance, y.distance);
                            prop_assert_eq!(x.mean_power.to_bits(), y.mean_power.to_bits());
                        }
                        (x, y) => prop_assert!(false, "detection mismatch: {:?} vs {:?}", x, y),
                    }
                    // Exercise the squelch/reset paths mid-stream.
                    if i == 7 {
                        new.reset();
                        old.reset();
                    }
                    if i == 11 {
                        new.advance_silent(silent_gap);
                        old.advance_silent(silent_gap);
                        prop_assert_eq!(new.tick(), old.tick());
                    }
                }
            }
        }
    }
}
