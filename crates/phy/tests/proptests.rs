//! Property-based tests for the PHY layer.

use hb_phy::bits::{bit_error_rate, bits_to_bytes, bytes_to_bits};
use hb_phy::crc::{append_crc16, crc16_ccitt, verify_crc16};
use hb_phy::fsk::{FskModem, FskParams};
use hb_phy::gmsk::{GmskModem, GmskParams};
use hb_phy::ofdm::{OfdmModem, OfdmParams};
use hb_phy::packet::{Frame, FrameType, Serial, MAX_PAYLOAD};
use hb_phy::stream::{DetectorEvent, StreamingDetector};
use proptest::prelude::*;

proptest! {
    /// FSK is a faithful channel at infinite SNR for any bit pattern.
    #[test]
    fn fsk_modem_identity(bits in prop::collection::vec(0u8..2, 1..300)) {
        let m = FskModem::new(FskParams::mics_default());
        prop_assert_eq!(m.demodulate(&m.modulate(&bits)), bits);
    }

    /// GMSK recovers interior bits cleanly for any pattern.
    #[test]
    fn gmsk_interior_identity(bits in prop::collection::vec(0u8..2, 8..120)) {
        let m = GmskModem::new(GmskParams {
            fs_hz: 300e3,
            bitrate: 30e3,
            bt: 0.5,
        });
        let rx = m.demodulate(&m.modulate(&bits));
        // Skip pulse-span edges.
        let ber = bit_error_rate(&bits[2..bits.len() - 2], &rx[2..bits.len() - 2]);
        prop_assert!(ber < 0.02, "ber {}", ber);
    }

    /// OFDM round-trips any bit pattern through a random flat channel.
    #[test]
    fn ofdm_flat_channel_identity(
        bits in prop::collection::vec(0u8..2, 1..512),
        gain in 0.2f64..2.0,
        phase in -3.1f64..3.1,
    ) {
        let m = OfdmModem::new(OfdmParams::small());
        let h = hb_dsp::C64::from_polar(gain, phase);
        let tx = m.modulate(&bits);
        let rx_sig: Vec<hb_dsp::C64> = tx.iter().map(|&s| s * h).collect();
        let rx = m.demodulate(&rx_sig);
        prop_assert_eq!(&rx[..bits.len()], &bits[..]);
    }

    /// CRC is order-sensitive and deterministic.
    #[test]
    fn crc_deterministic(data in prop::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(crc16_ccitt(&data), crc16_ccitt(&data));
        let mut framed = data;
        append_crc16(&mut framed);
        prop_assert!(verify_crc16(&framed));
    }

    /// Any byte swap in the body breaks the CRC.
    #[test]
    fn crc_detects_swaps(
        data in prop::collection::vec(any::<u8>(), 2..64),
        i in any::<prop::sample::Index>(),
        j in any::<prop::sample::Index>(),
    ) {
        let a = i.index(data.len());
        let b = j.index(data.len());
        prop_assume!(a != b && data[a] != data[b]);
        let mut framed = data.clone();
        append_crc16(&mut framed);
        framed.swap(a, b);
        prop_assert!(!verify_crc16(&framed));
    }

    /// Bit packing round-trips and is length-preserving.
    #[test]
    fn bit_packing(bytes in prop::collection::vec(any::<u8>(), 0..200)) {
        let bits = bytes_to_bits(&bytes);
        prop_assert_eq!(bits.len(), bytes.len() * 8);
        prop_assert_eq!(bits_to_bytes(&bits), bytes);
    }

    /// The blocked FSK demodulator is bit-identical to the textbook scalar
    /// matched-filter walk for any sps/deviation/buffer (the equivalence
    /// guarantee that keeps the golden suite pinned across the rewrite).
    #[test]
    fn fsk_demod_equivalence_with_scalar_walk(
        sps in 1usize..32,
        dev_idx in 0usize..4,
        samples in prop::collection::vec(
            (-3.0f64..3.0, -3.0f64..3.0).prop_map(|(re, im)| hb_dsp::C64::new(re, im)),
            0..1200,
        ),
    ) {
        use std::f64::consts::PI;
        let deviation = [0.0f64, 12_347.0, 50e3, 149e3][dev_idx];
        let fs = 300e3;
        let params = FskParams { fs_hz: fs, bitrate: fs / sps as f64, deviation_hz: deviation };
        let modem = FskModem::new(params);
        // Scalar reference: per symbol, correlate against both conjugated
        // tone tables in sample order, pick the larger energy.
        let make = |f: f64| -> Vec<hb_dsp::C64> {
            (0..sps).map(|n| hb_dsp::C64::cis(-2.0 * PI * f * n as f64 / fs)).collect()
        };
        let (mf0, mf1) = (make(-deviation), make(deviation));
        let mut hard = Vec::new();
        let mut soft = Vec::new();
        for sym in samples.chunks_exact(sps) {
            let mut c0 = hb_dsp::C64::ZERO;
            let mut c1 = hb_dsp::C64::ZERO;
            for (i, &x) in sym.iter().enumerate() {
                c0 += x * mf0[i];
                c1 += x * mf1[i];
            }
            let (e0, e1) = (c0.norm_sq(), c1.norm_sq());
            hard.push(u8::from(e1 > e0));
            let total = e0 + e1;
            soft.push(if total > 0.0 { (e1 - e0) / total } else { 0.0 });
        }
        prop_assert_eq!(modem.demodulate(&samples), hard);
        let got_soft = modem.demodulate_soft(&samples);
        prop_assert_eq!(got_soft.len(), soft.len());
        for (a, b) in got_soft.iter().zip(&soft) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// The streaming detector finds any frame embedded in silence, at any
    /// offset and block size, and reproduces it exactly.
    #[test]
    fn streaming_detector_finds_any_frame(
        payload in prop::collection::vec(any::<u8>(), 0..=MAX_PAYLOAD),
        serial in prop::array::uniform10(any::<u8>()),
        offset in 0usize..100,
        block in 1usize..64,
    ) {
        let m = FskModem::new(FskParams::mics_default());
        let frame = Frame::new(Serial(serial), FrameType::Command, 3, payload);
        let mut sig = vec![hb_dsp::C64::ZERO; offset];
        sig.extend(m.modulate(&frame.to_bits()));
        sig.extend(vec![hb_dsp::C64::ZERO; 3000]);

        let mut det = StreamingDetector::new(FskParams::mics_default(), 4);
        let mut found = None;
        for chunk in sig.chunks(block) {
            for e in det.push_block(chunk) {
                if let DetectorEvent::FrameDone { result, .. } = e {
                    found = Some(result);
                }
            }
        }
        prop_assert_eq!(found.unwrap().unwrap(), frame);
    }
}
