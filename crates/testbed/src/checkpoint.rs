//! Crash-safe run infrastructure: the versioned, integrity-checked
//! journal the adaptive Monte-Carlo engine checkpoints into, atomic file
//! I/O for every artifact, the per-run control block drivers install, and
//! the deterministic fault-injection harness behind `HB_FAULT`.
//!
//! # Why this exists
//!
//! Population-scale studies mean runs long enough that crashes, OOM
//! kills, and per-trial panics are the common case. The engine's
//! prefix-stable [`trial_seed`](crate::montecarlo::trial_seed) stream was
//! designed as the checkpointing primitive: because trial `i`'s seed
//! depends only on `(master, i)`, a run resumed from pooled counts at any
//! round boundary replays the exact schedule an uninterrupted run would
//! have followed and lands on the bit-identical
//! [`Estimate`](crate::montecarlo::Estimate), at any `HB_THREADS`.
//!
//! # Journal format (version 1)
//!
//! A journal is a single text file, one per adaptive call, rewritten
//! atomically after every doubling round:
//!
//! ```text
//! hbjournal v1 len=<payload bytes> sum=<fnv1a64 of payload, hex>
//! engine=<engine version>
//! master=<master seed>
//! cfg=<initial> <max> <target bits hex> <z bits hex> <resamples>
//! done=<trial tasks completed (= next trial index)>
//! kind=proportions k=<K>        (or: kind=mean k=<samples>)
//! pool <successes> <trials>     (K lines; or: sample <f64 bits hex>)
//! quar <index> <seed> <escaped panic message>   (zero or more)
//! ```
//!
//! The header's length + checksum detect torn writes: *any* decode
//! failure — truncation, bit rot, version or config mismatch — makes
//! [`Journal::load`] return `None` and the engine restarts that call from
//! scratch. A wrong resume is never possible; the worst corruption can do
//! is cost the completed rounds.
//!
//! # Fault injection
//!
//! `HB_FAULT` is parsed once per process ([`fault`]) and costs nothing
//! when unset:
//!
//! * `panic:<trial>` — panic inside every adaptive call's trial at that
//!   global index (exercises quarantine).
//! * `crash_after_round:<n>` — `exit(86)` after the `n`-th journal write
//!   process-wide (simulates a kill between rounds; CI resumes and
//!   byte-compares the artifact against an uninterrupted run).
//! * `io_fail:<substr>` — [`atomic_write`] fails for any path containing
//!   the substring (exercises write-failure exit codes).

use hb_dsp::checksum::fnv1a64;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// On-disk journal format version (the `v1` in the header).
pub const JOURNAL_VERSION: u32 = 1;

/// Version of the adaptive engine's round schedule and pooling semantics.
/// A journal written by a different engine version is never resumed —
/// bumping this constant is how a future PR invalidates old journals.
pub const ENGINE_VERSION: u32 = 1;

/// Process exit code of a `crash_after_round` injected crash — distinct
/// from real failures so tests can assert the crash was the injected one.
pub const CRASH_EXIT_CODE: u8 = 86;

/// A quarantined trial: the engine caught its panic, recorded it here,
/// and completed the run without it. `index` and `seed` are enough to
/// replay the exact failing trial in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quarantine {
    /// Global trial index within the adaptive call.
    pub index: u64,
    /// The derived per-trial seed (replay key).
    pub seed: u64,
    /// The panic payload, as text.
    pub message: String,
}

/// The per-kind body of a journal: pooled proportion counts or the raw
/// sample vector of a mean run.
#[derive(Debug, Clone, PartialEq)]
pub enum JournalKind {
    /// Pooled `(successes, trials)` pairs, one per tracked proportion.
    Proportions(Vec<(u64, u64)>),
    /// Completed samples of an adaptive-mean run, in trial order.
    Mean(Vec<f64>),
}

/// Sizing fingerprint stored in the journal: a resume with a *different*
/// config would follow a different round schedule, so the engine refuses
/// it (decode returns the journal, [`Journal::matches`] rejects it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct JournalCfg {
    /// First-round size.
    pub initial_trials: usize,
    /// Trial cap.
    pub max_trials: usize,
    /// Target CI half-width (compared bit-exactly).
    pub target_half_width: f64,
    /// Interval z-score (compared bit-exactly).
    pub z: f64,
    /// Bootstrap resamples (mean runs).
    pub bootstrap_resamples: usize,
}

/// One adaptive call's checkpoint: everything needed to resume the run
/// bit-identically — pooled state, next trial index, master seed, engine
/// version (implicit in the format), and the quarantine record.
#[derive(Debug, Clone, PartialEq)]
pub struct Journal {
    /// Master seed of the adaptive call.
    pub master: u64,
    /// Sizing fingerprint of the run that wrote the journal.
    pub cfg: JournalCfg,
    /// Trial tasks completed — also the next global trial index.
    pub done: u64,
    /// Pooled counts or samples.
    pub kind: JournalKind,
    /// Trials quarantined so far.
    pub quarantines: Vec<Quarantine>,
}

impl Journal {
    /// Serializes the journal with its integrity header.
    pub fn encode(&self) -> Vec<u8> {
        let mut p = String::new();
        let _ = writeln!(p, "engine={ENGINE_VERSION}");
        let _ = writeln!(p, "master={}", self.master);
        let _ = writeln!(
            p,
            "cfg={} {} {:016x} {:016x} {}",
            self.cfg.initial_trials,
            self.cfg.max_trials,
            self.cfg.target_half_width.to_bits(),
            self.cfg.z.to_bits(),
            self.cfg.bootstrap_resamples
        );
        let _ = writeln!(p, "done={}", self.done);
        match &self.kind {
            JournalKind::Proportions(pools) => {
                let _ = writeln!(p, "kind=proportions k={}", pools.len());
                for &(s, t) in pools {
                    let _ = writeln!(p, "pool {s} {t}");
                }
            }
            JournalKind::Mean(samples) => {
                let _ = writeln!(p, "kind=mean k={}", samples.len());
                for &x in samples {
                    let _ = writeln!(p, "sample {:016x}", x.to_bits());
                }
            }
        }
        for q in &self.quarantines {
            let _ = writeln!(p, "quar {} {} {}", q.index, q.seed, escape(&q.message));
        }
        let payload = p.into_bytes();
        let mut out = format!(
            "hbjournal v{JOURNAL_VERSION} len={} sum={:016x}\n",
            payload.len(),
            fnv1a64(&payload)
        )
        .into_bytes();
        out.extend_from_slice(&payload);
        out
    }

    /// Parses a journal, verifying the header's length and checksum
    /// against the payload. Returns `None` on *any* defect — truncated
    /// file, trailing garbage, checksum mismatch, unknown version or
    /// engine, malformed lines — so a corrupt journal degrades to a clean
    /// restart, never a wrong resume.
    pub fn decode(bytes: &[u8]) -> Option<Journal> {
        let text = std::str::from_utf8(bytes).ok()?;
        let (header, payload) = text.split_once('\n')?;
        let mut h = header.split(' ');
        if h.next()? != "hbjournal" {
            return None;
        }
        if h.next()? != format!("v{JOURNAL_VERSION}") {
            return None;
        }
        let len: usize = h.next()?.strip_prefix("len=")?.parse().ok()?;
        let sum = u64::from_str_radix(h.next()?.strip_prefix("sum=")?, 16).ok()?;
        if h.next().is_some() || payload.len() != len || fnv1a64(payload.as_bytes()) != sum {
            return None;
        }

        let mut lines = payload.lines();
        let engine: u32 = lines.next()?.strip_prefix("engine=")?.parse().ok()?;
        if engine != ENGINE_VERSION {
            return None;
        }
        let master: u64 = lines.next()?.strip_prefix("master=")?.parse().ok()?;
        let cfg_line = lines.next()?.strip_prefix("cfg=")?;
        let mut c = cfg_line.split(' ');
        let cfg = JournalCfg {
            initial_trials: c.next()?.parse().ok()?,
            max_trials: c.next()?.parse().ok()?,
            target_half_width: f64::from_bits(u64::from_str_radix(c.next()?, 16).ok()?),
            z: f64::from_bits(u64::from_str_radix(c.next()?, 16).ok()?),
            bootstrap_resamples: c.next()?.parse().ok()?,
        };
        if c.next().is_some() {
            return None;
        }
        let done: u64 = lines.next()?.strip_prefix("done=")?.parse().ok()?;
        let kind_line = lines.next()?;
        let (kind_name, k) = kind_line.strip_prefix("kind=")?.split_once(" k=")?;
        let k: usize = k.parse().ok()?;
        let kind = match kind_name {
            "proportions" => {
                let mut pools = Vec::with_capacity(k);
                for _ in 0..k {
                    let line = lines.next()?.strip_prefix("pool ")?;
                    let (s, t) = line.split_once(' ')?;
                    let (s, t): (u64, u64) = (s.parse().ok()?, t.parse().ok()?);
                    if s > t {
                        return None;
                    }
                    pools.push((s, t));
                }
                JournalKind::Proportions(pools)
            }
            "mean" => {
                let mut samples = Vec::with_capacity(k);
                for _ in 0..k {
                    let bits = lines.next()?.strip_prefix("sample ")?;
                    samples.push(f64::from_bits(u64::from_str_radix(bits, 16).ok()?));
                }
                JournalKind::Mean(samples)
            }
            _ => return None,
        };
        let mut quarantines = Vec::new();
        for line in lines {
            let rest = line.strip_prefix("quar ")?;
            let (index, rest) = rest.split_once(' ')?;
            let (seed, message) = rest.split_once(' ')?;
            quarantines.push(Quarantine {
                index: index.parse().ok()?,
                seed: seed.parse().ok()?,
                message: unescape(message)?,
            });
        }
        Some(Journal {
            master,
            cfg,
            done,
            kind,
            quarantines,
        })
    }

    /// Reads and [`decode`](Journal::decode)s a journal file; `None` when
    /// missing or corrupt (both mean "start from scratch").
    pub fn load(path: &Path) -> Option<Journal> {
        Journal::decode(&std::fs::read(path).ok()?)
    }

    /// Atomically writes the journal to `path`.
    pub fn store(&self, path: &Path) -> io::Result<()> {
        atomic_write(path, &self.encode())
    }

    /// True if this journal belongs to the run described by
    /// `(master, cfg)` — the resume precondition.
    pub fn matches(&self, master: u64, cfg: &JournalCfg) -> bool {
        self.master == master && self.cfg == *cfg
    }
}

/// Escapes a panic message onto one journal line.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape`]; `None` on a dangling or unknown escape.
fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            'n' => out.push('\n'),
            'r' => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Writes `bytes` to `path` atomically: a `.tmp` sibling is written,
/// fsynced, and renamed over the destination, so a crash at any instant
/// leaves either the old file or the new one — never a torn mix. The
/// parent directory is fsynced best-effort afterwards (the rename itself
/// is what readers depend on).
///
/// Honors `HB_FAULT=io_fail:<substr>`: matching paths fail with an
/// injected error before anything touches disk.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    if let Some(Fault::IoFail(sub)) = fault() {
        if path.to_string_lossy().contains(sub.as_str()) {
            return Err(io::Error::other(format!(
                "HB_FAULT: injected io_fail for {}",
                path.display()
            )));
        }
    }
    let mut tmp_name = path
        .file_name()
        .map(|n| n.to_os_string())
        .unwrap_or_default();
    tmp_name.push(".tmp");
    let tmp = path.with_file_name(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)?;
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = std::fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// A parsed `HB_FAULT` directive. See the module docs for the grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fault {
    /// Panic inside the trial at this global index, in every adaptive call.
    PanicAtTrial(u64),
    /// Exit the process after the n-th journal checkpoint, process-wide.
    CrashAfterRound(u64),
    /// Fail [`atomic_write`] for paths containing this substring.
    IoFail(String),
}

/// Parses one fault spec (`panic:3`, `crash_after_round:1`,
/// `io_fail:figure_9`). `None` for anything unrecognized.
pub fn parse_fault(spec: &str) -> Option<Fault> {
    let (kind, arg) = spec.split_once(':')?;
    match kind {
        "panic" => arg.parse().ok().map(Fault::PanicAtTrial),
        "crash_after_round" => arg.parse().ok().map(Fault::CrashAfterRound),
        "io_fail" => (!arg.is_empty()).then(|| Fault::IoFail(arg.to_string())),
        _ => None,
    }
}

/// The process's active fault, parsed from `HB_FAULT` exactly once. With
/// the variable unset this is a single `OnceLock` load — zero overhead on
/// every healthy path that consults it.
pub fn fault() -> Option<&'static Fault> {
    static FAULT: OnceLock<Option<Fault>> = OnceLock::new();
    FAULT
        .get_or_init(|| {
            let spec = std::env::var("HB_FAULT").ok()?;
            let parsed = parse_fault(&spec);
            if parsed.is_none() {
                eprintln!(
                    "warning: unrecognized HB_FAULT={spec:?} ignored \
                     (expected panic:<trial>|crash_after_round:<n>|io_fail:<substr>)"
                );
            }
            parsed
        })
        .as_ref()
}

/// Engine hook: panics iff `HB_FAULT=panic:<global_index>` targets this
/// trial. Called inside the per-trial `catch_unwind`, so the injected
/// panic lands in quarantine like any organic one.
pub fn inject_trial_panic(global_index: u64) {
    if let Some(Fault::PanicAtTrial(i)) = fault() {
        if *i == global_index {
            panic!("HB_FAULT: injected panic at trial {global_index}");
        }
    }
}

/// Engine hook: counts successful journal checkpoints process-wide and,
/// under `HB_FAULT=crash_after_round:<n>`, kills the process with
/// [`CRASH_EXIT_CODE`] once `n` have been written — *after* the write, so
/// the journal on disk is exactly what a real mid-run kill leaves behind.
pub fn note_round_checkpointed() {
    static ROUNDS: AtomicU64 = AtomicU64::new(0);
    let written = ROUNDS.fetch_add(1, Ordering::Relaxed) + 1;
    if let Some(Fault::CrashAfterRound(n)) = fault() {
        if written >= *n {
            eprintln!("HB_FAULT: simulated crash after checkpointed round {written}");
            std::process::exit(CRASH_EXIT_CODE as i32);
        }
    }
}

/// End-of-run health summary, surfaced in artifacts: a degraded run
/// completed despite quarantined trials; a truncated run stopped at a
/// checkpoint because the deadline expired.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RunHealth {
    /// Trials quarantined across the run (0 for a healthy run).
    pub quarantined: u64,
    /// True if the deadline stopped the run before convergence.
    pub truncated: bool,
}

impl RunHealth {
    /// True if any trial was quarantined.
    pub fn degraded(&self) -> bool {
        self.quarantined > 0
    }

    /// True if the artifact must carry health fields at all — healthy
    /// artifacts stay byte-identical to pre-checkpoint output.
    pub fn flagged(&self) -> bool {
        self.degraded() || self.truncated
    }
}

/// Run control installed by a driver (`hb_eval`) around an experiment:
/// where journals live, whether to resume from them, the deadline, and
/// the accumulated health counters the driver reads back.
///
/// One `RunCtl` spans one experiment run; every adaptive call inside it
/// claims its own journal file keyed by master seed.
#[derive(Debug)]
pub struct RunCtl {
    dir: Option<PathBuf>,
    resume: bool,
    deadline: Option<Instant>,
    quarantined: AtomicU64,
    truncated: AtomicBool,
    warned_io: AtomicBool,
    claimed: Mutex<BTreeSet<PathBuf>>,
}

impl RunCtl {
    /// Creates a control block. `dir = None` disables journaling (trial
    /// isolation and the deadline still apply). The directory is created
    /// eagerly so the first checkpoint cannot fail on a missing parent.
    pub fn new(dir: Option<PathBuf>, resume: bool, deadline: Option<Instant>) -> Self {
        if let Some(d) = &dir {
            let _ = std::fs::create_dir_all(d);
        }
        RunCtl {
            dir,
            resume,
            deadline,
            quarantined: AtomicU64::new(0),
            truncated: AtomicBool::new(false),
            warned_io: AtomicBool::new(false),
            claimed: Mutex::new(BTreeSet::new()),
        }
    }

    /// A control block with everything off — what a bare library call
    /// behaves like.
    pub fn disabled() -> Self {
        RunCtl::new(None, false, None)
    }

    /// Claims the journal path for one adaptive call, keyed by the call's
    /// master seed, component count, and kind tag. Returns `None` when
    /// journaling is off — or when another call of this run already
    /// claimed the same path (a master-seed collision): journaling is
    /// disabled for the later call rather than letting two calls corrupt
    /// one journal. Experiments derive per-call masters with
    /// [`trial_seed`](crate::montecarlo::trial_seed), so collisions do
    /// not occur in practice.
    pub fn claim_journal(&self, master: u64, k: usize, kind_tag: &str) -> Option<PathBuf> {
        let dir = self.dir.as_ref()?;
        let path = dir.join(format!("mc_{master:016x}_{kind_tag}{k}.journal"));
        let mut claimed = self.claimed.lock().unwrap();
        if !claimed.insert(path.clone()) {
            eprintln!(
                "warning: duplicate Monte-Carlo master seed {master:#x}; \
                 journaling disabled for this call"
            );
            return None;
        }
        Some(path)
    }

    /// True if the driver asked to resume from existing journals.
    pub fn resuming(&self) -> bool {
        self.resume
    }

    /// True once the deadline has passed. Checked between rounds only —
    /// the engine never aborts mid-round, so it always stops at a
    /// checkpoint.
    pub fn deadline_expired(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d)
    }

    /// Adds to the run's quarantined-trial count.
    pub fn note_quarantined(&self, n: u64) {
        self.quarantined.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks the run deadline-truncated.
    pub fn note_truncated(&self) {
        self.truncated.store(true, Ordering::Relaxed);
    }

    /// Warns once per run about a journal I/O problem (the run continues
    /// without checkpoints rather than failing).
    pub fn warn_io_once(&self, msg: &str) {
        if !self.warned_io.swap(true, Ordering::Relaxed) {
            eprintln!("{msg}");
        }
    }

    /// The health summary accumulated so far.
    pub fn health(&self) -> RunHealth {
        RunHealth {
            quarantined: self.quarantined.load(Ordering::Relaxed),
            truncated: self.truncated.load(Ordering::Relaxed),
        }
    }
}

/// The installed control block. Process-global (not thread-local) because
/// experiments run their inner adaptive loops on `parallel_map` worker
/// threads, which must see the same `RunCtl` the driver installed.
static CURRENT: Mutex<Option<Arc<RunCtl>>> = Mutex::new(None);

/// Installs `ctl` as the process's active run control for the lifetime of
/// the returned guard (dropping it restores the previous one). Drivers
/// wrap each experiment run in one of these; the adaptive engine picks
/// the active control up via [`current`].
pub fn install(ctl: Arc<RunCtl>) -> CtlGuard {
    let prev = CURRENT.lock().unwrap().replace(ctl);
    CtlGuard { prev }
}

/// The active run control, if a driver installed one.
pub fn current() -> Option<Arc<RunCtl>> {
    CURRENT.lock().unwrap().clone()
}

/// RAII guard of [`install`]; restores the previously active control on
/// drop.
#[must_use = "dropping the guard immediately uninstalls the RunCtl"]
pub struct CtlGuard {
    prev: Option<Arc<RunCtl>>,
}

impl Drop for CtlGuard {
    fn drop(&mut self) {
        *CURRENT.lock().unwrap() = self.prev.take();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_journal() -> Journal {
        Journal {
            master: 0xDEAD_BEEF_1234_5678,
            cfg: JournalCfg {
                initial_trials: 4,
                max_trials: 256,
                target_half_width: 0.015,
                z: 1.959963984540054,
                bootstrap_resamples: 200,
            },
            done: 32,
            kind: JournalKind::Proportions(vec![(17, 512), (3, 32)]),
            quarantines: vec![Quarantine {
                index: 5,
                seed: 42,
                message: "multi\nline \\ payload".to_string(),
            }],
        }
    }

    #[test]
    fn journal_roundtrips_exactly() {
        let j = sample_journal();
        assert_eq!(Journal::decode(&j.encode()), Some(j.clone()));

        let mean = Journal {
            kind: JournalKind::Mean(vec![0.1, -3.5e-9, f64::NAN, 0.0, -0.0]),
            ..j
        };
        let back = Journal::decode(&mean.encode()).expect("mean journal decodes");
        // NaN breaks PartialEq; compare bit patterns instead.
        let (JournalKind::Mean(a), JournalKind::Mean(b)) = (&mean.kind, &back.kind) else {
            panic!("kind changed");
        };
        assert_eq!(
            a.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
            b.iter().map(|x| x.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn corrupt_journals_never_decode() {
        let bytes = sample_journal().encode();
        // Truncation at every length short of the full file.
        for cut in [0, 1, 12, bytes.len() / 2, bytes.len() - 1] {
            assert_eq!(Journal::decode(&bytes[..cut]), None, "cut at {cut}");
        }
        // Trailing garbage.
        let mut extended = bytes.clone();
        extended.extend_from_slice(b"x");
        assert_eq!(Journal::decode(&extended), None);
        // Any single flipped payload byte trips the checksum (or the
        // parser); flip a few spread across the file.
        for pos in [bytes.len() - 1, bytes.len() / 2, 40] {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x01;
            assert_eq!(Journal::decode(&bad), None, "flip at {pos}");
        }
        // Wrong format version.
        let v2 =
            String::from_utf8(bytes.clone())
                .unwrap()
                .replacen("hbjournal v1", "hbjournal v2", 1);
        assert_eq!(Journal::decode(v2.as_bytes()), None);
    }

    #[test]
    fn matches_requires_same_master_and_cfg() {
        let j = sample_journal();
        assert!(j.matches(j.master, &j.cfg));
        assert!(!j.matches(j.master ^ 1, &j.cfg));
        let mut other = j.cfg;
        other.max_trials += 1;
        assert!(!j.matches(j.master, &other));
    }

    #[test]
    fn fault_specs_parse() {
        assert_eq!(parse_fault("panic:3"), Some(Fault::PanicAtTrial(3)));
        assert_eq!(
            parse_fault("crash_after_round:1"),
            Some(Fault::CrashAfterRound(1))
        );
        assert_eq!(
            parse_fault("io_fail:figure_9"),
            Some(Fault::IoFail("figure_9".to_string()))
        );
        for bad in ["", "panic", "panic:", "panic:x", "io_fail:", "nonsense:1"] {
            assert_eq!(parse_fault(bad), None, "{bad:?} must not parse");
        }
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("hb_ckpt_aw_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("file.json");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer");
        // No .tmp sibling survives a successful write.
        assert!(!dir.join("file.json.tmp").exists());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn claim_rejects_duplicate_masters() {
        let dir = std::env::temp_dir().join(format!("hb_ckpt_claim_{}", std::process::id()));
        let ctl = RunCtl::new(Some(dir.clone()), false, None);
        let first = ctl.claim_journal(7, 2, "p");
        assert!(first.is_some());
        assert_eq!(ctl.claim_journal(7, 2, "p"), None, "duplicate master");
        // Different kind or K is a different journal.
        assert!(ctl.claim_journal(7, 1, "p").is_some());
        assert!(ctl.claim_journal(7, 1, "m").is_some());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disabled_ctl_claims_nothing_and_reports_healthy() {
        let ctl = RunCtl::disabled();
        assert_eq!(ctl.claim_journal(1, 1, "p"), None);
        assert!(!ctl.deadline_expired());
        assert_eq!(ctl.health(), RunHealth::default());
        assert!(!ctl.health().flagged());
    }

    #[test]
    fn health_flags() {
        let h = RunHealth {
            quarantined: 2,
            truncated: false,
        };
        assert!(h.degraded() && h.flagged());
        let t = RunHealth {
            quarantined: 0,
            truncated: true,
        };
        assert!(!t.degraded() && t.flagged());
    }
}
