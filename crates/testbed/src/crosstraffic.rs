//! Legitimate cross-traffic: a meteorological radiosonde transmitter,
//! and the §11 coexistence experiment built on it.
//!
//! §11: meteorological aids are the *primary* users of the 402–405 MHz
//! band; the shield must never jam them. The paper models them after the
//! Vaisala RS92-AGP digital radiosonde, which uses GMSK — so do we. The
//! [`CrossTrafficExperiment`] quantifies the selectivity claim from the
//! `coexistence` example as a registry experiment: a radiosonde packet
//! and an IMD-addressed forged command air from the *same* antenna at
//! several Fig. 6 locations; the shield must jam every command and no
//! telemetry.

use crate::experiments::registry::{EvalCtx, Experiment};
use crate::experiments::Effort;
use crate::montecarlo::trial_seed;
use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_channel::txsched::TxScheduler;
use hb_dsp::units::ratio_from_db;
use hb_phy::bits::Prbs;
use hb_phy::gmsk::{GmskModem, GmskParams};
use hb_shield::shield::ShieldEventKind;

/// A radiosonde-style GMSK transmitter.
pub struct CrossTrafficNode {
    antenna: AntennaId,
    modem: GmskModem,
    tx: TxScheduler,
    tx_power_dbm: f64,
    prbs: Prbs,
    /// Ground-truth (start, end, channel) of each packet sent.
    pub tx_log: Vec<(Tick, Tick, usize)>,
}

impl CrossTrafficNode {
    /// Creates a radiosonde transmitter on `antenna` at `tx_power_dbm`.
    pub fn new(antenna: AntennaId, tx_power_dbm: f64) -> Self {
        CrossTrafficNode {
            antenna,
            modem: GmskModem::new(GmskParams::radiosonde_rs92()),
            tx: TxScheduler::new(),
            tx_power_dbm,
            prbs: Prbs::new(0x155),
            tx_log: Vec::new(),
        }
    }

    /// Schedules one telemetry packet of `n_bits` at `start_tick`.
    pub fn send_packet(&mut self, start_tick: Tick, channel: usize, n_bits: usize) {
        let bits = self.prbs.bits(n_bits);
        let mut wave = self.modem.modulate(&bits);
        let amp = ratio_from_db(self.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amp);
        }
        let end = start_tick + wave.len() as Tick;
        self.tx.schedule(start_tick, channel, wave);
        self.tx_log.push((start_tick, end, channel));
    }

    /// End tick of the most recent packet.
    pub fn last_end(&self) -> Option<Tick> {
        self.tx_log.last().map(|&(_, e, _)| e)
    }

    /// The transmitter's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }
}

impl Node for CrossTrafficNode {
    fn label(&self) -> &str {
        "radiosonde"
    }

    fn produce(&mut self, medium: &mut Medium) {
        self.tx.produce(self.antenna, medium);
    }

    fn consume(&mut self, _medium: &mut Medium) {}
}

/// One coexistence repetition at `location`: a GMSK radiosonde packet,
/// then a forged IMD command from the same antenna. Returns
/// `(sonde_jammed, command_jammed)` from the shield's event log — the
/// paper's selectivity claim is `(false, true)`.
fn coexistence_once(location: usize, seed: u64) -> (bool, bool) {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(seed));
    let node_ant = builder.add_at_location(location, "mixed-transmitter");
    let mut scenario = builder.build();
    let channel = scenario.channel();
    let serial = scenario.imd.config().serial;

    let mut sonde = CrossTrafficNode::new(node_ant, hb_mics::fcc_eirp_limit_dbm());
    sonde.send_packet(64, channel, 80);
    let sonde_interval = (64, sonde.last_end().unwrap());

    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), node_ant);
    let cmd_start = sonde_interval.1 + 3000;
    attacker.send_forged_command(
        cmd_start,
        channel,
        serial,
        hb_imd::commands::Command::Interrogate,
    );
    let cmd_interval = (cmd_start, attacker.last_tx_end().unwrap());

    scenario.run_seconds(
        &mut [&mut sonde as &mut dyn Node, &mut attacker as &mut dyn Node],
        0.12,
    );

    let shield = scenario.shield.as_ref().unwrap();
    let mut jam_intervals: Vec<(Tick, Tick)> = Vec::new();
    let mut open: Option<Tick> = None;
    for e in &shield.events {
        match e.kind {
            ShieldEventKind::JamStart { .. } => open = open.or(Some(e.tick)),
            ShieldEventKind::JamEnd { .. } => {
                if let Some(s) = open.take() {
                    jam_intervals.push((s, e.tick));
                }
            }
            _ => {}
        }
    }
    let overlaps = |a: (Tick, Tick), b: (Tick, Tick)| a.0 < b.1 && b.0 < a.1;
    (
        jam_intervals.iter().any(|&j| overlaps(j, sonde_interval)),
        jam_intervals.iter().any(|&j| overlaps(j, cmd_interval)),
    )
}

/// Locations the coexistence sweep samples: adjacent to the patient,
/// mid-room, and across the room (Fig. 6 numbering).
const COEX_LOCATIONS: [usize; 3] = [2, 4, 7];

/// Runs the §11 coexistence sweep: per location, the fraction of
/// radiosonde packets jammed (must be 0) and of IMD-addressed commands
/// jammed (must be 1), over effort-scaled repetitions with fresh
/// channel realizations.
pub fn run(effort: Effort, seed: u64) -> Artifact {
    let reps = (effort.runs / 8).clamp(2, 8);
    let rows = crate::parallel::parallel_map(&COEX_LOCATIONS, |li, &loc| {
        let mut sonde_jams = 0u64;
        let mut cmd_jams = 0u64;
        for r in 0..reps {
            let s = trial_seed(seed, (li * 1024 + r) as u64);
            let (sonde_jammed, cmd_jammed) = coexistence_once(loc, s);
            sonde_jams += sonde_jammed as u64;
            cmd_jams += cmd_jammed as u64;
        }
        (
            loc,
            sonde_jams as f64 / reps as f64,
            cmd_jams as f64 / reps as f64,
        )
    });

    let mut artifact = Artifact::new(
        "Extension: cross-traffic coexistence",
        "§11 — radiosonde telemetry vs IMD-addressed commands from the same antenna",
    );
    artifact.push_series(Series::new(
        "radiosonde packets jammed (fraction)",
        rows.iter().map(|&(l, s, _)| (l as f64, s)).collect(),
    ));
    artifact.push_series(Series::new(
        "IMD-addressed commands jammed (fraction)",
        rows.iter().map(|&(l, _, c)| (l as f64, c)).collect(),
    ));
    let worst_sonde = rows.iter().map(|&(_, s, _)| s).fold(0.0, f64::max);
    let worst_cmd = rows.iter().map(|&(_, _, c)| c).fold(1.0, f64::min);
    artifact.note(format!(
        "{} repetitions per location; worst-case sonde jam fraction {:.3} \
         (paper: 0 — GMSK carries no Sid, §7(a)), worst-case command jam \
         fraction {:.3} (paper: 1)",
        reps, worst_sonde, worst_cmd
    ));
    artifact
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct CrossTrafficExperiment;

impl Experiment for CrossTrafficExperiment {
    fn name(&self) -> &'static str {
        "crosstraffic"
    }
    fn reproduces(&self) -> &'static str {
        "§11 — coexistence: primary-user telemetry untouched, IMD-addressed commands jammed"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_dsp::units::db_from_ratio;

    #[test]
    fn packet_airs_at_configured_power() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -150.0,
                ..Default::default()
            },
            4,
        );
        let tx = m.add_antenna(Placement::los("sonde", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, hb_dsp::C64::ONE);
        let mut sonde = CrossTrafficNode::new(tx, -16.0);
        sonde.send_packet(0, 0, 100);
        let mut acc = Vec::new();
        for _ in 0..200 {
            sonde.produce(&mut m);
            acc.extend(m.receive(rx, 0));
            m.end_block();
        }
        let body = &acc[100..3000];
        let p = db_from_ratio(hb_dsp::complex::mean_power(body));
        assert!((p - (-16.0)).abs() < 0.5, "on-air {p} dBm");
        assert_eq!(sonde.tx_log.len(), 1);
    }

    #[test]
    fn shield_is_selective_about_what_it_jams() {
        // The §11 selectivity claim at the example's location and seed:
        // the GMSK radiosonde packet airs untouched, the IMD-addressed
        // command from the very same antenna is jammed.
        let (sonde_jammed, cmd_jammed) = coexistence_once(4, 33);
        assert!(!sonde_jammed, "primary-user telemetry must not be jammed");
        assert!(cmd_jammed, "the forged IMD command must be jammed");
    }
}
