//! Legitimate cross-traffic: a meteorological radiosonde transmitter.
//!
//! §11: meteorological aids are the *primary* users of the 402–405 MHz
//! band; the shield must never jam them. The paper models them after the
//! Vaisala RS92-AGP digital radiosonde, which uses GMSK — so do we.

use hb_channel::medium::{AntennaId, Medium, Tick};
use hb_channel::sim::Node;
use hb_channel::txsched::TxScheduler;
use hb_dsp::units::ratio_from_db;
use hb_phy::bits::Prbs;
use hb_phy::gmsk::{GmskModem, GmskParams};

/// A radiosonde-style GMSK transmitter.
pub struct CrossTrafficNode {
    antenna: AntennaId,
    modem: GmskModem,
    tx: TxScheduler,
    tx_power_dbm: f64,
    prbs: Prbs,
    /// Ground-truth (start, end, channel) of each packet sent.
    pub tx_log: Vec<(Tick, Tick, usize)>,
}

impl CrossTrafficNode {
    /// Creates a radiosonde transmitter on `antenna` at `tx_power_dbm`.
    pub fn new(antenna: AntennaId, tx_power_dbm: f64) -> Self {
        CrossTrafficNode {
            antenna,
            modem: GmskModem::new(GmskParams::radiosonde_rs92()),
            tx: TxScheduler::new(),
            tx_power_dbm,
            prbs: Prbs::new(0x155),
            tx_log: Vec::new(),
        }
    }

    /// Schedules one telemetry packet of `n_bits` at `start_tick`.
    pub fn send_packet(&mut self, start_tick: Tick, channel: usize, n_bits: usize) {
        let bits = self.prbs.bits(n_bits);
        let mut wave = self.modem.modulate(&bits);
        let amp = ratio_from_db(self.tx_power_dbm).sqrt();
        for s in wave.iter_mut() {
            *s = s.scale(amp);
        }
        let end = start_tick + wave.len() as Tick;
        self.tx.schedule(start_tick, channel, wave);
        self.tx_log.push((start_tick, end, channel));
    }

    /// End tick of the most recent packet.
    pub fn last_end(&self) -> Option<Tick> {
        self.tx_log.last().map(|&(_, e, _)| e)
    }

    /// The transmitter's antenna.
    pub fn antenna(&self) -> AntennaId {
        self.antenna
    }
}

impl Node for CrossTrafficNode {
    fn label(&self) -> &str {
        "radiosonde"
    }

    fn produce(&mut self, medium: &mut Medium) {
        self.tx.produce(self.antenna, medium);
    }

    fn consume(&mut self, _medium: &mut Medium) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use hb_channel::geometry::Placement;
    use hb_channel::medium::MediumConfig;
    use hb_dsp::units::db_from_ratio;

    #[test]
    fn packet_airs_at_configured_power() {
        let mut m = Medium::new(
            MediumConfig {
                noise_floor_dbm: -150.0,
                ..Default::default()
            },
            4,
        );
        let tx = m.add_antenna(Placement::los("sonde", 0.0, 0.0));
        let rx = m.add_antenna(Placement::los("rx", 1.0, 0.0));
        m.set_gain(tx, rx, hb_dsp::C64::ONE);
        let mut sonde = CrossTrafficNode::new(tx, -16.0);
        sonde.send_packet(0, 0, 100);
        let mut acc = Vec::new();
        for _ in 0..200 {
            sonde.produce(&mut m);
            acc.extend(m.receive(rx, 0));
            m.end_block();
        }
        let body = &acc[100..3000];
        let p = db_from_ratio(hb_dsp::complex::mean_power(body));
        assert!((p - (-16.0)).abs() < 0.5, "on-air {p} dBm");
        assert_eq!(sonde.tx_log.len(), 1);
    }
}
