//! The defense abstraction: alternative IMD-security protocols behind
//! one trait, so the full adversary suite can run against each.
//!
//! The paper's shield is one point in the design space — an external,
//! physical-layer defense. The literature's sharpest contrasts are
//! protocol-layer sessions in the implant's own firmware (IMDfence) and
//! energy-layer wake-up gating (zero-power wake-up radios). A
//! [`Defense`] packages everything a scenario needs to run one of them:
//!
//! * [`Defense::configure`] edits the [`ScenarioConfig`] (shield on/off,
//!   firmware security mode, wake gate) before the builder starts;
//! * [`Defense::install`] adds the defense's own nodes (an authorized
//!   programmer, say) to the [`ScenarioBuilder`] and returns a
//!   [`DefenseRig`]: those nodes plus a [`DefenseHook`] that drives the
//!   legitimate exchange from the per-block observe point of
//!   [`Scenario::run_block_with`] — the one window where a supervisor
//!   may read the block's receive view without disturbing the medium's
//!   sample streams;
//! * [`Defense::claims`] states what the defense is supposed to deliver,
//!   so the cross-defense conformance suite can assert each claim
//!   exactly where it is made and nowhere else.
//!
//! [`ShieldDefense`] is a thin adapter over the existing engine and is
//! **bit-identical** to the legacy
//! [`relay_one_exchange`](crate::experiments::relay_one_exchange) path:
//! it adds no antennas (the RNG draw order at build time is untouched),
//! its hook only drains shield state (no medium reads, no RNG), and the
//! block loop is the same two-phase sequence — proven by equivalence
//! proptests in `tests/defense.rs`, which is why the golden suite needs
//! no re-capture.

use crate::scenario::{Scenario, ScenarioBuilder, ScenarioConfig};
use hb_channel::geometry::Placement;
use hb_channel::sim::Node;
use hb_crypto::micro::MicroSession;
use hb_dsp::units::db_from_ratio;
use hb_imd::commands::{Command, Response};
use hb_imd::fence;
use hb_imd::models::SecurityMode;
use hb_imd::programmer::{Programmer, ProgrammerConfig};
use hb_imd::wakeup::{self, WakeConfig};
use hb_mics::band::MicsChannel;
use hb_mics::session::{SessionConfig, SessionNegotiator};
use hb_phy::packet::Serial;
use std::cell::RefCell;
use std::rc::Rc;

/// What a defense claims to provide. The conformance suite asserts each
/// claim against the matching adversary — and asserts nothing where no
/// claim is made (a wake-up radio does not pretend to stop forgery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DefenseClaims {
    /// Forged commands are not executed by the implant.
    pub authenticates_commands: bool,
    /// A passive eavesdropper does not recover reply plaintext.
    pub encrypts_telemetry: bool,
    /// Unauthorized traffic cannot make the implant spend reply energy
    /// indefinitely.
    pub gates_battery_drain: bool,
}

/// Counters reported by a defense's exchange driver.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DefenseStats {
    /// Legitimate commands submitted by the driver.
    pub commands_sent: u64,
    /// Authenticated (where claimed) replies delivered back.
    pub replies_delivered: u64,
    /// Session handshakes completed (fence-style defenses).
    pub handshakes_completed: u64,
    /// Wake tokens transmitted (wake-up-radio defenses).
    pub wake_tokens_sent: u64,
    /// Blocks the hook observed.
    pub blocks_run: u64,
}

/// Per-block driver of a defense's legitimate exchange, called from the
/// observe point of [`Scenario::run_block_with`].
pub trait DefenseHook {
    /// Called once before the block loop with the command to deliver.
    fn begin(&mut self, scenario: &mut Scenario, cmd: Command);
    /// Called at the observe point of every block.
    fn on_block(&mut self, scenario: &mut Scenario);
    /// Did the legitimate exchange complete?
    fn delivered(&self) -> bool;
    /// Driver counters.
    fn stats(&self) -> DefenseStats;
}

/// A defense's nodes and exchange driver, ready to run.
pub struct DefenseRig {
    /// Nodes the defense adds to the scenario (authorized programmer,
    /// …); empty for the shield, whose relay lives in the scenario.
    pub nodes: Vec<Box<dyn Node>>,
    /// The per-block exchange driver.
    pub hook: Box<dyn DefenseHook>,
}

/// One IMD-security protocol, installable into any scenario.
pub trait Defense: Sync {
    /// Registry-style kebab-case name.
    fn name(&self) -> &'static str;
    /// What this defense claims to provide.
    fn claims(&self) -> DefenseClaims;
    /// Edits the scenario configuration before building (shield on/off,
    /// firmware mode, wake gate). Must not touch fields it does not own.
    fn configure(&self, cfg: &mut ScenarioConfig);
    /// Installs the defense's nodes into the builder and returns the rig.
    fn install(&self, builder: &mut ScenarioBuilder) -> DefenseRig;
}

/// Outcome of one defended exchange.
#[derive(Debug, Clone)]
pub struct ExchangeReport {
    /// Did the legitimate reply come back (authenticated, where claimed)?
    pub delivered: bool,
    /// Driver counters.
    pub stats: DefenseStats,
}

/// Runs one legitimate exchange under a defense, with `adversaries`
/// sharing the medium, for `seconds` of simulated time.
///
/// The block loop is exactly the standard two-phase sequence —
/// [`Scenario::run_block_with`] with the rig's nodes appended after the
/// adversaries' — so with an empty rig and a state-only hook it is
/// bit-identical to [`relay_one_exchange`](crate::experiments::relay_one_exchange).
pub fn run_defended_exchange(
    scenario: &mut Scenario,
    rig: &mut DefenseRig,
    adversaries: &mut [&mut dyn Node],
    cmd: Command,
    seconds: f64,
) -> ExchangeReport {
    rig.hook.begin(scenario, cmd);
    let blocks = scenario.medium.blocks_for_duration(seconds);
    for _ in 0..blocks {
        let hook = &mut rig.hook;
        let mut nodes: Vec<&mut dyn Node> = Vec::with_capacity(adversaries.len() + rig.nodes.len());
        for a in adversaries.iter_mut() {
            nodes.push(&mut **a);
        }
        for n in rig.nodes.iter_mut() {
            nodes.push(n.as_mut());
        }
        scenario.run_block_with(&mut nodes, |s| hook.on_block(s));
    }
    ExchangeReport {
        delivered: rig.hook.delivered(),
        stats: rig.hook.stats(),
    }
}

/// The defenses the matrix compares, in canonical order.
pub static DEFENSES: [&dyn Defense; 3] = [&ShieldDefense, &ImdFenceDefense, &WakeupRadioDefense];

// ---------------------------------------------------------------------------
// Shield
// ---------------------------------------------------------------------------

/// The paper's shield, behind the trait: configuration is untouched
/// (paper defaults already wear the shield), no nodes are added, and the
/// hook only drains the shield's decrypted-response queue — zero medium
/// interaction, so the engine's bits are exactly the legacy path's.
pub struct ShieldDefense;

impl Defense for ShieldDefense {
    fn name(&self) -> &'static str {
        "shield"
    }

    fn claims(&self) -> DefenseClaims {
        DefenseClaims {
            authenticates_commands: true,
            encrypts_telemetry: true,
            gates_battery_drain: true,
        }
    }

    fn configure(&self, _cfg: &mut ScenarioConfig) {}

    fn install(&self, _builder: &mut ScenarioBuilder) -> DefenseRig {
        DefenseRig {
            nodes: Vec::new(),
            hook: Box::new(ShieldHook::default()),
        }
    }
}

#[derive(Default)]
struct ShieldHook {
    delivered: bool,
    stats: DefenseStats,
}

impl DefenseHook for ShieldHook {
    fn begin(&mut self, scenario: &mut Scenario, cmd: Command) {
        scenario
            .shield
            .as_mut()
            .expect("ShieldDefense requires a shielded scenario")
            .queue_command(cmd);
        self.stats.commands_sent += 1;
    }

    fn on_block(&mut self, scenario: &mut Scenario) {
        self.stats.blocks_run += 1;
        if let Some(shield) = scenario.shield.as_mut() {
            let n = shield.take_responses().len() as u64;
            if n > 0 {
                self.delivered = true;
                self.stats.replies_delivered += n;
            }
        }
    }

    fn delivered(&self) -> bool {
        self.delivered
    }

    fn stats(&self) -> DefenseStats {
        self.stats.clone()
    }
}

// ---------------------------------------------------------------------------
// IMDfence
// ---------------------------------------------------------------------------

/// Master key shared by IMDfence firmware and authorized programmers.
/// Fixed across trials: the security of the scheme is in the protocol,
/// not in hiding the simulation's key material.
pub const FENCE_MASTER_KEY: [u8; 32] = [0xF3; 32];

/// Where the authorized programmer stands: the paper's baseline
/// programmer distance (Fig. 6's 30 cm bedside position).
const PROGRAMMER_POSITION_M: (f64, f64) = (0.3, 0.0);

/// Ticks of guard space between protocol steps (1 ms at 300 kHz) — the
/// receiver needs its frame fully processed before the next one starts.
const STEP_GUARD_TICKS: u64 = 300;

/// IMDfence-style protocol security in the implant's own firmware: no
/// shield at all. The scenario's device runs
/// [`SecurityMode::Authenticated`], an authorized [`Programmer`] node
/// performs listen-before-talk (via an [`SessionNegotiator`] parked on
/// the session channel), a HELLO handshake derives a per-session key,
/// and the command and reply cross the air sealed under
/// [`hb_crypto::micro`]. An eavesdropper sees ciphertext; a forger gets
/// Nak'd; but every refusal *costs the implant a transmission* — the
/// battery-drain exposure the matrix quantifies — and under jamming
/// there is no relay to fall back on, so availability degrades.
pub struct ImdFenceDefense;

impl Defense for ImdFenceDefense {
    fn name(&self) -> &'static str {
        "imdfence"
    }

    fn claims(&self) -> DefenseClaims {
        DefenseClaims {
            authenticates_commands: true,
            encrypts_telemetry: true,
            gates_battery_drain: false,
        }
    }

    fn configure(&self, cfg: &mut ScenarioConfig) {
        cfg.shield_enabled = false;
        cfg.imd_security = SecurityMode::Authenticated {
            key: FENCE_MASTER_KEY,
        };
    }

    fn install(&self, builder: &mut ScenarioBuilder) -> DefenseRig {
        let channel = builder.config().channel;
        let serial = builder.config().imd_model.config(channel).serial;
        let antenna = builder.add_at(Placement::los(
            "fence-prog",
            PROGRAMMER_POSITION_M.0,
            PROGRAMMER_POSITION_M.1,
        ));
        let prog = Programmer::new(
            ProgrammerConfig {
                channel,
                ..ProgrammerConfig::default()
            },
            antenna,
        );
        let driver = Rc::new(RefCell::new(FenceDriver {
            prog,
            serial,
            negotiator: SessionNegotiator::scanning_from(
                SessionConfig::default(),
                MicsChannel(channel),
            ),
            session: None,
            state: FencePhase::AwaitChannel,
            cmd: None,
            delivered: false,
            stats: DefenseStats::default(),
        }));
        DefenseRig {
            nodes: vec![Box::new(NodeHandle(driver.clone()))],
            hook: Box::new(HookHandle(driver)),
        }
    }
}

enum FencePhase {
    AwaitChannel,
    HelloSent,
    CmdSent,
    Done,
}

struct FenceDriver {
    prog: Programmer,
    serial: Serial,
    negotiator: SessionNegotiator,
    session: Option<MicroSession>,
    state: FencePhase,
    cmd: Option<Command>,
    delivered: bool,
    stats: DefenseStats,
}

impl FenceDriver {
    fn on_block(&mut self, s: &mut Scenario) {
        self.stats.blocks_run += 1;
        let tick = s.medium.tick();
        let block_len = s.medium.config().block_len as u64;
        let block_s = block_len as f64 / s.medium.config().fs_hz;
        let channel = s.channel();

        // Listen-before-talk bookkeeping, recovery.rs-style: feed the
        // negotiator the level at the programmer antenna unless the
        // energy there is our own side's.
        let own_energy = self.prog.transmitting(tick) || s.imd.transmitting(tick);
        if !own_energy {
            let view = s.medium.receive_view(self.prog.antenna(), channel);
            let mean_mw = view.iter().map(|c| c.norm_sq()).sum::<f64>() / view.len().max(1) as f64;
            self.negotiator.observe(db_from_ratio(mean_mw), block_s);
        }

        match self.state {
            FencePhase::AwaitChannel => {
                if self.negotiator.established() {
                    let hello = fence::hello_payload(&FENCE_MASTER_KEY, &self.serial, 1);
                    self.prog
                        .send_payload_at(tick + block_len, self.serial, hello);
                    self.session = Some(MicroSession::programmer_side(fence::session_key(
                        &FENCE_MASTER_KEY,
                        1,
                    )));
                    self.state = FencePhase::HelloSent;
                }
            }
            FencePhase::HelloSent => {
                for frame in self.prog.take_raw() {
                    let sess = self.session.as_mut().expect("session set at HELLO");
                    if let Ok(pt) = sess.open(&frame.payload) {
                        if Response::from_payload(&pt) == Some(Response::Ack) {
                            self.stats.handshakes_completed += 1;
                            let cmd = self.cmd.take().expect("begin() supplies the command");
                            let sealed = sess.seal(&cmd.to_payload());
                            self.prog.send_payload_at(
                                tick + block_len + STEP_GUARD_TICKS,
                                self.serial,
                                sealed,
                            );
                            self.stats.commands_sent += 1;
                            self.state = FencePhase::CmdSent;
                            break;
                        }
                    }
                }
            }
            FencePhase::CmdSent => {
                for frame in self.prog.take_raw() {
                    let sess = self.session.as_mut().expect("session set at HELLO");
                    if let Ok(pt) = sess.open(&frame.payload) {
                        if Response::from_payload(&pt).is_some() {
                            self.delivered = true;
                            self.stats.replies_delivered += 1;
                            self.state = FencePhase::Done;
                            break;
                        }
                    }
                }
            }
            FencePhase::Done => {
                self.prog.take_raw();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Wake-up radio
// ---------------------------------------------------------------------------

/// Key shared by the wake-up receiver and authorized programmers.
pub const WAKE_KEY: [u8; 32] = [0x57; 32];

/// Zero-power wake-up gating: no shield, stock (plaintext) firmware, but
/// the implant's main radio stays off until an authenticated wake token
/// arrives ([`hb_imd::wakeup`]). Battery-drain traffic is ignored for
/// free while the gate is closed; once an authorized session opens the
/// window, the air carries plaintext — eavesdropping and in-window
/// forgery are explicitly *not* claimed.
pub struct WakeupRadioDefense;

impl Defense for WakeupRadioDefense {
    fn name(&self) -> &'static str {
        "wakeup-radio"
    }

    fn claims(&self) -> DefenseClaims {
        DefenseClaims {
            authenticates_commands: false,
            encrypts_telemetry: false,
            gates_battery_drain: true,
        }
    }

    fn configure(&self, cfg: &mut ScenarioConfig) {
        cfg.shield_enabled = false;
        cfg.imd_wake = Some(WakeConfig::new(WAKE_KEY));
    }

    fn install(&self, builder: &mut ScenarioBuilder) -> DefenseRig {
        let channel = builder.config().channel;
        let serial = builder.config().imd_model.config(channel).serial;
        let antenna = builder.add_at(Placement::los(
            "wake-prog",
            PROGRAMMER_POSITION_M.0,
            PROGRAMMER_POSITION_M.1,
        ));
        let prog = Programmer::new(
            ProgrammerConfig {
                channel,
                ..ProgrammerConfig::default()
            },
            antenna,
        );
        let driver = Rc::new(RefCell::new(WakeDriver {
            prog,
            serial,
            negotiator: SessionNegotiator::scanning_from(
                SessionConfig::default(),
                MicsChannel(channel),
            ),
            state: WakePhase::AwaitChannel,
            cmd: None,
            delivered: false,
            stats: DefenseStats::default(),
        }));
        DefenseRig {
            nodes: vec![Box::new(NodeHandle(driver.clone()))],
            hook: Box::new(HookHandle(driver)),
        }
    }
}

enum WakePhase {
    AwaitChannel,
    TokenSent {
        /// End tick of the token burst, captured at schedule time (the
        /// scheduler forgets bursts once they have played out).
        token_end: u64,
    },
    CmdSent,
    Done,
}

struct WakeDriver {
    prog: Programmer,
    serial: Serial,
    negotiator: SessionNegotiator,
    state: WakePhase,
    cmd: Option<Command>,
    delivered: bool,
    stats: DefenseStats,
}

impl WakeDriver {
    fn on_block(&mut self, s: &mut Scenario) {
        self.stats.blocks_run += 1;
        let tick = s.medium.tick();
        let block_len = s.medium.config().block_len as u64;
        let block_s = block_len as f64 / s.medium.config().fs_hz;
        let channel = s.channel();

        let own_energy = self.prog.transmitting(tick) || s.imd.transmitting(tick);
        if !own_energy {
            let view = s.medium.receive_view(self.prog.antenna(), channel);
            let mean_mw = view.iter().map(|c| c.norm_sq()).sum::<f64>() / view.len().max(1) as f64;
            self.negotiator.observe(db_from_ratio(mean_mw), block_s);
        }

        match self.state {
            WakePhase::AwaitChannel => {
                if self.negotiator.established() {
                    let token = wakeup::wake_token(&WAKE_KEY, &self.serial, 1);
                    self.prog
                        .send_payload_at(tick + block_len, self.serial, token);
                    self.stats.wake_tokens_sent += 1;
                    self.state = WakePhase::TokenSent {
                        token_end: self.prog.tx_end_tick().expect("token just scheduled"),
                    };
                }
            }
            WakePhase::TokenSent { token_end } => {
                // Once the token has fully aired (plus a guard for the
                // gate to process it), send the command in the open
                // window. Stock plaintext from here on.
                if tick >= token_end + STEP_GUARD_TICKS {
                    let cmd = self.cmd.take().expect("begin() supplies the command");
                    self.prog
                        .send_command_at(tick + block_len, self.serial, cmd);
                    self.stats.commands_sent += 1;
                    self.state = WakePhase::CmdSent;
                }
            }
            WakePhase::CmdSent => {
                if !self.prog.take_responses().is_empty() {
                    self.delivered = true;
                    self.stats.replies_delivered += 1;
                    self.state = WakePhase::Done;
                }
                self.prog.take_raw();
            }
            WakePhase::Done => {
                self.prog.take_responses();
                self.prog.take_raw();
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Rc<RefCell> adapters: the driver is both a medium Node (produce/consume
// in the block's device phases) and the DefenseHook (observe point). The
// two roles never overlap within a block — node phases run first, the
// observe closure after — so the RefCell borrows are disjoint.
// ---------------------------------------------------------------------------

trait Driver {
    fn node(&mut self) -> &mut Programmer;
    fn set_cmd(&mut self, cmd: Command);
    fn block(&mut self, s: &mut Scenario);
    fn is_delivered(&self) -> bool;
    fn get_stats(&self) -> DefenseStats;
}

impl Driver for FenceDriver {
    fn node(&mut self) -> &mut Programmer {
        &mut self.prog
    }
    fn set_cmd(&mut self, cmd: Command) {
        self.cmd = Some(cmd);
    }
    fn block(&mut self, s: &mut Scenario) {
        self.on_block(s);
    }
    fn is_delivered(&self) -> bool {
        self.delivered
    }
    fn get_stats(&self) -> DefenseStats {
        self.stats.clone()
    }
}

impl Driver for WakeDriver {
    fn node(&mut self) -> &mut Programmer {
        &mut self.prog
    }
    fn set_cmd(&mut self, cmd: Command) {
        self.cmd = Some(cmd);
    }
    fn block(&mut self, s: &mut Scenario) {
        self.on_block(s);
    }
    fn is_delivered(&self) -> bool {
        self.delivered
    }
    fn get_stats(&self) -> DefenseStats {
        self.stats.clone()
    }
}

struct NodeHandle<D: Driver>(Rc<RefCell<D>>);

impl<D: Driver> Node for NodeHandle<D> {
    fn label(&self) -> &str {
        "defense-programmer"
    }
    fn produce(&mut self, medium: &mut hb_channel::medium::Medium) {
        self.0.borrow_mut().node().produce(medium);
    }
    fn consume(&mut self, medium: &mut hb_channel::medium::Medium) {
        self.0.borrow_mut().node().consume(medium);
    }
}

struct HookHandle<D: Driver>(Rc<RefCell<D>>);

impl<D: Driver> DefenseHook for HookHandle<D> {
    fn begin(&mut self, _scenario: &mut Scenario, cmd: Command) {
        self.0.borrow_mut().set_cmd(cmd);
    }
    fn on_block(&mut self, scenario: &mut Scenario) {
        self.0.borrow_mut().block(scenario);
    }
    fn delivered(&self) -> bool {
        self.0.borrow().is_delivered()
    }
    fn stats(&self) -> DefenseStats {
        self.0.borrow().get_stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario::ScenarioConfig;

    fn run_clean(defense: &dyn Defense, seed: u64, seconds: f64) -> (ExchangeReport, Scenario) {
        let mut cfg = ScenarioConfig::paper(seed);
        defense.configure(&mut cfg);
        let mut builder = ScenarioBuilder::new(cfg);
        let mut rig = defense.install(&mut builder);
        let mut scenario = builder.build();
        let report = run_defended_exchange(
            &mut scenario,
            &mut rig,
            &mut [],
            Command::Interrogate,
            seconds,
        );
        (report, scenario)
    }

    #[test]
    fn every_defense_delivers_on_a_clean_channel() {
        for d in DEFENSES {
            let (report, _) = run_clean(d, 11, 0.120);
            assert!(report.delivered, "{} must deliver", d.name());
            assert!(report.stats.commands_sent >= 1, "{}", d.name());
            assert!(report.stats.replies_delivered >= 1, "{}", d.name());
        }
    }

    #[test]
    fn fence_exchange_is_sealed_end_to_end() {
        let (report, scenario) = run_clean(&ImdFenceDefense, 13, 0.120);
        assert!(report.delivered);
        assert_eq!(report.stats.handshakes_completed, 1);
        // The device executed exactly the one sealed command and refused
        // nothing (the HELLO is not a command).
        assert_eq!(scenario.imd.stats.commands_executed, 1);
        assert_eq!(scenario.imd.stats.auth_rejects, 0);
    }

    #[test]
    fn wakeup_exchange_spends_a_token() {
        let (report, scenario) = run_clean(&WakeupRadioDefense, 17, 0.120);
        assert!(report.delivered);
        assert_eq!(report.stats.wake_tokens_sent, 1);
        assert_eq!(scenario.imd.stats.wake_tokens_accepted, 1);
        assert_eq!(scenario.imd.stats.commands_executed, 1);
    }

    #[test]
    fn claims_are_distinct_and_names_kebab() {
        let mut names = Vec::new();
        for d in DEFENSES {
            assert!(d.name().chars().all(|c| c.is_ascii_lowercase() || c == '-'));
            names.push(d.name());
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), DEFENSES.len());
    }
}
