//! Ablations of the shield's design choices (beyond the paper's own
//! figures, as called out in DESIGN.md):
//!
//! * **Shaped vs flat jamming** — Fig. 5 argues shaping matters; this
//!   ablation measures it end to end: eavesdropper BER at equal jamming
//!   power under both jammers.
//! * **Cancellation sweep** — how shield PER degrades as the achievable
//!   cancellation `G` shrinks (the SINR gap of Eq. 9 in action).
//! * **Turn-around profile** — software (270 µs) vs hardware (10 µs)
//!   implementation, measured at the jam-release point.

use crate::montecarlo::{self, Estimate, McConfig};
use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_imd::commands::Command;
use hb_shield::jamsignal::JamSignal;

use super::{relay_one_exchange, Effort};

/// Exchanges per adaptive trial (fresh scenario per trial — see
/// [`super::fig8`]).
const PACKETS_PER_TRIAL: usize = 2;

/// Shaped-vs-flat end-to-end result.
#[derive(Debug, Clone)]
pub struct JamShapeAblation {
    /// Eavesdropper BER under the shaped jammer (point estimate).
    pub ber_shaped: f64,
    /// Eavesdropper BER under the flat jammer at the same power.
    pub ber_flat: f64,
    /// BER estimate with CI, shaped jammer.
    pub shaped_est: Estimate,
    /// BER estimate with CI, flat jammer.
    pub flat_est: Estimate,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// One adaptive trial of the shaped-vs-flat measurement: eavesdropper
/// bit errors at location 1 with the given jammer, over a fresh scenario
/// from the derived seed, [`PACKETS_PER_TRIAL`] exchanges.
///
/// Runs at a reduced +8 dB jamming margin: at the full +20 dB operating
/// point *both* jammers saturate the eavesdropper at BER ≈ 0.5, hiding
/// the difference; the shaping advantage is a power-budget argument and
/// shows at the margin where power is scarce.
fn jam_trial(flat: bool, seed: u64) -> (u64, u64) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.jam_margin_db = Some(8.0);
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(1, "eve");
    let mut scenario = builder.build();
    if flat {
        let fft = scenario.shield.as_ref().unwrap().config().fft_size;
        scenario
            .shield
            .as_mut()
            .unwrap()
            .set_jammer(JamSignal::flat(fft));
    }
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
    let mut errors = 0u64;
    let mut total = 0u64;
    for _ in 0..PACKETS_PER_TRIAL {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            errors += (ber * record.bits.len() as f64).round() as u64;
            total += record.bits.len() as u64;
        }
        eve.clear();
    }
    (errors.min(total), total)
}

/// Runs the shaped-vs-flat ablation through the adaptive engine (both
/// arms in parallel, per-arm master seeds derived before the fan-out,
/// inner loops single-worker).
pub fn jam_shape(effort: Effort, seed: u64) -> JamShapeAblation {
    let cfg = McConfig::from_effort(&effort);
    let arms: Vec<Estimate> = crate::parallel::parallel_map(&[false, true], |i, &flat| {
        montecarlo::adaptive_proportion_with(1, &cfg, montecarlo::trial_seed(seed, i as u64), |s| {
            jam_trial(flat, s)
        })
    });
    let (shaped_est, flat_est) = (arms[0], arms[1]);
    let (ber_shaped, ber_flat) = (shaped_est.mean, flat_est.mean);
    let mut artifact = Artifact::new(
        "Ablation: jam shaping",
        "Eavesdropper BER at location 1, equal jamming power",
    );
    artifact.push_series(Series::from_estimates(
        "BER (0 = flat profile, 1 = shaped)",
        &[(0.0, flat_est), (1.0, shaped_est)],
    ));
    artifact.note(format!(
        "shaped {ber_shaped:.3} [{:.3}, {:.3}] vs flat {ber_flat:.3} [{:.3}, {:.3}]: \
         matching the IMD's spectrum concentrates jamming where the matched filter \
         listens (§6(a))",
        shaped_est.ci_lo, shaped_est.ci_hi, flat_est.ci_lo, flat_est.ci_hi
    ));
    JamShapeAblation {
        ber_shaped,
        ber_flat,
        shaped_est,
        flat_est,
        artifact,
    }
}

/// Cancellation-sweep result.
#[derive(Debug, Clone)]
pub struct CancellationAblation {
    /// (mean cancellation dB, shield packet loss).
    pub per_vs_g: Vec<(f64, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Sweeps the achievable cancellation and measures shield PER (sweep
/// points in parallel, seeds pre-derived per point).
pub fn cancellation_sweep(effort: Effort, seed: u64) -> CancellationAblation {
    let gs = [20.0, 24.0, 28.0, 32.0, 38.0];
    let per_vs_g: Vec<(f64, f64)> = crate::parallel::parallel_map(&gs, |i, &g| {
        // A fn-pointer tweak keyed off a thread-local would be clumsy;
        // instead rebuild with a custom config through the tweak hook.
        fn set20(c: &mut hb_shield::shield::ShieldConfig) {
            c.est_snr_db = 20.0;
        }
        fn set24(c: &mut hb_shield::shield::ShieldConfig) {
            c.est_snr_db = 24.0;
        }
        fn set28(c: &mut hb_shield::shield::ShieldConfig) {
            c.est_snr_db = 28.0;
        }
        fn set32(c: &mut hb_shield::shield::ShieldConfig) {
            c.est_snr_db = 32.0;
        }
        fn set38(c: &mut hb_shield::shield::ShieldConfig) {
            c.est_snr_db = 38.0;
        }
        let tweak: fn(&mut hb_shield::shield::ShieldConfig) = match i {
            0 => set20,
            1 => set24,
            2 => set28,
            3 => set32,
            _ => set38,
        };
        let mut cfg = ScenarioConfig::paper(seed.wrapping_add(i as u64 * 37));
        cfg.shield_tweak = Some(tweak);
        let mut scenario = ScenarioBuilder::new(cfg).build();
        for _ in 0..effort.packets_per_location {
            relay_one_exchange(&mut scenario, &mut [], Command::Interrogate);
        }
        let sent = scenario.imd.stats.responses_sent.max(1);
        let ok = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
        (g, 1.0 - ok as f64 / sent as f64)
    });
    let mut artifact = Artifact::new(
        "Ablation: cancellation depth",
        "Shield packet loss vs achievable antidote cancellation G",
    );
    artifact.push_series(Series::new("PER vs G (dB)", per_vs_g.clone()));
    artifact.note(
        "Eq. 9 in action: SINR_S = SINR_A + G; with the +20 dB jamming margin, \
         the shield needs roughly G > 26 dB to keep PER near zero",
    );
    CancellationAblation { per_vs_g, artifact }
}

/// Turn-around comparison result.
#[derive(Debug, Clone)]
pub struct TurnaroundAblation {
    /// Mean measured turn-around, software profile, seconds.
    pub software_s: f64,
    /// Mean measured turn-around, hardware profile, seconds.
    pub hardware_s: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Compares the software (GNU Radio, 270 µs) and hardware (~10 µs)
/// turn-around profiles at the jam-release point (§11 argues a hardware
/// implementation would free the channel an order of magnitude faster).
pub fn turnaround(effort: Effort, seed: u64) -> TurnaroundAblation {
    fn set_hw(c: &mut hb_shield::shield::ShieldConfig) {
        c.turnaround = hb_shield::shield::TurnaroundProfile::Hardware;
    }
    let mut means = Vec::new();
    for hw in [false, true] {
        let mut cfg = ScenarioConfig::paper(seed.wrapping_add(hw as u64));
        if hw {
            cfg.shield_tweak = Some(set_hw);
        }
        let reps = effort.attempts_per_location.max(3);
        // Repetitions fan out; aggregation stays in repetition order.
        let samples: Vec<Vec<f64>> = crate::parallel::parallel_map_n(reps, |r| {
            let mut c = cfg.clone();
            c.seed = cfg.seed.wrapping_add(r as u64 * 131);
            let mut builder = ScenarioBuilder::new(c);
            let atk_ant = builder.add_at_location(1, "atk");
            let mut scenario = builder.build();
            let mut atk = hb_adversary::active::ActiveAttacker::new(
                hb_adversary::active::AttackerConfig::commercial_programmer(),
                atk_ant,
            );
            let serial = scenario.imd.config().serial;
            let ch = scenario.channel();
            atk.send_forged_command(64, ch, serial, Command::Interrogate);
            scenario.run_seconds(&mut [&mut atk as &mut dyn hb_channel::sim::Node], 0.08);
            scenario.shield.as_ref().unwrap().stats.turnaround_s.clone()
        });
        let mut acc = 0.0;
        let mut n = 0usize;
        for rep in &samples {
            for &t in rep {
                acc += t;
                n += 1;
            }
        }
        means.push(if n > 0 { acc / n as f64 } else { f64::NAN });
    }
    let mut artifact = Artifact::new(
        "Ablation: turn-around",
        "Jam-release delay after the adversary stops: software vs hardware profile",
    );
    artifact.push_series(Series::new(
        "mean turn-around seconds (0 = software, 1 = hardware)",
        vec![(0.0, means[0]), (1.0, means[1])],
    ));
    artifact.note(format!(
        "software {:.0} µs vs hardware {:.0} µs (paper: 270 µs measured;          'tens of microseconds' projected for hardware)",
        means[0] * 1e6,
        means[1] * 1e6
    ));
    TurnaroundAblation {
        software_s: means[0],
        hardware_s: means[1],
        artifact,
    }
}

/// Wearability sweep result.
#[derive(Debug, Clone)]
pub struct WearabilityAblation {
    /// (shield distance m, shield PER, eavesdropper BER at location 1).
    pub rows: Vec<(f64, f64, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Sweeps where the shield is worn relative to the implant. The paper's
/// wearability argument (§3.2) requires the shield well inside half a
/// wavelength (37.5 cm); this sweep confirms protection is insensitive to
/// the exact wearing position in that range.
pub fn wearability(effort: Effort, seed: u64) -> WearabilityAblation {
    let distances = [0.10, 0.25, 0.35];
    let rows: Vec<(f64, f64, f64)> = crate::parallel::parallel_map(&distances, |i, &d| {
        // The layout's shield offset is fixed; emulate other wearing
        // distances by scaling the contact coupling with free-space delta
        // (a few dB across this range — the coupling floor dominates).
        let extra_db = 20.0 * (d / 0.25f64).log10().max(-6.0);
        let mut cfg = ScenarioConfig::paper(seed.wrapping_add(i as u64 * 97));
        cfg.shield_body_coupling_db = 21.0 + extra_db;
        let mut builder = ScenarioBuilder::new(cfg);
        let eve_ant = builder.add_at_location(1, "eve");
        let mut scenario = builder.build();
        let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
        let mut errors = 0usize;
        let mut total = 0usize;
        for _ in 0..effort.packets_per_location {
            relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
            for record in scenario.imd.take_tx_log() {
                let ber = eve.ber_against(record.start_tick, &record.bits);
                errors += (ber * record.bits.len() as f64).round() as usize;
                total += record.bits.len();
            }
            eve.clear();
        }
        let sent = scenario.imd.stats.responses_sent.max(1);
        let ok = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
        (
            d,
            1.0 - ok as f64 / sent as f64,
            errors as f64 / total.max(1) as f64,
        )
    });
    let mut artifact = Artifact::new(
        "Ablation: wearability",
        "Protection vs shield wearing distance (all well under half a wavelength)",
    );
    artifact.push_series(Series::new(
        "shield PER vs distance (m)",
        rows.iter().map(|&(d, per, _)| (d, per)).collect(),
    ));
    artifact.push_series(Series::new(
        "eavesdropper BER vs distance (m)",
        rows.iter().map(|&(d, _, ber)| (d, ber)).collect(),
    ));
    artifact.note(
        "confidentiality and reliability hold across realistic wearing positions —          the basis of the necklace/brooch form factor (§3.2)",
    );
    WearabilityAblation { rows, artifact }
}

/// RF-impairment robustness result.
#[derive(Debug, Clone)]
pub struct RobustnessAblation {
    /// Shield packet loss under clean conditions.
    pub per_clean: f64,
    /// Shield packet loss with a 2 kHz IMD oscillator offset and 5%
    /// impulsive-interference blocks at −95 dBm (10 dB below the IMD's
    /// received level; uncoded telemetry frames have no FEC, so impulses
    /// *above* the signal level inevitably cost whole frames — on real
    /// hardware as much as here).
    pub per_impaired: f64,
    /// Eavesdropper BER under the impaired conditions (must stay ~0.5).
    pub ber_impaired: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Stress-tests the shield against RF impairments the paper's analysis
/// waves at but the hardware certainly experienced: oscillator offset
/// between the IMD and the shield (§6(a)'s CFO compensation note) and
/// impulsive interference. Protection must degrade gracefully, not
/// collapse.
pub fn robustness(effort: Effort, seed: u64) -> RobustnessAblation {
    let measure = |impaired: bool, seed: u64| -> (f64, f64) {
        let mut builder = ScenarioBuilder::new(ScenarioConfig::paper(seed));
        let eve_ant = builder.add_at_location(1, "eve");
        let mut scenario = builder.build();
        if impaired {
            let imd_ant = scenario.imd.antenna();
            scenario.medium.set_cfo_hz(imd_ant, 2e3);
            scenario.medium.set_impulse_noise(0.05, -95.0);
        }
        let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
        let mut errors = 0usize;
        let mut total = 0usize;
        for _ in 0..effort.packets_per_location {
            relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
            for record in scenario.imd.take_tx_log() {
                let ber = eve.ber_against(record.start_tick, &record.bits);
                errors += (ber * record.bits.len() as f64).round() as usize;
                total += record.bits.len();
            }
            eve.clear();
        }
        let sent = scenario.imd.stats.responses_sent.max(1);
        let ok = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
        (
            1.0 - ok as f64 / sent as f64,
            errors as f64 / total.max(1) as f64,
        )
    };
    let arms = crate::parallel::parallel_map(&[false, true], |_, &impaired| {
        measure(impaired, if impaired { seed ^ 0x1CE } else { seed })
    });
    let (per_clean, _) = arms[0];
    let (per_impaired, ber_impaired) = arms[1];

    let mut artifact = Artifact::new(
        "Ablation: RF impairments",
        "Shield PER and eavesdropper BER under CFO (2 kHz) + impulsive interference",
    );
    artifact.push_series(Series::new(
        "shield PER (0 = clean, 1 = impaired)",
        vec![(0.0, per_clean), (1.0, per_impaired)],
    ));
    artifact.note(format!(
        "PER clean {per_clean:.3} -> impaired {per_impaired:.3}; eavesdropper BER stays {ber_impaired:.3}"
    ));
    RobustnessAblation {
        per_clean,
        per_impaired,
        ber_impaired,
        artifact,
    }
}

use crate::experiments::registry::{EvalCtx, Experiment};

/// Registry entry: [`jam_shape`] as a first-class experiment.
pub struct JamShapeExperiment;

impl Experiment for JamShapeExperiment {
    fn name(&self) -> &'static str {
        "ablation-jam-shape"
    }
    fn reproduces(&self) -> &'static str {
        "Ablation — shaped vs flat jamming, end-to-end BER"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        jam_shape(ctx.effort, ctx.seed).artifact
    }
}

/// Registry entry: [`cancellation_sweep`] as a first-class experiment.
pub struct CancellationExperiment;

impl Experiment for CancellationExperiment {
    fn name(&self) -> &'static str {
        "ablation-cancellation"
    }
    fn reproduces(&self) -> &'static str {
        "Ablation — shield PER vs cancellation depth G"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        cancellation_sweep(ctx.effort, ctx.seed).artifact
    }
}

/// Registry entry: [`turnaround`] as a first-class experiment.
pub struct TurnaroundExperiment;

impl Experiment for TurnaroundExperiment {
    fn name(&self) -> &'static str {
        "ablation-turnaround"
    }
    fn reproduces(&self) -> &'static str {
        "Ablation — software vs hardware turn-around"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        turnaround(ctx.effort, ctx.seed).artifact
    }
}

/// Registry entry: [`wearability`] as a first-class experiment.
pub struct WearabilityExperiment;

impl Experiment for WearabilityExperiment {
    fn name(&self) -> &'static str {
        "ablation-wearability"
    }
    fn reproduces(&self) -> &'static str {
        "Ablation — protection vs shield wearing distance"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        wearability(ctx.effort, ctx.seed).artifact
    }
}

/// Registry entry: [`robustness`] as a first-class experiment.
pub struct RobustnessExperiment;

impl Experiment for RobustnessExperiment {
    fn name(&self) -> &'static str {
        "ablation-rf"
    }
    fn reproduces(&self) -> &'static str {
        "Ablation — robustness to CFO + impulsive interference"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        robustness(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_jamming_is_weaker_against_matched_filter() {
        // CI form of the old point-estimate test, for any `HB_TEST_SEED`:
        // the arms' intervals must separate (the data exclude "shaping
        // buys nothing"), the old 0.05 point-estimate gap must hold at a
        // 10x larger sample (calibrated true gap ~0.08, scenario-level
        // noise ~0.009 at this sizing: a >3-sigma margin), and the shaped
        // arm's interval must sit inside the old ±0.1 band around 0.5.
        let r = jam_shape(
            Effort {
                ci_half_width: 0.006,
                mc_max_trials: 64,
                ..Effort::tiny()
            },
            super::super::test_seed(19),
        );
        assert!(
            r.shaped_est.ci_lo > r.flat_est.ci_hi,
            "shaped CI {:?} must separate from flat CI {:?}",
            r.shaped_est,
            r.flat_est
        );
        assert!(
            r.ber_shaped > r.ber_flat + 0.05,
            "shaped {} should beat flat {} by 0.05",
            r.ber_shaped,
            r.ber_flat
        );
        assert!(
            r.shaped_est.within(0.4, 0.6),
            "shaped BER CI must sit inside 0.5±0.1: {:?}",
            r.shaped_est
        );
    }

    /// Prints high-precision estimates across seeds — run by hand when
    /// recalibrating the bounds above (`cargo test -p hb_testbed
    /// calibrate_jam_shape -- --ignored --nocapture`).
    #[test]
    #[ignore = "calibration helper, not a regression test"]
    fn calibrate_jam_shape() {
        use crate::montecarlo::trial_seed;
        for seed in [1u64, 2, 3] {
            for flat in [false, true] {
                let bers: Vec<f64> = (0..128)
                    .map(|i| {
                        let (e, t) = jam_trial(flat, trial_seed(seed ^ flat as u64, i));
                        e as f64 / t.max(1) as f64
                    })
                    .collect();
                let n = bers.len() as f64;
                let mean = bers.iter().sum::<f64>() / n;
                let var = bers.iter().map(|b| (b - mean).powi(2)).sum::<f64>() / (n - 1.0);
                println!(
                    "seed {seed} flat={flat}: per-trial mean {mean:.4} std {:.4}",
                    var.sqrt()
                );
            }
        }
    }

    #[test]
    fn hardware_turnaround_is_order_of_magnitude_faster() {
        let r = turnaround(Effort::tiny(), 41);
        assert!(
            r.software_s > 5.0 * r.hardware_s,
            "software {} vs hardware {}",
            r.software_s,
            r.hardware_s
        );
    }

    #[test]
    fn protection_insensitive_to_wearing_distance() {
        let r = wearability(
            Effort {
                packets_per_location: 5,
                ..Effort::tiny()
            },
            43,
        );
        for &(d, per, ber) in &r.rows {
            assert!(per < 0.4, "PER {per} at {d} m");
            assert!((ber - 0.5).abs() < 0.12, "BER {ber} at {d} m");
        }
    }

    #[test]
    fn shield_survives_rf_impairments() {
        let r = robustness(
            Effort {
                packets_per_location: 6,
                ..Effort::tiny()
            },
            47,
        );
        assert!(
            r.per_impaired < 0.5,
            "impairments must not collapse the relay (PER {})",
            r.per_impaired
        );
        assert!(
            (r.ber_impaired - 0.5).abs() < 0.1,
            "confidentiality must hold under impairments (BER {})",
            r.ber_impaired
        );
    }

    #[test]
    fn low_cancellation_breaks_the_shield() {
        let r = cancellation_sweep(
            Effort {
                packets_per_location: 5,
                ..Effort::tiny()
            },
            23,
        );
        let per_low = r.per_vs_g.first().unwrap().1;
        let per_high = r.per_vs_g.last().unwrap().1;
        assert!(
            per_low > per_high + 0.3,
            "PER at G=20 ({per_low}) should far exceed PER at G=38 ({per_high})"
        );
        assert!(per_high < 0.2);
    }
}
