//! Extension experiment: quantifying the battery-depletion attack.
//!
//! Figs. 11/13 report whether a forced reply *happens*; this experiment
//! puts numbers on what the paper's motivation says is at stake —
//! "commands … to trigger the IMD to transmit unnecessarily, depleting
//! its battery" (§3.2). We measure the radio energy a sustained
//! interrogation attack burns and convert it to days of device lifetime,
//! with and without the shield.

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::sim::Node;
use hb_imd::commands::Command;

use super::Effort;

/// Result of the battery-attack quantification.
#[derive(Debug, Clone)]
pub struct BatteryResult {
    /// Radio energy per elicited reply, joules.
    pub energy_per_reply_j: f64,
    /// Replies per simulated second of sustained attack, shield absent.
    pub replies_per_s_absent: f64,
    /// Same with the shield present (should be ~0).
    pub replies_per_s_present: f64,
    /// Projected lifetime lost per day of sustained attack, in days,
    /// shield absent.
    pub lifetime_lost_days_per_day: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Sustains an interrogation attack for `seconds` of simulated time and
/// counts elicited replies plus radio energy burned.
fn sustained_attack(shield_on: bool, seconds: f64, seed: u64) -> (u64, f64) {
    let cfg = if shield_on {
        ScenarioConfig::paper(seed)
    } else {
        ScenarioConfig::paper_no_shield(seed)
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let atk_ant = builder.add_at_location(2, "attacker");
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), atk_ant);
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();

    // One interrogation every 60 ms — as fast as command + reply allow.
    let period = scenario.medium.blocks_for_duration(0.060) * 16;
    let n = (seconds / 0.060).ceil() as u64;
    for i in 0..n {
        attacker.send_forged_command(64 + i * period, channel, serial, Command::Interrogate);
    }
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], seconds + 0.06);
    (
        scenario.imd.stats.responses_sent,
        scenario.imd.battery().radio_energy_j(),
    )
}

/// Runs the quantification.
pub fn run(effort: Effort, seed: u64) -> BatteryResult {
    let seconds = (effort.attempts_per_location as f64 * 0.12).max(0.5);
    let (replies_absent, energy_absent) = sustained_attack(false, seconds, seed);
    let (replies_present, _) = sustained_attack(true, seconds, seed ^ 0x77);

    let energy_per_reply = if replies_absent > 0 {
        energy_absent / replies_absent as f64
    } else {
        0.0
    };
    let replies_per_s_absent = replies_absent as f64 / seconds;
    let replies_per_s_present = replies_present as f64 / seconds;

    // A day of sustained attack vs the battery's baseline budget.
    let battery = hb_imd::battery::Battery::typical_icd();
    let joules_per_day = replies_per_s_absent * energy_per_reply * 86_400.0;
    let baseline_life_s = battery.remaining_lifetime_s();
    let lost_fraction = joules_per_day / 20_000.0; // capacity
    let lifetime_lost_days = lost_fraction * baseline_life_s / 86_400.0;

    let mut artifact = Artifact::new(
        "Extension: battery depletion",
        "Radio energy and lifetime cost of a sustained interrogation attack",
    );
    artifact.push_series(Series::new(
        "replies/s (0 = shield absent, 1 = present)",
        vec![(0.0, replies_per_s_absent), (1.0, replies_per_s_present)],
    ));
    artifact.note(format!(
        "{:.1} forced replies/s without the shield ({:.2} mJ radio energy each); \
         a day of sustained attack burns ~{:.0} days of device lifetime",
        replies_per_s_absent,
        energy_per_reply * 1e3,
        lifetime_lost_days,
    ));
    artifact.note(format!(
        "with the shield: {replies_per_s_present:.2} replies/s — the attack is starved"
    ));
    BatteryResult {
        energy_per_reply_j: energy_per_reply,
        replies_per_s_absent,
        replies_per_s_present,
        lifetime_lost_days_per_day: lifetime_lost_days,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct BatteryExperiment;

impl crate::experiments::registry::Experiment for BatteryExperiment {
    fn name(&self) -> &'static str {
        "battery"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — quantified battery-depletion attack"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shield_starves_the_depletion_attack() {
        let r = run(Effort::tiny(), 3);
        assert!(
            r.replies_per_s_absent > 5.0,
            "sustained attack should force many replies ({}/s)",
            r.replies_per_s_absent
        );
        assert_eq!(
            r.replies_per_s_present, 0.0,
            "shield must prevent forced replies"
        );
        assert!(r.energy_per_reply_j > 0.0);
        assert!(r.lifetime_lost_days_per_day > 1.0);
    }
}
