//! Extension: the defense matrix — {passive eavesdropper, active forger,
//! battery-drain, mobile walker} × {shield, IMDfence, wake-up radio}.
//!
//! The paper argues for an *external* defense (the shield) partly by
//! listing what in-device alternatives would cost. This experiment puts
//! the alternatives on the same bench: every [`Defense`] in
//! [`crate::defense::DEFENSES`] faces the full adversary suite, and each
//! cell reports three calibrated quantities with confidence intervals:
//!
//! * **Attack success** — what the adversary came for: plaintext
//!   recovery (eavesdropper), an executed forged therapy command
//!   (forger, walker), or the fraction of a 16-command drain burst that
//!   extracted an implant transmission (drain).
//! * **Delivery** — the legitimate exchange completing *in the same
//!   trial*, because a defense that blocks the attacker by also blocking
//!   the clinic is not a defense.
//! * **IMD radio energy** — millijoules per trial; the drain row is where
//!   the defenses separate (the shield starves the attacker, the wake-up
//!   gate ignores them for free, and IMDfence pays a Nak per refusal).
//!
//! Cells fan out on the sweep runner with per-cell master seeds derived
//! before the fan-out, so the matrix is bit-identical at any thread
//! count.

use crate::defense::{run_defended_exchange, Defense, DEFENSES};
use crate::montecarlo::{self, Estimate, McConfig};
use crate::report::{Artifact, Series};
use crate::scenario::{ImdModel, Scenario, ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_channel::geometry::Placement;
use hb_channel::sim::Node;
use hb_imd::commands::Command;
use hb_imd::therapy::TherapyParams;

use super::Effort;

/// The adversaries of the matrix rows, in canonical order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// Passive recording at location 1 (20 cm) with perfect frame timing.
    Eavesdropper,
    /// Forged `SetTherapy` from a commercial programmer at location 1.
    Forger,
    /// 16-command interrogation burst from location 1 over ~1.1 s.
    Drain,
    /// The forger, placed along the mobile walk (waypoint by seed).
    Walker,
}

/// Canonical row order (the artifact's x axis is the index here).
pub const ADVERSARIES: [Adversary; 4] = [
    Adversary::Eavesdropper,
    Adversary::Forger,
    Adversary::Drain,
    Adversary::Walker,
];

impl Adversary {
    /// Row label.
    pub fn label(&self) -> &'static str {
        match self {
            Adversary::Eavesdropper => "eavesdropper",
            Adversary::Forger => "forger",
            Adversary::Drain => "battery-drain",
            Adversary::Walker => "walker",
        }
    }
}

/// When the forger fires, seconds into the exchange: after every
/// defense's clean legitimate exchange has finished (≤ ~105 ms — LBT,
/// handshake, command, reply), so the forged frame meets the defense
/// itself rather than colliding with legitimate traffic — and well
/// inside the wake-up gate's 250 ms window, which is exactly the residue
/// that defense does not claim to close.
const FORGE_AT_S: f64 = 0.110;

/// Forger/walker trial length, seconds.
const FORGE_RUN_S: f64 = 0.180;

/// Drain burst: command count and spacing (one per exchange window).
const DRAIN_COMMANDS: u64 = 16;
const DRAIN_SPACING_S: f64 = 0.060;

/// One matrix trial's raw outcome.
struct Trial {
    /// Attack-success count pair (numerator, denominator).
    attack: (u64, u64),
    /// The legitimate exchange completed.
    delivered: bool,
    /// IMD radio energy spent this trial, millijoules.
    energy_mj: f64,
}

/// Builds a defended scenario: paper config (model alternated by seed
/// parity as everywhere else), the defense's configuration edits, the
/// defense's own nodes, then the adversary antenna — in that order, so
/// the shield arm's build-time RNG draw sequence matches the legacy
/// engine exactly.
fn build_defended(
    defense: &dyn Defense,
    adv_placement: Placement,
    seed: u64,
) -> (
    Scenario,
    crate::defense::DefenseRig,
    hb_channel::medium::AntennaId,
) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        ImdModel::VirtuosoIcd
    } else {
        ImdModel::ConcertoCrt
    };
    defense.configure(&mut cfg);
    let mut builder = ScenarioBuilder::new(cfg);
    let rig = defense.install(&mut builder);
    let ant = builder.add_at(adv_placement);
    let scenario = builder.build();
    (scenario, rig, ant)
}

/// Location-1 placement (20 cm — the paper's hardest near position).
fn near_placement(label: &str) -> Placement {
    crate::layout::Fig6Layout::paper()
        .location(1)
        .placement(label)
}

/// The dangerous-but-in-range forged therapy programming (as in Fig. 12).
fn forged_therapy() -> Command {
    let mut p = TherapyParams::nominal();
    p.rate_ppm = 150;
    Command::SetTherapy(p)
}

/// Eavesdropper trial: records the whole exchange with perfect frame
/// timing, then attempts full frame recovery of every implant
/// transmission. The attack counts only if the recovered payload equals
/// the ground-truth *plaintext* — jam-garbled bits fail the CRC and
/// sealed replies recover to ciphertext, so only an actually-open
/// air interface leaks.
fn eaves_trial(defense: &dyn Defense, seed: u64) -> Trial {
    let (mut scenario, mut rig, ant) = build_defended(defense, near_placement("eve"), seed);
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, ant, scenario.channel());
    let report = run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut eve as &mut dyn Node],
        Command::Interrogate,
        0.120,
    );
    let leaked = scenario.imd.take_tx_log().iter().any(|r| {
        eve.recover_frame(r.start_tick, r.bits.len())
            .is_some_and(|f| f.payload == r.payload)
    });
    Trial {
        attack: (leaked as u64, 1),
        delivered: report.delivered,
        energy_mj: scenario.imd.battery().radio_energy_j() * 1e3,
    }
}

/// Forger trial from `placement`: a forged therapy command fired at
/// [`FORGE_AT_S`] into a legitimate `Interrogate` exchange. Success iff
/// the implant changed therapy.
fn forge_trial_at(defense: &dyn Defense, placement: Placement, seed: u64) -> Trial {
    let (mut scenario, mut rig, ant) = build_defended(defense, placement, seed);
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), ant);
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    let block_len = scenario.medium.config().block_len as u64;
    let start =
        scenario.medium.tick() + scenario.medium.blocks_for_duration(FORGE_AT_S) * block_len;
    attacker.send_forged_command(start, channel, serial, forged_therapy());
    let report = run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut attacker as &mut dyn Node],
        Command::Interrogate,
        FORGE_RUN_S,
    );
    Trial {
        attack: (u64::from(scenario.imd.stats.therapy_changes > 0), 1),
        delivered: report.delivered,
        energy_mj: scenario.imd.battery().radio_energy_j() * 1e3,
    }
}

/// Drain trial: [`DRAIN_COMMANDS`] forged interrogations at
/// [`DRAIN_SPACING_S`] spacing, starting after the legitimate exchange.
/// The attack numerator counts implant transmissions *beyond* the
/// legitimate ones (replies delivered to the rig plus handshake Acks) —
/// every one of them is battery the adversary spent, whether a coerced
/// reply (open air), an in-window reply (wake gate), or an auth Nak
/// (IMDfence's refusal cost).
fn drain_trial(defense: &dyn Defense, seed: u64) -> Trial {
    let (mut scenario, mut rig, ant) = build_defended(defense, near_placement("drainer"), seed);
    let mut attacker = ActiveAttacker::new(AttackerConfig::commercial_programmer(), ant);
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    let block_len = scenario.medium.config().block_len as u64;
    let tick0 = scenario.medium.tick();
    let spacing = scenario.medium.blocks_for_duration(DRAIN_SPACING_S) * block_len;
    let start = tick0 + scenario.medium.blocks_for_duration(FORGE_AT_S) * block_len;
    for i in 0..DRAIN_COMMANDS {
        attacker.send_forged_command(start + i * spacing, channel, serial, Command::Interrogate);
    }
    let seconds = FORGE_AT_S + DRAIN_COMMANDS as f64 * DRAIN_SPACING_S + 0.080;
    let report = run_defended_exchange(
        &mut scenario,
        &mut rig,
        &mut [&mut attacker as &mut dyn Node],
        Command::Interrogate,
        seconds,
    );
    let legit = report.stats.replies_delivered + report.stats.handshakes_completed;
    let extra = scenario.imd.stats.responses_sent.saturating_sub(legit);
    Trial {
        attack: (extra.min(DRAIN_COMMANDS), DRAIN_COMMANDS),
        delivered: report.delivered,
        energy_mj: scenario.imd.battery().radio_energy_j() * 1e3,
    }
}

/// Walker trial: the forger along the mobile walk, waypoint chosen by
/// seed so the cell pools the whole path (NLOS far corner → 20 cm).
fn walker_trial(defense: &dyn Defense, seed: u64) -> Trial {
    let waypoints = super::mobile::path(super::mobile::WAYPOINTS);
    let wp = waypoints[(seed as usize) % waypoints.len()];
    forge_trial_at(defense, wp.placement("walker"), seed)
}

/// Dispatches one trial of `adversary` against `defense`.
fn trial(adversary: Adversary, defense: &dyn Defense, seed: u64) -> Trial {
    match adversary {
        Adversary::Eavesdropper => eaves_trial(defense, seed),
        Adversary::Forger => forge_trial_at(defense, near_placement("attacker"), seed),
        Adversary::Drain => drain_trial(defense, seed),
        Adversary::Walker => walker_trial(defense, seed),
    }
}

/// One cell of the matrix, with confidence intervals.
#[derive(Debug, Clone, Copy)]
pub struct CellEstimate {
    /// P(attack succeeds) — the adversary-specific success criterion.
    pub attack: Estimate,
    /// P(legitimate exchange delivers in the same trial).
    pub delivered: Estimate,
    /// Mean IMD radio energy per trial, millijoules.
    pub energy_mj: Estimate,
}

/// Runs one cell single-worker (the matrix fans out across cells;
/// master seeds are pre-derived by the caller).
fn run_cell(
    adversary: Adversary,
    defense: &dyn Defense,
    effort: &Effort,
    seeds: [u64; 2],
) -> CellEstimate {
    let mc = McConfig::from_effort(effort).with_max_trials(effort.attempts_per_location);
    let pooled = montecarlo::adaptive_proportions_with::<_, 2>(1, &mc, seeds[0], |s| {
        let t = trial(adversary, defense, s);
        [t.attack, (t.delivered as u64, 1)]
    });
    let energy_mc = mc.with_max_trials((effort.attempts_per_location / 2).max(3));
    let energy_mj = montecarlo::adaptive_mean_with(1, &energy_mc, seeds[1], |s| {
        trial(adversary, defense, s).energy_mj
    });
    CellEstimate {
        attack: pooled.estimates[0],
        delivered: pooled.estimates[1],
        energy_mj,
    }
}

/// Result of the defense-matrix experiment.
#[derive(Debug, Clone)]
pub struct DefenseMatrixResult {
    /// `cells[d][a]`: defense `d` ([`DEFENSES`] order) vs adversary `a`
    /// ([`ADVERSARIES`] order).
    pub cells: Vec<Vec<CellEstimate>>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the matrix: all 12 cells fan out on the sweep runner with
/// per-cell pre-derived master seeds.
pub fn run(effort: Effort, seed: u64) -> DefenseMatrixResult {
    let n = DEFENSES.len() * ADVERSARIES.len();
    let flat: Vec<CellEstimate> = crate::parallel::parallel_map_n(n, |i| {
        let d = i / ADVERSARIES.len();
        let a = i % ADVERSARIES.len();
        let seeds = [
            montecarlo::trial_seed(seed ^ 0x00DE_F311, i as u64),
            montecarlo::trial_seed(seed ^ 0x00E4_9C05, i as u64),
        ];
        run_cell(ADVERSARIES[a], DEFENSES[d], &effort, seeds)
    });
    let cells: Vec<Vec<CellEstimate>> = DEFENSES
        .iter()
        .enumerate()
        .map(|(d, _)| flat[d * ADVERSARIES.len()..(d + 1) * ADVERSARIES.len()].to_vec())
        .collect();

    let mut artifact = Artifact::new(
        "Extension: defense matrix",
        "Attack success, legitimate delivery, and IMD radio energy for \
         {eavesdropper, forger, battery-drain, walker} × {shield, IMDfence, wake-up radio}",
    );
    let xs = |d: usize, f: fn(&CellEstimate) -> Estimate| -> Vec<(f64, Estimate)> {
        cells[d]
            .iter()
            .enumerate()
            .map(|(a, c)| (a as f64, f(c)))
            .collect()
    };
    for (d, defense) in DEFENSES.iter().enumerate() {
        artifact.push_series(Series::from_estimates(
            &format!("attack success ({})", defense.name()),
            &xs(d, |c| c.attack),
        ));
        artifact.push_series(Series::from_estimates(
            &format!("legitimate delivery ({})", defense.name()),
            &xs(d, |c| c.delivered),
        ));
        artifact.push_series(Series::from_estimates(
            &format!("IMD radio energy, mJ ({})", defense.name()),
            &xs(d, |c| c.energy_mj),
        ));
    }
    artifact.note(format!(
        "x axis: adversary 0..{} = {:?}",
        ADVERSARIES.len() - 1,
        ADVERSARIES.iter().map(|a| a.label()).collect::<Vec<_>>()
    ));
    let drain = ADVERSARIES
        .iter()
        .position(|a| *a == Adversary::Drain)
        .expect("drain row present");
    artifact.note(format!(
        "drain row, mean IMD radio energy per trial: shield {:.3} mJ, imdfence {:.3} mJ \
         (a Nak per refused command), wake-up radio {:.3} mJ (gate closed after the window)",
        cells[0][drain].energy_mj.mean,
        cells[1][drain].energy_mj.mean,
        cells[2][drain].energy_mj.mean,
    ));
    let forger = ADVERSARIES
        .iter()
        .position(|a| *a == Adversary::Forger)
        .expect("forger row present");
    artifact.note(format!(
        "forged therapy success at 20 cm: shield {:.2}, imdfence {:.2}, \
         wake-up radio {:.2} — the gate's open window is exactly the residue it does not claim to close",
        cells[0][forger].attack.mean,
        cells[1][forger].attack.mean,
        cells[2][forger].attack.mean,
    ));
    DefenseMatrixResult { cells, artifact }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct DefenseMatrixExperiment;

impl crate::experiments::registry::Experiment for DefenseMatrixExperiment {
    fn name(&self) -> &'static str {
        "defense-matrix"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — {eavesdropper, forger, battery-drain, walker} × {shield, IMDfence, wake-up radio}"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::defense::{ImdFenceDefense, ShieldDefense, WakeupRadioDefense};

    #[test]
    fn forged_therapy_lands_only_on_the_open_window() {
        // Cryptographic/physical facts that hold at any seed: the shield
        // jams the forged frame, IMDfence never authenticates plaintext,
        // and the wake-up gate's open session window lets it through.
        let seed = super::super::test_seed(83) | 1; // odd → Concerto arm
        let shield = forge_trial_at(&ShieldDefense, near_placement("attacker"), seed);
        assert_eq!(shield.attack.0, 0, "shield must jam the forged frame");
        let fence = forge_trial_at(&ImdFenceDefense, near_placement("attacker"), seed);
        assert_eq!(fence.attack.0, 0, "plaintext must never authenticate");
        let wake = forge_trial_at(&WakeupRadioDefense, near_placement("attacker"), seed);
        assert_eq!(
            wake.attack.0, 1,
            "in-window forgery is the wake gate's documented residue"
        );
    }

    #[test]
    fn drain_burst_separates_the_defenses() {
        let seed = super::super::test_seed(89) & !1; // even → Virtuoso arm
        let shield = drain_trial(&ShieldDefense, seed);
        let fence = drain_trial(&ImdFenceDefense, seed);
        let wake = drain_trial(&WakeupRadioDefense, seed);
        assert_eq!(shield.attack.0, 0, "shield must starve the drain burst");
        assert_eq!(
            fence.attack.0, DRAIN_COMMANDS,
            "every refused command must cost IMDfence a Nak"
        );
        assert!(
            wake.attack.0 < DRAIN_COMMANDS / 2,
            "the gate must drop most of the burst (got {} of {DRAIN_COMMANDS})",
            wake.attack.0
        );
        assert!(
            wake.energy_mj < fence.energy_mj,
            "wake gate must spend less than fence's per-refusal Naks ({} vs {} mJ)",
            wake.energy_mj,
            fence.energy_mj
        );
    }

    #[test]
    fn eavesdropper_reads_only_the_open_air() {
        let seed = super::super::test_seed(97) & !1;
        let shield = eaves_trial(&ShieldDefense, seed);
        assert_eq!(shield.attack.0, 0, "jamming must deny frame recovery");
        let fence = eaves_trial(&ImdFenceDefense, seed);
        assert_eq!(
            fence.attack.0, 0,
            "sealed replies must not recover to plaintext"
        );
        let wake = eaves_trial(&WakeupRadioDefense, seed);
        assert_eq!(
            wake.attack.0, 1,
            "the open window's plaintext is the wake gate's documented leak"
        );
    }

    #[test]
    fn tiny_matrix_is_deterministic() {
        let a = run(Effort::tiny(), 99);
        let b = run(Effort::tiny(), 99);
        assert_eq!(a.artifact.to_csv(), b.artifact.to_csv());
        assert_eq!(a.cells.len(), DEFENSES.len());
        assert!(a.cells.iter().all(|row| row.len() == ADVERSARIES.len()));
    }

    /// Truth printer for sizing the conformance-suite assertions: run
    /// with `cargo test -p hb_testbed calibrate_defense -- --ignored
    /// --nocapture` and read the per-cell numbers before blessing any
    /// bound (never size a CI assertion from one lucky seed — sweep
    /// HB_TEST_SEED).
    #[test]
    #[ignore]
    fn calibrate_defense_matrix_cells() {
        let effort = Effort::quick();
        let seed = super::super::test_seed(20110815);
        for defense in DEFENSES {
            for (a, adversary) in ADVERSARIES.iter().enumerate() {
                let seeds = [
                    montecarlo::trial_seed(seed ^ 0x00DE_F311, a as u64),
                    montecarlo::trial_seed(seed ^ 0x00E4_9C05, a as u64),
                ];
                let cell = run_cell(*adversary, defense, &effort, seeds);
                println!(
                    "{:>12} vs {:>13}: attack {:.3} [{:.3},{:.3}] n={} | delivered {:.3} | energy {:.4} mJ",
                    defense.name(),
                    adversary.label(),
                    cell.attack.mean,
                    cell.attack.ci_lo,
                    cell.attack.ci_hi,
                    cell.attack.n,
                    cell.delivered.mean,
                    cell.energy_mj.mean,
                );
            }
        }
    }

    /// Truth printer for the drain-row energy bound in the conformance
    /// suite: per-defense extra-reply counts and energy at several seeds.
    #[test]
    #[ignore]
    fn calibrate_defense_drain_energy() {
        for s in 0..6u64 {
            let seed = super::super::test_seed(300) ^ s;
            for defense in DEFENSES {
                let t = drain_trial(defense, seed);
                println!(
                    "seed {seed:>20} {:>12}: extra {}/{} | delivered {} | energy {:.4} mJ",
                    defense.name(),
                    t.attack.0,
                    t.attack.1,
                    t.delivered,
                    t.energy_mj,
                );
            }
        }
    }
}
