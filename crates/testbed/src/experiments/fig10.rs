//! Figure 10: CDF of the shield's packet loss while jamming.
//!
//! Same setting as Fig. 9, measured on the shield side: of the IMD replies
//! it jammed, how many did the jammer-cum-receiver fail to decode? Paper
//! result: ~0.2% average.

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_dsp::stats::Cdf;
use hb_imd::commands::Command;

use super::{relay_one_exchange, Effort};

/// Result of the Fig. 10 experiment.
#[derive(Debug, Clone)]
pub struct Fig10Result {
    /// Per-run packet loss rates.
    pub per_run_loss: Vec<f64>,
    /// Pooled loss rate over all packets.
    pub overall_loss: f64,
    /// CDF of per-run loss.
    pub cdf: Cdf,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// One run: `packets` exchanges; returns (replies sent, replies decoded).
pub fn one_run(packets: usize, seed: u64) -> (u64, u64) {
    let mut scenario = ScenarioBuilder::new(ScenarioConfig::paper(seed)).build();
    for _ in 0..packets {
        relay_one_exchange(&mut scenario, &mut [], Command::Interrogate);
    }
    let sent = scenario.imd.stats.responses_sent;
    let decoded = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
    (sent, decoded.min(sent))
}

/// Runs several independent runs (each with fresh couplings and channel
/// estimation draws — the spread of the CDF comes from the cancellation
/// distribution of Fig. 7).
pub fn run(effort: Effort, seed: u64) -> Fig10Result {
    let n_runs = (effort.runs / 4).max(3);
    // Independent repetitions fan out on the sweep runner; aggregation
    // happens in repetition order so the result is thread-count-invariant.
    let runs = crate::parallel::parallel_map_n(n_runs, |r| {
        one_run(
            effort.packets_per_location,
            seed.wrapping_add(r as u64 * 1009),
        )
    });
    let mut per_run = Vec::new();
    let mut sent_total = 0u64;
    let mut decoded_total = 0u64;
    for &(sent, decoded) in &runs {
        sent_total += sent;
        decoded_total += decoded;
        if sent > 0 {
            per_run.push(1.0 - decoded as f64 / sent as f64);
        }
    }
    let overall = if sent_total > 0 {
        1.0 - decoded_total as f64 / sent_total as f64
    } else {
        1.0
    };
    let cdf = Cdf::from_samples(per_run.clone());
    let mut artifact = Artifact::new(
        "Figure 10",
        "CDF of packet loss at the shield while jamming IMD transmissions",
    );
    artifact.push_series(Series::new("per-run loss CDF", cdf.points()));
    artifact.note(format!(
        "overall loss {:.4} over {} packets (paper: ~0.002)",
        overall, sent_total
    ));
    Fig10Result {
        per_run_loss: per_run,
        overall_loss: overall,
        cdf,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig10Experiment;

impl crate::experiments::registry::Experiment for Fig10Experiment {
    fn name(&self) -> &'static str {
        "fig10"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 10 — shield packet-loss CDF (~0.2%)"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shield_decodes_nearly_everything_while_jamming() {
        let (sent, decoded) = one_run(10, 21);
        assert_eq!(sent, 10, "all exchanges should produce replies");
        assert!(
            decoded >= 9,
            "shield decoded only {decoded}/{sent} while jamming"
        );
    }
}
