//! Figure 11: the battery-depletion attack — probability that an
//! unauthorized command elicits an IMD reply, by location, with the shield
//! absent vs present.
//!
//! §10.3(a): the adversary uses a commercial IMD programmer (FCC-compliant
//! power) and replays recorded commands. Paper: without the shield the
//! attack succeeds out to 14 m (location 8, success 0.59, with locations
//! 6–7 at 0.94/0.77); with the shield it fails everywhere, even at 20 cm.

use crate::report::{Artifact, Series};
use crate::scenario::{ImdModel, ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_channel::sim::Node;
use hb_imd::commands::Command;
use hb_imd::therapy::TherapyParams;

use super::Effort;

/// What a single attack attempt is trying to do.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttackGoal {
    /// Trigger a reply (depletes the battery; leaks data).
    ElicitReply,
    /// Change therapy parameters.
    ChangeTherapy,
}

/// Outcome of one attack attempt.
#[derive(Debug, Clone, Copy, Default)]
pub struct AttackOutcome {
    /// The IMD executed the command / replied.
    pub success: bool,
    /// The shield raised an alarm (always false when absent).
    pub alarm: bool,
    /// The shield engaged active jamming.
    pub jammed: bool,
}

/// Runs one attack attempt from numbered location `location` and reports
/// the outcome.
///
/// A fresh scenario is built per attempt (fresh shadowing), which is what
/// turns marginal locations into fractional success probabilities.
pub fn attack_once(
    location: usize,
    shield_on: bool,
    attacker_cfg: &AttackerConfig,
    goal: AttackGoal,
    seed: u64,
) -> AttackOutcome {
    let placement = crate::layout::Fig6Layout::paper()
        .location(location)
        .placement("attacker");
    attack_once_at(placement, shield_on, attacker_cfg, goal, seed)
}

/// [`attack_once`] from an arbitrary placement — the mobile-adversary
/// sweep walks the attacker through positions that are not numbered
/// Fig. 6 locations.
pub fn attack_once_at(
    placement: hb_channel::geometry::Placement,
    shield_on: bool,
    attacker_cfg: &AttackerConfig,
    goal: AttackGoal,
    seed: u64,
) -> AttackOutcome {
    let mut cfg = if shield_on {
        ScenarioConfig::paper(seed)
    } else {
        ScenarioConfig::paper_no_shield(seed)
    };
    // The paper evaluates both devices and pools the results (§10);
    // alternate between them by seed.
    cfg.imd_model = if seed.is_multiple_of(2) {
        ImdModel::VirtuosoIcd
    } else {
        ImdModel::ConcertoCrt
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let atk_ant = builder.add_at(placement);
    let mut scenario = builder.build();
    let mut attacker = ActiveAttacker::new(attacker_cfg.clone(), atk_ant);

    let cmd = match goal {
        AttackGoal::ElicitReply => Command::Interrogate,
        AttackGoal::ChangeTherapy => {
            let mut p = TherapyParams::nominal();
            p.rate_ppm = 150; // a dangerous but in-range setting
            Command::SetTherapy(p)
        }
    };
    let serial = scenario.imd.config().serial;
    let channel = scenario.channel();
    // Give the shield a little idle time first (its probe cycle), then
    // attack.
    let start = scenario.medium.tick() + 64;
    attacker.send_forged_command(start, channel, serial, cmd);
    // Command (~20 ms) + reply window + jam tails: 90 ms covers it.
    scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.090);

    let success = match goal {
        AttackGoal::ElicitReply => scenario.imd.stats.responses_sent > 0,
        AttackGoal::ChangeTherapy => scenario.imd.stats.therapy_changes > 0,
    };
    let (alarm, jammed) = scenario
        .shield
        .as_ref()
        .map(|s| (s.stats.alarms > 0, s.stats.active_jam_events > 0))
        .unwrap_or((false, false));
    AttackOutcome {
        success,
        alarm,
        jammed,
    }
}

/// Success probability over `attempts` fresh scenarios.
pub fn success_probability(
    location: usize,
    shield_on: bool,
    attacker_cfg: &AttackerConfig,
    goal: AttackGoal,
    attempts: usize,
    seed: u64,
) -> f64 {
    let mut successes = 0usize;
    for a in 0..attempts {
        let s = seed
            .wrapping_mul(6364136223846793005)
            .wrapping_add((location * 1000 + a) as u64);
        if attack_once(location, shield_on, attacker_cfg, goal, s).success {
            successes += 1;
        }
    }
    successes as f64 / attempts as f64
}

/// Adaptive success-probability estimate: one attack attempt per trial,
/// grown in deterministic rounds until the Wilson interval reaches the
/// effort's half-width target — capped at the effort's attempt budget, so
/// the degenerate arms (success ≈ 0 or ≈ 1, whose intervals tighten
/// slowly) cost no more than the legacy fixed-sample sweep.
pub fn success_probability_ci(
    location: usize,
    shield_on: bool,
    attacker_cfg: &AttackerConfig,
    goal: AttackGoal,
    effort: &super::Effort,
    seed: u64,
) -> crate::montecarlo::Estimate {
    success_probability_ci_with(
        crate::parallel::threads(),
        location,
        shield_on,
        attacker_cfg,
        goal,
        effort,
        seed,
    )
}

/// [`success_probability_ci`] with an explicit worker count (location
/// sweeps fan out across locations and run each arm single-worker).
pub fn success_probability_ci_with(
    workers: usize,
    location: usize,
    shield_on: bool,
    attacker_cfg: &AttackerConfig,
    goal: AttackGoal,
    effort: &super::Effort,
    seed: u64,
) -> crate::montecarlo::Estimate {
    let cfg = crate::montecarlo::McConfig::from_effort(effort)
        .with_max_trials(effort.attempts_per_location);
    crate::montecarlo::adaptive_proportion_with(workers, &cfg, seed, |s| {
        (
            attack_once(location, shield_on, attacker_cfg, goal, s).success as u64,
            1,
        )
    })
}

/// Result of the Fig. 11 experiment.
#[derive(Debug, Clone)]
pub struct Fig11Result {
    /// (location, P[IMD replies]) with the shield absent.
    pub absent: Vec<(usize, f64)>,
    /// Same with the shield present.
    pub present: Vec<(usize, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs locations 1..=14 (as in the paper's figure), both arms. Locations
/// fan out on the sweep runner; per-attempt seeds are derived from
/// `(seed, location, attempt)` inside `success_probability`, so results
/// are identical at any thread count.
pub fn run(effort: Effort, seed: u64) -> Fig11Result {
    let cfg = AttackerConfig::commercial_programmer();
    let arms: Vec<(f64, f64)> = crate::parallel::parallel_map_n(14, |i| {
        let loc = i + 1;
        (
            success_probability(
                loc,
                false,
                &cfg,
                AttackGoal::ElicitReply,
                effort.attempts_per_location,
                seed,
            ),
            success_probability(
                loc,
                true,
                &cfg,
                AttackGoal::ElicitReply,
                effort.attempts_per_location,
                seed ^ 0xABCD,
            ),
        )
    });
    let mut absent = Vec::new();
    let mut present = Vec::new();
    for (i, &(off, on)) in arms.iter().enumerate() {
        absent.push((i + 1, off));
        present.push((i + 1, on));
    }
    let mut artifact = Artifact::new(
        "Figure 11",
        "P(IMD replies to unauthorized command) by location — battery-depletion attack at FCC power",
    );
    artifact.push_series(Series::new(
        "shield absent",
        absent.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "shield present",
        present.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    let max_present = present.iter().map(|&(_, p)| p).fold(0.0, f64::max);
    let range_absent = absent.iter().filter(|&&(_, p)| p > 0.5).count();
    artifact.note(format!(
        "shield absent: success at {range_absent} of 14 locations (paper: 8, up to 14 m); \
         shield present: max success {max_present:.2} (paper: 0 everywhere)"
    ));
    Fig11Result {
        absent,
        present,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig11Experiment;

impl crate::experiments::registry::Experiment for Fig11Experiment {
    fn name(&self) -> &'static str {
        "fig11"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 11 — battery-depletion attack success probability"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_attack_succeeds_without_shield_and_fails_with() {
        let cfg = AttackerConfig::commercial_programmer();
        let off = attack_once(1, false, &cfg, AttackGoal::ElicitReply, 1);
        assert!(off.success, "20 cm attack must succeed with no shield");
        let mut on_successes = 0;
        for s in 0..3 {
            let on = attack_once(1, true, &cfg, AttackGoal::ElicitReply, 100 + s);
            assert!(on.jammed, "shield must engage jamming");
            if on.success {
                on_successes += 1;
            }
        }
        assert_eq!(on_successes, 0, "shield must block the FCC-power attack");
    }

    #[test]
    fn far_attack_fails_even_without_shield() {
        let cfg = AttackerConfig::commercial_programmer();
        let far = attack_once(18, false, &cfg, AttackGoal::ElicitReply, 5);
        assert!(!far.success, "30 m NLOS attack at FCC power must fail");
    }
}
