//! Figure 12: the therapy-modification attack — probability that an
//! unauthorized command *changes the IMD's treatment parameters*, by
//! location, shield absent vs present.
//!
//! §10.3(a): same setup as Fig. 11 with the more dangerous command. The
//! paper found "no statistical difference in success rate between commands
//! that modify the patient's treatment and commands that trigger the IMD
//! to transmit" — our reproduction exhibits the same, since both ride the
//! same physical layer.

use crate::report::{Artifact, Series};
use hb_adversary::active::AttackerConfig;

use super::fig11::{success_probability, AttackGoal};
use super::Effort;

/// Result of the Fig. 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// (location, P[treatment changed]) with the shield absent.
    pub absent: Vec<(usize, f64)>,
    /// Same with the shield present.
    pub present: Vec<(usize, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs locations 1..=14, both arms, fanned out on the sweep runner
/// (thread-count-invariant; see Fig. 11).
pub fn run(effort: Effort, seed: u64) -> Fig12Result {
    let cfg = AttackerConfig::commercial_programmer();
    let arms: Vec<(f64, f64)> = crate::parallel::parallel_map_n(14, |i| {
        let loc = i + 1;
        (
            success_probability(
                loc,
                false,
                &cfg,
                AttackGoal::ChangeTherapy,
                effort.attempts_per_location,
                seed.wrapping_add(7777),
            ),
            success_probability(
                loc,
                true,
                &cfg,
                AttackGoal::ChangeTherapy,
                effort.attempts_per_location,
                seed ^ 0x5A5A,
            ),
        )
    });
    let mut absent = Vec::new();
    let mut present = Vec::new();
    for (i, &(off, on)) in arms.iter().enumerate() {
        absent.push((i + 1, off));
        present.push((i + 1, on));
    }
    let mut artifact = Artifact::new(
        "Figure 12",
        "P(IMD changes treatment on unauthorized command) by location — therapy attack at FCC power",
    );
    artifact.push_series(Series::new(
        "shield absent",
        absent.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "shield present",
        present.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    let max_present = present.iter().map(|&(_, p)| p).fold(0.0, f64::max);
    artifact.note(format!(
        "shield present: max success {max_present:.2} (paper: ~0 everywhere); \
         success profile mirrors Fig. 11 — same physical layer, different payload"
    ));
    Fig12Result {
        absent,
        present,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig12Experiment;

impl crate::experiments::registry::Experiment for Fig12Experiment {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 12 — therapy-change attack success probability"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::super::fig11::attack_once;
    use super::*;

    #[test]
    fn therapy_change_blocked_by_shield() {
        let cfg = AttackerConfig::commercial_programmer();
        let off = attack_once(2, false, &cfg, AttackGoal::ChangeTherapy, 31);
        assert!(off.success, "therapy attack must land without the shield");
        let on = attack_once(2, true, &cfg, AttackGoal::ChangeTherapy, 31);
        assert!(!on.success, "therapy attack must be jammed with the shield");
    }
}
