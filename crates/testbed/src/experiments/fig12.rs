//! Figure 12: the therapy-modification attack — probability that an
//! unauthorized command *changes the IMD's treatment parameters*, by
//! location, shield absent vs present.
//!
//! §10.3(a): same setup as Fig. 11 with the more dangerous command. The
//! paper found "no statistical difference in success rate between commands
//! that modify the patient's treatment and commands that trigger the IMD
//! to transmit" — our reproduction exhibits the same, since both ride the
//! same physical layer.

use crate::montecarlo::{self, Estimate};
use crate::report::{Artifact, Series};
use hb_adversary::active::AttackerConfig;

use super::fig11::{success_probability_ci_with, AttackGoal};
use super::Effort;

/// Result of the Fig. 12 experiment.
#[derive(Debug, Clone)]
pub struct Fig12Result {
    /// (location, P[treatment changed]) with the shield absent.
    pub absent: Vec<(usize, f64)>,
    /// Same with the shield present.
    pub present: Vec<(usize, f64)>,
    /// Per-location estimates with CIs, shield absent.
    pub absent_est: Vec<(usize, Estimate)>,
    /// Per-location estimates with CIs, shield present.
    pub present_est: Vec<(usize, Estimate)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs locations 1..=14, both arms, through the adaptive engine — fanned
/// out on the sweep runner with per-arm master seeds derived before the
/// fan-out (thread-count-invariant; see Fig. 11), each arm's adaptive
/// loop single-worker.
pub fn run(effort: Effort, seed: u64) -> Fig12Result {
    let cfg = AttackerConfig::commercial_programmer();
    let arms: Vec<(Estimate, Estimate)> = crate::parallel::parallel_map_n(14, |i| {
        let loc = i + 1;
        (
            success_probability_ci_with(
                1,
                loc,
                false,
                &cfg,
                AttackGoal::ChangeTherapy,
                &effort,
                montecarlo::trial_seed(seed.wrapping_add(7777), loc as u64),
            ),
            success_probability_ci_with(
                1,
                loc,
                true,
                &cfg,
                AttackGoal::ChangeTherapy,
                &effort,
                montecarlo::trial_seed(seed ^ 0x5A5A, loc as u64),
            ),
        )
    });
    let mut absent_est = Vec::new();
    let mut present_est = Vec::new();
    for (i, &(off, on)) in arms.iter().enumerate() {
        absent_est.push((i + 1, off));
        present_est.push((i + 1, on));
    }
    let absent: Vec<(usize, f64)> = absent_est.iter().map(|&(l, e)| (l, e.mean)).collect();
    let present: Vec<(usize, f64)> = present_est.iter().map(|&(l, e)| (l, e.mean)).collect();
    let mut artifact = Artifact::new(
        "Figure 12",
        "P(IMD changes treatment on unauthorized command) by location — therapy attack at FCC power",
    );
    artifact.push_series(Series::from_estimates(
        "shield absent",
        &absent_est
            .iter()
            .map(|&(l, e)| (l as f64, e))
            .collect::<Vec<_>>(),
    ));
    artifact.push_series(Series::from_estimates(
        "shield present",
        &present_est
            .iter()
            .map(|&(l, e)| (l as f64, e))
            .collect::<Vec<_>>(),
    ));
    let max_present = present.iter().map(|&(_, p)| p).fold(0.0, f64::max);
    let max_present_hi = present_est
        .iter()
        .map(|&(_, e)| e.ci_hi)
        .fold(0.0, f64::max);
    artifact.note(format!(
        "shield present: max success {max_present:.2}, worst-case upper confidence bound \
         {max_present_hi:.2} (paper: ~0 everywhere); success profile mirrors Fig. 11 — \
         same physical layer, different payload"
    ));
    Fig12Result {
        absent,
        present,
        absent_est,
        present_est,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig12Experiment;

impl crate::experiments::registry::Experiment for Fig12Experiment {
    fn name(&self) -> &'static str {
        "fig12"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 12 — therapy-change attack success probability"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::super::fig11::attack_once;
    use super::*;

    #[test]
    fn therapy_change_blocked_by_shield() {
        let cfg = AttackerConfig::commercial_programmer();
        let off = attack_once(2, false, &cfg, AttackGoal::ChangeTherapy, 31);
        assert!(off.success, "therapy attack must land without the shield");
        let on = attack_once(2, true, &cfg, AttackGoal::ChangeTherapy, 31);
        assert!(!on.success, "therapy attack must be jammed with the shield");
    }

    #[test]
    fn shield_bounds_therapy_success_with_confidence() {
        // The CI form of "shield present: ~0 everywhere": over adaptively
        // grown fresh-scenario attempts at 30 cm, the whole Wilson
        // interval must stay below 0.35 (12 clean attempts put the upper
        // bound at 0.24; even one success keeps it under the bar) — for
        // any `HB_TEST_SEED`.
        let cfg = AttackerConfig::commercial_programmer();
        let effort = Effort {
            attempts_per_location: 12,
            ci_half_width: 0.10,
            mc_max_trials: 12,
            ..Effort::tiny()
        };
        let est = super::super::fig11::success_probability_ci(
            2,
            true,
            &cfg,
            AttackGoal::ChangeTherapy,
            &effort,
            super::super::test_seed(31),
        );
        assert!(
            est.below(0.35),
            "therapy-change success CI must stay near zero with the shield: {est:?}"
        );
        assert_eq!(est.n, 12, "the degenerate arm must run to its attempt cap");
    }
}
