//! Figure 13: the high-powered adversary — success probability with the
//! shield absent/present, and the shield's alarm probability, across all
//! 18 locations.
//!
//! §10.3(b): custom hardware at 100× the shield's power (+20 dB over FCC).
//! Paper: without the shield it succeeds out to 27 m (location 13)
//! including non-line-of-sight; with the shield, only from nearby
//! line-of-sight locations (< 5 m, locations 1–4, with location 5 at 0.1);
//! whenever it succeeds despite the shield, the shield raises an alarm.

use crate::report::{Artifact, Series};
use hb_adversary::active::AttackerConfig;

use super::fig11::{attack_once, AttackGoal};
use super::Effort;

/// Result of the Fig. 13 experiment.
#[derive(Debug, Clone)]
pub struct Fig13Result {
    /// (location, P\[success\]) with the shield absent.
    pub absent: Vec<(usize, f64)>,
    /// (location, P\[success\]) with the shield present.
    pub present: Vec<(usize, f64)>,
    /// (location, P\[alarm\]) with the shield present.
    pub alarm: Vec<(usize, f64)>,
    /// Fraction of shield-present successes that also raised an alarm
    /// (the paper's key safety property: 1.0).
    pub alarm_coverage_of_successes: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the 18-location sweep with the 100× attacker.
pub fn run(effort: Effort, seed: u64) -> Fig13Result {
    let cfg = AttackerConfig::high_power_custom();
    // One task per location (both arms, all attempts); per-attempt seeds
    // derive from (seed, location, attempt) alone, so the sweep is
    // thread-count-invariant. Totals aggregate in location order.
    let per_loc: Vec<(usize, usize, usize, usize)> = crate::parallel::parallel_map_n(18, |i| {
        let loc = i + 1;
        let mut s_abs = 0usize;
        let mut s_pres = 0usize;
        let mut s_alarm = 0usize;
        let mut s_alarmed_success = 0usize;
        for a in 0..effort.attempts_per_location {
            let sd = seed
                .wrapping_mul(2862933555777941757)
                .wrapping_add((loc * 4096 + a) as u64);
            if attack_once(loc, false, &cfg, AttackGoal::ChangeTherapy, sd).success {
                s_abs += 1;
            }
            let on = attack_once(loc, true, &cfg, AttackGoal::ChangeTherapy, sd ^ 0xF00D);
            if on.success {
                s_pres += 1;
                if on.alarm {
                    s_alarmed_success += 1;
                }
            }
            if on.alarm {
                s_alarm += 1;
            }
        }
        (s_abs, s_pres, s_alarm, s_alarmed_success)
    });
    let mut absent = Vec::new();
    let mut present = Vec::new();
    let mut alarm = Vec::new();
    let mut successes_with_shield = 0usize;
    let mut alarmed_successes = 0usize;
    for (i, &(s_abs, s_pres, s_alarm, s_alarmed_success)) in per_loc.iter().enumerate() {
        let loc = i + 1;
        let n = effort.attempts_per_location as f64;
        absent.push((loc, s_abs as f64 / n));
        present.push((loc, s_pres as f64 / n));
        alarm.push((loc, s_alarm as f64 / n));
        successes_with_shield += s_pres;
        alarmed_successes += s_alarmed_success;
    }

    let coverage = if successes_with_shield > 0 {
        alarmed_successes as f64 / successes_with_shield as f64
    } else {
        1.0
    };

    let mut artifact = Artifact::new(
        "Figure 13",
        "High-powered (100x) adversary: success probability and shield alarm, by location",
    );
    artifact.push_series(Series::new(
        "IMD responds, shield absent",
        absent.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "IMD responds, shield present",
        present.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    artifact.push_series(Series::new(
        "shield raises alarm",
        alarm.iter().map(|&(l, p)| (l as f64, p)).collect(),
    ));
    let absent_range = absent.iter().filter(|&&(_, p)| p > 0.5).count();
    let present_range = present.iter().filter(|&&(_, p)| p > 0.5).count();
    artifact.note(format!(
        "shield absent: majority-success at {absent_range} locations (paper: 13, out to 27 m); \
         shield present: {present_range} (paper: 4, all LOS < 5 m)"
    ));
    artifact.note(format!(
        "alarm covered {:.0}% of successful attacks (paper: 100%)",
        coverage * 100.0
    ));
    Fig13Result {
        absent,
        present,
        alarm,
        alarm_coverage_of_successes: coverage,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig13Experiment;

impl crate::experiments::registry::Experiment for Fig13Experiment {
    fn name(&self) -> &'static str {
        "fig13"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 13 — 100x-power adversary + alarm"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn high_power_beats_shield_up_close_with_alarm() {
        let cfg = AttackerConfig::high_power_custom();
        let mut wins = 0;
        let mut alarms_on_wins = 0;
        for s in 0..4 {
            let on = attack_once(1, true, &cfg, AttackGoal::ChangeTherapy, 500 + s);
            if on.success {
                wins += 1;
                if on.alarm {
                    alarms_on_wins += 1;
                }
            }
        }
        assert!(
            wins >= 3,
            "100x attacker should usually win at 20 cm ({wins}/4)"
        );
        assert_eq!(alarms_on_wins, wins, "every success must trigger the alarm");
    }

    #[test]
    fn high_power_blocked_at_medium_range_with_shield() {
        let cfg = AttackerConfig::high_power_custom();
        let mut wins = 0;
        for s in 0..3 {
            // Location 7 is 13 m: well past the ~5 m crossover.
            if attack_once(7, true, &cfg, AttackGoal::ChangeTherapy, 900 + s).success {
                wins += 1;
            }
        }
        assert_eq!(wins, 0, "100x attacker must fail at 13 m with shield on");
    }

    #[test]
    fn high_power_reaches_27m_without_shield() {
        let cfg = AttackerConfig::high_power_custom();
        let mut wins = 0;
        for s in 0..3 {
            if attack_once(13, false, &cfg, AttackGoal::ChangeTherapy, 1300 + s).success {
                wins += 1;
            }
        }
        assert!(
            wins >= 2,
            "100x attacker should reach 27 m LOS with no shield ({wins}/3)"
        );
    }
}
