//! Figure 3: the IMD's reply timing, and the fact that it does **not**
//! carrier-sense.
//!
//! §6 / Fig. 3: (a) the Virtuoso replies a fixed ~3.5 ms after an
//! interrogation; (b) if another message occupies the medium right after
//! the interrogation, the IMD *still* replies on the same schedule — it
//! transmits blindly. This property is what makes the shield's timed
//! passive-jam window sound.

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_channel::sim::Node;
use hb_dsp::units::db_from_ratio;
use hb_imd::commands::Command;
use hb_imd::programmer::{Programmer, ProgrammerConfig};
use hb_phy::bits::Prbs;

use super::Effort;

/// Result of the Fig. 3 experiment.
#[derive(Debug, Clone)]
pub struct Fig3Result {
    /// Reply latency (s) with a quiet medium, per trial.
    pub latency_quiet_s: Vec<f64>,
    /// Reply latency with an interfering burst 1 ms after the command.
    pub latency_busy_s: Vec<f64>,
    /// Power-vs-time traces (quiet run and busy run) for plotting.
    pub artifact: Artifact,
}

/// Runs one trial; returns (reply latency s, power trace (ms, dBm)).
fn one_trial(busy_medium: bool, seed: u64) -> (Option<f64>, Vec<(f64, f64)>) {
    let mut builder = ScenarioBuilder::new(ScenarioConfig::paper_no_shield(seed));
    let prog_ant = builder.add_at_location(2, "programmer");
    let obs_ant = builder.add_at(hb_channel::geometry::Placement::los("observer", 0.1, 0.1));
    let mut scenario = builder.build();
    let channel = scenario.channel();
    let serial = scenario.imd.config().serial;

    let mut prog = Programmer::new(
        ProgrammerConfig {
            channel,
            ..Default::default()
        },
        prog_ant,
    );
    prog.send_command_at(0, serial, Command::Interrogate);
    let cmd_end = prog.tx_end_tick().unwrap();

    // Optionally occupy the medium right after the command (within 1 ms),
    // exactly like the paper's second USRP message.
    if busy_medium {
        let mut prbs = Prbs::new(0x2B);
        let modem = hb_phy::fsk::FskModem::new(scenario.imd.config().fsk);
        let burst = modem.modulate(&prbs.bits(40));
        let start = cmd_end + (0.001 * 300e3) as u64;
        let mut sched = hb_channel::txsched::TxScheduler::new();
        sched.schedule(start, channel, burst);
        // Drive via a tiny ad-hoc node.
        struct Burster(
            hb_channel::txsched::TxScheduler,
            hb_channel::medium::AntennaId,
        );
        impl Node for Burster {
            fn label(&self) -> &str {
                "burster"
            }
            fn produce(&mut self, m: &mut hb_channel::medium::Medium) {
                self.0.produce(self.1, m);
            }
            fn consume(&mut self, _m: &mut hb_channel::medium::Medium) {}
        }
        let mut burster = Burster(sched, prog_ant);
        let mut trace = Vec::new();
        run_and_trace(
            &mut scenario,
            &mut prog,
            Some(&mut burster),
            obs_ant,
            &mut trace,
        );
        let latency = reply_latency(&scenario, cmd_end);
        return (latency, trace);
    }
    let mut trace = Vec::new();
    run_and_trace(&mut scenario, &mut prog, None, obs_ant, &mut trace);
    let latency = reply_latency(&scenario, cmd_end);
    (latency, trace)
}

fn run_and_trace(
    scenario: &mut crate::scenario::Scenario,
    prog: &mut Programmer,
    mut burster: Option<&mut dyn Node>,
    obs_ant: hb_channel::medium::AntennaId,
    trace: &mut Vec<(f64, f64)>,
) {
    let blocks = scenario.medium.blocks_for_duration(0.050);
    let channel = scenario.channel();
    for _ in 0..blocks {
        scenario.imd.produce(&mut scenario.medium);
        prog.produce(&mut scenario.medium);
        if let Some(b) = burster.as_deref_mut() {
            b.produce(&mut scenario.medium);
        }
        let t_ms = scenario.medium.time_s() * 1e3;
        let p = hb_dsp::complex::mean_power(&scenario.medium.receive(obs_ant, channel));
        trace.push((t_ms, db_from_ratio(p.max(1e-30))));
        scenario.imd.consume(&mut scenario.medium);
        prog.consume(&mut scenario.medium);
        if let Some(b) = burster.as_deref_mut() {
            b.consume(&mut scenario.medium);
        }
        scenario.medium.end_block();
    }
}

fn reply_latency(scenario: &crate::scenario::Scenario, cmd_end: u64) -> Option<f64> {
    scenario
        .imd
        .tx_log
        .first()
        .map(|r| (r.start_tick.saturating_sub(cmd_end)) as f64 / 300e3)
}

/// Runs both variants over several trials.
pub fn run(effort: Effort, seed: u64) -> Fig3Result {
    let trials = (effort.runs / 8).max(3);
    let mut quiet = Vec::new();
    let mut busy = Vec::new();
    let mut quiet_trace = Vec::new();
    let mut busy_trace = Vec::new();
    for t in 0..trials {
        let (lq, trace_q) = one_trial(false, seed.wrapping_add(t as u64));
        let (lb, trace_b) = one_trial(true, seed.wrapping_add(1000 + t as u64));
        if let Some(l) = lq {
            quiet.push(l);
        }
        if let Some(l) = lb {
            busy.push(l);
        }
        if t == 0 {
            quiet_trace = trace_q;
            busy_trace = trace_b;
        }
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len().max(1) as f64;
    let mut artifact = Artifact::new(
        "Figure 3",
        "IMD/programmer interaction: reply timing with a quiet vs occupied medium",
    );
    // Thin the traces to ~0.5 ms resolution for the report (CSV keeps them).
    let thin = |t: Vec<(f64, f64)>| -> Vec<(f64, f64)> { t.into_iter().step_by(10).collect() };
    artifact.push_series(Series::new(
        "(a) power trace, quiet medium (ms, dBm)",
        thin(quiet_trace),
    ));
    artifact.push_series(Series::new(
        "(b) power trace, occupied medium (ms, dBm)",
        thin(busy_trace),
    ));
    artifact.note(format!(
        "reply latency: quiet {:.2} ms, occupied {:.2} ms (paper: fixed ~3.5 ms both ways — no carrier sensing)",
        mean(&quiet) * 1e3,
        mean(&busy) * 1e3
    ));
    Fig3Result {
        latency_quiet_s: quiet,
        latency_busy_s: busy,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig3Experiment;

impl crate::experiments::registry::Experiment for Fig3Experiment {
    fn name(&self) -> &'static str {
        "fig3"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 3 — IMD reply timing; no carrier sense"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn imd_replies_on_schedule_regardless_of_medium() {
        let (quiet, _) = one_trial(false, 5);
        let (busy, _) = one_trial(true, 5);
        let q = quiet.expect("quiet-medium reply");
        let b = busy.expect("occupied-medium reply");
        // Both inside the [T1, T2] window…
        for (name, l) in [("quiet", q), ("busy", b)] {
            assert!(
                (0.0026..0.0040).contains(&l),
                "{name} latency {l} outside reply window"
            );
        }
        // …and the occupied medium does not delay the reply by more than
        // the window's own jitter.
        assert!(
            (q - b).abs() < 0.001,
            "occupancy changed timing: {q} vs {b}"
        );
    }
}
