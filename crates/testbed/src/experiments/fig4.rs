//! Figure 4: the frequency profile of the IMD's FSK signal.
//!
//! The captured Virtuoso spectrum concentrates "most of the energy …
//! around ±50 KHz" of the 300 kHz channel. We reproduce the measurement on
//! a modulated telemetry frame.

use crate::report::{Artifact, Series};
use hb_dsp::spectrum::welch_psd;
use hb_dsp::units::db_from_ratio;
use hb_dsp::window::Window;
use hb_phy::bits::Prbs;
use hb_phy::fsk::{FskModem, FskParams};

use super::Effort;

/// Result of the Fig. 4 measurement.
#[derive(Debug, Clone)]
pub struct Fig4Result {
    /// (frequency kHz, relative power dB) points across the channel.
    pub profile: Vec<(f64, f64)>,
    /// Fraction of power within ±15 kHz of the ±50 kHz tones.
    pub tone_energy_fraction: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the measurement.
pub fn run(_effort: Effort, _seed: u64) -> Fig4Result {
    let params = FskParams::mics_default();
    let modem = FskModem::new(params);
    let mut prbs = Prbs::new(0x0D3);
    let sig = modem.modulate(&prbs.bits(8000));
    let psd = welch_psd(&sig, 512, Window::Hann, params.fs_hz);

    let peak = psd.power.iter().cloned().fold(0.0f64, f64::max);
    let profile: Vec<(f64, f64)> = psd
        .shifted()
        .into_iter()
        .map(|(f, p)| (f / 1e3, db_from_ratio((p / peak).max(1e-12))))
        .collect();
    let tone_energy = psd.power_fraction_near(50e3, 15e3) + psd.power_fraction_near(-50e3, 15e3);

    let mut artifact = Artifact::new(
        "Figure 4",
        "Frequency profile of the IMD's FSK signal (relative power, dB)",
    );
    // Thin the plot for readability.
    artifact.push_series(Series::new(
        "Virtuoso-profile FSK PSD",
        profile.iter().step_by(8).copied().collect(),
    ));
    artifact.note(format!(
        "{:.0}% of energy within ±15 kHz of the ±50 kHz tones (paper: \"most of the energy\")",
        tone_energy * 100.0
    ));
    Fig4Result {
        profile,
        tone_energy_fraction: tone_energy,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig4Experiment;

impl crate::experiments::registry::Experiment for Fig4Experiment {
    fn name(&self) -> &'static str {
        "fig4"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 4 — FSK power profile of the IMD"
    }
    fn default_effort(&self) -> super::Effort {
        super::Effort::tiny()
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_concentrates_at_tones() {
        let r = run(Effort::tiny(), 0);
        assert!(
            r.tone_energy_fraction > 0.8,
            "tone fraction {}",
            r.tone_energy_fraction
        );
        // The profile peaks near ±50 kHz.
        let peak = r
            .profile
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .unwrap();
        assert!((peak.0.abs() - 50.0).abs() < 10.0, "peak at {} kHz", peak.0);
    }
}
