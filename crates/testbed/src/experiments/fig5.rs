//! Figure 5: shaping the jamming signal's power profile to match the
//! IMD's.
//!
//! §6(a): a constant-profile ("oblivious") jammer spreads power across the
//! whole 300 kHz channel, where the FSK decoder's matched filters ignore
//! most of it; the shield instead shapes its jamming to the IMD's own
//! spectral profile, concentrating power where decoding happens.

use crate::report::{Artifact, Series};
use hb_dsp::fft::bin_freq_hz;
use hb_dsp::units::db_from_ratio;
use hb_phy::fsk::FskParams;
use hb_shield::jamsignal::JamSignal;

use super::Effort;

/// Result of the Fig. 5 comparison.
#[derive(Debug, Clone)]
pub struct Fig5Result {
    /// Shaped-jammer profile: (kHz, dB relative to its own peak).
    pub shaped: Vec<(f64, f64)>,
    /// Flat-jammer profile on the same scale.
    pub flat: Vec<(f64, f64)>,
    /// Power advantage (dB) of the shaped jammer within the FSK tone
    /// bands, at equal total power.
    pub tone_band_advantage_db: f64,
    /// Rendered artifact.
    pub artifact: Artifact,
}

fn profile_points(profile: &[f64], fs: f64) -> Vec<(f64, f64)> {
    let n = profile.len();
    let peak = profile.iter().cloned().fold(0.0f64, f64::max);
    let mut pts: Vec<(f64, f64)> = profile
        .iter()
        .enumerate()
        .map(|(k, &p)| {
            (
                bin_freq_hz(k, n, fs) / 1e3,
                db_from_ratio((p / peak).max(1e-9)),
            )
        })
        .collect();
    pts.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
    pts
}

fn tone_band_power(profile: &[f64], fs: f64) -> f64 {
    let n = profile.len();
    profile
        .iter()
        .enumerate()
        .filter(|(k, _)| {
            let f = bin_freq_hz(*k, n, fs);
            (f.abs() - 50e3).abs() < 10e3
        })
        .map(|(_, &p)| p)
        .sum()
}

/// Runs the comparison.
pub fn run(_effort: Effort, _seed: u64) -> Fig5Result {
    let params = FskParams::mics_default();
    let fft_size = 256;
    let shaped = JamSignal::shaped_for_fsk(params, fft_size);
    let flat = JamSignal::flat(fft_size);
    let shaped_profile = shaped.profile();
    let flat_profile = flat.profile();

    let adv = db_from_ratio(
        tone_band_power(&shaped_profile, params.fs_hz)
            / tone_band_power(&flat_profile, params.fs_hz),
    );

    let mut artifact = Artifact::new(
        "Figure 5",
        "Jamming power profiles at equal total power: shaped to the IMD's FSK vs constant",
    );
    artifact.push_series(Series::new(
        "shaped power profile (kHz, dB)",
        profile_points(&shaped_profile, params.fs_hz)
            .into_iter()
            .step_by(4)
            .collect(),
    ));
    artifact.push_series(Series::new(
        "constant power profile (kHz, dB)",
        profile_points(&flat_profile, params.fs_hz)
            .into_iter()
            .step_by(4)
            .collect(),
    ));
    artifact.note(format!(
        "shaped jammer delivers {adv:.1} dB more power into the FSK tone bands \
         (the frequencies that matter for decoding)"
    ));
    Fig5Result {
        shaped: profile_points(&shaped_profile, params.fs_hz),
        flat: profile_points(&flat_profile, params.fs_hz),
        tone_band_advantage_db: adv,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig5Experiment;

impl crate::experiments::registry::Experiment for Fig5Experiment {
    fn name(&self) -> &'static str {
        "fig5"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 5 — shaped vs constant jamming profile"
    }
    fn default_effort(&self) -> super::Effort {
        super::Effort::tiny()
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shaped_beats_flat_in_tone_bands() {
        let r = run(Effort::tiny(), 0);
        assert!(
            r.tone_band_advantage_db > 6.0,
            "advantage {} dB",
            r.tone_band_advantage_db
        );
    }
}
