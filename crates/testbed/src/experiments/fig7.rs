//! Figure 7: CDF of antenna cancellation.
//!
//! Reproduces §10.1(a)'s measurement *through the medium*, exactly as the
//! paper does it: "the shield transmits a random signal on its jamming
//! antenna and the corresponding antidote on its receive antenna. In each
//! run, it transmits 100 Kb without the antidote, followed by 100 Kb with
//! the antidote. … The difference in received power between the two trials
//! is the amount of jamming cancellation."
//!
//! Paper result: mean ≈ 32 dB, small variance.

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_dsp::complex::mean_power;
use hb_dsp::stats::Cdf;
use hb_dsp::units::db_from_ratio;
use rand::rngs::StdRng;
use rand::SeedableRng;

use super::Effort;

/// Result of the Fig. 7 experiment.
#[derive(Debug, Clone)]
pub struct Fig7Result {
    /// Per-run cancellation measurements, dB.
    pub cancellation_db: Cdf,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs the experiment: `effort.runs` independent trials, each with fresh
/// couplings and channel estimates.
pub fn run(effort: Effort, seed: u64) -> Fig7Result {
    let mut samples = Vec::with_capacity(effort.runs);
    for run in 0..effort.runs {
        let mut scenario =
            ScenarioBuilder::new(ScenarioConfig::paper(seed.wrapping_add(run as u64))).build();
        let shield = scenario.shield.as_mut().unwrap();
        let jam_ant = shield.jam_antenna();
        let rx_ant = shield.rx_antenna();
        let coeff = shield.full_duplex().antidote_coeff();
        let mut rng = StdRng::seed_from_u64(seed ^ (run as u64) << 17);
        let mut jam = hb_shield::jamsignal::JamSignal::shaped_for_fsk(
            shield.config().fsk,
            shield.config().fft_size,
        );
        jam.set_power_dbm(-33.0);

        // Phase 1: jam without the antidote; measure at the receive chain.
        let blocks = 600usize;
        let block_len = scenario.medium.config().block_len;
        let mut p_without = 0.0;
        for _ in 0..blocks {
            let j = jam.next_samples(&mut rng, block_len);
            scenario.medium.transmit(jam_ant, 0, &j);
            p_without += mean_power(&scenario.medium.receive(rx_ant, 0));
            scenario.medium.end_block();
        }
        // Phase 2: with the antidote.
        let mut p_with = 0.0;
        for _ in 0..blocks {
            let j = jam.next_samples(&mut rng, block_len);
            let antidote: Vec<_> = j.iter().map(|&s| s * coeff).collect();
            scenario.medium.transmit(jam_ant, 0, &j);
            scenario.medium.transmit(rx_ant, 0, &antidote);
            p_with += mean_power(&scenario.medium.receive(rx_ant, 0));
            scenario.medium.end_block();
        }
        samples.push(db_from_ratio(p_without / p_with));
    }

    let cdf = Cdf::from_samples(samples);
    let mut artifact = Artifact::new(
        "Figure 7",
        "Antenna cancellation: jamming-signal reduction at the receive antenna (CDF)",
    );
    artifact.push_series(Series::new("cancellation CDF", cdf.points()));
    artifact.note(format!(
        "measured mean {:.1} dB (paper: ~32 dB), min {:.1}, max {:.1}",
        cdf.mean(),
        cdf.min(),
        cdf.max()
    ));
    artifact.note("cancellation achieved with antennas 2 cm apart — no half-wavelength separation");
    Fig7Result {
        cancellation_db: cdf,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig7Experiment;

impl crate::experiments::registry::Experiment for Fig7Experiment {
    fn name(&self) -> &'static str {
        "fig7"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 7 — antenna-cancellation CDF (~32 dB)"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cancellation_near_32db() {
        let r = run(
            Effort {
                runs: 25,
                ..Effort::tiny()
            },
            42,
        );
        let mean = r.cancellation_db.mean();
        assert!(
            (mean - 32.0).abs() < 3.0,
            "mean cancellation {mean} dB (paper: 32)"
        );
        // Bounded worst case (paper: "the variance of this value is small").
        assert!(r.cancellation_db.min() > 22.0);
    }
}
