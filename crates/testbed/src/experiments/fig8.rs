//! Figure 8: the core trade-off — eavesdropper BER (a) and shield packet
//! loss (b) as functions of jamming power relative to the received IMD
//! power.
//!
//! §10.1(b): at +20 dB the eavesdropper's BER reaches ~50% while the
//! shield's PER stays ≤ 0.2% — establishing the operating point used by
//! every other experiment.

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_imd::commands::Command;

use super::{relay_one_exchange, Effort};

/// Result of the Fig. 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// (relative jam power dB, eavesdropper BER).
    pub ber_curve: Vec<(f64, f64)>,
    /// (relative jam power dB, shield PER).
    pub per_curve: Vec<(f64, f64)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs one margin point; returns (eavesdropper BER, shield PER).
pub fn run_margin_point(margin_db: f64, packets: usize, seed: u64) -> (f64, f64) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.jam_margin_db = Some(margin_db);
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(1, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut bit_errors = 0usize;
    let mut bits_total = 0usize;
    let mut replies_sent = 0u64;
    for _ in 0..packets {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            bit_errors += (ber * record.bits.len() as f64).round() as usize;
            bits_total += record.bits.len();
            replies_sent += 1;
        }
        eve.clear();
    }
    let decoded_at_shield = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
    let ber = if bits_total > 0 {
        bit_errors as f64 / bits_total as f64
    } else {
        0.5
    };
    let per = if replies_sent > 0 {
        1.0 - decoded_at_shield as f64 / replies_sent as f64
    } else {
        1.0
    };
    (ber, per.max(0.0))
}

/// Runs the full sweep of relative jamming powers (0..=25 dB). Sweep
/// points run in parallel; per-point seeds are derived before the fan-out,
/// so results are identical at any thread count.
pub fn run(effort: Effort, seed: u64) -> Fig8Result {
    let margins = [0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0];
    let points = crate::parallel::parallel_map(&margins, |i, &m| {
        run_margin_point(m, effort.packets_per_location, seed.wrapping_add(i as u64))
    });
    let mut ber_curve = Vec::new();
    let mut per_curve = Vec::new();
    for (&m, &(ber, per)) in margins.iter().zip(points.iter()) {
        ber_curve.push((m, ber));
        per_curve.push((m, per));
    }

    let mut artifact = Artifact::new(
        "Figure 8",
        "Eavesdropper BER (a) and shield PER (b) vs jamming power relative to the IMD's received power",
    );
    artifact.push_series(Series::new("(a) BER at the adversary", ber_curve.clone()));
    artifact.push_series(Series::new(
        "(b) packet loss at the shield",
        per_curve.clone(),
    ));
    let at20_ber = ber_curve
        .iter()
        .find(|(m, _)| (*m - 20.0).abs() < 0.1)
        .map(|&(_, b)| b)
        .unwrap_or(f64::NAN);
    let at20_per = per_curve
        .iter()
        .find(|(m, _)| (*m - 20.0).abs() < 0.1)
        .map(|&(_, p)| p)
        .unwrap_or(f64::NAN);
    artifact.note(format!(
        "at +20 dB: adversary BER {at20_ber:.3} (paper: ~0.5), shield PER {at20_per:.4} (paper: 0.002)"
    ));
    Fig8Result {
        ber_curve,
        per_curve,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig8Experiment;

impl crate::experiments::registry::Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 8 — eavesdropper BER / shield PER vs jam power"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One end-to-end sanity point at the paper's +20 dB operating point.
    /// (The full sweep runs in the bench / full_evaluation example.)
    /// Sample counts are sized so the BER estimate sits well inside the
    /// asserted bound for any reasonable RNG stream — if an RNG change
    /// trips this, grow the packet count further rather than loosening
    /// the bound (ROADMAP).
    #[test]
    fn at_20db_adversary_guesses_and_shield_decodes() {
        let (ber, per) = run_margin_point(20.0, 16, 7);
        assert!(
            (ber - 0.5).abs() < 0.08,
            "eavesdropper BER {ber} should be ~0.5"
        );
        assert!(per < 0.2, "shield PER {per} should be small");
    }

    #[test]
    fn at_0db_adversary_does_much_better() {
        // The Fig. 8a shape: BER rises monotonically with jamming power and
        // saturates at 0.5 by +20 dB. (Our curve starts higher than the
        // paper's ~0.05 because the shield's body-contact coupling gives
        // the eavesdropper relatively more jamming at equal margin — see
        // EXPERIMENTS.md.)
        let (ber0, _) = run_margin_point(0.0, 24, 11);
        let (ber20, _) = run_margin_point(20.0, 24, 11);
        assert!(
            ber0 < ber20 - 0.1,
            "BER at 0 dB ({ber0}) must be below BER at 20 dB ({ber20})"
        );
        assert!(
            (ber20 - 0.5).abs() < 0.08,
            "BER at 20 dB ({ber20}) must be ~0.5"
        );
    }
}
