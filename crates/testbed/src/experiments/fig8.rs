//! Figure 8: the core trade-off — eavesdropper BER (a) and shield packet
//! loss (b) as functions of jamming power relative to the received IMD
//! power.
//!
//! §10.1(b): at +20 dB the eavesdropper's BER reaches ~50% while the
//! shield's PER stays ≤ 0.2% — establishing the operating point used by
//! every other experiment.

use crate::montecarlo::{self, Estimate, McConfig};
use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_imd::commands::Command;

use super::{relay_one_exchange, Effort};

/// Exchanges per adaptive Monte-Carlo trial task. Each trial builds a
/// *fresh* scenario (fresh shadowing/noise draws), so trials are the
/// independent unit the Wilson interval assumes — unlike a long run
/// inside one scenario, whose draws share the same shadowing realization.
const PACKETS_PER_TRIAL: usize = 2;

/// Result of the Fig. 8 sweep.
#[derive(Debug, Clone)]
pub struct Fig8Result {
    /// (relative jam power dB, eavesdropper BER point estimate).
    pub ber_curve: Vec<(f64, f64)>,
    /// (relative jam power dB, shield PER point estimate).
    pub per_curve: Vec<(f64, f64)>,
    /// (relative jam power dB, eavesdropper BER estimate with CI).
    pub ber_est: Vec<(f64, Estimate)>,
    /// (relative jam power dB, shield PER estimate with CI).
    pub per_est: Vec<(f64, Estimate)>,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Runs one margin point; returns (eavesdropper BER, shield PER).
pub fn run_margin_point(margin_db: f64, packets: usize, seed: u64) -> (f64, f64) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.jam_margin_db = Some(margin_db);
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(1, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut bit_errors = 0usize;
    let mut bits_total = 0usize;
    let mut replies_sent = 0u64;
    for _ in 0..packets {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            bit_errors += (ber * record.bits.len() as f64).round() as usize;
            bits_total += record.bits.len();
            replies_sent += 1;
        }
        eve.clear();
    }
    let decoded_at_shield = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
    let ber = if bits_total > 0 {
        bit_errors as f64 / bits_total as f64
    } else {
        0.5
    };
    let per = if replies_sent > 0 {
        1.0 - decoded_at_shield as f64 / replies_sent as f64
    } else {
        1.0
    };
    (ber, per.max(0.0))
}

/// One adaptive trial at `margin_db`: a fresh scenario from the derived
/// seed, [`PACKETS_PER_TRIAL`] exchanges, raw counts out —
/// `[(bit_errors, bits), (frames_lost, frames_sent)]` for the engine to
/// pool.
fn margin_trial(margin_db: f64, seed: u64) -> [(u64, u64); 2] {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.jam_margin_db = Some(margin_db);
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(1, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut bit_errors = 0u64;
    let mut bits_total = 0u64;
    let mut replies_sent = 0u64;
    for _ in 0..PACKETS_PER_TRIAL {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            bit_errors += (ber * record.bits.len() as f64).round() as u64;
            bits_total += record.bits.len() as u64;
            replies_sent += 1;
        }
        eve.clear();
    }
    let decoded = scenario.shield.as_ref().unwrap().stats.imd_frames_ok;
    let lost = replies_sent.saturating_sub(decoded);
    [
        (bit_errors.min(bits_total), bits_total),
        (lost, replies_sent),
    ]
}

/// Runs one margin point adaptively: trials of `PACKETS_PER_TRIAL`
/// exchanges grow in deterministic rounds until both the BER and PER
/// Wilson intervals reach the effort's half-width target (or its trial
/// cap). Returns `(BER estimate, PER estimate)`.
pub fn run_margin_point_ci(margin_db: f64, effort: &Effort, seed: u64) -> (Estimate, Estimate) {
    run_margin_point_ci_with(crate::parallel::threads(), margin_db, effort, seed)
}

/// [`run_margin_point_ci`] with an explicit worker count: [`run`] fans
/// out across margins and runs each point's inner loop single-worker.
pub fn run_margin_point_ci_with(
    workers: usize,
    margin_db: f64,
    effort: &Effort,
    seed: u64,
) -> (Estimate, Estimate) {
    let cfg = McConfig::from_effort(effort);
    let run =
        montecarlo::adaptive_proportions_with(workers, &cfg, seed, |s| margin_trial(margin_db, s));
    (run.estimates[0], run.estimates[1])
}

/// Runs the full sweep of relative jamming powers (0..=25 dB) through the
/// adaptive Monte-Carlo engine. Sweep points fan out in parallel with
/// per-point master seeds derived before the fan-out (each point's
/// adaptive loop then runs single-worker), so results are identical at
/// any thread count.
pub fn run(effort: Effort, seed: u64) -> Fig8Result {
    let margins = [0.0, 2.5, 5.0, 7.5, 10.0, 12.5, 15.0, 17.5, 20.0, 22.5, 25.0];
    let points = crate::parallel::parallel_map(&margins, |i, &m| {
        run_margin_point_ci_with(1, m, &effort, montecarlo::trial_seed(seed, i as u64))
    });
    let mut ber_est = Vec::new();
    let mut per_est = Vec::new();
    for (&m, &(ber, per)) in margins.iter().zip(points.iter()) {
        ber_est.push((m, ber));
        per_est.push((m, per));
    }
    let ber_curve: Vec<(f64, f64)> = ber_est.iter().map(|&(m, e)| (m, e.mean)).collect();
    let per_curve: Vec<(f64, f64)> = per_est.iter().map(|&(m, e)| (m, e.mean)).collect();

    let mut artifact = Artifact::new(
        "Figure 8",
        "Eavesdropper BER (a) and shield PER (b) vs jamming power relative to the IMD's received power",
    );
    artifact.push_series(Series::from_estimates("(a) BER at the adversary", &ber_est));
    artifact.push_series(Series::from_estimates(
        "(b) packet loss at the shield",
        &per_est,
    ));
    let at20 = ber_est
        .iter()
        .zip(per_est.iter())
        .find(|((m, _), _)| (*m - 20.0).abs() < 0.1);
    if let Some((&(_, ber), &(_, per))) = at20 {
        artifact.note(format!(
            "at +20 dB: adversary BER {:.3} [{:.3}, {:.3}] over {} bits (paper: ~0.5); \
             shield PER {:.4} [{:.4}, {:.4}] over {} frames (paper: 0.002)",
            ber.mean, ber.ci_lo, ber.ci_hi, ber.n, per.mean, per.ci_lo, per.ci_hi, per.n
        ));
    }
    Fig8Result {
        ber_curve,
        per_curve,
        ber_est,
        per_est,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig8Experiment;

impl crate::experiments::registry::Experiment for Fig8Experiment {
    fn name(&self) -> &'static str {
        "fig8"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 8 — eavesdropper BER / shield PER vs jam power"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_effort(half_width: f64, cap: usize) -> Effort {
        Effort {
            ci_half_width: half_width,
            mc_max_trials: cap,
            ..Effort::tiny()
        }
    }

    /// One end-to-end point at the paper's +20 dB operating point,
    /// through the adaptive engine: the assertion is on the *confidence
    /// interval*, not a small-sample point estimate, so it holds for any
    /// seed (`HB_TEST_SEED` sweeps it in CI). The bounds are the same
    /// ones the old point-estimate test used — CI form strengthens them.
    #[test]
    fn at_20db_adversary_guesses_and_shield_decodes() {
        let (ber, per) =
            run_margin_point_ci(20.0, &test_effort(0.04, 64), super::super::test_seed(7));
        assert!(
            ber.within(0.42, 0.58),
            "eavesdropper BER CI must sit inside 0.5±0.08: {ber:?}"
        );
        assert!(per.below(0.2), "shield PER CI must stay below 0.2: {per:?}");
    }

    #[test]
    fn at_0db_adversary_does_much_better() {
        // The Fig. 8a shape: BER rises monotonically with jamming power and
        // saturates at 0.5 by +20 dB. (Our curve starts higher than the
        // paper's ~0.05 because the shield's body-contact coupling gives
        // the eavesdropper relatively more jamming at equal margin — see
        // EXPERIMENTS.md.) CI form: the intervals themselves must be
        // separated by the old 0.1 point-estimate gap.
        let seed = super::super::test_seed(11);
        let effort = test_effort(0.01, 128);
        let (ber0, _) = run_margin_point_ci(0.0, &effort, seed);
        let (ber20, _) = run_margin_point_ci(20.0, &effort, seed ^ 0x20);
        assert!(
            ber0.ci_hi < ber20.ci_lo - 0.1,
            "BER CI at 0 dB ({ber0:?}) must sit 0.1 below the CI at 20 dB ({ber20:?})"
        );
        assert!(
            ber20.within(0.42, 0.58),
            "BER CI at 20 dB must sit inside 0.5±0.08: {ber20:?}"
        );
    }

    /// Prints high-precision estimates across seeds — run by hand when
    /// recalibrating the bounds above (`cargo test -p hb_testbed
    /// calibrate_fig8 -- --ignored --nocapture`).
    #[test]
    #[ignore = "calibration helper, not a regression test"]
    fn calibrate_fig8() {
        for seed in [1u64, 2, 3] {
            let effort = test_effort(0.01, 512);
            let (ber0, per0) = run_margin_point_ci(0.0, &effort, seed);
            let (ber20, per20) = run_margin_point_ci(20.0, &effort, seed);
            println!("seed {seed}: 0dB ber {ber0:?} per {per0:?}");
            println!("seed {seed}: 20dB ber {ber20:?} per {per20:?}");
        }
    }
}
