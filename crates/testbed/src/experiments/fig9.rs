//! Figure 9: CDF of the eavesdropper's BER over all 18 locations.
//!
//! §10.2: the shield repeatedly triggers the IMD and jams the replies; an
//! eavesdropper at each Fig. 6 location decodes with the optimal FSK
//! decoder. Paper result: BER ≈ 50% at *every* location — the variance of
//! the CDF is low because the adversary's SINR is location-independent
//! (Eq. 7).

use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_dsp::stats::Cdf;
use hb_imd::commands::Command;

use super::{relay_one_exchange, Effort};

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Per-location mean BER, indexed by location number.
    pub ber_per_location: Vec<(usize, f64)>,
    /// The pooled CDF.
    pub cdf: Cdf,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Measures the eavesdropper BER at one location over `packets` exchanges.
/// Alternates the protected device between the Virtuoso and Concerto
/// profiles by seed, pooling both as the paper does (§10).
pub fn ber_at_location(location: usize, packets: usize, seed: u64) -> f64 {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        crate::scenario::ImdModel::VirtuosoIcd
    } else {
        crate::scenario::ImdModel::ConcertoCrt
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(location, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..packets {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            errors += (ber * record.bits.len() as f64).round() as usize;
            total += record.bits.len();
        }
        eve.clear();
    }
    if total == 0 {
        0.5
    } else {
        errors as f64 / total as f64
    }
}

/// Runs the 18-location sweep. Locations run in parallel on the sweep
/// runner; each task derives its seed from `(seed, location)` before the
/// fan-out, so the results are identical at any thread count.
pub fn run(effort: Effort, seed: u64) -> Fig9Result {
    let per_loc: Vec<(usize, f64)> = crate::parallel::parallel_map_n(18, |i| {
        let loc = i + 1;
        let ber = ber_at_location(
            loc,
            effort.packets_per_location,
            seed.wrapping_add(loc as u64),
        );
        (loc, ber)
    });
    let cdf = Cdf::from_samples(per_loc.iter().map(|&(_, b)| b).collect());
    let mut artifact = Artifact::new(
        "Figure 9",
        "CDF of an eavesdropper's BER over all 18 locations (jamming at +20 dB)",
    );
    artifact.push_series(Series::new("BER CDF", cdf.points()));
    artifact.push_series(Series::new(
        "BER by location",
        per_loc.iter().map(|&(l, b)| (l as f64, b)).collect(),
    ));
    artifact.note(format!(
        "BER range {:.3}..{:.3}, median {:.3} (paper: ~0.5 at all locations, low variance)",
        cdf.min(),
        cdf.max(),
        cdf.median()
    ));
    Fig9Result {
        ber_per_location: per_loc,
        cdf,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig9Experiment;

impl crate::experiments::registry::Experiment for Fig9Experiment {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 9 — eavesdropper BER CDF over all 18 locations"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_and_far_locations_both_guess() {
        // Location independence (Eq. 7): 20 cm and 27 m eavesdroppers see
        // the same ~50% BER. Sampled at 8 packets so the estimate sits
        // well inside the ±0.1 bound (grow further rather than loosening
        // the bound — ROADMAP).
        let near = ber_at_location(1, 8, 3);
        let far = ber_at_location(13, 8, 3);
        assert!((near - 0.5).abs() < 0.1, "near BER {near}");
        assert!((far - 0.5).abs() < 0.1, "far BER {far}");
    }
}
