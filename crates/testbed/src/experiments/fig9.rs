//! Figure 9: CDF of the eavesdropper's BER over all 18 locations.
//!
//! §10.2: the shield repeatedly triggers the IMD and jams the replies; an
//! eavesdropper at each Fig. 6 location decodes with the optimal FSK
//! decoder. Paper result: BER ≈ 50% at *every* location — the variance of
//! the CDF is low because the adversary's SINR is location-independent
//! (Eq. 7).

use crate::montecarlo::{self, Estimate, McConfig};
use crate::report::{Artifact, Series};
use crate::scenario::{ScenarioBuilder, ScenarioConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_dsp::stats::Cdf;
use hb_imd::commands::Command;

use super::{relay_one_exchange, Effort};

/// Exchanges per adaptive trial (fresh scenario per trial — see
/// [`super::fig8`]).
const PACKETS_PER_TRIAL: usize = 2;

/// Result of the Fig. 9 experiment.
#[derive(Debug, Clone)]
pub struct Fig9Result {
    /// Per-location mean BER, indexed by location number.
    pub ber_per_location: Vec<(usize, f64)>,
    /// Per-location BER estimates with confidence intervals.
    pub ber_ci: Vec<(usize, Estimate)>,
    /// The pooled CDF.
    pub cdf: Cdf,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Measures the eavesdropper BER at one location over `packets` exchanges.
/// Alternates the protected device between the Virtuoso and Concerto
/// profiles by seed, pooling both as the paper does (§10).
pub fn ber_at_location(location: usize, packets: usize, seed: u64) -> f64 {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        crate::scenario::ImdModel::VirtuosoIcd
    } else {
        crate::scenario::ImdModel::ConcertoCrt
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(location, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut errors = 0usize;
    let mut total = 0usize;
    for _ in 0..packets {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            errors += (ber * record.bits.len() as f64).round() as usize;
            total += record.bits.len();
        }
        eve.clear();
    }
    if total == 0 {
        0.5
    } else {
        errors as f64 / total as f64
    }
}

/// One adaptive trial at `location`: a fresh scenario from the derived
/// seed (fresh shadowing; IMD model alternates by seed parity, pooling
/// both devices as the paper does), [`PACKETS_PER_TRIAL`] exchanges,
/// `(bit_errors, bits)` out.
fn location_trial(location: usize, seed: u64) -> (u64, u64) {
    let mut cfg = ScenarioConfig::paper(seed);
    cfg.imd_model = if seed.is_multiple_of(2) {
        crate::scenario::ImdModel::VirtuosoIcd
    } else {
        crate::scenario::ImdModel::ConcertoCrt
    };
    let mut builder = ScenarioBuilder::new(cfg);
    let eve_ant = builder.add_at_location(location, "eavesdropper");
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());

    let mut errors = 0u64;
    let mut total = 0u64;
    for _ in 0..PACKETS_PER_TRIAL {
        relay_one_exchange(&mut scenario, &mut [&mut eve], Command::Interrogate);
        for record in scenario.imd.take_tx_log() {
            let ber = eve.ber_against(record.start_tick, &record.bits);
            errors += (ber * record.bits.len() as f64).round() as u64;
            total += record.bits.len() as u64;
        }
        eve.clear();
    }
    (errors.min(total), total)
}

/// Adaptive BER estimate at one location: trials grow in deterministic
/// rounds until the Wilson interval reaches the effort's half-width
/// target (or its trial cap).
pub fn ber_at_location_ci(location: usize, effort: &Effort, seed: u64) -> Estimate {
    ber_at_location_ci_with(crate::parallel::threads(), location, effort, seed)
}

/// [`ber_at_location_ci`] with an explicit worker count ([`run`] fans out
/// across locations and runs each location's loop single-worker).
pub fn ber_at_location_ci_with(
    workers: usize,
    location: usize,
    effort: &Effort,
    seed: u64,
) -> Estimate {
    let cfg = McConfig::from_effort(effort);
    montecarlo::adaptive_proportion_with(workers, &cfg, seed, |s| location_trial(location, s))
}

/// Runs the 18-location sweep through the adaptive engine. Locations run
/// in parallel on the sweep runner; each location's master seed derives
/// from `(seed, location)` before the fan-out and its adaptive loop runs
/// single-worker, so the results are identical at any thread count.
pub fn run(effort: Effort, seed: u64) -> Fig9Result {
    let ber_ci: Vec<(usize, Estimate)> = crate::parallel::parallel_map_n(18, |i| {
        let loc = i + 1;
        let est =
            ber_at_location_ci_with(1, loc, &effort, montecarlo::trial_seed(seed, loc as u64));
        (loc, est)
    });
    let per_loc: Vec<(usize, f64)> = ber_ci.iter().map(|&(l, e)| (l, e.mean)).collect();
    let cdf = Cdf::from_samples(per_loc.iter().map(|&(_, b)| b).collect());
    let mut artifact = Artifact::new(
        "Figure 9",
        "CDF of an eavesdropper's BER over all 18 locations (jamming at +20 dB)",
    );
    artifact.push_series(Series::new("BER CDF", cdf.points()));
    artifact.push_series(Series::from_estimates(
        "BER by location",
        &ber_ci
            .iter()
            .map(|&(l, e)| (l as f64, e))
            .collect::<Vec<_>>(),
    ));
    let max_hw = ber_ci
        .iter()
        .map(|&(_, e)| e.half_width())
        .fold(0.0, f64::max);
    artifact.note(format!(
        "BER range {:.3}..{:.3}, median {:.3}, max CI half-width {:.3} \
         (paper: ~0.5 at all locations, low variance)",
        cdf.min(),
        cdf.max(),
        cdf.median(),
        max_hw
    ));
    Fig9Result {
        ber_per_location: per_loc,
        ber_ci,
        cdf,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct Fig9Experiment;

impl crate::experiments::registry::Experiment for Fig9Experiment {
    fn name(&self) -> &'static str {
        "fig9"
    }
    fn reproduces(&self) -> &'static str {
        "Fig. 9 — eavesdropper BER CDF over all 18 locations"
    }
    fn run(&self, ctx: &crate::experiments::registry::EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn near_and_far_locations_both_guess() {
        // Location independence (Eq. 7): 20 cm and 27 m eavesdroppers see
        // the same ~50% BER. Adaptive CI form of the old ±0.1 bound: the
        // whole interval must sit inside it, for any `HB_TEST_SEED`.
        let seed = super::super::test_seed(3);
        let effort = Effort {
            ci_half_width: 0.03,
            mc_max_trials: 64,
            ..Effort::tiny()
        };
        let near = ber_at_location_ci(1, &effort, seed);
        let far = ber_at_location_ci(13, &effort, seed ^ 0x0D);
        assert!(near.within(0.4, 0.6), "near BER CI {near:?}");
        assert!(far.within(0.4, 0.6), "far BER CI {far:?}");
    }
}
