//! Extension scenario: a **full hospital floor** — 50 shielded patients
//! (100 devices) sharing one medium, with an eavesdropper and an active
//! attacker on the ward.
//!
//! This is the deployment scale the shield concept ultimately targets
//! (IMDfence and e-SAFE both evaluate IMD security in multi-device
//! clinical settings) and the scenario the sparse culled [`Medium`]
//! engine unlocks: 150+ antennas would be O(n²) per block on the dense
//! engine, but with a finite cull margin each receiver only mixes the
//! links that can clear its noise floor.
//!
//! Layout and protocol:
//!
//! * Beds on a 10 × 5 grid (2 m × 2.5 m pitch). Every patient wears a
//!   shield over their implant; serials are assigned codeword-style
//!   (pairwise Hamming distance above the shields' `Sid` match
//!   tolerance — see `ward_serial`) and the
//!   population is spread across all 10 MICS channels (5 co-channel
//!   patients each), as a real ward coordinator would assign them.
//! * **Monitoring arm** — the channel-0 cohort (5 beds) is interrogated
//!   in staggered turns, one exchange window apart (the viable ward
//!   protocol established by the `ward-multi-imd` collision study). An
//!   eavesdropper in the middle of the floor records every channel-0
//!   reply; confidentiality requires BER ≈ 0.5 on all of them.
//! * **Attack arm** — a fresh floor with an active attacker at the
//!   primary patient's bedside forging `Interrogate` at the primary's
//!   serial. The shield must hold the attack off even with 49 other
//!   shields on the air.
//!
//! The scenario runs strictly sequentially (no intra-experiment
//! fan-out), so artifacts are bit-identical at any `HB_THREADS`.
//!
//! [`Medium`]: hb_channel::medium::Medium

use crate::report::{Artifact, Series};
use crate::scenario::{Scenario, ScenarioBuilder, ScenarioConfig};
use hb_adversary::active::{ActiveAttacker, AttackerConfig};
use hb_adversary::eavesdropper::Eavesdropper;
use hb_channel::geometry::Placement;
use hb_channel::sim::Node;
use hb_imd::commands::Command;
use hb_imd::models::ImdConfig;
use hb_phy::packet::Serial;

use super::registry::{EvalCtx, Experiment};
use super::Effort;

/// Patients on the floor, primary included (2 devices each: implant +
/// worn shield — 100 devices total).
pub const FLOOR_PATIENTS: usize = 50;
/// MICS channels the population is spread across.
const FLOOR_CHANNELS: usize = 10;
/// Pathloss-culling margin for the floor medium, dB over each receiver's
/// noise floor. No transmitter on the floor exceeds −16 dBm, so a culled
/// link (|H|² < floor + 12 dB) can only ever deliver sub-floor power.
const FLOOR_CULL_MARGIN_DB: f64 = 12.0;

/// Bed position of patient `i` on the 10 × 5 grid.
fn bed_position(i: usize) -> (f64, f64) {
    ((i % 10) as f64 * 2.0, (i / 10) as f64 * 2.5)
}

/// Ward serial for bed `i`, with pairwise Hamming distance ≥ 10 bits.
///
/// The serial is load-bearing at ward scale: every shield watches *all*
/// channels for its implant's identifying sequence `Sid` (preamble +
/// sync + serial) tolerating `bthresh = 4` bit errors, so near-identical
/// serials — sequential decimals differ by as little as 2 bits — make
/// each exchange trip the *neighbours'* active protection, and their
/// jamming corrupts the monitored command. A ward coordinator must
/// assign serials like codewords: here each bed's 2-character code
/// (alphabet with pairwise character distance ≥ 2 bits) is repeated five
/// times, so distinct beds differ by ≥ 2 × 5 = 10 bits > `bthresh`.
fn ward_serial(i: usize) -> Serial {
    const ALPHABET: [u8; 8] = *b"ABDGHKMN";
    let hi = ALPHABET[(i / 8) % 8];
    let lo = ALPHABET[i % 8];
    Serial([hi, lo, hi, lo, hi, lo, hi, lo, hi, lo])
}

/// Device profile for bed `i` (i ≥ 1): unique ward serial, alternating
/// Virtuoso/Concerto models, channel `i mod 10`.
fn ward_imd_cfg(i: usize) -> ImdConfig {
    let channel = i % FLOOR_CHANNELS;
    let mut cfg = if i.is_multiple_of(2) {
        ImdConfig::virtuoso_icd(channel)
    } else {
        ImdConfig::concerto_crt(channel)
    };
    cfg.serial = ward_serial(i);
    cfg
}

/// The floor's scenario configuration: paper defaults plus the finite
/// cull margin that makes 150+ antennas tractable.
fn floor_config(seed: u64) -> ScenarioConfig {
    ScenarioConfig {
        cull_margin_db: FLOOR_CULL_MARGIN_DB,
        ..ScenarioConfig::paper(seed)
    }
}

/// A builder with the primary patient at bed 0 and the other 49 beds
/// populated. The primary keeps the paper's Virtuoso profile on
/// channel 0; the channel-0 cohort is beds {0, 10, 20, 30, 40}.
fn floor_builder(seed: u64) -> ScenarioBuilder {
    let mut builder = ScenarioBuilder::new(floor_config(seed));
    for i in 1..FLOOR_PATIENTS {
        builder.add_patient_cfg(bed_position(i), ward_imd_cfg(i));
    }
    builder
}

/// Per-monitored-bed measurements from the staggered monitoring arm.
#[derive(Debug, Clone, Copy)]
pub struct BedRow {
    /// Bed index on the floor (0 = the primary patient).
    pub bed: usize,
    /// The bed's shield relay PER over the arm.
    pub per: f64,
    /// Pooled eavesdropper BER over the bed's replies.
    pub ber: f64,
}

/// Result of one full floor evaluation.
#[derive(Debug, Clone)]
pub struct HospitalResult {
    /// One row per monitored (channel-0) bed.
    pub rows: Vec<BedRow>,
    /// Fraction of tx/rx pairs that survived culling.
    pub audible_fraction: f64,
    /// Antennas on the floor (implants + shield pairs + adversaries).
    pub antennas: usize,
    /// Attack arm: forged-command successes out of attempts.
    pub attack_successes: usize,
    /// Attack arm: attempts made.
    pub attack_attempts: usize,
    /// Attack arm: attempts in which the primary shield engaged jamming.
    pub attack_jammed: usize,
    /// Rendered artifact.
    pub artifact: Artifact,
}

/// Packet-loss rate from (replies sent, replies decoded).
fn per(sent: u64, ok: u64) -> f64 {
    if sent == 0 {
        1.0
    } else {
        (1.0 - ok as f64 / sent as f64).max(0.0)
    }
}

/// The monitoring arm: `rounds` staggered interrogation rounds over the
/// channel-0 cohort, with the eavesdropper mid-floor. Returns the rows
/// plus the built scenario's audibility census.
fn monitoring_arm(rounds: usize, seed: u64) -> (Vec<BedRow>, f64, usize) {
    let mut builder = floor_builder(seed);
    let eve_ant = builder.add_at(Placement::los("eve", 9.0, 5.0));
    let mut scenario = builder.build();
    let mut eve = Eavesdropper::new(scenario.imd.config().fsk, eve_ant, scenario.channel());
    let blocks = scenario.medium.blocks_for_duration(0.060);

    // Channel-0 cohort: the primary (bed 0) plus beds 10/20/30/40, which
    // sit at patients-vec indices bed−1.
    let monitored: Vec<usize> = (0..FLOOR_PATIENTS)
        .filter(|i| i % FLOOR_CHANNELS == 0)
        .collect();
    let mut errors = vec![0usize; monitored.len()];
    let mut totals = vec![0usize; monitored.len()];

    for _ in 0..rounds {
        for (slot, &bed) in monitored.iter().enumerate() {
            if bed == 0 {
                scenario
                    .shield
                    .as_mut()
                    .unwrap()
                    .queue_command(Command::Interrogate);
            } else {
                scenario.patients[bed - 1]
                    .shield
                    .queue_command(Command::Interrogate);
            }
            scenario.run_blocks(&mut [&mut eve], blocks);
            let log = if bed == 0 {
                scenario.imd.take_tx_log()
            } else {
                scenario.patients[bed - 1].imd.take_tx_log()
            };
            for record in log {
                let ber = eve.ber_against(record.start_tick, &record.bits);
                errors[slot] += (ber * record.bits.len() as f64).round() as usize;
                totals[slot] += record.bits.len();
            }
            eve.clear();
        }
    }

    let rows = monitored
        .iter()
        .enumerate()
        .map(|(slot, &bed)| {
            let (sent, ok) = if bed == 0 {
                (
                    scenario.imd.stats.responses_sent,
                    scenario.shield.as_ref().unwrap().stats.imd_frames_ok,
                )
            } else {
                (
                    scenario.patients[bed - 1].imd.stats.responses_sent,
                    scenario.patients[bed - 1].shield.stats.imd_frames_ok,
                )
            };
            BedRow {
                bed,
                per: per(sent, ok),
                ber: if totals[slot] == 0 {
                    0.5
                } else {
                    errors[slot] as f64 / totals[slot] as f64
                },
            }
        })
        .collect();

    let stats = scenario.medium.cull_stats();
    let audible_fraction = stats.audible_pairs as f64 / stats.total_pairs.max(1) as f64;
    (rows, audible_fraction, scenario.medium.antenna_count())
}

/// The attack arm: one fresh floor per attempt, an active attacker at
/// the primary's bedside forging `Interrogate` at the primary's serial.
/// Returns (successes, jammed count).
fn attack_arm(attempts: usize, seed: u64) -> (usize, usize) {
    let cfg = AttackerConfig::commercial_programmer();
    let mut successes = 0usize;
    let mut jammed = 0usize;
    for a in 0..attempts {
        let mut builder = floor_builder(seed.wrapping_add(a as u64 * 9176));
        let atk_ant = builder.add_at(Placement::los("attacker", 0.3, 0.5));
        let mut scenario = builder.build();
        let mut attacker = ActiveAttacker::new(cfg.clone(), atk_ant);
        let serial = scenario.imd.config().serial;
        let channel = scenario.channel();
        let start = scenario.medium.tick() + 64;
        attacker.send_forged_command(start, channel, serial, Command::Interrogate);
        scenario.run_seconds(&mut [&mut attacker as &mut dyn Node], 0.090);
        if scenario.imd.stats.responses_sent > 0 {
            successes += 1;
        }
        if scenario.shield.as_ref().unwrap().stats.active_jam_events > 0 {
            jammed += 1;
        }
    }
    (successes, jammed)
}

/// Runs the full floor evaluation: the staggered monitoring arm over the
/// channel-0 cohort, then the bedside attack arm. Strictly sequential —
/// bit-identical at any thread count.
pub fn run(effort: Effort, seed: u64) -> HospitalResult {
    let (rows, audible_fraction, antennas) = monitoring_arm(effort.packets_per_location, seed);
    let (attack_successes, attack_jammed) =
        attack_arm(effort.attempts_per_location, seed.wrapping_add(0x0F100D));
    let attack_attempts = effort.attempts_per_location;

    let mut artifact = Artifact::new(
        "Extension: hospital floor",
        "50 shielded patients (100 devices) on one floor: staggered channel-0 monitoring \
         with an eavesdropper mid-ward, plus a bedside forged-command attack",
    );
    artifact.push_series(Series::new(
        "staggered: shield relay PER vs bed index",
        rows.iter().map(|r| (r.bed as f64, r.per)).collect(),
    ));
    artifact.push_series(Series::new(
        "eavesdropper BER vs bed index",
        rows.iter().map(|r| (r.bed as f64, r.ber)).collect(),
    ));
    artifact.push_series(Series::new(
        "bedside forged-interrogate success rate",
        vec![(0.0, attack_successes as f64 / attack_attempts.max(1) as f64)],
    ));
    let worst_per = rows.iter().map(|r| r.per).fold(0.0, f64::max);
    let ber_min = rows.iter().map(|r| r.ber).fold(f64::MAX, f64::min);
    artifact.note(format!(
        "floor scale: {FLOOR_PATIENTS} patients (100 devices, {antennas} antennas) across \
         {FLOOR_CHANNELS} MICS channels; pathloss culling at +{FLOOR_CULL_MARGIN_DB} dB over \
         the noise floor keeps {:.1}% of tx/rx pairs audible",
        audible_fraction * 100.0
    ));
    artifact.note(format!(
        "staggered channel-0 monitoring works at floor scale: worst shield PER {worst_per:.3} \
         across the cohort"
    ));
    artifact.note(format!(
        "confidentiality holds mid-ward: eavesdropper BER never drops below {ber_min:.3}"
    ));
    artifact.note(format!(
        "bedside forged Interrogate at the primary's serial: {attack_successes}/{attack_attempts} \
         successes, shield engaged active jamming in {attack_jammed}/{attack_attempts} attempts"
    ));
    HospitalResult {
        rows,
        audible_fraction,
        antennas,
        attack_successes,
        attack_attempts,
        attack_jammed,
        artifact,
    }
}

/// Registry entry: [`run`] as a first-class experiment.
pub struct HospitalFloorExperiment;

impl Experiment for HospitalFloorExperiment {
    fn name(&self) -> &'static str {
        "ward-hospital-floor"
    }
    fn reproduces(&self) -> &'static str {
        "Extension — 50 shielded patients (100 devices) on one hospital floor"
    }
    fn run(&self, ctx: &EvalCtx) -> Artifact {
        run(ctx.effort, ctx.seed).artifact
    }
}

/// The floor builder, exposed for the bench harness (the
/// `medium_block_64ant`/`128ant` kernels time the same culled geometry
/// this experiment runs).
pub fn bench_floor_scenario(seed: u64) -> Scenario {
    floor_builder(seed).build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn floor_has_ward_scale_and_culls_pairs() {
        let s = bench_floor_scenario(3);
        // 50 implants + 100 shield antennas.
        assert_eq!(s.medium.antenna_count(), 150);
        assert_eq!(s.patients.len(), FLOOR_PATIENTS - 1);
        let stats = s.medium.cull_stats();
        let frac = stats.audible_pairs as f64 / stats.total_pairs as f64;
        assert!(
            frac < 0.95,
            "a floor-scale medium should cull a share of pairs (audible {frac:.2})"
        );
        assert!(
            frac > 0.01,
            "each bed's own links must stay audible (audible {frac:.2})"
        );
        // Every shield must still hear its own implant.
        for p in &s.patients {
            assert!(s
                .medium
                .pair_audible(p.imd.antenna(), p.shield.rx_antenna()));
        }
    }

    #[test]
    fn serials_are_unique_and_hamming_distant() {
        let mut serials: Vec<_> = (1..FLOOR_PATIENTS)
            .map(|i| ward_imd_cfg(i).serial)
            .collect();
        serials.push(ImdConfig::virtuoso_icd(0).serial);
        // Pairwise Hamming distance must exceed the shield's Sid match
        // tolerance (bthresh = 4), or neighbours cross-jam each other's
        // exchanges.
        for (a, sa) in serials.iter().enumerate() {
            for sb in &serials[a + 1..] {
                let dist: u32 =
                    sa.0.iter()
                        .zip(&sb.0)
                        .map(|(&x, &y)| (x ^ y).count_ones())
                        .sum();
                assert!(
                    dist > 4,
                    "serials {sa:?} and {sb:?} are only {dist} bits apart"
                );
            }
        }
    }

    #[test]
    fn monitoring_relays_and_jams_the_eavesdropper() {
        let (rows, audible, antennas) = monitoring_arm(2, super::super::test_seed(41));
        assert_eq!(rows.len(), 5);
        assert!(antennas > 150);
        assert!(audible < 1.0);
        for row in &rows {
            assert!(
                row.per < 0.5,
                "bed {} shield PER {} should relay under staggered access",
                row.bed,
                row.per
            );
            assert!(
                (row.ber - 0.5).abs() < 0.15,
                "bed {} eavesdropper BER {} must stay ~0.5",
                row.bed,
                row.ber
            );
        }
    }

    #[test]
    fn bedside_attack_is_blocked_at_floor_scale() {
        let (successes, jammed) = attack_arm(2, super::super::test_seed(47));
        assert_eq!(successes, 0, "shield must block the bedside forgery");
        assert!(jammed > 0, "shield must engage active jamming");
    }
}
